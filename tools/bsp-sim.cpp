// bsp-sim: run a program (source, object file, or built-in workload) on the
// cycle-level bit-sliced core.
//
//   bsp-sim <program.{s,bspo} | workload> [options]
//     --slices N            1 (base), 2, 4, 8            [default 2]
//     --techniques SPEC     none | all | extended | comma list of
//                           bypass,ooo,branch,lsq,tag,specfwd,narrow
//     --instructions N      commit budget                [default 200000]
//     --warmup N            detail commits discarded before measuring
//     --fast-forward N      functional instructions skipped before detail
//     --checkpoint F        start from a captured BSPC state
//     --trace [START END]   pipeview trace of cycles [START, END)
//     --trace-perfetto F    Chrome trace-event JSON (chrome://tracing, ui.perfetto.dev)
//     --trace-konata F      Konata pipeline log (github.com/shioyadan/Konata)
//     --interval-stats F    JSONL time-series of counter deltas
//     --interval N          sampling period in committed insns [default 10000]
//     --cpi-stack           charge every commit slot to a stall cause and
//                           print the CPI stack (obs/cpi_stack.hpp)
//     --cosim MODE          full | spot[:N] | off — oracle co-simulation
//                           cadence (core/simulator.hpp)  [default full]
//     --host-profile        report where host time went per scheduler phase
//     --print-config        dump the machine configuration first
//   Sampled simulation (src/sampling/): shard the measured region into K
//   intervals and simulate them in parallel, stitching the stats back
//   together with a confidence interval on the IPC estimate.
//     --sample-intervals K  interval count (0 = monolithic)   [default 0]
//     --sample-warmup N     per-interval warm-up commits      [default 2000]
//     --sample-jobs J       interval parallelism (0 = cores)
//     --sample-isolate M    thread | process                  [default thread]
//     --sample-out F        per-interval results as JSONL
//     --ckpt-cache DIR      shared BSPC checkpoint cache directory
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <vector>

#include "asm/assembler.hpp"
#include "asm/objfile.hpp"
#include "campaign/ckpt_cache.hpp"
#include "core/simulator.hpp"
#include "emu/checkpoint.hpp"
#include "obs/cpi_stack.hpp"
#include "obs/interval.hpp"
#include "obs/sinks.hpp"
#include "sampling/sampled.hpp"
#include "util/subprocess.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace bsp;

std::optional<Program> load_input(const std::string& spec) {
  const auto ends_with = [&](const char* suffix) {
    const std::string s = suffix;
    return spec.size() > s.size() &&
           spec.compare(spec.size() - s.size(), s.size(), s) == 0;
  };
  if (ends_with(".bspo")) {
    std::string error;
    auto p = load_object_file(spec, &error);
    if (!p) std::cerr << "bsp-sim: " << error << "\n";
    return p;
  }
  if (ends_with(".s")) {
    std::ifstream in(spec);
    if (!in) {
      std::cerr << "bsp-sim: cannot open " << spec << "\n";
      return std::nullopt;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    AsmResult r = assemble(ss.str());
    if (!r.ok()) {
      std::cerr << spec << ":\n" << r.error_text();
      return std::nullopt;
    }
    return std::move(r.program);
  }
  try {
    return build_workload(spec).program;
  } catch (const std::exception& e) {
    std::cerr << "bsp-sim: " << e.what() << "\n";
    return std::nullopt;
  }
}

std::optional<TechniqueSet> parse_techniques(const std::string& spec) {
  if (spec == "none") return kNoTechniques;
  if (spec == "all") return kAllTechniques;
  if (spec == "extended") return kExtendedTechniques;
  TechniqueSet set = kNoTechniques;
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item == "bypass") set |= static_cast<unsigned>(Technique::PartialBypass);
    else if (item == "ooo") set |= static_cast<unsigned>(Technique::OooSlices);
    else if (item == "branch") set |= static_cast<unsigned>(Technique::EarlyBranch);
    else if (item == "lsq") set |= static_cast<unsigned>(Technique::EarlyLsq);
    else if (item == "tag") set |= static_cast<unsigned>(Technique::PartialTag);
    else if (item == "specfwd") set |= static_cast<unsigned>(Technique::SpecForward);
    else if (item == "narrow") set |= static_cast<unsigned>(Technique::NarrowWidth);
    else return std::nullopt;
  }
  return set;
}

// The headline stats block — shared verbatim between the monolithic run
// and the sampled aggregate, so a 1-interval sampled run's output diffs
// clean against the monolithic run (the CI smoke relies on this).
void print_stats(const SimStats& s) {
  std::cout << "instructions: " << s.committed << "\n"
            << "cycles:       " << s.cycles << "\n"
            << "IPC:          " << s.ipc() << "\n"
            << "branches:     " << s.branches << " ("
            << 100.0 * s.branch_accuracy() << "% predicted)\n"
            << "loads:        " << s.loads << " (" << s.load_forwards
            << " forwarded, " << s.loads_issued_partial_lsq
            << " issued on partial bits)\n"
            << "L1D:          " << s.l1d_hits << " hits / " << s.l1d_misses
            << " misses\n"
            << "replays:      " << s.load_replays << " loads, "
            << s.op_replays << " slice-ops, " << s.way_mispredicts
            << " way mispredicts\n"
            << "early:        " << s.early_resolved_branches
            << " branch resolutions, " << s.early_miss_detects
            << " miss detects\n";
  if (s.spec_forwards || s.narrow_operands)
    std::cout << "extensions:   " << s.spec_forwards << " spec forwards ("
              << s.spec_forward_misses << " refuted), " << s.narrow_operands
              << " narrow results\n";
}

void print_host_profile(const SimStats& s) {
  if (!s.host_profile.enabled) return;
  const obs::HostProfile& hp = s.host_profile;
  const double total = hp.total();
  const auto pct = [&](double v) {
    return total > 0 ? 100.0 * v / total : 0.0;
  };
  // Nested shares (co-sim inside commit, replay inside memory) say "of
  // total" explicitly so the parenthetical can't be misread as a share of
  // its parent phase; co-sim disappears when it never ran (--cosim off).
  char cosim[64] = "";
  if (hp.cosim > 0)
    std::snprintf(cosim, sizeof cosim, "  (co-sim %.1f%% of total)",
                  pct(hp.cosim));
  char replay[64] = "";
  if (hp.replay > 0)
    std::snprintf(replay, sizeof replay, "  (replay %.1f%% of total)",
                  pct(hp.replay));
  char buf[384];
  std::snprintf(buf, sizeof buf,
                "host:         %.3fs wall, %.3fs in phases over %llu loop "
                "cycles\n"
                "  commit   %5.1f%%%s\n"
                "  resolve  %5.1f%%\n"
                "  select   %5.1f%%\n"
                "  memory   %5.1f%%%s\n"
                "  dispatch %5.1f%%\n"
                "  fetch    %5.1f%%\n",
                s.host_seconds, total,
                static_cast<unsigned long long>(hp.loop_cycles),
                pct(hp.commit), cosim, pct(hp.resolve),
                pct(hp.select), pct(hp.memory), replay,
                pct(hp.dispatch), pct(hp.fetch));
  std::cout << buf;
}

}  // namespace

int main(int argc, char** argv) {
  std::string input, ckpt_path;
  unsigned slices = 2;
  TechniqueSet techniques = kAllTechniques;
  u64 instructions = 200'000;
  u64 warmup = 0;
  u64 fast_forward = 0;
  bool print_config = false;
  bool detail = false;
  bool trace = false;
  Cycle trace_start = 0, trace_end = 200;
  std::string perfetto_path, konata_path, interval_path;
  u64 interval = 10'000;
  bool host_profile = false;
  bool cpi_stack = false;
  SimOptions sim_opts;
  unsigned sample_intervals = 0;
  u64 sample_warmup = 2'000;
  unsigned sample_jobs = 0;
  bool sample_process = false;
  std::string sample_out, ckpt_cache;
  long sample_worker = -1;  // hidden: run one interval, print its JSONL

  // Original argv, re-forwarded verbatim to --sample-isolate process
  // workers (plus the resolved cache dir and the hidden worker flag).
  std::vector<std::string> raw_args(argv + 1, argv + argc);

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "bsp-sim: " << a << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--slices") {
      slices = static_cast<unsigned>(std::strtoul(value(), nullptr, 0));
    } else if (a == "--techniques") {
      const auto t = parse_techniques(value());
      if (!t) {
        std::cerr << "bsp-sim: bad technique spec\n";
        return 2;
      }
      techniques = *t;
    } else if (a == "--instructions" || a == "-n") {
      instructions = std::strtoull(value(), nullptr, 0);
    } else if (a == "--warmup") {
      warmup = std::strtoull(value(), nullptr, 0);
    } else if (a == "--fast-forward") {
      fast_forward = std::strtoull(value(), nullptr, 0);
    } else if (a == "--sample-intervals") {
      sample_intervals =
          static_cast<unsigned>(std::strtoul(value(), nullptr, 0));
    } else if (a == "--sample-warmup") {
      sample_warmup = std::strtoull(value(), nullptr, 0);
    } else if (a == "--sample-jobs") {
      sample_jobs = static_cast<unsigned>(std::strtoul(value(), nullptr, 0));
    } else if (a == "--sample-isolate") {
      const std::string mode = value();
      if (mode == "process") {
        sample_process = true;
      } else if (mode != "thread") {
        std::cerr << "bsp-sim: --sample-isolate must be thread or process\n";
        return 2;
      }
    } else if (a == "--sample-out") {
      sample_out = value();
    } else if (a == "--ckpt-cache") {
      ckpt_cache = value();
    } else if (a == "--sample-worker") {
      sample_worker = std::strtol(value(), nullptr, 0);
    } else if (a == "--checkpoint") {
      ckpt_path = value();
    } else if (a == "--trace") {
      trace = true;
      if (i + 2 < argc && argv[i + 1][0] != '-' && argv[i + 2][0] != '-') {
        trace_start = std::strtoull(argv[++i], nullptr, 0);
        trace_end = std::strtoull(argv[++i], nullptr, 0);
      }
    } else if (a == "--trace-perfetto") {
      perfetto_path = value();
    } else if (a == "--trace-konata") {
      konata_path = value();
    } else if (a == "--interval-stats") {
      interval_path = value();
    } else if (a == "--interval") {
      interval = std::strtoull(value(), nullptr, 0);
      if (interval == 0) {
        std::cerr << "bsp-sim: --interval must be > 0\n";
        return 2;
      }
    } else if (a == "--host-profile") {
      host_profile = true;
    } else if (a == "--cpi-stack") {
      cpi_stack = true;
    } else if (a == "--cosim") {
      if (!parse_cosim(value(), &sim_opts)) {
        std::cerr << "bsp-sim: --cosim must be full, spot[:N], or off\n";
        return 2;
      }
    } else if (a == "--print-config") {
      print_config = true;
    } else if (a == "--detail") {
      detail = true;
    } else if (a == "-h" || a == "--help") {
      std::cout << "usage: bsp-sim <program.{s,bspo} | workload> "
                   "[--slices N] [--techniques SPEC] [-n N] [--warmup N] "
                   "[--fast-forward N] [--checkpoint in.bspc] "
                   "[--trace [START END]] "
                   "[--trace-perfetto out.json] [--trace-konata out.kanata] "
                   "[--interval-stats out.jsonl] [--interval N] "
                   "[--cpi-stack] [--host-profile] [--cosim MODE] "
                   "[--print-config] "
                   "[--sample-intervals K] [--sample-warmup N] "
                   "[--sample-jobs J] [--sample-isolate thread|process] "
                   "[--sample-out out.jsonl] [--ckpt-cache DIR]\n";
      return 0;
    } else if (!a.empty() && a[0] != '-' && input.empty()) {
      input = a;
    } else {
      std::cerr << "bsp-sim: unknown argument '" << a << "'\n";
      return 2;
    }
  }
  if (input.empty()) {
    std::cerr << "bsp-sim: no input (try --help)\n";
    return 2;
  }

  const auto program = load_input(input);
  if (!program) return 1;

  const MachineConfig cfg =
      slices == 1 ? base_machine() : bitsliced_machine(slices, techniques);
  if (print_config) std::cout << cfg.describe() << "\n";

  // Checkpoint-cache keying seed: bsp-sim builds workloads with the
  // default WorkloadParams seed, and the content hash carries correctness
  // anyway (the readable prefix is for humans).
  constexpr u64 kSeed = 0x5eed;

  // Hidden per-interval worker (--sample-isolate process protocol): the
  // parent re-execs itself with its own CLI plus this flag; the worker
  // recomputes the identical plan, restores its interval's checkpoint
  // from the shared cache, simulates it, and prints one JSONL line.
  if (sample_worker >= 0) {
    const sampling::SamplePlan plan = sampling::plan_intervals(
        instructions, warmup, fast_forward, sample_intervals, sample_warmup);
    if (static_cast<std::size_t>(sample_worker) >= plan.intervals.size()) {
      std::cerr << "bsp-sim: --sample-worker index out of range\n";
      return 2;
    }
    const sampling::IntervalSpec spec =
        plan.intervals[static_cast<std::size_t>(sample_worker)];
    std::optional<Checkpoint> start;
    if (spec.offset > 0) {
      const std::string path = campaign::checkpoint_cache_path(
          ckpt_cache, input, kSeed, *program, spec.offset);
      std::string error;
      start = load_checkpoint_file(path, &error);
      if (!start) {
        sampling::IntervalResult fail;
        fail.spec = spec;
        fail.error = "cannot load interval checkpoint: " + error;
        std::cout << sampling::interval_to_jsonl(fail) << "\n";
        return 1;
      }
    }
    const sampling::IntervalResult r = sampling::run_one_interval(
        cfg, *program, spec, start ? &*start : nullptr, host_profile,
        cpi_stack, sim_opts);
    std::cout << sampling::interval_to_jsonl(r) << "\n";
    return r.ok() ? 0 : 1;
  }

  if (sample_intervals > 0) {
    if (!ckpt_path.empty()) {
      std::cerr << "bsp-sim: --checkpoint cannot be combined with sampled "
                   "simulation (use --fast-forward)\n";
      return 2;
    }
    if (trace || detail || !perfetto_path.empty() || !konata_path.empty() ||
        !interval_path.empty()) {
      std::cerr << "bsp-sim: tracing/--detail/--interval-stats describe one "
                   "monolithic run; drop --sample-intervals\n";
      return 2;
    }
    sampling::SampleOptions opts;
    opts.intervals = sample_intervals;
    opts.warmup = sample_warmup;
    opts.jobs = sample_jobs;
    opts.host_profile = host_profile;
    opts.cpi_stack = cpi_stack;
    opts.sim = sim_opts;  // process workers get it via the forwarded argv
    opts.ckpt_cache_dir = ckpt_cache;
    if (sample_process) {
      if (ckpt_cache.empty()) {
        // Workers are separate processes: they restore from disk, so
        // materialise the cache in a throwaway directory.
        char tmpl[] = "/tmp/bsp-sample-XXXXXX";
        const char* dir = ::mkdtemp(tmpl);
        if (!dir) {
          std::cerr << "bsp-sim: cannot create temporary checkpoint cache\n";
          return 1;
        }
        ckpt_cache = dir;
        opts.ckpt_cache_dir = ckpt_cache;
      }
      opts.worker_cmd.push_back(self_exe_path(argv[0]));
      opts.worker_cmd.insert(opts.worker_cmd.end(), raw_args.begin(),
                             raw_args.end());
      // Later flags win in the parse loop, so re-appending the resolved
      // cache dir overrides whatever the original argv said.
      opts.worker_cmd.push_back("--ckpt-cache");
      opts.worker_cmd.push_back(ckpt_cache);
      opts.worker_cmd.push_back("--sample-worker");
      // run_sampled appends the interval index as the final argument.
    }
    const sampling::SampledResult res =
        sampling::run_sampled(cfg, *program, input, kSeed, instructions,
                              warmup, fast_forward, opts);
    if (!sample_out.empty()) {
      std::ofstream os(sample_out);
      if (!os) {
        std::cerr << "bsp-sim: cannot open " << sample_out
                  << " for writing\n";
        return 1;
      }
      for (const sampling::IntervalResult& r : res.intervals)
        os << sampling::interval_to_jsonl(r) << "\n";
    }
    if (!res.ok()) {
      std::cerr << "bsp-sim: " << res.error << "\n";
      return 1;
    }
    print_stats(res.aggregate);
    // The leaves are registered counters, so the stitched aggregate keeps
    // the accounting identity across shards.
    if (cpi_stack)
      std::cout << obs::format_cpi_stack(res.aggregate,
                                         cfg.core.commit_width);
    char buf[320];
    std::snprintf(buf, sizeof buf,
                  "sampled:      %zu intervals, warmup %llu, %zu ckpts "
                  "materialised, %zu reused\n"
                  "IPC estimate: %.6f +/- %.6f (weighted %.6f, n=%u)\n"
                  "wall:         %.3fs total (%.3fs prewarm, %.3fs serial "
                  "detail)\n",
                  res.plan.intervals.size(),
                  static_cast<unsigned long long>(res.plan.sample_warmup),
                  res.ckpt_materialised, res.ckpt_reused, res.ipc.mean,
                  res.ipc.ci95, res.ipc.weighted, res.ipc.n, res.wall_sec,
                  res.prewarm_sec, res.aggregate.host_seconds);
    std::cout << buf;
    return res.exited ? res.exit_code : 0;
  }

  std::optional<Checkpoint> ckpt;
  if (!ckpt_path.empty()) {
    std::string error;
    ckpt = load_checkpoint_file(ckpt_path, &error);
    if (!ckpt) {
      std::cerr << "bsp-sim: " << error << "\n";
      return 1;
    }
  }
  if (fast_forward > 0) {
    if (ckpt) {
      std::cerr << "bsp-sim: --checkpoint and --fast-forward are mutually "
                   "exclusive\n";
      return 2;
    }
    // Through the campaign cache when --ckpt-cache is given (publishes for
    // later runs), a plain emulator fast-forward otherwise.
    campaign::CkptFetch fetch = campaign::fetch_checkpoint(
        ckpt_cache, input, kSeed, *program, fast_forward);
    if (!fetch.ok()) {
      std::cerr << "bsp-sim: " << fetch.error << "\n";
      return 1;
    }
    ckpt = *fetch.checkpoint;
  }
  Simulator sim = ckpt ? Simulator(cfg, *program, *ckpt)
                       : Simulator(cfg, *program);
  if (trace) sim.set_pipe_trace(std::cout, trace_start, trace_end);
  if (detail) sim.enable_detail();
  if (host_profile) sim.enable_host_profile();
  if (cpi_stack) sim.enable_cpi_stack();
  sim.set_options(sim_opts);

  // Structured sinks and the interval sampler stream straight to their
  // files; the ofstreams must outlive run().
  const auto open_out = [](const std::string& path) {
    auto os = std::make_unique<std::ofstream>(path);
    if (!*os) {
      std::cerr << "bsp-sim: cannot open " << path << " for writing\n";
      std::exit(1);
    }
    return os;
  };
  std::unique_ptr<std::ofstream> perfetto_os, konata_os, interval_os;
  std::unique_ptr<obs::ChromeTraceSink> perfetto_sink;
  std::unique_ptr<obs::KonataSink> konata_sink;
  std::unique_ptr<obs::IntervalSampler> sampler;
  if (!perfetto_path.empty()) {
    perfetto_os = open_out(perfetto_path);
    perfetto_sink = std::make_unique<obs::ChromeTraceSink>(*perfetto_os);
    sim.add_trace_sink(perfetto_sink.get());
  }
  if (!konata_path.empty()) {
    konata_os = open_out(konata_path);
    konata_sink = std::make_unique<obs::KonataSink>(*konata_os);
    sim.add_trace_sink(konata_sink.get());
  }
  if (!interval_path.empty()) {
    interval_os = open_out(interval_path);
    sampler = std::make_unique<obs::IntervalSampler>(interval,
                                                     interval_os.get());
    sim.set_interval_sampler(sampler.get());
  }

  const SimResult r = sim.run(instructions, warmup);
  if (!r.ok()) {
    std::cerr << "bsp-sim: " << r.error << "\n";
    return 1;
  }
  const SimStats& s = r.stats;
  print_stats(s);
  if (cpi_stack) std::cout << obs::format_cpi_stack(s, cfg.core.commit_width);
  print_host_profile(s);
  if (detail) {
    const DetailedStats& d = sim.detail();
    const auto line = [](const char* name, const Histogram& h) {
      std::cout << "  " << name << ": mean " << h.mean() << ", p50 "
                << h.percentile(0.5) << ", p90 " << h.percentile(0.9)
                << ", p99 " << h.percentile(0.99) << "\n";
    };
    std::cout << "distributions:\n";
    line("RUU occupancy      ", d.ruu_occupancy);
    line("LSQ occupancy      ", d.lsq_occupancy);
    line("load-to-use cycles ", d.load_to_use);
    line("branch resolve dly ", d.branch_resolve_delay);
    line("commits per cycle  ", d.commit_width);
  }
  return r.exited ? r.exit_code : 0;
}
