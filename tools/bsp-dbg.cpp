// bsp-dbg: interactive debugger over the functional emulator.
//
//   bsp-dbg program.{s,bspo}
//
// Reads commands from stdin (scriptable: `echo "s 10\np all\nq" | bsp-dbg
// prog.s`). Run `h` inside for the command list.
#include <fstream>
#include <iostream>
#include <sstream>

#include "asm/assembler.hpp"
#include "asm/objfile.hpp"
#include "emu/debugger.hpp"

int main(int argc, char** argv) {
  using namespace bsp;
  if (argc != 2 || std::string(argv[1]) == "-h" ||
      std::string(argv[1]) == "--help") {
    std::cout << "usage: bsp-dbg program.{s,bspo}\n";
    return argc == 2 ? 0 : 2;
  }
  const std::string path = argv[1];

  std::optional<Program> program;
  if (path.size() > 5 && path.substr(path.size() - 5) == ".bspo") {
    std::string error;
    program = load_object_file(path, &error);
    if (!program) {
      std::cerr << "bsp-dbg: " << error << "\n";
      return 1;
    }
  } else {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "bsp-dbg: cannot open " << path << "\n";
      return 1;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    AsmResult r = assemble(ss.str());
    if (!r.ok()) {
      std::cerr << r.error_text();
      return 1;
    }
    program = std::move(r.program);
  }

  std::cout << path << ": " << program->text.size()
            << " instructions, entry 0x" << std::hex << program->entry
            << std::dec << " (h for help)\n";
  Debugger dbg(*program, std::cout);
  dbg.repl(std::cin, "(bsp-dbg) ");
  return 0;
}
