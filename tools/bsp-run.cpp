// bsp-run: execute a program (source or object file) on the functional
// emulator.
//
//   bsp-run program.{s,bspo} [--max N] [--stats]
//
// Prints the program's syscall output; --stats adds retirement counters.
#include <fstream>
#include <iostream>
#include <sstream>

#include "asm/assembler.hpp"
#include "asm/objfile.hpp"
#include "emu/checkpoint.hpp"
#include "emu/emulator.hpp"

namespace {

std::optional<bsp::Program> load_program(const std::string& path) {
  using namespace bsp;
  if (path.size() > 5 && path.substr(path.size() - 5) == ".bspo") {
    std::string error;
    auto p = load_object_file(path, &error);
    if (!p) std::cerr << "bsp-run: " << error << "\n";
    return p;
  }
  std::ifstream in(path);
  if (!in) {
    std::cerr << "bsp-run: cannot open " << path << "\n";
    return std::nullopt;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  AsmResult r = assemble(ss.str());
  if (!r.ok()) {
    std::cerr << path << ":\n" << r.error_text();
    return std::nullopt;
  }
  return std::move(r.program);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bsp;
  std::string input, save_ckpt, from_ckpt;
  u64 max_instructions = 1u << 30;
  bool stats = false;
  bool fast = true;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--max" && i + 1 < argc) {
      max_instructions = std::strtoull(argv[++i], nullptr, 0);
    } else if (a == "--stats") {
      stats = true;
    } else if (a == "--no-fast") {
      fast = false;
    } else if (a == "--save-checkpoint" && i + 1 < argc) {
      save_ckpt = argv[++i];
    } else if (a == "--checkpoint" && i + 1 < argc) {
      from_ckpt = argv[++i];
    } else if (a == "-h" || a == "--help") {
      std::cout << "usage: bsp-run program.{s,bspo} [--max N] [--stats]\n"
                << "               [--checkpoint in.bspc] "
                   "[--save-checkpoint out.bspc] [--no-fast]\n"
                << "--no-fast uses the one-instruction step() loop instead "
                   "of the fast interpreter (debugging aid; same results)\n";
      return 0;
    } else if (!a.empty() && a[0] != '-' && input.empty()) {
      input = a;
    } else {
      std::cerr << "bsp-run: unknown argument '" << a << "'\n";
      return 2;
    }
  }
  if (input.empty()) {
    std::cerr << "bsp-run: no input (try --help)\n";
    return 2;
  }

  const auto program = load_program(input);
  if (!program) return 1;

  Emulator emu(*program);
  if (!from_ckpt.empty()) {
    std::string error;
    const auto ckpt = load_checkpoint_file(from_ckpt, &error);
    if (!ckpt) {
      std::cerr << "bsp-run: " << error << "\n";
      return 1;
    }
    restore_checkpoint(emu, *ckpt);
  }
  StepResult final;
  if (fast)
    emu.run_fast(max_instructions, &final);
  else
    emu.run(max_instructions, &final);
  std::cout << emu.output();
  if (final.kind == StepResult::Kind::Fault) {
    std::cerr << "\nbsp-run: fault at pc 0x" << std::hex << emu.pc()
              << std::dec << ": " << final.fault << "\n";
    return 1;
  }
  if (!save_ckpt.empty()) {
    if (!save_checkpoint_file(capture_checkpoint(emu), save_ckpt)) {
      std::cerr << "bsp-run: cannot write " << save_ckpt << "\n";
      return 1;
    }
    std::cerr << "[checkpoint after " << emu.instructions_retired()
              << " instructions -> " << save_ckpt << "]\n";
  }
  if (stats) {
    std::cerr << "\n[" << emu.instructions_retired() << " instructions, "
              << (emu.exited() ? "exited" : "instruction limit reached")
              << ", exit code " << emu.exit_code() << ", "
              << emu.memory().pages_allocated() << " memory pages]\n";
  }
  return emu.exit_code();
}
