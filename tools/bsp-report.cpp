// bsp-report: post-hoc reports over a campaign result store (JSONL).
//
// --cpi-stack aggregates the cpi_* cycle-accounting leaves per machine
// point and renders side-by-side breakdowns — where each technique stack
// spends its commit slots — as a text table (default), per-machine full
// stacks (--full), CSV (--csv) or JSON (--json). Merging is exact: the
// leaves are plain registered counters, so every machine's aggregate keeps
// the identity sum(cpi_*) == cycles * commit width, and the tool exits 1
// if any aggregate violates it — the offline half of CI's identity check.
//
//   bsp-report --cpi-stack results/fig11.jsonl
//   bsp-report --cpi-stack results/fig11.jsonl --json > stacks.json
//   bsp-report --cpi-stack results/fig11.jsonl --full
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "campaign/store.hpp"
#include "config/machine_config.hpp"
#include "obs/cpi_stack.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace bsp;
using namespace bsp::campaign;

// One machine point's aggregate across its ok records, in store order.
struct MachineAgg {
  std::string label;
  unsigned commit_width = 0;
  SimStats stats;
  std::size_t runs = 0;
};

std::vector<MachineAgg> aggregate_by_machine(
    const std::vector<TaskRecord>& records) {
  std::vector<MachineAgg> out;
  std::map<std::string, std::size_t> index;  // label -> out slot
  for (const TaskRecord& rec : records) {
    if (rec.status != "ok") continue;
    const std::string& label = rec.task.machine.label;
    auto it = index.find(label);
    if (it == index.end()) {
      it = index.emplace(label, out.size()).first;
      out.push_back({label, rec.task.machine.build().core.commit_width,
                     SimStats{}, 0});
    }
    MachineAgg& agg = out[it->second];
    agg.stats.merge(rec.stats);
    ++agg.runs;
  }
  return out;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool cpi_stack = false, json = false, csv = false, full = false;
  std::string store_path;

  ArgParser parser(
      "bsp-report: render reports from a campaign result store (JSONL)");
  parser.add_flag("--cpi-stack",
                  "aggregate cpi_* cycle accounting per machine point and "
                  "print side-by-side CPI stacks (store must come from a "
                  "--cpi-stack sweep)",
                  &cpi_stack);
  parser.add_value("--store", "PATH",
                   "result store to read (also accepted as a bare argument)",
                   &store_path);
  parser.add_flag("--full",
                  "print each machine's full stack (slots, share, CPI) "
                  "instead of the side-by-side table",
                  &full);
  parser.add_flag("--csv", "print the side-by-side table as CSV", &csv);
  parser.add_flag("--json",
                  "print one JSON object: per-machine leaf counts, cycles, "
                  "committed, commit width",
                  &json);

  // ArgParser has no positional support; peel off bare arguments as the
  // store path before handing the dashed ones over.
  std::vector<char*> dashed = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (argv[i][0] != '-' && !store_path.empty()) {
      std::cerr << "bsp-report: more than one store path given\n";
      return 2;
    }
    if (argv[i][0] != '-' && store_path.empty())
      store_path = argv[i];
    else
      dashed.push_back(argv[i]);
    // --store's value must stay attached to its option.
    if (std::string(argv[i]) == "--store" && i + 1 < argc)
      dashed.push_back(argv[++i]);
  }
  parser.parse(static_cast<int>(dashed.size()), dashed.data());

  if (store_path.empty()) {
    std::cerr << "bsp-report: no result store given (try --help)\n";
    return 2;
  }
  if (!cpi_stack) {
    std::cerr << "bsp-report: no report selected (try --cpi-stack)\n";
    return 2;
  }

  std::ifstream in(store_path);
  if (!in) {
    std::cerr << "bsp-report: cannot open " << store_path << "\n";
    return 2;
  }
  in.close();
  // load_records dedups to the last record per task id — a store that saw
  // --retry-failed reruns or remote re-dispatch carries superseded lines
  // that must not be double-counted into the aggregates.
  const std::vector<TaskRecord> records = load_records(store_path);
  if (records.empty()) {
    std::cerr << "bsp-report: no parseable records in " << store_path << "\n";
    return 2;
  }

  const std::vector<MachineAgg> machines = aggregate_by_machine(records);
  bool any_enabled = false;
  for (const MachineAgg& m : machines)
    if (obs::cpi_enabled(m.stats)) any_enabled = true;
  if (!any_enabled) {
    std::cerr << "bsp-report: store has no cpi_* counters — rerun the "
                 "sweep with --cpi-stack\n";
    return 2;
  }

  // The identity is checked for every machine regardless of output mode;
  // a violation turns the exit code, not just a table cell.
  bool identity_ok = true;
  std::vector<std::string> violations;
  for (const MachineAgg& m : machines) {
    std::string why;
    if (!obs::cpi_identity_holds(m.stats, m.commit_width, &why)) {
      identity_ok = false;
      violations.push_back(m.label + ": " + why);
    }
  }

  if (json) {
    std::cout << "{\"store\":\"" << json_escape(store_path)
              << "\",\"identity\":" << (identity_ok ? "true" : "false")
              << ",\"machines\":[";
    for (std::size_t i = 0; i < machines.size(); ++i) {
      const MachineAgg& m = machines[i];
      std::cout << (i ? "," : "") << "{\"label\":\"" << json_escape(m.label)
                << "\",\"runs\":" << m.runs << ",\"stack\":"
                << obs::cpi_stack_json(m.stats, m.commit_width) << "}";
    }
    std::cout << "]}\n";
  } else if (full) {
    for (const MachineAgg& m : machines)
      std::cout << "== " << m.label << " (" << m.runs
                << (m.runs == 1 ? " run" : " runs") << ") ==\n"
                << obs::format_cpi_stack(m.stats, m.commit_width) << "\n";
  } else {
    // Side-by-side: one row per leaf that is nonzero anywhere, one column
    // per machine with the leaf's CPI contribution (they sum to the CPI
    // row). Percentages of the slot total ride along in --full mode.
    std::vector<std::string> header = {"leaf", "group"};
    for (const MachineAgg& m : machines) header.push_back(m.label);
    Table table(std::move(header));
    for (const obs::CpiLeafDesc& leaf : obs::cpi_leaves()) {
      bool nonzero = false;
      for (const MachineAgg& m : machines)
        if (m.stats.*leaf.field) nonzero = true;
      if (!nonzero) continue;
      std::vector<std::string> row = {leaf.name, leaf.group};
      for (const MachineAgg& m : machines)
        row.push_back(Table::num(
            obs::cpi_contribution(m.stats.*leaf.field, m.stats.committed,
                                  m.commit_width),
            4));
      table.add_row(std::move(row));
    }
    std::vector<std::string> cpi_row = {"CPI", ""};
    std::vector<std::string> runs_row = {"runs", ""};
    for (const MachineAgg& m : machines) {
      cpi_row.push_back(Table::num(m.stats.ipc() > 0
                                       ? 1.0 / m.stats.ipc()
                                       : 0.0,
                                   4));
      runs_row.push_back(std::to_string(m.runs));
    }
    table.add_row(std::move(cpi_row));
    table.add_row(std::move(runs_row));
    if (csv)
      table.print_csv(std::cout);
    else
      table.print(std::cout);
  }

  if (identity_ok) {
    if (!json) std::cout << "identity: ok (" << machines.size()
                         << (machines.size() == 1 ? " machine" : " machines")
                         << ")\n";
    return 0;
  }
  for (const std::string& v : violations)
    std::cerr << "bsp-report: " << v << "\n";
  return 1;
}
