// bsp-asm: assemble a BSP-32 source file into a BSPO object file.
//
//   bsp-asm input.s [-o output.bspo] [--list]
//
// --list prints the assembled instructions with addresses (a listing).
#include <fstream>
#include <iostream>
#include <sstream>

#include "asm/assembler.hpp"
#include "asm/objfile.hpp"
#include "isa/isa.hpp"

int main(int argc, char** argv) {
  using namespace bsp;
  std::string input, output;
  bool list = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "-o" && i + 1 < argc) {
      output = argv[++i];
    } else if (a == "--list") {
      list = true;
    } else if (a == "-h" || a == "--help") {
      std::cout << "usage: bsp-asm input.s [-o output.bspo] [--list]\n";
      return 0;
    } else if (!a.empty() && a[0] != '-' && input.empty()) {
      input = a;
    } else {
      std::cerr << "bsp-asm: unknown argument '" << a << "'\n";
      return 2;
    }
  }
  if (input.empty()) {
    std::cerr << "bsp-asm: no input file (try --help)\n";
    return 2;
  }
  if (output.empty()) {
    output = input;
    if (const auto dot = output.rfind('.'); dot != std::string::npos)
      output.resize(dot);
    output += ".bspo";
  }

  std::ifstream in(input);
  if (!in) {
    std::cerr << "bsp-asm: cannot open " << input << "\n";
    return 1;
  }
  std::stringstream ss;
  ss << in.rdbuf();

  const AsmResult r = assemble(ss.str());
  if (!r.ok()) {
    std::cerr << input << ":\n" << r.error_text();
    return 1;
  }

  if (list) {
    for (std::size_t i = 0; i < r.program.text.size(); ++i) {
      const u32 pc = r.program.text_base + static_cast<u32>(i) * 4;
      const auto d = decode(r.program.text[i]);
      std::printf("%08x:  %08x  %s\n", pc, r.program.text[i],
                  d ? disassemble(*d, pc).c_str() : "<illegal>");
    }
  }

  if (!save_object_file(r.program, output)) {
    std::cerr << "bsp-asm: cannot write " << output << "\n";
    return 1;
  }
  std::cout << output << ": " << r.program.text.size() << " instructions, "
            << r.program.data.size() << " data bytes, "
            << r.program.symbols.size() << " symbols\n";
  return 0;
}
