# Sample program for the bsp-asm / bsp-run / bsp-sim tools:
# prints the sum of the integers 1..100 (5050), then exits.
.text
main:
  li $t0, 100
  move $t1, $0
loop:
  addu $t1, $t1, $t0
  addiu $t0, $t0, -1
  bgtz $t0, loop
  move $a0, $t1
  li $v0, 1           # print_int
  syscall
  li $v0, 10          # exit
  li $a0, 0
  syscall
