// bsp-sweep: run a named experiment campaign through the campaign engine.
//
// A campaign is a declarative sweep (machine points x workloads x seeds)
// expanded into a deterministic task list, executed on a fault-tolerant
// worker pool (per-task timeout, bounded retry, one co-simulation abort
// never kills the sweep), and checkpointed to a JSONL result store — one
// record per task with the full parameter tuple and SimStats. Rerunning
// with the same --out path resumes: tasks with existing records are
// skipped.
//
// With --isolate process every task runs in its own worker subprocess
// (this binary re-exec'd with the hidden --worker flag): a segfaulting
// configuration is recorded as "crashed" with its signal name, a wedged
// one is SIGKILLed at the --timeout deadline and its core reclaimed, and
// per-task rusage lands in the store. The sweep itself exits 0 whenever it
// ran to completion — per-task failures are data in the store (and the
// summary), not a process error; use --retry-failed on a rerun to retry
// them. Exit 2 is reserved for usage errors.
//
// Distributed mode (campaign/remote.hpp): `--serve HOST:PORT` turns this
// process into a coordinator that shards the expanded task list across
// remote `--connect HOST:PORT` workers over length-prefixed TCP frames.
// Records stream back into the same JSONL store with the same resume
// guarantees; each task lands exactly once no matter how often a dead or
// straggling worker forced a re-dispatch. `--status-endpoint HOST:PORT`
// additionally serves the live progress snapshot as JSON over HTTP.
//
//   bsp-sweep --list
//   bsp-sweep --campaign fig11                      # full paper sweep
//   bsp-sweep --campaign fig11 -n 20000 -w li       # quick smoke slice
//   bsp-sweep --campaign fig12 --out results/fig12.jsonl --retry-failed
//   bsp-sweep --campaign fig11 --isolate process --timeout 600
//   bsp-sweep --campaign fig11 --serve :9000 --status-endpoint :9001
//   bsp-sweep --connect coordinator-host:9000 -j 8
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <chrono>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "campaign/builtin.hpp"
#include "campaign/campaign.hpp"
#include "campaign/remote.hpp"
#include "core/simulator.hpp"
#include "obs/cpi_stack.hpp"
#include "sampling/runner.hpp"
#include "util/cli.hpp"
#include "util/subprocess.hpp"
#include "util/table.hpp"

namespace {

using namespace bsp;
using namespace bsp::campaign;

// Fault-injection hook for the isolation tests and the CI crash-injection
// smoke campaign: BSP_SWEEP_INJECT="kind=id-substring[,kind=id-substring]"
// with kind in {segv, abort, wedge, fail}. A worker whose task id contains
// the substring injects the fault instead of (or before) simulating. The
// variable is inherited across the re-exec, so setting it on the parent
// sweep is enough. Returns a non-empty error for kind=fail.
std::string maybe_inject_fault(const std::string& task_id) {
  const char* spec = std::getenv("BSP_SWEEP_INJECT");
  if (!spec) return "";
  std::string s = spec;
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    const std::string entry = s.substr(pos, comma - pos);
    pos = comma + 1;
    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos) continue;
    const std::string kind = entry.substr(0, eq);
    const std::string substr = entry.substr(eq + 1);
    if (substr.empty() || task_id.find(substr) == std::string::npos)
      continue;
    if (kind == "segv") std::raise(SIGSEGV);
    if (kind == "abort") std::abort();
    if (kind == "wedge")
      for (;;) std::this_thread::sleep_for(std::chrono::seconds(1));
    if (kind == "fail") return "injected failure (BSP_SWEEP_INJECT)";
  }
  return "";
}

// The worker half of the process-isolation protocol: run exactly one task
// and print its TaskRecord JSONL on stdout. The parent scheduler owns
// timeout, retry, and rusage; attempts here is always 1. Exit 0 whenever a
// record was printed — a task-level failure is payload, not a worker
// error.
int run_worker_task(const TaskSpec& task, const TaskRunner& runner) {
  const std::string injected = maybe_inject_fault(task.id());
  const auto t0 = std::chrono::steady_clock::now();
  AttemptResult r;
  if (!injected.empty()) {
    r.error = injected;
  } else {
    r = runner(task);
  }
  TaskRecord rec;
  rec.task = task;
  rec.status = r.error.empty() ? "ok" : "failed";
  rec.error = r.error;
  rec.attempts = 1;
  rec.duration_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  rec.stats = r.stats;
  rec.interval = r.interval;
  rec.series = r.series;
  rec.ckpt_cache = r.ckpt_cache;
  rec.ffwd_sec = r.ffwd_sec;
  rec.sample_intervals = r.sample_intervals;
  rec.sample_warmup = r.sample_warmup;
  rec.ipc_mean = r.ipc_mean;
  rec.ipc_ci95 = r.ipc_ci95;
  rec.samples = r.samples;
  std::cout << to_jsonl(rec) << "\n" << std::flush;
  return 0;
}

// --worker form: the task arrives as an id and is resolved against the
// worker's own expansion of the campaign (requires the parent's spec-shape
// flags on the command line).
int run_worker(const SweepSpec& spec, const TaskRunner& runner,
               const std::string& task_id) {
  const auto tasks = spec.expand();
  for (const auto& t : tasks)
    if (t.id() == task_id) return run_worker_task(t, runner);
  std::cerr << "bsp-sweep --worker: task '" << task_id
            << "' not in the expanded campaign\n";
  return 3;
}

// --worker-json form: the task arrives as a full status:"queued" record
// line (campaign::task_jsonl), making the worker command self-contained —
// no campaign re-expansion, which is what lets remote workers run tasks
// for a spec they never saw.
int run_worker_json(const TaskRunner& runner, const std::string& record) {
  const auto rec = parse_jsonl(record);
  if (!rec) {
    std::cerr << "bsp-sweep --worker-json: unparseable task record\n";
    return 3;
  }
  return run_worker_task(rec->task, runner);
}

}  // namespace

int main(int argc, char** argv) {
  std::string campaign_name;
  bool list = false, dry_run = false, csv = false;
  bool fresh = false, retry_failed = false, no_progress = false;
  bool has_n = false, has_warmup = false, has_ff = false;
  u64 instructions = 0, warmup = 0, fast_forward = 0;
  std::vector<std::string> workloads;
  std::vector<u64> seeds;
  std::string isolate = "thread";
  std::string worker_task, worker_json;
  std::string serve_addr, connect_addr, status_addr, port_file;
  double heartbeat_sec = 1.0, worker_deadline_sec = 15, steal_after_sec = 20;
  CampaignOptions options;

  ArgParser parser(
      "bsp-sweep: declarative, resumable, fault-tolerant experiment "
      "campaigns");
  parser.add_value("--campaign", "NAME", "built-in campaign to run (see "
                   "--list)", &campaign_name);
  parser.add_flag("--list", "list the built-in campaigns", &list);
  parser.add_value("-n, --n, --instructions", "N",
                   "override measured instructions per run",
                   [&](const std::string& v) {
                     instructions = parse_cli_u64("--instructions", v);
                     has_n = true;
                   });
  parser.add_value("--warmup", "N", "override discarded timing warm-up",
                   [&](const std::string& v) {
                     warmup = parse_cli_u64("--warmup", v);
                     has_warmup = true;
                   });
  parser.add_value("--fast-forward", "N",
                   "functionally fast-forward N instructions before timing "
                   "starts (the paper skips ~1B per benchmark); tasks "
                   "sharing a workload+seed reuse one checkpoint",
                   [&](const std::string& v) {
                     fast_forward = parse_cli_u64("--fast-forward", v);
                     has_ff = true;
                   });
  parser.add_value("-w, --workload", "NAME",
                   "restrict to one workload (repeatable)", &workloads);
  parser.add_value("--seed", "S",
                   "workload seed, hex ok (repeatable; default 0x5eed)",
                   &seeds);
  parser.add_value("-j, --jobs", "N",
                   "parallel simulations (default: hardware threads)",
                   &options.scheduler.jobs);
  parser.add_value("--out", "PATH",
                   "JSONL result store (default results/<campaign>.jsonl); "
                   "rerunning resumes from it",
                   &options.out_path);
  parser.add_flag("--fresh", "discard existing records instead of resuming",
                  &fresh);
  parser.add_flag("--retry-failed",
                  "re-run tasks recorded as failed/timeout/crashed",
                  &retry_failed);
  parser.add_value("--timeout", "SEC",
                   "per-task wall-clock timeout (default: none)",
                   &options.scheduler.timeout_sec);
  parser.add_value("--retries", "N",
                   "extra attempts for a failed task (default 1)",
                   [&](const std::string& v) {
                     options.scheduler.max_attempts =
                         1 + parse_cli_unsigned("--retries", v);
                   });
  parser.add_value("--isolate", "MODE",
                   "task isolation: 'thread' (in-process, default) or "
                   "'process' (one worker subprocess per task; crashes "
                   "become \"crashed\" records, timeouts are SIGKILLed and "
                   "reclaimed, rusage is recorded)",
                   &isolate);
  RunnerOptions runner_options;
  parser.add_value("--interval-stats", "N",
                   "record a per-task time-series of counter deltas every N "
                   "committed instructions into each record's \"series\"",
                   [&](const std::string& v) {
                     runner_options.interval =
                         parse_cli_u64("--interval-stats", v);
                   });
  parser.add_flag("--host-profile",
                  "collect per-phase host timings (records' \"host_phases\" "
                  "+ summary breakdown after the progress line)",
                  &runner_options.host_profile);
  parser.add_flag("--cpi-stack",
                  "CPI-stack cycle accounting: every record carries the "
                  "cpi_* leaf counters (sum == cycles * commit width) and a "
                  "per-machine aggregate stack prints after the summary",
                  &runner_options.cpi_stack);
  parser.add_value("--cosim", "MODE",
                   "oracle co-simulation cadence for every task: full "
                   "(default), spot[:N] (full check every Nth commit and at "
                   "every mispredict/syscall), or off; becomes part of each "
                   "task id, so resume stores keep modes apart",
                   &runner_options.cosim);
  parser.add_value("--ckpt-cache", "DIR",
                   "shared checkpoint cache for --fast-forward: each "
                   "distinct (workload, seed) checkpoint is materialised "
                   "once into DIR (atomic, safe for concurrent sweeps) and "
                   "every task — and every later run — restores from it",
                   [&](const std::string& v) {
                     options.scheduler.ckpt_cache_dir = v;
                     runner_options.ckpt_cache_dir = v;
                   });
  unsigned sample_intervals = 0;
  u64 sample_warmup = 2000;
  parser.add_value("--sample-intervals", "K",
                   "sampled simulation: split each task's measured window "
                   "into K intervals, detail-simulate them in sequence from "
                   "functional checkpoints, and record per-interval stats "
                   "plus a mean-IPC estimate with a 95% confidence interval",
                   [&](const std::string& v) {
                     sample_intervals =
                         parse_cli_unsigned("--sample-intervals", v);
                   });
  parser.add_value("--sample-warmup", "N",
                   "per-interval detail warm-up commits discarded before "
                   "each measured interval (default 2000; interval 0 uses "
                   "the task's own warm-up so K=1 matches the monolithic "
                   "run exactly)",
                   [&](const std::string& v) {
                     sample_warmup = parse_cli_u64("--sample-warmup", v);
                   });
  parser.add_flag("--no-progress", "suppress the live progress line",
                  &no_progress);
  parser.add_flag("--dry-run", "print the expanded task list and exit",
                  &dry_run);
  parser.add_flag("--csv", "print the summary table as CSV", &csv);
  parser.add_value("--serve", "HOST:PORT",
                   "coordinate this campaign over TCP instead of running it "
                   "locally: shard tasks across --connect workers, stream "
                   "records into the store (port 0 = ephemeral, see "
                   "--port-file)",
                   &serve_addr);
  parser.add_value("--connect", "HOST:PORT",
                   "run as a remote worker for a --serve coordinator; -j "
                   "sets the advertised slot count and --isolate/--ckpt-"
                   "cache keep their local meaning",
                   &connect_addr);
  parser.add_value("--status-endpoint", "HOST:PORT",
                   "with --serve: answer any HTTP request on this address "
                   "with a JSON snapshot of campaign progress and worker "
                   "state",
                   &status_addr);
  parser.add_value("--port-file", "PATH",
                   "with --serve: atomically write the bound ports "
                   "(port=N, status_port=M) once listening — the launcher "
                   "handshake for port 0",
                   &port_file);
  parser.add_value("--heartbeat", "SEC",
                   "worker PING period in distributed mode; --serve "
                   "forwards it to every worker via the SPEC frame "
                   "(default 1)",
                   &heartbeat_sec);
  parser.add_value("--worker-deadline", "SEC",
                   "with --serve: a worker silent this long is declared "
                   "dead and its in-flight tasks re-dispatched (default 15)",
                   &worker_deadline_sec);
  parser.add_value("--steal-after", "SEC",
                   "with --serve: once the queue is empty, idle workers "
                   "duplicate-dispatch in-flight tasks older than this "
                   "(default 20; first record wins)",
                   &steal_after_sec);
  parser.add_hidden_value("--worker", "TASK-ID",
                          "(internal) run one task and print its record",
                          &worker_task);
  parser.add_hidden_value("--worker-json", "RECORD",
                          "(internal) run the task described by a queued "
                          "record line and print its record",
                          &worker_json);
  parser.parse(argc, argv);

  if (list) {
    Table table({"campaign", "tasks", "description"});
    for (const auto& c : builtin_campaigns())
      table.add_row({c.name, std::to_string(c.make().expand().size()),
                     c.description});
    table.print(std::cout);
    return 0;
  }
  if (isolate != "thread" && isolate != "process") {
    std::cerr << "bsp-sweep: --isolate must be 'thread' or 'process', got '"
              << isolate << "'\n";
    return 2;
  }
  if (!runner_options.cosim.empty()) {
    SimOptions probe;
    if (!parse_cosim(runner_options.cosim, &probe)) {
      std::cerr << "bsp-sweep: --cosim must be full, spot[:N], or off, got '"
                << runner_options.cosim << "'\n";
      return 2;
    }
  }

  // One task = one scheduler slot either way: the sampled runner simulates
  // its intervals serially inside the slot, so sweep-level parallelism
  // (and process isolation) keep working unchanged.
  const auto make_runner = [&]() -> TaskRunner {
    if (sample_intervals == 0) return make_sim_runner(runner_options);
    sampling::SampleOptions sopts;
    sopts.intervals = sample_intervals;
    sopts.warmup = sample_warmup;
    sopts.ckpt_cache_dir = runner_options.ckpt_cache_dir;
    sopts.host_profile = runner_options.host_profile;
    sopts.cpi_stack = runner_options.cpi_stack;
    // Run-wide default; a task's own TaskSpec::cosim still overrides it
    // inside the sampled runner. Validated right after parsing.
    if (!runner_options.cosim.empty())
      parse_cosim(runner_options.cosim, &sopts.sim);
    return sampling::make_sampled_runner(sopts);
  };

  // Self-contained process-isolation worker command: this binary, the
  // per-task observability knobs, and --worker-json as the terminal flag
  // (the scheduler appends the task's queued record line as its value).
  // No spec-shape flags — the record carries the full parameter tuple.
  const auto worker_json_cmd = [&]() -> std::vector<std::string> {
    std::vector<std::string> cmd = {self_exe_path(argv[0])};
    if (!runner_options.ckpt_cache_dir.empty()) {
      cmd.push_back("--ckpt-cache");
      cmd.push_back(runner_options.ckpt_cache_dir);
    }
    if (runner_options.interval) {
      cmd.push_back("--interval-stats");
      cmd.push_back(std::to_string(runner_options.interval));
    }
    if (runner_options.host_profile) cmd.push_back("--host-profile");
    if (runner_options.cpi_stack) cmd.push_back("--cpi-stack");
    if (!runner_options.cosim.empty()) {
      cmd.push_back("--cosim");
      cmd.push_back(runner_options.cosim);
    }
    if (sample_intervals > 0) {
      cmd.push_back("--sample-intervals");
      cmd.push_back(std::to_string(sample_intervals));
      cmd.push_back("--sample-warmup");
      cmd.push_back(std::to_string(sample_warmup));
    }
    cmd.push_back("--worker-json");
    return cmd;
  };

  // Worker entry points that need no campaign: the task (or the whole
  // sweep) arrives from the parent process or the coordinator.
  if (!worker_json.empty()) return run_worker_json(make_runner(), worker_json);

  if (!connect_addr.empty()) {
    const auto addr = parse_socket_addr(connect_addr);
    if (!addr) {
      std::cerr << "bsp-sweep: --connect wants HOST:PORT, got '"
                << connect_addr << "'\n";
      return 2;
    }
    WorkerOptions wopts;
    wopts.connect = *addr;
    wopts.slots = options.scheduler.jobs;
    wopts.heartbeat_sec = heartbeat_sec;
    const WorkerSetup setup = [&](const RemoteSpec& rs, TaskRunner* runner,
                                  SchedulerOptions* sched) {
      // The coordinator's SPEC overrides the observability knobs — every
      // worker must produce records of the same shape — while isolation
      // mode and the checkpoint-cache directory stay host-local choices.
      runner_options.interval = rs.interval;
      runner_options.host_profile = rs.host_profile;
      runner_options.cpi_stack = rs.cpi_stack;
      runner_options.cosim = rs.cosim;
      sample_intervals = static_cast<unsigned>(rs.sample_intervals);
      sample_warmup = rs.sample_warmup;
      sched->ckpt_cache_dir = options.scheduler.ckpt_cache_dir;
      const TaskRunner base = make_runner();
      *runner = [base](const TaskSpec& t) -> AttemptResult {
        const std::string injected = maybe_inject_fault(t.id());
        if (injected.empty()) return base(t);
        AttemptResult r;
        r.error = injected;
        return r;
      };
      if (isolate == "process") {
        sched->isolate = IsolationMode::kProcess;
        sched->worker_cmd = worker_json_cmd();
        sched->worker_task_json = true;
      }
    };
    const WorkerReport wr = run_remote_worker(wopts, setup);
    std::cout << "== worker done ==\n"
              << wr.ran << " ran (" << wr.ok << " ok), "
              << wr.prewarm_groups << " checkpoint groups prewarmed\n";
    if (!wr.error.empty())
      std::cerr << "bsp-sweep --connect: " << wr.error << "\n";
    // Clean DONE is success; anything else (handshake rejection, lost
    // coordinator) is a worker-level failure the launcher should see.
    return wr.done ? 0 : 1;
  }

  if (!serve_addr.empty() && isolate == "process") {
    std::cerr << "bsp-sweep: --serve coordinates only (workers own "
                 "--isolate); drop --isolate process\n";
    return 2;
  }
  if (serve_addr.empty() && (!status_addr.empty() || !port_file.empty())) {
    std::cerr << "bsp-sweep: --status-endpoint/--port-file need --serve\n";
    return 2;
  }

  if (campaign_name.empty()) {
    std::cerr << "bsp-sweep: no --campaign given (try --list or --help)\n";
    return 2;
  }
  const BuiltinCampaign* builtin = find_campaign(campaign_name);
  if (!builtin) {
    std::cerr << "bsp-sweep: unknown campaign '" << campaign_name
              << "' (try --list)\n";
    return 2;
  }

  SweepSpec spec = builtin->make();
  if (!workloads.empty()) spec.workloads = workloads;
  if (!seeds.empty()) spec.seeds = seeds;
  if (has_n) spec.instructions = instructions;
  if (has_warmup) spec.warmup = warmup;
  if (has_ff) spec.fast_forward = fast_forward;
  if (!runner_options.cosim.empty()) spec.cosim = runner_options.cosim;

  if (!worker_task.empty()) return run_worker(spec, make_runner(), worker_task);

  if (dry_run) {
    for (const auto& task : spec.expand()) std::cout << task.id() << "\n";
    return 0;
  }

  if (isolate == "process") {
    options.scheduler.isolate = IsolationMode::kProcess;
    options.scheduler.worker_cmd = worker_json_cmd();
    options.scheduler.worker_task_json = true;
  }

  options.fresh = fresh;
  options.retry_failed = retry_failed;
  options.progress = !no_progress;
  if (options.out_path.empty())
    options.out_path = "results/" + spec.name + ".jsonl";

  CampaignReport report;
  if (!serve_addr.empty()) {
    const auto bind = parse_socket_addr(serve_addr);
    if (!bind) {
      std::cerr << "bsp-sweep: --serve wants HOST:PORT, got '" << serve_addr
                << "'\n";
      return 2;
    }
    RemoteOptions ropts;
    ropts.bind = *bind;
    if (!status_addr.empty()) {
      const auto sb = parse_socket_addr(status_addr);
      if (!sb) {
        std::cerr << "bsp-sweep: --status-endpoint wants HOST:PORT, got '"
                  << status_addr << "'\n";
        return 2;
      }
      ropts.status = true;
      ropts.status_bind = *sb;
    }
    ropts.port_file = port_file;
    ropts.heartbeat_sec = heartbeat_sec;
    ropts.worker_deadline_sec = worker_deadline_sec;
    ropts.steal_after_sec = steal_after_sec;
    ropts.spec.campaign = spec.name;
    ropts.spec.interval = runner_options.interval;
    ropts.spec.host_profile = runner_options.host_profile;
    ropts.spec.cpi_stack = runner_options.cpi_stack;
    ropts.spec.sample_intervals = sample_intervals;
    ropts.spec.sample_warmup = sample_warmup;
    ropts.spec.cosim = runner_options.cosim;
    ropts.spec.timeout_sec = options.scheduler.timeout_sec;
    ropts.spec.max_attempts = options.scheduler.max_attempts;
    report = serve_campaign(spec, options, ropts);
  } else {
    report = run_campaign(spec, make_runner(), options);
  }

  std::cout << "== campaign " << spec.name << " ==\n"
            << report.total << " tasks: " << report.skipped << " resumed, "
            << report.ran << " ran (" << report.ok << " ok, "
            << report.failed << " failed, " << report.crashed
            << " crashed, " << report.retried << " retried)\n";
  if (report.prewarm.groups > 0 || report.ckpt_hits > 0 ||
      report.ckpt_misses > 0) {
    char ffwd[32];
    std::snprintf(ffwd, sizeof ffwd, "%.2f", report.prewarm.ffwd_sec);
    std::cout << "checkpoint cache: " << report.prewarm.materialised
              << " materialised, " << report.prewarm.reused << " reused ("
              << ffwd << "s fast-forward), tasks " << report.ckpt_hits
              << " hit / " << report.ckpt_misses << " miss\n";
  }
  std::cout << "results: " << options.out_path << "\n\n";
  const Table summary = summary_table(spec, report);
  if (csv)
    summary.print_csv(std::cout);
  else
    summary.print(std::cout);

  if (runner_options.cpi_stack) {
    // Per-machine CPI aggregate: cpi_* leaves are registered counters, so
    // merging ok records keeps the identity sum == cycles * commit width.
    for (const auto& machine : spec.machines) {
      SimStats agg;
      std::size_t n = 0;
      for (const auto& rec : report.records)
        if (rec.status == "ok" && rec.task.machine.label == machine.label) {
          agg.merge(rec.stats);
          ++n;
        }
      if (n == 0) continue;
      std::cout << "\n== cpi stack: " << machine.label << " (" << n
                << (n == 1 ? " run" : " runs") << ") ==\n"
                << obs::format_cpi_stack(agg,
                                         machine.build().core.commit_width);
    }
  }

  std::size_t bad = 0;
  for (const auto& rec : report.records)
    if (rec.status != "ok") {
      if (bad == 0) std::cout << "\nfailures:\n";
      if (++bad <= 10)
        std::cout << "  " << rec.task.id() << ": " << rec.status
                  << (rec.error.empty() ? "" : " (" + rec.error + ")")
                  << "\n";
    }
  if (bad > 10) std::cout << "  ... and " << bad - 10 << " more\n";
  // Completing the sweep is success even when tasks failed — containment
  // means the failures are records in the store, not a dead process. The
  // counts above and the JSONL are the signal CI should assert on.
  return 0;
}
