// bsp-sweep: run a named experiment campaign through the campaign engine.
//
// A campaign is a declarative sweep (machine points x workloads x seeds)
// expanded into a deterministic task list, executed on a fault-tolerant
// worker pool (per-task timeout, bounded retry, one co-simulation abort
// never kills the sweep), and checkpointed to a JSONL result store — one
// record per task with the full parameter tuple and SimStats. Rerunning
// with the same --out path resumes: tasks with existing records are
// skipped.
//
//   bsp-sweep --list
//   bsp-sweep --campaign fig11                      # full paper sweep
//   bsp-sweep --campaign fig11 -n 20000 -w li       # quick smoke slice
//   bsp-sweep --campaign fig12 --out results/fig12.jsonl --retry-failed
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "campaign/builtin.hpp"
#include "campaign/campaign.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace bsp;
  using namespace bsp::campaign;

  std::string campaign_name;
  bool list = false, dry_run = false, csv = false;
  bool fresh = false, retry_failed = false, no_progress = false;
  bool has_n = false, has_warmup = false;
  u64 instructions = 0, warmup = 0;
  std::vector<std::string> workloads;
  std::vector<u64> seeds;
  CampaignOptions options;

  ArgParser parser(
      "bsp-sweep: declarative, resumable, fault-tolerant experiment "
      "campaigns");
  parser.add_value("--campaign", "NAME", "built-in campaign to run (see "
                   "--list)", &campaign_name);
  parser.add_flag("--list", "list the built-in campaigns", &list);
  parser.add_value("-n, --n, --instructions", "N",
                   "override measured instructions per run",
                   [&](const std::string& v) {
                     instructions = std::strtoull(v.c_str(), nullptr, 0);
                     has_n = true;
                   });
  parser.add_value("--warmup", "N", "override discarded timing warm-up",
                   [&](const std::string& v) {
                     warmup = std::strtoull(v.c_str(), nullptr, 0);
                     has_warmup = true;
                   });
  parser.add_value("-w, --workload", "NAME",
                   "restrict to one workload (repeatable)", &workloads);
  parser.add_value("--seed", "S",
                   "workload seed, hex ok (repeatable; default 0x5eed)",
                   &seeds);
  parser.add_value("-j, --jobs", "N",
                   "parallel simulations (default: hardware threads)",
                   &options.scheduler.jobs);
  parser.add_value("--out", "PATH",
                   "JSONL result store (default results/<campaign>.jsonl); "
                   "rerunning resumes from it",
                   &options.out_path);
  parser.add_flag("--fresh", "discard existing records instead of resuming",
                  &fresh);
  parser.add_flag("--retry-failed",
                  "re-run tasks recorded as failed/timeout", &retry_failed);
  parser.add_value("--timeout", "SEC",
                   "per-task wall-clock timeout (default: none)",
                   &options.scheduler.timeout_sec);
  parser.add_value("--retries", "N",
                   "extra attempts for a failed task (default 1)",
                   [&](const std::string& v) {
                     options.scheduler.max_attempts =
                         1 + static_cast<unsigned>(
                                 std::strtoul(v.c_str(), nullptr, 0));
                   });
  RunnerOptions runner_options;
  parser.add_value("--interval-stats", "N",
                   "record a per-task time-series of counter deltas every N "
                   "committed instructions into each record's \"series\"",
                   [&](const std::string& v) {
                     runner_options.interval =
                         std::strtoull(v.c_str(), nullptr, 0);
                   });
  parser.add_flag("--host-profile",
                  "collect per-phase host timings (records' \"host_phases\" "
                  "+ summary breakdown after the progress line)",
                  &runner_options.host_profile);
  parser.add_flag("--no-progress", "suppress the live progress line",
                  &no_progress);
  parser.add_flag("--dry-run", "print the expanded task list and exit",
                  &dry_run);
  parser.add_flag("--csv", "print the summary table as CSV", &csv);
  parser.parse(argc, argv);

  if (list) {
    Table table({"campaign", "tasks", "description"});
    for (const auto& c : builtin_campaigns())
      table.add_row({c.name, std::to_string(c.make().expand().size()),
                     c.description});
    table.print(std::cout);
    return 0;
  }
  if (campaign_name.empty()) {
    std::cerr << "bsp-sweep: no --campaign given (try --list or --help)\n";
    return 2;
  }
  const BuiltinCampaign* builtin = find_campaign(campaign_name);
  if (!builtin) {
    std::cerr << "bsp-sweep: unknown campaign '" << campaign_name
              << "' (try --list)\n";
    return 2;
  }

  SweepSpec spec = builtin->make();
  if (!workloads.empty()) spec.workloads = workloads;
  if (!seeds.empty()) spec.seeds = seeds;
  if (has_n) spec.instructions = instructions;
  if (has_warmup) spec.warmup = warmup;

  if (dry_run) {
    for (const auto& task : spec.expand()) std::cout << task.id() << "\n";
    return 0;
  }

  options.fresh = fresh;
  options.retry_failed = retry_failed;
  options.progress = !no_progress;
  if (options.out_path.empty())
    options.out_path = "results/" + spec.name + ".jsonl";

  const CampaignReport report =
      run_campaign(spec, make_sim_runner(runner_options), options);

  std::cout << "== campaign " << spec.name << " ==\n"
            << report.total << " tasks: " << report.skipped << " resumed, "
            << report.ran << " ran (" << report.ok << " ok, "
            << report.failed << " failed, " << report.retried
            << " retried)\n"
            << "results: " << options.out_path << "\n\n";
  const Table summary = summary_table(spec, report);
  if (csv)
    summary.print_csv(std::cout);
  else
    summary.print(std::cout);

  std::size_t bad = 0;
  for (const auto& rec : report.records)
    if (rec.status != "ok") {
      if (bad == 0) std::cout << "\nfailures:\n";
      if (++bad <= 10)
        std::cout << "  " << rec.task.id() << ": " << rec.status
                  << (rec.error.empty() ? "" : " (" + rec.error + ")")
                  << "\n";
    }
  if (bad > 10) std::cout << "  ... and " << bad - 10 << " more\n";
  return bad ? 1 : 0;
}
