// Regression guards for the Table-1 workload tuning: each kernel's gshare
// accuracy must stay near its published target (where the archival paper
// preserves it), and the qualitative orderings the reproduction depends on
// must hold. Tolerances are loose enough to survive benign kernel edits but
// tight enough to catch a de-tuned suite.
#include <gtest/gtest.h>

#include <map>

#include "trace/studies.hpp"
#include "trace/trace.hpp"
#include "workloads/workloads.hpp"

namespace bsp {
namespace {

struct Profile {
  double accuracy = 0;
  double loads = 0;
  double stores = 0;
};

const Profile& profile(const std::string& name) {
  static std::map<std::string, Profile> cache;
  const auto it = cache.find(name);
  if (it != cache.end()) return it->second;
  const Workload w = build_workload(name);
  EarlyBranchStudy study;
  u64 n = 0, loads = 0, stores = 0;
  run_trace(w.program, 10'000, 200'000, [&](const ExecRecord& rec) {
    ++n;
    loads += rec.is_load;
    stores += rec.is_store;
    study.observe(rec);
    return true;
  });
  Profile p;
  p.accuracy = study.accuracy();
  p.loads = static_cast<double>(loads) / n;
  p.stores = static_cast<double>(stores) / n;
  return cache.emplace(name, p).first->second;
}

class Table1Targets : public ::testing::TestWithParam<std::string> {};

TEST_P(Table1Targets, BranchAccuracyNearPaperTarget) {
  const WorkloadInfo info = workload_info(GetParam());
  if (!info.paper_branch_accuracy) GTEST_SKIP() << "target lost in archive";
  EXPECT_NEAR(profile(GetParam()).accuracy, *info.paper_branch_accuracy,
              0.06)
      << GetParam();
}

TEST_P(Table1Targets, HasRealisticMemoryTraffic) {
  const Profile& p = profile(GetParam());
  EXPECT_GT(p.loads, 0.03) << GetParam() << " has too few loads";
  EXPECT_LT(p.loads, 0.45) << GetParam() << " is loads-only";
  EXPECT_GT(p.stores, 0.0) << GetParam() << " never stores";
}

INSTANTIATE_TEST_SUITE_P(AllKernels, Table1Targets,
                         ::testing::ValuesIn(workload_names()),
                         [](const auto& info) { return info.param; });

TEST(Table1Orderings, SuiteShapeMatchesThePaper) {
  // go least predictable, mcf most; mcf is the memory-bound outlier.
  double min_acc = 1.0, max_acc = 0.0;
  std::string min_name, max_name;
  for (const auto& name : workload_names()) {
    const double a = profile(name).accuracy;
    if (a < min_acc) { min_acc = a; min_name = name; }
    if (a > max_acc) { max_acc = a; max_name = name; }
  }
  EXPECT_EQ(min_name, "go");
  EXPECT_EQ(max_name, "mcf");
}

}  // namespace
}  // namespace bsp
