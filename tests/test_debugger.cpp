// Debugger engine tests: every command, breakpoints, and scripted sessions.
#include <gtest/gtest.h>

#include <sstream>

#include "asm/assembler.hpp"
#include "emu/debugger.hpp"

namespace bsp {
namespace {

Program sample() {
  const AsmResult r = assemble(R"(
.text
main:
  li $t0, 3
loop:
  addiu $t1, $t1, 5
  addiu $t0, $t0, -1
  bgtz $t0, loop
  sw $t1, 0($gp)
  lw $t2, 0($gp)
  li $v0, 10
  li $a0, 0
  syscall
.data
slot: .word 0
)");
  EXPECT_TRUE(r.ok()) << r.error_text();
  return r.program;
}

struct Session {
  std::ostringstream out;
  Debugger dbg;
  explicit Session() : dbg(sample(), out) {}
  std::string run(const std::string& script) {
    std::istringstream in(script);
    dbg.repl(in);
    return out.str();
  }
};

TEST(Debugger, StepPrintsInstructions) {
  Session s;
  const std::string out = s.run("s 3\nq\n");
  EXPECT_NE(out.find("lui $t0, 0x0"), std::string::npos);
  EXPECT_NE(out.find("ori $t0, $t0, 3"), std::string::npos);
  EXPECT_NE(out.find("addiu $t1, $t1, 5"), std::string::npos);
}

TEST(Debugger, RunStopsAtBreakpoint) {
  Session s;
  const std::string out = s.run("b loop\nr\np $t0\nq\n");
  EXPECT_NE(out.find("breakpoint set"), std::string::npos);
  EXPECT_NE(out.find("breakpoint:"), std::string::npos);
  // First arrival at `loop`: $t0 still 3.
  EXPECT_NE(out.find("$t0 = 0x3 (3)"), std::string::npos);
}

TEST(Debugger, BreakpointToggles) {
  Session s;
  s.run("b loop\nb loop\nq\n");
  EXPECT_FALSE(s.dbg.breakpoint_at(s.dbg.emulator().pc() + 8));
  const std::string out = s.out.str();
  EXPECT_NE(out.find("breakpoint removed"), std::string::npos);
}

TEST(Debugger, RunToExitReportsCode) {
  Session s;
  const std::string out = s.run("r\nq\n");
  EXPECT_NE(out.find("program exited with code 0"), std::string::npos);
}

TEST(Debugger, PrintAllAndSingleRegisters) {
  Session s;
  const std::string out = s.run("r\np\np $t1\nq\n");
  EXPECT_NE(out.find("$zero"), std::string::npos);
  EXPECT_NE(out.find("pc = 0x"), std::string::npos);
  EXPECT_NE(out.find("$t1 = 0xf (15)"), std::string::npos);  // 3 * 5
}

TEST(Debugger, MemoryDumpSeesTheStore) {
  Session s;
  // Run to completion: slot holds 15.
  const std::string out = s.run("r\nm slot 1\nq\n");
  EXPECT_NE(out.find(": 0x0000000f"), std::string::npos);
}

TEST(Debugger, TraceShowsLastEffects) {
  Session s;
  // Step through li(2) + 3 loop iterations (3 instr each) + sw = 12
  // instructions; the 12th is the sw.
  const std::string out = s.run("s 12\nt\nq\n");
  EXPECT_NE(out.find("stored 0xf"), std::string::npos);
}

TEST(Debugger, DisassembleAtSymbol) {
  Session s;
  const std::string out = s.run("d loop 2\nq\n");
  EXPECT_NE(out.find("addiu $t1, $t1, 5"), std::string::npos);
  EXPECT_NE(out.find("addiu $t0, $t0, -1"), std::string::npos);
}

TEST(Debugger, ResetRestores) {
  Session s;
  const std::string out = s.run("s 4\nreset\np $t0\nq\n");
  EXPECT_NE(out.find("reset; pc = 0x400000"), std::string::npos);
  EXPECT_NE(out.find("$t0 = 0x0 (0)"), std::string::npos);
}

TEST(Debugger, HandlesUnknownInputGracefully) {
  Session s;
  const std::string out =
      s.run("bogus\nb nosuchsymbol\np $t99\nm\nh\nq\n");
  EXPECT_NE(out.find("unknown command"), std::string::npos);
  EXPECT_NE(out.find("unknown address or symbol"), std::string::npos);
  EXPECT_NE(out.find("unknown register"), std::string::npos);
  EXPECT_NE(out.find("usage: m"), std::string::npos);
  EXPECT_NE(out.find("commands:"), std::string::npos);
}

}  // namespace
}  // namespace bsp
