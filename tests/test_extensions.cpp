// Tests for the paper-suggested extensions: speculative partial-match
// forwarding (§5.1) and narrow-width slice relaxation (§6).
#include <gtest/gtest.h>

#include "core/simulator.hpp"
#include "lsq/disambig.hpp"
#include "workloads/workloads.hpp"

#include "asm/assembler.hpp"

namespace bsp {
namespace {

StoreView store(int id, unsigned bits, u32 addr, unsigned bytes,
                bool data_ready, u32 data = 0) {
  return StoreView{id, bits, addr, bytes, data_ready, data};
}

// --- disambiguator-level behaviour ---------------------------------------------

TEST(SpecForward, UniquePartialMatchForwardsSpeculatively) {
  // Store fully known; load has only 16 bits; they agree on those bits.
  const std::vector<StoreView> stores = {
      store(5, 32, 0x00011000, 4, true, 0xabcdef01)};
  const LoadQuery load{16, 0x00001000, 4};  // same low 16 bits
  const DisambigResult off = disambiguate_load(load, stores, true, false);
  EXPECT_EQ(off.decision, LoadDecision::WaitStore);
  const DisambigResult on = disambiguate_load(load, stores, true, true);
  EXPECT_EQ(on.decision, LoadDecision::SpecForward);
  EXPECT_EQ(on.store_id, 5);
  EXPECT_EQ(on.forwarded, 0xabcdef01u);
  EXPECT_TRUE(on.used_partial);
}

TEST(SpecForward, RequiresUniqueness) {
  const std::vector<StoreView> stores = {
      store(1, 32, 0x00011000, 4, true, 1),
      store(2, 32, 0x00021000, 4, true, 2)};  // both match the low 16 bits
  EXPECT_EQ(disambiguate_load({16, 0x00001000, 4}, stores, true, true)
                .decision,
            LoadDecision::WaitStore);
}

TEST(SpecForward, RequiresReadyDataAndFullStoreAddress) {
  EXPECT_EQ(disambiguate_load({16, 0x1000, 4},
                              std::vector<StoreView>{
                                  store(1, 32, 0x00011000, 4, false)},
                              true, true)
                .decision,
            LoadDecision::WaitStore);
  EXPECT_EQ(disambiguate_load({16, 0x1000, 4},
                              std::vector<StoreView>{
                                  store(1, 16, 0x00001000, 4, true, 9)},
                              true, true)
                .decision,
            LoadDecision::WaitStore);
}

TEST(SpecForward, ExtractsSubwordBytesUsingKnownLowBits) {
  const std::vector<StoreView> stores = {
      store(3, 32, 0x00011000, 4, true, 0x44332211)};
  const DisambigResult r =
      disambiguate_load({16, 0x00001002, 1}, stores, true, true);
  ASSERT_EQ(r.decision, LoadDecision::SpecForward);
  EXPECT_EQ(r.forwarded, 0x33u);
}

TEST(SpecForward, NarrowStoreCannotSpeculativelyCoverWiderLoad) {
  const std::vector<StoreView> stores = {
      store(3, 32, 0x00011000, 1, true, 0x11)};
  EXPECT_EQ(disambiguate_load({16, 0x00001000, 4}, stores, true, true)
                .decision,
            LoadDecision::WaitStore);
}

TEST(SpecForward, FullMatchStillPreferred) {
  // When the load address is complete, a real Forward must happen, not a
  // speculative one.
  const std::vector<StoreView> stores = {
      store(4, 32, 0x1000, 4, true, 0x99)};
  const DisambigResult r =
      disambiguate_load({32, 0x1000, 4}, stores, true, true);
  EXPECT_EQ(r.decision, LoadDecision::Forward);
}

// --- core-level behaviour ---------------------------------------------------------

Program compile(const std::string& src) {
  AsmResult r = assemble(src);
  EXPECT_TRUE(r.ok()) << r.error_text();
  return r.program;
}

// A store-then-load pattern where the load's upper address half arrives a
// slice late: spec-forwarding should fire, essentially always confirm, and
// never break co-simulation.
TEST(SpecForward, CoreForwardsAndConfirms) {
  const std::string src = R"(
.text
main:
  li $t0, 4000
  la $s0, buf
loop:
  andi $t1, $t0, 0xfc
  addu $t2, $s0, $t1
  sw $t0, 0($t2)
  or $t6, $t2, $0         # delays the load's agen one slice behind the
  lw $t3, 0($t6)          # store's: a unique *partial* match window opens
  addu $t4, $t4, $t3
  addiu $t0, $t0, -1
  bgtz $t0, loop
  li $v0, 10
  li $a0, 0
  syscall
.data
buf: .space 512
)";
  const TechniqueSet with_spec =
      kAllTechniques | static_cast<unsigned>(Technique::SpecForward);
  const SimResult r =
      simulate(bitsliced_machine(4, with_spec), compile(src), 1u << 20);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_TRUE(r.exited);
  EXPECT_GT(r.stats.spec_forwards, 100u);
  // Same-address forwards always confirm.
  EXPECT_EQ(r.stats.spec_forward_misses, 0u);
}

// Adversarial aliasing: two regions 64 KB apart (identical low 16 bits).
// Speculative forwards to the *wrong* region must be caught by verification
// (misses counted) and the run must still co-simulate.
TEST(SpecForward, CoreCatchesWrongSpeculation) {
  const std::string src = R"(
.text
main:
  li $t0, 4000
  la $s0, a
  la $s1, b
loop:
  andi $t1, $t0, 0xfc
  addu $t2, $s0, $t1
  addu $t3, $s1, $t1
  sw $t0, 0($t2)          # store to region a
  or $t6, $t3, $0         # delay opens the speculation window
  lw $t4, 0($t6)          # load from region b: same low 16 bits!
  addu $t5, $t5, $t4
  addiu $t0, $t0, -1
  bgtz $t0, loop
  li $v0, 10
  li $a0, 0
  syscall
.data
a: .space 65536
b: .space 1024
)";
  const TechniqueSet with_spec =
      kAllTechniques | static_cast<unsigned>(Technique::SpecForward);
  const SimResult r =
      simulate(bitsliced_machine(2, with_spec), compile(src), 1u << 20);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_TRUE(r.exited);
  // b's words are never written, a's stores hold t0 != 0: every speculative
  // forward that fired was wrong and must have been refuted.
  EXPECT_EQ(r.stats.spec_forwards, r.stats.spec_forward_misses);
}

TEST(NarrowWidth, CountsNarrowResultsAndHelpsNarrowChains) {
  // A chain of small-value adds: every result fits in the low slice, so the
  // narrow-width machine releases high slices early and the dependent chain
  // runs at base speed even at slice-by-4.
  const std::string src = R"(
.text
main:
  li $t0, 30000
loop:
  andi $t1, $t0, 0xff
  addu $t2, $t1, $t1
  addu $t3, $t2, $t1
  addu $t4, $t3, $t2
  addu $t5, $t4, $t3
  addiu $t0, $t0, -1
  bgtz $t0, loop
  li $v0, 10
  li $a0, 0
  syscall
)";
  const Program p = compile(src);
  // 16-bit slices: every value in this kernel (< 2^15) is "narrow".
  const TechniqueSet with_nw =
      kAllTechniques | static_cast<unsigned>(Technique::NarrowWidth);
  const SimResult off =
      simulate(bitsliced_machine(2, kAllTechniques), p, 150'000);
  const SimResult on = simulate(bitsliced_machine(2, with_nw), p, 150'000);
  ASSERT_TRUE(off.ok()) << off.error;
  ASSERT_TRUE(on.ok()) << on.error;
  EXPECT_EQ(off.stats.narrow_operands, 0u) << "counter gated on technique";
  EXPECT_GT(on.stats.narrow_operands, 100'000u);
  EXPECT_GE(on.stats.ipc(), off.stats.ipc());
}

TEST(SumAddressed, SpeedsUpLoadChainsWithoutPartialTag) {
  // A pointer-chase where address generation is the critical path: SAM
  // starts each cache access one agen stage earlier.
  const std::string src = R"(
.text
main:
  li $t0, 20000
  la $t1, ring
loop:
  lw $t1, 0($t1)
  lw $t1, 0($t1)
  addiu $t0, $t0, -1
  bgtz $t0, loop
  li $v0, 10
  li $a0, 0
  syscall
.data
ring: .word ring
)";
  const Program p = compile(src);
  const TechniqueSet without =
      static_cast<unsigned>(Technique::PartialBypass) |
      static_cast<unsigned>(Technique::EarlyLsq);
  const TechniqueSet with_sam =
      without | static_cast<unsigned>(Technique::SumAddressed);
  const SimResult off = simulate(bitsliced_machine(4, without), p, 100'000);
  const SimResult on = simulate(bitsliced_machine(4, with_sam), p, 100'000);
  ASSERT_TRUE(off.ok()) << off.error;
  ASSERT_TRUE(on.ok()) << on.error;
  EXPECT_GT(on.stats.ipc(), 1.05 * off.stats.ipc())
      << "SAM must shorten the load-to-load critical path";
}

TEST(Extensions, AllWorkloadsCoSimulateWithExtendedSet) {
  const TechniqueSet everything =
      kExtendedTechniques | static_cast<unsigned>(Technique::SumAddressed);
  for (const char* name : {"vortex", "li", "gcc"}) {
    const Workload w = build_workload(name);
    const SimResult r =
        simulate(bitsliced_machine(4, everything), w.program, 20'000);
    ASSERT_TRUE(r.ok()) << name << ": " << r.error;
    EXPECT_EQ(r.stats.committed, 20'000u);
  }
}

}  // namespace
}  // namespace bsp
