// Floating-point subset tests: encodings, assembler, emulator semantics
// against host IEEE-754, timing-core co-simulation on the Table-2 FP units,
// and a golden numeric program.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "asm/assembler.hpp"
#include "core/simulator.hpp"
#include "emu/emulator.hpp"
#include "util/rng.hpp"

namespace bsp {
namespace {

u32 bits_of(float f) {
  u32 b;
  std::memcpy(&b, &f, sizeof b);
  return b;
}

float float_of(u32 b) {
  float f;
  std::memcpy(&f, &b, sizeof f);
  return f;
}

Program compile(const std::string& src) {
  AsmResult r = assemble(src);
  EXPECT_TRUE(r.ok()) << r.error_text();
  return r.program;
}

TEST(Fp, EncodeDecodeRoundTrip) {
  const std::vector<DecodedInst> insts = {
      make_fp3(Op::ADD_S, 1, 2, 3),  make_fp3(Op::SUB_S, 4, 5, 6),
      make_fp3(Op::MUL_S, 7, 8, 9),  make_fp3(Op::DIV_S, 10, 11, 12),
      make_fp2(Op::SQRT_S, 13, 14),  make_fp2(Op::ABS_S, 15, 16),
      make_fp2(Op::MOV_S, 17, 18),   make_fp2(Op::NEG_S, 19, 20),
      make_fp2(Op::CVT_W_S, 21, 22), make_fp2(Op::CVT_S_W, 23, 24),
      make_fpcmp(Op::C_EQ_S, 25, 26), make_fpcmp(Op::C_LT_S, 27, 28),
      make_fpcmp(Op::C_LE_S, 29, 30), make_mfc1(R_T0, 31),
      make_mtc1(R_T1, 0),            make_fpmem(Op::LWC1, 5, R_SP, -16),
      make_fpmem(Op::SWC1, 6, R_GP, 32), make_fpbr(Op::BC1T, -4),
      make_fpbr(Op::BC1F, 7),
  };
  for (const auto& d : insts) {
    const auto back = decode(d.raw);
    ASSERT_TRUE(back.has_value()) << disassemble(d, 0);
    EXPECT_EQ(back->op, d.op) << disassemble(d, 0);
    EXPECT_EQ(encode(*back), d.raw);
  }
}

TEST(Fp, ExtendedRegisterAccessors) {
  const auto add = make_fp3(Op::ADD_S, 1, 2, 3);
  EXPECT_EQ(add.dest_ext(), kExtFpBase + 1);
  EXPECT_EQ(add.src1_ext(), kExtFpBase + 2);
  EXPECT_EQ(add.src2_ext(), kExtFpBase + 3);
  EXPECT_EQ(add.dest(), 0u) << "no GPR destination";
  EXPECT_TRUE(add.is_fp());

  const auto cmp = make_fpcmp(Op::C_LT_S, 4, 5);
  EXPECT_EQ(cmp.dest_ext(), kExtFcc);
  const auto br = make_fpbr(Op::BC1T, 2);
  EXPECT_EQ(br.src1_ext(), kExtFcc);
  EXPECT_TRUE(br.is_cond_branch());

  const auto mfc = make_mfc1(R_T3, 7);
  EXPECT_EQ(mfc.dest(), static_cast<unsigned>(R_T3));
  EXPECT_EQ(mfc.dest_ext(), static_cast<unsigned>(R_T3));
  EXPECT_EQ(mfc.src1_ext(), kExtFpBase + 7);

  const auto lw = make_fpmem(Op::LWC1, 8, R_SP, 0);
  EXPECT_TRUE(lw.is_load());
  EXPECT_EQ(lw.dest_ext(), kExtFpBase + 8);
  EXPECT_EQ(lw.src1_ext(), static_cast<unsigned>(R_SP));
  const auto sw = make_fpmem(Op::SWC1, 9, R_SP, 4);
  EXPECT_TRUE(sw.is_store());
  EXPECT_EQ(sw.src2_ext(), kExtFpBase + 9);

  // Integer instructions are unchanged by the extended accessors.
  const auto addu = make_r3(Op::ADDU, 1, 2, 3);
  EXPECT_EQ(addu.dest_ext(), addu.dest());
  EXPECT_FALSE(addu.is_fp());
}

TEST(Fp, ArithmeticMatchesHostIeee) {
  Rng rng(0xF10A);
  for (int i = 0; i < 5000; ++i) {
    // Finite, normal-ish inputs.
    const float a = (static_cast<i32>(rng.next()) % 100000) / 97.0f;
    const float b = (static_cast<i32>(rng.next()) % 100000) / 89.0f + 0.5f;
    EXPECT_EQ(fp_alu_result(make_fp3(Op::ADD_S, 0, 1, 2), bits_of(a),
                            bits_of(b)),
              bits_of(a + b));
    EXPECT_EQ(fp_alu_result(make_fp3(Op::MUL_S, 0, 1, 2), bits_of(a),
                            bits_of(b)),
              bits_of(a * b));
    EXPECT_EQ(fp_alu_result(make_fp3(Op::DIV_S, 0, 1, 2), bits_of(a),
                            bits_of(b)),
              bits_of(a / b));
    EXPECT_EQ(fp_compare_result(make_fpcmp(Op::C_LT_S, 1, 2), bits_of(a),
                                bits_of(b)),
              a < b);
  }
  EXPECT_EQ(float_of(fp_alu_result(make_fp2(Op::SQRT_S, 0, 1),
                                   bits_of(9.0f), 0)),
            3.0f);
  EXPECT_EQ(fp_alu_result(make_fp2(Op::ABS_S, 0, 1), bits_of(-2.5f), 0),
            bits_of(2.5f));
  EXPECT_EQ(fp_alu_result(make_fp2(Op::NEG_S, 0, 1), bits_of(2.5f), 0),
            bits_of(-2.5f));
  EXPECT_EQ(fp_alu_result(make_fp2(Op::CVT_W_S, 0, 1), bits_of(-3.7f), 0),
            static_cast<u32>(-3));  // truncate toward zero
  EXPECT_EQ(float_of(fp_alu_result(make_fp2(Op::CVT_S_W, 0, 1),
                                   static_cast<u32>(-7), 0)),
            -7.0f);
}

TEST(Fp, EmulatorEndToEnd) {
  // (3.5 + 1.5) * 2 = 10; sqrt(10*10) = 10; prints cvt.w.s of it.
  Emulator emu(compile(R"(
.text
main:
  lwc1 $f0, 0($gp)       # 3.5
  lwc1 $f1, 4($gp)       # 1.5
  add.s $f2, $f0, $f1    # 5.0
  lwc1 $f3, 8($gp)       # 2.0
  mul.s $f4, $f2, $f3    # 10.0
  mul.s $f5, $f4, $f4    # 100.0
  sqrt.s $f6, $f5        # 10.0
  c.lt.s $f0, $f6        # 3.5 < 10 -> true
  bc1f wrong
  cvt.w.s $f7, $f6
  mfc1 $a0, $f7
  li $v0, 1
  syscall
wrong:
  li $v0, 10
  li $a0, 0
  syscall
.data
  .word 0x40600000       # 3.5f
  .word 0x3fc00000       # 1.5f
  .word 0x40000000       # 2.0f
)"));
  emu.run(1000);
  EXPECT_TRUE(emu.exited());
  EXPECT_EQ(emu.output(), "10");
}

TEST(Fp, MtcMfcAndStoreRoundTrip) {
  Emulator emu(compile(R"(
.text
main:
  li $t0, 0x42280000     # 42.0f
  mtc1 $t0, $f10
  swc1 $f10, 0($gp)
  lwc1 $f11, 0($gp)
  mfc1 $t1, $f11
  li $v0, 10
  li $a0, 0
  syscall
.data
  .word 0
)"));
  emu.run(100);
  EXPECT_TRUE(emu.exited());
  EXPECT_EQ(emu.reg(R_T1), 0x42280000u);
  EXPECT_EQ(emu.fp_reg(10), 0x42280000u);
}

// Golden numeric program on every machine configuration: Newton iteration
// for sqrt over a table, with an FP tolerance loop (exercises FP branches,
// div, compares, and FP loads/stores through the whole timing stack).
TEST(Fp, NewtonSqrtCoSimulatesEverywhere) {
  const Program p = compile(R"(
.text
main:
  li $s0, 200            # values to root
  la $s1, vals
  li $t0, 0x3a83126f     # 0.001f tolerance
  mtc1 $t0, $f9
  li $t0, 0x3f000000     # 0.5f
  mtc1 $t0, $f8
outer:
  lwc1 $f0, 0($s1)       # x
  mov.s $f1, $f0         # guess = x
  li $s2, 30             # iteration cap
newton:
  div.s $f2, $f0, $f1    # x / guess
  add.s $f2, $f2, $f1
  mul.s $f1, $f2, $f8    # guess = (guess + x/guess) / 2
  mul.s $f4, $f1, $f1
  sub.s $f5, $f4, $f0    # guess^2 - x
  abs.s $f5, $f5
  c.lt.s $f5, $f9        # converged?
  bc1t converged
  addiu $s2, $s2, -1
  bgtz $s2, newton
converged:
  swc1 $f1, 0($s1)       # write the root back
  addiu $s1, $s1, 4
  addiu $s0, $s0, -1
  bgtz $s0, outer
  # print floor(sum of first four roots): 1 + 2 + 3 + 4 = 10
  la $s1, vals
  lwc1 $f0, 0($s1)
  lwc1 $f1, 4($s1)
  add.s $f0, $f0, $f1
  lwc1 $f1, 8($s1)
  add.s $f0, $f0, $f1
  lwc1 $f1, 12($s1)
  add.s $f0, $f0, $f1
  cvt.w.s $f0, $f0
  mfc1 $a0, $f0
  li $v0, 1
  syscall
  li $v0, 10
  li $a0, 0
  syscall
.data
vals:
  .word 0x3f800000       # 1
  .word 0x40800000       # 4
  .word 0x41100000       # 9
  .word 0x41800000       # 16
  .space 784             # remaining 196 values are 0: their Newton guesses
                         # go NaN, the iteration cap bounds them, and the
                         # results are unused
)");
  Emulator emu(p);
  emu.run(1'000'000);
  ASSERT_TRUE(emu.exited());
  EXPECT_EQ(emu.output(), "10");

  for (const auto& cfg :
       {base_machine(), bitsliced_machine(2, kAllTechniques),
        bitsliced_machine(4, kExtendedTechniques)}) {
    const SimResult r = simulate(cfg, p, 1u << 22);
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_TRUE(r.exited);
    EXPECT_EQ(r.stats.committed, emu.instructions_retired());
  }
}

TEST(Fp, LwcOperandInAssemblerSymbolForm) {
  // `lwc1 $f3, half` style (bare symbol) must be rejected — offset(reg)
  // only, like integer memory ops... the Newton kernel uses half($zero)?
  const AsmResult r = assemble(".text\nmain:\n  lwc1 $f0, somewhere\n");
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace bsp
