// Tests for the slice dependence rules (paper Figure 8) and the machine
// configuration presets (Figure 10 / Table 2).
#include <gtest/gtest.h>

#include "config/machine_config.hpp"
#include "core/sliced_value.hpp"

namespace bsp {
namespace {

CoreConfig sliced_cfg(unsigned slices, TechniqueSet t) {
  CoreConfig c;
  c.slices = slices;
  c.techniques = t;
  return c;
}

TEST(SliceOrderRules, CollectWithoutPartialBypass) {
  // Without partial operand bypassing, operands are atomic: every class
  // behaves as a full-collect op (Figure 8a).
  const CoreConfig plain = sliced_cfg(2, kNoTechniques);
  for (const ExecClass cls :
       {ExecClass::Logic, ExecClass::Add, ExecClass::ShiftLeft,
        ExecClass::BranchEq, ExecClass::Load}) {
    EXPECT_EQ(slice_order(cls, plain), SliceOrder::Collect);
  }
}

TEST(SliceOrderRules, ArithmeticChainsLowToHigh) {
  const CoreConfig c = sliced_cfg(
      2, static_cast<unsigned>(Technique::PartialBypass));
  EXPECT_EQ(slice_order(ExecClass::Add, c), SliceOrder::LowToHigh);
  EXPECT_EQ(slice_order(ExecClass::Compare, c), SliceOrder::LowToHigh);
  EXPECT_EQ(slice_order(ExecClass::Load, c), SliceOrder::LowToHigh);
  EXPECT_EQ(slice_order(ExecClass::ShiftLeft, c), SliceOrder::LowToHigh);
  EXPECT_EQ(slice_order(ExecClass::ShiftRight, c), SliceOrder::HighToLow);
  EXPECT_EQ(slice_order(ExecClass::Mul, c), SliceOrder::Collect);
  EXPECT_EQ(slice_order(ExecClass::Div, c), SliceOrder::Collect);
  EXPECT_EQ(slice_order(ExecClass::JumpReg, c), SliceOrder::Collect);
}

TEST(SliceOrderRules, LogicNeedsOooSlicesToReorder) {
  const CoreConfig bypass_only = sliced_cfg(
      2, static_cast<unsigned>(Technique::PartialBypass));
  EXPECT_EQ(slice_order(ExecClass::Logic, bypass_only),
            SliceOrder::LowToHigh);
  EXPECT_EQ(slice_order(ExecClass::BranchEq, bypass_only),
            SliceOrder::LowToHigh);

  const CoreConfig with_ooo = sliced_cfg(
      2, static_cast<unsigned>(Technique::PartialBypass) |
             static_cast<unsigned>(Technique::OooSlices));
  EXPECT_EQ(slice_order(ExecClass::Logic, with_ooo), SliceOrder::Any);
  EXPECT_EQ(slice_order(ExecClass::BranchEq, with_ooo), SliceOrder::Any);
  // Carry chains stay serial no matter what.
  EXPECT_EQ(slice_order(ExecClass::Add, with_ooo), SliceOrder::LowToHigh);
}

TEST(SliceDeps, PositionalClassesReadTheirOwnSlice) {
  const SliceGeometry g{4};
  for (const ExecClass cls :
       {ExecClass::Logic, ExecClass::Add, ExecClass::BranchEq}) {
    for (unsigned s = 0; s < 4; ++s)
      EXPECT_EQ(needed_source_slices(cls, s, g), u32{1} << s);
  }
}

TEST(SliceDeps, ShiftsReadNeighbouringSlices) {
  const SliceGeometry g{4};
  EXPECT_EQ(needed_source_slices(ExecClass::ShiftLeft, 0, g), 0b0001u);
  EXPECT_EQ(needed_source_slices(ExecClass::ShiftLeft, 2, g), 0b0110u);
  EXPECT_EQ(needed_source_slices(ExecClass::ShiftRight, 3, g), 0b1000u);
  EXPECT_EQ(needed_source_slices(ExecClass::ShiftRight, 1, g), 0b0110u);
}

TEST(SliceDeps, CollectClassesReadEverything) {
  const SliceGeometry g{2};
  EXPECT_EQ(needed_source_slices(ExecClass::Mul, 0, g), 0b11u);
  EXPECT_EQ(needed_source_slices(ExecClass::JumpReg, 0, g), 0b11u);
}

TEST(SliceDeps, InterSliceDependences) {
  EXPECT_TRUE(has_inter_slice_dep(ExecClass::Add));
  EXPECT_TRUE(has_inter_slice_dep(ExecClass::ShiftLeft));
  EXPECT_TRUE(has_inter_slice_dep(ExecClass::Compare));
  EXPECT_FALSE(has_inter_slice_dep(ExecClass::Logic));
  EXPECT_FALSE(has_inter_slice_dep(ExecClass::BranchEq));
  EXPECT_FALSE(has_inter_slice_dep(ExecClass::Mul));
}

TEST(SliceDeps, VariableShiftsReadAmountSlice0) {
  EXPECT_TRUE(reads_amount_slice0(Op::SLLV));
  EXPECT_TRUE(reads_amount_slice0(Op::SRAV));
  EXPECT_FALSE(reads_amount_slice0(Op::SLL));
  EXPECT_FALSE(reads_amount_slice0(Op::ADD));
}

TEST(SliceTimes, ContiguousLowDone) {
  SliceTimes t;
  EXPECT_EQ(t.contiguous_low_done(4, 100), 0u);
  t.done[0] = 5;
  t.done[1] = 7;
  t.done[3] = 6;  // slice 2 missing: counting stops there
  EXPECT_EQ(t.contiguous_low_done(4, 100), 2u);
  EXPECT_EQ(t.contiguous_low_done(4, 6), 1u);  // slice 1 not done by cycle 6
  t.done[2] = 9;
  EXPECT_EQ(t.contiguous_low_done(4, 100), 4u);
  EXPECT_TRUE(t.complete(4));
  EXPECT_EQ(t.last(4), 9u);
}

// --- configuration presets ----------------------------------------------------------

TEST(Config, BaseMachineIsTable2) {
  const MachineConfig cfg = base_machine();
  EXPECT_EQ(cfg.core.fetch_width, 4u);
  EXPECT_EQ(cfg.core.ruu_entries, 64u);
  EXPECT_EQ(cfg.core.lsq_entries, 32u);
  EXPECT_EQ(cfg.core.slices, 1u);
  EXPECT_FALSE(cfg.core.sliced());
  EXPECT_EQ(cfg.memory.l1d.size_bytes, 64u * 1024);
  EXPECT_EQ(cfg.memory.l1d.ways, 4u);
  EXPECT_EQ(cfg.memory.l2.size_bytes, 1024u * 1024);
  EXPECT_EQ(cfg.memory.memory_latency, 100u);
  EXPECT_EQ(cfg.branch.gshare_entries, 64u * 1024);
  EXPECT_EQ(cfg.branch.ras_depth, 8u);
  EXPECT_EQ(cfg.branch.btb_sets, 512u);
  EXPECT_EQ(cfg.branch.btb_ways, 4u);
}

TEST(Config, SimplePipelinedKeepsAtomicOperands) {
  const MachineConfig cfg = simple_pipelined_machine(2);
  EXPECT_EQ(cfg.core.slices, 2u);
  EXPECT_EQ(cfg.core.techniques, kNoTechniques);
  EXPECT_FALSE(cfg.core.has(Technique::PartialBypass));
  EXPECT_EQ(cfg.memory.l1d_latency, 1u);
}

TEST(Config, SliceBy4RaisesL1Latency) {
  EXPECT_EQ(simple_pipelined_machine(4).memory.l1d_latency, 2u);
  EXPECT_EQ(bitsliced_machine(4, kAllTechniques).memory.l1d_latency, 2u);
  EXPECT_EQ(bitsliced_machine(2, kAllTechniques).memory.l1d_latency, 1u);
}

TEST(Config, TechniqueOrderMatchesFigure12) {
  const auto& order = technique_order();
  ASSERT_EQ(order.size(), 5u);
  EXPECT_EQ(order[0], Technique::PartialBypass);
  EXPECT_EQ(order[1], Technique::OooSlices);
  EXPECT_EQ(order[2], Technique::EarlyBranch);
  EXPECT_EQ(order[3], Technique::EarlyLsq);
  EXPECT_EQ(order[4], Technique::PartialTag);
}

TEST(Config, TechniquesRequireSlicing) {
  CoreConfig c;
  c.slices = 1;
  c.techniques = kAllTechniques;
  EXPECT_FALSE(c.has(Technique::PartialBypass))
      << "an unsliced machine has no partial operands";
}

TEST(Config, PipelineDiagramMatchesFigure10) {
  EXPECT_NE(pipeline_diagram(base_machine()).find(" EX "),
            std::string::npos);
  const std::string by4 = pipeline_diagram(simple_pipelined_machine(4));
  EXPECT_NE(by4.find("EX1 EX2 EX3 EX4"), std::string::npos);
  EXPECT_NE(by4.find("Fetch1 Fetch2 Dec1 Dec2 DP1 DP2 Sch1 Sch2 Sch3"),
            std::string::npos);
}

TEST(Config, DescribeMentionsKeyParameters) {
  const std::string d = bitsliced_machine(2, kAllTechniques).describe();
  EXPECT_NE(d.find("64-entry RUU"), std::string::npos);
  EXPECT_NE(d.find("32-entry LSQ"), std::string::npos);
  EXPECT_NE(d.find("gshare"), std::string::npos);
  EXPECT_NE(d.find("partial tag matching"), std::string::npos);
}

}  // namespace
}  // namespace bsp
