// Memory-hierarchy integration tests beyond the single-cache unit tests:
// L2 sharing between the instruction and data paths, inclusion-free
// behaviour, and latency composition under realistic access patterns.
#include <gtest/gtest.h>

#include "mem/hierarchy.hpp"
#include "util/rng.hpp"

namespace bsp {
namespace {

TEST(Hierarchy, L2IsSharedBetweenInstructionAndDataPaths) {
  MemoryHierarchy h;
  // A cold data access fills the line into L2 (and L1D).
  EXPECT_EQ(h.data_latency(0x00400000, false), 1u + 6u + 100u);
  // The instruction path misses L1I but hits the now-warm L2.
  EXPECT_EQ(h.fetch_latency(0x00400000), 1u + 6u);
}

TEST(Hierarchy, WritesAllocateLikeReads) {
  MemoryHierarchy h;
  bool hit = false;
  h.data_latency(0x5000, true, &hit);
  EXPECT_FALSE(hit);
  EXPECT_EQ(h.data_latency(0x5000, false, &hit), 1u);
  EXPECT_TRUE(hit);
}

TEST(Hierarchy, L1VictimStillHitsL2) {
  MemoryHierarchy h;
  const u32 base = 0x10000;
  h.data_latency(base, false);  // warm both levels
  // Evict `base` from the 4-way L1 set by touching 8 conflicting lines
  // (L1D set span is 64 B * 256 sets = 16 KB).
  for (u32 i = 1; i <= 8; ++i) h.data_latency(base + i * 16384, false);
  EXPECT_FALSE(h.l1d().find(base).has_value());
  // L2 (4096 sets) maps these to different sets: base must still be there.
  bool hit = false;
  EXPECT_EQ(h.data_latency(base, false, &hit), 1u + 6u);
  EXPECT_FALSE(hit) << "L1 miss";
}

TEST(Hierarchy, StatisticsAccumulateAcrossLevels) {
  MemoryHierarchy h;
  Rng rng(8);
  for (int i = 0; i < 5000; ++i)
    h.data_latency(rng.next() & 0xfffff, rng.chance(1, 4));
  EXPECT_EQ(h.l1d().accesses(), 5000u);
  EXPECT_EQ(h.l2().accesses(), h.l1d().misses())
      << "L2 sees exactly the L1D misses (no I-side traffic here)";
  EXPECT_GT(h.l1d().misses(), 0u);
  EXPECT_LE(h.l2().misses(), h.l2().accesses());
}

TEST(Hierarchy, SequentialStreamIsLineBatched) {
  MemoryHierarchy h;
  // 64 sequential words = 4 lines -> exactly 4 L1 misses.
  for (u32 a = 0; a < 256; a += 4) h.data_latency(0x8000 + a, false);
  EXPECT_EQ(h.l1d().misses(), 4u);
  EXPECT_EQ(h.l1d().accesses(), 64u);
}

TEST(Hierarchy, Table2LatencyComposition) {
  // Every latency combination the timing core can observe.
  MemoryHierarchy h;
  const u32 a = 0x00123440;
  EXPECT_EQ(h.data_latency(a, false), 107u);  // L1 miss, L2 miss
  // Evict from L1 only; L2 retains.
  for (u32 i = 1; i <= 8; ++i) h.data_latency(a + i * 16384, false);
  EXPECT_EQ(h.data_latency(a, false), 7u);    // L1 miss, L2 hit
  EXPECT_EQ(h.data_latency(a, false), 1u);    // L1 hit
}

}  // namespace
}  // namespace bsp
