// Thread-pool helper tests, including a threaded-simulation smoke test that
// proves Simulator instances are safely independent.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "core/simulator.hpp"
#include "util/parallel.hpp"
#include "workloads/workloads.hpp"

namespace bsp {
namespace {

TEST(Parallel, VisitsEveryIndexExactlyOnce) {
  for (const unsigned jobs : {1u, 2u, 4u, 0u}) {
    std::vector<std::atomic<int>> hits(257);
    parallel_for(hits.size(),
                 [&](std::size_t i) { hits[i].fetch_add(1); }, jobs);
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(Parallel, ZeroTasksIsANoop) {
  // Every jobs flavour, including the degenerate ones the campaign
  // scheduler can produce (resume leaving nothing to do).
  for (const unsigned jobs : {0u, 1u, 7u})
    parallel_for(
        0, [](std::size_t) { FAIL() << "must not be called"; }, jobs);
}

TEST(Parallel, SingleJobRunsInlineInIndexOrder) {
  // jobs == 1 is the documented deterministic mode: caller's thread, index
  // order. The campaign byte-determinism test depends on this.
  const auto caller = std::this_thread::get_id();
  std::vector<std::size_t> order;
  parallel_for(
      50,
      [&](std::size_t i) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        order.push_back(i);
      },
      1);
  ASSERT_EQ(order.size(), 50u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(Parallel, FewerTasksThanJobsVisitsEachExactlyOnce) {
  std::vector<std::atomic<int>> hits(3);
  parallel_for(hits.size(),
               [&](std::size_t i) { hits[i].fetch_add(1); }, 16);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);

  // n == 1 must also run inline rather than spawning a lone worker.
  const auto caller = std::this_thread::get_id();
  parallel_for(
      1, [&](std::size_t) { EXPECT_EQ(std::this_thread::get_id(), caller); },
      16);
}

TEST(Parallel, MapCollectsInOrder) {
  const auto squares = parallel_map<std::size_t>(
      100, [](std::size_t i) { return i * i; }, 3);
  for (std::size_t i = 0; i < squares.size(); ++i)
    EXPECT_EQ(squares[i], i * i);
}

TEST(Parallel, ConcurrentSimulationsAreIndependent) {
  // Four simulators of the same program on different configs, concurrently;
  // results must equal the serial ones.
  const Workload w = build_workload("go");
  const MachineConfig cfgs[] = {
      base_machine(), simple_pipelined_machine(2),
      bitsliced_machine(2, kAllTechniques),
      bitsliced_machine(4, kAllTechniques)};

  std::vector<SimStats> serial;
  for (const auto& cfg : cfgs) {
    const SimResult r = simulate(cfg, w.program, 15'000);
    ASSERT_TRUE(r.ok()) << r.error;
    serial.push_back(r.stats);
  }

  const auto threaded = parallel_map<SimStats>(
      4,
      [&](std::size_t i) {
        const SimResult r = simulate(cfgs[i], w.program, 15'000);
        EXPECT_TRUE(r.ok()) << r.error;
        return r.stats;
      },
      4);

  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(threaded[i].cycles, serial[i].cycles);
    EXPECT_EQ(threaded[i].committed, serial[i].committed);
    EXPECT_EQ(threaded[i].branch_mispredicts, serial[i].branch_mispredicts);
  }
}

}  // namespace
}  // namespace bsp
