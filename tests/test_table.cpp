// Output-formatting tests for the Table utility used by every bench.
#include <gtest/gtest.h>

#include <sstream>

#include "util/table.hpp"

namespace bsp {
namespace {

TEST(Table, AlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"short", "1"});
  t.add_row({"much longer name", "23456"});
  std::stringstream ss;
  t.print(ss);
  std::stringstream lines(ss.str());
  std::string header, rule, r1, r2;
  std::getline(lines, header);
  std::getline(lines, rule);
  std::getline(lines, r1);
  std::getline(lines, r2);
  // The "value" column starts at the same offset in every row.
  const auto col = header.find("value");
  EXPECT_EQ(r1.find('1'), col);
  EXPECT_EQ(r2.find('2'), col);
  EXPECT_EQ(rule.find_first_not_of('-'), std::string::npos);
}

TEST(Table, CsvEscapesNothingButSeparatesFields) {
  Table t({"a", "b", "c"});
  t.add_row({"1", "2", "3"});
  std::stringstream ss;
  t.print_csv(ss);
  EXPECT_EQ(ss.str(), "a,b,c\n1,2,3\n");
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::num(1.23456, 3), "1.235");
  EXPECT_EQ(Table::num(1.0, 0), "1");
  EXPECT_EQ(Table::num(-0.5, 2), "-0.50");
  EXPECT_EQ(Table::pct(0.4212), "42.1%");
  EXPECT_EQ(Table::pct(1.0, 0), "100%");
  EXPECT_EQ(Table::pct(-0.05), "-5.0%");
}

TEST(Table, RowCount) {
  Table t({"x"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.rows(), 2u);
}

}  // namespace
}  // namespace bsp
