// Robustness fuzzing: random inputs must never crash any layer — the
// decoder, the assembler, the emulator, or the timing core — and identical
// inputs must produce bit-identical results (full determinism).
#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "core/simulator.hpp"
#include "emu/emulator.hpp"
#include "util/rng.hpp"
#include "workloads/workloads.hpp"

namespace bsp {
namespace {

// Random instruction words as a program: the emulator must always either
// execute or fault cleanly, never hang or crash.
TEST(Fuzz, EmulatorSurvivesRandomText) {
  Rng rng(0xF022);
  for (int trial = 0; trial < 200; ++trial) {
    Program p;
    for (int i = 0; i < 64; ++i) p.text.push_back(rng.next());
    Emulator emu(p);
    StepResult final;
    emu.run(10'000, &final);
    // Outcomes: fault, clean exit (a random exit syscall), or still
    // running; all are acceptable — the point is we got here.
    SUCCEED();
  }
}

// Mostly-legal random programs (built from the encoders, so decode always
// succeeds) with random register fields: memory ops excluded so faults are
// rare and long executions actually exercise the datapath.
TEST(Fuzz, EmulatorExecutesRandomAluPrograms) {
  Rng rng(0xA123);
  const Op alu_ops[] = {Op::ADDU, Op::SUBU, Op::AND, Op::OR,  Op::XOR,
                        Op::NOR,  Op::SLT,  Op::SLTU};
  for (int trial = 0; trial < 100; ++trial) {
    Program p;
    for (int i = 0; i < 200; ++i) {
      switch (rng.below(4)) {
        case 0:
          p.text.push_back(make_r3(alu_ops[rng.below(8)], rng.below(32),
                                   rng.below(32), rng.below(32)).raw);
          break;
        case 1:
          p.text.push_back(make_iarith(Op::ADDIU, rng.below(32),
                                       rng.below(32), rng.next() & 0xffff)
                               .raw);
          break;
        case 2:
          p.text.push_back(make_shift_imm(Op::SLL, rng.below(32),
                                          rng.below(32), rng.below(32)).raw);
          break;
        case 3:
          p.text.push_back(make_lui(rng.below(32), rng.next() & 0xffff).raw);
          break;
      }
    }
    // Clean exit.
    p.text.push_back(make_iarith(Op::ORI, R_V0, R_ZERO, 10).raw);
    p.text.push_back(make_iarith(Op::ORI, R_A0, R_ZERO, 0).raw);
    p.text.push_back(make_syscall().raw);

    Emulator emu(p);
    StepResult final;
    emu.run(1000, &final);
    EXPECT_TRUE(emu.exited()) << "straight-line ALU code must reach exit";
    EXPECT_EQ(emu.reg(0), 0u) << "$zero corrupted";
  }
}

// The assembler must reject or accept random text without crashing, and
// whatever it accepts must decode.
TEST(Fuzz, AssemblerSurvivesRandomText) {
  Rng rng(0x500f);
  const char charset[] =
      "abcdefghijklmnopqrstuvwxyz$0123456789 ,().:#\"\\\n\t-+%";
  for (int trial = 0; trial < 300; ++trial) {
    std::string src;
    const unsigned len = rng.below(400);
    for (unsigned i = 0; i < len; ++i)
      src += charset[rng.below(sizeof charset - 1)];
    const AsmResult r = assemble(src);
    for (const u32 w : r.program.text)
      EXPECT_TRUE(decode(w).has_value())
          << "assembler emitted an illegal encoding";
  }
}

// Byte-identical determinism: two simulations of the same program and
// configuration must agree on every statistic.
TEST(Fuzz, SimulatorIsDeterministic) {
  const Workload w = build_workload("twolf");
  for (const auto& cfg :
       {base_machine(), bitsliced_machine(2, kAllTechniques),
        bitsliced_machine(4, kExtendedTechniques)}) {
    const SimResult a = simulate(cfg, w.program, 30'000, 5'000);
    const SimResult b = simulate(cfg, w.program, 30'000, 5'000);
    ASSERT_TRUE(a.ok()) << a.error;
    ASSERT_TRUE(b.ok()) << b.error;
    EXPECT_EQ(a.stats.cycles, b.stats.cycles);
    EXPECT_EQ(a.stats.committed, b.stats.committed);
    EXPECT_EQ(a.stats.branch_mispredicts, b.stats.branch_mispredicts);
    EXPECT_EQ(a.stats.l1d_misses, b.stats.l1d_misses);
    EXPECT_EQ(a.stats.op_replays, b.stats.op_replays);
    EXPECT_EQ(a.stats.load_forwards, b.stats.load_forwards);
  }
}

// Warm-up composability: measuring after a warm-up must equal the tail of a
// single longer measurement in committed count (cycles may differ only by
// the warm-up boundary), and warmed IPC must not be wildly off.
TEST(Fuzz, WarmupDiscardsExactlyTheRequestedInstructions) {
  const Workload w = build_workload("gzip");
  const MachineConfig cfg = bitsliced_machine(2, kAllTechniques);
  const SimResult whole = simulate(cfg, w.program, 60'000);
  const SimResult tail = simulate(cfg, w.program, 40'000, 20'000);
  ASSERT_TRUE(whole.ok());
  ASSERT_TRUE(tail.ok());
  EXPECT_EQ(tail.stats.committed, 40'000u);
  EXPECT_LT(tail.stats.cycles, whole.stats.cycles);
}

TEST(Fuzz, EmulatorIsDeterministic) {
  const Workload w = build_workload("parser");
  Emulator a(w.program), b(w.program);
  for (int i = 0; i < 50'000; ++i) {
    ExecRecord ra, rb;
    const StepResult sa = a.step(&ra);
    const StepResult sb = b.step(&rb);
    ASSERT_EQ(sa.kind, sb.kind);
    ASSERT_EQ(ra.pc, rb.pc);
    ASSERT_EQ(ra.dest_value, rb.dest_value);
    if (!sa.ok()) break;
  }
}

}  // namespace
}  // namespace bsp
