// Golden-program integration tests: complete, non-trivial assembly programs
// (sieve, CRC-32, recursive quicksort, string routines, recursive fibonacci)
// run end-to-end through the assembler, the emulator, and the timing core on
// several machine configurations. The expected outputs are computed
// independently in C++, so these tests pin down the whole stack at once.
#include <gtest/gtest.h>

#include <numeric>

#include "asm/assembler.hpp"
#include "core/simulator.hpp"
#include "emu/emulator.hpp"
#include "util/rng.hpp"

namespace bsp {
namespace {

Program compile(const std::string& src) {
  AsmResult r = assemble(src);
  EXPECT_TRUE(r.ok()) << r.error_text();
  return r.program;
}

// Runs on the emulator, checks output; then runs on three timing configs,
// relying on commit-time co-simulation plus output/exit checks.
void check_everywhere(const Program& p, const std::string& expected_output,
                      u64 budget = 10'000'000) {
  Emulator emu(p);
  emu.run(budget);
  ASSERT_TRUE(emu.exited()) << "emulator did not finish";
  EXPECT_EQ(emu.output(), expected_output);

  for (const auto& cfg :
       {base_machine(), bitsliced_machine(2, kAllTechniques),
        bitsliced_machine(4, kExtendedTechniques)}) {
    const SimResult r = simulate(cfg, p, budget);
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_TRUE(r.exited);
    EXPECT_EQ(r.stats.committed, emu.instructions_retired());
  }
}

TEST(GoldenPrograms, SieveOfEratosthenes) {
  // Counts primes below 1000 (168) using a byte array of composite flags.
  const Program p = compile(R"(
.text
main:
  la $s0, flags
  li $s1, 1000
  li $t0, 2             # candidate
  move $s2, $0          # prime count
outer:
  addu $t1, $s0, $t0
  lbu $t2, 0($t1)
  bne $t2, $0, next     # composite
  addiu $s2, $s2, 1     # found a prime
  # mark multiples starting at p*p
  mult $t0, $t0
  mflo $t3
mark:
  slt $t4, $t3, $s1
  beq $t4, $0, next
  addu $t5, $s0, $t3
  li $t6, 1
  sb $t6, 0($t5)
  addu $t3, $t3, $t0
  b mark
next:
  addiu $t0, $t0, 1
  slt $t4, $t0, $s1
  bne $t4, $0, outer
  move $a0, $s2
  li $v0, 1
  syscall
  li $v0, 10
  li $a0, 0
  syscall
.data
flags: .space 1000
)");
  check_everywhere(p, "168");
}

TEST(GoldenPrograms, Crc32OfBuffer) {
  // Bitwise CRC-32 (polynomial 0xEDB88320) over 64 pseudo-random bytes,
  // compared against an independent C++ computation of the same bytes.
  Rng rng(2024);
  std::vector<u8> bytes(64);
  for (auto& b : bytes) b = static_cast<u8>(rng.next());

  std::string data_words = "  .byte ";
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    data_words += std::to_string(bytes[i]);
    data_words += (i + 1 == bytes.size()) ? "\n" : ", ";
  }

  u32 crc = 0xffffffffu;
  for (const u8 b : bytes) {
    crc ^= b;
    for (int k = 0; k < 8; ++k)
      crc = (crc >> 1) ^ (0xEDB88320u & (0u - (crc & 1)));
  }
  crc = ~crc;

  const Program p = compile(std::string(R"(
.text
main:
  la $s0, buf
  li $s1, 64
  li $s2, -1            # crc = 0xffffffff
  li $s3, 0xEDB88320
byte_loop:
  lbu $t0, 0($s0)
  xor $s2, $s2, $t0
  li $t1, 8
bit_loop:
  andi $t2, $s2, 1
  srl $s2, $s2, 1
  beq $t2, $0, nbit
  xor $s2, $s2, $s3
nbit:
  addiu $t1, $t1, -1
  bgtz $t1, bit_loop
  addiu $s0, $s0, 1
  addiu $s1, $s1, -1
  bgtz $s1, byte_loop
  nor $s2, $s2, $0      # crc = ~crc
  move $a0, $s2
  li $v0, 1
  syscall
  li $v0, 10
  li $a0, 0
  syscall
.data
buf:
)") + data_words);
  check_everywhere(p, std::to_string(static_cast<i32>(crc)));
}

TEST(GoldenPrograms, RecursiveQuicksort) {
  // Sorts 200 pseudo-random words with recursive quicksort (real stack
  // frames, jal/jr, spills), then prints a positional checksum that only the
  // correctly sorted order produces.
  Rng rng(77);
  std::vector<u32> values(200);
  for (auto& v : values) v = rng.next() & 0x7fff;

  std::string words = "";
  for (std::size_t i = 0; i < values.size(); i += 8) {
    words += "  .word ";
    for (std::size_t j = i; j < std::min(i + 8, values.size()); ++j) {
      words += std::to_string(values[j]);
      words += (j + 1 == std::min(i + 8, values.size())) ? "\n" : ", ";
    }
  }
  std::vector<u32> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  u32 checksum = 0;
  for (std::size_t i = 0; i < sorted.size(); ++i)
    checksum += sorted[i] * static_cast<u32>(i + 1);

  const Program p = compile(std::string(R"(
.text
main:
  la $a0, arr           # lo pointer
  la $a1, arr+796       # hi pointer (inclusive, 200 words)
  jal qsort
  # checksum = sum(arr[i] * (i+1))
  la $t0, arr
  li $t1, 200
  li $t2, 1
  move $s0, $0
cksum:
  lw $t3, 0($t0)
  mult $t3, $t2
  mflo $t4
  addu $s0, $s0, $t4
  addiu $t0, $t0, 4
  addiu $t2, $t2, 1
  addiu $t1, $t1, -1
  bgtz $t1, cksum
  move $a0, $s0
  li $v0, 1
  syscall
  li $v0, 10
  li $a0, 0
  syscall

# qsort(lo=$a0, hi=$a1): Hoare-ish partition with last element as pivot.
qsort:
  sltu $t0, $a0, $a1
  beq $t0, $0, qs_done   # size <= 1
  addiu $sp, $sp, -12
  sw $ra, 0($sp)
  sw $a0, 4($sp)
  sw $a1, 8($sp)
  # partition: pivot = *hi, i = lo-4
  lw $t1, 0($a1)         # pivot
  addiu $t2, $a0, -4     # i
  move $t3, $a0          # j
part:
  lw $t4, 0($t3)
  sltu $t5, $t1, $t4     # pivot < arr[j] ?
  bne $t5, $0, no_swap
  addiu $t2, $t2, 4      # ++i
  lw $t6, 0($t2)         # swap arr[i], arr[j]
  sw $t4, 0($t2)
  sw $t6, 0($t3)
no_swap:
  addiu $t3, $t3, 4
  sltu $t5, $t3, $a1
  bne $t5, $0, part
  # place pivot: swap arr[i+1], *hi
  addiu $t2, $t2, 4
  lw $t6, 0($t2)
  sw $t1, 0($t2)
  sw $t6, 0($a1)
  # recurse left: qsort(lo, i-4)
  move $s6, $t2          # pivot slot (callee keeps it in $s6/$s7... save)
  addiu $sp, $sp, -8
  sw $s6, 0($sp)
  sw $s7, 4($sp)
  lw $a0, 12($sp)        # original lo
  addiu $a1, $t2, -4
  sltu $t0, $a0, $a1
  beq $t0, $0, skip_left
  jal qsort
skip_left:
  # recurse right: qsort(pivot+4, hi)
  lw $s6, 0($sp)
  addiu $a0, $s6, 4
  lw $a1, 16($sp)        # original hi
  sltu $t0, $a0, $a1
  beq $t0, $0, skip_right
  jal qsort
skip_right:
  lw $s6, 0($sp)
  lw $s7, 4($sp)
  addiu $sp, $sp, 8
  lw $ra, 0($sp)
  addiu $sp, $sp, 12
qs_done:
  jr $ra
.data
arr:
)") + words);
  check_everywhere(p, std::to_string(checksum), 50'000'000);
}

TEST(GoldenPrograms, StringRoutines) {
  // strlen + strcpy + strcmp over .asciiz data; prints
  // "<len>,<cmp_eq>,<cmp_ne>".
  const Program p = compile(R"(
.text
main:
  la $a0, hello
  jal strlen
  move $s0, $v0          # 13
  la $a0, copybuf
  la $a1, hello
  jal strcpy
  la $a0, copybuf
  la $a1, hello
  jal strcmp
  move $s1, $v0          # 0 (equal)
  la $a0, hello
  la $a1, world
  jal strcmp
  move $s2, $v0          # nonzero
  move $a0, $s0
  li $v0, 1
  syscall
  li $a0, 44
  li $v0, 11
  syscall
  move $a0, $s1
  li $v0, 1
  syscall
  li $a0, 44
  li $v0, 11
  syscall
  # normalise s2 to +/-1 for a stable answer
  slt $a0, $s2, $0
  beq $a0, $0, pos
  li $a0, -1
  b print2
pos:
  li $a0, 1
print2:
  li $v0, 1
  syscall
  li $v0, 10
  li $a0, 0
  syscall

strlen:                   # ($a0) -> $v0
  move $v0, $0
sl_loop:
  lbu $t0, 0($a0)
  beq $t0, $0, sl_done
  addiu $v0, $v0, 1
  addiu $a0, $a0, 1
  b sl_loop
sl_done:
  jr $ra

strcpy:                   # (dst=$a0, src=$a1)
sc_loop:
  lbu $t0, 0($a1)
  sb $t0, 0($a0)
  addiu $a0, $a0, 1
  addiu $a1, $a1, 1
  bne $t0, $0, sc_loop
  jr $ra

strcmp:                   # ($a0, $a1) -> $v0 (difference of first mismatch)
cmp_loop:
  lbu $t0, 0($a0)
  lbu $t1, 0($a1)
  bne $t0, $t1, cmp_diff
  beq $t0, $0, cmp_eq
  addiu $a0, $a0, 1
  addiu $a1, $a1, 1
  b cmp_loop
cmp_diff:
  subu $v0, $t0, $t1
  jr $ra
cmp_eq:
  move $v0, $0
  jr $ra
.data
hello: .asciiz "hello, world!"
world: .asciiz "hello, zorld!"
copybuf: .space 32
)");
  check_everywhere(p, "13,0,-1");
}

TEST(GoldenPrograms, RecursiveFibonacci) {
  // fib(16) = 987 via naive recursion: thousands of calls, deep return
  // stacks (deliberately deeper than the 8-entry RAS).
  const Program p = compile(R"(
.text
main:
  li $a0, 16
  jal fib
  move $a0, $v0
  li $v0, 1
  syscall
  li $v0, 10
  li $a0, 0
  syscall
fib:
  slti $t0, $a0, 2
  beq $t0, $0, recurse
  move $v0, $a0
  jr $ra
recurse:
  addiu $sp, $sp, -12
  sw $ra, 0($sp)
  sw $a0, 4($sp)
  addiu $a0, $a0, -1
  jal fib
  sw $v0, 8($sp)
  lw $a0, 4($sp)
  addiu $a0, $a0, -2
  jal fib
  lw $t1, 8($sp)
  addu $v0, $v0, $t1
  lw $ra, 0($sp)
  addiu $sp, $sp, 12
  jr $ra
)");
  check_everywhere(p, "987");
}

}  // namespace
}  // namespace bsp
