// Load-store disambiguation tests: the Figure-2 classifier and the timing
// core's partial-address load decision logic.
#include <gtest/gtest.h>

#include "lsq/disambig.hpp"
#include "util/rng.hpp"

#include <vector>

namespace bsp {
namespace {

// --- classify_aliasing (Figure 2 categories) -----------------------------------

TEST(Aliasing, NoStores) {
  EXPECT_EQ(classify_aliasing(0x1000, {}, 5),
            AliasCategory::NoStoresInQueue);
}

TEST(Aliasing, ZeroMatch) {
  const std::vector<u32> stores = {0x2000, 0x3000};
  EXPECT_EQ(classify_aliasing(0x1000, stores, kDisambigBits),
            AliasCategory::ZeroMatch);
  // Even one bit can rule out stores whose low word-address bit differs.
  EXPECT_EQ(classify_aliasing(0x0, std::vector<u32>{0x4}, 1),
            AliasCategory::ZeroMatch);
}

TEST(Aliasing, SingleMatchCases) {
  // One store, exact match.
  EXPECT_EQ(classify_aliasing(0x1000, std::vector<u32>{0x1000}, 10),
            AliasCategory::SingleMatchOneStore);
  // Same match but with another (ruled-out) store in the queue.
  EXPECT_EQ(classify_aliasing(0x1000, std::vector<u32>{0x1000, 0x2004}, 10),
            AliasCategory::SingleMatchMultStores);
  // One partial match that the full comparison refutes: addresses agree in
  // the low bits but differ higher up.
  const u32 load = 0x00001000, store = 0x00101000;
  EXPECT_EQ(classify_aliasing(load, std::vector<u32>{store}, 8),
            AliasCategory::SingleNonMatch);
  EXPECT_EQ(classify_aliasing(load, std::vector<u32>{store}, kDisambigBits),
            AliasCategory::ZeroMatch);  // full compare rules it out
}

TEST(Aliasing, MultMatchCases) {
  // Two stores to the same address that matches the load.
  EXPECT_EQ(classify_aliasing(0x1000, std::vector<u32>{0x1000, 0x1000}, 6),
            AliasCategory::MultMatchSameAddr);
  // Two different stores that both match the low bits.
  EXPECT_EQ(
      classify_aliasing(0x00001000, std::vector<u32>{0x00101000, 0x00201000},
                        6),
      AliasCategory::MultMatchDiffAddr);
}

TEST(Aliasing, ByteOffsetBitsAreIgnored) {
  // Addresses differing only in bits 0..1 (byte in word) always match.
  EXPECT_EQ(classify_aliasing(0x1001, std::vector<u32>{0x1002}, kDisambigBits),
            AliasCategory::SingleMatchOneStore);
}

TEST(Aliasing, ResolvedPredicate) {
  EXPECT_TRUE(aliasing_resolved(AliasCategory::NoStoresInQueue));
  EXPECT_TRUE(aliasing_resolved(AliasCategory::ZeroMatch));
  EXPECT_TRUE(aliasing_resolved(AliasCategory::SingleMatchOneStore));
  EXPECT_TRUE(aliasing_resolved(AliasCategory::SingleMatchMultStores));
  EXPECT_TRUE(aliasing_resolved(AliasCategory::MultMatchSameAddr));
  EXPECT_FALSE(aliasing_resolved(AliasCategory::SingleNonMatch));
  EXPECT_FALSE(aliasing_resolved(AliasCategory::MultMatchDiffAddr));
}

// Property: with the full 30 bits compared, the category exactly reflects
// whole-word-address equality.
TEST(Aliasing, FullComparisonIsExact) {
  Rng rng(17);
  for (int trial = 0; trial < 2000; ++trial) {
    const u32 load = rng.next();
    std::vector<u32> stores;
    const unsigned n = rng.below(6);
    unsigned exact = 0;
    for (unsigned i = 0; i < n; ++i) {
      u32 s = rng.next();
      if (rng.chance(1, 3)) s = load ^ (rng.next() & 3);  // same word
      stores.push_back(s);
      if ((s >> 2) == (load >> 2)) ++exact;
    }
    const AliasCategory c = classify_aliasing(load, stores, kDisambigBits);
    if (stores.empty()) {
      EXPECT_EQ(c, AliasCategory::NoStoresInQueue);
    } else if (exact == 0) {
      EXPECT_EQ(c, AliasCategory::ZeroMatch);
    } else if (exact == 1) {
      EXPECT_TRUE(c == AliasCategory::SingleMatchOneStore ||
                  c == AliasCategory::SingleMatchMultStores);
    } else {
      EXPECT_EQ(c, AliasCategory::MultMatchSameAddr);
    }
  }
}

// Property: categories are "monotone" — once a load is fully ruled out or
// uniquely matched with more bits, fewer bits can only be less specific,
// and ZeroMatch at k bits implies ZeroMatch at all k' > k.
TEST(Aliasing, ZeroMatchIsMonotone) {
  Rng rng(23);
  for (int trial = 0; trial < 500; ++trial) {
    const u32 load = rng.next();
    std::vector<u32> stores;
    for (unsigned i = 0; i < 4; ++i) stores.push_back(rng.next());
    bool seen_zero = false;
    for (unsigned k = 1; k <= kDisambigBits; ++k) {
      const AliasCategory c = classify_aliasing(load, stores, k);
      if (seen_zero) {
        EXPECT_EQ(c, AliasCategory::ZeroMatch);
      }
      if (c == AliasCategory::ZeroMatch) seen_zero = true;
    }
  }
}

// --- forward_bytes / ranges_overlap ----------------------------------------------

TEST(Forwarding, RangesOverlap) {
  EXPECT_TRUE(ranges_overlap(0x100, 4, 0x100, 4));
  EXPECT_TRUE(ranges_overlap(0x100, 4, 0x103, 1));
  EXPECT_FALSE(ranges_overlap(0x100, 4, 0x104, 4));
  EXPECT_FALSE(ranges_overlap(0x104, 4, 0x100, 4));
  EXPECT_TRUE(ranges_overlap(0x102, 2, 0x100, 4));
  EXPECT_TRUE(ranges_overlap(0xfffffffc, 4, 0xfffffffe, 2));
}

TEST(Forwarding, ExtractsCoveredBytes) {
  // Word store 0x44332211 at 0x100 (little-endian bytes 11 22 33 44).
  EXPECT_EQ(forward_bytes(0x100, 4, 0x100, 4, 0x44332211).value(),
            0x44332211u);
  EXPECT_EQ(forward_bytes(0x100, 1, 0x100, 4, 0x44332211).value(), 0x11u);
  EXPECT_EQ(forward_bytes(0x102, 1, 0x100, 4, 0x44332211).value(), 0x33u);
  EXPECT_EQ(forward_bytes(0x102, 2, 0x100, 4, 0x44332211).value(), 0x4433u);
}

TEST(Forwarding, RejectsPartialCoverage) {
  EXPECT_FALSE(forward_bytes(0x100, 4, 0x100, 2, 0xaaaa).has_value());
  EXPECT_FALSE(forward_bytes(0x0fe, 4, 0x100, 4, 0x1).has_value());
  EXPECT_FALSE(forward_bytes(0x102, 4, 0x100, 4, 0x1).has_value());
}

// --- disambiguate_load -------------------------------------------------------------

StoreView store(int id, unsigned bits, u32 addr, unsigned bytes,
                bool data_ready, u32 data = 0) {
  return StoreView{id, bits, addr, bytes, data_ready, data};
}

TEST(LoadDecision, NoOlderStoresIssues) {
  const DisambigResult r =
      disambiguate_load({32, 0x1000, 4}, {}, /*enable_partial=*/false);
  EXPECT_EQ(r.decision, LoadDecision::Issue);
}

TEST(LoadDecision, UnknownStoreBlocks) {
  const std::vector<StoreView> stores = {store(1, 0, 0, 4, false)};
  EXPECT_EQ(disambiguate_load({32, 0x1000, 4}, stores, true).decision,
            LoadDecision::WaitStore);
  EXPECT_EQ(disambiguate_load({32, 0x1000, 4}, stores, false).decision,
            LoadDecision::WaitStore);
}

TEST(LoadDecision, ConventionalNeedsFullAddresses) {
  const std::vector<StoreView> stores = {store(1, 16, 0x2000, 4, true)};
  // Partial knowledge rules the store out early...
  EXPECT_EQ(disambiguate_load({16, 0x1000, 4}, stores, true).decision,
            LoadDecision::Issue);
  // ...but the conventional machine must wait for both full addresses.
  EXPECT_EQ(disambiguate_load({16, 0x1000, 4}, stores, false).decision,
            LoadDecision::WaitStore);
  EXPECT_EQ(disambiguate_load({32, 0x1000, 4}, stores, false).decision,
            LoadDecision::WaitStore);
}

TEST(LoadDecision, PartialIssueSetsUsedPartial) {
  const std::vector<StoreView> stores = {store(1, 32, 0x2000, 4, true)};
  const DisambigResult r = disambiguate_load({16, 0x1000, 4}, stores, true);
  EXPECT_EQ(r.decision, LoadDecision::Issue);
  EXPECT_TRUE(r.used_partial);
  const DisambigResult full = disambiguate_load({32, 0x1000, 4}, stores, true);
  EXPECT_EQ(full.decision, LoadDecision::Issue);
  EXPECT_FALSE(full.used_partial);
}

TEST(LoadDecision, PartialMatchPendsUntilFullCompare) {
  // Store matches the low 16 bits but differs above: with only 16 bits the
  // load must wait; with the full address it can issue.
  const std::vector<StoreView> stores = {store(1, 32, 0x00011000, 4, true)};
  EXPECT_EQ(disambiguate_load({16, 0x00001000, 4}, stores, true).decision,
            LoadDecision::WaitStore);
  EXPECT_EQ(disambiguate_load({32, 0x00001000, 4}, stores, true).decision,
            LoadDecision::Issue);
}

TEST(LoadDecision, ForwardFromUniqueMatch) {
  const std::vector<StoreView> stores = {
      store(7, 32, 0x1000, 4, true, 0xdeadbeef)};
  const DisambigResult r = disambiguate_load({32, 0x1000, 4}, stores, true);
  EXPECT_EQ(r.decision, LoadDecision::Forward);
  EXPECT_EQ(r.store_id, 7);
  EXPECT_EQ(r.forwarded, 0xdeadbeefu);
}

TEST(LoadDecision, ForwardTakesYoungestMatchingStore) {
  const std::vector<StoreView> stores = {
      store(1, 32, 0x1000, 4, true, 0x11111111),
      store(2, 32, 0x1000, 4, true, 0x22222222)};
  const DisambigResult r = disambiguate_load({32, 0x1000, 4}, stores, true);
  EXPECT_EQ(r.decision, LoadDecision::Forward);
  EXPECT_EQ(r.store_id, 2);
  EXPECT_EQ(r.forwarded, 0x22222222u);
}

TEST(LoadDecision, MatchWithoutDataBlocks) {
  const std::vector<StoreView> stores = {store(1, 32, 0x1000, 4, false)};
  EXPECT_EQ(disambiguate_load({32, 0x1000, 4}, stores, true).decision,
            LoadDecision::WaitStore);
}

TEST(LoadDecision, NarrowStoreCannotForwardWiderLoad) {
  const std::vector<StoreView> stores = {store(1, 32, 0x1000, 1, true, 0xff)};
  // Same word, overlapping, but the byte store cannot supply a word load.
  EXPECT_EQ(disambiguate_load({32, 0x1000, 4}, stores, true).decision,
            LoadDecision::WaitStore);
}

TEST(LoadDecision, SameWordNonOverlappingBytesIssue) {
  // Store to byte 0, load from byte 2 of the same word: no conflict.
  const std::vector<StoreView> stores = {store(1, 32, 0x1000, 1, true, 0xff)};
  EXPECT_EQ(disambiguate_load({32, 0x1002, 1}, stores, true).decision,
            LoadDecision::Issue);
}

TEST(LoadDecision, WideStoreForwardsNarrowLoad) {
  const std::vector<StoreView> stores = {
      store(3, 32, 0x1000, 4, true, 0x44332211)};
  const DisambigResult r = disambiguate_load({32, 0x1001, 1}, stores, true);
  EXPECT_EQ(r.decision, LoadDecision::Forward);
  EXPECT_EQ(r.forwarded, 0x22u);
}

}  // namespace
}  // namespace bsp
