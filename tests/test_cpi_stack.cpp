// CPI-stack accounting tests: the hard identity sum(cpi_* leaves) ==
// cycles * commit_width must hold exactly — not approximately — for every
// machine point, workload, warm-up split and sampled stitching, the
// enabled path must not perturb any architectural counter, and the
// disabled path must leave every leaf at zero.
#include <gtest/gtest.h>

#include <sstream>

#include "core/simulator.hpp"
#include "obs/cpi_stack.hpp"
#include "obs/interval.hpp"
#include "sampling/sampled.hpp"
#include "workloads/workloads.hpp"

namespace bsp {
namespace {

SimResult run_cpi(const MachineConfig& config, const Program& program,
                  u64 commits, u64 warmup = 0) {
  Simulator sim(config, program);
  sim.enable_cpi_stack();
  return sim.run(commits, warmup);
}

void expect_identity(const SimStats& s, unsigned width,
                     const std::string& what) {
  std::string why;
  EXPECT_TRUE(obs::cpi_identity_holds(s, width, &why)) << what << ": " << why;
  EXPECT_TRUE(obs::cpi_enabled(s)) << what;
}

// ---------------------------------------------------------------------------
// The identity, across the machine-point matrix the golden tests pin.

TEST(CpiStack, IdentityAcrossMachineMatrix) {
  const struct {
    const char* label;
    MachineConfig config;
  } machines[] = {
      {"base", base_machine()},
      {"simple-x2", simple_pipelined_machine(2)},
      {"simple-x4", simple_pipelined_machine(4)},
      {"sliced-x2-all", bitsliced_machine(2, kAllTechniques)},
      {"sliced-x4-all", bitsliced_machine(4, kAllTechniques)},
      {"sliced-x2-none", bitsliced_machine(2, 0)},
  };
  for (const char* workload : {"li", "gzip", "mcf"}) {
    const Program program = build_workload(workload).program;
    for (const auto& m : machines) {
      const SimResult r = run_cpi(m.config, program, 3000);
      ASSERT_TRUE(r.ok()) << workload << "/" << m.label;
      expect_identity(r.stats, m.config.core.commit_width,
                      std::string(workload) + "/" + m.label);
      // Base slots are the retired instructions, possibly short one
      // trailing partial batch at the measurement edge.
      EXPECT_LE(r.stats.cpi_base, r.stats.committed);
      EXPECT_GE(r.stats.cpi_base + m.config.core.commit_width,
                r.stats.committed);
    }
  }
}

TEST(CpiStack, IdentityWithWarmup) {
  const Program program = build_workload("gzip").program;
  const MachineConfig config = bitsliced_machine(2, kAllTechniques);
  // Warm-up rebases the counters mid-run; the identity must hold on the
  // measured region alone, for several warm-up/measure splits including
  // ones that land mid-commit-batch.
  for (const u64 warmup : {1u, 999u, 1000u, 2500u}) {
    const SimResult r = run_cpi(config, program, 2000, warmup);
    ASSERT_TRUE(r.ok()) << "warmup " << warmup;
    expect_identity(r.stats, config.core.commit_width,
                    "warmup " + std::to_string(warmup));
    EXPECT_EQ(r.stats.committed, 2000u);
  }
}

// ---------------------------------------------------------------------------
// Determinism and non-perturbation.

TEST(CpiStack, BitDeterministicAcrossReruns) {
  const Program program = build_workload("gzip").program;
  const MachineConfig config = bitsliced_machine(4, kAllTechniques);
  const SimResult a = run_cpi(config, program, 5000, 500);
  const SimResult b = run_cpi(config, program, 5000, 500);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (const obs::CounterDesc& c : obs::simstats_counters())
    EXPECT_EQ(a.stats.*c.field, b.stats.*c.field) << c.name;
}

TEST(CpiStack, EnabledPathDoesNotPerturbArchitecturalCounters) {
  const Program program = build_workload("li").program;
  const MachineConfig config = bitsliced_machine(2, kAllTechniques);
  Simulator plain(config, program);
  const SimResult base = plain.run(3000);
  const SimResult cpi = run_cpi(config, program, 3000);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(cpi.ok());
  for (const obs::CounterDesc& c : obs::simstats_counters()) {
    if (std::string(c.name).rfind("cpi_", 0) == 0) continue;
    EXPECT_EQ(base.stats.*c.field, cpi.stats.*c.field) << c.name;
  }
  // Disabled run: every leaf exactly zero, and cpi_enabled can tell.
  EXPECT_EQ(obs::cpi_slot_total(base.stats), 0u);
  EXPECT_FALSE(obs::cpi_enabled(base.stats));
  EXPECT_TRUE(obs::cpi_enabled(cpi.stats));
}

// ---------------------------------------------------------------------------
// Registry and merge plumbing.

TEST(CpiStack, LeavesAreRegisteredCountersInEnumOrder) {
  const auto& registry = obs::simstats_counters();
  for (const obs::CpiLeafDesc& leaf : obs::cpi_leaves()) {
    const int idx = obs::counter_index(leaf.name);
    ASSERT_GE(idx, 0) << leaf.name;
    EXPECT_EQ(registry[idx].field, leaf.field) << leaf.name;
    EXPECT_TRUE(registry[idx].optional) << leaf.name;
  }
  // Registry order within the cpi_ block matches enum order: cpi_leaves()
  // indexes by static_cast<unsigned>(cause).
  int prev = -1;
  for (const obs::CpiLeafDesc& leaf : obs::cpi_leaves()) {
    const int idx = obs::counter_index(leaf.name);
    EXPECT_GT(idx, prev) << leaf.name;
    prev = idx;
  }
  EXPECT_EQ(obs::cpi_leaves().size(), obs::kNumCpiCauses);
}

TEST(CpiStack, MergeIsAdditiveAndPreservesIdentity) {
  SimStats a, b;
  a.cycles = 100;
  a.committed = 150;
  a.cpi_base = 150;
  a.cpi_slice_low = 200;
  a.cpi_dcache = 50;
  b.cycles = 60;
  b.committed = 90;
  b.cpi_base = 90;
  b.cpi_br_squash = 100;
  b.cpi_partial_tag = 50;
  expect_identity(a, 4, "a");
  expect_identity(b, 4, "b");
  a.merge(b);
  EXPECT_EQ(a.cycles, 160u);
  EXPECT_EQ(a.cpi_base, 240u);
  EXPECT_EQ(a.cpi_slice_low, 200u);
  EXPECT_EQ(a.cpi_br_squash, 100u);
  EXPECT_EQ(a.cpi_partial_tag, 50u);
  EXPECT_EQ(a.cpi_dcache, 50u);
  expect_identity(a, 4, "merged");
}

TEST(CpiStack, IdentityCheckerRejectsAndExplains) {
  SimStats s;
  s.cycles = 10;
  s.committed = 5;
  s.cpi_base = 5;
  s.cpi_other = 34;  // one slot short of 10 * 4
  std::string why;
  EXPECT_FALSE(obs::cpi_identity_holds(s, 4, &why));
  EXPECT_NE(why.find("39"), std::string::npos) << why;
  EXPECT_NE(why.find("40"), std::string::npos) << why;
  s.cpi_other = 35;
  EXPECT_TRUE(obs::cpi_identity_holds(s, 4, nullptr));
}

// ---------------------------------------------------------------------------
// Interval sampler integration: per-row identity, partial tail, warm-up.

TEST(CpiStack, IntervalRowsKeepPerSampleIdentity) {
  const MachineConfig config = bitsliced_machine(2, kAllTechniques);
  obs::IntervalSampler sampler(700);  // 3000 % 700 != 0: partial tail row
  Simulator sim(config, build_workload("gzip").program);
  sim.set_interval_sampler(&sampler);
  sim.enable_cpi_stack();
  const SimResult r = sim.run(3000);
  ASSERT_TRUE(r.ok());
  ASSERT_FALSE(sampler.rows().empty());
  EXPECT_EQ(sampler.rows().back().committed, 3000u);

  const auto& registry = obs::simstats_counters();
  const int cycles_idx = obs::counter_index("cycles");
  ASSERT_GE(cycles_idx, 0);
  std::vector<u64> sums(registry.size(), 0);
  for (const obs::IntervalRow& row : sampler.rows()) {
    ASSERT_EQ(row.delta.size(), registry.size());
    // Sampler snapshots land between commit and charge, so each row's cpi
    // deltas cover exactly its cycle delta — the per-sample identity the
    // offline validator checks.
    u64 slot_sum = 0;
    for (const obs::CpiLeafDesc& leaf : obs::cpi_leaves())
      slot_sum += row.delta[obs::counter_index(leaf.name)];
    EXPECT_EQ(slot_sum, row.delta[cycles_idx] * config.core.commit_width);
    for (std::size_t i = 0; i < registry.size(); ++i)
      sums[i] += row.delta[i];
  }
  for (std::size_t i = 0; i < registry.size(); ++i)
    EXPECT_EQ(sums[i], r.stats.*registry[i].field) << registry[i].name;
}

TEST(CpiStack, IntervalRowsWithWarmupRebase) {
  const MachineConfig config = bitsliced_machine(2, kAllTechniques);
  obs::IntervalSampler sampler(500);
  Simulator sim(config, build_workload("li").program);
  sim.set_interval_sampler(&sampler);
  sim.enable_cpi_stack();
  const SimResult r = sim.run(2000, 1000);  // warm-up rebases mid-run
  ASSERT_TRUE(r.ok());
  ASSERT_FALSE(sampler.rows().empty());
  EXPECT_EQ(sampler.rows().back().committed, 2000u);
  const int cycles_idx = obs::counter_index("cycles");
  u64 cycle_sum = 0, slot_sum = 0;
  for (const obs::IntervalRow& row : sampler.rows()) {
    cycle_sum += row.delta[cycles_idx];
    for (const obs::CpiLeafDesc& leaf : obs::cpi_leaves())
      slot_sum += row.delta[obs::counter_index(leaf.name)];
  }
  EXPECT_EQ(cycle_sum, r.stats.cycles);
  EXPECT_EQ(slot_sum, r.stats.cycles * config.core.commit_width);
}

// ---------------------------------------------------------------------------
// Sampled engine: per-interval and stitched identities, K=1 equivalence.

TEST(CpiStack, SampledStitchingPreservesIdentity) {
  const MachineConfig config = bitsliced_machine(2, kAllTechniques);
  const Workload w = build_workload("gzip");
  sampling::SampleOptions opts;
  opts.intervals = 4;
  opts.warmup = 1000;
  opts.jobs = 2;
  opts.cpi_stack = true;
  const sampling::SampledResult res =
      sampling::run_sampled(config, w.program, "gzip", 0x5eed, 20000, 2000,
                            0, opts);
  ASSERT_TRUE(res.ok()) << res.error;
  for (const sampling::IntervalResult& r : res.intervals) {
    if (r.skipped) continue;
    expect_identity(r.stats, config.core.commit_width,
                    "interval " + std::to_string(r.spec.index));
  }
  expect_identity(res.aggregate, config.core.commit_width, "aggregate");
}

TEST(CpiStack, SampledK1MatchesMonolithic) {
  const MachineConfig config = bitsliced_machine(2, kAllTechniques);
  const Workload w = build_workload("li");
  sampling::SampleOptions opts;
  opts.intervals = 1;
  opts.cpi_stack = true;
  const sampling::SampledResult res = sampling::run_sampled(
      config, w.program, "li", 0x5eed, 4000, 500, 0, opts);
  ASSERT_TRUE(res.ok()) << res.error;
  const SimResult mono = run_cpi(config, w.program, 4000, 500);
  ASSERT_TRUE(mono.ok());
  for (const obs::CounterDesc& c : obs::simstats_counters())
    EXPECT_EQ(res.aggregate.*c.field, mono.stats.*c.field) << c.name;
}

// ---------------------------------------------------------------------------
// Rendering.

TEST(CpiStack, FormatAndJsonCarryTheStack)
{
  const MachineConfig config = bitsliced_machine(2, kAllTechniques);
  const SimResult r = run_cpi(config, build_workload("li").program, 2000);
  ASSERT_TRUE(r.ok());
  const std::string text =
      obs::format_cpi_stack(r.stats, config.core.commit_width);
  EXPECT_NE(text.find("cpi_base"), std::string::npos);
  EXPECT_NE(text.find("identity: ok"), std::string::npos);
  const std::string json =
      obs::cpi_stack_json(r.stats, config.core.commit_width);
  for (const obs::CpiLeafDesc& leaf : obs::cpi_leaves())
    EXPECT_NE(json.find(std::string("\"") + leaf.name + "\":"),
              std::string::npos)
        << leaf.name;
  EXPECT_NE(json.find("\"commit_width\":" +
                      std::to_string(config.core.commit_width)),
            std::string::npos);
}

}  // namespace
}  // namespace bsp
