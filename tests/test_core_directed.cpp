// Directed timing-core scenarios: each test constructs a small program that
// isolates one mechanism (forwarding, recovery, replay, structural stalls,
// call/return prediction) and checks both its architectural outcome and the
// mechanism-level counters.
#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "core/simulator.hpp"

namespace bsp {
namespace {

Program compile(const std::string& src) {
  AsmResult r = assemble(src);
  EXPECT_TRUE(r.ok()) << r.error_text();
  return r.program;
}

SimResult run(const MachineConfig& cfg, const std::string& src,
              u64 commits = 1u << 20) {
  const SimResult r = simulate(cfg, compile(src), commits);
  EXPECT_TRUE(r.ok()) << r.error;
  return r;
}

const char* kExit = "  li $v0, 10\n  li $a0, 0\n  syscall\n";

// Store-to-load forwarding: a load that reads a just-written location must
// forward in-queue (counted) and still commit the right value (co-sim).
TEST(CoreDirected, StoreLoadForwarding) {
  const std::string src = std::string(R"(
.text
main:
  li $t0, 2000
  li $t3, 0x1234
loop:
  sw $t3, 16($gp)
  lw $t4, 16($gp)
  addu $t3, $t4, $t0
  addiu $t0, $t0, -1
  bgtz $t0, loop
.data
  .space 64
.text
)") + kExit;
  for (const auto& cfg :
       {base_machine(), bitsliced_machine(2, kAllTechniques)}) {
    const SimResult r = run(cfg, src);
    EXPECT_TRUE(r.exited);
    EXPECT_GT(r.stats.load_forwards, 1500u);
  }
}

// A load that only partially overlaps an older store must NOT forward; it
// waits and still commits correctly (verified by co-simulation).
TEST(CoreDirected, PartialOverlapDoesNotForward) {
  const std::string src = std::string(R"(
.text
main:
  li $t0, 500
loop:
  sb $t0, 17($gp)       # byte store inside the word
  lw $t4, 16($gp)       # word load overlapping it
  addu $t5, $t5, $t4
  addiu $t0, $t0, -1
  bgtz $t0, loop
.data
  .space 64
.text
)") + kExit;
  const SimResult r = run(bitsliced_machine(2, kAllTechniques), src);
  EXPECT_TRUE(r.exited);
  EXPECT_EQ(r.stats.load_forwards, 0u);
}

// Heavy misprediction: recovery must keep the committed stream exact and
// count wrong-path dispatches.
TEST(CoreDirected, MispredictRecoveryCountsWrongPath) {
  const std::string src = std::string(R"(
.text
main:
  li $t0, 3000
  li $t9, 88172645
loop:
  sll $at, $t9, 13
  xor $t9, $t9, $at
  srl $at, $t9, 17
  xor $t9, $t9, $at
  sll $at, $t9, 5
  xor $t9, $t9, $at
  andi $t1, $t9, 1
  beq $t1, $0, even     # 50/50 data-dependent branch
  addiu $t2, $t2, 1
even:
  addiu $t0, $t0, -1
  bgtz $t0, loop
)") + kExit;
  const SimResult r = run(base_machine(), src);
  EXPECT_TRUE(r.exited);
  EXPECT_GT(r.stats.branch_mispredicts, 500u);
  EXPECT_GT(r.stats.bogus_dispatched, r.stats.branch_mispredicts)
      << "each recovery should have flushed some wrong-path work";
}

// Call/return chains: the RAS should make jr $ra nearly free; the program
// must still commit the emulator's exact stream.
TEST(CoreDirected, CallReturnViaRas) {
  const std::string src = std::string(R"(
.text
main:
  li $s0, 2000
caller:
  jal callee
  jal callee
  addiu $s0, $s0, -1
  bgtz $s0, caller
  b done
callee:
  addiu $t0, $t0, 1
  jr $ra
done:
)") + kExit;
  const SimResult r = run(base_machine(), src);
  EXPECT_TRUE(r.exited);
  // 4000 returns; a working RAS leaves only cold-start jr mispredicts, each
  // costing a flush. Require almost no bogus work relative to commits.
  EXPECT_LT(r.stats.bogus_dispatched, r.stats.committed / 10);
}

// L1-missing pointer chase: hit-speculation must trigger load replays and
// selective slice-op replays (the wrongly woken consumers), and slicing must
// not change the committed count.
TEST(CoreDirected, MissChainTriggersSelectiveReplay) {
  const std::string src = std::string(R"(
.text
main:
  li $t0, 4000
  la $s0, region
  li $t9, 88172645
loop:
  sll $at, $t9, 13
  xor $t9, $t9, $at
  srl $at, $t9, 17
  xor $t9, $t9, $at
  sll $at, $t9, 5
  xor $t9, $t9, $at
  sll $t1, $t9, 12
  srl $t1, $t1, 14
  sll $t1, $t1, 2
  addu $t2, $s0, $t1
  lw $t3, 0($t2)        # usually misses (1 MB region)
  addu $t4, $t3, $t3    # dependents with no other obligations: they are
  addu $t5, $t3, $t1    # woken the moment the hit-speculated data "returns"
  xor $t6, $t3, $t9     # and must all replay when the miss is discovered
  addiu $t0, $t0, -1
  bgtz $t0, loop
.data
region: .space 1048576
.text
)") + kExit;
  const SimResult r = run(bitsliced_machine(2, kAllTechniques), src, 80'000);
  EXPECT_GT(r.stats.load_replays, 1000u);
  EXPECT_GT(r.stats.op_replays, 1000u)
      << "consumers woken under the hit assumption must have been replayed";
  EXPECT_GT(r.stats.l1d_misses, 1000u);
}

// RUU pressure: a long chain of serial divisions cannot deadlock; the
// watchdog stays quiet and everything commits.
TEST(CoreDirected, SerialDivisionsDoNotDeadlock) {
  const std::string src = std::string(R"(
.text
main:
  li $t0, 300
  li $t1, 1000000
  li $t2, 3
loop:
  div $t1, $t2
  mflo $t1
  mult $t1, $t2
  mflo $t3
  addiu $t1, $t3, 7
  addiu $t0, $t0, -1
  bgtz $t0, loop
)") + kExit;
  for (const auto& cfg :
       {base_machine(), bitsliced_machine(4, kAllTechniques)}) {
    const SimResult r = run(cfg, src);
    EXPECT_TRUE(r.exited);
    EXPECT_LT(r.stats.ipc(), 1.0) << "a div chain cannot be fast";
  }
}

// Variable shifts in the sliced machine: amount comes from slice 0 of rs;
// a tight sllv/srav chain must co-simulate at every width.
TEST(CoreDirected, VariableShiftChains) {
  const std::string src = std::string(R"(
.text
main:
  li $t0, 20000
  li $t1, 0x12345678
loop:
  andi $t2, $t0, 31
  sllv $t3, $t1, $t2
  srav $t4, $t3, $t2
  srlv $t5, $t4, $t2
  xor $t1, $t1, $t5
  addiu $t1, $t1, 13
  addiu $t0, $t0, -1
  bgtz $t0, loop
)") + kExit;
  for (const unsigned slices : {2u, 4u, 8u}) {
    const SimResult r = run(bitsliced_machine(slices, kAllTechniques), src);
    EXPECT_TRUE(r.exited) << "slices=" << slices;
  }
}

// Syscall output must match the emulator exactly (print syscalls flow
// through commit in order).
TEST(CoreDirected, SyscallOutputMatchesEmulator) {
  const std::string src = R"(
.text
main:
  li $t0, 5
loop:
  move $a0, $t0
  li $v0, 1
  syscall
  li $a0, 44          # ','
  li $v0, 11
  syscall
  addiu $t0, $t0, -1
  bgtz $t0, loop
  li $v0, 10
  li $a0, 0
  syscall
)";
  const Program p = compile(src);
  Emulator emu(p);
  emu.run(1u << 20);
  ASSERT_EQ(emu.output(), "5,4,3,2,1,");
  // The timing core routes syscalls through the same emulator at commit; a
  // clean exit plus co-simulation implies identical output.
  const SimResult r = simulate(bitsliced_machine(2, kAllTechniques), p,
                               1u << 20);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_TRUE(r.exited);
  EXPECT_EQ(r.exit_code, 0);
}

// Early LSQ disambiguation must never let a load pass a store it actually
// conflicts with: stress with same-low-bits/different-high-bits addresses
// (the adversarial case for partial comparison) and rely on co-simulation.
TEST(CoreDirected, PartialDisambiguationAdversarialAliases) {
  const std::string src = std::string(R"(
.text
main:
  li $t0, 3000
  la $s0, a
  la $s1, b             # b = a + 64 KB: identical low 16 address bits
loop:
  andi $t1, $t0, 0xfc
  addu $t2, $s0, $t1
  addu $t3, $s1, $t1
  sw $t0, 0($t2)
  lw $t4, 0($t3)        # partially matches the store until bit 16
  sw $t4, 4($t3)
  lw $t5, 0($t2)        # true conflict: must see the sw value
  addu $t6, $t6, $t5
  addiu $t0, $t0, -1
  bgtz $t0, loop
.data
a: .space 65536
b: .space 1024
.text
)") + kExit;
  for (const unsigned slices : {2u, 4u}) {
    const SimResult r = run(bitsliced_machine(slices, kAllTechniques), src);
    EXPECT_TRUE(r.exited) << "slices=" << slices;
    EXPECT_GT(r.stats.load_forwards, 0u);
  }
}

}  // namespace
}  // namespace bsp
