// Differential tests against brute-force reference models: the optimised
// cache and disambiguation structures must agree with tiny, obviously
// correct reimplementations on long random traces.
#include <gtest/gtest.h>

#include <list>
#include <map>
#include <vector>

#include "lsq/disambig.hpp"
#include "mem/cache.hpp"
#include "util/rng.hpp"

namespace bsp {
namespace {

// ---------------------------------------------------------------------------
// Reference cache: per-set std::list front-MRU, trivially correct LRU.
// ---------------------------------------------------------------------------
class ReferenceCache {
 public:
  ReferenceCache(CacheGeometry g) : geom_(g), sets_(g.num_sets()) {}

  bool access(u32 addr) {
    auto& set = sets_[index(addr)];
    const u32 tag = addr >> geom_.tag_lo_bit();
    for (auto it = set.begin(); it != set.end(); ++it) {
      if (*it == tag) {
        set.erase(it);
        set.push_front(tag);
        return true;  // hit
      }
    }
    set.push_front(tag);
    if (set.size() > geom_.ways) set.pop_back();
    return false;
  }

  bool contains(u32 addr) const {
    const auto& set = sets_[index(addr)];
    const u32 tag = addr >> geom_.tag_lo_bit();
    for (const u32 t : set)
      if (t == tag) return true;
    return false;
  }

  // Tags in the set matching the low n bits of addr's tag.
  unsigned partial_matches(u32 addr, unsigned n) const {
    const u32 mask = low_mask(n);
    const u32 tag = addr >> geom_.tag_lo_bit();
    unsigned count = 0;
    for (const u32 t : sets_[index(addr)])
      if (((t ^ tag) & mask) == 0) ++count;
    return count;
  }

  // MRU element among partial matches (front of the list is MRU).
  std::optional<u32> mru_partial_match(u32 addr, unsigned n) const {
    const u32 mask = low_mask(n);
    const u32 tag = addr >> geom_.tag_lo_bit();
    for (const u32 t : sets_[index(addr)])
      if (((t ^ tag) & mask) == 0) return t;
    return std::nullopt;
  }

 private:
  u32 index(u32 addr) const {
    return bits(addr, geom_.offset_bits(), geom_.index_bits());
  }
  CacheGeometry geom_;
  std::vector<std::list<u32>> sets_;
};

class CacheDifferentialTest
    : public ::testing::TestWithParam<CacheGeometry> {};

TEST_P(CacheDifferentialTest, AgreesWithReferenceOnRandomTrace) {
  const CacheGeometry g = GetParam();
  Cache cache(g);
  ReferenceCache ref(g);
  Rng rng(0xCAFE);

  // A mix of hot addresses (reuse) and cold ones (evictions).
  std::vector<u32> hot;
  for (int i = 0; i < 64; ++i) hot.push_back(rng.next());

  for (int i = 0; i < 100000; ++i) {
    const u32 addr =
        rng.chance(2, 3) ? hot[rng.below(64)] + (rng.next() & (g.line_bytes - 1))
                         : rng.next();
    // Pre-access agreement on lookup and partial matching.
    EXPECT_EQ(cache.find(addr).has_value(), ref.contains(addr));
    const unsigned tbits = 1 + rng.below(g.tag_bits());
    EXPECT_EQ(static_cast<unsigned>(
                  std::popcount(cache.partial_match_ways(addr, tbits))),
              ref.partial_matches(addr, tbits));
    // MRU way prediction picks the same *tag* as the reference's MRU scan.
    const u32 ways = cache.partial_match_ways(addr, tbits);
    if (ways) {
      u32 rng_state = 1;
      const auto way = cache.predict_way(addr, ways, WayPolicy::MRU,
                                         &rng_state);
      ASSERT_TRUE(way.has_value());
      // (Recover the predicted way's tag through a full lookup trick: a way
      // matching all tag bits of its own line.)
      const auto ref_tag = ref.mru_partial_match(addr, tbits);
      ASSERT_TRUE(ref_tag.has_value());
      // The reference tag must be among the partial matches and, being MRU,
      // must be what a subsequent full access would hit if it is the true
      // line.
      EXPECT_EQ(((*ref_tag ^ (addr >> g.tag_lo_bit())) & low_mask(tbits)),
                0u);
    }
    const bool hit = cache.access(addr, rng.chance(1, 4)).hit;
    EXPECT_EQ(hit, ref.access(addr));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheDifferentialTest,
    ::testing::Values(CacheGeometry{64 * 1024, 64, 4},
                      CacheGeometry{8 * 1024, 32, 2},
                      CacheGeometry{8 * 1024, 32, 8},
                      CacheGeometry{1024, 64, 1}));

// ---------------------------------------------------------------------------
// Reference disambiguator: brute force over all stores with full addresses.
// ---------------------------------------------------------------------------

// With complete knowledge, disambiguate_load must agree with a trivial
// youngest-conflict scan.
TEST(DisambigDifferential, FullKnowledgeMatchesBruteForce) {
  Rng rng(0xD15A);
  for (int trial = 0; trial < 20000; ++trial) {
    const unsigned n = rng.below(8);
    std::vector<StoreView> stores;
    const u32 base = rng.next() & ~u32{0xff};
    for (unsigned i = 0; i < n; ++i) {
      StoreView s;
      s.id = static_cast<int>(i);
      s.addr_known_bits = 32;
      // Cluster addresses so overlaps actually happen.
      s.addr = base + (rng.next() & 0x3c);
      s.bytes = 1u << rng.below(3);
      s.addr &= ~(s.bytes - 1);
      s.data_ready = rng.chance(3, 4);
      s.data = rng.next();
      stores.push_back(s);
    }
    LoadQuery load{32, base + (rng.next() & 0x3c), 1u << rng.below(3)};
    load.addr &= ~(load.bytes - 1);

    // Brute force: youngest overlapping store decides.
    const StoreView* conflict = nullptr;
    for (const auto& s : stores)
      if (ranges_overlap(load.addr, load.bytes, s.addr, s.bytes))
        conflict = &s;

    const DisambigResult r = disambiguate_load(load, stores, true);
    if (!conflict) {
      EXPECT_EQ(r.decision, LoadDecision::Issue);
    } else if (conflict->data_ready &&
               forward_bytes(load.addr, load.bytes, conflict->addr,
                             conflict->bytes, conflict->data)) {
      EXPECT_EQ(r.decision, LoadDecision::Forward);
      EXPECT_EQ(r.store_id, conflict->id);
      EXPECT_EQ(r.forwarded,
                *forward_bytes(load.addr, load.bytes, conflict->addr,
                               conflict->bytes, conflict->data));
    } else {
      EXPECT_EQ(r.decision, LoadDecision::WaitStore);
    }
  }
}

// Partial knowledge must be *conservative*: whenever the partial decision
// says Issue, the full-knowledge decision must also be Issue (no conflict
// can materialise from bits that were already compared).
TEST(DisambigDifferential, PartialDecisionsAreSound) {
  Rng rng(0x50BD);
  for (int trial = 0; trial < 20000; ++trial) {
    const unsigned n = 1 + rng.below(6);
    std::vector<StoreView> full, partial;
    for (unsigned i = 0; i < n; ++i) {
      StoreView s;
      s.id = static_cast<int>(i);
      s.addr = rng.next() & ~u32{3};
      s.bytes = 4;
      s.addr_known_bits = 32;
      s.data_ready = rng.chance(1, 2);
      s.data = rng.next();
      full.push_back(s);
      StoreView sp = s;
      // Hide some upper bits from the partial view.
      const unsigned knowns[] = {8, 16, 24, 32};
      sp.addr_known_bits = knowns[rng.below(4)];
      partial.push_back(sp);
    }
    const u32 load_addr =
        rng.chance(1, 2) ? (full[rng.below(n)].addr) : (rng.next() & ~u32{3});
    const unsigned load_known[] = {8, 16, 24, 32};
    const LoadQuery pq{load_known[rng.below(4)], load_addr, 4};
    const LoadQuery fq{32, load_addr, 4};

    const DisambigResult pr = disambiguate_load(pq, partial, true);
    if (pr.decision == LoadDecision::Issue) {
      const DisambigResult fr = disambiguate_load(fq, full, true);
      EXPECT_EQ(fr.decision, LoadDecision::Issue)
          << "a partially-informed Issue contradicted the full comparison";
    }
  }
}

}  // namespace
}  // namespace bsp
