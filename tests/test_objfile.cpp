// Object-file round-trip and robustness tests, plus pipeview smoke tests.
#include <gtest/gtest.h>

#include <sstream>

#include "asm/assembler.hpp"
#include "asm/objfile.hpp"
#include "core/simulator.hpp"
#include "emu/emulator.hpp"
#include "util/rng.hpp"

namespace bsp {
namespace {

Program sample_program() {
  const AsmResult r = assemble(R"(
.text
main:
  la $t0, table
  lw $t1, 4($t0)
  move $a0, $t1
  li $v0, 1
  syscall
  li $v0, 10
  li $a0, 0
  syscall
.data
pad: .byte 1, 2, 3
.align 2
table: .word 10, 42, 30
)");
  EXPECT_TRUE(r.ok()) << r.error_text();
  return r.program;
}

TEST(ObjFile, RoundTripPreservesEverything) {
  const Program original = sample_program();
  std::stringstream buf;
  ASSERT_TRUE(save_object(original, buf));

  std::string error;
  const auto loaded = load_object(buf, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->text, original.text);
  EXPECT_EQ(loaded->data, original.data);
  EXPECT_EQ(loaded->text_base, original.text_base);
  EXPECT_EQ(loaded->data_base, original.data_base);
  EXPECT_EQ(loaded->entry, original.entry);
  EXPECT_EQ(loaded->symbols, original.symbols);
}

TEST(ObjFile, LoadedProgramRunsIdentically) {
  const Program original = sample_program();
  std::stringstream buf;
  ASSERT_TRUE(save_object(original, buf));
  const auto loaded = load_object(buf);
  ASSERT_TRUE(loaded.has_value());

  Emulator a(original), b(*loaded);
  a.run(1000);
  b.run(1000);
  EXPECT_EQ(a.output(), b.output());
  EXPECT_EQ(a.output(), "42");
  EXPECT_EQ(a.instructions_retired(), b.instructions_retired());
}

TEST(ObjFile, RejectsGarbage) {
  std::string error;
  {
    std::stringstream buf("not an object file at all");
    EXPECT_FALSE(load_object(buf, &error).has_value());
    EXPECT_EQ(error, "not a BSPO object file");
  }
  {
    std::stringstream buf;  // empty
    EXPECT_FALSE(load_object(buf, &error).has_value());
  }
}

TEST(ObjFile, RejectsTruncation) {
  const Program original = sample_program();
  std::stringstream buf;
  ASSERT_TRUE(save_object(original, buf));
  const std::string whole = buf.str();
  // Every strict prefix must be rejected, never crash.
  Rng rng(9);
  for (int i = 0; i < 64; ++i) {
    const std::size_t cut = rng.below(static_cast<u32>(whole.size()));
    std::stringstream part(whole.substr(0, cut));
    EXPECT_FALSE(load_object(part).has_value()) << "cut at " << cut;
  }
}

TEST(ObjFile, RejectsImplausibleSizes) {
  // Valid magic/version, absurd text size.
  std::stringstream buf;
  const u32 words[] = {0x4f505342, 1, 0, 0, 0xffffffffu, 0, 0, 0};
  buf.write(reinterpret_cast<const char*>(words), sizeof words);
  std::string error;
  EXPECT_FALSE(load_object(buf, &error).has_value());
  EXPECT_EQ(error, "implausible section sizes");
}

TEST(PipeTrace, EmitsStageEventsAndDoesNotPerturbTiming) {
  const Program p = sample_program();
  std::stringstream trace;
  Simulator traced(bitsliced_machine(2, kAllTechniques), p);
  traced.set_pipe_trace(trace, 0, 100000);
  const SimResult rt = traced.run(1000);
  ASSERT_TRUE(rt.ok()) << rt.error;

  const SimResult plain =
      simulate(bitsliced_machine(2, kAllTechniques), p, 1000);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(rt.stats.cycles, plain.stats.cycles)
      << "tracing must be an observer, not a participant";
  EXPECT_EQ(rt.stats.committed, plain.stats.committed);

  const std::string text = trace.str();
  EXPECT_NE(text.find("D    #"), std::string::npos);
  EXPECT_NE(text.find("X    #"), std::string::npos);
  EXPECT_NE(text.find("C    #"), std::string::npos);
  EXPECT_NE(text.find("M    #"), std::string::npos) << "the lw must appear";
}

TEST(PipeTrace, WindowRestrictsOutput) {
  const Program p = sample_program();
  std::stringstream trace;
  Simulator sim(bitsliced_machine(2, kAllTechniques), p);
  sim.set_pipe_trace(trace, 5, 6);  // a single (early, empty) cycle
  ASSERT_TRUE(sim.run(1000).ok());
  // Cycle 5 precedes the first dispatch (cold I$ miss), so nothing prints.
  EXPECT_TRUE(trace.str().empty()) << trace.str();
}

}  // namespace
}  // namespace bsp
