// Branch prediction substrate tests: counters, gshare, BTB, RAS, and the
// front-end bundle policy.
#include <gtest/gtest.h>

#include "branch/predictor.hpp"

namespace bsp {
namespace {

TEST(Counter2, SaturatesBothEnds) {
  Counter2 c;  // starts weakly not-taken (1)
  EXPECT_FALSE(c.taken());
  c.update(true);
  EXPECT_TRUE(c.taken());  // 2
  c.update(true);
  c.update(true);
  EXPECT_EQ(c.raw(), 3u);  // saturated
  c.update(false);
  EXPECT_TRUE(c.taken());  // hysteresis: still predicts taken at 2
  c.update(false);
  c.update(false);
  c.update(false);
  EXPECT_EQ(c.raw(), 0u);
  EXPECT_FALSE(c.taken());
}

TEST(Bimodal, LearnsABias) {
  BimodalPredictor p(64);
  const u32 pc = 0x400100;
  for (int i = 0; i < 10; ++i) p.update(pc, true);
  EXPECT_TRUE(p.predict(pc));
  for (int i = 0; i < 10; ++i) p.update(pc, false);
  EXPECT_FALSE(p.predict(pc));
}

TEST(Gshare, LearnsAlternationThatBimodalCannot) {
  // A strictly alternating branch: bimodal oscillates, gshare keys on the
  // history and becomes perfect.
  GsharePredictor g(1024);
  BimodalPredictor b(1024);
  const u32 pc = 0x400200;
  unsigned g_correct = 0, b_correct = 0;
  bool outcome = false;
  for (int i = 0; i < 2000; ++i) {
    outcome = !outcome;
    if (g.predict(pc) == outcome) ++g_correct;
    if (b.predict(pc) == outcome) ++b_correct;
    g.update(pc, outcome);
    b.update(pc, outcome);
  }
  EXPECT_GT(g_correct, 1900u);
  EXPECT_LT(b_correct, 1200u);
}

TEST(Gshare, HistoryShiftsPerUpdate) {
  GsharePredictor g(256);
  EXPECT_EQ(g.history(), 0u);
  g.update(0x400000, true);
  EXPECT_EQ(g.history(), 1u);
  g.update(0x400000, false);
  EXPECT_EQ(g.history(), 2u);
  g.update(0x400000, true);
  EXPECT_EQ(g.history(), 5u);
}

TEST(Btb, MissThenHit) {
  BranchTargetBuffer btb(16, 2);
  EXPECT_FALSE(btb.lookup(0x400000).has_value());
  btb.update(0x400000, 0x400800);
  EXPECT_EQ(btb.lookup(0x400000).value(), 0x400800u);
  btb.update(0x400000, 0x400900);  // retarget
  EXPECT_EQ(btb.lookup(0x400000).value(), 0x400900u);
}

TEST(Btb, LruEvictionWithinSet) {
  BranchTargetBuffer btb(16, 2);
  // Three pcs that map to the same set (stride = sets * 4 bytes).
  const u32 a = 0x400000, b = a + 16 * 4, c = a + 2 * 16 * 4;
  btb.update(a, 1);
  btb.update(b, 2);
  btb.lookup(a);          // lookups do not change LRU in this design...
  btb.update(a, 1);       // ...but an update refreshes it
  btb.update(c, 3);       // evicts b (LRU)
  EXPECT_TRUE(btb.lookup(a).has_value());
  EXPECT_FALSE(btb.lookup(b).has_value());
  EXPECT_TRUE(btb.lookup(c).has_value());
}

TEST(Ras, PushPopOrder) {
  ReturnAddressStack ras(4);
  EXPECT_FALSE(ras.pop().has_value());
  ras.push(1);
  ras.push(2);
  ras.push(3);
  EXPECT_EQ(ras.pop().value(), 3u);
  EXPECT_EQ(ras.pop().value(), 2u);
  EXPECT_EQ(ras.pop().value(), 1u);
  EXPECT_FALSE(ras.pop().has_value());
}

TEST(Ras, OverflowWrapsAround) {
  ReturnAddressStack ras(2);
  ras.push(1);
  ras.push(2);
  ras.push(3);  // overwrites 1
  EXPECT_EQ(ras.pop().value(), 3u);
  EXPECT_EQ(ras.pop().value(), 2u);
  EXPECT_FALSE(ras.pop().has_value());
}

TEST(FrontEnd, DirectJumpsAlwaysTakenWithDecodedTarget) {
  FrontEndPredictor fe;
  const auto j = make_jump(Op::J, 0x00400800);
  const BranchPrediction p = fe.predict(0x00400000, j);
  EXPECT_TRUE(p.taken);
  EXPECT_EQ(p.target, 0x00400800u);
}

TEST(FrontEnd, CallReturnPairUsesRas) {
  FrontEndPredictor fe;
  const auto jal = make_jump(Op::JAL, 0x00400800);
  fe.predict(0x00400100, jal);  // pushes 0x00400104
  const auto ret = make_jr(R_RA);
  const BranchPrediction p = fe.predict(0x00400850, ret);
  EXPECT_TRUE(p.taken);
  EXPECT_EQ(p.target, 0x00400104u);
}

TEST(FrontEnd, IndirectJumpFallsBackToBtb) {
  FrontEndPredictor fe;
  const auto jr = make_jr(R_T0);  // not $ra: no RAS
  BranchPrediction p = fe.predict(0x00400200, jr);
  EXPECT_EQ(p.target, 0x00400204u);  // no BTB entry: fall-through guess
  fe.resolve(0x00400200, jr, true, 0x00400900);
  p = fe.predict(0x00400200, jr);
  EXPECT_EQ(p.target, 0x00400900u);
}

TEST(FrontEnd, ConditionalUsesDecodedTargetWhenBtbCold) {
  FrontEndPredictor::Config cfg;
  FrontEndPredictor fe(cfg);
  const auto beq = make_br2(Op::BEQ, 1, 2, 16);
  const u32 pc = 0x00400300;
  // Train the direction to taken.
  for (int i = 0; i < 4; ++i) fe.resolve(pc, beq, true, beq.branch_target(pc));
  const BranchPrediction p = fe.predict(pc, beq);
  EXPECT_TRUE(p.taken);
  EXPECT_EQ(p.target, beq.branch_target(pc));
}

}  // namespace
}  // namespace bsp
