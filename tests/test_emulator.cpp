// Functional emulator tests: per-instruction semantics, memory, control
// flow, syscalls, and the ExecRecord contents the tracer and timing core
// depend on.
#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "emu/emulator.hpp"
#include "util/rng.hpp"
#include "workloads/workloads.hpp"

namespace bsp {
namespace {

Program compile(const std::string& src) {
  AsmResult r = assemble(src);
  EXPECT_TRUE(r.ok()) << r.error_text();
  return r.program;
}

// Runs a straight-line snippet and returns the emulator for inspection.
Emulator run_snippet(const std::string& body, u64 max_steps = 100000) {
  const Program p = compile(".text\nmain:\n" + body +
                            "\n  li $v0, 10\n  li $a0, 0\n  syscall\n");
  Emulator emu(p);
  StepResult final;
  emu.run(max_steps, &final);
  EXPECT_TRUE(emu.exited()) << "program did not exit cleanly";
  return emu;
}

TEST(Emulator, ArithmeticBasics) {
  Emulator e = run_snippet(R"(
  li $t0, 7
  li $t1, 5
  addu $t2, $t0, $t1
  subu $t3, $t0, $t1
  and $t4, $t0, $t1
  or $t5, $t0, $t1
  xor $t6, $t0, $t1
  nor $t7, $t0, $t1
)");
  EXPECT_EQ(e.reg(R_T2), 12u);
  EXPECT_EQ(e.reg(R_T3), 2u);
  EXPECT_EQ(e.reg(R_T4), 5u);
  EXPECT_EQ(e.reg(R_T5), 7u);
  EXPECT_EQ(e.reg(R_T6), 2u);
  EXPECT_EQ(e.reg(R_T7), ~7u);
}

TEST(Emulator, ZeroRegisterIsImmutable) {
  Emulator e = run_snippet("  addiu $0, $0, 123\n  addu $t0, $0, $0\n");
  EXPECT_EQ(e.reg(0), 0u);
  EXPECT_EQ(e.reg(R_T0), 0u);
}

TEST(Emulator, SetLessThan) {
  Emulator e = run_snippet(R"(
  li $t0, -1
  li $t1, 1
  slt $t2, $t0, $t1
  sltu $t3, $t0, $t1
  slti $t4, $t0, 0
  sltiu $t5, $t1, 2
)");
  EXPECT_EQ(e.reg(R_T2), 1u);  // signed: -1 < 1
  EXPECT_EQ(e.reg(R_T3), 0u);  // unsigned: 0xffffffff > 1
  EXPECT_EQ(e.reg(R_T4), 1u);
  EXPECT_EQ(e.reg(R_T5), 1u);
}

TEST(Emulator, Shifts) {
  Emulator e = run_snippet(R"(
  li $t0, 0x80000001
  sll $t1, $t0, 1
  srl $t2, $t0, 1
  sra $t3, $t0, 1
  li $t4, 4
  sllv $t5, $t0, $t4
  srlv $t6, $t0, $t4
  srav $t7, $t0, $t4
)");
  EXPECT_EQ(e.reg(R_T1), 0x00000002u);
  EXPECT_EQ(e.reg(R_T2), 0x40000000u);
  EXPECT_EQ(e.reg(R_T3), 0xc0000000u);
  EXPECT_EQ(e.reg(R_T5), 0x00000010u);
  EXPECT_EQ(e.reg(R_T6), 0x08000000u);
  EXPECT_EQ(e.reg(R_T7), 0xf8000000u);
}

TEST(Emulator, MultiplyDivide) {
  Emulator e = run_snippet(R"(
  li $t0, -6
  li $t1, 4
  mult $t0, $t1
  mflo $t2
  mfhi $t3
  multu $t0, $t1
  mflo $t4
  mfhi $t5
  div $t0, $t1
  mflo $t6
  mfhi $t7
)");
  EXPECT_EQ(e.reg(R_T2), static_cast<u32>(-24));
  EXPECT_EQ(e.reg(R_T3), 0xffffffffu);  // sign extension of -24
  EXPECT_EQ(e.reg(R_T4), static_cast<u32>(-24));
  EXPECT_EQ(e.reg(R_T5), 3u);  // 0xfffffffa * 4 >> 32
  EXPECT_EQ(e.reg(R_T6), static_cast<u32>(-1));  // -6/4 truncates toward 0
  EXPECT_EQ(e.reg(R_T7), static_cast<u32>(-2));  // remainder
}

TEST(Emulator, DivideByZeroIsDefined) {
  Emulator e = run_snippet(R"(
  li $t0, 9
  div $t0, $0
  mflo $t1
  mfhi $t2
)");
  EXPECT_EQ(e.reg(R_T1), 0u);
  EXPECT_EQ(e.reg(R_T2), 9u);
}

TEST(Emulator, MemoryAccessSizesAndSignExtension) {
  Emulator e = run_snippet(R"(
  la $s0, buf
  li $t0, 0x80f1f2f3
  sw $t0, 0($s0)
  lb $t1, 3($s0)
  lbu $t2, 3($s0)
  lh $t3, 2($s0)
  lhu $t4, 2($s0)
  lw $t5, 0($s0)
  sb $t0, 4($s0)
  lbu $t6, 4($s0)
  sh $t0, 6($s0)
  lhu $t7, 6($s0)
.data
buf: .space 16
.text
)");
  EXPECT_EQ(e.reg(R_T1), 0xffffff80u);
  EXPECT_EQ(e.reg(R_T2), 0x80u);
  EXPECT_EQ(e.reg(R_T3), 0xffff80f1u);
  EXPECT_EQ(e.reg(R_T4), 0x80f1u);
  EXPECT_EQ(e.reg(R_T5), 0x80f1f2f3u);
  EXPECT_EQ(e.reg(R_T6), 0xf3u);
  EXPECT_EQ(e.reg(R_T7), 0xf2f3u);
}

TEST(Emulator, BranchSemanticsAllSixTypes) {
  Emulator e = run_snippet(R"(
  li $t0, -3
  li $t1, -3
  move $s0, $0
  beq $t0, $t1, L1
  addiu $s0, $s0, 1     # skipped
L1:
  bne $t0, $0, L2
  addiu $s0, $s0, 2     # skipped
L2:
  blez $t0, L3
  addiu $s0, $s0, 4     # skipped
L3:
  bgtz $t0, L4
  addiu $s0, $s0, 8     # executed (bgtz of -3 not taken)
L4:
  bltz $t0, L5
  addiu $s0, $s0, 16    # skipped
L5:
  bgez $t0, L6
  addiu $s0, $s0, 32    # executed
L6:
  blez $0, L7           # zero satisfies <=
  addiu $s0, $s0, 64
L7:
  bgez $0, L8           # zero satisfies >=
  addiu $s0, $s0, 128
L8:
)");
  EXPECT_EQ(e.reg(R_S0), 8u + 32u);
}

TEST(Emulator, JumpAndLink) {
  Emulator e = run_snippet(R"(
  jal sub
  la $t6, sub
  jalr $ra, $t6       # indirect call through $t6
  b end
sub:
  addiu $t0, $t0, 1
  jr $ra
end:
)");
  EXPECT_EQ(e.reg(R_T0), 2u);  // sub ran once via jal, once via jalr
  EXPECT_NE(e.reg(R_RA), 0u);  // jalr wrote the link register
}

TEST(Emulator, LoopCountsCorrectly) {
  Emulator e = run_snippet(R"(
  li $t0, 100
  move $t1, $0
loop:
  addiu $t1, $t1, 3
  addiu $t0, $t0, -1
  bne $t0, $0, loop
)");
  EXPECT_EQ(e.reg(R_T1), 300u);
}

TEST(Emulator, SyscallPrintAndExitCode) {
  const Program p = compile(R"(
.text
main:
  li $v0, 1
  li $a0, -42
  syscall
  li $v0, 11
  li $a0, 33        # '!'
  syscall
  li $v0, 10
  li $a0, 5
  syscall
)");
  Emulator emu(p);
  StepResult final;
  emu.run(1000, &final);
  EXPECT_TRUE(emu.exited());
  EXPECT_EQ(emu.exit_code(), 5);
  EXPECT_EQ(emu.output(), "-42!");
}

TEST(Emulator, FaultOnIllegalInstruction) {
  Program p = compile(".text\nmain:\n  nop\n");
  p.text.push_back(0xfc000000u);  // illegal opcode
  Emulator emu(p);
  StepResult r = emu.step();
  EXPECT_TRUE(r.ok());
  r = emu.step();
  EXPECT_EQ(r.kind, StepResult::Kind::Fault);
}

TEST(Emulator, FaultOnMisalignedLoad) {
  Emulator emu(compile(R"(
.text
main:
  la $t0, buf
  lw $t1, 1($t0)
.data
buf: .word 0
)"));
  StepResult r;
  emu.run(10, &r);
  EXPECT_EQ(r.kind, StepResult::Kind::Fault);
}

TEST(Emulator, ExecRecordContents) {
  Emulator emu(compile(R"(
.text
main:
  li $t0, 10
  li $t1, 3
  addu $t2, $t0, $t1
  sw $t2, 0($gp)
  lw $t3, 0($gp)
  bne $t2, $t3, main
.data
  .word 0
)"));
  ExecRecord rec;
  for (int i = 0; i < 4; ++i) emu.step(&rec);  // through li/li (2 words each)
  emu.step(&rec);  // addu
  EXPECT_EQ(rec.inst.op, Op::ADDU);
  EXPECT_EQ(rec.src1_value, 10u);
  EXPECT_EQ(rec.src2_value, 3u);
  EXPECT_EQ(rec.dest, static_cast<unsigned>(R_T2));
  EXPECT_EQ(rec.dest_value, 13u);

  emu.step(&rec);  // sw
  EXPECT_TRUE(rec.is_store);
  EXPECT_EQ(rec.mem_bytes, 4u);
  EXPECT_EQ(rec.store_value, 13u);
  const u32 addr = rec.mem_addr;

  emu.step(&rec);  // lw
  EXPECT_TRUE(rec.is_load);
  EXPECT_EQ(rec.mem_addr, addr);
  EXPECT_EQ(rec.load_value, 13u);

  emu.step(&rec);  // bne (not taken: equal)
  EXPECT_TRUE(rec.is_cond_branch);
  EXPECT_FALSE(rec.branch_taken);
  EXPECT_EQ(rec.next_pc, rec.pc + 4);
}

TEST(Emulator, BranchOutcomeHelperMatchesExecution) {
  EXPECT_TRUE(branch_outcome(make_br2(Op::BEQ, 1, 2, 0), 5, 5));
  EXPECT_FALSE(branch_outcome(make_br2(Op::BEQ, 1, 2, 0), 5, 6));
  EXPECT_TRUE(branch_outcome(make_br2(Op::BNE, 1, 2, 0), 5, 6));
  EXPECT_TRUE(branch_outcome(make_br1(Op::BLEZ, 1, 0), 0, 0));
  EXPECT_TRUE(branch_outcome(make_br1(Op::BLEZ, 1, 0), 0x80000000u, 0));
  EXPECT_FALSE(branch_outcome(make_br1(Op::BGTZ, 1, 0), 0, 0));
  EXPECT_TRUE(branch_outcome(make_br1(Op::BGTZ, 1, 0), 1, 0));
  EXPECT_TRUE(branch_outcome(make_br1(Op::BLTZ, 1, 0), 0xffffffffu, 0));
  EXPECT_TRUE(branch_outcome(make_br1(Op::BGEZ, 1, 0), 0, 0));
}

// Property: alu_result agrees with the sliced reference adder for add/sub.
TEST(Emulator, AluResultMatchesSlicedDatapath) {
  Rng rng(5);
  const SliceGeometry g2{2}, g4{4};
  for (int i = 0; i < 2000; ++i) {
    const u32 a = rng.next(), b = rng.next();
    const auto add = make_r3(Op::ADDU, 1, 2, 3);
    const auto sub = make_r3(Op::SUBU, 1, 2, 3);
    EXPECT_EQ(alu_result(add, a, b), sliced_add(g2, a, b));
    EXPECT_EQ(alu_result(add, a, b), sliced_add(g4, a, b));
    EXPECT_EQ(alu_result(sub, a, b), sliced_sub(g2, a, b));
    EXPECT_EQ(alu_result(sub, a, b), sliced_sub(g4, a, b));
  }
}

TEST(Emulator, SparseMemoryBasics) {
  SparseMemory m;
  EXPECT_EQ(m.load_u32(0x12345678), 0u);  // untouched memory reads zero
  m.store_u32(0x1000, 0xa1b2c3d4);
  EXPECT_EQ(m.load_u32(0x1000), 0xa1b2c3d4u);
  EXPECT_EQ(m.load_u16(0x1000), 0xc3d4u);
  EXPECT_EQ(m.load_u8(0x1003), 0xa1u);
  // Cross-page access.
  m.store_u32(SparseMemory::kPageSize - 2, 0x11223344);
  EXPECT_EQ(m.load_u32(SparseMemory::kPageSize - 2), 0x11223344u);
  EXPECT_GE(m.pages_allocated(), 2u);
}

TEST(Emulator, SparseMemoryUnalignedAccesses) {
  SparseMemory m;
  // Every in-page misalignment of u16 and u32, little-endian byte order.
  m.store_u32(0x2001, 0xdeadbeef);
  EXPECT_EQ(m.load_u32(0x2001), 0xdeadbeefu);
  EXPECT_EQ(m.load_u8(0x2001), 0xefu);
  EXPECT_EQ(m.load_u8(0x2004), 0xdeu);
  m.store_u16(0x3003, 0xcafe);
  EXPECT_EQ(m.load_u16(0x3003), 0xcafeu);
  EXPECT_EQ(m.load_u8(0x3003), 0xfeu);
  EXPECT_EQ(m.load_u8(0x3004), 0xcau);
  // Unaligned loads assemble bytes from untouched memory as zero.
  EXPECT_EQ(m.load_u32(0x4001), 0u);
  EXPECT_EQ(m.load_u16(0x4001), 0u);
  // An unaligned store overlapping existing data merges per byte.
  m.store_u32(0x5000, 0x11223344);
  m.store_u16(0x5001, 0xaabb);
  EXPECT_EQ(m.load_u32(0x5000), 0x11aabb44u);
}

TEST(Emulator, SparseMemoryPageCrossingAccesses) {
  SparseMemory m;
  const u32 ps = SparseMemory::kPageSize;
  // u16 and u32 straddling a page boundary at every split point.
  for (u32 off = 1; off < 4; ++off) {
    const u32 addr = 7 * ps - off;  // off bytes in the low page
    const u32 v = 0xa0b0c0d0u + off;
    m.store_u32(addr, v);
    EXPECT_EQ(m.load_u32(addr), v) << "split " << off;
    // Byte-level agreement across the boundary.
    for (u32 i = 0; i < 4; ++i)
      EXPECT_EQ(m.load_u8(addr + i), (v >> (8 * i)) & 0xffu);
  }
  m.store_u16(9 * ps - 1, 0x1234);
  EXPECT_EQ(m.load_u16(9 * ps - 1), 0x1234u);
  EXPECT_EQ(m.load_u8(9 * ps - 1), 0x34u);
  EXPECT_EQ(m.load_u8(9 * ps), 0x12u);
  // A page-crossing load where only one side is mapped zero-fills the rest.
  m.store_u8(11 * ps - 1, 0x77);
  EXPECT_EQ(m.load_u32(11 * ps - 1), 0x77u);
}

// --- run_fast(): the fast-forward interpreter must be architecturally
// indistinguishable from a step() loop. ---

// Runs the same program through run() and run_fast() (the latter in odd
// chunk sizes so resume-at-any-pc is exercised) and expects identical
// architectural state at every comparison point.
void expect_fast_matches_step(const Program& p, u64 budget) {
  Emulator slow(p), fast(p);
  StepResult rs, rf;
  const u64 ns = slow.run(budget, &rs);
  u64 nf = 0;
  while (nf < budget) {
    const u64 chunk = std::min<u64>(7777, budget - nf);
    const u64 got = fast.run_fast(chunk, &rf);
    nf += got;
    if (got < chunk) break;
  }
  EXPECT_EQ(ns, nf);
  EXPECT_EQ(static_cast<int>(rs.kind), static_cast<int>(rf.kind));
  EXPECT_EQ(rs.fault, rf.fault);
  EXPECT_EQ(slow.pc(), fast.pc());
  EXPECT_EQ(slow.hi(), fast.hi());
  EXPECT_EQ(slow.lo(), fast.lo());
  EXPECT_EQ(slow.instructions_retired(), fast.instructions_retired());
  EXPECT_EQ(slow.output(), fast.output());
  EXPECT_EQ(slow.exited(), fast.exited());
  EXPECT_EQ(slow.exit_code(), fast.exit_code());
  for (unsigned i = 0; i < kNumRegs; ++i)
    EXPECT_EQ(slow.reg(i), fast.reg(i)) << "$" << i;
  for (unsigned i = 0; i < 32; ++i)
    EXPECT_EQ(slow.fp_reg(i), fast.fp_reg(i)) << "$f" << i;
  EXPECT_EQ(slow.fcc(), fast.fcc());
}

TEST(EmulatorFastRun, MatchesStepAcrossWorkloads) {
  for (const char* name : {"gzip", "li", "ijpeg", "mcf"}) {
    SCOPED_TRACE(name);
    WorkloadParams params;
    params.seed = 0x5eed;
    expect_fast_matches_step(build_workload(name, params).program, 200'000);
  }
}

TEST(EmulatorFastRun, MatchesStepThroughExit) {
  // Budget far beyond the program's length: both engines must agree on the
  // exit, the exit code, and the retired count (the exit syscall retires
  // but is not part of run()'s count).
  const Program p = compile(R"(
.text
main:
  li $t0, 50
  li $t1, 0
loop:
  addiu $t1, $t1, 3
  addiu $t0, $t0, -1
  bgtz $t0, loop
  li $v0, 1
  addu $a0, $t1, $0
  syscall
  li $v0, 10
  li $a0, 7
  syscall
)");
  expect_fast_matches_step(p, 100'000);
  Emulator fast(p);
  StepResult r;
  fast.run_fast(100'000, &r);
  EXPECT_TRUE(fast.exited());
  EXPECT_EQ(fast.exit_code(), 7);
  EXPECT_EQ(fast.output(), "150");
  // Exited emulators return immediately with Exited.
  StepResult again;
  EXPECT_EQ(fast.run_fast(10, &again), 0u);
  EXPECT_EQ(again.kind, StepResult::Kind::Exited);
}

TEST(EmulatorFastRun, FaultParityIllegalInstruction) {
  Program p = compile(".text\nmain:\n  nop\n  nop\n");
  p.text[1] = 0xfc000000u;  // illegal opcode
  Emulator slow(p), fast(p);
  StepResult rs, rf;
  const u64 ns = slow.run(10, &rs);
  const u64 nf = fast.run_fast(10, &rf);
  EXPECT_EQ(ns, nf);
  EXPECT_EQ(rf.kind, StepResult::Kind::Fault);
  EXPECT_EQ(rs.fault, rf.fault);  // byte-identical fault string
  EXPECT_EQ(slow.pc(), fast.pc());
}

TEST(EmulatorFastRun, FaultParityMisalignedAccess) {
  for (const char* inst : {"lw $t1, 1($t0)", "lh $t1, 1($t0)",
                           "sw $t1, 2($t0)", "sh $t1, 1($t0)"}) {
    SCOPED_TRACE(inst);
    const Program p = compile(std::string(R"(
.text
main:
  la $t0, buf
  )") + inst + R"(
.data
buf: .word 0
)");
    Emulator slow(p), fast(p);
    StepResult rs, rf;
    EXPECT_EQ(slow.run(10, &rs), fast.run_fast(10, &rf));
    EXPECT_EQ(rf.kind, StepResult::Kind::Fault);
    EXPECT_EQ(rs.fault, rf.fault);
    EXPECT_EQ(slow.pc(), fast.pc());
  }
}

TEST(EmulatorFastRun, FaultParityWildJump) {
  // Jump far outside the text image: the fast loop's window check must
  // defer to step() and fault identically.
  const Program p = compile(R"(
.text
main:
  li $t0, 0x00100000
  jr $t0
)");
  Emulator slow(p), fast(p);
  StepResult rs, rf;
  EXPECT_EQ(slow.run(10, &rs), fast.run_fast(10, &rf));
  EXPECT_EQ(static_cast<int>(rs.kind), static_cast<int>(rf.kind));
  EXPECT_EQ(rs.fault, rf.fault);
  EXPECT_EQ(slow.pc(), fast.pc());
}

TEST(EmulatorFastRun, SelfModifyingCodeRedecodes) {
  // Overwrite an addiu in a loop body through the data path; the fast
  // cache's raw tag must miss and re-predecode, exactly like step()'s
  // decode cache. The loop runs twice: once adding 1, once adding 5.
  Program p = compile(R"(
.text
main:
  li $t3, 0          # result accumulator
  li $t4, 2          # outer trip count
  la $t5, patch      # address of the instruction to rewrite
  la $t7, newinst
  lw $t6, 0($t7)     # encoded "addiu $t3, $t3, 5"
outer:
patch:
  addiu $t3, $t3, 1
  sw $t6, 0($t5)     # patch the instruction above for the next trip
  addiu $t4, $t4, -1
  bgtz $t4, outer
  li $v0, 10
  addu $a0, $t3, $0
  syscall
.data
newinst: .word 0
)");
  // Poke the real encoding of "addiu $t3, $t3, 5" into the data word (the
  // assembler is the encoding authority, not a hand-written constant).
  const u32 encoded = compile(".text\nmain:\n  addiu $t3, $t3, 5\n").text[0];
  const u32 off = p.symbol("newinst") - p.data_base;
  for (u32 i = 0; i < 4; ++i)
    p.data[off + i] = static_cast<u8>(encoded >> (8 * i));
  expect_fast_matches_step(p, 1000);
  Emulator fast(p);
  fast.run_fast(1000);
  EXPECT_TRUE(fast.exited());
  EXPECT_EQ(fast.exit_code(), 6);  // 1 + 5
}

}  // namespace
}  // namespace bsp
