// Cache model tests: geometry, LRU replacement, partial tag matching, way
// prediction, and the two-level hierarchy latencies of Table 2.
#include <gtest/gtest.h>

#include "mem/cache.hpp"
#include "mem/hierarchy.hpp"
#include "util/rng.hpp"

namespace bsp {
namespace {

TEST(CacheGeometry, PaperConfigurations) {
  const CacheGeometry l1d{64 * 1024, 64, 4};
  EXPECT_TRUE(l1d.valid());
  EXPECT_EQ(l1d.num_sets(), 256u);
  EXPECT_EQ(l1d.offset_bits(), 6u);
  EXPECT_EQ(l1d.index_bits(), 8u);
  EXPECT_EQ(l1d.tag_lo_bit(), 14u);
  EXPECT_EQ(l1d.tag_bits(), 18u);

  const CacheGeometry small{8 * 1024, 32, 2};
  EXPECT_EQ(small.num_sets(), 128u);
  EXPECT_EQ(small.tag_lo_bit(), 12u);

  const CacheGeometry l2{1024 * 1024, 64, 4};
  EXPECT_EQ(l2.num_sets(), 4096u);
}

TEST(Cache, HitAfterFill) {
  Cache c({1024, 64, 2});
  EXPECT_FALSE(c.access(0x1000, false).hit);
  EXPECT_TRUE(c.access(0x1000, false).hit);
  EXPECT_TRUE(c.access(0x1020, false).hit);  // same 64B line
  EXPECT_FALSE(c.access(0x1040, false).hit); // next line
}

TEST(Cache, LruEviction) {
  Cache c({512, 64, 2});  // 4 sets, 2 ways
  const u32 set_stride = 4 * 64;
  const u32 a = 0, b = set_stride * 1000, d = set_stride * 2000;
  // a, b fill both ways of set 0; touching a keeps it MRU; d evicts b.
  c.access(a, false);
  c.access(b, false);
  c.access(a, false);
  c.access(d, false);
  EXPECT_TRUE(c.access(a, false).hit);
  EXPECT_FALSE(c.access(b, false).hit);
}

TEST(Cache, EvictionReportsVictim) {
  Cache c({128, 64, 1});  // 2 sets, direct-mapped
  c.access(0x0, true);    // dirty fill
  const auto r = c.access(0x1000, false);  // same set (bit 6 = 0)
  EXPECT_FALSE(r.hit);
  EXPECT_TRUE(r.evicted);
  EXPECT_TRUE(r.victim_dirty);
  EXPECT_EQ(r.victim_addr, 0u);
}

TEST(Cache, FindDoesNotDisturbLru) {
  Cache c({512, 64, 2});
  const u32 set_stride = 4 * 64;
  c.access(0, false);
  c.access(set_stride * 7, false);
  // find() on the older line must not refresh it...
  EXPECT_TRUE(c.find(0).has_value());
  c.access(set_stride * 9, false);  // evicts LRU = addr 0
  EXPECT_FALSE(c.find(0).has_value());
}

TEST(Cache, PartialMatchConvergesToFullMatch) {
  Cache c({64 * 1024, 64, 4});
  Rng rng(3);
  std::vector<u32> addrs;
  for (int i = 0; i < 2000; ++i) {
    const u32 a = rng.next();
    c.access(a, false);
    addrs.push_back(a);
  }
  const unsigned tbits = c.geometry().tag_bits();
  for (int i = 0; i < 200; ++i) {
    const u32 probe = addrs[rng.below(static_cast<u32>(addrs.size()))];
    const auto full = c.find(probe);
    const u32 full_ways = c.partial_match_ways(probe, tbits);
    if (full) {
      EXPECT_EQ(full_ways, u32{1} << *full);
    } else {
      EXPECT_EQ(full_ways, 0u);
    }
    // Monotonicity: more tag bits can only shrink the candidate set.
    u32 prev = c.partial_match_ways(probe, 1);
    for (unsigned t = 2; t <= tbits; ++t) {
      const u32 cur = c.partial_match_ways(probe, t);
      EXPECT_EQ(cur & ~prev, 0u) << "candidate set grew with more bits";
      prev = cur;
    }
  }
}

TEST(Cache, MruWayPrediction) {
  Cache c({512, 64, 4});  // 2 sets, 4 ways
  const u32 stride = 2 * 64;
  // Fill all four ways of set 0; the last touched is MRU.
  for (u32 i = 0; i < 4; ++i) c.access(stride * i * 131, false);
  const u32 set = c.index_of(0);
  const auto mru = c.mru_way_among(set, 0xf);
  ASSERT_TRUE(mru.has_value());
  // Touch way of the first line again -> it becomes MRU.
  const auto first = c.find(0);
  ASSERT_TRUE(first.has_value());
  c.access(0, false);
  EXPECT_EQ(c.mru_way_among(set, 0xf).value(), *first);
  // Restricting the mask excludes the MRU way.
  const u32 mask_without_first = 0xfu & ~(u32{1} << *first);
  const auto second = c.mru_way_among(set, mask_without_first);
  ASSERT_TRUE(second.has_value());
  EXPECT_NE(*second, *first);
}

TEST(Cache, PredictWayPolicies) {
  Cache c({512, 64, 4});
  for (u32 i = 0; i < 4; ++i) c.access(2 * 64 * i * 131, false);
  u32 rng_state = 1;
  EXPECT_EQ(c.predict_way(0, 0, WayPolicy::MRU, &rng_state), std::nullopt);
  const auto first =
      c.predict_way(0, 0b0110, WayPolicy::FirstMatch, &rng_state);
  EXPECT_EQ(first.value(), 1u);
  const auto rnd = c.predict_way(0, 0b1111, WayPolicy::Random, &rng_state);
  ASSERT_TRUE(rnd.has_value());
  EXPECT_LT(*rnd, 4u);
}

TEST(Cache, MissRateAccounting) {
  Cache c({1024, 64, 2});
  for (int i = 0; i < 10; ++i) c.access(0x40 * (i % 2), false);
  EXPECT_EQ(c.accesses(), 10u);
  EXPECT_EQ(c.misses(), 2u);
  EXPECT_DOUBLE_EQ(c.miss_rate(), 0.2);
  c.flush();
  EXPECT_FALSE(c.find(0).has_value());
}

TEST(Hierarchy, LatenciesMatchTable2) {
  MemoryHierarchy h;  // default config = Table 2
  bool hit = false;
  // Cold: L1 miss + L2 miss + memory.
  EXPECT_EQ(h.data_latency(0x1000, false, &hit), 1u + 6u + 100u);
  EXPECT_FALSE(hit);
  // Warm L1.
  EXPECT_EQ(h.data_latency(0x1000, false, &hit), 1u);
  EXPECT_TRUE(hit);
  // Evict from L1 but not L2: thrash one L1 set with > 4 distinct lines.
  const u32 l1_set_span = 64 * 256;
  for (u32 i = 1; i <= 8; ++i) h.data_latency(0x1000 + i * l1_set_span, false);
  EXPECT_EQ(h.data_latency(0x1000, false, &hit), 1u + 6u);
  EXPECT_FALSE(hit);
  // Instruction side mirrors the data side.
  EXPECT_EQ(h.fetch_latency(0x00400000), 1u + 6u + 100u);
  EXPECT_EQ(h.fetch_latency(0x00400000), 1u);
}

TEST(Hierarchy, SliceBy4RaisesL1DLatency) {
  HierarchyConfig cfg;
  cfg.l1d_latency = 2;
  MemoryHierarchy h(cfg);
  h.data_latency(0x2000, false);
  bool hit = false;
  EXPECT_EQ(h.data_latency(0x2000, false, &hit), 2u);
  EXPECT_TRUE(hit);
}

}  // namespace
}  // namespace bsp
