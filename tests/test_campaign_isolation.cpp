// Fault-model tests for the campaign engine's process-isolation mode and
// the hardening satellites: the subprocess utility (exit/signal/timeout +
// SIGKILL reclamation + rusage), the scheduler's "crashed"/"timeout"
// containment with /bin/sh stand-in workers, resume over a store whose
// writer died mid-append, and the ArgParser's strict numeric parsing.
#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>
#include <unistd.h>

#include "campaign/campaign.hpp"
#include "campaign/scheduler.hpp"
#include "campaign/store.hpp"
#include "util/cli.hpp"
#include "util/subprocess.hpp"

namespace bsp::campaign {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "bsp_isolation_" + name + "_" +
         std::to_string(::getpid()) + ".jsonl";
}

// A grid of one machine point so per-task worker behaviour can be keyed on
// the seed axis alone.
SweepSpec tiny_spec(std::vector<u64> seeds) {
  SweepSpec spec;
  spec.name = "iso";
  spec.workloads = {"li"};
  spec.seeds = std::move(seeds);
  spec.instructions = 1000;
  spec.warmup = 0;
  MachinePoint base;
  base.label = "base";
  spec.machines.push_back(base);
  return spec;
}

SimStats fake_stats(const TaskSpec& task) {
  u64 h = 1469598103934665603ull;
  for (const char c : task.id())
    h = (h ^ static_cast<u64>(c)) * 1099511628211ull;
  SimStats s;
  s.cycles = 1000 + h % 1000;
  s.committed = task.instructions;
  return s;
}

TaskRecord ok_record(const TaskSpec& task) {
  TaskRecord rec;
  rec.task = task;
  rec.status = "ok";
  rec.stats = fake_stats(task);
  return rec;
}

// worker_cmd that ignores the appended task id and runs `script` via
// /bin/sh. $0 is `arg0`, the task id arrives as $1.
std::vector<std::string> sh_worker(const std::string& script,
                                   const std::string& arg0 = "worker") {
  return {"/bin/sh", "-c", script, arg0};
}

SchedulerOptions process_options(std::vector<std::string> worker_cmd) {
  SchedulerOptions options;
  options.isolate = IsolationMode::kProcess;
  options.worker_cmd = std::move(worker_cmd);
  options.jobs = 1;
  return options;
}

TaskRunner unused_runner() {
  return [](const TaskSpec&) -> AttemptResult {
    AttemptResult r;
    r.error = "in-process runner must not be called in process mode";
    return r;
  };
}

// ---------------------------------------------------------------- subprocess

TEST(Subprocess, CapturesExitCodeAndBothStreams) {
  const SubprocessResult r = run_subprocess(
      {"/bin/sh", "-c", "echo out-line; echo err-line >&2; exit 3"});
  EXPECT_FALSE(r.spawn_error) << r.error;
  EXPECT_FALSE(r.timed_out);
  EXPECT_EQ(r.signal, 0);
  EXPECT_EQ(r.exit_code, 3);
  EXPECT_EQ(r.out, "out-line\n");
  EXPECT_NE(r.err.find("err-line"), std::string::npos);
}

TEST(Subprocess, ReportsTerminatingSignal) {
  const SubprocessResult r =
      run_subprocess({"/bin/sh", "-c", "kill -SEGV $$"});
  EXPECT_FALSE(r.spawn_error);
  EXPECT_FALSE(r.timed_out);
  EXPECT_EQ(r.signal, SIGSEGV);
  EXPECT_EQ(signal_name(r.signal), "SIGSEGV");
}

TEST(Subprocess, SigkillsAndReapsAtTheDeadline) {
  SubprocessLimits limits;
  limits.timeout_sec = 0.3;
  const auto t0 = Clock::now();
  // run_subprocess only returns after wait4() reaped the child, so
  // returning quickly is itself the no-leaked-core proof.
  const SubprocessResult r =
      run_subprocess({"/bin/sh", "-c", "sleep 30"}, limits);
  const double elapsed = seconds_since(t0);
  EXPECT_TRUE(r.timed_out);
  EXPECT_FALSE(r.spawn_error);
  EXPECT_LT(elapsed, 1.3) << "child must be SIGKILLed ~at the deadline, "
                             "not waited for";
}

TEST(Subprocess, ExecFailureSurfacesAs127) {
  const SubprocessResult r =
      run_subprocess({"/nonexistent-bsp-worker-binary"});
  EXPECT_FALSE(r.spawn_error);
  EXPECT_EQ(r.exit_code, 127);
  EXPECT_NE(r.err.find("exec failed"), std::string::npos);
}

TEST(Subprocess, ReportsChildRusage) {
  const SubprocessResult r = run_subprocess({"/bin/sh", "-c", "exit 0"});
  EXPECT_TRUE(r.exited());
  EXPECT_GT(r.max_rss_kb, 0);
  EXPECT_GE(r.user_sec, 0.0);
  EXPECT_GE(r.sys_sec, 0.0);
}

// ---------------------------------------------------- scheduler process mode

TEST(ProcessIsolation, CrashedWorkerIsContainedAndNamed) {
  const TaskSpec task = tiny_spec({0x5eed}).expand().front();
  SchedulerOptions options =
      process_options(sh_worker("kill -ABRT $$"));
  options.max_attempts = 2;
  const TaskOutcome out = run_one_task(task, unused_runner(), options);
  EXPECT_EQ(out.status, "crashed");
  EXPECT_NE(out.error.find("SIGABRT"), std::string::npos) << out.error;
  EXPECT_EQ(out.attempts, 2u) << "a crash gets the same bounded retry as "
                                 "a failure";
}

TEST(ProcessIsolation, WedgedWorkerIsKilledAtTheDeadlineAndNotRetried) {
  const TaskSpec task = tiny_spec({0x5eed}).expand().front();
  SchedulerOptions options = process_options(sh_worker("sleep 30"));
  options.timeout_sec = 0.3;
  options.max_attempts = 3;
  const auto t0 = Clock::now();
  const TaskOutcome out = run_one_task(task, unused_runner(), options);
  const double elapsed = seconds_since(t0);
  EXPECT_EQ(out.status, "timeout");
  EXPECT_EQ(out.attempts, 1u);
  EXPECT_NE(out.error.find("SIGKILL"), std::string::npos) << out.error;
  EXPECT_LT(elapsed, 1.3) << "the core must be reclaimed ~at the deadline";
}

TEST(ProcessIsolation, WorkerRecordRoundTripsWithRusage) {
  const TaskSpec task = tiny_spec({0x5eed}).expand().front();
  const TaskRecord rec = ok_record(task);
  // $0 carries the record line verbatim (no shell re-parsing of its
  // quotes); the task id arrives as $1 and is ignored.
  const SchedulerOptions options = process_options(
      sh_worker("printf '%s\\n' \"$0\"", to_jsonl(rec)));
  const TaskOutcome out = run_one_task(task, unused_runner(), options);
  EXPECT_EQ(out.status, "ok") << out.error;
  EXPECT_EQ(out.stats.cycles, rec.stats.cycles);
  EXPECT_EQ(out.stats.committed, rec.stats.committed);
  EXPECT_GT(out.max_rss_kb, 0) << "process mode must record child rusage";
}

TEST(ProcessIsolation, RecordForTheWrongTaskIsRejected) {
  const SweepSpec spec = tiny_spec({0x5eed, 0xbee5});
  const auto tasks = spec.expand();
  ASSERT_EQ(tasks.size(), 2u);
  // Worker always answers with task 1's record; running task 0 must fail.
  const SchedulerOptions options = process_options(
      sh_worker("printf '%s\\n' \"$0\"", to_jsonl(ok_record(tasks[1]))));
  const TaskOutcome out = run_one_task(tasks[0], unused_runner(), options);
  EXPECT_EQ(out.status, "failed");
  EXPECT_NE(out.error.find("wrong task"), std::string::npos) << out.error;
}

TEST(ProcessIsolation, WorkerTaskJsonHandsTheFullTupleToTheWorker) {
  // With worker_task_json set, the scheduler's trailing argument is the
  // whole queued-record JSONL line (the same form TASK frames carry), not
  // the bare id — so a worker can reconstruct the task without re-expanding
  // the spec. The sh worker only answers if $1 really is that line.
  const TaskSpec task = tiny_spec({0x5eed}).expand().front();
  const std::string queued = task_jsonl(task);
  ASSERT_NE(queued.find(task.id()), std::string::npos);
  ASSERT_NE(queued.find("\"status\":\"queued\""), std::string::npos);
  SchedulerOptions options = process_options(sh_worker(
      "[ \"$1\" = \"$2\" ] || exit 9; printf '%s\\n' \"$0\"",
      to_jsonl(ok_record(task))));
  options.worker_cmd.push_back(queued);  // reference copy: $1 ($2 is the
                                         // scheduler-appended task argument)
  options.worker_task_json = true;
  const TaskOutcome out = run_one_task(task, unused_runner(), options);
  EXPECT_EQ(out.status, "ok") << out.error;
  EXPECT_EQ(out.stats.cycles, fake_stats(task).cycles);
}

TEST(ProcessIsolation, SilentWorkerIsAFailureWithStderrContext) {
  const TaskSpec task = tiny_spec({0x5eed}).expand().front();
  const SchedulerOptions options =
      process_options(sh_worker("echo boom >&2; exit 9"));
  const TaskOutcome out = run_one_task(task, unused_runner(), options);
  EXPECT_EQ(out.status, "failed");
  EXPECT_NE(out.error.find("exited 9"), std::string::npos) << out.error;
  EXPECT_NE(out.error.find("boom"), std::string::npos) << out.error;
}

// The acceptance-shaped campaign: one segfaulting task, one wedged task,
// the rest fine — the sweep completes, records exactly those two as
// crashed/timeout, reclaims the wedged core at the deadline, and a resume
// (including from a truncated-final-line copy) re-runs only unfinished
// tasks.
TEST(ProcessIsolation, CampaignContainsCrashAndTimeoutThenResumes) {
  const SweepSpec spec = tiny_spec({0x5eed, 0x1111, 0x2222, 0x3333});
  const auto tasks = spec.expand();
  ASSERT_EQ(tasks.size(), 4u);

  // Pre-write each healthy task's record where the stand-in worker can
  // cat it back (ids sanitised: '/' -> '_').
  const std::string dir = testing::TempDir() + "bsp_isolation_records_" +
                          std::to_string(::getpid());
  std::filesystem::create_directories(dir);
  for (const auto& t : tasks) {
    std::string fname = t.id();
    for (char& c : fname)
      if (c == '/') c = '_';
    std::ofstream(dir + "/" + fname) << to_jsonl(ok_record(t)) << "\n";
  }
  const std::string script =
      "case \"$1\" in "
      "*seed=0x1111*) kill -SEGV $$ ;; "
      "*seed=0x2222*) sleep 30 ;; "
      "*) cat \"$0/$(printf %s \"$1\" | tr / _)\" ;; esac";
  CampaignOptions options;
  options.out_path = temp_path("campaign");
  options.fresh = true;
  options.progress = false;
  options.scheduler = process_options({"/bin/sh", "-c", script, dir});
  options.scheduler.timeout_sec = 0.5;
  options.scheduler.max_attempts = 1;

  const auto t0 = Clock::now();
  const CampaignReport report =
      run_campaign(spec, unused_runner(), options);
  const double elapsed = seconds_since(t0);
  EXPECT_EQ(report.ran, 4u);
  EXPECT_EQ(report.ok, 2u);
  EXPECT_EQ(report.failed, 1u);   // the timeout; crashed counts separately
  EXPECT_EQ(report.crashed, 1u);
  EXPECT_LT(elapsed, 5.0) << "the wedged worker must die at its ~0.5s "
                             "deadline, not run for 30s";
  {
    ResultStore store(options.out_path);
    EXPECT_EQ(store.status(tasks[0].id()), "ok");
    EXPECT_EQ(store.status(tasks[1].id()), "crashed");
    EXPECT_EQ(store.status(tasks[2].id()), "timeout");
    EXPECT_EQ(store.status(tasks[3].id()), "ok");
    const TaskRecord* crashed = store.find(tasks[1].id());
    ASSERT_NE(crashed, nullptr);
    EXPECT_NE(crashed->error.find("SIGSEGV"), std::string::npos);
  }

  // Plain resume: every task has a record, nothing re-runs.
  options.fresh = false;
  const CampaignReport resume =
      run_campaign(spec, unused_runner(), options);
  EXPECT_EQ(resume.skipped, 4u);
  EXPECT_EQ(resume.ran, 0u);

  // Resume from a copy whose final line was torn mid-write: only the task
  // whose record was destroyed re-runs, and the store comes back whole.
  const std::string torn = temp_path("campaign_torn");
  {
    std::ifstream in(options.out_path, std::ios::binary);
    std::string all((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
    const std::size_t last_line = all.rfind('\n', all.size() - 2) + 1;
    const std::size_t keep = last_line + (all.size() - last_line) / 2;
    std::ofstream(torn, std::ios::binary) << all.substr(0, keep);
  }
  CampaignOptions torn_options = options;
  torn_options.out_path = torn;
  const CampaignReport from_torn =
      run_campaign(spec, unused_runner(), torn_options);
  EXPECT_EQ(from_torn.skipped, 3u);
  EXPECT_EQ(from_torn.ran, 1u);
  EXPECT_EQ(from_torn.ok, 1u);
  {
    ResultStore store(torn);
    EXPECT_EQ(store.size(), 4u);
    for (const auto& t : tasks) EXPECT_TRUE(store.has(t.id())) << t.id();
  }

  std::remove(options.out_path.c_str());
  std::remove(torn.c_str());
  std::filesystem::remove_all(dir);
}

// ------------------------------------------------------- store crash-resume

TEST(ResultStore, AppendAfterTornTailDoesNotCorruptEitherRecord) {
  const SweepSpec spec = tiny_spec({0x5eed, 0xbee5});
  const auto tasks = spec.expand();
  const std::string path = temp_path("torn_append");
  {
    std::ofstream out(path, std::ios::binary);
    out << to_jsonl(ok_record(tasks[0])) << "\n";
    out << to_jsonl(ok_record(tasks[0])).substr(0, 60);  // killed mid-write
  }
  {
    ResultStore store(path);
    EXPECT_EQ(store.size(), 1u);
    store.append(ok_record(tasks[1]));  // must start on a fresh line
  }
  ResultStore reopened(path);
  EXPECT_EQ(reopened.size(), 2u);
  EXPECT_EQ(reopened.status(tasks[0].id()), "ok");
  EXPECT_EQ(reopened.status(tasks[1].id()), "ok");
  std::remove(path.c_str());
}

TEST(ResultStore, CompleteRecordMissingOnlyItsNewlineSurvivesAppend) {
  const SweepSpec spec = tiny_spec({0x5eed, 0xbee5});
  const auto tasks = spec.expand();
  const std::string path = temp_path("no_newline");
  {
    // Writer died between the record bytes and... nothing: fwrite is one
    // call, but a partial write can end exactly at the newline boundary.
    std::ofstream out(path, std::ios::binary);
    out << to_jsonl(ok_record(tasks[0]));
  }
  {
    ResultStore store(path);
    EXPECT_EQ(store.size(), 1u) << "a complete unterminated record is data";
    store.append(ok_record(tasks[1]));
  }
  ResultStore reopened(path);
  EXPECT_EQ(reopened.size(), 2u);
  EXPECT_EQ(reopened.status(tasks[0].id()), "ok");
  EXPECT_EQ(reopened.status(tasks[1].id()), "ok");
  std::remove(path.c_str());
}

TEST(ResultStore, RusageRoundTrips) {
  TaskRecord rec = ok_record(tiny_spec({0x5eed}).expand().front());
  rec.max_rss_kb = 131072;
  rec.user_sec = 1.5;
  rec.sys_sec = 0.25;
  const auto back = parse_jsonl(to_jsonl(rec));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->max_rss_kb, 131072);
  EXPECT_DOUBLE_EQ(back->user_sec, 1.5);
  EXPECT_DOUBLE_EQ(back->sys_sec, 0.25);

  TaskRecord crashed = rec;
  crashed.status = "crashed";
  crashed.error = "worker killed by SIGSEGV";
  const auto cback = parse_jsonl(to_jsonl(crashed));
  ASSERT_TRUE(cback.has_value());
  EXPECT_EQ(cback->status, "crashed");
  EXPECT_EQ(cback->error, crashed.error);
}

// ------------------------------------------------------ ArgParser hardening

// parse() exits 2 on malformed numbers, matching the documented
// unknown-option behaviour; gtest death tests observe the exit.
void parse_args(std::vector<std::string> args) {
  ArgParser parser("test");
  static u64 n;
  static unsigned j;
  static double t;
  static std::vector<u64> seeds;
  parser.add_value("-n, --instructions", "N", "count", &n);
  parser.add_value("-j, --jobs", "N", "jobs", &j);
  parser.add_value("--timeout", "SEC", "timeout", &t);
  parser.add_value("--seed", "S", "seed", &seeds);
  std::vector<char*> argv = {const_cast<char*>("prog")};
  for (auto& a : args) argv.push_back(a.data());
  parser.parse(static_cast<int>(argv.size()), argv.data());
  std::exit(0);  // parsed clean
}

using ArgParserDeath = ::testing::Test;

TEST(ArgParserDeath, RejectsTrailingJunk) {
  EXPECT_EXIT(parse_args({"--instructions", "12abc"}),
              ::testing::ExitedWithCode(2), "invalid numeric value '12abc'");
}

TEST(ArgParserDeath, RejectsNonNumericGarbage) {
  EXPECT_EXIT(parse_args({"--instructions", "abc"}),
              ::testing::ExitedWithCode(2), "invalid numeric value 'abc'");
}

TEST(ArgParserDeath, RejectsNegativeUnsigned) {
  EXPECT_EXIT(parse_args({"--instructions", "-5"}),
              ::testing::ExitedWithCode(2), "invalid numeric value '-5'");
}

TEST(ArgParserDeath, RejectsU64Overflow) {
  EXPECT_EXIT(parse_args({"--instructions", "18446744073709551616"}),
              ::testing::ExitedWithCode(2), "invalid numeric value");
}

TEST(ArgParserDeath, RejectsUnsignedOutOfRange) {
  EXPECT_EXIT(parse_args({"--jobs", "5000000000"}),
              ::testing::ExitedWithCode(2), "out of range");
}

TEST(ArgParserDeath, RejectsBareHexPrefix) {
  EXPECT_EXIT(parse_args({"--seed", "0x"}),
              ::testing::ExitedWithCode(2), "invalid numeric value '0x'");
}

TEST(ArgParserDeath, RejectsGarbageDouble) {
  EXPECT_EXIT(parse_args({"--timeout", "fast"}),
              ::testing::ExitedWithCode(2), "invalid numeric value 'fast'");
}

TEST(ArgParserDeath, AcceptsDecimalHexAndFractions) {
  EXPECT_EXIT(
      parse_args({"--instructions", "200000", "--seed", "0x5eed", "--seed",
                  "42", "--timeout", "0.5", "--jobs", "8"}),
      ::testing::ExitedWithCode(0), "");
}

}  // namespace
}  // namespace bsp::campaign
