// Unit + property tests for the slice utilities: the sliced datapath must be
// bit-identical to the atomic one for every geometry.
#include <gtest/gtest.h>

#include "util/bitops.hpp"
#include "util/rng.hpp"

namespace bsp {
namespace {

TEST(Bitops, LowMask) {
  EXPECT_EQ(low_mask(0), 0u);
  EXPECT_EQ(low_mask(1), 1u);
  EXPECT_EQ(low_mask(16), 0xffffu);
  EXPECT_EQ(low_mask(31), 0x7fffffffu);
  EXPECT_EQ(low_mask(32), 0xffffffffu);
}

TEST(Bitops, BitsExtract) {
  EXPECT_EQ(bits(0xdeadbeef, 0, 8), 0xefu);
  EXPECT_EQ(bits(0xdeadbeef, 8, 8), 0xbeu);
  EXPECT_EQ(bits(0xdeadbeef, 16, 16), 0xdeadu);
  EXPECT_EQ(bits(0xdeadbeef, 28, 4), 0xdu);
}

TEST(Bitops, SignExtend) {
  EXPECT_EQ(sign_extend(0x8000, 16), 0xffff8000u);
  EXPECT_EQ(sign_extend(0x7fff, 16), 0x7fffu);
  EXPECT_EQ(sign_extend(0x1, 1), 0xffffffffu);
  EXPECT_EQ(sign_extend(0xff, 8), 0xffffffffu);
  EXPECT_EQ(sign_extend(0x7f, 8), 0x7fu);
  EXPECT_EQ(sign_extend(0xabcd1234, 32), 0xabcd1234u);
}

TEST(Bitops, LowestDiffBit) {
  EXPECT_EQ(lowest_diff_bit(0, 0), 32u);
  EXPECT_EQ(lowest_diff_bit(0, 1), 0u);
  EXPECT_EQ(lowest_diff_bit(0x10, 0x00), 4u);
  EXPECT_EQ(lowest_diff_bit(0x80000000u, 0), 31u);
  EXPECT_EQ(lowest_diff_bit(0xff00, 0xff01), 0u);
}

TEST(Bitops, MatchBits) {
  EXPECT_TRUE(match_bits(0xab12, 0xcd12, 0, 8));
  EXPECT_FALSE(match_bits(0xab12, 0xcd12, 8, 8));
  EXPECT_TRUE(match_bits(0xffffffff, 0xffffffff, 0, 32));
}

class SliceGeometryTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(SliceGeometryTest, GeometryInvariants) {
  const SliceGeometry g{GetParam()};
  ASSERT_TRUE(g.valid());
  EXPECT_EQ(g.width() * g.count, kWordBits);
  u32 all = 0;
  for (unsigned s = 0; s < g.count; ++s) {
    EXPECT_EQ(g.mask(s) & all, 0u) << "slices overlap";
    all |= g.mask(s);
    EXPECT_EQ(g.slice_of_bit(g.lo_bit(s)), s);
  }
  EXPECT_EQ(all, 0xffffffffu) << "slices must cover the word";
}

TEST_P(SliceGeometryTest, GetSetRoundTrip) {
  const SliceGeometry g{GetParam()};
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const u32 v = rng.next();
    u32 rebuilt = 0;
    for (unsigned s = 0; s < g.count; ++s)
      rebuilt = slice_set(g, rebuilt, s, slice_get(g, v, s));
    EXPECT_EQ(rebuilt, v);
  }
}

TEST_P(SliceGeometryTest, SlicedAddEqualsAtomicAdd) {
  const SliceGeometry g{GetParam()};
  Rng rng(11);
  for (int i = 0; i < 5000; ++i) {
    const u32 a = rng.next(), b = rng.next();
    EXPECT_EQ(sliced_add(g, a, b), a + b);
  }
  // Carry-propagation corner cases.
  EXPECT_EQ(sliced_add(g, 0xffffffffu, 1), 0u);
  EXPECT_EQ(sliced_add(g, 0xffffu, 1), 0x10000u);
  EXPECT_EQ(sliced_add(g, 0x00ffffffu, 1), 0x01000000u);
}

TEST_P(SliceGeometryTest, SlicedSubEqualsAtomicSub) {
  const SliceGeometry g{GetParam()};
  Rng rng(13);
  for (int i = 0; i < 5000; ++i) {
    const u32 a = rng.next(), b = rng.next();
    EXPECT_EQ(sliced_sub(g, a, b), a - b);
  }
  EXPECT_EQ(sliced_sub(g, 0, 1), 0xffffffffu);
}

TEST_P(SliceGeometryTest, SliceAddCarryChain) {
  const SliceGeometry g{GetParam()};
  // A carry injected at the bottom ripples through all-ones slices.
  bool carry = true;
  for (unsigned s = 0; s < g.count; ++s) {
    const SliceAdd r = slice_add(g, low_mask(g.width()), 0, carry);
    EXPECT_EQ(r.sum, 0u);
    EXPECT_TRUE(r.carry);
    carry = r.carry;
  }
}

INSTANTIATE_TEST_SUITE_P(AllGeometries, SliceGeometryTest,
                         ::testing::Values(1u, 2u, 4u, 8u));

TEST(Rng, DeterministicAndFullRange) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
  Rng c(43);
  bool differs = false;
  Rng a2(42);
  for (int i = 0; i < 100; ++i) differs |= (a2.next() != c.next());
  EXPECT_TRUE(differs);
}

TEST(Rng, BelowIsInRange) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(7), 7u);
    const u32 r = rng.range(5, 9);
    EXPECT_GE(r, 5u);
    EXPECT_LE(r, 9u);
  }
}

}  // namespace
}  // namespace bsp
