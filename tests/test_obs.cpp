// Observability-layer tests: trace sinks must be byte-deterministic and
// schema-valid, the interval sampler's series must reconcile with the final
// counters, and none of it may perturb the simulation.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "core/simulator.hpp"
#include "obs/interval.hpp"
#include "obs/json.hpp"
#include "obs/sinks.hpp"
#include "obs/trace.hpp"
#include "workloads/workloads.hpp"

namespace bsp {
namespace {

constexpr u64 kCommits = 3000;

MachineConfig test_machine() { return bitsliced_machine(2, kAllTechniques); }

Program test_program() { return build_workload("li").program; }

// ---------------------------------------------------------------------------
// Pipe-text sink

TEST(PipeTrace, GoldenDeterminismAndLegacyEquivalence) {
  const Program program = test_program();
  const auto run_with_sink = [&] {
    std::ostringstream os;
    obs::PipeTextSink sink(os, 0, 400);
    Simulator sim(test_machine(), program);
    sim.add_trace_sink(&sink);
    EXPECT_TRUE(sim.run(kCommits).ok());
    return os.str();
  };
  const std::string a = run_with_sink();
  const std::string b = run_with_sink();
  // Same config + program + seed => byte-identical trace.
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());

  // set_pipe_trace is sugar for an owned PipeTextSink: identical bytes.
  std::ostringstream legacy;
  Simulator sim(test_machine(), program);
  sim.set_pipe_trace(legacy, 0, 400);
  EXPECT_TRUE(sim.run(kCommits).ok());
  EXPECT_EQ(a, legacy.str());

  // The pinned line shapes of the original inline trace.
  EXPECT_NE(a.find("cyc "), std::string::npos);
  EXPECT_NE(a.find(": D    #"), std::string::npos);
  EXPECT_NE(a.find(": X    #"), std::string::npos);
  EXPECT_NE(a.find(": C    #"), std::string::npos);
}

TEST(PipeTrace, WindowIsHonoured) {
  std::ostringstream os;
  obs::PipeTextSink sink(os, 100, 120);
  Simulator sim(test_machine(), test_program());
  sim.add_trace_sink(&sink);
  EXPECT_TRUE(sim.run(kCommits).ok());
  std::istringstream lines(os.str());
  std::string line;
  while (std::getline(lines, line)) {
    ASSERT_EQ(line.rfind("cyc ", 0), 0u) << line;
    const u64 cyc = std::strtoull(line.c_str() + 4, nullptr, 10);
    EXPECT_GE(cyc, 100u);
    EXPECT_LT(cyc, 120u);
  }
}

// ---------------------------------------------------------------------------
// Chrome trace JSON

std::string chrome_trace_bytes(const Program& program) {
  std::ostringstream os;
  obs::ChromeTraceSink sink(os);
  Simulator sim(test_machine(), program);
  sim.add_trace_sink(&sink);
  EXPECT_TRUE(sim.run(kCommits).ok());
  return os.str();
}

TEST(ChromeTrace, SchemaValid) {
  const std::string text = chrome_trace_bytes(test_program());
  const auto doc = obs::parse_json(text);
  ASSERT_TRUE(doc.has_value()) << "trace is not valid JSON";
  ASSERT_TRUE(doc->is_object());

  const obs::JsonValue* other = doc->get("otherData");
  ASSERT_NE(other, nullptr);
  const obs::JsonValue* config = other->get("config");
  ASSERT_NE(config, nullptr);
  EXPECT_TRUE(config->is_string());
  EXPECT_NE(config->str.find("out-of-order"), std::string::npos);

  const obs::JsonValue* events = doc->get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_FALSE(events->array.empty());

  std::set<std::string> phases;
  for (const obs::JsonValue& ev : events->array) {
    ASSERT_TRUE(ev.is_object());
    const obs::JsonValue* name = ev.get("name");
    const obs::JsonValue* ph = ev.get("ph");
    const obs::JsonValue* pid = ev.get("pid");
    const obs::JsonValue* tid = ev.get("tid");
    ASSERT_NE(name, nullptr);
    ASSERT_NE(ph, nullptr);
    ASSERT_NE(pid, nullptr);
    ASSERT_NE(tid, nullptr);
    EXPECT_TRUE(name->is_string());
    ASSERT_TRUE(ph->is_string());
    phases.insert(ph->str);
    // Known phase letters only: complete (X), instant (i), metadata (M).
    EXPECT_TRUE(ph->str == "X" || ph->str == "i" || ph->str == "M")
        << ph->str;
    if (ph->str == "M") continue;  // metadata carries no timestamp
    const obs::JsonValue* ts = ev.get("ts");
    ASSERT_NE(ts, nullptr);
    EXPECT_TRUE(ts->is_number());
    EXPECT_GE(ts->number, 0.0);
    if (ph->str == "X") {
      const obs::JsonValue* dur = ev.get("dur");
      ASSERT_NE(dur, nullptr);
      EXPECT_TRUE(dur->is_number());
      EXPECT_GE(dur->number, 0.0);
    }
    if (ph->str == "i") {
      const obs::JsonValue* scope = ev.get("s");
      ASSERT_NE(scope, nullptr);
      EXPECT_EQ(scope->str, "t");
    }
  }
  // A real run produces all three phase kinds.
  EXPECT_EQ(phases.size(), 3u);
}

TEST(ChromeTrace, ByteDeterministic) {
  const Program program = test_program();
  EXPECT_EQ(chrome_trace_bytes(program), chrome_trace_bytes(program));
}

// ---------------------------------------------------------------------------
// Konata sink

TEST(Konata, WellFormedLog) {
  std::ostringstream os;
  obs::KonataSink sink(os);
  Simulator sim(test_machine(), test_program());
  sim.add_trace_sink(&sink);
  EXPECT_TRUE(sim.run(kCommits).ok());

  std::istringstream lines(os.str());
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line, "Kanata\t0004");

  std::set<u64> live, retired;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    std::istringstream ls(line);
    std::string cmd;
    std::getline(ls, cmd, '\t');
    if (cmd == "C=" || cmd == "C") {
      long long delta = -1;
      ls >> delta;
      EXPECT_GE(delta, 0) << line;
    } else if (cmd == "I") {
      u64 fid;
      ls >> fid;
      EXPECT_TRUE(live.insert(fid).second) << "duplicate I " << fid;
    } else if (cmd == "L" || cmd == "S" || cmd == "E") {
      u64 fid;
      ls >> fid;
      EXPECT_TRUE(live.count(fid)) << cmd << " for unknown id " << fid;
    } else if (cmd == "R") {
      u64 fid, rid, type;
      ls >> fid >> rid >> type;
      EXPECT_TRUE(live.count(fid)) << "R for unknown id " << fid;
      EXPECT_TRUE(retired.insert(fid).second) << "double retire " << fid;
      EXPECT_TRUE(type == 0 || type == 1) << line;
    } else {
      FAIL() << "unknown record: " << line;
    }
  }
  EXPECT_FALSE(live.empty());
  // end() retires (or flush-retires) every instruction it ever introduced.
  EXPECT_EQ(live.size(), retired.size());
}

// ---------------------------------------------------------------------------
// Interval sampler

TEST(IntervalStats, HeaderDescribesRegisteredCountersOnly) {
  std::ostringstream os;
  obs::IntervalSampler sampler(500, &os);
  Simulator sim(test_machine(), test_program());
  sim.set_interval_sampler(&sampler);
  EXPECT_TRUE(sim.run(kCommits).ok());

  std::istringstream lines(os.str());
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  const auto header = obs::parse_json(line);
  ASSERT_TRUE(header.has_value()) << line;
  EXPECT_EQ(header->get("type")->str, "header");
  EXPECT_EQ(header->get("version")->number, 1.0);
  EXPECT_EQ(header->get("interval")->number, 500.0);
  ASSERT_NE(header->get("config"), nullptr);

  const obs::JsonValue* columns = header->get("columns");
  ASSERT_NE(columns, nullptr);
  const auto& registry = obs::simstats_counters();
  ASSERT_EQ(columns->array.size(), registry.size());
  for (std::size_t i = 0; i < registry.size(); ++i) {
    const obs::JsonValue& col = columns->array[i];
    EXPECT_EQ(col.get("name")->str, registry[i].name);
    EXPECT_EQ(col.get("unit")->str, registry[i].unit);
    EXPECT_FALSE(col.get("desc")->str.empty());
    EXPECT_EQ(obs::counter_index(registry[i].name), static_cast<int>(i));
  }
  const obs::JsonValue* derived = header->get("derived");
  ASSERT_NE(derived, nullptr);
  ASSERT_EQ(derived->array.size(), obs::derived_metrics().size());

  // Every sample row's delta keys must be exactly the registered counters
  // — nothing unregistered sneaks into the schema.
  std::size_t samples = 0;
  while (std::getline(lines, line)) {
    const auto row = obs::parse_json(line);
    ASSERT_TRUE(row.has_value()) << line;
    EXPECT_EQ(row->get("type")->str, "sample");
    ASSERT_NE(row->get("cycle"), nullptr);
    ASSERT_NE(row->get("committed"), nullptr);
    const obs::JsonValue* delta = row->get("delta");
    ASSERT_NE(delta, nullptr);
    ASSERT_TRUE(delta->is_object());
    EXPECT_EQ(delta->object.size(), registry.size());
    for (const auto& [key, value] : delta->object) {
      EXPECT_GE(obs::counter_index(key), 0) << "unregistered counter " << key;
      EXPECT_TRUE(value.is_number());
    }
    for (const obs::DerivedDesc& d : obs::derived_metrics())
      ASSERT_NE(row->get(d.name), nullptr) << d.name;
    ++samples;
  }
  EXPECT_GE(samples, kCommits / 500);
}

TEST(IntervalStats, ByteDeterministic) {
  const Program program = test_program();
  const auto capture = [&] {
    std::ostringstream os;
    obs::IntervalSampler sampler(700, &os);
    Simulator sim(test_machine(), program);
    sim.set_interval_sampler(&sampler);
    EXPECT_TRUE(sim.run(kCommits).ok());
    return os.str();
  };
  const std::string a = capture();
  EXPECT_EQ(a, capture());
  EXPECT_FALSE(a.empty());
}

TEST(IntervalStats, DeltasReconcileWithFinalCounters) {
  obs::IntervalSampler sampler(700);
  Simulator sim(test_machine(), test_program());
  sim.set_interval_sampler(&sampler);
  const SimResult r = sim.run(kCommits);
  ASSERT_TRUE(r.ok());
  ASSERT_FALSE(sampler.rows().empty());

  const auto& registry = obs::simstats_counters();
  std::vector<u64> sums(registry.size(), 0);
  for (const obs::IntervalRow& row : sampler.rows()) {
    ASSERT_EQ(row.delta.size(), registry.size());
    for (std::size_t i = 0; i < registry.size(); ++i)
      sums[i] += row.delta[i];
  }
  // finish() flushed the tail, so the series telescopes to the totals.
  for (std::size_t i = 0; i < registry.size(); ++i)
    EXPECT_EQ(sums[i], r.stats.*registry[i].field) << registry[i].name;

  // Committed positions are the sample grid, cycle positions monotonic.
  u64 prev_cycle = 0, prev_committed = 0;
  for (const obs::IntervalRow& row : sampler.rows()) {
    EXPECT_GT(row.committed, prev_committed);
    EXPECT_GE(row.cycle, prev_cycle);
    prev_cycle = row.cycle;
    prev_committed = row.committed;
  }
  EXPECT_EQ(sampler.rows().back().committed, kCommits);
}

TEST(IntervalStats, WarmupIsExcluded) {
  obs::IntervalSampler sampler(500);
  Simulator sim(test_machine(), test_program());
  sim.set_interval_sampler(&sampler);
  const SimResult r = sim.run(2000, 1000);
  ASSERT_TRUE(r.ok());
  ASSERT_FALSE(sampler.rows().empty());
  // Rows are measured-relative: the series covers exactly the 2000 measured
  // commits and its cycles reconcile with the measured cycle count.
  EXPECT_EQ(sampler.rows().back().committed, 2000u);
  u64 cycle_sum = 0;
  for (const obs::IntervalRow& row : sampler.rows())
    cycle_sum += row.delta[0];  // registry slot 0 is "cycles"
  EXPECT_EQ(cycle_sum, r.stats.cycles);
}

// ---------------------------------------------------------------------------
// Non-perturbation

TEST(Obs, FullInstrumentationDoesNotPerturbSimulation) {
  const Program program = test_program();
  Simulator plain(test_machine(), program);
  const SimResult base = plain.run(kCommits);
  ASSERT_TRUE(base.ok());

  std::ostringstream pipe_os, chrome_os, konata_os;
  obs::PipeTextSink pipe(pipe_os, 0, 200);
  obs::ChromeTraceSink chrome(chrome_os);
  obs::KonataSink konata(konata_os);
  obs::IntervalSampler sampler(500);
  Simulator instrumented(test_machine(), program);
  instrumented.add_trace_sink(&pipe);
  instrumented.add_trace_sink(&chrome);
  instrumented.add_trace_sink(&konata);
  instrumented.set_interval_sampler(&sampler);
  instrumented.enable_host_profile();
  const SimResult traced = instrumented.run(kCommits);
  ASSERT_TRUE(traced.ok());

  for (const obs::CounterDesc& c : obs::simstats_counters())
    EXPECT_EQ(base.stats.*c.field, traced.stats.*c.field) << c.name;

  // Host-phase profiling reported and self-consistent.
  ASSERT_TRUE(traced.stats.host_profile.enabled);
  EXPECT_GT(traced.stats.host_profile.total(), 0.0);
  EXPECT_GT(traced.stats.host_profile.loop_cycles, 0u);
  EXPECT_GE(traced.stats.host_profile.commit,
            traced.stats.host_profile.cosim);
  EXPECT_GE(traced.stats.host_profile.memory,
            traced.stats.host_profile.replay);
  EXPECT_FALSE(base.stats.host_profile.enabled);
}

// ---------------------------------------------------------------------------
// JSON parser self-checks (it guards the schemas above)

TEST(ObsJson, ParsesAndRejects) {
  const auto ok = obs::parse_json(
      R"({"a":[1,2.5,-3e2],"b":{"c":"x\n\"y\""},"d":true,"e":null})");
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->get("a")->array.size(), 3u);
  EXPECT_DOUBLE_EQ(ok->get("a")->array[2].number, -300.0);
  EXPECT_EQ(ok->get("b")->get("c")->str, "x\n\"y\"");
  EXPECT_TRUE(ok->get("d")->boolean);

  EXPECT_FALSE(obs::parse_json("").has_value());
  EXPECT_FALSE(obs::parse_json("{").has_value());
  EXPECT_FALSE(obs::parse_json("{}garbage").has_value());
  EXPECT_FALSE(obs::parse_json("[1,]").has_value());
  EXPECT_FALSE(obs::parse_json("\"unterminated").has_value());
}

TEST(ObsJson, UnicodeEscapesDecodeToUtf8) {
  // BMP escapes, one and two UTF-8 bytes.
  const auto latin = obs::parse_json(R"("caf\u00e9")");
  ASSERT_TRUE(latin.has_value());
  EXPECT_EQ(latin->str, "caf\xC3\xA9");  // é
  const auto euro = obs::parse_json(R"("\u20ac")");
  ASSERT_TRUE(euro.has_value());
  EXPECT_EQ(euro->str, "\xE2\x82\xAC");  // €

  // Astral plane: a surrogate pair must combine into one 4-byte code
  // point, not two replacement blobs.
  const auto emoji = obs::parse_json(R"("\ud83d\ude00")");
  ASSERT_TRUE(emoji.has_value());
  EXPECT_EQ(emoji->str, "\xF0\x9F\x98\x80");  // 😀 U+1F600

  // Pairs embedded mid-string survive with their neighbours.
  const auto mixed = obs::parse_json(R"({"k":"a\ud83d\ude00z"})");
  ASSERT_TRUE(mixed.has_value());
  EXPECT_EQ(mixed->get("k")->str, "a\xF0\x9F\x98\x80z");

  // Raw UTF-8 bytes in the input pass through untouched.
  const auto raw = obs::parse_json("\"caf\xC3\xA9\"");
  ASSERT_TRUE(raw.has_value());
  EXPECT_EQ(raw->str, "caf\xC3\xA9");

  // Lone or malformed surrogates are syntax errors, not silent garbage.
  EXPECT_FALSE(obs::parse_json(R"("\ud83d")").has_value());
  EXPECT_FALSE(obs::parse_json(R"("\ud83dxy")").has_value());
  EXPECT_FALSE(obs::parse_json(R"("\ud83dA")").has_value());
  EXPECT_FALSE(obs::parse_json(R"("\ude00")").has_value());
  EXPECT_FALSE(obs::parse_json(R"("\u12g4")").has_value());
}

TEST(ObsJson, AppendUtf8CoversAllWidths) {
  const auto enc = [](char32_t cp) {
    std::string out;
    obs::append_utf8(cp, out);
    return out;
  };
  EXPECT_EQ(enc(0x41), "A");
  EXPECT_EQ(enc(0xE9), "\xC3\xA9");
  EXPECT_EQ(enc(0x20AC), "\xE2\x82\xAC");
  EXPECT_EQ(enc(0x1F600), "\xF0\x9F\x98\x80");
}

}  // namespace
}  // namespace bsp
