// Tests for the trace-driven characterisation engines (Figures 2, 4, 6) and
// the trace runner itself.
#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "trace/studies.hpp"
#include "trace/trace.hpp"
#include "util/rng.hpp"

namespace bsp {
namespace {

ExecRecord load_rec(u32 addr, unsigned bytes = 4) {
  ExecRecord r;
  r.inst = make_mem(Op::LW, 1, 2, 0);
  r.is_load = true;
  r.mem_addr = addr;
  r.mem_bytes = bytes;
  return r;
}

ExecRecord store_rec(u32 addr, unsigned bytes = 4) {
  ExecRecord r;
  r.inst = make_mem(Op::SW, 1, 2, 0);
  r.is_store = true;
  r.mem_addr = addr;
  r.mem_bytes = bytes;
  return r;
}

ExecRecord branch_rec(Op op, u32 pc, u32 s1, u32 s2) {
  ExecRecord r;
  r.pc = pc;
  r.inst = op_info(op).sig == OperandSig::Br2 ? make_br2(op, 1, 2, 4)
                                              : make_br1(op, 1, 4);
  r.is_cond_branch = true;
  r.src1_value = s1;
  r.src2_value = s2;
  r.branch_taken = branch_outcome(r.inst, s1, s2);
  return r;
}

// --- TraceRunner ------------------------------------------------------------------

TEST(TraceRunner, SkipAndLimit) {
  const AsmResult r = assemble(R"(
.text
main:
  li $t0, 50
loop:
  addiu $t0, $t0, -1
  bne $t0, $0, loop
  li $v0, 10
  syscall
)");
  ASSERT_TRUE(r.ok()) << r.error_text();
  u64 seen = 0;
  const TraceResult tr = run_trace(r.program, 10, 20, [&](const ExecRecord&) {
    ++seen;
    return true;
  });
  EXPECT_EQ(tr.skipped, 10u);
  EXPECT_EQ(tr.visited, 20u);
  EXPECT_EQ(seen, 20u);

  // Visitor can stop the trace early.
  seen = 0;
  run_trace(r.program, 0, 1000, [&](const ExecRecord&) {
    return ++seen < 5;
  });
  EXPECT_EQ(seen, 5u);

  // Program exit ends the trace naturally.
  const TraceResult whole =
      run_trace(r.program, 0, 1u << 20, [](const ExecRecord&) { return true; });
  EXPECT_LT(whole.visited, 1u << 20);
  EXPECT_EQ(whole.final.kind, StepResult::Kind::Exited);
}

// --- LsqAliasStudy (Figure 2) ------------------------------------------------------

TEST(LsqStudy, LoadWithEmptyWindowIsNoStores) {
  LsqAliasStudy study(32);
  study.observe(load_rec(0x1000));
  EXPECT_EQ(study.loads(), 1u);
  for (unsigned k = 0; k < kDisambigBits; ++k)
    EXPECT_EQ(study.count(k, AliasCategory::NoStoresInQueue), 1u);
}

TEST(LsqStudy, MatchingStoreClassifiedAtEveryBitDepth) {
  LsqAliasStudy study(32);
  study.observe(store_rec(0x1000));
  study.observe(load_rec(0x1000));
  for (unsigned k = 0; k < kDisambigBits; ++k)
    EXPECT_EQ(study.count(k, AliasCategory::SingleMatchOneStore), 1u)
        << "bit index " << k;
  EXPECT_DOUBLE_EQ(study.resolved_fraction(0), 1.0);
}

TEST(LsqStudy, DistantStoreRuledOutEarly) {
  LsqAliasStudy study(32);
  study.observe(store_rec(0x00001000));
  study.observe(load_rec(0x00002000));  // differs at address bit 12
  // Bits 2..11 match -> SingleNonMatch until bit 12 is compared.
  EXPECT_EQ(study.count(0, AliasCategory::SingleNonMatch), 1u);
  // Bit indices count from bit 2, so bit 12 is index 10.
  EXPECT_EQ(study.count(10, AliasCategory::ZeroMatch), 1u);
  EXPECT_EQ(study.count(kDisambigBits - 1, AliasCategory::ZeroMatch), 1u);
}

TEST(LsqStudy, WindowEvictsOldStores) {
  LsqAliasStudy study(4);  // capacity 3 memory ops before the load
  study.observe(store_rec(0x1000));
  study.observe(store_rec(0x2000));
  study.observe(store_rec(0x3000));
  study.observe(store_rec(0x4000));  // pushes 0x1000 out
  study.observe(load_rec(0x1000));
  EXPECT_EQ(study.count(kDisambigBits - 1, AliasCategory::ZeroMatch), 1u);
}

TEST(LsqStudy, ResolvedFractionIsMonotone) {
  LsqAliasStudy study(16);
  Rng rng(31);
  for (int i = 0; i < 5000; ++i) {
    const u32 addr = (rng.next() & 0xffff) << 2;
    if (rng.chance(1, 3))
      study.observe(store_rec(addr));
    else
      study.observe(load_rec(addr));
  }
  double prev = 0.0;
  for (unsigned k = 0; k < kDisambigBits; ++k) {
    const double f = study.resolved_fraction(k);
    EXPECT_GE(f + 1e-12, prev) << "resolution must not regress with bits";
    prev = f;
  }
  EXPECT_DOUBLE_EQ(study.resolved_fraction(kDisambigBits - 1), 1.0)
      << "the full comparison always resolves";
  // Category fractions sum to 1 at every depth.
  for (unsigned k = 0; k < kDisambigBits; ++k) {
    double sum = 0;
    for (unsigned c = 0; c < kNumAliasCategories; ++c)
      sum += study.fraction(k, static_cast<AliasCategory>(c));
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

// --- PartialTagStudy (Figure 4) -----------------------------------------------------

TEST(TagStudy, FullTagBitsGiveExactHitMiss) {
  PartialTagStudy study(CacheGeometry{8 * 1024, 32, 2});
  Rng rng(41);
  std::vector<u32> pool;
  for (int i = 0; i < 64; ++i) pool.push_back(rng.next());
  for (int i = 0; i < 20000; ++i)
    study.observe_access(pool[rng.below(64)] + (rng.next() & 0x1f), false);

  const unsigned full = study.tag_bits();
  // With all tag bits, "single hit" + "zero match" must cover everything:
  // a unique full match is a hit and zero matches is a miss; SingleMiss and
  // MultMatch are impossible.
  EXPECT_EQ(study.count(full, PartialTagStudy::Outcome::SingleMiss), 0u);
  EXPECT_EQ(study.count(full, PartialTagStudy::Outcome::MultMatch), 0u);
  const u64 hits = study.count(full, PartialTagStudy::Outcome::SingleHit);
  const u64 zero = study.count(full, PartialTagStudy::Outcome::ZeroMatch);
  EXPECT_EQ(hits + zero, study.accesses());
  // And they must agree with the cache's own miss accounting.
  EXPECT_EQ(zero, study.cache().misses());
}

TEST(TagStudy, ZeroMatchIsMonotoneInBits) {
  PartialTagStudy study(CacheGeometry{8 * 1024, 32, 4});
  Rng rng(43);
  for (int i = 0; i < 20000; ++i)
    study.observe_access(rng.next() & 0xfffff, false);
  u64 prev = 0;
  for (unsigned t = 1; t <= study.tag_bits(); ++t) {
    const u64 z = study.count(t, PartialTagStudy::Outcome::ZeroMatch);
    EXPECT_GE(z, prev) << "more tag bits can only reveal more early misses";
    prev = z;
  }
}

TEST(TagStudy, CountsPartitionAccesses) {
  PartialTagStudy study(CacheGeometry{64 * 1024, 64, 8});
  Rng rng(47);
  for (int i = 0; i < 5000; ++i)
    study.observe_access(rng.next() & 0x3ffff, rng.chance(1, 4));
  for (unsigned t = 1; t <= study.tag_bits(); ++t) {
    u64 sum = 0;
    for (unsigned o = 0; o < PartialTagStudy::kNumOutcomes; ++o)
      sum += study.count(t, static_cast<PartialTagStudy::Outcome>(o));
    EXPECT_EQ(sum, study.accesses());
  }
}

// --- EarlyBranchStudy (Figure 6) ----------------------------------------------------

TEST(BranchStudy, DetectionBitForEqualityBranches) {
  const auto bne = make_br2(Op::BNE, 1, 2, 4);
  // Operands differ in bit 0: provable immediately.
  EXPECT_EQ(EarlyBranchStudy::detection_bit(bne, 0x1, 0x0, true), 0u);
  // Operands differ first at bit 17.
  EXPECT_EQ(EarlyBranchStudy::detection_bit(bne, 0x20000, 0x0, true), 17u);
  // Equal operands: only the full comparison proves equality.
  EXPECT_EQ(EarlyBranchStudy::detection_bit(bne, 5, 5, false), 31u);
  const auto beq = make_br2(Op::BEQ, 1, 2, 4);
  EXPECT_EQ(EarlyBranchStudy::detection_bit(beq, 0xf0, 0x70, false), 7u);
}

TEST(BranchStudy, SignBranchesNeedBit31) {
  const auto blez = make_br1(Op::BLEZ, 1, 4);
  EXPECT_EQ(EarlyBranchStudy::detection_bit(blez, 0x1, 0, false), 31u);
  const auto bltz = make_br1(Op::BLTZ, 1, 4);
  EXPECT_EQ(EarlyBranchStudy::detection_bit(bltz, 0x80000000u, 0, true), 31u);
}

TEST(BranchStudy, CountsMispredictionsAndAccuracy) {
  EarlyBranchStudy study(1024);
  // Alternating branch that gshare learns quickly, then a surprise.
  bool outcome = false;
  for (int i = 0; i < 200; ++i) {
    outcome = !outcome;
    study.observe(branch_rec(Op::BNE, 0x400100, outcome ? 1 : 0, 0));
  }
  EXPECT_EQ(study.branches(), 200u);
  EXPECT_GT(study.accuracy(), 0.8);
  EXPECT_GT(study.mispredictions(), 0u);  // warm-up mispredicts
  EXPECT_EQ(study.eq_branches(), 200u);
}

TEST(BranchStudy, DetectedByBitIsCumulative) {
  EarlyBranchStudy study(256);
  Rng rng(53);
  for (int i = 0; i < 5000; ++i) {
    const Op op = rng.chance(1, 2) ? Op::BNE : Op::BEQ;
    study.observe(
        branch_rec(op, 0x400000 + (rng.next() & 0xff) * 4, rng.next(),
                   rng.chance(1, 4) ? 0 : rng.next()));
  }
  ASSERT_GT(study.mispredictions(), 0u);
  double prev = 0;
  for (unsigned k = 0; k < kWordBits; ++k) {
    const double d = study.detected_by_bit(k);
    EXPECT_GE(d + 1e-12, prev);
    prev = d;
  }
  EXPECT_DOUBLE_EQ(study.detected_by_bit(31), 1.0)
      << "every misprediction is detectable with all 32 bits";
}

// --- OperandProfile (operand criticality) -------------------------------------

ExecRecord alu_rec(Op op, unsigned dest, u32 dest_value) {
  ExecRecord r;
  r.inst = make_r3(op, dest, 1, 2);
  r.dest = dest;
  r.dest_value = dest_value;
  return r;
}

TEST(OperandProfile, ClassifiesStartability) {
  OperandProfile p;
  p.observe(alu_rec(Op::ADDU, 3, 5));              // startable (carry chain)
  ExecRecord mult;
  mult.inst = make_rsrt(Op::MULT, 1, 2);
  p.observe(mult);                                 // full collect
  ExecRecord srl;
  srl.inst = make_shift_imm(Op::SRL, 3, 1, 4);
  srl.dest = 3;
  srl.dest_value = 1;
  p.observe(srl);                                  // starts high: neither
  EXPECT_EQ(p.instructions(), 3u);
  EXPECT_DOUBLE_EQ(p.startable_with_low_slice(), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(p.needs_full_operands(), 1.0 / 3.0);
}

TEST(OperandProfile, NarrownessUsesSignExtension) {
  OperandProfile p;
  p.observe(alu_rec(Op::ADDU, 3, 0x00000012));  // narrow @16 and @8
  p.observe(alu_rec(Op::ADDU, 3, 0xffffffef));  // -17: narrow @16 and @8
  p.observe(alu_rec(Op::ADDU, 3, 0x00001234));  // narrow @16 only
  p.observe(alu_rec(Op::ADDU, 3, 0x00008000));  // not narrow @16 (sign flip)
  p.observe(alu_rec(Op::ADDU, 3, 0xdeadbeef));  // wide
  EXPECT_EQ(p.results(), 5u);
  EXPECT_DOUBLE_EQ(p.narrow_results(16), 3.0 / 5.0);
  EXPECT_DOUBLE_EQ(p.narrow_results(8), 2.0 / 5.0);
}

TEST(OperandProfile, IgnoresNonResults) {
  OperandProfile p;
  ExecRecord store;
  store.inst = make_mem(Op::SW, 1, 2, 0);
  store.is_store = true;
  p.observe(store);
  EXPECT_EQ(p.instructions(), 1u);
  EXPECT_EQ(p.results(), 0u);
}

}  // namespace
}  // namespace bsp
