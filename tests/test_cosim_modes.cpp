// Co-simulation cadence modes (core/simulator.hpp): spot mode must keep
// the checker honest — an injected architectural divergence is caught
// within one spot window, not silently committed — while off mode runs
// unchecked by design (its caveat: a divergence is invisible; the run
// still completes and the timing stats are unchanged). The golden matrix
// in test_sched_equivalence.cpp pins bit-identity of the stats across
// modes; this file pins the checking semantics.
//
// Fault injection uses the BSP_COSIM_INJECT="COMMIT:REG" hook read at
// Simulator construction: at the given commit count the checker's
// register REG gets bit 0 flipped, modelling a checker/oracle desync.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>

#include "asm/assembler.hpp"
#include "config/machine_config.hpp"
#include "core/simulator.hpp"

namespace bsp {
namespace {

// Every loop-body ALU op reads $s1 (register 17), so a corrupted checker
// $s1 shows up in the first checked commit after the injection point.
Program s1_chain_program(unsigned iterations) {
  std::ostringstream os;
  os << ".text\nmain:\n  li $s1, 12345\n  li $s7, " << iterations
     << "\nloop:\n";
  for (int i = 0; i < 8; ++i)
    os << "  addu $t" << i << ", $t" << i << ", $s1\n";
  os << "  addiu $s7, $s7, -1\n  bgtz $s7, loop\n"
     << "  li $v0, 10\n  li $a0, 7\n  syscall\n";
  const AsmResult r = assemble(os.str());
  EXPECT_TRUE(r.ok()) << r.error_text();
  return r.program;
}

struct InjectGuard {
  explicit InjectGuard(const char* spec) {
    ::setenv("BSP_COSIM_INJECT", spec, 1);
  }
  ~InjectGuard() { ::unsetenv("BSP_COSIM_INJECT"); }
};

SimResult run_mode(const Program& prog, CosimMode mode, u64 period = 64,
                   u64 max_commits = 40'000) {
  Simulator sim(base_machine(), prog);
  SimOptions so;
  so.cosim = mode;
  so.cosim_period = period;
  sim.set_options(so);
  return sim.run(max_commits);
}

TEST(CoSimModes, SpotDetectsInjectedDivergenceWithinOneWindow) {
  const InjectGuard guard("2000:17");
  const Program prog = s1_chain_program(3000);
  const SimResult r = run_mode(prog, CosimMode::kSpot, 64);
  ASSERT_FALSE(r.ok()) << "spot mode committed through an injected desync";
  EXPECT_NE(r.error.find("divergence"), std::string::npos) << r.error;
  // Caught at the next checked commit: within one 64-commit window (plus
  // the committing batch), never hundreds of commits later.
  EXPECT_GE(r.stats.committed + 80, 2000u);
  EXPECT_LT(r.stats.committed, 2000u + 80);
}

TEST(CoSimModes, FullDetectsInjectedDivergencePromptly) {
  const InjectGuard guard("2000:17");
  const Program prog = s1_chain_program(3000);
  const SimResult r = run_mode(prog, CosimMode::kFull);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error.find("divergence"), std::string::npos) << r.error;
  // Full cadence checks every commit; only the couple of loop-control ops
  // that don't read $s1 can slip between injection and detection.
  EXPECT_LT(r.stats.committed, 2000u + 32);
}

TEST(CoSimModes, OffModeRunsUncheckedThroughInjection) {
  const Program prog = s1_chain_program(3000);
  const SimResult clean = run_mode(prog, CosimMode::kOff);
  ASSERT_TRUE(clean.ok()) << clean.error;

  const InjectGuard guard("2000:17");
  const SimResult r = run_mode(prog, CosimMode::kOff);
  // The documented caveat: no checker, so the injected desync is
  // invisible — the run completes with identical timing stats.
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_TRUE(r.exited);
  EXPECT_EQ(r.stats.committed, clean.stats.committed);
  EXPECT_EQ(r.stats.cycles, clean.stats.cycles);
}

TEST(CoSimModes, ExitPathAgreesAcrossModes) {
  const Program prog = s1_chain_program(500);
  const SimResult full = run_mode(prog, CosimMode::kFull);
  const SimResult spot = run_mode(prog, CosimMode::kSpot, 64);
  const SimResult off = run_mode(prog, CosimMode::kOff);
  for (const SimResult* r : {&full, &spot, &off}) {
    ASSERT_TRUE(r->ok()) << r->error;
    EXPECT_TRUE(r->exited);
    EXPECT_EQ(r->exit_code, 7);
    EXPECT_EQ(r->stats.committed, full.stats.committed);
    EXPECT_EQ(r->stats.cycles, full.stats.cycles);
  }
}

TEST(CoSimModes, SpotMatchesFullStatsOnCleanRun) {
  const Program prog = s1_chain_program(2000);
  const SimResult full = run_mode(prog, CosimMode::kFull);
  const SimResult spot = run_mode(prog, CosimMode::kSpot, 7);
  ASSERT_TRUE(full.ok()) << full.error;
  ASSERT_TRUE(spot.ok()) << spot.error;
  EXPECT_EQ(full.stats.committed, spot.stats.committed);
  EXPECT_EQ(full.stats.cycles, spot.stats.cycles);
  EXPECT_EQ(full.stats.branches, spot.stats.branches);
  EXPECT_EQ(full.stats.branch_mispredicts, spot.stats.branch_mispredicts);
  EXPECT_EQ(full.stats.l1d_hits, spot.stats.l1d_hits);
}

TEST(CoSimModes, ParseCosimSpecs) {
  SimOptions so;
  EXPECT_TRUE(parse_cosim("full", &so));
  EXPECT_EQ(so.cosim, CosimMode::kFull);
  EXPECT_TRUE(parse_cosim("off", &so));
  EXPECT_EQ(so.cosim, CosimMode::kOff);
  EXPECT_TRUE(parse_cosim("spot", &so));
  EXPECT_EQ(so.cosim, CosimMode::kSpot);
  EXPECT_TRUE(parse_cosim("spot:128", &so));
  EXPECT_EQ(so.cosim, CosimMode::kSpot);
  EXPECT_EQ(so.cosim_period, 128u);
  EXPECT_EQ(cosim_name(so), "spot:128");
  EXPECT_FALSE(parse_cosim("", &so));
  EXPECT_FALSE(parse_cosim("spot:0", &so));
  EXPECT_FALSE(parse_cosim("spot:7x", &so));
  EXPECT_FALSE(parse_cosim("sometimes", &so));
}

}  // namespace
}  // namespace bsp
