// Co-simulation stress fuzzing: generates random structured programs
// (nested countdown loops whose bodies mix ALU chains, sandboxed loads and
// stores, flag-test branches, calls, and mul/div) and runs each on a matrix
// of machine configurations. Commit-time co-simulation turns any scheduler,
// replay, LSQ or recovery bug into a hard failure, so simply completing the
// matrix is a strong end-to-end correctness statement.
#include <gtest/gtest.h>

#include <sstream>

#include "asm/assembler.hpp"
#include "core/simulator.hpp"
#include "emu/emulator.hpp"
#include "util/rng.hpp"

namespace bsp {
namespace {

// Registers the generator uses freely ($s6/$s7 are loop counters, $s5 the
// sandbox base, $at/$k0/$k1 reserved).
constexpr unsigned kPool[] = {R_T0, R_T1, R_T2, R_T3, R_T4, R_T5,
                              R_T6, R_T7, R_S0, R_S1, R_S2, R_V1,
                              R_A1, R_A2, R_A3, R_T8};

class ProgramFuzzer {
 public:
  explicit ProgramFuzzer(u64 seed) : rng_(seed) {}

  std::string generate() {
    os_.str("");
    label_ = 0;
    os_ << ".text\nmain:\n";
    os_ << "  la $s5, sandbox\n";
    // Seed the register pool with assorted values.
    for (const unsigned r : kPool)
      os_ << "  li $" << r << ", " << rng_.next() % 100000 << "\n";
    emit_loop(/*depth=*/0);
    os_ << "  li $v0, 10\n  li $a0, 0\n  syscall\n";
    os_ << ".data\nsandbox:\n  .space 4096\n";
    return os_.str();
  }

 private:
  std::string fresh_label(const char* stem) {
    return std::string(stem) + std::to_string(label_++);
  }
  unsigned reg() { return kPool[rng_.below(std::size(kPool))]; }

  void emit_loop(int depth) {
    const unsigned counter = depth == 0 ? R_S7 : R_S6;
    const std::string head = fresh_label("loop");
    const unsigned iters = depth == 0 ? 40 + rng_.below(60)
                                      : 2 + rng_.below(6);
    os_ << "  li $" << counter << ", " << iters << "\n";
    os_ << head << ":\n";
    const unsigned body = 4 + rng_.below(12);
    for (unsigned i = 0; i < body; ++i) emit_statement(depth);
    os_ << "  addiu $" << counter << ", $" << counter << ", -1\n";
    // Alternate branch flavours for the back edge.
    if (rng_.chance(1, 2))
      os_ << "  bgtz $" << counter << ", " << head << "\n";
    else
      os_ << "  bne $" << counter << ", $0, " << head << "\n";
  }

  void emit_statement(int depth) {
    switch (rng_.below(depth == 0 ? 9u : 8u)) {  // nest only from depth 0
      case 0: {  // ALU R-type chain
        const char* ops[] = {"addu", "subu", "and", "or", "xor", "nor",
                             "slt", "sltu"};
        os_ << "  " << ops[rng_.below(8)] << " $" << reg() << ", $" << reg()
            << ", $" << reg() << "\n";
        break;
      }
      case 1: {  // immediates & shifts
        switch (rng_.below(4)) {
          case 0:
            os_ << "  addiu $" << reg() << ", $" << reg() << ", "
                << static_cast<int>(rng_.below(4096)) - 2048 << "\n";
            break;
          case 1:
            os_ << "  andi $" << reg() << ", $" << reg() << ", 0x"
                << std::hex << rng_.below(0x10000) << std::dec << "\n";
            break;
          case 2:
            os_ << "  " << (rng_.chance(1, 2) ? "sll" : "sra") << " $"
                << reg() << ", $" << reg() << ", " << rng_.below(32) << "\n";
            break;
          case 3:
            os_ << "  " << (rng_.chance(1, 2) ? "srlv" : "sllv") << " $"
                << reg() << ", $" << reg() << ", $" << reg() << "\n";
            break;
        }
        break;
      }
      case 2: {  // sandboxed store (word/half/byte)
        const char* ops[] = {"sw", "sh", "sb"};
        const unsigned pick = rng_.below(3);
        const unsigned bytes = pick == 0 ? 4 : (pick == 1 ? 2 : 1);
        emit_sandbox_address(reg(), bytes);
        os_ << "  " << ops[pick] << " $" << reg() << ", 0($at)\n";
        break;
      }
      case 3: {  // sandboxed load
        const char* ops[] = {"lw", "lhu", "lh", "lbu", "lb"};
        const unsigned pick = rng_.below(5);
        const unsigned bytes = pick == 0 ? 4 : (pick <= 2 ? 2 : 1);
        emit_sandbox_address(reg(), bytes);
        os_ << "  " << ops[pick] << " $" << reg() << ", 0($at)\n";
        break;
      }
      case 4: {  // data-dependent forward branch (flag test)
        const std::string skip = fresh_label("skip");
        os_ << "  andi $k0, $" << reg() << ", 0x" << std::hex
            << (1u << rng_.below(8)) << std::dec << "\n";
        if (rng_.chance(1, 2))
          os_ << "  beq $k0, $0, " << skip << "\n";
        else
          os_ << "  bne $k0, $0, " << skip << "\n";
        os_ << "  addiu $" << reg() << ", $" << reg() << ", 1\n";
        os_ << skip << ":\n";
        break;
      }
      case 5: {  // mul/div + hi/lo reads
        const unsigned a = reg(), b = reg();
        os_ << "  " << (rng_.chance(3, 4) ? "mult" : "divu") << " $" << a
            << ", $" << b << "\n";
        os_ << "  mflo $" << reg() << "\n";
        if (rng_.chance(1, 2)) os_ << "  mfhi $" << reg() << "\n";
        break;
      }
      case 6: {  // sign-test forward branch
        const std::string skip = fresh_label("sgn");
        const char* ops[] = {"bltz", "bgez", "blez", "bgtz"};
        os_ << "  " << ops[rng_.below(4)] << " $" << reg() << ", " << skip
            << "\n";
        os_ << "  subu $" << reg() << ", $0, $" << reg() << "\n";
        os_ << skip << ":\n";
        break;
      }
      case 7: {  // floating-point activity over $f0..$f7
        const unsigned fd = rng_.below(8), fa = rng_.below(8),
                       fb = rng_.below(8);
        switch (rng_.below(6)) {
          case 0:
            os_ << "  mtc1 $" << reg() << ", $f" << fd << "\n";
            break;
          case 1:
            os_ << "  " << (rng_.chance(1, 2) ? "add.s" : "mul.s") << " $f"
                << fd << ", $f" << fa << ", $f" << fb << "\n";
            break;
          case 2:
            os_ << "  " << (rng_.chance(1, 2) ? "abs.s" : "neg.s") << " $f"
                << fd << ", $f" << fa << "\n";
            break;
          case 3: {  // FP-flag branch
            const std::string skip = fresh_label("fcc");
            os_ << "  c.lt.s $f" << fa << ", $f" << fb << "\n";
            os_ << "  " << (rng_.chance(1, 2) ? "bc1t" : "bc1f") << " "
                << skip << "\n";
            os_ << "  mov.s $f" << fd << ", $f" << fa << "\n";
            os_ << skip << ":\n";
            break;
          }
          case 4:  // FP store/load through the sandbox
            emit_sandbox_address(reg(), 4);
            os_ << "  " << (rng_.chance(1, 2) ? "swc1" : "lwc1") << " $f"
                << fd << ", 0($at)\n";
            break;
          case 5:
            os_ << "  mfc1 $" << reg() << ", $f" << fa << "\n";
            break;
        }
        break;
      }
      case 8:  // nested loop (depth 0 only)
        emit_loop(depth + 1);
        break;
    }
  }

  // $at = $s5 + (reg & 0xffc) + offset: a sandbox slot whose sub-word
  // offset respects the access's natural alignment.
  void emit_sandbox_address(unsigned addr_reg, unsigned access_bytes) {
    os_ << "  andi $at, $" << addr_reg << ", 0xffc\n";
    os_ << "  addu $at, $s5, $at\n";
    const unsigned max_off = 4 / access_bytes;  // 1, 2 or 4 choices
    const unsigned off = rng_.below(max_off) * access_bytes;
    if (off != 0) os_ << "  addiu $at, $at, " << off << "\n";
  }

  Rng rng_;
  std::ostringstream os_;
  unsigned label_ = 0;
};

class CoSimFuzz : public ::testing::TestWithParam<u64> {};

TEST_P(CoSimFuzz, RandomProgramsCoSimulateOnAllConfigs) {
  ProgramFuzzer fuzzer(GetParam());
  const std::string src = fuzzer.generate();
  const AsmResult assembled = assemble(src);
  ASSERT_TRUE(assembled.ok()) << assembled.error_text() << "\n" << src;

  // The reference execution must terminate (countdown loops guarantee it).
  Emulator emu(assembled.program);
  StepResult final;
  emu.run(3'000'000, &final);
  ASSERT_TRUE(emu.exited()) << "generated program did not terminate";
  const u64 length = emu.instructions_retired();

  const MachineConfig configs[] = {
      base_machine(),
      simple_pipelined_machine(2),
      simple_pipelined_machine(4),
      bitsliced_machine(2, kAllTechniques),
      bitsliced_machine(4, kAllTechniques),
      bitsliced_machine(8, kAllTechniques),
      bitsliced_machine(4, kExtendedTechniques |
                               static_cast<unsigned>(Technique::SumAddressed)),
  };
  for (const auto& cfg : configs) {
    const SimResult r = simulate(cfg, assembled.program, 1u << 22);
    ASSERT_TRUE(r.ok()) << "seed " << GetParam() << " slices "
                        << cfg.core.slices << " techniques "
                        << cfg.core.techniques << ": " << r.error;
    EXPECT_TRUE(r.exited);
    EXPECT_EQ(r.stats.committed, length)
        << "committed stream length diverged from the emulator";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoSimFuzz,
                         ::testing::Range<u64>(1000, 1024));

}  // namespace
}  // namespace bsp
