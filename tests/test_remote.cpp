// Distributed-sweep tests: the frame layer's reassembly and poisoning, the
// RemoteSpec wire encoding, and the coordinator/worker protocol end to end
// over localhost TCP — handshake rejection, dead-worker re-dispatch,
// heartbeat deadlines, work-stealing, resume against a pre-populated
// store, and the exactly-once-in-store guarantee under all of the above.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <fstream>
#include <future>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "campaign/campaign.hpp"
#include "campaign/remote.hpp"
#include "campaign/store.hpp"
#include "obs/json.hpp"
#include "util/socket.hpp"

namespace bsp::campaign {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

void sleep_sec(double sec) {
  std::this_thread::sleep_for(std::chrono::duration<double>(sec));
}

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "bsp_remote_" + name + "_" +
         std::to_string(::getpid());
}

SweepSpec tiny_spec(std::vector<u64> seeds) {
  SweepSpec spec;
  spec.name = "remote";
  spec.workloads = {"li"};
  spec.seeds = std::move(seeds);
  spec.instructions = 1000;
  spec.warmup = 0;
  MachinePoint base;
  base.label = "base";
  spec.machines.push_back(base);
  return spec;
}

SimStats fake_stats(const TaskSpec& task) {
  u64 h = 1469598103934665603ull;
  for (const char c : task.id())
    h = (h ^ static_cast<u64>(c)) * 1099511628211ull;
  SimStats s;
  s.cycles = 1000 + h % 1000;
  s.committed = task.instructions;
  return s;
}

TaskRecord ok_record(const TaskSpec& task) {
  TaskRecord rec;
  rec.task = task;
  rec.status = "ok";
  rec.stats = fake_stats(task);
  return rec;
}

// Deterministic synthetic runner: no simulator, stats keyed on the id.
TaskRunner fake_runner(double sleep_for = 0,
                       const std::string& slow_id_substr = "") {
  return [=](const TaskSpec& t) -> AttemptResult {
    if (sleep_for > 0 &&
        (slow_id_substr.empty() ||
         t.id().find(slow_id_substr) != std::string::npos))
      sleep_sec(sleep_for);
    AttemptResult r;
    r.stats = fake_stats(t);
    return r;
  };
}

WorkerSetup test_setup(TaskRunner runner) {
  return [runner](const RemoteSpec&, TaskRunner* r, SchedulerOptions*) {
    *r = runner;
  };
}

CampaignOptions serve_options(const std::string& out_path, bool fresh) {
  CampaignOptions options;
  options.out_path = out_path;
  options.fresh = fresh;
  options.progress = false;
  return options;
}

// Polls the coordinator's --port-file (written atomically via rename, so a
// present file is a complete file).
struct Ports {
  std::uint16_t port = 0;
  std::uint16_t status = 0;
};
Ports wait_ports(const std::string& path, double timeout_sec = 10) {
  const auto t0 = Clock::now();
  while (seconds_since(t0) < timeout_sec) {
    std::ifstream in(path);
    std::string line;
    Ports p;
    while (std::getline(in, line)) {
      if (line.rfind("port=", 0) == 0)
        p.port = static_cast<std::uint16_t>(std::stoul(line.substr(5)));
      else if (line.rfind("status_port=", 0) == 0)
        p.status =
            static_cast<std::uint16_t>(std::stoul(line.substr(12)));
    }
    if (p.port != 0) return p;
    sleep_sec(0.01);
  }
  return {};
}

WorkerOptions worker_options(std::uint16_t port, unsigned slots = 1) {
  WorkerOptions w;
  w.connect = {"127.0.0.1", port};
  w.slots = slots;
  w.heartbeat_sec = 0.1;
  w.connect_timeout_sec = 5;
  w.hostname = "test-worker";
  return w;
}

std::optional<std::string> expect_frame(FrameChannel& ch,
                                        double timeout_sec = 5) {
  std::string payload;
  if (ch.recv(&payload, timeout_sec) != FrameResult::kFrame)
    return std::nullopt;
  return payload;
}

// Raw fake worker: drives the handshake by hand so tests can then
// misbehave (vanish mid-task, go silent) in ways run_remote_worker never
// would. Returns a connected channel that has sent READY, or nullptr.
std::unique_ptr<FrameChannel> fake_ready_worker(
    std::uint16_t port, int proto = kRemoteProtocolVersion,
    unsigned slots = 1) {
  std::string err;
  const int fd = tcp_connect({"127.0.0.1", port}, 5, &err);
  if (fd < 0) return nullptr;
  auto ch = std::make_unique<FrameChannel>(fd);
  std::ostringstream hello;
  hello << "HELLO {\"proto\":" << proto
        << ",\"host\":\"fake\",\"slots\":" << slots << "}";
  if (!ch->send(hello.str())) return nullptr;
  for (;;) {
    const auto frame = expect_frame(*ch);
    if (!frame) return nullptr;
    if (frame->rfind("ERROR", 0) == 0) return nullptr;
    if (*frame == "GO") break;  // SPEC and PREWARM frames skipped over
  }
  if (!ch->send("READY {\"groups\":0}")) return nullptr;
  return ch;
}

std::size_t count_lines(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::string line;
  std::size_t n = 0;
  while (std::getline(in, line))
    if (!line.empty()) ++n;
  return n;
}

// ------------------------------------------------------------------ framing

TEST(Framing, ReassemblesFramesFromSplitReads) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  FrameChannel rx(fds[1]);
  const std::string payload = "RECORD {\"task\":\"x\",\"status\":\"ok\"}";
  std::string wire;
  const std::uint32_t n = static_cast<std::uint32_t>(payload.size());
  wire += static_cast<char>(n >> 24);
  wire += static_cast<char>((n >> 16) & 0xFF);
  wire += static_cast<char>((n >> 8) & 0xFF);
  wire += static_cast<char>(n & 0xFF);
  wire += payload;
  // Dribble the wire bytes a few at a time from another thread: the reader
  // must reassemble exactly the sent payload across arbitrarily split
  // reads, including a split inside the length prefix.
  std::thread writer([&] {
    for (std::size_t i = 0; i < wire.size(); i += 3) {
      const std::size_t k = std::min<std::size_t>(3, wire.size() - i);
      ASSERT_EQ(::send(fds[0], wire.data() + i, k, 0),
                static_cast<ssize_t>(k));
      sleep_sec(0.002);
    }
  });
  std::string out;
  EXPECT_EQ(rx.recv(&out, 5), FrameResult::kFrame);
  EXPECT_EQ(out, payload);
  writer.join();
  ::close(fds[0]);
}

TEST(Framing, HandsOutSeveralFramesArrivingInOneBurst) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  FrameChannel tx(fds[0]);
  FrameChannel rx(fds[1]);
  ASSERT_TRUE(tx.send("PING"));
  ASSERT_TRUE(tx.send("RECORD payload-two"));
  ASSERT_TRUE(tx.send("DONE"));
  std::string a, b, c;
  EXPECT_EQ(rx.recv(&a, 5), FrameResult::kFrame);
  EXPECT_EQ(rx.recv(&b, 5), FrameResult::kFrame);
  EXPECT_EQ(rx.recv(&c, 5), FrameResult::kFrame);
  EXPECT_EQ(a, "PING");
  EXPECT_EQ(b, "RECORD payload-two");
  EXPECT_EQ(c, "DONE");
}

TEST(Framing, EmptyPayloadRoundTrips) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  FrameChannel tx(fds[0]);
  FrameChannel rx(fds[1]);
  ASSERT_TRUE(tx.send(""));
  std::string out = "sentinel";
  EXPECT_EQ(rx.recv(&out, 5), FrameResult::kFrame);
  EXPECT_EQ(out, "");
}

TEST(Framing, OversizedLengthPrefixPoisonsTheChannel) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  FrameChannel rx(fds[1]);
  // 256 MiB claimed > 64 MiB cap: the reader must refuse to allocate and
  // must never hand out frames from this stream again.
  const unsigned char evil[4] = {0x10, 0x00, 0x00, 0x00};
  ASSERT_EQ(::send(fds[0], evil, 4, 0), 4);
  std::string out;
  EXPECT_EQ(rx.recv(&out, 2), FrameResult::kError);
  EXPECT_FALSE(rx.valid());
  ::close(fds[0]);
}

TEST(Framing, FrameArrivingWithTheFinIsStillDelivered) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  {
    FrameChannel tx(fds[0]);
    ASSERT_TRUE(tx.send("RECORD last-words"));
  }  // dtor closes: payload and FIN race into the receive buffer together
  FrameChannel rx(fds[1]);
  std::string out;
  EXPECT_EQ(rx.recv(&out, 5), FrameResult::kFrame);
  EXPECT_EQ(out, "RECORD last-words");
  EXPECT_EQ(rx.recv(&out, 5), FrameResult::kClosed);
}

// -------------------------------------------------------------- addr + spec

TEST(SocketAddrParse, AcceptsHostPortAndAnyInterfaceForms) {
  auto a = parse_socket_addr("127.0.0.1:9000");
  ASSERT_TRUE(a);
  EXPECT_EQ(a->host, "127.0.0.1");
  EXPECT_EQ(a->port, 9000);
  auto any = parse_socket_addr(":0");
  ASSERT_TRUE(any);
  EXPECT_EQ(any->host, "");
  EXPECT_EQ(any->port, 0);
  EXPECT_FALSE(parse_socket_addr("no-port"));
  EXPECT_FALSE(parse_socket_addr("host:"));
  EXPECT_FALSE(parse_socket_addr("host:99999"));
  EXPECT_FALSE(parse_socket_addr("host:12x"));
}

TEST(RemoteSpecJson, RoundTripsEveryField) {
  RemoteSpec spec;
  spec.campaign = "fig11";
  spec.interval = 5000;
  spec.host_profile = true;
  spec.cpi_stack = true;
  spec.sample_intervals = 30;
  spec.sample_warmup = 1234;
  spec.timeout_sec = 12.5;
  spec.max_attempts = 3;
  spec.heartbeat_sec = 0.25;
  const auto back = parse_remote_spec(encode_remote_spec(spec));
  ASSERT_TRUE(back);
  EXPECT_EQ(back->proto, kRemoteProtocolVersion);
  EXPECT_EQ(back->campaign, "fig11");
  EXPECT_EQ(back->interval, 5000u);
  EXPECT_TRUE(back->host_profile);
  EXPECT_TRUE(back->cpi_stack);
  EXPECT_EQ(back->sample_intervals, 30u);
  EXPECT_EQ(back->sample_warmup, 1234u);
  EXPECT_DOUBLE_EQ(back->timeout_sec, 12.5);
  EXPECT_EQ(back->max_attempts, 3u);
  EXPECT_DOUBLE_EQ(back->heartbeat_sec, 0.25);
  EXPECT_FALSE(parse_remote_spec("not json"));
  EXPECT_FALSE(parse_remote_spec("{\"campaign\":\"x\"}"));  // no proto
}

// --------------------------------------------------------------- end to end

TEST(RemoteCampaign, DistributedRunMatchesTheLocalRunnerByteForByte) {
  const SweepSpec spec = tiny_spec({0x5eed, 0x1111, 0x2222, 0x3333});
  const std::string out = temp_path("e2e") + ".jsonl";
  const std::string ports_path = temp_path("e2e_ports");

  RemoteOptions ropts;
  ropts.bind = {"127.0.0.1", 0};
  ropts.port_file = ports_path;
  auto serve = std::async(std::launch::async, [&] {
    return serve_campaign(spec, serve_options(out, true), ropts);
  });
  const Ports ports = wait_ports(ports_path);
  ASSERT_NE(ports.port, 0);

  // Two workers race for the four tasks.
  auto w1 = std::async(std::launch::async, [&] {
    return run_remote_worker(worker_options(ports.port, 1),
                             test_setup(fake_runner()));
  });
  auto w2 = std::async(std::launch::async, [&] {
    return run_remote_worker(worker_options(ports.port, 1),
                             test_setup(fake_runner()));
  });
  const CampaignReport report = serve.get();
  const WorkerReport r1 = w1.get(), r2 = w2.get();

  EXPECT_EQ(report.total, 4u);
  EXPECT_EQ(report.ran, 4u);
  EXPECT_EQ(report.ok, 4u);
  EXPECT_TRUE(r1.done);
  EXPECT_TRUE(r2.done);
  EXPECT_EQ(r1.ran + r2.ran, 4u);

  // Exactly once in the store, and every record carries the same stats the
  // local runner would have produced.
  EXPECT_EQ(count_lines(out), 4u);
  ResultStore store(out);
  for (const auto& task : spec.expand()) {
    const TaskRecord* rec = store.find(task.id());
    ASSERT_NE(rec, nullptr) << task.id();
    EXPECT_EQ(rec->status, "ok");
    EXPECT_EQ(rec->stats.cycles, fake_stats(task).cycles);
    EXPECT_EQ(rec->stats.committed, fake_stats(task).committed);
  }
  std::remove(out.c_str());
  std::remove(ports_path.c_str());
}

TEST(RemoteCampaign, ProtocolVersionMismatchIsRejectedAtHello) {
  const SweepSpec spec = tiny_spec({0x5eed});
  const std::string out = temp_path("vers") + ".jsonl";
  const std::string ports_path = temp_path("vers_ports");

  RemoteOptions ropts;
  ropts.bind = {"127.0.0.1", 0};
  ropts.port_file = ports_path;
  auto serve = std::async(std::launch::async, [&] {
    return serve_campaign(spec, serve_options(out, true), ropts);
  });
  const Ports ports = wait_ports(ports_path);
  ASSERT_NE(ports.port, 0);

  // A worker speaking tomorrow's protocol gets an ERROR frame, not a SPEC.
  {
    std::string err;
    const int fd = tcp_connect({"127.0.0.1", ports.port}, 5, &err);
    ASSERT_GE(fd, 0) << err;
    FrameChannel ch(fd);
    ASSERT_TRUE(ch.send("HELLO {\"proto\":99,\"host\":\"future\","
                        "\"slots\":1}"));
    const auto reply = expect_frame(ch);
    ASSERT_TRUE(reply);
    EXPECT_EQ(reply->rfind("ERROR", 0), 0u) << *reply;
    EXPECT_NE(reply->find("version"), std::string::npos) << *reply;
  }
  // run_remote_worker reports the same rejection as a worker-level error.
  const WorkerReport rejected =
      run_remote_worker(worker_options(0 /*unused*/, 1), test_setup({}));
  (void)rejected;  // (connect to port 0 fails; just exercising the path)

  // A current-protocol worker still finishes the campaign.
  auto good = std::async(std::launch::async, [&] {
    return run_remote_worker(worker_options(ports.port, 1),
                             test_setup(fake_runner()));
  });
  const CampaignReport report = serve.get();
  EXPECT_TRUE(good.get().done);
  EXPECT_EQ(report.ok, 1u);
  std::remove(out.c_str());
  std::remove(ports_path.c_str());
}

TEST(RemoteCampaign, WorkerDyingMidTaskGetsItsTasksReDispatched) {
  const SweepSpec spec = tiny_spec({0x5eed, 0x1111, 0x2222});
  const std::string out = temp_path("dead") + ".jsonl";
  const std::string ports_path = temp_path("dead_ports");

  RemoteOptions ropts;
  ropts.bind = {"127.0.0.1", 0};
  ropts.port_file = ports_path;
  auto serve = std::async(std::launch::async, [&] {
    return serve_campaign(spec, serve_options(out, true), ropts);
  });
  const Ports ports = wait_ports(ports_path);
  ASSERT_NE(ports.port, 0);

  // The fake worker accepts a task and then its process "dies" — the
  // socket closes without a RECORD. The kill-worker-mid-task scenario.
  {
    auto fake = fake_ready_worker(ports.port);
    ASSERT_TRUE(fake);
    const auto task_frame = expect_frame(*fake);
    ASSERT_TRUE(task_frame);
    EXPECT_EQ(task_frame->rfind("TASK ", 0), 0u);
    fake->close();
  }

  auto good = std::async(std::launch::async, [&] {
    return run_remote_worker(worker_options(ports.port, 2),
                             test_setup(fake_runner()));
  });
  const CampaignReport report = serve.get();
  const WorkerReport wr = good.get();
  EXPECT_EQ(report.ran, 3u);
  EXPECT_EQ(report.ok, 3u);
  EXPECT_TRUE(wr.done);
  EXPECT_EQ(wr.ran, 3u) << "the re-dispatched task must run on the "
                           "surviving worker";
  EXPECT_EQ(count_lines(out), 3u) << "re-dispatch must not duplicate "
                                     "records in the store";
  std::remove(out.c_str());
  std::remove(ports_path.c_str());
}

TEST(RemoteCampaign, SilentWorkerHitsTheHeartbeatDeadline) {
  const SweepSpec spec = tiny_spec({0x5eed});
  const std::string out = temp_path("silent") + ".jsonl";
  const std::string ports_path = temp_path("silent_ports");

  RemoteOptions ropts;
  ropts.bind = {"127.0.0.1", 0};
  ropts.port_file = ports_path;
  ropts.heartbeat_sec = 0.2;        // floor for the deadline below
  ropts.worker_deadline_sec = 0.5;  // a wedged worker is declared dead fast
  auto serve = std::async(std::launch::async, [&] {
    return serve_campaign(spec, serve_options(out, true), ropts);
  });
  const Ports ports = wait_ports(ports_path);
  ASSERT_NE(ports.port, 0);

  // Wedged fake: takes the only task, keeps the socket open, never pings.
  auto fake = fake_ready_worker(ports.port);
  ASSERT_TRUE(fake);
  ASSERT_TRUE(expect_frame(*fake));  // the TASK it will sit on

  // The good worker connects while the queue is empty (the task is held by
  // the wedged fake); only the heartbeat deadline can free it.
  auto good = std::async(std::launch::async, [&] {
    return run_remote_worker(worker_options(ports.port, 1),
                             test_setup(fake_runner()));
  });
  const auto t0 = Clock::now();
  const CampaignReport report = serve.get();
  EXPECT_LT(seconds_since(t0), 10.0);
  EXPECT_TRUE(good.get().done);
  EXPECT_EQ(report.ok, 1u);
  EXPECT_EQ(count_lines(out), 1u);
  fake->close();
  std::remove(out.c_str());
  std::remove(ports_path.c_str());
}

TEST(RemoteCampaign, IdleWorkerStealsTheStraggler) {
  const SweepSpec spec = tiny_spec({0x5eed, 0x1111});
  const std::string out = temp_path("steal") + ".jsonl";
  const std::string ports_path = temp_path("steal_ports");

  RemoteOptions ropts;
  ropts.bind = {"127.0.0.1", 0};
  ropts.port_file = ports_path;
  ropts.steal_after_sec = 0.3;
  ropts.worker_deadline_sec = 30;  // heartbeats keep the slow worker alive
  auto serve = std::async(std::launch::async, [&] {
    return serve_campaign(spec, serve_options(out, true), ropts);
  });
  const Ports ports = wait_ports(ports_path);
  ASSERT_NE(ports.port, 0);

  // The straggle is a property of the HOST, not the task (a slow machine,
  // a noisy neighbour): worker 1 grinds 3 s on anything it is handed,
  // worker 2 is fast. Worker 1 connects first and takes one task; worker 2
  // finishes the other instantly, idles against a dry queue, and must
  // steal worker 1's task to finish the campaign.
  auto w1 = std::async(std::launch::async, [&] {
    return run_remote_worker(worker_options(ports.port, 1),
                             test_setup(fake_runner(3.0)));
  });
  sleep_sec(0.2);  // let the slow worker claim its task first
  auto w2 = std::async(std::launch::async, [&] {
    return run_remote_worker(worker_options(ports.port, 1),
                             test_setup(fake_runner()));
  });
  const auto t0 = Clock::now();
  const CampaignReport report = serve.get();
  const double elapsed = seconds_since(t0);
  EXPECT_EQ(report.ok, 2u);
  EXPECT_LT(elapsed, 2.5) << "the steal must finish the campaign while the "
                             "straggler is still grinding";
  EXPECT_EQ(count_lines(out), 2u) << "first record per task wins; the "
                                     "straggler's late duplicate is dropped";
  w1.get();
  w2.get();
  std::remove(out.c_str());
  std::remove(ports_path.c_str());
}

TEST(RemoteCampaign, ResumeSkipsStoredTasksAndServesOnlyTheRest) {
  const SweepSpec spec = tiny_spec({0x5eed, 0x1111, 0x2222, 0x3333});
  const auto tasks = spec.expand();
  ASSERT_EQ(tasks.size(), 4u);
  const std::string out = temp_path("resume") + ".jsonl";
  const std::string ports_path = temp_path("resume_ports");
  {
    // A previous run finished two tasks and died mid-append on a third.
    std::ofstream f(out, std::ios::binary);
    f << to_jsonl(ok_record(tasks[0])) << "\n"
      << to_jsonl(ok_record(tasks[1])) << "\n"
      << to_jsonl(ok_record(tasks[2])).substr(0, 50);
  }

  RemoteOptions ropts;
  ropts.bind = {"127.0.0.1", 0};
  ropts.port_file = ports_path;
  auto serve = std::async(std::launch::async, [&] {
    return serve_campaign(spec, serve_options(out, false), ropts);
  });
  const Ports ports = wait_ports(ports_path);
  ASSERT_NE(ports.port, 0);
  auto w = std::async(std::launch::async, [&] {
    return run_remote_worker(worker_options(ports.port, 2),
                             test_setup(fake_runner()));
  });
  const CampaignReport report = serve.get();
  EXPECT_TRUE(w.get().done);
  EXPECT_EQ(report.skipped, 2u);
  EXPECT_EQ(report.ran, 2u) << "the torn record is not a record";
  EXPECT_EQ(report.ok, 2u);
  EXPECT_EQ(report.records.size(), 4u);

  // The healed store holds each task exactly once (the torn line stays as
  // an ignorable isolated line).
  EXPECT_EQ(load_records(out).size(), 4u);
  ResultStore store(out);
  for (const auto& t : tasks) EXPECT_EQ(store.status(t.id()), "ok");
  std::remove(out.c_str());
  std::remove(ports_path.c_str());
}

TEST(RemoteCampaign, FullyResumedCampaignReturnsWithoutListening) {
  const SweepSpec spec = tiny_spec({0x5eed, 0x1111});
  const auto tasks = spec.expand();
  const std::string out = temp_path("noop") + ".jsonl";
  const std::string ports_path = temp_path("noop_ports");
  {
    std::ofstream f(out, std::ios::binary);
    for (const auto& t : tasks) f << to_jsonl(ok_record(t)) << "\n";
  }
  RemoteOptions ropts;
  ropts.bind = {"127.0.0.1", 0};
  ropts.port_file = ports_path;
  const CampaignReport report =
      serve_campaign(spec, serve_options(out, false), ropts);
  EXPECT_EQ(report.skipped, 2u);
  EXPECT_EQ(report.ran, 0u);
  EXPECT_EQ(report.records.size(), 2u);
  EXPECT_FALSE(std::ifstream(ports_path).good())
      << "nothing to serve: the coordinator must not bind or advertise";
  std::remove(out.c_str());
}

TEST(RemoteCampaign, StatusEndpointServesProgressJsonOverHttp) {
  const SweepSpec spec = tiny_spec({0x5eed, 0x1111});
  const std::string out = temp_path("status") + ".jsonl";
  const std::string ports_path = temp_path("status_ports");

  RemoteOptions ropts;
  ropts.bind = {"127.0.0.1", 0};
  ropts.status = true;
  ropts.status_bind = {"127.0.0.1", 0};
  ropts.port_file = ports_path;
  auto serve = std::async(std::launch::async, [&] {
    return serve_campaign(spec, serve_options(out, true), ropts);
  });
  const Ports ports = wait_ports(ports_path);
  ASSERT_NE(ports.port, 0);
  ASSERT_NE(ports.status, 0);

  // Slow tasks keep the campaign alive long enough to poll the endpoint.
  auto w = std::async(std::launch::async, [&] {
    return run_remote_worker(worker_options(ports.port, 1),
                             test_setup(fake_runner(0.5)));
  });

  std::optional<obs::JsonValue> status;
  const auto t0 = Clock::now();
  while (!status && seconds_since(t0) < 10) {
    std::string err;
    const int fd = tcp_connect({"127.0.0.1", ports.status}, 2, &err);
    ASSERT_GE(fd, 0) << err;
    const std::string req = "GET / HTTP/1.0\r\n\r\n";
    ASSERT_EQ(::send(fd, req.data(), req.size(), 0),
              static_cast<ssize_t>(req.size()));
    std::string resp;
    char buf[4096];
    ssize_t n;
    while ((n = ::recv(fd, buf, sizeof buf, 0)) > 0)
      resp.append(buf, static_cast<std::size_t>(n));
    ::close(fd);
    const std::size_t body_at = resp.find("\r\n\r\n");
    if (body_at == std::string::npos) continue;
    EXPECT_EQ(resp.rfind("HTTP/1.0 200 OK", 0), 0u);
    EXPECT_NE(resp.find("Content-Type: application/json"),
              std::string::npos);
    status = obs::parse_json(resp.substr(body_at + 4));
  }
  ASSERT_TRUE(status) << "no parseable status snapshot within 10s";
  ASSERT_TRUE(status->is_object());
  const obs::JsonValue* campaign = status->get("campaign");
  ASSERT_NE(campaign, nullptr);
  EXPECT_EQ(campaign->str, "remote");
  const obs::JsonValue* total = status->get("total");
  ASSERT_NE(total, nullptr);
  EXPECT_DOUBLE_EQ(total->number, 2.0);
  ASSERT_NE(status->get("workers"), nullptr);
  EXPECT_TRUE(status->get("workers")->is_array());
  ASSERT_NE(status->get("eta_sec"), nullptr);
  ASSERT_NE(status->get("rate_tasks_per_sec"), nullptr);

  const CampaignReport report = serve.get();
  EXPECT_TRUE(w.get().done);
  EXPECT_EQ(report.ok, 2u);
  std::remove(out.c_str());
  std::remove(ports_path.c_str());
}

TEST(RemoteWorker, HeartbeatCoversTheHandshakeAndPrewarm) {
  // A prewarm (here: a slow setup callback) routinely outlasts the
  // coordinator's worker deadline; the worker must prove life the whole
  // time, not only after READY — and at the SPEC frame's fleet-wide
  // period, overriding its own much slower default.
  TcpListener listener;
  std::string err;
  ASSERT_TRUE(listener.open({"127.0.0.1", 0}, &err)) << err;

  WorkerOptions w = worker_options(listener.port(), 1);
  w.heartbeat_sec = 30;  // the SPEC below must override this
  auto worker = std::async(std::launch::async, [&] {
    return run_remote_worker(
        w, [](const RemoteSpec&, TaskRunner* r, SchedulerOptions*) {
          sleep_sec(0.6);  // stands in for a long checkpoint prewarm
          *r = fake_runner();
        });
  });

  int fd = -1;
  const auto t0 = Clock::now();
  while (fd < 0 && seconds_since(t0) < 5) {
    fd = listener.accept_fd();
    if (fd < 0) sleep_sec(0.01);
  }
  ASSERT_GE(fd, 0);
  FrameChannel ch(fd);
  const auto hello = expect_frame(ch);
  ASSERT_TRUE(hello);
  EXPECT_EQ(hello->rfind("HELLO", 0), 0u) << *hello;

  RemoteSpec spec;
  spec.heartbeat_sec = 0.05;
  ASSERT_TRUE(ch.send("SPEC " + encode_remote_spec(spec)));
  ASSERT_TRUE(ch.send("GO"));

  std::size_t pings_before_ready = 0;
  for (;;) {
    const auto frame = expect_frame(ch, 5);
    ASSERT_TRUE(frame) << "worker went silent before READY";
    if (frame->rfind("PING", 0) == 0) {
      ++pings_before_ready;
    } else {
      EXPECT_EQ(frame->rfind("READY", 0), 0u) << *frame;
      break;
    }
  }
  EXPECT_GE(pings_before_ready, 3u)
      << "no heartbeat during the pre-READY phase";
  ASSERT_TRUE(ch.send("DONE"));
  EXPECT_TRUE(worker.get().done);
}

TEST(RemoteCampaign, StatusEndpointAnswersAClientThatSendsNothing) {
  // The status reply must not wait for request bytes: a mute client (or a
  // slow-writing dashboard) gets its snapshot anyway, and — the real point
  // — never stalls the scheduling loop while it dawdles.
  const SweepSpec spec = tiny_spec({0x5eed});
  const std::string out = temp_path("mute") + ".jsonl";
  const std::string ports_path = temp_path("mute_ports");

  RemoteOptions ropts;
  ropts.bind = {"127.0.0.1", 0};
  ropts.status = true;
  ropts.status_bind = {"127.0.0.1", 0};
  ropts.port_file = ports_path;
  auto serve = std::async(std::launch::async, [&] {
    return serve_campaign(spec, serve_options(out, true), ropts);
  });
  const Ports ports = wait_ports(ports_path);
  ASSERT_NE(ports.port, 0);
  ASSERT_NE(ports.status, 0);

  auto w = std::async(std::launch::async, [&] {
    return run_remote_worker(worker_options(ports.port, 1),
                             test_setup(fake_runner(0.5)));
  });

  std::string err;
  const int fd = tcp_connect({"127.0.0.1", ports.status}, 2, &err);
  ASSERT_GE(fd, 0) << err;
  // Send nothing at all; the full HTTP response must still arrive.
  std::string resp;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof buf, 0)) > 0)
    resp.append(buf, static_cast<std::size_t>(n));
  ::close(fd);
  const std::size_t body_at = resp.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos) << resp;
  EXPECT_EQ(resp.rfind("HTTP/1.0 200 OK", 0), 0u);
  const auto status = obs::parse_json(resp.substr(body_at + 4));
  ASSERT_TRUE(status && status->is_object());
  ASSERT_NE(status->get("campaign"), nullptr);
  EXPECT_EQ(status->get("campaign")->str, "remote");

  const CampaignReport report = serve.get();
  EXPECT_TRUE(w.get().done);
  EXPECT_EQ(report.ok, 1u);
  std::remove(out.c_str());
  std::remove(ports_path.c_str());
}

}  // namespace
}  // namespace bsp::campaign
