// Assembler tests: directives, labels, pseudo-instructions, error reporting,
// and agreement with the hand encoders.
#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "isa/isa.hpp"

namespace bsp {
namespace {

AsmResult ok(const std::string& src) {
  AsmResult r = assemble(src);
  EXPECT_TRUE(r.ok()) << r.error_text();
  return r;
}

TEST(Assembler, EmptyProgram) {
  const AsmResult r = ok("");
  EXPECT_TRUE(r.program.text.empty());
  EXPECT_TRUE(r.program.data.empty());
}

TEST(Assembler, CommentsAndBlankLines) {
  const AsmResult r = ok("# a comment\n\n  \n.text\nmain:\n  nop # inline\n");
  ASSERT_EQ(r.program.text.size(), 1u);
  EXPECT_EQ(r.program.text[0], 0u);
}

TEST(Assembler, BasicInstructions) {
  const AsmResult r = ok(R"(
.text
main:
  addu $t0, $t1, $t2
  addiu $t0, $t0, -4
  lw $v0, 8($sp)
  sw $v0, -8($sp)
  sll $t3, $t4, 5
  sllv $t3, $t4, $t5
  mult $t0, $t1
  mflo $t2
  jr $ra
  syscall
)");
  const auto& t = r.program.text;
  ASSERT_EQ(t.size(), 10u);
  EXPECT_EQ(t[0], make_r3(Op::ADDU, R_T0, R_T1, R_T2).raw);
  EXPECT_EQ(t[1], make_iarith(Op::ADDIU, R_T0, R_T0, 0xfffc).raw);
  EXPECT_EQ(t[2], make_mem(Op::LW, R_V0, R_SP, 8).raw);
  EXPECT_EQ(t[3], make_mem(Op::SW, R_V0, R_SP, -8).raw);
  EXPECT_EQ(t[4], make_shift_imm(Op::SLL, R_T3, R_T4, 5).raw);
  EXPECT_EQ(t[5], make_shift_var(Op::SLLV, R_T3, R_T4, R_T5).raw);
  EXPECT_EQ(t[6], make_rsrt(Op::MULT, R_T0, R_T1).raw);
  EXPECT_EQ(t[7], make_rd(Op::MFLO, R_T2).raw);
  EXPECT_EQ(t[8], make_jr(R_RA).raw);
  EXPECT_EQ(t[9], make_syscall().raw);
}

TEST(Assembler, LabelsAndBranches) {
  const AsmResult r = ok(R"(
.text
main:
loop:
  addiu $t0, $t0, 1
  bne $t0, $t1, loop
  beq $t0, $t1, end
  j loop
end:
  nop
)");
  const auto& p = r.program;
  ASSERT_EQ(p.text.size(), 5u);
  EXPECT_EQ(p.symbol("loop"), p.text_base);
  EXPECT_EQ(p.symbol("end"), p.text_base + 16);
  // bne at pc+4 targets loop: offset = (loop - (pc+8))/4 = -2.
  EXPECT_EQ(p.text[1], make_br2(Op::BNE, R_T0, R_T1, -2).raw);
  EXPECT_EQ(p.text[2], make_br2(Op::BEQ, R_T0, R_T1, 1).raw);
  EXPECT_EQ(p.text[3], make_jump(Op::J, p.text_base).raw);
}

TEST(Assembler, ForwardReferences) {
  const AsmResult r = ok(R"(
.text
main:
  beq $0, $0, target
  nop
target:
  nop
)");
  EXPECT_EQ(r.program.text[0], make_br2(Op::BEQ, 0, 0, 1).raw);
}

TEST(Assembler, PseudoInstructions) {
  const AsmResult r = ok(R"(
.text
main:
  li $t0, 0x12345678
  la $t1, buf
  move $t2, $t3
  b main
  beqz $t0, main
  bnez $t0, main
.data
buf: .word 1
)");
  const auto& t = r.program.text;
  ASSERT_EQ(t.size(), 8u);  // li/la expand to 2 words each
  EXPECT_EQ(t[0], make_lui(R_T0, 0x1234).raw);
  EXPECT_EQ(t[1], make_iarith(Op::ORI, R_T0, R_T0, 0x5678).raw);
  EXPECT_EQ(t[2], make_lui(R_T1, r.program.data_base >> 16).raw);
  EXPECT_EQ(t[3],
            make_iarith(Op::ORI, R_T1, R_T1, r.program.data_base & 0xffff).raw);
  EXPECT_EQ(t[4], make_r3(Op::ADDU, R_T2, R_T3, R_ZERO).raw);
}

TEST(Assembler, DataDirectives) {
  const AsmResult r = ok(R"(
.data
w: .word 1, 2, 0xdeadbeef, -1
h: .half 0x1234, 7
b: .byte 1, 2, 3
s: .space 5
a: .align 2
w2: .word 42
str: .asciiz "hi\n"
)");
  const auto& p = r.program;
  EXPECT_EQ(p.symbol("w"), p.data_base);
  EXPECT_EQ(p.symbol("h"), p.data_base + 16);
  EXPECT_EQ(p.symbol("b"), p.data_base + 20);
  EXPECT_EQ(p.symbol("s"), p.data_base + 23);
  EXPECT_EQ(p.symbol("w2"), p.data_base + 28);  // aligned to 4
  EXPECT_EQ(p.symbol("str"), p.data_base + 32);
  // Little-endian layout.
  EXPECT_EQ(p.data[0], 1u);
  EXPECT_EQ(p.data[8], 0xefu);
  EXPECT_EQ(p.data[9], 0xbeu);
  EXPECT_EQ(p.data[12], 0xffu);
  EXPECT_EQ(p.data[16], 0x34u);
  EXPECT_EQ(p.data[17], 0x12u);
  EXPECT_EQ(p.data[32], 'h');
  EXPECT_EQ(p.data[33], 'i');
  EXPECT_EQ(p.data[34], '\n');
  EXPECT_EQ(p.data[35], 0u);
}

TEST(Assembler, WordCanHoldLabelAddresses) {
  const AsmResult r = ok(R"(
.data
ptrs: .word target, target+8
target: .word 0, 0, 0
)");
  const auto& p = r.program;
  const u32 target = p.symbol("target");
  EXPECT_EQ(p.data[0] | (p.data[1] << 8) | (p.data[2] << 16) |
                (u32{p.data[3]} << 24),
            target);
  EXPECT_EQ(p.data[4] | (p.data[5] << 8) | (p.data[6] << 16) |
                (u32{p.data[7]} << 24),
            target + 8);
}

TEST(Assembler, HiLoOperators) {
  const AsmResult r = ok(R"(
.text
main:
  lui $t0, %hi(buf)
  lw $t1, %lo(buf)($t0)
.data
  .space 4
buf: .word 99
)");
  const auto& p = r.program;
  EXPECT_EQ(p.text[0], make_lui(R_T0, p.symbol("buf") >> 16).raw);
  EXPECT_EQ(p.text[1],
            make_mem(Op::LW, R_T1, R_T0,
                     static_cast<i32>(p.symbol("buf") & 0xffff)).raw);
}

TEST(Assembler, EntryPointIsMain) {
  const AsmResult r = ok(".text\n  nop\nmain:\n  nop\n");
  EXPECT_EQ(r.program.entry, r.program.text_base + 4);
}

// --- error paths --------------------------------------------------------------

TEST(AssemblerErrors, UnknownMnemonic) {
  const AsmResult r = assemble(".text\n  bogus $t0, $t1\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error_text().find("unknown mnemonic"), std::string::npos);
  EXPECT_EQ(r.errors[0].line, 2u);
}

TEST(AssemblerErrors, UnknownSymbol) {
  const AsmResult r = assemble(".text\n  j nowhere\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error_text().find("unknown symbol"), std::string::npos);
}

TEST(AssemblerErrors, DuplicateLabel) {
  const AsmResult r = assemble(".text\nx:\n  nop\nx:\n  nop\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error_text().find("duplicate label"), std::string::npos);
}

TEST(AssemblerErrors, ImmediateOutOfRange) {
  EXPECT_FALSE(assemble(".text\n  addiu $t0, $t0, 70000\n").ok());
  EXPECT_FALSE(assemble(".text\n  andi $t0, $t0, 0x10000\n").ok());
  EXPECT_FALSE(assemble(".text\n  andi $t0, $t0, -1\n").ok());
  EXPECT_TRUE(assemble(".text\n  addiu $t0, $t0, -32768\n").ok());
  EXPECT_TRUE(assemble(".text\n  andi $t0, $t0, 0xffff\n").ok());
}

TEST(AssemblerErrors, ShiftAmountRange) {
  EXPECT_FALSE(assemble(".text\n  sll $t0, $t0, 32\n").ok());
  EXPECT_TRUE(assemble(".text\n  sll $t0, $t0, 31\n").ok());
}

TEST(AssemblerErrors, WrongOperandCount) {
  const AsmResult r = assemble(".text\n  addu $t0, $t1\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error_text().find("expects 3 operands"), std::string::npos);
}

TEST(AssemblerErrors, InstructionInDataSection) {
  EXPECT_FALSE(assemble(".data\n  addu $t0, $t1, $t2\n").ok());
}

TEST(AssemblerErrors, BadMemoryOperand) {
  EXPECT_FALSE(assemble(".text\n  lw $t0, $t1\n").ok());
  EXPECT_FALSE(assemble(".text\n  lw $t0, 4($nope)\n").ok());
}

TEST(AssemblerErrors, BranchOutOfRange) {
  // Build a program where the branch distance exceeds 15 bits of words.
  std::string src = ".text\nstart:\n";
  for (int i = 0; i < 33000; ++i) src += "  nop\n";
  src += "  beq $0, $0, start\n";
  EXPECT_FALSE(assemble(src).ok());
}

// Everything the disassembler prints for straight-line code should
// re-assemble to the same bits (labels excluded).
TEST(Assembler, DisassembleReassembleRoundTrip) {
  const std::vector<DecodedInst> insts = {
      make_r3(Op::ADD, 1, 2, 3),      make_r3(Op::SLTU, 4, 5, 6),
      make_shift_imm(Op::SRA, 7, 8, 9), make_shift_var(Op::SRLV, 1, 2, 3),
      make_iarith(Op::ADDIU, 1, 2, 0x8000),
      make_iarith(Op::ORI, 3, 4, 0xffff),
      make_lui(5, 0xabcd),            make_mem(Op::LBU, 6, 7, -128),
      make_mem(Op::SH, 8, 9, 256),    make_rsrt(Op::DIVU, 10, 11),
      make_rd(Op::MFHI, 12),          make_jr(31),
      make_syscall(),
  };
  for (const auto& d : insts) {
    const std::string text = ".text\n  " + disassemble(d, 0) + "\n";
    const AsmResult r = assemble(text);
    ASSERT_TRUE(r.ok()) << text << r.error_text();
    ASSERT_EQ(r.program.text.size(), 1u) << text;
    EXPECT_EQ(r.program.text[0], d.raw) << text;
  }
}

}  // namespace
}  // namespace bsp
