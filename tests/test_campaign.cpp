// Campaign engine tests: deterministic grid expansion, JSONL round-trips,
// checkpoint/resume, fault isolation with bounded retry, timeouts, and
// byte-determinism of the result store. Uses synthetic runners throughout
// (no simulation) except the one equivalence test that pins the production
// runner to simulate().
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <mutex>
#include <regex>
#include <set>
#include <sstream>
#include <thread>
#include <unistd.h>

#include <filesystem>

#include "campaign/builtin.hpp"
#include "campaign/campaign.hpp"
#include "campaign/ckpt_cache.hpp"
#include "campaign/progress.hpp"
#include "core/simulator.hpp"
#include "emu/checkpoint.hpp"
#include "workloads/workloads.hpp"

namespace bsp::campaign {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "bsp_campaign_" + name + "_" +
         std::to_string(::getpid()) + ".jsonl";
}

SweepSpec small_spec() {
  SweepSpec spec;
  spec.name = "unit";
  spec.workloads = {"li", "go", "bzip"};
  spec.seeds = {0x5eed, 0x1234};
  spec.instructions = 1000;
  spec.warmup = 0;
  MachinePoint base;
  base.label = "base";
  spec.machines.push_back(base);
  MachinePoint sliced;
  sliced.label = "full x2";
  sliced.kind = MachineKind::Sliced;
  sliced.slices = 2;
  sliced.techniques = kAllTechniques;
  spec.machines.push_back(sliced);
  return spec;
}

// Deterministic fake stats derived from the task id, so fake runs are
// reproducible and distinguishable per task.
SimStats fake_stats(const TaskSpec& task) {
  u64 h = 1469598103934665603ull;
  for (const char c : task.id()) h = (h ^ static_cast<u64>(c)) * 1099511628211ull;
  SimStats s;
  s.cycles = 1000 + h % 1000;
  s.committed = task.instructions;
  s.branches = h % 97;
  return s;
}

TaskRunner fake_runner() {
  return [](const TaskSpec& task) {
    AttemptResult r;
    r.stats = fake_stats(task);
    return r;
  };
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(SweepSpec, ExpansionIsDeterministicAndDuplicateFree) {
  const SweepSpec spec = small_spec();
  const auto a = spec.expand();
  const auto b = spec.expand();
  ASSERT_EQ(a.size(), 3u * 2u * 2u);
  std::set<std::string> ids;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id(), b[i].id());
    ids.insert(a[i].id());
  }
  EXPECT_EQ(ids.size(), a.size()) << "duplicate task ids in expansion";

  // Duplicated grid entries must collapse instead of producing dupes.
  SweepSpec dup = spec;
  dup.workloads.push_back("li");
  dup.seeds.push_back(0x5eed);
  dup.machines.push_back(dup.machines.front());
  EXPECT_EQ(dup.expand().size(), a.size());
}

TEST(SweepSpec, TaskIdEncodesEveryAxis) {
  // expand()[1] is the Sliced machine point — techniques/slices only enter
  // the id for non-Base kinds.
  const TaskSpec t = small_spec().expand()[1];
  auto changed = [&](auto mutate) {
    TaskSpec u = t;
    mutate(u);
    return u.id();
  };
  std::set<std::string> ids = {t.id()};
  ids.insert(changed([](TaskSpec& u) { u.workload = "vortex"; }));
  ids.insert(changed([](TaskSpec& u) { u.seed = 0xBEE5; }));
  ids.insert(changed([](TaskSpec& u) { u.instructions = 77; }));
  ids.insert(changed([](TaskSpec& u) { u.warmup = 33; }));
  ids.insert(changed([](TaskSpec& u) { u.machine.kind = MachineKind::Simple;
                                       u.machine.slices = 2; }));
  ids.insert(changed([](TaskSpec& u) { u.machine.techniques = 0x3; }));
  EXPECT_EQ(ids.size(), 7u);
}

TEST(ResultStore, JsonlRoundTripsAllFields) {
  TaskRecord rec;
  rec.task = small_spec().expand().front();
  rec.status = "ok";
  rec.attempts = 2;
  rec.duration_ms = 12.5;
  rec.stats = fake_stats(rec.task);
  rec.stats.way_mispredicts = 17;
  rec.stats.l1d_misses = 23;
  rec.stats.idle_cycles_skipped = 4321;
  rec.stats.host_seconds = 1.375;

  const auto back = parse_jsonl(to_jsonl(rec));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->task.id(), rec.task.id());
  EXPECT_EQ(back->status, "ok");
  EXPECT_EQ(back->attempts, 2u);
  EXPECT_EQ(back->stats.cycles, rec.stats.cycles);
  EXPECT_EQ(back->stats.committed, rec.stats.committed);
  EXPECT_EQ(back->stats.way_mispredicts, 17u);
  EXPECT_EQ(back->stats.l1d_misses, 23u);
  EXPECT_EQ(back->stats.idle_cycles_skipped, 4321u);
  EXPECT_DOUBLE_EQ(back->stats.host_seconds, 1.375);

  TaskRecord failed = rec;
  failed.status = "failed";
  failed.error = "co-simulation divergence: \"pc\" mismatch\n";
  const auto fback = parse_jsonl(to_jsonl(failed));
  ASSERT_TRUE(fback.has_value());
  EXPECT_EQ(fback->status, "failed");
  EXPECT_EQ(fback->error, failed.error);
}

TEST(ResultStore, UnescapeHandlesSurrogatesAndMalformedEscapes) {
  // Worker stderr tails can carry arbitrary \uXXXX escapes from external
  // writers. A valid pair must combine; an unpaired surrogate must decode
  // to U+FFFD (never to encoded-surrogate invalid UTF-8); bad hex must
  // pass the escape through verbatim, backslash included.
  TaskRecord rec;
  rec.task = small_spec().expand().front();
  rec.status = "failed";
  rec.error = "MARKER";
  std::string line = to_jsonl(rec);
  const std::string marker = "\"error\":\"MARKER\"";
  const std::size_t at = line.find(marker);
  ASSERT_NE(at, std::string::npos);
  line.replace(at, marker.size(),
               "\"error\":\"\\ud83d\\ude00 \\ud800x \\udc00 \\uZZZZ\"");
  const auto back = parse_jsonl(line);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->error,
            "\xF0\x9F\x98\x80 \xEF\xBF\xBDx \xEF\xBF\xBD \\uZZZZ");
}

TEST(ResultStore, IgnoresTornTrailingLine) {
  const std::string path = temp_path("torn");
  TaskRecord rec;
  rec.task = small_spec().expand().front();
  rec.status = "ok";
  rec.stats = fake_stats(rec.task);
  {
    std::ofstream out(path);
    out << to_jsonl(rec) << "\n";
    out << to_jsonl(rec).substr(0, 40);  // killed mid-append
  }
  ResultStore store(path);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_TRUE(store.has(rec.task.id()));
  std::remove(path.c_str());
}

TEST(ResultStore, LoadRecordsKeepsOnlyTheLastRecordPerTask) {
  // A store can legitimately hold several records for one task id: a retry
  // appended over a failure, or a remote re-dispatch that raced. Every
  // aggregation path must see one record per task — the LAST one — or
  // means and counts double-count.
  const std::string path = temp_path("dedup");
  const auto tasks = small_spec().expand();
  TaskRecord stale;
  stale.task = tasks[0];
  stale.status = "fail: injected";
  stale.error = "injected";
  TaskRecord fresh;
  fresh.task = tasks[0];
  fresh.status = "ok";
  fresh.stats = fake_stats(tasks[0]);
  fresh.attempts = 2;
  TaskRecord other;
  other.task = tasks[1];
  other.status = "ok";
  other.stats = fake_stats(tasks[1]);
  {
    std::ofstream out(path);
    out << to_jsonl(stale) << "\n"
        << to_jsonl(other) << "\n"
        << to_jsonl(fresh) << "\n";
  }
  const std::vector<TaskRecord> records = load_records(path);
  ASSERT_EQ(records.size(), 2u);
  // First-seen order is preserved; the duplicate is resolved in place.
  EXPECT_EQ(records[0].task.id(), tasks[0].id());
  EXPECT_EQ(records[0].status, "ok");
  EXPECT_EQ(records[0].attempts, 2u);
  EXPECT_EQ(records[1].task.id(), tasks[1].id());
  // ResultStore agrees (it is built on the same read path).
  ResultStore store(path);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.status(tasks[0].id()), "ok");
  std::remove(path.c_str());
}

TEST(Progress, ResumeRateAndEtaComeFromThisRunOnly) {
  // 90 of 100 tasks were satisfied by the resumed store. Five more finish
  // in the first 10 seconds of this run: the rate must be 0.5/s (not the
  // 9.5/s a naive done/elapsed over the full baseline would claim), and
  // the ETA must extrapolate only over the 5 genuinely remaining tasks.
  ProgressMeter meter("unit", 100, 90, /*enabled=*/false);
  ProgressSnapshot fresh = meter.snapshot_at(10.0);
  EXPECT_EQ(fresh.total, 100u);
  EXPECT_EQ(fresh.skipped, 90u);
  EXPECT_EQ(fresh.remaining, 10u);
  EXPECT_DOUBLE_EQ(fresh.rate, 0.0);
  EXPECT_LT(fresh.eta_sec, 0) << "no completions yet: ETA is unknown";
  for (int i = 0; i < 5; ++i) {
    TaskOutcome out;
    out.status = "ok";
    out.attempts = 1;
    meter.task_done(out);
  }
  const ProgressSnapshot s = meter.snapshot_at(10.0);
  EXPECT_EQ(s.done, 5u);
  EXPECT_EQ(s.remaining, 5u);
  EXPECT_DOUBLE_EQ(s.rate, 0.5);
  EXPECT_DOUBLE_EQ(s.eta_sec, 10.0);
}

TEST(Progress, OverfullResumeBaselineFloorsRemainingAtZero) {
  // A store can hold more satisfied tasks than the (narrowed) spec asks
  // for; remaining must floor at zero rather than wrap.
  ProgressMeter meter("unit", 4, 4, /*enabled=*/false);
  TaskOutcome out;
  out.status = "ok";
  meter.task_done(out);
  const ProgressSnapshot s = meter.snapshot_at(1.0);
  EXPECT_EQ(s.remaining, 0u);
  EXPECT_DOUBLE_EQ(s.eta_sec, 0.0);
}

TEST(Campaign, ResumeSkipsCompletedTasks) {
  const SweepSpec spec = small_spec();
  const std::string path = temp_path("resume");
  const auto tasks = spec.expand();

  // Simulate a killed run: records exist for the first 5 tasks only.
  {
    ResultStore store(path, /*truncate=*/true);
    for (std::size_t i = 0; i < 5; ++i) {
      TaskRecord rec;
      rec.task = tasks[i];
      rec.status = "ok";
      rec.stats = fake_stats(tasks[i]);
      store.append(rec);
    }
  }

  std::mutex m;
  std::map<std::string, int> calls;
  CampaignOptions options;
  options.out_path = path;
  options.progress = false;
  const auto report = run_campaign(
      spec,
      [&](const TaskSpec& task) {
        { std::lock_guard<std::mutex> lock(m); ++calls[task.id()]; }
        return fake_runner()(task);
      },
      options);

  EXPECT_EQ(report.total, tasks.size());
  EXPECT_EQ(report.skipped, 5u);
  EXPECT_EQ(report.ran, tasks.size() - 5);
  EXPECT_EQ(report.ok, tasks.size() - 5);
  EXPECT_EQ(report.records.size(), tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i)
    EXPECT_EQ(calls[tasks[i].id()], i < 5 ? 0 : 1) << tasks[i].id();

  // A full rerun against the same store runs nothing at all.
  const auto rerun = run_campaign(spec, fake_runner(), options);
  EXPECT_EQ(rerun.skipped, tasks.size());
  EXPECT_EQ(rerun.ran, 0u);
  std::remove(path.c_str());
}

TEST(Campaign, InjectedFailureIsRetriedThenRecordedWithoutAborting) {
  const SweepSpec spec = small_spec();
  const auto tasks = spec.expand();
  const std::string poison = tasks[3].id();   // always fails
  const std::string flaky = tasks[7].id();    // fails once, then succeeds
  const std::string path = temp_path("faults");

  std::mutex m;
  std::map<std::string, int> attempts;
  CampaignOptions options;
  options.out_path = path;
  options.fresh = true;
  options.progress = false;
  options.scheduler.jobs = 1;
  options.scheduler.max_attempts = 3;
  const auto report = run_campaign(
      spec,
      [&](const TaskSpec& task) -> AttemptResult {
        int n;
        { std::lock_guard<std::mutex> lock(m); n = ++attempts[task.id()]; }
        if (task.id() == poison) throw std::runtime_error("co-sim abort");
        if (task.id() == flaky && n == 1) {
          AttemptResult fail;
          fail.error = "transient divergence";
          return fail;
        }
        return fake_runner()(task);
      },
      options);

  EXPECT_EQ(report.ran, tasks.size());
  EXPECT_EQ(report.failed, 1u);
  EXPECT_EQ(report.ok, tasks.size() - 1);
  EXPECT_EQ(report.retried, 2u);  // the poison task and the flaky task
  EXPECT_EQ(attempts[poison], 3);
  EXPECT_EQ(attempts[flaky], 2);

  ResultStore store(path);
  const TaskRecord* poisoned = store.find(poison);
  ASSERT_NE(poisoned, nullptr);
  EXPECT_EQ(poisoned->status, "failed");
  EXPECT_EQ(poisoned->attempts, 3u);
  EXPECT_NE(poisoned->error.find("co-sim abort"), std::string::npos);
  const TaskRecord* flaked = store.find(flaky);
  ASSERT_NE(flaked, nullptr);
  EXPECT_EQ(flaked->status, "ok");
  EXPECT_EQ(flaked->attempts, 2u);

  // retry_failed reruns exactly the failed task.
  options.fresh = false;
  options.retry_failed = true;
  const auto retry = run_campaign(spec, fake_runner(), options);
  EXPECT_EQ(retry.ran, 1u);
  EXPECT_EQ(retry.ok, 1u);
  ResultStore after(path);
  EXPECT_EQ(after.status(poison), "ok");
  std::remove(path.c_str());
}

TEST(Campaign, TimedOutTaskIsRecordedAndDoesNotKillTheCampaign) {
  SweepSpec spec = small_spec();
  spec.workloads = {"li"};
  spec.seeds = {0x5eed};
  const auto tasks = spec.expand();
  ASSERT_EQ(tasks.size(), 2u);
  const std::string slow = tasks[0].id();
  const std::string path = temp_path("timeout");

  CampaignOptions options;
  options.out_path = path;
  options.fresh = true;
  options.progress = false;
  options.scheduler.jobs = 1;
  options.scheduler.timeout_sec = 0.05;
  const auto report = run_campaign(
      spec,
      [&](const TaskSpec& task) -> AttemptResult {
        if (task.id() == slow)
          std::this_thread::sleep_for(std::chrono::milliseconds(500));
        return fake_runner()(task);
      },
      options);

  EXPECT_EQ(report.ran, 2u);
  EXPECT_EQ(report.failed, 1u);
  EXPECT_EQ(report.ok, 1u);
  ResultStore store(path);
  EXPECT_EQ(store.status(slow), "timeout");
  // Let the abandoned detached attempt drain before the test exits.
  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  std::remove(path.c_str());
}

TEST(Campaign, SameSpecAndSeedGivesByteIdenticalJsonlModuloDurations) {
  const SweepSpec spec = small_spec();
  const std::string path_a = temp_path("det_a");
  const std::string path_b = temp_path("det_b");
  CampaignOptions options;
  options.fresh = true;
  options.progress = false;
  options.scheduler.jobs = 1;  // sequential => record order is task order
  options.out_path = path_a;
  run_campaign(spec, fake_runner(), options);
  options.out_path = path_b;
  run_campaign(spec, fake_runner(), options);

  const std::regex duration("\"duration_ms\":[0-9.]+");
  const std::string a =
      std::regex_replace(read_file(path_a), duration, "\"duration_ms\":X");
  const std::string b =
      std::regex_replace(read_file(path_b), duration, "\"duration_ms\":X");
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

TEST(Campaign, SimRunnerMatchesLegacySimulate) {
  // The production runner must reproduce exactly what the legacy bench
  // drivers compute for the same configuration, program, and budgets.
  TaskSpec task;
  task.campaign = "equiv";
  task.workload = "li";
  task.seed = 0x5eed;
  task.machine.label = "full x2";
  task.machine.kind = MachineKind::Sliced;
  task.machine.slices = 2;
  task.machine.techniques = kAllTechniques;
  task.instructions = 5000;
  task.warmup = 1000;

  const AttemptResult r = make_sim_runner()(task);
  ASSERT_TRUE(r.error.empty()) << r.error;

  const Workload w = build_workload("li");
  const SimResult direct = simulate(bitsliced_machine(2, kAllTechniques),
                                    w.program, 5000, 1000);
  ASSERT_TRUE(direct.ok()) << direct.error;
  EXPECT_EQ(r.stats.cycles, direct.stats.cycles);
  EXPECT_EQ(r.stats.committed, direct.stats.committed);
  EXPECT_EQ(r.stats.branch_mispredicts, direct.stats.branch_mispredicts);
  EXPECT_EQ(r.stats.l1d_misses, direct.stats.l1d_misses);
  EXPECT_EQ(r.stats.way_mispredicts, direct.stats.way_mispredicts);
}

TEST(Builtin, CampaignsExpandAndStayAlignedWithTheLegacyStacks) {
  ASSERT_NE(find_campaign("fig11"), nullptr);
  ASSERT_NE(find_campaign("fig12"), nullptr);
  ASSERT_NE(find_campaign("abl_slice_width"), nullptr);
  EXPECT_EQ(find_campaign("nope"), nullptr);

  const SweepSpec fig11 = find_campaign("fig11")->make();
  // base + (1 simple + 5 techniques) per slice count.
  EXPECT_EQ(fig11.machines.size(), 1u + 2u * (1u + technique_order().size()));
  EXPECT_EQ(fig11.workloads, workload_names());
  EXPECT_EQ(fig11.instructions, 200'000u);
  EXPECT_EQ(fig11.warmup, 300'000u);

  // The final stack point must be the full paper configuration.
  const MachinePoint& last = fig11.machines.back();
  EXPECT_EQ(last.kind, MachineKind::Sliced);
  EXPECT_EQ(last.slices, 4u);
  EXPECT_EQ(last.techniques, kAllTechniques);

  for (const auto& c : builtin_campaigns()) {
    const auto tasks = c.make().expand();
    EXPECT_FALSE(tasks.empty()) << c.name;
    std::set<std::string> ids;
    for (const auto& t : tasks) ids.insert(t.id());
    EXPECT_EQ(ids.size(), tasks.size()) << c.name;
  }
}

TEST(SweepSpec, FastForwardEntersTaskIdOnlyWhenSet) {
  // Byte-compat: ff == 0 must produce the exact ids of old stores, so
  // existing campaign JSONL files still resume cleanly.
  SweepSpec spec = small_spec();
  const std::string plain = spec.expand().front().id();
  EXPECT_EQ(plain.find("/ff="), std::string::npos);

  spec.fast_forward = 5'000'000;
  const TaskSpec t = spec.expand().front();
  EXPECT_EQ(t.fast_forward, 5'000'000u);
  EXPECT_EQ(t.id(), plain + "/ff=5000000");
}

TEST(ResultStore, JsonlRoundTripsCheckpointCacheFields) {
  TaskRecord rec;
  rec.task = small_spec().expand().front();
  rec.task.fast_forward = 10'000'000;
  rec.status = "ok";
  rec.stats = fake_stats(rec.task);
  rec.ckpt_cache = "hit";
  rec.ffwd_sec = 2.25;

  const std::string line = to_jsonl(rec);
  EXPECT_NE(line.find("\"fast_forward\":10000000"), std::string::npos);
  const auto back = parse_jsonl(line);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->task.id(), rec.task.id());
  EXPECT_EQ(back->task.fast_forward, 10'000'000u);
  EXPECT_EQ(back->ckpt_cache, "hit");
  EXPECT_DOUBLE_EQ(back->ffwd_sec, 2.25);

  // Records without fast-forward keep the legacy shape: no new keys.
  TaskRecord legacy;
  legacy.task = small_spec().expand().front();
  legacy.status = "ok";
  legacy.stats = fake_stats(legacy.task);
  const std::string old_line = to_jsonl(legacy);
  EXPECT_EQ(old_line.find("fast_forward"), std::string::npos);
  EXPECT_EQ(old_line.find("ckpt_cache"), std::string::npos);
  const auto lback = parse_jsonl(old_line);
  ASSERT_TRUE(lback.has_value());
  EXPECT_EQ(lback->task.fast_forward, 0u);
  EXPECT_TRUE(lback->ckpt_cache.empty());
  EXPECT_DOUBLE_EQ(lback->ffwd_sec, 0.0);
}

TEST(CkptCache, MissMaterialisesThenHitsAndSurvivesCorruption) {
  const std::string dir =
      testing::TempDir() + "bsp_ckptcache_" + std::to_string(::getpid());
  std::filesystem::create_directories(dir);
  const Workload w = build_workload("li");

  const CkptFetch miss = fetch_checkpoint(dir, "li", 0x5eed, w.program, 30'000);
  ASSERT_TRUE(miss.ok()) << miss.error;
  EXPECT_FALSE(miss.hit);
  EXPECT_GE(miss.ffwd_sec, 0.0);
  EXPECT_EQ(miss.path, checkpoint_cache_path(dir, "li", 0x5eed, w.program,
                                             30'000));
  EXPECT_TRUE(std::filesystem::exists(miss.path));
  EXPECT_EQ(miss.checkpoint->retired, 30'000u);

  const CkptFetch hit = fetch_checkpoint(dir, "li", 0x5eed, w.program, 30'000);
  ASSERT_TRUE(hit.ok()) << hit.error;
  EXPECT_TRUE(hit.hit);
  EXPECT_EQ(hit.checkpoint->pc, miss.checkpoint->pc);
  EXPECT_EQ(hit.checkpoint->regs, miss.checkpoint->regs);
  EXPECT_EQ(hit.checkpoint->retired, miss.checkpoint->retired);
  EXPECT_EQ(hit.checkpoint->pages.size(), miss.checkpoint->pages.size());

  // Distinct fast-forward counts key distinct files.
  EXPECT_NE(checkpoint_cache_path(dir, "li", 0x5eed, w.program, 30'000),
            checkpoint_cache_path(dir, "li", 0x5eed, w.program, 60'000));

  // A truncated cache file is a miss, not an error: re-materialised and
  // overwritten with a good image.
  {
    std::ofstream out(miss.path, std::ios::binary | std::ios::trunc);
    out << "BSPC";  // magic only
  }
  const CkptFetch heal = fetch_checkpoint(dir, "li", 0x5eed, w.program, 30'000);
  ASSERT_TRUE(heal.ok()) << heal.error;
  EXPECT_FALSE(heal.hit);
  const CkptFetch again = fetch_checkpoint(dir, "li", 0x5eed, w.program,
                                           30'000);
  ASSERT_TRUE(again.ok()) << again.error;
  EXPECT_TRUE(again.hit);

  // The durable publish path (write tmp, fsync, rename, fsync dir) must
  // never leave `.tmp.<pid>` staging files behind, heal or no heal.
  for (const auto& entry : std::filesystem::directory_iterator(dir))
    EXPECT_EQ(entry.path().filename().string().find(".tmp."),
              std::string::npos)
        << "stale staging file: " << entry.path();
  std::filesystem::remove_all(dir);
}

TEST(CkptCache, ConcurrentMaterialisationRaceIsSafe) {
  // Two threads race the same cold cache entry. Each writes to a private
  // tmp file and renames into place, so both must succeed, produce
  // identical checkpoints, and leave one valid cache file that later
  // fetches hit — no torn file, no error, regardless of who wins the
  // rename.
  const std::string dir =
      testing::TempDir() + "bsp_ckptrace_" + std::to_string(::getpid());
  std::filesystem::create_directories(dir);
  const Workload w = build_workload("li");

  CkptFetch a, b;
  std::thread ta([&] {
    a = fetch_checkpoint(dir, "li", 0x5eed, w.program, 20'000);
  });
  std::thread tb([&] {
    b = fetch_checkpoint(dir, "li", 0x5eed, w.program, 20'000);
  });
  ta.join();
  tb.join();
  ASSERT_TRUE(a.ok()) << a.error;
  ASSERT_TRUE(b.ok()) << b.error;
  EXPECT_EQ(a.checkpoint->pc, b.checkpoint->pc);
  EXPECT_EQ(a.checkpoint->regs, b.checkpoint->regs);
  EXPECT_EQ(a.checkpoint->retired, 20'000u);
  EXPECT_TRUE(std::filesystem::exists(a.path));
  // No tmp litter survives the race.
  std::size_t files = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    (void)e;
    ++files;
  }
  EXPECT_EQ(files, 1u);

  const CkptFetch after = fetch_checkpoint(dir, "li", 0x5eed, w.program,
                                           20'000);
  ASSERT_TRUE(after.ok()) << after.error;
  EXPECT_TRUE(after.hit);
  std::filesystem::remove_all(dir);
}

TEST(Campaign, SimRunnerMemoisesTheCheckpointSoOneTaskPaysTheMiss) {
  // Within one runner (one sweep), concurrent tasks sharing a
  // (workload, seed, ff) group must fast-forward once: the shared-future
  // memo makes exactly one task the payer ("miss"); every other task
  // reports "hit" even when they all start simultaneously.
  const std::string dir =
      testing::TempDir() + "bsp_ckptmemo_" + std::to_string(::getpid());
  std::filesystem::create_directories(dir);
  RunnerOptions ropts;
  ropts.ckpt_cache_dir = dir;
  const TaskRunner runner = make_sim_runner(ropts);

  SweepSpec spec = small_spec();
  spec.workloads = {"li"};
  spec.seeds = {0x5eed};
  spec.fast_forward = 30'000;
  spec.instructions = 500;
  const auto tasks = spec.expand();
  ASSERT_EQ(tasks.size(), 2u);

  std::vector<AttemptResult> results(tasks.size());
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < tasks.size(); ++i)
    threads.emplace_back([&, i] { results[i] = runner(tasks[i]); });
  for (auto& t : threads) t.join();

  std::size_t misses = 0, hits = 0;
  for (const AttemptResult& r : results) {
    ASSERT_TRUE(r.error.empty()) << r.error;
    if (r.ckpt_cache == "miss") ++misses;
    if (r.ckpt_cache == "hit") ++hits;
  }
  EXPECT_EQ(misses, 1u);
  EXPECT_EQ(hits, tasks.size() - 1);
  std::filesystem::remove_all(dir);
}

TEST(ResultStore, JsonlRoundTripsSampledFields) {
  TaskRecord rec;
  rec.task = small_spec().expand().front();
  rec.status = "ok";
  rec.stats = fake_stats(rec.task);
  rec.sample_intervals = 4;
  rec.sample_warmup = 2'000;
  rec.ipc_mean = 1.537625;
  rec.ipc_ci95 = 0.078125;
  rec.samples = {{0, 0, 0, 1'000, 12'648, 1'000},
                 {1, 0, 1'000, 1'000, 9'967, 1'000}};

  const auto back = parse_jsonl(to_jsonl(rec));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->sample_intervals, 4u);
  EXPECT_EQ(back->sample_warmup, 2'000u);
  EXPECT_DOUBLE_EQ(back->ipc_mean, 1.537625);
  EXPECT_DOUBLE_EQ(back->ipc_ci95, 0.078125);
  EXPECT_EQ(back->samples, rec.samples);

  // Non-sampled records keep the legacy byte shape: no sampled keys at
  // all, and parsing leaves the fields zeroed.
  TaskRecord legacy;
  legacy.task = rec.task;
  legacy.status = "ok";
  legacy.stats = fake_stats(legacy.task);
  const std::string line = to_jsonl(legacy);
  EXPECT_EQ(line.find("sample_intervals"), std::string::npos);
  EXPECT_EQ(line.find("ipc_mean"), std::string::npos);
  EXPECT_EQ(line.find("\"samples\""), std::string::npos);
  const auto lback = parse_jsonl(line);
  ASSERT_TRUE(lback.has_value());
  EXPECT_EQ(lback->sample_intervals, 0u);
  EXPECT_TRUE(lback->samples.empty());
}

TEST(Campaign, WarmCheckpointCacheReproducesColdStatsWithAllHits) {
  // The acceptance property end to end: a fast-forwarding sweep run cold
  // (empty cache) and again warm (cache populated) must produce identical
  // SimStats per task, with the warm run reporting every task as a cache
  // hit and zero new materialisations.
  SweepSpec spec;
  spec.name = "ckptwarm";
  spec.workloads = {"li"};
  spec.seeds = {0x5eed};
  spec.instructions = 2'000;
  spec.warmup = 500;
  spec.fast_forward = 50'000;
  MachinePoint base;
  base.label = "base";
  spec.machines.push_back(base);
  MachinePoint sliced;
  sliced.label = "full x2";
  sliced.kind = MachineKind::Sliced;
  sliced.slices = 2;
  sliced.techniques = kAllTechniques;
  spec.machines.push_back(sliced);

  const std::string dir =
      testing::TempDir() + "bsp_ckptwarm_" + std::to_string(::getpid());
  std::filesystem::create_directories(dir);
  CampaignOptions options;
  options.fresh = true;
  options.progress = false;
  options.scheduler.ckpt_cache_dir = dir;
  RunnerOptions ropts;
  ropts.ckpt_cache_dir = dir;

  const std::string cold_path = temp_path("ckpt_cold");
  const std::string warm_path = temp_path("ckpt_warm");
  options.out_path = cold_path;
  const auto cold = run_campaign(spec, make_sim_runner(ropts), options);
  EXPECT_EQ(cold.ok, 2u);
  EXPECT_EQ(cold.prewarm.groups, 1u);
  EXPECT_EQ(cold.prewarm.materialised, 1u);
  EXPECT_EQ(cold.prewarm.reused, 0u);
  // The prewarm pass already paid the fast-forward, so the tasks
  // themselves all restore from cache.
  EXPECT_EQ(cold.ckpt_hits, 2u);
  EXPECT_EQ(cold.ckpt_misses, 0u);

  options.out_path = warm_path;
  const auto warm = run_campaign(spec, make_sim_runner(ropts), options);
  EXPECT_EQ(warm.ok, 2u);
  EXPECT_EQ(warm.prewarm.materialised, 0u);
  EXPECT_EQ(warm.prewarm.reused, 1u);
  EXPECT_EQ(warm.ckpt_hits, 2u);
  EXPECT_EQ(warm.ckpt_misses, 0u);

  // Identical stats task by task — the cache is invisible to timing.
  ASSERT_EQ(cold.records.size(), warm.records.size());
  for (std::size_t i = 0; i < cold.records.size(); ++i) {
    const SimStats& a = cold.records[i].stats;
    const SimStats& b = warm.records[i].stats;
    EXPECT_EQ(cold.records[i].task.id(), warm.records[i].task.id());
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.committed, b.committed);
    EXPECT_EQ(a.branch_mispredicts, b.branch_mispredicts);
    EXPECT_EQ(a.l1d_misses, b.l1d_misses);
    EXPECT_EQ(a.way_mispredicts, b.way_mispredicts);
  }

  std::remove(cold_path.c_str());
  std::remove(warm_path.c_str());
  std::filesystem::remove_all(dir);
}

TEST(Campaign, SummaryTableCoversTheGrid) {
  const SweepSpec spec = small_spec();
  const std::string path = temp_path("summary");
  CampaignOptions options;
  options.out_path = path;
  options.fresh = true;
  options.progress = false;
  const auto report = run_campaign(spec, fake_runner(), options);
  const Table table = summary_table(spec, report);
  // workload x seed rows plus the mean row.
  EXPECT_EQ(table.rows(), spec.workloads.size() * spec.seeds.size() + 1);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bsp::campaign
