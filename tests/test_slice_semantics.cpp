// Property tests connecting the scheduler's slice dependence rules to actual
// ALU semantics: if the scheduler claims result-slice s of an operation does
// not depend on some source slice, then flipping bits in that source slice
// must never change result-slice s. This justifies issuing slice-ops before
// the "unneeded" source slices exist.
#include <gtest/gtest.h>

#include "core/sliced_value.hpp"
#include "emu/emulator.hpp"
#include "util/rng.hpp"

namespace bsp {
namespace {

// Transitive dependency closure of result-slice `s`: the source slices it
// may read directly, plus everything reachable through the inter-slice
// chain in the class's dataflow order.
u32 closure(ExecClass cls, SliceOrder order, unsigned s,
            const SliceGeometry& g) {
  u32 mask = 0;
  switch (order) {
    case SliceOrder::LowToHigh:
      for (unsigned i = 0; i <= s; ++i)
        mask |= needed_source_slices(cls, i, g);
      break;
    case SliceOrder::HighToLow:
      for (unsigned i = s; i < g.count; ++i)
        mask |= needed_source_slices(cls, i, g);
      break;
    case SliceOrder::Any:
      mask = needed_source_slices(cls, s, g);
      break;
    case SliceOrder::Collect:
      mask = low_mask(g.count);
      break;
  }
  return mask;
}

CoreConfig full_cfg(unsigned slices) {
  CoreConfig c;
  c.slices = slices;
  c.techniques = kAllTechniques;
  return c;
}

struct OpCase {
  DecodedInst inst;
  bool uses_src1;  // whether src1 feeds the datapath (vs. shift amounts)
};

std::vector<OpCase> datapath_ops() {
  return {
      {make_r3(Op::ADDU, 1, 2, 3), true},
      {make_r3(Op::SUBU, 1, 2, 3), true},
      {make_r3(Op::AND, 1, 2, 3), true},
      {make_r3(Op::OR, 1, 2, 3), true},
      {make_r3(Op::XOR, 1, 2, 3), true},
      {make_r3(Op::NOR, 1, 2, 3), true},
      {make_shift_imm(Op::SLL, 1, 2, 5), false},
      {make_shift_imm(Op::SLL, 1, 2, 13), false},
      {make_shift_imm(Op::SRL, 1, 2, 3), false},
      {make_shift_imm(Op::SRL, 1, 2, 11), false},
      {make_shift_imm(Op::SRA, 1, 2, 7), false},
      {make_iarith(Op::ADDIU, 1, 2, 0x1234), true},
      {make_iarith(Op::ANDI, 1, 2, 0x0ff0), true},
      {make_iarith(Op::ORI, 1, 2, 0xf00f), true},
      {make_iarith(Op::XORI, 1, 2, 0xaaaa), true},
      {make_lui(1, 0xbeef), false},
  };
}

class SliceClosureTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(SliceClosureTest, UnneededSourceSlicesCannotAffectResultSlice) {
  const unsigned slices = GetParam();
  const SliceGeometry g{slices};
  const CoreConfig cfg = full_cfg(slices);
  Rng rng(777 + slices);

  for (const OpCase& op : datapath_ops()) {
    const ExecClass cls = op.inst.cls();
    const SliceOrder order = slice_order(cls, cfg);
    for (unsigned s = 0; s < g.count; ++s) {
      const u32 needed = closure(cls, order, s, g);
      for (int trial = 0; trial < 200; ++trial) {
        const u32 a = rng.next(), b = rng.next();
        const u32 base = alu_result(op.inst, a, b);
        // Perturb every slice outside the closure, in both operands (the
        // shift-amount operand of immediate shifts is architectural, not a
        // register, so only the rt value matters there).
        u32 noise = 0;
        for (unsigned k = 0; k < g.count; ++k)
          if (!(needed & (u32{1} << k))) noise |= g.mask(k);
        if (noise == 0) continue;
        const u32 flip = rng.next() & noise;
        const u32 a2 = op.uses_src1 ? (a ^ flip) : a;
        const u32 b2 = b ^ flip;
        const u32 perturbed = alu_result(op.inst, a2, b2);
        EXPECT_EQ(slice_get(g, base, s), slice_get(g, perturbed, s))
            << op_info(op.inst.op).mnemonic << " slices=" << slices
            << " result slice " << s << " depends on a slice the scheduler "
            << "does not wait for (a=" << a << " b=" << b << " flip=" << flip
            << ")";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Geometries, SliceClosureTest,
                         ::testing::Values(2u, 4u, 8u));

// The converse sanity check: the declared positional dependence is tight for
// logic ops — slice s of AND really does change when slice s of a source
// changes (no over-waiting... at least for one witness).
TEST(SliceClosure, LogicPositionalDependenceIsTight) {
  const SliceGeometry g{4};
  const auto op = make_r3(Op::XOR, 1, 2, 3);
  for (unsigned s = 0; s < 4; ++s) {
    const u32 a = 0, b = 0;
    const u32 flipped = alu_result(op, a ^ g.mask(s), b);
    EXPECT_NE(slice_get(g, flipped, s), slice_get(g, alu_result(op, a, b), s));
  }
}

// Early branch resolution soundness: if any slice of the operands differs,
// the branch outcome of beq/bne is already decided by that slice alone.
TEST(SliceClosure, BranchEqEarlyOutIsSound) {
  Rng rng(31337);
  const SliceGeometry g{4};
  const auto beq = make_br2(Op::BEQ, 1, 2, 4);
  for (int trial = 0; trial < 20000; ++trial) {
    const u32 a = rng.next();
    u32 b = rng.chance(1, 2) ? a : rng.next();
    const bool outcome = branch_outcome(beq, a, b);
    bool any_diff = false;
    for (unsigned s = 0; s < g.count; ++s)
      any_diff |= slice_get(g, a, s) != slice_get(g, b, s);
    // "some slice differs" must be exactly equivalent to "not taken".
    EXPECT_EQ(any_diff, !outcome);
  }
}

}  // namespace
}  // namespace bsp
