// ISA tests: encode/decode round trips, operand extraction, branch targets,
// and disassembly.
#include <gtest/gtest.h>

#include "isa/isa.hpp"
#include "util/rng.hpp"

namespace bsp {
namespace {

TEST(Isa, RegisterNames) {
  EXPECT_EQ(reg_name(0), "$zero");
  EXPECT_EQ(reg_name(R_SP), "$sp");
  EXPECT_EQ(reg_name(R_RA), "$ra");
  EXPECT_EQ(parse_reg("$t0"), R_T0);
  EXPECT_EQ(parse_reg("t0"), R_T0);
  EXPECT_EQ(parse_reg("$31"), 31u);
  EXPECT_EQ(parse_reg("31"), 31u);
  EXPECT_FALSE(parse_reg("$t99").has_value());
  EXPECT_FALSE(parse_reg("32").has_value());
  EXPECT_FALSE(parse_reg("").has_value());
}

TEST(Isa, MnemonicLookup) {
  EXPECT_EQ(op_from_mnemonic("add"), Op::ADD);
  EXPECT_EQ(op_from_mnemonic("beq"), Op::BEQ);
  EXPECT_EQ(op_from_mnemonic("lw"), Op::LW);
  EXPECT_FALSE(op_from_mnemonic("frobnicate").has_value());
}

// Every opcode's canonical builder must survive an encode/decode round trip.
TEST(Isa, EncodeDecodeRoundTripAllOpcodes) {
  std::vector<DecodedInst> insts = {
      make_r3(Op::ADD, 1, 2, 3),
      make_r3(Op::ADDU, 4, 5, 6),
      make_r3(Op::SUB, 7, 8, 9),
      make_r3(Op::SUBU, 10, 11, 12),
      make_r3(Op::AND, 13, 14, 15),
      make_r3(Op::OR, 16, 17, 18),
      make_r3(Op::XOR, 19, 20, 21),
      make_r3(Op::NOR, 22, 23, 24),
      make_r3(Op::SLT, 25, 26, 27),
      make_r3(Op::SLTU, 28, 29, 30),
      make_shift_imm(Op::SLL, 1, 2, 31),
      make_shift_imm(Op::SRL, 3, 4, 15),
      make_shift_imm(Op::SRA, 5, 6, 1),
      make_shift_var(Op::SLLV, 7, 8, 9),
      make_shift_var(Op::SRLV, 10, 11, 12),
      make_shift_var(Op::SRAV, 13, 14, 15),
      make_jr(31),
      make_jalr(31, 2),
      make_syscall(),
      make_rd(Op::MFHI, 5),
      make_rd(Op::MFLO, 6),
      make_rsrt(Op::MULT, 7, 8),
      make_rsrt(Op::MULTU, 9, 10),
      make_rsrt(Op::DIV, 11, 12),
      make_rsrt(Op::DIVU, 13, 14),
      make_br1(Op::BLTZ, 3, -5),
      make_br1(Op::BGEZ, 4, 100),
      make_jump(Op::J, 0x00400100),
      make_jump(Op::JAL, 0x00400200),
      make_br2(Op::BEQ, 1, 2, 10),
      make_br2(Op::BNE, 3, 4, -10),
      make_br1(Op::BLEZ, 5, 7),
      make_br1(Op::BGTZ, 6, -7),
      make_iarith(Op::ADDI, 1, 2, 0x8000),
      make_iarith(Op::ADDIU, 3, 4, 0x1234),
      make_iarith(Op::SLTI, 5, 6, 0xffff),
      make_iarith(Op::SLTIU, 7, 8, 0x7fff),
      make_iarith(Op::ANDI, 9, 10, 0xf0f0),
      make_iarith(Op::ORI, 11, 12, 0x0f0f),
      make_iarith(Op::XORI, 13, 14, 0xaaaa),
      make_lui(15, 0xdead),
      make_mem(Op::LB, 1, 2, -4),
      make_mem(Op::LH, 3, 4, 8),
      make_mem(Op::LW, 5, 6, 0x7ffc),
      make_mem(Op::LBU, 7, 8, 0),
      make_mem(Op::LHU, 9, 10, 2),
      make_mem(Op::SB, 11, 12, -1),
      make_mem(Op::SH, 13, 14, 6),
      make_mem(Op::SW, 15, 16, -32768),
  };
  for (const auto& d : insts) {
    const auto back = decode(d.raw);
    ASSERT_TRUE(back.has_value()) << disassemble(d, 0);
    EXPECT_EQ(back->op, d.op) << disassemble(d, 0);
    EXPECT_EQ(back->rs, d.rs);
    EXPECT_EQ(back->rt, d.rt);
    EXPECT_EQ(back->rd, d.rd);
    EXPECT_EQ(back->shamt, d.shamt);
    EXPECT_EQ(back->imm, d.imm);
    EXPECT_EQ(encode(*back), d.raw);
  }
}

TEST(Isa, DecodeRejectsIllegal) {
  // opcode 0x3f is unused.
  EXPECT_FALSE(decode(0xfc000000u).has_value());
  // funct 0x3f under SPECIAL is unused.
  EXPECT_FALSE(decode(0x0000003fu).has_value());
}

TEST(Isa, NopIsAllZero) {
  EXPECT_EQ(make_nop().raw, 0u);
  const auto d = decode(0);
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(d->is_nop());
  EXPECT_EQ(disassemble(*d, 0), "nop");
}

TEST(Isa, ImmValueKinds) {
  EXPECT_EQ(make_iarith(Op::ADDI, 1, 2, 0xffff).imm_value(), 0xffffffffu);
  EXPECT_EQ(make_iarith(Op::ANDI, 1, 2, 0xffff).imm_value(), 0xffffu);
  EXPECT_EQ(make_lui(1, 0x1234).imm_value(), 0x12340000u);
  EXPECT_EQ(make_br2(Op::BEQ, 0, 0, -1).imm_value(), 0xfffffffcu);
}

TEST(Isa, BranchTargets) {
  const u32 pc = 0x00400010;
  EXPECT_EQ(make_br2(Op::BEQ, 1, 2, 4).branch_target(pc), pc + 4 + 16);
  EXPECT_EQ(make_br2(Op::BNE, 1, 2, -4).branch_target(pc), pc + 4 - 16);
  EXPECT_EQ(make_jump(Op::J, 0x00400100).branch_target(pc), 0x00400100u);
}

TEST(Isa, SourceAndDestExtraction) {
  const auto add = make_r3(Op::ADD, 3, 1, 2);
  EXPECT_EQ(add.dest(), 3u);
  EXPECT_EQ(add.src1(), 1u);
  EXPECT_EQ(add.src2(), 2u);

  const auto sll = make_shift_imm(Op::SLL, 4, 5, 2);
  EXPECT_EQ(sll.dest(), 4u);
  EXPECT_EQ(sll.src1(), 0u);  // no rs
  EXPECT_EQ(sll.src2(), 5u);  // value in rt

  const auto sllv = make_shift_var(Op::SLLV, 6, 7, 8);
  EXPECT_EQ(sllv.src1(), 8u);  // amount
  EXPECT_EQ(sllv.src2(), 7u);  // value

  const auto lw = make_mem(Op::LW, 9, 10, 4);
  EXPECT_EQ(lw.dest(), 9u);
  EXPECT_EQ(lw.src1(), 10u);
  EXPECT_EQ(lw.src2(), 0u);  // loads have no data source

  const auto sw = make_mem(Op::SW, 9, 10, 4);
  EXPECT_EQ(sw.dest(), 0u);  // stores write no register
  EXPECT_EQ(sw.src1(), 10u);
  EXPECT_EQ(sw.src2(), 9u);  // store data

  const auto jal = make_jump(Op::JAL, 0x00400000);
  EXPECT_EQ(jal.dest(), static_cast<unsigned>(R_RA));

  const auto mult = make_rsrt(Op::MULT, 1, 2);
  EXPECT_EQ(mult.dest(), 0u);
  EXPECT_TRUE(mult.writes_hi_lo());
  EXPECT_TRUE(make_rd(Op::MFHI, 3).reads_hi_lo());
}

TEST(Isa, MemAccessMetadata) {
  EXPECT_EQ(make_mem(Op::LB, 1, 2, 0).mem_bytes(), 1u);
  EXPECT_EQ(make_mem(Op::LHU, 1, 2, 0).mem_bytes(), 2u);
  EXPECT_EQ(make_mem(Op::SW, 1, 2, 0).mem_bytes(), 4u);
  EXPECT_TRUE(make_mem(Op::LB, 1, 2, 0).mem_sign_extend());
  EXPECT_FALSE(make_mem(Op::LBU, 1, 2, 0).mem_sign_extend());
  EXPECT_EQ(make_r3(Op::ADD, 1, 2, 3).mem_bytes(), 0u);
}

TEST(Isa, ClassPredicates) {
  EXPECT_TRUE(make_br2(Op::BEQ, 1, 2, 0).is_cond_branch());
  EXPECT_TRUE(make_br1(Op::BGEZ, 1, 0).is_cond_branch());
  EXPECT_TRUE(make_jump(Op::J, 0).is_jump());
  EXPECT_TRUE(make_jr(31).is_jump());
  EXPECT_FALSE(make_r3(Op::ADD, 1, 2, 3).is_control());
  EXPECT_TRUE(make_mem(Op::LW, 1, 2, 0).is_load());
  EXPECT_TRUE(make_mem(Op::SW, 1, 2, 0).is_store());
}

TEST(Isa, DisassembleSamples) {
  EXPECT_EQ(disassemble(make_r3(Op::ADDU, R_T0, R_T1, R_T2), 0),
            "addu $t0, $t1, $t2");
  EXPECT_EQ(disassemble(make_mem(Op::LW, R_V0, R_SP, -8), 0),
            "lw $v0, -8($sp)");
  EXPECT_EQ(disassemble(make_shift_imm(Op::SLL, R_T0, R_T1, 3), 0),
            "sll $t0, $t1, 3");
  EXPECT_EQ(disassemble(make_lui(R_T0, 0x1002), 0), "lui $t0, 0x1002");
}

// Fuzz: decode(encode(x)) == x for random legal words; decode never crashes
// on arbitrary words.
TEST(Isa, DecodeFuzz) {
  Rng rng(99);
  unsigned legal = 0;
  for (int i = 0; i < 200000; ++i) {
    const u32 raw = rng.next();
    const auto d = decode(raw);
    if (d) {
      ++legal;
      // Re-encoding keeps every architecturally meaningful field (raw may
      // carry junk in don't-care fields, so compare the decoded views).
      const auto d2 = decode(encode(*d));
      ASSERT_TRUE(d2.has_value());
      EXPECT_EQ(d2->op, d->op);
      EXPECT_EQ(d2->rs, d->rs);
      EXPECT_EQ(d2->rt, d->rt);
      EXPECT_EQ(d2->rd, d->rd);
      EXPECT_EQ(d2->imm, d->imm);
    }
  }
  EXPECT_GT(legal, 0u);
}

}  // namespace
}  // namespace bsp
