// Workload tests: every kernel assembles, runs, terminates cleanly, and
// exhibits the qualitative characteristics its SPEC namesake is modelled on.
#include <gtest/gtest.h>

#include "trace/studies.hpp"
#include "trace/trace.hpp"
#include "workloads/workloads.hpp"

namespace bsp {
namespace {

class WorkloadTest : public ::testing::TestWithParam<std::string> {};

TEST_P(WorkloadTest, AssemblesAndInfoIsConsistent) {
  const WorkloadInfo info = workload_info(GetParam());
  EXPECT_EQ(info.name, GetParam());
  EXPECT_FALSE(info.description.empty());
  const Workload w = build_workload(GetParam());
  EXPECT_FALSE(w.program.text.empty());
  EXPECT_TRUE(w.program.has_symbol("main"));
}

TEST_P(WorkloadTest, TerminatesCleanlyWithFewIterations) {
  WorkloadParams params;
  params.iterations = 2;
  const Workload w = build_workload(GetParam(), params);
  Emulator emu(w.program);
  StepResult final;
  emu.run(5'000'000, &final);
  EXPECT_TRUE(emu.exited()) << GetParam() << " did not exit";
  EXPECT_EQ(emu.exit_code(), 0);
}

TEST_P(WorkloadTest, RunsHalfAMillionInstructionsWithoutFault) {
  const Workload w = build_workload(GetParam());
  const TraceResult tr = run_trace(w.program, 0, 500'000,
                                   [](const ExecRecord&) { return true; });
  EXPECT_EQ(tr.visited, 500'000u)
      << GetParam() << ": " << tr.final.fault;
}

TEST_P(WorkloadTest, DeterministicAcrossRuns) {
  const Workload a = build_workload(GetParam());
  const Workload b = build_workload(GetParam());
  EXPECT_EQ(a.program.text, b.program.text);
  EXPECT_EQ(a.program.data, b.program.data);
}

TEST_P(WorkloadTest, SeedChangesTheProgramOrItsData) {
  WorkloadParams p1, p2;
  p2.seed = p1.seed + 1;
  const std::string s1 = workload_source(GetParam(), p1);
  const std::string s2 = workload_source(GetParam(), p2);
  EXPECT_NE(s1, s2) << "seed must influence the generated kernel";
}

INSTANTIATE_TEST_SUITE_P(AllKernels, WorkloadTest,
                         ::testing::ValuesIn(workload_names()));

TEST(Workloads, ElevenBenchmarksInPaperOrder) {
  const auto& names = workload_names();
  ASSERT_EQ(names.size(), 11u);
  EXPECT_EQ(names.front(), "bzip");
  EXPECT_EQ(names.back(), "vpr");
}

TEST(Workloads, UnknownNameThrows) {
  EXPECT_THROW(build_workload("specfp"), std::runtime_error);
  EXPECT_THROW(workload_info("specfp"), std::runtime_error);
}

// Qualitative characteristics the characterisations rely on.

struct Profile {
  u64 instructions = 0;
  u64 loads = 0;
  u64 stores = 0;
  u64 branches = 0;
  double branch_accuracy = 0;
};

Profile profile(const std::string& name, u64 n = 300'000) {
  const Workload w = build_workload(name);
  EarlyBranchStudy branches;
  Profile p;
  run_trace(w.program, 10'000, n, [&](const ExecRecord& rec) {
    ++p.instructions;
    p.loads += rec.is_load;
    p.stores += rec.is_store;
    branches.observe(rec);
    return true;
  });
  p.branches = branches.branches();
  p.branch_accuracy = branches.accuracy();
  return p;
}

TEST(WorkloadCharacteristics, AllKernelsHaveLoadsAndBranches) {
  for (const auto& name : workload_names()) {
    const Profile p = profile(name, 100'000);
    EXPECT_GT(p.loads, p.instructions / 50) << name;
    EXPECT_GT(p.branches, p.instructions / 50) << name;
  }
}

TEST(WorkloadCharacteristics, GoIsLeastPredictable) {
  // The paper's Table 1: go has the suite's lowest accuracy (84 %), mcf the
  // highest (98 %). Check the ordering, not absolute values.
  const double go_acc = profile("go").branch_accuracy;
  const double mcf_acc = profile("mcf").branch_accuracy;
  EXPECT_LT(go_acc, 0.93);
  EXPECT_GT(mcf_acc, 0.93);
  EXPECT_LT(go_acc, mcf_acc);
}

TEST(WorkloadCharacteristics, McfThrashesTheL1) {
  // Stream mcf's data accesses through the Table-2 L1D and expect a miss
  // rate far above bzip's sequential scan.
  const auto miss_rate = [](const std::string& name) {
    const Workload w = build_workload(name);
    Cache l1d(CacheGeometry{64 * 1024, 64, 4});
    run_trace(w.program, 10'000, 200'000, [&](const ExecRecord& rec) {
      if (rec.is_load || rec.is_store) l1d.access(rec.mem_addr, rec.is_store);
      return true;
    });
    return l1d.miss_rate();
  };
  EXPECT_GT(miss_rate("mcf"), 0.25);
  EXPECT_LT(miss_rate("bzip"), 0.05);
}

TEST(WorkloadCharacteristics, VortexExercisesStoreForwarding) {
  // vortex writes a field and reads it straight back: its loads should find
  // matching prior stores in a 32-entry window far more often than ijpeg's.
  const auto forward_fraction = [](const std::string& name) {
    const Workload w = build_workload(name);
    LsqAliasStudy study(32);
    run_trace(w.program, 10'000, 200'000, [&](const ExecRecord& rec) {
      study.observe(rec);
      return true;
    });
    return study.fraction(kDisambigBits - 1,
                          AliasCategory::SingleMatchOneStore) +
           study.fraction(kDisambigBits - 1,
                          AliasCategory::SingleMatchMultStores) +
           study.fraction(kDisambigBits - 1,
                          AliasCategory::MultMatchSameAddr);
  };
  EXPECT_GT(forward_fraction("vortex"), 0.2);
}

TEST(WorkloadCharacteristics, LiReproducesFigure5Idiom) {
  // The generated li kernel must contain the lbu/andi/bne sequence.
  const std::string src = workload_source("li");
  const auto lbu = src.find("lbu $3");
  ASSERT_NE(lbu, std::string::npos);
  const auto andi = src.find("andi $2, $3, 0x0001", lbu);
  ASSERT_NE(andi, std::string::npos);
  const auto bne = src.find("bne $2, $0", andi);
  EXPECT_NE(bne, std::string::npos);
}

}  // namespace
}  // namespace bsp
