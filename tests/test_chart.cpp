// ASCII chart renderer tests.
#include <gtest/gtest.h>

#include <sstream>

#include "util/chart.hpp"

namespace bsp {
namespace {

std::string render_line(LineChart& c) {
  std::stringstream ss;
  c.print(ss);
  return ss.str();
}

TEST(LineChart, EmptyChartSaysSo) {
  LineChart c("empty");
  EXPECT_NE(render_line(c).find("(no data)"), std::string::npos);
}

TEST(LineChart, TitleLegendAndAxesAppear) {
  LineChart c("my title", 32, 8);
  c.add_series("alpha", {0, 1, 2, 3});
  c.add_series("beta", {3, 2, 1, 0});
  c.set_x_label("time");
  const std::string out = render_line(c);
  EXPECT_NE(out.find("my title"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("beta"), std::string::npos);
  EXPECT_NE(out.find("time"), std::string::npos);
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find('o'), std::string::npos);
}

TEST(LineChart, MonotoneSeriesRendersMonotone) {
  LineChart c("mono", 16, 8);
  std::vector<double> v;
  for (int i = 0; i < 16; ++i) v.push_back(i);
  c.add_series("up", std::move(v));
  const std::string out = render_line(c);
  // Column of the first '*' on each row must decrease top to bottom being an
  // increasing series: the topmost row holds the rightmost points.
  std::vector<int> first_col;
  std::stringstream ss(out);
  std::string line;
  std::getline(ss, line);  // title
  while (std::getline(ss, line)) {
    const auto bar = line.find('|');
    if (bar == std::string::npos) break;
    const auto star = line.find('*', bar);
    if (star != std::string::npos) first_col.push_back(static_cast<int>(star));
  }
  ASSERT_GE(first_col.size(), 4u);
  for (std::size_t i = 1; i < first_col.size(); ++i)
    EXPECT_LT(first_col[i], first_col[i - 1]);
}

TEST(LineChart, FixedRangeClamps) {
  LineChart c("clamped", 16, 6);
  c.set_y_range(0.0, 1.0);
  c.add_series("big", {5.0, 5.0, 5.0});  // all above the range: top row
  const std::string out = render_line(c);
  const auto first_row = out.find('|');
  ASSERT_NE(first_row, std::string::npos);
  EXPECT_NE(out.find('*', first_row), std::string::npos);
  // y labels show the fixed range, not the data.
  EXPECT_NE(out.find("1"), std::string::npos);
}

TEST(BarChart, RendersBarsProportionally) {
  BarChart c("bars", 20);
  c.add_bar("half", 0.5);
  c.add_bar("full", 1.0);
  std::stringstream ss;
  c.print(ss);
  const std::string out = ss.str();
  const auto count_eq = [&](const char* label) {
    const auto pos = out.find(label);
    EXPECT_NE(pos, std::string::npos);
    const auto start = out.find('|', pos);
    const auto end = out.find('\n', start);
    return std::count(out.begin() + static_cast<long>(start),
                      out.begin() + static_cast<long>(end), '=');
  };
  const auto half = count_eq("half");
  const auto full = count_eq("full");
  EXPECT_GT(full, half);
  EXPECT_NEAR(static_cast<double>(half) / full, 0.5, 0.15);
}

TEST(BarChart, ReferenceMarkerShown) {
  BarChart c("ref", 20);
  c.set_reference(1.0);
  c.add_bar("x", 0.5);
  std::stringstream ss;
  c.print(ss);
  EXPECT_NE(ss.str().find('|', ss.str().find("x ")), std::string::npos);
}

}  // namespace
}  // namespace bsp
