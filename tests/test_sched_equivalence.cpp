// Scheduler-equivalence goldens: the event-driven scheduler core must be
// bit-identical, across every SimStats counter, to the per-cycle scan
// scheduler it replaced.
//
// The expected values in sched_equivalence_golden.inc were produced by the
// pre-rewrite scan-based scheduler (the tree at the parent of the
// event-driven rewrite) running exactly the matrix below: gzip and li, 12k
// measured commits after a 3k-commit warm-up, on the baseline machine, both
// slice-2 and slice-4 cumulative technique stacks (the Figure 11/12 sweep
// points), the extended slice-4 configuration, and one checkpoint-restored
// run. Any divergence here means the event-driven queues selected,
// replayed, or retired something on a different cycle than the scan would
// have — a scheduling bug, not noise. Regenerate the .inc only from a
// scan-based build, never from the event-driven one under test.
#include <gtest/gtest.h>

#include <array>
#include <sstream>
#include <string>
#include <vector>

#include "config/machine_config.hpp"
#include "core/simulator.hpp"
#include "emu/checkpoint.hpp"
#include "sampling/sampled.hpp"
#include "workloads/workloads.hpp"

namespace bsp {
namespace {

constexpr u64 kCommits = 12'000;
constexpr u64 kWarmup = 3'000;

// Counter order must match the dump in the golden generator.
using StatsVec = std::array<u64, 21>;

StatsVec flatten(const SimStats& s) {
  return {s.cycles,
          s.committed,
          s.dispatched,
          s.bogus_dispatched,
          s.branches,
          s.branch_mispredicts,
          s.early_resolved_branches,
          s.loads,
          s.stores,
          s.load_forwards,
          s.loads_issued_partial_lsq,
          s.partial_tag_accesses,
          s.way_mispredicts,
          s.early_miss_detects,
          s.load_replays,
          s.op_replays,
          s.spec_forwards,
          s.spec_forward_misses,
          s.narrow_operands,
          s.l1d_hits,
          s.l1d_misses};
}

constexpr const char* kFieldNames[21] = {
    "cycles",          "committed",
    "dispatched",      "bogus_dispatched",
    "branches",        "branch_mispredicts",
    "early_resolved_branches", "loads",
    "stores",          "load_forwards",
    "loads_issued_partial_lsq", "partial_tag_accesses",
    "way_mispredicts", "early_miss_detects",
    "load_replays",    "op_replays",
    "spec_forwards",   "spec_forward_misses",
    "narrow_operands", "l1d_hits",
    "l1d_misses"};

struct GoldenEntry {
  const char* tag;
  StatsVec expected;
};

const GoldenEntry kGolden[] = {
#include "sched_equivalence_golden.inc"
};

const GoldenEntry* find_golden(const std::string& tag) {
  for (const GoldenEntry& g : kGolden)
    if (tag == g.tag) return &g;
  return nullptr;
}

void expect_matches_golden(const std::string& tag, const SimStats& s) {
  const GoldenEntry* g = find_golden(tag);
  ASSERT_NE(g, nullptr) << "no golden entry for " << tag
                        << " — regenerate the .inc from a scan-based build";
  const StatsVec got = flatten(s);
  for (std::size_t i = 0; i < got.size(); ++i)
    EXPECT_EQ(got[i], g->expected[i])
        << tag << ": counter '" << kFieldNames[i]
        << "' diverged from the scan-based scheduler";
}

TEST(SchedEquivalence, BaselineMachine) {
  for (const char* wname : {"gzip", "li"}) {
    const Workload w = build_workload(wname);
    const SimResult r = simulate(base_machine(), w.program, kCommits, kWarmup);
    ASSERT_TRUE(r.ok()) << r.error;
    expect_matches_golden(std::string(wname) + "/base", r.stats);
  }
}

TEST(SchedEquivalence, TechniqueStacksSlice2) {
  for (const char* wname : {"gzip", "li"}) {
    const Workload w = build_workload(wname);
    for (const StackPoint& p : technique_stack(2)) {
      const SimResult r = simulate(p.config, w.program, kCommits, kWarmup);
      ASSERT_TRUE(r.ok()) << p.label << ": " << r.error;
      expect_matches_golden(std::string(wname) + "/s2/" + p.label, r.stats);
    }
  }
}

TEST(SchedEquivalence, TechniqueStacksSlice4) {
  for (const char* wname : {"gzip", "li"}) {
    const Workload w = build_workload(wname);
    for (const StackPoint& p : technique_stack(4)) {
      const SimResult r = simulate(p.config, w.program, kCommits, kWarmup);
      ASSERT_TRUE(r.ok()) << p.label << ": " << r.error;
      expect_matches_golden(std::string(wname) + "/s4/" + p.label, r.stats);
    }
  }
}

TEST(SchedEquivalence, ExtendedTechniquesWithSumAddressed) {
  const MachineConfig cfg = bitsliced_machine(
      4, kExtendedTechniques | static_cast<unsigned>(Technique::SumAddressed));
  for (const char* wname : {"gzip", "li"}) {
    const Workload w = build_workload(wname);
    const SimResult r = simulate(cfg, w.program, kCommits, kWarmup);
    ASSERT_TRUE(r.ok()) << r.error;
    expect_matches_golden(std::string(wname) + "/s4/extended+sum", r.stats);
  }
}

// Larger instruction windows: the SoA slab layout is indexed by RUU slot,
// so 128- and 256-entry windows pin the scheduler at sizes where slab
// strides, wheel occupancy and the LSQ walk all differ from the 64-entry
// default. LSQ scales with the window as in the paper's machine (RUU/2).
TEST(SchedEquivalence, LargerRuuWindows) {
  for (const unsigned ruu : {128u, 256u}) {
    for (const char* wname : {"gzip", "li"}) {
      const Workload w = build_workload(wname);
      const std::string prefix =
          std::string(wname) + "/ruu" + std::to_string(ruu) + "/";

      MachineConfig base = base_machine();
      base.core.ruu_entries = ruu;
      base.core.lsq_entries = ruu / 2;
      const SimResult rb = simulate(base, w.program, kCommits, kWarmup);
      ASSERT_TRUE(rb.ok()) << rb.error;
      expect_matches_golden(prefix + "base", rb.stats);

      MachineConfig all = bitsliced_machine(4, kAllTechniques);
      all.core.ruu_entries = ruu;
      all.core.lsq_entries = ruu / 2;
      const SimResult ra = simulate(all, w.program, kCommits, kWarmup);
      ASSERT_TRUE(ra.ok()) << ra.error;
      expect_matches_golden(prefix + "s4/alltech", ra.stats);
    }
  }
}

// A checkpoint-restored run exercises the scheduler against warm
// microarchitectural state (non-empty caches/predictor come from the
// fast-forwarded functional machine, pipeline starts empty at an arbitrary
// program point).
TEST(SchedEquivalence, CheckpointRestoredRun) {
  const Workload w = build_workload("gzip");
  const auto ckpt = fast_forward(w.program, 40'000);
  ASSERT_TRUE(ckpt.has_value());
  Simulator sim(bitsliced_machine(4, kAllTechniques), w.program, *ckpt);
  const SimResult r = sim.run(kCommits, kWarmup);
  ASSERT_TRUE(r.ok()) << r.error;
  expect_matches_golden("gzip/ckpt40k/s4/alltech", r.stats);
}

// The checkpoint *cache* must also be invisible: serialising the
// checkpoint to BSPC bytes and loading it back — exactly what a sweep
// worker does when it restores from the shared on-disk cache — has to
// reproduce the same golden as the directly fast-forwarded run above.
TEST(SchedEquivalence, CacheRoundTrippedCheckpointMatchesGolden) {
  const Workload w = build_workload("gzip");
  const auto ckpt = fast_forward(w.program, 40'000);
  ASSERT_TRUE(ckpt.has_value());
  std::stringstream buf;
  ASSERT_TRUE(save_checkpoint(*ckpt, buf));
  std::string error;
  const auto loaded = load_checkpoint(buf, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  Simulator sim(bitsliced_machine(4, kAllTechniques), w.program, *loaded);
  const SimResult r = sim.run(kCommits, kWarmup);
  ASSERT_TRUE(r.ok()) << r.error;
  expect_matches_golden("gzip/ckpt40k/s4/alltech", r.stats);
}

// The sampled-simulation engine with a single interval must *be* the
// monolithic run: the planner keeps interval 0 on the run's own boundary,
// so the stitched aggregate has to reproduce the scan-scheduler golden
// bit for bit — any divergence means sampling perturbed the simulation
// itself, not just the estimate.
TEST(SchedEquivalence, OneIntervalSampledRunMatchesGolden) {
  const Workload w = build_workload("gzip");
  sampling::SampleOptions opts;
  opts.intervals = 1;
  const sampling::SampledResult s = sampling::run_sampled(
      base_machine(), w.program, "gzip", 0x5eed, kCommits, kWarmup,
      /*fast_forward=*/0, opts);
  ASSERT_TRUE(s.ok()) << s.error;
  expect_matches_golden("gzip/base", s.aggregate);
}

// Co-simulation cadence is a pure check: spot and off runs must commit
// the identical schedule, so they reproduce the same scan-scheduler
// goldens as the default full-cadence run — bit for bit, every counter.
TEST(SchedEquivalence, CosimSpotAndOffMatchGoldens) {
  SimOptions spot;
  spot.cosim = CosimMode::kSpot;
  spot.cosim_period = 64;
  SimOptions off;
  off.cosim = CosimMode::kOff;
  for (const SimOptions* so : {&spot, &off}) {
    for (const char* wname : {"gzip", "li"}) {
      const Workload w = build_workload(wname);
      Simulator sim(base_machine(), w.program);
      sim.set_options(*so);
      const SimResult r = sim.run(kCommits, kWarmup);
      ASSERT_TRUE(r.ok()) << cosim_name(*so) << ": " << r.error;
      expect_matches_golden(std::string(wname) + "/base", r.stats);
    }
    const Workload gzip = build_workload("gzip");
    for (const StackPoint& p : technique_stack(2)) {
      Simulator sim(p.config, gzip.program);
      sim.set_options(*so);
      const SimResult r = sim.run(kCommits, kWarmup);
      ASSERT_TRUE(r.ok()) << cosim_name(*so) << "/" << p.label << ": "
                          << r.error;
      expect_matches_golden(std::string("gzip/s2/") + p.label, r.stats);
    }
  }
}

// The idle-cycle skip must be invisible in simulated time: cycles advance
// identically whether idle stretches are stepped or jumped, and the skip
// counter only ever accounts cycles the stepped loop would have idled
// through.
TEST(SchedEquivalence, IdleSkipAccountsOnlyIdleCycles) {
  const Workload w = build_workload("gzip");
  const SimResult r = simulate(base_machine(), w.program, kCommits, kWarmup);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_LT(r.stats.idle_cycles_skipped, r.stats.cycles);
  EXPECT_GT(r.stats.host_seconds, 0.0);
}

}  // namespace
}  // namespace bsp
