// Checkpoint tests: capture/restore round trips, serialisation, and timing
// runs started from a checkpoint.
#include <gtest/gtest.h>

#include <sstream>

#include "asm/assembler.hpp"
#include "core/simulator.hpp"
#include "emu/checkpoint.hpp"
#include "util/rng.hpp"
#include "workloads/workloads.hpp"

namespace bsp {
namespace {

TEST(Checkpoint, CaptureRestoreResumesExactly) {
  const Workload w = build_workload("gzip");
  // Reference: run 50k straight.
  Emulator ref(w.program);
  ref.run(50'000);

  // Split run: 20k, capture, restore into a fresh emulator, 30k more.
  Emulator first(w.program);
  first.run(20'000);
  const Checkpoint ckpt = capture_checkpoint(first);
  EXPECT_EQ(ckpt.retired, 20'000u);

  Emulator second(w.program);
  restore_checkpoint(second, ckpt);
  EXPECT_EQ(second.pc(), first.pc());
  second.run(30'000);

  EXPECT_EQ(second.pc(), ref.pc());
  for (unsigned i = 0; i < kNumRegs; ++i)
    EXPECT_EQ(second.reg(i), ref.reg(i)) << "reg " << i;
  EXPECT_EQ(second.hi(), ref.hi());
  EXPECT_EQ(second.lo(), ref.lo());
  EXPECT_EQ(second.instructions_retired(), ref.instructions_retired());
}

TEST(Checkpoint, SerialisationRoundTrip) {
  const Workload w = build_workload("li");
  const auto ckpt = fast_forward(w.program, 30'000);
  ASSERT_TRUE(ckpt.has_value());

  std::stringstream buf;
  ASSERT_TRUE(save_checkpoint(*ckpt, buf));
  std::string error;
  const auto loaded = load_checkpoint(buf, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->pc, ckpt->pc);
  EXPECT_EQ(loaded->regs, ckpt->regs);
  EXPECT_EQ(loaded->hi, ckpt->hi);
  EXPECT_EQ(loaded->lo, ckpt->lo);
  EXPECT_EQ(loaded->retired, ckpt->retired);
  ASSERT_EQ(loaded->pages.size(), ckpt->pages.size());
  for (std::size_t i = 0; i < ckpt->pages.size(); ++i) {
    EXPECT_EQ(loaded->pages[i].base, ckpt->pages[i].base);
    EXPECT_EQ(loaded->pages[i].bytes, ckpt->pages[i].bytes);
  }
}

TEST(Checkpoint, RejectsGarbageAndTruncation) {
  std::string error;
  std::stringstream junk("garbage");
  EXPECT_FALSE(load_checkpoint(junk, &error).has_value());

  const Workload w = build_workload("go");
  const auto ckpt = fast_forward(w.program, 1'000);
  ASSERT_TRUE(ckpt.has_value());
  std::stringstream buf;
  ASSERT_TRUE(save_checkpoint(*ckpt, buf));
  const std::string whole = buf.str();
  Rng rng(3);
  for (int i = 0; i < 32; ++i) {
    std::stringstream part(
        whole.substr(0, rng.below(static_cast<u32>(whole.size()))));
    EXPECT_FALSE(load_checkpoint(part).has_value());
  }
}

TEST(Checkpoint, RejectsHostileHeaders) {
  // A corrupt or malicious header must produce a clear error without
  // ballooning allocations — workers load cache files other processes
  // wrote, so the loader cannot trust any field.
  const Workload w = build_workload("go");
  const auto ckpt = fast_forward(w.program, 1'000);
  ASSERT_TRUE(ckpt.has_value());
  std::stringstream buf;
  ASSERT_TRUE(save_checkpoint(*ckpt, buf));
  const std::string pristine = buf.str();

  // Layout: magic, version, pc, 32 regs, 32 fp regs, fcc, hi, lo,
  // retired lo/hi, page_count — all u32s — then (base, page bytes) pairs.
  const std::size_t page_count_off = (2 + 1 + 32 + 32 + 1 + 2 + 2) * 4;
  const std::size_t first_base_off = page_count_off + 4;
  const std::size_t second_base_off =
      first_base_off + 4 + SparseMemory::kPageSize;
  const auto read_u32 = [&](const std::string& b, std::size_t off) {
    u32 v = 0;
    for (int i = 0; i < 4; ++i)
      v |= u32{static_cast<u8>(b[off + static_cast<std::size_t>(i)])}
           << (8 * i);
    return v;
  };
  const auto with_u32 = [&](std::size_t off, u32 v) {
    std::string b = pristine;
    for (int i = 0; i < 4; ++i)
      b[off + static_cast<std::size_t>(i)] = static_cast<char>(v >> (8 * i));
    return b;
  };
  const auto expect_error = [&](const std::string& bytes, const char* why) {
    std::string error;
    std::stringstream is(bytes);
    EXPECT_FALSE(load_checkpoint(is, &error).has_value());
    EXPECT_EQ(error, why);
  };

  // Page count far beyond the bytes actually present: rejected before any
  // page allocation (the stream is seekable, so the size cross-check runs).
  expect_error(with_u32(page_count_off, 0xfffffu),
               "page count exceeds file size");
  // Absurd page count: the hard bound rejects it on any stream.
  expect_error(with_u32(page_count_off, 0xffffffffu),
               "implausible page count");
  // Misaligned page base.
  expect_error(with_u32(first_base_off,
                        read_u32(pristine, first_base_off) + 2),
               "misaligned page base");
  // Duplicate page (ascending-order violation). Needs >= 2 pages.
  ASSERT_GE(ckpt->pages.size(), 2u);
  expect_error(with_u32(second_base_off,
                        read_u32(pristine, first_base_off)),
               "pages not in ascending order");

  // And the pristine image still loads.
  std::string error;
  std::stringstream is(pristine);
  EXPECT_TRUE(load_checkpoint(is, &error).has_value()) << error;
}

TEST(Checkpoint, CaptureRestoreCaptureIsByteIdentical) {
  // Paging-heavy kernel: mcf chases pointers across a large arena, so the
  // checkpoint carries many pages. restore must reproduce every page byte
  // so that a re-capture serialises to the identical BSPC image.
  const Workload w = build_workload("mcf");
  Emulator emu(w.program);
  emu.run(120'000);
  const Checkpoint first = capture_checkpoint(emu);
  EXPECT_GE(first.pages.size(), 8u) << "want a paging-heavy image";

  Emulator other(w.program);
  restore_checkpoint(other, first);
  const Checkpoint second = capture_checkpoint(other);

  std::stringstream a, b;
  ASSERT_TRUE(save_checkpoint(first, a));
  ASSERT_TRUE(save_checkpoint(second, b));
  EXPECT_EQ(a.str(), b.str());  // byte-for-byte equal serialisations
}

TEST(Checkpoint, FastForwardFailsOnExitedProgram) {
  const AsmResult r = assemble(
      ".text\nmain:\n  li $v0, 10\n  li $a0, 0\n  syscall\n");
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(fast_forward(r.program, 1'000'000).has_value());
}

TEST(Checkpoint, SimulatorStartsFromCheckpointAndCoSimulates) {
  const Workload w = build_workload("vortex");
  const auto ckpt = fast_forward(w.program, 100'000);
  ASSERT_TRUE(ckpt.has_value());

  Simulator sim(bitsliced_machine(2, kAllTechniques), w.program, *ckpt);
  const SimResult r = sim.run(30'000);
  ASSERT_TRUE(r.ok()) << r.error;  // co-simulation from the restored state
  EXPECT_EQ(r.stats.committed, 30'000u);
}

TEST(Checkpoint, CheckpointedRunMatchesFastForwardedRunExactly) {
  // Timing from a checkpoint == timing of the same region reached by
  // letting the simulator itself run there (with identical *cold*
  // microarchitectural state, only the architectural start differs): the
  // cycle counts will differ (cold vs warm caches), but the committed
  // stream must be the same instructions — guaranteed by co-simulation —
  // and both runs must succeed.
  const Workload w = build_workload("bzip");
  const auto ckpt = fast_forward(w.program, 60'000);
  ASSERT_TRUE(ckpt.has_value());
  Simulator from_ckpt(base_machine(), w.program, *ckpt);
  const SimResult a = from_ckpt.run(20'000);
  ASSERT_TRUE(a.ok()) << a.error;

  Simulator whole(base_machine(), w.program);
  const SimResult b = whole.run(20'000, 60'000);
  ASSERT_TRUE(b.ok()) << b.error;
  EXPECT_EQ(a.stats.committed, b.stats.committed);
}

}  // namespace
}  // namespace bsp
