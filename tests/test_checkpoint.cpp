// Checkpoint tests: capture/restore round trips, serialisation, and timing
// runs started from a checkpoint.
#include <gtest/gtest.h>

#include <sstream>

#include "asm/assembler.hpp"
#include "core/simulator.hpp"
#include "emu/checkpoint.hpp"
#include "util/rng.hpp"
#include "workloads/workloads.hpp"

namespace bsp {
namespace {

TEST(Checkpoint, CaptureRestoreResumesExactly) {
  const Workload w = build_workload("gzip");
  // Reference: run 50k straight.
  Emulator ref(w.program);
  ref.run(50'000);

  // Split run: 20k, capture, restore into a fresh emulator, 30k more.
  Emulator first(w.program);
  first.run(20'000);
  const Checkpoint ckpt = capture_checkpoint(first);
  EXPECT_EQ(ckpt.retired, 20'000u);

  Emulator second(w.program);
  restore_checkpoint(second, ckpt);
  EXPECT_EQ(second.pc(), first.pc());
  second.run(30'000);

  EXPECT_EQ(second.pc(), ref.pc());
  for (unsigned i = 0; i < kNumRegs; ++i)
    EXPECT_EQ(second.reg(i), ref.reg(i)) << "reg " << i;
  EXPECT_EQ(second.hi(), ref.hi());
  EXPECT_EQ(second.lo(), ref.lo());
  EXPECT_EQ(second.instructions_retired(), ref.instructions_retired());
}

TEST(Checkpoint, SerialisationRoundTrip) {
  const Workload w = build_workload("li");
  const auto ckpt = fast_forward(w.program, 30'000);
  ASSERT_TRUE(ckpt.has_value());

  std::stringstream buf;
  ASSERT_TRUE(save_checkpoint(*ckpt, buf));
  std::string error;
  const auto loaded = load_checkpoint(buf, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->pc, ckpt->pc);
  EXPECT_EQ(loaded->regs, ckpt->regs);
  EXPECT_EQ(loaded->hi, ckpt->hi);
  EXPECT_EQ(loaded->lo, ckpt->lo);
  EXPECT_EQ(loaded->retired, ckpt->retired);
  ASSERT_EQ(loaded->pages.size(), ckpt->pages.size());
  for (std::size_t i = 0; i < ckpt->pages.size(); ++i) {
    EXPECT_EQ(loaded->pages[i].base, ckpt->pages[i].base);
    EXPECT_EQ(loaded->pages[i].bytes, ckpt->pages[i].bytes);
  }
}

TEST(Checkpoint, RejectsGarbageAndTruncation) {
  std::string error;
  std::stringstream junk("garbage");
  EXPECT_FALSE(load_checkpoint(junk, &error).has_value());

  const Workload w = build_workload("go");
  const auto ckpt = fast_forward(w.program, 1'000);
  ASSERT_TRUE(ckpt.has_value());
  std::stringstream buf;
  ASSERT_TRUE(save_checkpoint(*ckpt, buf));
  const std::string whole = buf.str();
  Rng rng(3);
  for (int i = 0; i < 32; ++i) {
    std::stringstream part(
        whole.substr(0, rng.below(static_cast<u32>(whole.size()))));
    EXPECT_FALSE(load_checkpoint(part).has_value());
  }
}

TEST(Checkpoint, FastForwardFailsOnExitedProgram) {
  const AsmResult r = assemble(
      ".text\nmain:\n  li $v0, 10\n  li $a0, 0\n  syscall\n");
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(fast_forward(r.program, 1'000'000).has_value());
}

TEST(Checkpoint, SimulatorStartsFromCheckpointAndCoSimulates) {
  const Workload w = build_workload("vortex");
  const auto ckpt = fast_forward(w.program, 100'000);
  ASSERT_TRUE(ckpt.has_value());

  Simulator sim(bitsliced_machine(2, kAllTechniques), w.program, *ckpt);
  const SimResult r = sim.run(30'000);
  ASSERT_TRUE(r.ok()) << r.error;  // co-simulation from the restored state
  EXPECT_EQ(r.stats.committed, 30'000u);
}

TEST(Checkpoint, CheckpointedRunMatchesFastForwardedRunExactly) {
  // Timing from a checkpoint == timing of the same region reached by
  // letting the simulator itself run there (with identical *cold*
  // microarchitectural state, only the architectural start differs): the
  // cycle counts will differ (cold vs warm caches), but the committed
  // stream must be the same instructions — guaranteed by co-simulation —
  // and both runs must succeed.
  const Workload w = build_workload("bzip");
  const auto ckpt = fast_forward(w.program, 60'000);
  ASSERT_TRUE(ckpt.has_value());
  Simulator from_ckpt(base_machine(), w.program, *ckpt);
  const SimResult a = from_ckpt.run(20'000);
  ASSERT_TRUE(a.ok()) << a.error;

  Simulator whole(base_machine(), w.program);
  const SimResult b = whole.run(20'000, 60'000);
  ASSERT_TRUE(b.ok()) << b.error;
  EXPECT_EQ(a.stats.committed, b.stats.committed);
}

}  // namespace
}  // namespace bsp
