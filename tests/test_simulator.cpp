// Timing-core tests: co-simulation correctness on every workload and
// configuration, plus directed checks of the latency effects each
// partial-operand technique is supposed to produce.
#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "core/simulator.hpp"
#include "workloads/workloads.hpp"

namespace bsp {
namespace {

Program compile(const std::string& src) {
  AsmResult r = assemble(src);
  EXPECT_TRUE(r.ok()) << r.error_text();
  return r.program;
}

Program counting_loop(unsigned n) {
  return compile(
      ".text\nmain:\n  li $t0, " + std::to_string(n) +
      "\nloop:\n  addiu $t0, $t0, -1\n  bne $t0, $0, loop\n"
      "  li $v0, 10\n  li $a0, 0\n  syscall\n");
}

TEST(Simulator, RunsToExitOnBaseMachine) {
  const SimResult r = simulate(base_machine(), counting_loop(1000), 1u << 20);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_TRUE(r.exited);
  EXPECT_EQ(r.exit_code, 0);
  // 2 li words + 1000*2 loop + 5 tail-ish; commit count is exact.
  EXPECT_EQ(r.stats.committed, 2u + 2000u + 5u);
  EXPECT_GT(r.stats.ipc(), 0.5);
}

TEST(Simulator, MaxCommitCapStopsTheRun) {
  const SimResult r = simulate(base_machine(), counting_loop(1u << 20), 5000);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_FALSE(r.exited);
  EXPECT_EQ(r.stats.committed, 5000u);
}

// The decisive correctness gate: every workload commits the same
// architectural sequence as the reference emulator (the simulator verifies
// at commit and reports any divergence), on every pipeline configuration.
struct CoSimCase {
  const char* workload;
  unsigned slices;
  TechniqueSet techniques;
};

class CoSimTest : public ::testing::TestWithParam<CoSimCase> {};

TEST_P(CoSimTest, CommitsMatchReferenceEmulator) {
  const CoSimCase& c = GetParam();
  const Workload w = build_workload(c.workload);
  const MachineConfig cfg =
      c.slices == 1 ? base_machine() : bitsliced_machine(c.slices, c.techniques);
  const SimResult r = simulate(cfg, w.program, 30'000);
  ASSERT_TRUE(r.ok()) << c.workload << ": " << r.error;
  EXPECT_EQ(r.stats.committed, 30'000u);
  EXPECT_GT(r.stats.ipc(), 0.01);
  EXPECT_LE(r.stats.ipc(), 4.0);
}

std::vector<CoSimCase> cosim_cases() {
  std::vector<CoSimCase> cases;
  for (const auto& name : workload_names()) {
    cases.push_back({name.c_str(), 1, kNoTechniques});
    cases.push_back({name.c_str(), 2, kNoTechniques});
    cases.push_back({name.c_str(), 2, kAllTechniques});
    cases.push_back({name.c_str(), 4, kAllTechniques});
  }
  return cases;
}

std::string cosim_name(const ::testing::TestParamInfo<CoSimCase>& info) {
  std::string n = info.param.workload;
  n += "_s" + std::to_string(info.param.slices);
  n += info.param.techniques == kNoTechniques ? "_plain" : "_full";
  return n;
}

INSTANTIATE_TEST_SUITE_P(AllWorkloadsAllConfigs, CoSimTest,
                         ::testing::ValuesIn(cosim_cases()), cosim_name);

// Cumulative technique stacks must also co-simulate (each technique alone).
class TechniqueCoSimTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(TechniqueCoSimTest, EachCumulativeStackIsCorrect) {
  TechniqueSet set = kNoTechniques;
  const auto& order = technique_order();
  for (unsigned i = 0; i <= GetParam(); ++i)
    set |= static_cast<unsigned>(order[i]);
  const Workload w = build_workload("vortex");  // heaviest LSQ traffic
  const SimResult r = simulate(bitsliced_machine(2, set), w.program, 20'000);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.stats.committed, 20'000u);
}

INSTANTIATE_TEST_SUITE_P(CumulativeStacks, TechniqueCoSimTest,
                         ::testing::Range(0u, 5u));

// --- directed latency behaviour --------------------------------------------------

// An ALU dependence chain: simple pipelining at slice-by-2 should roughly
// halve IPC; partial operand bypassing should restore it (Figure 1).
TEST(SimulatorTiming, BypassRestoresDependentAluThroughput) {
  const Program chain = compile(R"(
.text
main:
  li $t0, 20000
loop:
  addu $t1, $t1, $t0
  addu $t1, $t1, $t0
  addu $t1, $t1, $t0
  addu $t1, $t1, $t0
  addiu $t0, $t0, -1
  bne $t0, $0, loop
  li $v0, 10
  syscall
)");
  const u64 n = 60'000;
  const double ipc_base =
      simulate(base_machine(), chain, n).stats.ipc();
  const double ipc_simple =
      simulate(simple_pipelined_machine(2), chain, n).stats.ipc();
  const double ipc_bypass =
      simulate(bitsliced_machine(
                   2, static_cast<unsigned>(Technique::PartialBypass)),
               chain, n)
          .stats.ipc();
  EXPECT_LT(ipc_simple, 0.75 * ipc_base)
      << "naive EX pipelining must hurt dependent chains";
  EXPECT_GT(ipc_bypass, 0.95 * ipc_base)
      << "slice bypassing must restore back-to-back execution";
}

// Early branch resolution shortens the mispredict loop for bne against zero
// when the nonzero bit lives in the low slice (the Figure 5 case).
TEST(SimulatorTiming, EarlyBranchResolutionDetectsLowBitMispredicts) {
  const Workload w = build_workload("li");
  const TechniqueSet bypass =
      static_cast<unsigned>(Technique::PartialBypass);
  const TechniqueSet with_eb =
      bypass | static_cast<unsigned>(Technique::EarlyBranch);
  const SimResult without =
      simulate(bitsliced_machine(4, bypass), w.program, 40'000);
  const SimResult with =
      simulate(bitsliced_machine(4, with_eb), w.program, 40'000);
  ASSERT_TRUE(without.ok()) << without.error;
  ASSERT_TRUE(with.ok()) << with.error;
  EXPECT_EQ(without.stats.early_resolved_branches, 0u);
  EXPECT_GT(with.stats.early_resolved_branches, 0u);
  EXPECT_GE(with.stats.ipc(), without.stats.ipc());
}

// Partial tag matching must engage on loads and keep the way-mispredict
// (replay) rate low, as reported in §7.1 (~2 % for slice-by-2).
TEST(SimulatorTiming, PartialTagEngagesWithLowReplayRate) {
  const Workload w = build_workload("bzip");
  const TechniqueSet set =
      static_cast<unsigned>(Technique::PartialBypass) |
      static_cast<unsigned>(Technique::PartialTag);
  const SimResult r = simulate(bitsliced_machine(2, set), w.program, 60'000);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_GT(r.stats.partial_tag_accesses, 1000u);
  EXPECT_LT(r.stats.way_mispredict_rate(), 0.10);
  EXPECT_GT(r.stats.ipc(), 0.0);
}

// Early LSQ disambiguation should let some loads issue on partial bits.
TEST(SimulatorTiming, EarlyLsqIssuesLoadsOnPartialAddresses) {
  const Workload w = build_workload("vortex");
  const TechniqueSet set =
      static_cast<unsigned>(Technique::PartialBypass) |
      static_cast<unsigned>(Technique::EarlyLsq);
  const SimResult r = simulate(bitsliced_machine(2, set), w.program, 60'000);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_GT(r.stats.loads_issued_partial_lsq, 0u);
  EXPECT_GT(r.stats.load_forwards, 0u);
}

// Branch accuracy seen by the timing core should be in the same ballpark as
// the paper's Table 1 for kernels whose target survived (±8 points).
TEST(SimulatorTiming, BranchAccuracyNearTable1Targets) {
  for (const char* name : {"go", "mcf", "li"}) {
    const Workload w = build_workload(name);
    const SimResult r = simulate(base_machine(), w.program, 60'000);
    ASSERT_TRUE(r.ok()) << name << ": " << r.error;
    const auto target = w.info.paper_branch_accuracy;
    ASSERT_TRUE(target.has_value());
    EXPECT_NEAR(r.stats.branch_accuracy(), *target, 0.08) << name;
  }
}

// The headline comparison (Figure 11): on a dependence-heavy kernel the full
// bit-sliced machine at slice-by-2 should sit close to the ideal machine and
// clearly above naive pipelining.
TEST(SimulatorTiming, SliceBy2RecoversMostOfTheIdealIpc) {
  const Workload w = build_workload("ijpeg");
  const u64 n = 60'000;
  const double ideal = simulate(base_machine(), w.program, n).stats.ipc();
  const double naive =
      simulate(simple_pipelined_machine(2), w.program, n).stats.ipc();
  const double sliced =
      simulate(bitsliced_machine(2, kAllTechniques), w.program, n).stats.ipc();
  EXPECT_LT(naive, ideal);
  EXPECT_GT(sliced, naive);
  EXPECT_GT(sliced, 0.85 * ideal);
}

}  // namespace
}  // namespace bsp
