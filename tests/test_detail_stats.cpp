// Detailed-statistics tests: the optional histograms must be internally
// consistent with the headline counters and must not perturb timing.
#include <gtest/gtest.h>

#include "core/simulator.hpp"
#include "workloads/workloads.hpp"

namespace bsp {
namespace {

TEST(Histogram, PercentilesAndCumulative) {
  Histogram h(10);
  for (int i = 0; i < 90; ++i) h.add(1);
  for (int i = 0; i < 10; ++i) h.add(9);
  EXPECT_EQ(h.percentile(0.5), 1u);
  EXPECT_EQ(h.percentile(0.9), 1u);
  EXPECT_EQ(h.percentile(0.95), 9u);
  EXPECT_DOUBLE_EQ(h.cumulative(1), 0.9);
  EXPECT_DOUBLE_EQ(h.mean(), (90.0 * 1 + 10.0 * 9) / 100.0);
  h.add(500);  // overflow bucket
  EXPECT_EQ(h.overflow(), 1u);
}

TEST(Histogram, PercentileBoundaries) {
  // Empty histogram: no percentiles exist; every query returns the overflow
  // bucket index rather than pretending bucket 0 holds data.
  Histogram empty(10);
  EXPECT_EQ(empty.percentile(0.0), empty.buckets());
  EXPECT_EQ(empty.percentile(0.5), empty.buckets());
  EXPECT_EQ(empty.percentile(1.0), empty.buckets());

  // p = 0 is the minimum sample (smallest non-empty bucket), not bucket 0.
  Histogram h(10);
  h.add(5);
  h.add(7);
  EXPECT_EQ(h.percentile(0.0), 5u);
  EXPECT_EQ(h.percentile(1.0), 7u);
}

TEST(Histogram, CumulativeMemoizationSurvivesInterleavedAdds) {
  // cumulative()/percentile() memoize prefix sums; the cache must be
  // invalidated by add() so queries interleaved with inserts stay exact.
  Histogram h(8);
  h.add(2);
  EXPECT_DOUBLE_EQ(h.cumulative(1), 0.0);
  EXPECT_DOUBLE_EQ(h.cumulative(2), 1.0);
  h.add(0);  // must invalidate the memoized prefix
  EXPECT_DOUBLE_EQ(h.cumulative(1), 0.5);
  EXPECT_EQ(h.percentile(0.0), 0u);
  h.add(7, 2);
  EXPECT_DOUBLE_EQ(h.cumulative(2), 0.5);
  EXPECT_DOUBLE_EQ(h.cumulative(7), 1.0);
  EXPECT_EQ(h.percentile(1.0), 7u);
  // Past-the-end queries clamp to the overflow bucket.
  EXPECT_DOUBLE_EQ(h.cumulative(1000), 1.0);
  // Repeated queries without intervening adds hit the cache and agree.
  EXPECT_DOUBLE_EQ(h.cumulative(2), 0.5);
  EXPECT_EQ(h.percentile(0.5), 2u);
}

TEST(RunningMean, EmptyAndExtrema) {
  // Empty accumulator: extrema are defined as 0.0, matching mean(), so an
  // empty series prints deterministically.
  RunningMean m;
  EXPECT_EQ(m.count(), 0u);
  EXPECT_DOUBLE_EQ(m.mean(), 0.0);
  EXPECT_DOUBLE_EQ(m.min(), 0.0);
  EXPECT_DOUBLE_EQ(m.max(), 0.0);

  // First sample seeds both extrema even when it is negative or larger than
  // the 0.0 default.
  m.add(-3.5);
  EXPECT_DOUBLE_EQ(m.min(), -3.5);
  EXPECT_DOUBLE_EQ(m.max(), -3.5);
  m.add(4.0);
  m.add(1.0);
  EXPECT_EQ(m.count(), 3u);
  EXPECT_DOUBLE_EQ(m.min(), -3.5);
  EXPECT_DOUBLE_EQ(m.max(), 4.0);
  EXPECT_DOUBLE_EQ(m.mean(), 0.5);
}

TEST(DetailStats, ConsistentWithHeadlineCounters) {
  const Workload w = build_workload("gzip");
  Simulator sim(bitsliced_machine(2, kAllTechniques), w.program);
  sim.enable_detail();
  const SimResult r = sim.run(40'000);
  ASSERT_TRUE(r.ok()) << r.error;
  const DetailedStats& d = sim.detail();

  // One occupancy sample per cycle, one commit-width sample per cycle.
  EXPECT_EQ(d.ruu_occupancy.total(), r.stats.cycles);
  EXPECT_EQ(d.lsq_occupancy.total(), r.stats.cycles);
  EXPECT_EQ(d.commit_width.total(), r.stats.cycles);
  // Mean commit width is exactly IPC.
  EXPECT_NEAR(d.commit_width.mean(), r.stats.ipc(), 1e-9);
  // One latency sample per committed load / branch.
  EXPECT_EQ(d.load_to_use.total(), r.stats.loads);
  EXPECT_EQ(d.branch_resolve_delay.total(), r.stats.branches);
  // Sanity ranges.
  EXPECT_GT(d.ruu_occupancy.mean(), 1.0);
  EXPECT_LE(d.ruu_occupancy.percentile(1.0), 64u);
  EXPECT_GE(d.load_to_use.percentile(0.5), 1u);
}

TEST(DetailStats, CollectionDoesNotPerturbTiming) {
  const Workload w = build_workload("li");
  const SimResult plain =
      simulate(base_machine(), w.program, 20'000);
  Simulator sim(base_machine(), w.program);
  sim.enable_detail();
  const SimResult detailed = sim.run(20'000);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(detailed.ok());
  EXPECT_EQ(plain.stats.cycles, detailed.stats.cycles);
  EXPECT_EQ(plain.stats.committed, detailed.stats.committed);
}

TEST(DetailStats, LoadLatencyReflectsCacheBehaviour) {
  // mcf (miss-dominated) must show far longer load-to-use latencies than
  // gzip (L1-resident).
  const auto mean_latency = [](const char* name) {
    const Workload w = build_workload(name);
    Simulator sim(base_machine(), w.program);
    sim.enable_detail();
    EXPECT_TRUE(sim.run(30'000, 30'000).ok());
    return sim.detail().load_to_use.mean();
  };
  EXPECT_GT(mean_latency("mcf"), 2.0 * mean_latency("gzip"));
}

}  // namespace
}  // namespace bsp
