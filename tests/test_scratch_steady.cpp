// Steady-state allocation discipline: every scratch vector and node pool
// on the scheduler's hot paths (pending/candidate buffers, store-view
// scratch, relaxation worklist, branch watch list, waiter/consumer node
// pools, far-wheel staging) is reserved once at construction from the
// machine shape. A reallocation after warm-up means a heap allocation
// slipped onto the dispatch/wakeup/replay path — a throughput regression
// the benchmarks would only show as noise, so it is pinned here exactly.
#include <gtest/gtest.h>

#include "config/machine_config.hpp"
#include "core/simulator.hpp"
#include "workloads/workloads.hpp"

namespace bsp {
namespace {

void expect_no_growth(const MachineConfig& cfg, const char* label) {
  const Workload w = build_workload("gzip");
  Simulator sim(cfg, w.program);
  const SimResult r = sim.run(15'000, 3'000);
  ASSERT_TRUE(r.ok()) << label << ": " << r.error;
  EXPECT_EQ(sim.scratch_reallocations(), 0u)
      << label << ": a hot-path scratch vector grew past its "
      << "construction-time reservation";
}

TEST(ScratchSteadyState, BaselineMachineNeverReallocates) {
  expect_no_growth(base_machine(), "base");
}

TEST(ScratchSteadyState, SlicedAllTechniquesNeverReallocates) {
  expect_no_growth(bitsliced_machine(4, kAllTechniques), "s4/alltech");
}

TEST(ScratchSteadyState, LargeWindowNeverReallocates) {
  MachineConfig cfg = bitsliced_machine(2, kAllTechniques);
  cfg.core.ruu_entries = 256;
  cfg.core.lsq_entries = 128;
  expect_no_growth(cfg, "ruu256/s2/alltech");
}

}  // namespace
}  // namespace bsp
