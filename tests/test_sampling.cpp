// Sampled-simulation tests: planner invariants, the stat-merge algebra the
// stitcher is built on, the Student-t error bound, the interval JSONL
// protocol, and the engine's acceptance properties — a 1-interval run is
// bit-identical to the monolithic run, per-interval stats are
// deterministic across reruns, the prewarm pass reuses published
// checkpoints, and a K-interval estimate's confidence interval contains
// the monolithic IPC on the pinned workload.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <string>
#include <unistd.h>
#include <vector>

#include "config/machine_config.hpp"
#include "core/simulator.hpp"
#include "obs/interval.hpp"
#include "sampling/sampled.hpp"
#include "stats/stats.hpp"
#include "workloads/workloads.hpp"

namespace bsp::sampling {
namespace {

// --- planner ---------------------------------------------------------------

TEST(Plan, SingleIntervalIsExactlyTheMonolithicRun) {
  const SamplePlan p = plan_intervals(12'000, 3'000, 40'000, 1, 2'000);
  ASSERT_EQ(p.intervals.size(), 1u);
  const IntervalSpec& s = p.intervals[0];
  EXPECT_EQ(s.offset, 40'000u);   // the run's own fast-forward boundary
  EXPECT_EQ(s.warmup, 3'000u);    // the monolithic warm-up, not sample_warmup
  EXPECT_EQ(s.commits, 12'000u);
  EXPECT_EQ(s.measured_start, 0u);
}

TEST(Plan, ChunksAreContiguousExhaustiveAndBalanced) {
  const u64 kM = 10'001, kW = 500, kFF = 0, kN = 300;
  const SamplePlan p = plan_intervals(kM, kW, kFF, 4, kN);
  ASSERT_EQ(p.intervals.size(), 4u);

  u64 covered = 0;
  for (std::size_t i = 0; i < p.intervals.size(); ++i) {
    const IntervalSpec& s = p.intervals[i];
    EXPECT_EQ(s.index, static_cast<unsigned>(i));
    EXPECT_EQ(s.measured_start, covered) << "gap or overlap at interval " << i;
    covered += s.commits;
    if (i == 0) {
      EXPECT_EQ(s.offset, kFF);
      EXPECT_EQ(s.warmup, kW);
    } else {
      // pos = FF + W + measured_start; warm-up never reaches before reset.
      const u64 pos = kFF + kW + s.measured_start;
      EXPECT_EQ(s.warmup, std::min(kN, pos));
      EXPECT_EQ(s.offset, pos - s.warmup);
    }
  }
  EXPECT_EQ(covered, kM);
  // Sizes differ by at most one; the remainder goes to the earliest chunks.
  EXPECT_EQ(p.intervals[0].commits, 2'501u);
  EXPECT_EQ(p.intervals[3].commits, 2'500u);
}

TEST(Plan, PerIntervalWarmupClampsToThePositionBeforeReset) {
  // With no fast-forward and no monolithic warm-up, interval 1 starts at
  // measured position 100 — a 5'000-commit warm-up request must clamp to
  // everything available (offset 0, warm-up 100), not underflow.
  const SamplePlan p = plan_intervals(400, 0, 0, 4, 5'000);
  ASSERT_EQ(p.intervals.size(), 4u);
  EXPECT_EQ(p.intervals[1].offset, 0u);
  EXPECT_EQ(p.intervals[1].warmup, 100u);
}

TEST(Plan, IntervalCountClampsToCommits) {
  // More intervals than commits: every interval still measures >= 1.
  const SamplePlan p = plan_intervals(3, 0, 0, 8, 100);
  EXPECT_EQ(p.intervals.size(), 3u);
  for (const IntervalSpec& s : p.intervals) EXPECT_EQ(s.commits, 1u);
  // K = 0 is treated as 1.
  EXPECT_EQ(plan_intervals(100, 0, 0, 0, 0).intervals.size(), 1u);
}

// --- merge algebra ----------------------------------------------------------

TEST(Merge, SimStatsSumsEveryRegisteredCounter) {
  const auto& counters = obs::simstats_counters();
  ASSERT_FALSE(counters.empty());
  SimStats a, b;
  for (std::size_t i = 0; i < counters.size(); ++i) {
    a.*(counters[i].field) = i + 1;
    b.*(counters[i].field) = 1'000 + i;
  }
  a.host_seconds = 1.5;
  b.host_seconds = 2.25;
  a.merge(b);
  for (std::size_t i = 0; i < counters.size(); ++i)
    EXPECT_EQ(a.*(counters[i].field), (i + 1) + (1'000 + i))
        << "counter '" << counters[i].name << "' not summed by merge";
  EXPECT_DOUBLE_EQ(a.host_seconds, 3.75);
}

TEST(Merge, HistogramMergeEqualsAddingEverySample) {
  Histogram direct(8), left(8), right(8);
  const u64 samples_a[] = {0, 1, 1, 7, 20};  // 20 overflows
  const u64 samples_b[] = {2, 7, 7, 100};
  for (const u64 v : samples_a) { direct.add(v); left.add(v); }
  for (const u64 v : samples_b) { direct.add(v); right.add(v); }
  left.merge(right);
  ASSERT_EQ(left.total(), direct.total());
  for (std::size_t i = 0; i <= left.buckets(); ++i)
    EXPECT_EQ(left.count(i), direct.count(i)) << "bucket " << i;
  EXPECT_DOUBLE_EQ(left.mean(), direct.mean());
  EXPECT_DOUBLE_EQ(left.cumulative(7), direct.cumulative(7));
}

TEST(Merge, RunningMeanMergeHandlesEmptySides) {
  RunningMean a, b, empty;
  a.add(1.0);
  a.add(3.0);
  b.add(-2.0);
  a.merge(empty);            // no-op
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(a.min(), -2.0);
  EXPECT_DOUBLE_EQ(a.max(), 3.0);
  empty.merge(a);            // empty absorbs the populated side wholesale
  EXPECT_EQ(empty.count(), 3u);
  EXPECT_DOUBLE_EQ(empty.max(), 3.0);
}

TEST(Merge, HostProfileSumsPhasesAndStaysDisabledWhenBothAre) {
  SimStats a, b;
  a.host_profile.enabled = true;
  a.host_profile.fetch = 0.5;
  b.host_profile.enabled = true;
  b.host_profile.fetch = 0.25;
  b.host_profile.commit = 1.0;
  a.merge(b);
  EXPECT_TRUE(a.host_profile.enabled);
  EXPECT_DOUBLE_EQ(a.host_profile.fetch, 0.75);
  EXPECT_DOUBLE_EQ(a.host_profile.commit, 1.0);

  SimStats c, d;
  c.merge(d);
  EXPECT_FALSE(c.host_profile.enabled);
}

// --- error bound ------------------------------------------------------------

TEST(Stitch, TCriticalMatchesTheTwoSidedTable) {
  EXPECT_GE(t_critical_975(0), 1e9);  // no variance estimate: +inf semantics
  EXPECT_NEAR(t_critical_975(1), 12.706, 1e-3);
  EXPECT_NEAR(t_critical_975(3), 3.182, 1e-3);
  EXPECT_NEAR(t_critical_975(30), 2.042, 1e-3);
  EXPECT_NEAR(t_critical_975(31), 1.96, 1e-9);   // normal approximation
  EXPECT_NEAR(t_critical_975(1000), 1.96, 1e-9);
}

IntervalResult measured_interval(unsigned index, u64 cycles, u64 committed) {
  IntervalResult r;
  r.spec.index = index;
  r.stats.cycles = cycles;
  r.stats.committed = committed;
  return r;
}

TEST(Stitch, EstimateIpcDirected) {
  std::vector<IntervalResult> iv;
  iv.push_back(measured_interval(0, 1'000, 500));  // IPC 0.5
  iv.push_back(measured_interval(1, 500, 500));    // IPC 1.0
  IntervalResult skipped;
  skipped.skipped = true;
  iv.push_back(skipped);                           // excluded
  IntervalResult failed;
  failed.error = "boom";
  failed.stats.cycles = 1;
  failed.stats.committed = 1'000'000;
  iv.push_back(failed);                            // excluded

  const IpcEstimate e = estimate_ipc(iv);
  EXPECT_EQ(e.n, 2u);
  EXPECT_DOUBLE_EQ(e.weighted, 1'000.0 / 1'500.0);
  EXPECT_DOUBLE_EQ(e.mean, 0.75);
  EXPECT_NEAR(e.stddev, 0.3535534, 1e-6);
  // t_{0.975,1} * s / sqrt(2) = 12.706 * 0.25
  EXPECT_NEAR(e.ci95, 12.706 * 0.25, 1e-3);

  const SimStats agg = stitch_stats(iv);
  EXPECT_EQ(agg.cycles, 1'500u);   // failed/skipped intervals contribute 0
  EXPECT_EQ(agg.committed, 1'000u);
}

TEST(Stitch, SingleIntervalHasNoConfidenceInterval) {
  std::vector<IntervalResult> iv = {measured_interval(0, 2'000, 1'000)};
  const IpcEstimate e = estimate_ipc(iv);
  EXPECT_EQ(e.n, 1u);
  EXPECT_DOUBLE_EQ(e.mean, 0.5);
  EXPECT_DOUBLE_EQ(e.weighted, 0.5);
  EXPECT_DOUBLE_EQ(e.ci95, 0.0);
}

// --- interval JSONL protocol ------------------------------------------------

TEST(IntervalJsonl, MeasuredRecordRoundTrips) {
  IntervalResult r;
  r.spec = {3, 7'000, 2'000, 2'500, 9'000};
  const auto& counters = obs::simstats_counters();
  for (std::size_t i = 0; i < counters.size(); ++i)
    r.stats.*(counters[i].field) = 10 * i + 1;
  r.stats.host_seconds = 0.125;
  r.exited = true;
  r.exit_code = 42;
  r.host_sec = 1.5;

  IntervalResult back;
  std::string error;
  ASSERT_TRUE(interval_from_jsonl(interval_to_jsonl(r), &back, &error))
      << error;
  EXPECT_EQ(back.spec.index, 3u);
  EXPECT_EQ(back.spec.offset, 7'000u);
  EXPECT_EQ(back.spec.warmup, 2'000u);
  EXPECT_EQ(back.spec.commits, 2'500u);
  EXPECT_EQ(back.spec.measured_start, 9'000u);
  EXPECT_TRUE(back.exited);
  EXPECT_EQ(back.exit_code, 42);
  EXPECT_DOUBLE_EQ(back.host_sec, 1.5);
  for (std::size_t i = 0; i < counters.size(); ++i)
    EXPECT_EQ(back.stats.*(counters[i].field), 10 * i + 1)
        << counters[i].name;
  EXPECT_DOUBLE_EQ(back.stats.host_seconds, 0.125);
}

TEST(IntervalJsonl, FailedSkippedAndGarbageLines) {
  IntervalResult failed;
  failed.spec.index = 1;
  failed.error = "co-sim divergence: \"pc\" mismatch";
  IntervalResult back;
  std::string error;
  ASSERT_TRUE(interval_from_jsonl(interval_to_jsonl(failed), &back, &error));
  EXPECT_FALSE(back.ok());
  EXPECT_EQ(back.error, failed.error);

  IntervalResult skipped;
  skipped.spec.index = 2;
  skipped.skipped = true;
  ASSERT_TRUE(interval_from_jsonl(interval_to_jsonl(skipped), &back, &error));
  EXPECT_TRUE(back.skipped);
  EXPECT_FALSE(back.measured());

  EXPECT_FALSE(interval_from_jsonl("", &back, &error));
  EXPECT_FALSE(interval_from_jsonl("{\"type\":\"task\"}", &back, &error));
  const std::string torn = interval_to_jsonl(failed).substr(0, 30);
  EXPECT_FALSE(interval_from_jsonl(torn, &back, &error));
}

// --- engine acceptance ------------------------------------------------------

std::vector<u64> counter_values(const SimStats& s) {
  std::vector<u64> out;
  for (const obs::CounterDesc& c : obs::simstats_counters())
    out.push_back(s.*(c.field));
  return out;
}

TEST(Sampled, OneIntervalIsBitIdenticalToTheMonolithicRun) {
  const Workload w = build_workload("li");
  const u64 kM = 8'000, kW = 1'000;
  const SimResult mono = simulate(base_machine(), w.program, kM, kW);
  ASSERT_TRUE(mono.ok()) << mono.error;

  SampleOptions opts;
  opts.intervals = 1;
  const SampledResult s = run_sampled(base_machine(), w.program, "li", 0x5eed,
                                      kM, kW, /*fast_forward=*/0, opts);
  ASSERT_TRUE(s.ok()) << s.error;
  EXPECT_EQ(counter_values(s.aggregate), counter_values(mono.stats));
  EXPECT_DOUBLE_EQ(s.ipc.weighted, mono.stats.ipc());
  EXPECT_DOUBLE_EQ(s.ipc.ci95, 0.0);  // one sample: no variance estimate
}

TEST(Sampled, PerIntervalStatsAreDeterministicAcrossReruns) {
  const Workload w = build_workload("li");
  SampleOptions opts;
  opts.intervals = 4;
  opts.warmup = 500;
  const auto run = [&] {
    return run_sampled(base_machine(), w.program, "li", 0x5eed, 6'000, 0, 0,
                       opts);
  };
  const SampledResult a = run();
  const SampledResult b = run();
  ASSERT_TRUE(a.ok()) << a.error;
  ASSERT_TRUE(b.ok()) << b.error;
  ASSERT_EQ(a.intervals.size(), 4u);
  ASSERT_EQ(b.intervals.size(), 4u);
  for (std::size_t i = 0; i < a.intervals.size(); ++i)
    EXPECT_EQ(counter_values(a.intervals[i].stats),
              counter_values(b.intervals[i].stats))
        << "interval " << i << " diverged between identical runs";
  EXPECT_EQ(counter_values(a.aggregate), counter_values(b.aggregate));
  EXPECT_DOUBLE_EQ(a.ipc.mean, b.ipc.mean);
  EXPECT_DOUBLE_EQ(a.ipc.ci95, b.ipc.ci95);
}

TEST(Sampled, AggregateCoversExactlyTheMeasuredCommits) {
  const Workload w = build_workload("li");
  SampleOptions opts;
  opts.intervals = 5;
  opts.warmup = 300;
  const SampledResult s =
      run_sampled(base_machine(), w.program, "li", 0x5eed, 7'003, 100, 0, opts);
  ASSERT_TRUE(s.ok()) << s.error;
  // Warm-up commits are discarded per interval; the stitched stream is the
  // monolithic measured region, no gaps or double counting.
  EXPECT_EQ(s.aggregate.committed, 7'003u);
}

TEST(Sampled, PrewarmReusesPublishedCheckpoints) {
  const std::string dir = testing::TempDir() + "bsp_sampling_ckpt_" +
                          std::to_string(::getpid());
  std::filesystem::create_directories(dir);
  const Workload w = build_workload("li");
  SampleOptions opts;
  opts.intervals = 4;
  opts.warmup = 500;
  opts.ckpt_cache_dir = dir;

  const SampledResult cold =
      run_sampled(base_machine(), w.program, "li", 0x5eed, 6'000, 0, 0, opts);
  ASSERT_TRUE(cold.ok()) << cold.error;
  EXPECT_EQ(cold.ckpt_materialised, 3u);  // interval 0 needs no checkpoint
  EXPECT_EQ(cold.ckpt_reused, 0u);

  const SampledResult warm =
      run_sampled(base_machine(), w.program, "li", 0x5eed, 6'000, 0, 0, opts);
  ASSERT_TRUE(warm.ok()) << warm.error;
  EXPECT_EQ(warm.ckpt_materialised, 0u);
  EXPECT_EQ(warm.ckpt_reused, 3u);
  // The cache is invisible to timing.
  EXPECT_EQ(counter_values(warm.aggregate), counter_values(cold.aggregate));
  std::filesystem::remove_all(dir);
}

// The headline acceptance property on the pinned configuration (the same
// parameters the CI containment smoke runs): the K-interval estimate's
// 95% confidence interval must contain the monolithic IPC. Everything here
// is deterministic, so this is a stable bound, not a flaky statistical
// test.
TEST(Sampled, ConfidenceIntervalContainsMonolithicIpc) {
  const Workload w = build_workload("gzip");
  const u64 kM = 40'000, kW = 5'000;
  const SimResult mono = simulate(base_machine(), w.program, kM, kW);
  ASSERT_TRUE(mono.ok()) << mono.error;

  SampleOptions opts;
  opts.intervals = 4;
  opts.warmup = 2'000;
  const SampledResult s = run_sampled(base_machine(), w.program, "gzip",
                                      0x5eed, kM, kW, 0, opts);
  ASSERT_TRUE(s.ok()) << s.error;
  ASSERT_EQ(s.ipc.n, 4u);
  EXPECT_GT(s.ipc.ci95, 0.0);
  EXPECT_LE(std::abs(s.ipc.mean - mono.stats.ipc()), s.ipc.ci95)
      << "mean " << s.ipc.mean << " +/- " << s.ipc.ci95 << " vs monolithic "
      << mono.stats.ipc();
}

}  // namespace
}  // namespace bsp::sampling
