// Parameterized per-opcode semantics sweep: every ALU opcode is executed
// through the *emulator* (assembled, loaded, stepped) on many random operand
// pairs and compared against an independent C++ model. This pins the whole
// front path (builder -> encoder -> memory image -> decoder -> executor)
// per opcode, not just the alu_result helper.
#include <gtest/gtest.h>

#include <functional>

#include "emu/emulator.hpp"
#include "util/rng.hpp"

namespace bsp {
namespace {

struct OpCase {
  const char* name;
  // Builds the instruction under test with operands in $t0 (src1-ish) and
  // $t1 (src2-ish), result into $t2.
  std::function<DecodedInst()> build;
  // Independent semantics.
  std::function<u32(u32 a, u32 b)> model;
};

std::vector<OpCase> cases() {
  const auto R = [](Op op) {
    return [op] { return make_r3(op, R_T2, R_T0, R_T1); };
  };
  return {
      {"addu", R(Op::ADDU), [](u32 a, u32 b) { return a + b; }},
      {"subu", R(Op::SUBU), [](u32 a, u32 b) { return a - b; }},
      {"and", R(Op::AND), [](u32 a, u32 b) { return a & b; }},
      {"or", R(Op::OR), [](u32 a, u32 b) { return a | b; }},
      {"xor", R(Op::XOR), [](u32 a, u32 b) { return a ^ b; }},
      {"nor", R(Op::NOR), [](u32 a, u32 b) { return ~(a | b); }},
      {"slt", R(Op::SLT),
       [](u32 a, u32 b) {
         return static_cast<u32>(static_cast<i32>(a) < static_cast<i32>(b));
       }},
      {"sltu", R(Op::SLTU), [](u32 a, u32 b) { return u32{a < b}; }},
      {"sllv",
       [] { return make_shift_var(Op::SLLV, R_T2, R_T1, R_T0); },
       [](u32 a, u32 b) { return b << (a & 31); }},
      {"srlv",
       [] { return make_shift_var(Op::SRLV, R_T2, R_T1, R_T0); },
       [](u32 a, u32 b) { return b >> (a & 31); }},
      {"srav",
       [] { return make_shift_var(Op::SRAV, R_T2, R_T1, R_T0); },
       [](u32 a, u32 b) {
         return static_cast<u32>(static_cast<i32>(b) >> (a & 31));
       }},
  };
}

class IsaSemanticsSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(IsaSemanticsSweep, EmulatorMatchesModelOnRandomOperands) {
  const auto all_cases = cases();
  const OpCase& c = all_cases[GetParam()];
  Rng rng(0x15A + GetParam());
  for (int trial = 0; trial < 500; ++trial) {
    u32 a = rng.next(), b = rng.next();
    // Mix in edge values.
    if (trial < 16) {
      const u32 edges[] = {0, 1, 0x7fffffff, 0x80000000u, 0xffffffffu,
                           0xffff, 0x10000};
      a = edges[trial % 7];
      b = edges[(trial / 7) % 7];
    }
    Program p;
    p.text.push_back(c.build().raw);
    Emulator emu(p);
    emu.set_reg(R_T0, a);
    emu.set_reg(R_T1, b);
    ASSERT_TRUE(emu.step().ok());
    EXPECT_EQ(emu.reg(R_T2), c.model(a, b))
        << c.name << "(" << a << ", " << b << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllAluOps, IsaSemanticsSweep,
    ::testing::Range<std::size_t>(0, cases().size()),
    [](const ::testing::TestParamInfo<std::size_t>& info) {
      return cases()[info.param].name;
    });

// Immediate forms, swept over the full 16-bit immediate space boundary
// values plus random fill.
class ImmediateSweep : public ::testing::TestWithParam<u32> {};

TEST_P(ImmediateSweep, SignAndZeroExtensionAgreeWithModel) {
  const u32 imm = GetParam();
  Rng rng(imm * 2654435761u + 1);
  for (int trial = 0; trial < 100; ++trial) {
    const u32 a = rng.next();
    Program p;
    p.text.push_back(make_iarith(Op::ADDIU, R_T2, R_T0, imm).raw);
    p.text.push_back(make_iarith(Op::ANDI, R_T3, R_T0, imm).raw);
    p.text.push_back(make_iarith(Op::ORI, R_T4, R_T0, imm).raw);
    p.text.push_back(make_iarith(Op::XORI, R_T5, R_T0, imm).raw);
    p.text.push_back(make_iarith(Op::SLTI, R_T6, R_T0, imm).raw);
    p.text.push_back(make_iarith(Op::SLTIU, R_T7, R_T0, imm).raw);
    Emulator emu(p);
    emu.set_reg(R_T0, a);
    for (int i = 0; i < 6; ++i) ASSERT_TRUE(emu.step().ok());
    const u32 simm = sign_extend(imm, 16);
    EXPECT_EQ(emu.reg(R_T2), a + simm);
    EXPECT_EQ(emu.reg(R_T3), a & imm);
    EXPECT_EQ(emu.reg(R_T4), a | imm);
    EXPECT_EQ(emu.reg(R_T5), a ^ imm);
    EXPECT_EQ(emu.reg(R_T6),
              u32{static_cast<i32>(a) < static_cast<i32>(simm)});
    EXPECT_EQ(emu.reg(R_T7), u32{a < simm});
  }
}

INSTANTIATE_TEST_SUITE_P(ImmediateBoundaries, ImmediateSweep,
                         ::testing::Values(0u, 1u, 0x7fffu, 0x8000u, 0xffffu,
                                           0x1234u, 0xfedcu));

// Shift-amount sweep: all 32 amounts for all three immediate shifts.
class ShiftSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(ShiftSweep, AllAmountsMatchModel) {
  const unsigned sh = GetParam();
  Rng rng(sh + 99);
  for (int trial = 0; trial < 200; ++trial) {
    const u32 v = rng.next();
    Program p;
    p.text.push_back(make_shift_imm(Op::SLL, R_T2, R_T0, sh).raw);
    p.text.push_back(make_shift_imm(Op::SRL, R_T3, R_T0, sh).raw);
    p.text.push_back(make_shift_imm(Op::SRA, R_T4, R_T0, sh).raw);
    Emulator emu(p);
    emu.set_reg(R_T0, v);
    for (int i = 0; i < 3; ++i) ASSERT_TRUE(emu.step().ok());
    EXPECT_EQ(emu.reg(R_T2), v << sh);
    EXPECT_EQ(emu.reg(R_T3), v >> sh);
    EXPECT_EQ(emu.reg(R_T4), static_cast<u32>(static_cast<i32>(v) >> sh));
  }
}

INSTANTIATE_TEST_SUITE_P(AllShiftAmounts, ShiftSweep,
                         ::testing::Range(0u, 32u));

}  // namespace
}  // namespace bsp
