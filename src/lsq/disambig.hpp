// Load-store disambiguation with partial address knowledge (paper §5.1).
//
// Pure decision logic shared by the trace-driven Figure-2 characterisation
// and the timing core's LSQ. Addresses are compared serially starting at bit
// 2 (bits 0..1 select the byte within a word; the paper's comparison also
// starts at bit 2), so "k bits compared" means address bits [2, 2+k).
#pragma once

#include <optional>
#include <span>

#include "util/bitops.hpp"

namespace bsp {

inline constexpr unsigned kDisambigLoBit = 2;   // first bit compared
inline constexpr unsigned kDisambigBits = 30;   // bits 2..31

// Speculative forwarding only engages once this many low address bits are
// known: Figure 2 shows a *unique* partial match is almost always the true
// forwarding source only after ~9 compared bits (address bits 2..10); with
// fewer bits the uniqueness is accidental and the speculation mostly wrong.
inline constexpr unsigned kSpecForwardMinBits = 12;

// --- Figure 2 categories -----------------------------------------------------

// Outcome of comparing a load address against the stores in the LSQ using
// the low `k` comparable bits. Mirrors the legend of paper Figure 2.
enum class AliasCategory : u8 {
  NoStoresInQueue,      // trivially disambiguated
  ZeroMatch,            // stores present, all ruled out by the partial bits
  SingleNonMatch,       // one partial match, but full addresses differ
  SingleMatchOneStore,  // one partial match, full match; queue held 1 store
  SingleMatchMultStores,// one partial match, full match; queue held >1 store
  MultMatchSameAddr,    // several partial matches, all the same full address
  MultMatchDiffAddr,    // several partial matches with differing addresses
  kCount
};

inline constexpr unsigned kNumAliasCategories =
    static_cast<unsigned>(AliasCategory::kCount);

const char* alias_category_name(AliasCategory c);

// Classifies one load against the (fully known) prior store addresses using
// `bits_compared` bits from bit 2 upward. Addresses are compared at word
// granularity, as in the paper. bits_compared == kDisambigBits reproduces
// the conventional full comparison.
AliasCategory classify_aliasing(u32 load_addr,
                                std::span<const u32> store_addrs,
                                unsigned bits_compared);

// True when the partial comparison already yields a final decision: the load
// can issue (all ruled out) or has found its unique forwarding store.
bool aliasing_resolved(AliasCategory c);

// --- timing-core decision ------------------------------------------------------

// A store as seen by a load being scheduled: how many low address bits have
// been produced so far, and whether its data is available to forward.
struct StoreView {
  int id = -1;                // core-side tag, returned in the decision
  unsigned addr_known_bits = 0;  // 0 (unknown) .. 32 (complete)
  u32 addr = 0;               // valid in its low addr_known_bits bits
  unsigned bytes = 0;         // access size (valid once address is known)
  bool data_ready = false;
  u32 data = 0;
};

struct LoadQuery {
  unsigned addr_known_bits = 0;
  u32 addr = 0;
  unsigned bytes = 0;
};

enum class LoadDecision : u8 {
  Issue,        // no conflicting older store — may go to memory
  Forward,      // unique fully-matching older store with ready data
  SpecForward,  // unique *partial* match: forward speculatively, verify when
                // the full comparison completes (paper §5.1's suggestion)
  WaitStore,    // must wait (unknown store address / partial match pending /
                // overlapping store not forwardable yet)
};

struct DisambigResult {
  LoadDecision decision = LoadDecision::WaitStore;
  int store_id = -1;       // Forward/SpecForward: the source store
  u32 forwarded = 0;       // Forward/SpecForward: load result value
  bool used_partial = false;  // decision was reached before the load's
                              // address was completely generated
};

// Decides what a load may do given the *older* stores in the LSQ (youngest
// last). Implements the paper's policy:
//   * a store with no known address bits blocks the load (Table 2),
//   * stores are ruled out once the commonly-known low bits differ,
//   * a unique full match forwards if its data is ready (and covers the
//     load's bytes), otherwise blocks,
//   * partial matches that cannot be confirmed yet block.
// When `enable_partial` is false the load needs its own full address and all
// store addresses before any decision (the conventional baseline).
// With `enable_spec_forward`, a single surviving partial match whose store
// address is complete and whose data is ready is forwarded speculatively
// (decision SpecForward); the paper's Figure 2 shows such matches almost
// always confirm. The caller must verify once the full address exists.
DisambigResult disambiguate_load(const LoadQuery& load,
                                 std::span<const StoreView> older_stores,
                                 bool enable_partial,
                                 bool enable_spec_forward = false);

// Extracts the bytes a load wants from a covering store's data.
// Returns nullopt when the store does not fully cover the load.
std::optional<u32> forward_bytes(u32 load_addr, unsigned load_bytes,
                                 u32 store_addr, unsigned store_bytes,
                                 u32 store_data);

// Do the two byte ranges overlap at all?
bool ranges_overlap(u32 a, unsigned a_bytes, u32 b, unsigned b_bytes);

}  // namespace bsp
