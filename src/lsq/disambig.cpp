#include "lsq/disambig.hpp"

#include <algorithm>
#include <cassert>

namespace bsp {

const char* alias_category_name(AliasCategory c) {
  switch (c) {
    case AliasCategory::NoStoresInQueue: return "no stores in queue";
    case AliasCategory::ZeroMatch: return "zero entries match";
    case AliasCategory::SingleNonMatch: return "single entry - non-match";
    case AliasCategory::SingleMatchOneStore:
      return "single entry - match (one store)";
    case AliasCategory::SingleMatchMultStores:
      return "single entry - match (mult stores)";
    case AliasCategory::MultMatchSameAddr:
      return "mult entries match - same addr";
    case AliasCategory::MultMatchDiffAddr:
      return "mult entries match - diff addr";
    case AliasCategory::kCount: break;
  }
  return "?";
}

AliasCategory classify_aliasing(u32 load_addr,
                                std::span<const u32> store_addrs,
                                unsigned bits_compared) {
  assert(bits_compared >= 1 && bits_compared <= kDisambigBits);
  if (store_addrs.empty()) return AliasCategory::NoStoresInQueue;

  const u32 lw = load_addr >> kDisambigLoBit;  // word address (30 bits)
  const u32 mask = low_mask(bits_compared);

  unsigned partial_matches = 0;
  unsigned full_matches = 0;
  bool all_same_full_addr = true;
  u32 first_match_word = 0;
  for (const u32 s : store_addrs) {
    const u32 sw = s >> kDisambigLoBit;
    if (((sw ^ lw) & mask) != 0) continue;
    if (partial_matches == 0)
      first_match_word = sw;
    else if (sw != first_match_word)
      all_same_full_addr = false;
    ++partial_matches;
    if (sw == lw) ++full_matches;
  }

  if (partial_matches == 0) return AliasCategory::ZeroMatch;
  if (partial_matches == 1) {
    if (full_matches == 1)
      return store_addrs.size() == 1 ? AliasCategory::SingleMatchOneStore
                                     : AliasCategory::SingleMatchMultStores;
    return AliasCategory::SingleNonMatch;
  }
  return all_same_full_addr ? AliasCategory::MultMatchSameAddr
                            : AliasCategory::MultMatchDiffAddr;
}

bool aliasing_resolved(AliasCategory c) {
  switch (c) {
    case AliasCategory::NoStoresInQueue:
    case AliasCategory::ZeroMatch:
    case AliasCategory::SingleMatchOneStore:
    case AliasCategory::SingleMatchMultStores:
    case AliasCategory::MultMatchSameAddr:
      return true;  // issue early, or unique forwarding source identified
    case AliasCategory::SingleNonMatch:
    case AliasCategory::MultMatchDiffAddr:
      return false;  // needs more bits
    case AliasCategory::kCount: break;
  }
  return false;
}

bool ranges_overlap(u32 a, unsigned a_bytes, u32 b, unsigned b_bytes) {
  // 64-bit arithmetic so ranges ending at 2^32 don't wrap.
  const u64 a_end = u64{a} + a_bytes;
  const u64 b_end = u64{b} + b_bytes;
  return a < b_end && b < a_end;
}

std::optional<u32> forward_bytes(u32 load_addr, unsigned load_bytes,
                                 u32 store_addr, unsigned store_bytes,
                                 u32 store_data) {
  if (load_addr < store_addr) return std::nullopt;
  const u64 load_end = u64{load_addr} + load_bytes;
  const u64 store_end = u64{store_addr} + store_bytes;
  if (load_end > store_end) return std::nullopt;
  const unsigned shift = (load_addr - store_addr) * 8;  // little-endian
  return (store_data >> shift) & low_mask(load_bytes * 8);
}

DisambigResult disambiguate_load(const LoadQuery& load,
                                 std::span<const StoreView> older_stores,
                                 bool enable_partial,
                                 bool enable_spec_forward) {
  DisambigResult result;

  if (older_stores.empty()) {
    result.decision = LoadDecision::Issue;
    return result;
  }

  // Conventional policy: the comparison hardware works on whole operands, so
  // everything must be fully generated before any decision.
  if (!enable_partial) {
    if (load.addr_known_bits < 32) return result;  // WaitStore
    for (const auto& s : older_stores)
      if (s.addr_known_bits < 32) return result;
  }
  if (load.addr_known_bits <= kDisambigLoBit) return result;

  const StoreView* candidate = nullptr;  // youngest full match
  const StoreView* partial_candidate = nullptr;  // youngest partial match
  unsigned partial_matches = 0;
  for (const auto& s : older_stores) {
    if (s.addr_known_bits <= kDisambigLoBit) return result;  // unknown blocks

    const unsigned common = std::min(load.addr_known_bits, s.addr_known_bits);
    // Compare the commonly-known bits above the byte offset.
    if (!match_bits(load.addr, s.addr, kDisambigLoBit,
                    common - kDisambigLoBit))
      continue;  // ruled out

    if (common < 32) {
      ++partial_matches;
      partial_candidate = &s;
      continue;
    }

    // Fully matching word: does it actually overlap at byte granularity?
    if (!ranges_overlap(load.addr, load.bytes, s.addr, s.bytes)) continue;
    candidate = &s;  // youngest overlapping store wins (stores are oldest
                     // first, so keep overwriting)
  }

  if (partial_matches > 0) {
    // Unconfirmed partial matches: speculate on the unique one when allowed
    // (Figure 2: a sole surviving partial match is almost always the true
    // forwarding source), otherwise wait for more address bits.
    if (enable_spec_forward && partial_matches == 1 && candidate == nullptr &&
        partial_candidate->addr_known_bits == 32 &&
        partial_candidate->data_ready &&
        load.addr_known_bits >= kSpecForwardMinBits) {
      // Speculate that the load's word is the store's word; the load's byte
      // offset lives in its (known) low bits.
      const u32 spec_addr =
          (partial_candidate->addr & ~u32{3}) | (load.addr & 3);
      if (const auto v =
              forward_bytes(spec_addr, load.bytes, partial_candidate->addr,
                            partial_candidate->bytes,
                            partial_candidate->data)) {
        result.decision = LoadDecision::SpecForward;
        result.store_id = partial_candidate->id;
        result.forwarded = *v;
        result.used_partial = true;
        return result;
      }
    }
    return result;  // WaitStore
  }

  result.used_partial = load.addr_known_bits < 32;
  if (!candidate) {
    result.decision = LoadDecision::Issue;
    return result;
  }
  // Forward only when the youngest conflicting store fully covers the load
  // and its data has been produced.
  if (candidate->data_ready) {
    if (const auto v = forward_bytes(load.addr, load.bytes, candidate->addr,
                                     candidate->bytes, candidate->data)) {
      result.decision = LoadDecision::Forward;
      result.store_id = candidate->id;
      result.forwarded = *v;
      return result;
    }
  }
  result.decision = LoadDecision::WaitStore;
  result.used_partial = false;
  return result;
}

}  // namespace bsp
