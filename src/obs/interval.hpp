// Interval time-series sampling of SimStats, plus the self-describing
// counter registry that names every counter exactly once.
//
// Registry
// --------
// `simstats_counters()` enumerates every u64 counter in SimStats — name,
// unit, one-line description, and a member pointer — in the record order
// the campaign store has always serialized them. The store's writer and
// parser and the interval sampler all iterate this one table, so a new
// SimStats counter added here appears everywhere at once and downstream
// tooling can discover fields from the JSONL header instead of
// hard-coding lists.
//
// Sampler
// -------
// `IntervalSampler` snapshots the *delta* of every registered counter
// each time N more instructions have committed, recording rows in memory
// (for the campaign store's per-task series) and optionally streaming
// them as JSONL. Output is byte-deterministic for a fixed config +
// program + seed: fixed key order, `%.6f` for derived rates, no
// timestamps. Row cycles are measured-relative (warm-up excluded) — the
// core rebase()s the sampler at the warm-up boundary.
//
// JSONL schema (one object per line):
//   {"type":"header","version":1,"interval":N,"config":"...",
//    "columns":[{"name":...,"unit":...,"desc":...},...],
//    "derived":[{"name":"ipc",...},{"name":"replay_rate",...},
//               {"name":"l1d_miss_rate",...}]}
//   {"type":"sample","cycle":C,"committed":M,
//    "delta":{"cycles":dc,...all registered counters...},
//    "ipc":R,"replay_rate":R,"l1d_miss_rate":R}
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "util/bitops.hpp"

namespace bsp::obs {

struct CounterDesc {
  const char* name;
  const char* unit;   // "cycles", "insts", "events", "accesses", "slots"
  const char* desc;
  u64 SimStats::* field;
  // Counters appended after a store format has shipped are marked optional:
  // the campaign-store parser defaults them to 0 when a record predates
  // them, so old stores keep resuming. The writer always writes every
  // counter.
  bool optional = false;
};

// Every u64 SimStats counter, in campaign-store record order. The store's
// JSONL byte format depends on this order — append only.
const std::vector<CounterDesc>& simstats_counters();

// Index of `name` in simstats_counters(), or -1 if unregistered.
int counter_index(const std::string& name);

// Derived per-interval rates reported alongside the raw deltas.
struct DerivedDesc {
  const char* name;
  const char* desc;
};
const std::vector<DerivedDesc>& derived_metrics();

// One sampled interval: cumulative position + per-counter deltas in
// simstats_counters() order.
struct IntervalRow {
  u64 cycle = 0;      // measured-relative cycle of the sample
  u64 committed = 0;  // measured-relative committed instructions
  std::vector<u64> delta;

  double ipc() const;
  double replay_rate() const;     // (load+op replays) / committed
  double l1d_miss_rate() const;   // misses / (hits+misses)
};

class IntervalSampler {
 public:
  // Samples every `every` committed instructions; rows stream to `os` as
  // JSONL when non-null (header first) and accumulate in rows() either way.
  explicit IntervalSampler(u64 every, std::ostream* os = nullptr);

  u64 every() const { return every_; }

  // Emits the JSONL header. Call once before the run (the simulator does
  // this from run() with the machine description).
  void begin(const std::string& config);

  // Cheap hot-path gate: has the next sample point been reached?
  bool due(u64 committed) const { return committed >= next_at_; }

  // Re-anchors the baseline (and drops any rows) — called at the warm-up
  // boundary, where the core resets its SimStats.
  void rebase(const SimStats& s);

  // Records one row: deltas of every counter vs. the previous sample.
  // `s.cycles` must already hold the current measured-relative cycle.
  void sample(const SimStats& s);

  // Flushes a final partial interval if any instructions committed since
  // the last sample point.
  void finish(const SimStats& s);

  const std::vector<IntervalRow>& rows() const { return rows_; }

  // Deterministic serialization (shared with the campaign store tests).
  static std::string header_line(u64 every, const std::string& config);
  static std::string row_line(const IntervalRow& row);

 private:
  void record(const SimStats& s);

  u64 every_;
  u64 next_at_;
  std::ostream* os_;
  SimStats base_{};
  std::vector<IntervalRow> rows_;
};

}  // namespace bsp::obs
