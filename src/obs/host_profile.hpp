// Host-phase profiling: where does the simulator's *host* time go?
//
// `SimStats::host_seconds` says how long the cycle loop ran; this breaks
// that wall-clock down by scheduler phase so a BENCH_simcore.json
// regression can be attributed ("commit/co-sim got slower") instead of
// merely observed. Opt-in (`Simulator::enable_host_profile()`): the
// per-phase `steady_clock` reads cost real nanoseconds per simulated
// cycle, so the default run keeps the loop clean and `enabled` false.
//
// Phase buckets mirror the cycle loop's stage order. Two sub-phases are
// *nested inside* their parent and must not be double-counted when
// summing: `cosim` time is part of `commit`, and `replay` (the relaxation
// pass reverting illegal selects) is part of `memory`. total() therefore
// sums the six top-level phases only.
#pragma once

#include "util/bitops.hpp"

namespace bsp::obs {

struct HostProfile {
  bool enabled = false;

  // Top-level phases, in pipeline-stage order (seconds of host time).
  double commit = 0;    // retire + architectural checks (includes cosim)
  double resolve = 0;   // branch resolution + recovery
  double select = 0;    // wakeup/select + slice-op execute
  double memory = 0;    // LSQ disambiguation + cache access/verify
                        // (includes replay)
  double dispatch = 0;  // RUU/LSQ insert + rename + oracle step
  double fetch = 0;     // front-end fetch/predict

  // Nested sub-phases (already counted in their parent above).
  double cosim = 0;     // co-simulation commit check   (subset of commit)
  double replay = 0;    // selective-replay relaxation  (subset of memory)

  // Pre-loop phase: functional fast-forward to the task's start checkpoint
  // (campaign tasks with fast_forward > 0; 0 on a checkpoint-cache hit).
  // Happens before the cycle loop, so it is outside total() — total()
  // remains "seconds inside the instrumented loop".
  double ffwd = 0;

  // Simulated cycles the instrumented loop executed (idle skips count as
  // one loop iteration, not their skipped length) — denominator for
  // ns-per-loop-cycle reporting.
  u64 loop_cycles = 0;

  double total() const {
    return commit + resolve + select + memory + dispatch + fetch;
  }

  // Accumulates another run's profile (phase sums; enabled if either side
  // was). Host time is additive across runs whether they executed serially
  // or in parallel — the sum is total CPU time spent, not wall clock.
  void merge(const HostProfile& other) {
    enabled = enabled || other.enabled;
    commit += other.commit;
    resolve += other.resolve;
    select += other.select;
    memory += other.memory;
    dispatch += other.dispatch;
    fetch += other.fetch;
    cosim += other.cosim;
    replay += other.replay;
    ffwd += other.ffwd;
    loop_cycles += other.loop_cycles;
  }
};

}  // namespace bsp::obs
