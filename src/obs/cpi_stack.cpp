#include "obs/cpi_stack.hpp"

#include <cstdio>
#include <sstream>

namespace bsp::obs {

const std::vector<CpiLeafDesc>& cpi_leaves() {
  static const std::vector<CpiLeafDesc> kLeaves = {
      {CpiCause::Base, "cpi_base", "base",
       "commit slots that retired an instruction", &SimStats::cpi_base},
      {CpiCause::FeIcache, "cpi_fe_icache", "frontend",
       "I-cache fetch stalls", &SimStats::cpi_fe_icache},
      {CpiCause::FeFill, "cpi_fe_fill", "frontend",
       "front-end pipeline fill", &SimStats::cpi_fe_fill},
      {CpiCause::BrSquash, "cpi_br_squash", "frontend",
       "post-misprediction squash refill", &SimStats::cpi_br_squash},
      {CpiCause::RuuFull, "cpi_ruu_full", "backend",
       "window full behind an executing head", &SimStats::cpi_ruu_full},
      {CpiCause::SliceLow, "cpi_slice_low", "backend",
       "waiting for low-slice operands", &SimStats::cpi_slice_low},
      {CpiCause::SliceChain, "cpi_slice_chain", "backend",
       "cross-slice carry chain", &SimStats::cpi_slice_chain},
      {CpiCause::ExecUnit, "cpi_exec_unit", "backend",
       "execution latency of a selected op", &SimStats::cpi_exec_unit},
      {CpiCause::BrResolve, "cpi_br_resolve", "backend",
       "branch resolution outstanding", &SimStats::cpi_br_resolve},
      {CpiCause::LsqDisambig, "cpi_lsq_disambig", "memory",
       "LSQ address disambiguation", &SimStats::cpi_lsq_disambig},
      {CpiCause::Dcache, "cpi_dcache", "memory",
       "D-cache load data", &SimStats::cpi_dcache},
      {CpiCause::PartialTag, "cpi_partial_tag", "speculation",
       "partial-tag way verification", &SimStats::cpi_partial_tag},
      {CpiCause::SpecForward, "cpi_spec_forward", "speculation",
       "speculative forward verification", &SimStats::cpi_spec_forward},
      {CpiCause::StoreData, "cpi_store_data", "memory",
       "store address/data ops", &SimStats::cpi_store_data},
      {CpiCause::Drain, "cpi_drain", "drain",
       "exit drain / end-of-measurement", &SimStats::cpi_drain},
      {CpiCause::Other, "cpi_other", "other",
       "unattributed", &SimStats::cpi_other},
  };
  return kLeaves;
}

const char* cpi_cause_name(CpiCause cause) {
  return cpi_leaves()[static_cast<unsigned>(cause)].name;
}

u64 cpi_slot_total(const SimStats& s) {
  u64 total = 0;
  for (const CpiLeafDesc& leaf : cpi_leaves()) total += s.*leaf.field;
  return total;
}

bool cpi_enabled(const SimStats& s) {
  return s.cycles == 0 || cpi_slot_total(s) != 0;
}

bool cpi_identity_holds(const SimStats& s, unsigned commit_width,
                        std::string* why) {
  const u64 total = cpi_slot_total(s);
  const u64 expect = s.cycles * commit_width;
  if (total == expect) return true;
  if (why) {
    std::ostringstream os;
    os << "cpi identity violated: leaves sum to " << total << ", expected "
       << s.cycles << " cycles * " << commit_width << " wide = " << expect;
    *why = os.str();
  }
  return false;
}

namespace {
std::string pct(u64 part, u64 whole) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%5.1f%%",
                whole ? 100.0 * static_cast<double>(part) /
                            static_cast<double>(whole)
                      : 0.0);
  return buf;
}
}  // namespace

double cpi_contribution(u64 slots, u64 committed, unsigned commit_width) {
  const double denom =
      static_cast<double>(committed) * static_cast<double>(commit_width);
  return denom > 0 ? static_cast<double>(slots) / denom : 0.0;
}

std::string format_cpi_stack(const SimStats& s, unsigned commit_width) {
  std::ostringstream os;
  const u64 total = cpi_slot_total(s);
  os << "CPI stack (" << total << " slots = " << s.cycles << " cycles x "
     << commit_width << " wide):\n";
  for (const CpiLeafDesc& leaf : cpi_leaves()) {
    const u64 slots = s.*leaf.field;
    if (!slots) continue;
    char line[160];
    std::snprintf(line, sizeof line, "  %-16s %12llu  %s  cpi %.4f  (%s)\n",
                  leaf.name, static_cast<unsigned long long>(slots),
                  pct(slots, total).c_str(),
                  cpi_contribution(slots, s.committed, commit_width),
                  leaf.desc);
    os << line;
  }
  std::string why;
  if (cpi_identity_holds(s, commit_width, &why))
    os << "  identity: ok (" << total << " == " << s.cycles << " * "
       << commit_width << ")\n";
  else
    os << "  " << why << "\n";
  return os.str();
}

std::string cpi_stack_json(const SimStats& s, unsigned commit_width) {
  std::ostringstream os;
  os << "{";
  for (const CpiLeafDesc& leaf : cpi_leaves())
    os << "\"" << leaf.name << "\":" << s.*leaf.field << ",";
  os << "\"cycles\":" << s.cycles << ",\"committed\":" << s.committed
     << ",\"commit_width\":" << commit_width << "}";
  return os.str();
}

}  // namespace bsp::obs
