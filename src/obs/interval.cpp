#include "obs/interval.hpp"

#include <cassert>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace bsp::obs {
namespace {

std::string fmt_rate(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6f", v);
  return buf;
}

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

const std::vector<CounterDesc>& simstats_counters() {
  static const std::vector<CounterDesc> kCounters = {
      {"cycles", "cycles", "simulated cycles elapsed", &SimStats::cycles},
      {"committed", "insts", "instructions retired", &SimStats::committed},
      {"dispatched", "insts", "correct-path instructions dispatched",
       &SimStats::dispatched},
      {"bogus_dispatched", "insts", "wrong-path instructions dispatched",
       &SimStats::bogus_dispatched},
      {"branches", "insts", "committed conditional branches",
       &SimStats::branches},
      {"branch_mispredicts", "events", "branch direction/target mispredicts",
       &SimStats::branch_mispredicts},
      {"early_resolved_branches", "events",
       "mispredicts signalled before the last slice completed",
       &SimStats::early_resolved_branches},
      {"loads", "insts", "committed loads", &SimStats::loads},
      {"stores", "insts", "committed stores", &SimStats::stores},
      {"load_forwards", "events", "loads satisfied by store forwarding",
       &SimStats::load_forwards},
      {"loads_issued_partial_lsq", "events",
       "loads issued on a partial-address LSQ compare",
       &SimStats::loads_issued_partial_lsq},
      {"partial_tag_accesses", "accesses",
       "D-cache probes made with a partial tag",
       &SimStats::partial_tag_accesses},
      {"way_mispredicts", "events", "partial-tag way-prediction replays",
       &SimStats::way_mispredicts},
      {"early_miss_detects", "events",
       "misses proven early by the partial tag", &SimStats::early_miss_detects},
      {"load_replays", "events", "load-latency mis-speculation replays",
       &SimStats::load_replays},
      {"op_replays", "events", "slice-ops squashed by selective replay",
       &SimStats::op_replays},
      {"spec_forwards", "events",
       "speculative partial-match store forwards tried",
       &SimStats::spec_forwards},
      {"spec_forward_misses", "events",
       "speculative forwards refuted by verification",
       &SimStats::spec_forward_misses},
      {"narrow_operands", "events",
       "results eligible for narrow-width early release",
       &SimStats::narrow_operands},
      {"l1d_hits", "accesses", "L1 D-cache hits", &SimStats::l1d_hits},
      {"l1d_misses", "accesses", "L1 D-cache misses", &SimStats::l1d_misses},
      {"idle_cycles_skipped", "cycles",
       "simulated cycles fast-forwarded by the idle-skip optimisation",
       &SimStats::idle_cycles_skipped},
      // CPI-stack leaves (obs/cpi_stack.hpp), appended in PR 8 and
      // therefore optional for the store parser. Keep this block in
      // CpiCause enum order — cpi_leaves() indexes it by cause.
      {"cpi_base", "slots", "commit slots that retired an instruction",
       &SimStats::cpi_base, true},
      {"cpi_fe_icache", "slots", "slots lost to I-cache fetch stalls",
       &SimStats::cpi_fe_icache, true},
      {"cpi_fe_fill", "slots", "slots lost to front-end pipeline fill",
       &SimStats::cpi_fe_fill, true},
      {"cpi_br_squash", "slots",
       "slots lost refilling after a branch misprediction squash",
       &SimStats::cpi_br_squash, true},
      {"cpi_ruu_full", "slots",
       "slots lost with the head executing and the RUU full",
       &SimStats::cpi_ruu_full, true},
      {"cpi_slice_low", "slots",
       "slots lost waiting for the head's low-slice operands",
       &SimStats::cpi_slice_low, true},
      {"cpi_slice_chain", "slots",
       "slots lost in the head's cross-slice carry chain",
       &SimStats::cpi_slice_chain, true},
      {"cpi_exec_unit", "slots",
       "slots lost to execution latency of a selected head op",
       &SimStats::cpi_exec_unit, true},
      {"cpi_br_resolve", "slots",
       "slots lost waiting for the head branch to resolve",
       &SimStats::cpi_br_resolve, true},
      {"cpi_lsq_disambig", "slots",
       "slots lost to LSQ address disambiguation",
       &SimStats::cpi_lsq_disambig, true},
      {"cpi_dcache", "slots", "slots lost waiting on D-cache load data",
       &SimStats::cpi_dcache, true},
      {"cpi_partial_tag", "slots",
       "slots lost verifying partial-tag way speculation",
       &SimStats::cpi_partial_tag, true},
      {"cpi_spec_forward", "slots",
       "slots lost verifying speculative partial-match forwards",
       &SimStats::cpi_spec_forward, true},
      {"cpi_store_data", "slots",
       "slots lost waiting for the head store's address/data",
       &SimStats::cpi_store_data, true},
      {"cpi_drain", "slots",
       "slots lost to exit drain or end-of-measurement clamp",
       &SimStats::cpi_drain, true},
      {"cpi_other", "slots", "slots the taxonomy could not attribute",
       &SimStats::cpi_other, true},
  };
  return kCounters;
}

int counter_index(const std::string& name) {
  const auto& regs = simstats_counters();
  for (std::size_t i = 0; i < regs.size(); ++i)
    if (name == regs[i].name) return static_cast<int>(i);
  return -1;
}

const std::vector<DerivedDesc>& derived_metrics() {
  static const std::vector<DerivedDesc> kDerived = {
      {"ipc", "committed / cycles over the interval"},
      {"replay_rate", "(load_replays + op_replays) / committed"},
      {"l1d_miss_rate", "l1d_misses / (l1d_hits + l1d_misses)"},
  };
  return kDerived;
}

namespace {
// Registry indices the derived rates read from a row's delta vector.
struct DerivedIndices {
  int cycles = counter_index("cycles");
  int committed = counter_index("committed");
  int load_replays = counter_index("load_replays");
  int op_replays = counter_index("op_replays");
  int l1d_hits = counter_index("l1d_hits");
  int l1d_misses = counter_index("l1d_misses");
};
const DerivedIndices& idx() {
  static const DerivedIndices k{};
  return k;
}
}  // namespace

double IntervalRow::ipc() const {
  const u64 dc = delta[idx().cycles], dm = delta[idx().committed];
  return dc ? static_cast<double>(dm) / static_cast<double>(dc) : 0.0;
}

double IntervalRow::replay_rate() const {
  const u64 dm = delta[idx().committed];
  const u64 r = delta[idx().load_replays] + delta[idx().op_replays];
  return dm ? static_cast<double>(r) / static_cast<double>(dm) : 0.0;
}

double IntervalRow::l1d_miss_rate() const {
  const u64 acc = delta[idx().l1d_hits] + delta[idx().l1d_misses];
  return acc ? static_cast<double>(delta[idx().l1d_misses]) /
                   static_cast<double>(acc)
             : 0.0;
}

IntervalSampler::IntervalSampler(u64 every, std::ostream* os)
    : every_(every ? every : 1), next_at_(every_), os_(os) {}

std::string IntervalSampler::header_line(u64 every,
                                         const std::string& config) {
  std::ostringstream os;
  os << "{\"type\":\"header\",\"version\":1,\"interval\":" << every
     << ",\"config\":\"" << escape(config) << "\",\"columns\":[";
  bool first = true;
  for (const CounterDesc& c : simstats_counters()) {
    os << (first ? "" : ",") << "{\"name\":\"" << c.name << "\",\"unit\":\""
       << c.unit << "\",\"desc\":\"" << escape(c.desc) << "\"}";
    first = false;
  }
  os << "],\"derived\":[";
  first = true;
  for (const DerivedDesc& d : derived_metrics()) {
    os << (first ? "" : ",") << "{\"name\":\"" << d.name << "\",\"desc\":\""
       << escape(d.desc) << "\"}";
    first = false;
  }
  os << "]}";
  return os.str();
}

std::string IntervalSampler::row_line(const IntervalRow& row) {
  assert(row.delta.size() == simstats_counters().size());
  std::ostringstream os;
  os << "{\"type\":\"sample\",\"cycle\":" << row.cycle
     << ",\"committed\":" << row.committed << ",\"delta\":{";
  const auto& regs = simstats_counters();
  for (std::size_t i = 0; i < regs.size(); ++i)
    os << (i ? ",\"" : "\"") << regs[i].name << "\":" << row.delta[i];
  os << "},\"ipc\":" << fmt_rate(row.ipc())
     << ",\"replay_rate\":" << fmt_rate(row.replay_rate())
     << ",\"l1d_miss_rate\":" << fmt_rate(row.l1d_miss_rate()) << "}";
  return os.str();
}

void IntervalSampler::begin(const std::string& config) {
  if (os_) *os_ << header_line(every_, config) << "\n";
}

void IntervalSampler::rebase(const SimStats& s) {
  base_ = s;
  rows_.clear();
  next_at_ = s.committed + every_;
}

void IntervalSampler::record(const SimStats& s) {
  IntervalRow row;
  row.cycle = s.cycles;
  row.committed = s.committed;
  const auto& regs = simstats_counters();
  row.delta.reserve(regs.size());
  for (const CounterDesc& c : regs)
    row.delta.push_back(s.*(c.field) - base_.*(c.field));
  if (os_) *os_ << row_line(row) << "\n";
  rows_.push_back(std::move(row));
  base_ = s;
}

void IntervalSampler::sample(const SimStats& s) {
  record(s);
  next_at_ = s.committed + every_;
}

void IntervalSampler::finish(const SimStats& s) {
  if (s.committed > base_.committed) record(s);
  if (os_) os_->flush();
}

}  // namespace bsp::obs
