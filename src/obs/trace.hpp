// Structured event tracing: the simulator's single event-emission path.
//
// The timing core used to carry one ad-hoc text trace (`tlog()` calls
// sprinkled through the hot paths). Every observable pipeline event now
// flows through one narrow funnel instead — a `TraceEvent` handed to every
// attached `TraceSink` — and the sinks decide the representation: the
// original human-readable pipe text, Chrome trace-event JSON for
// Perfetto/`chrome://tracing`, or the Konata pipeline-viewer format (see
// obs/sinks.hpp). With no sink attached the emission sites reduce to one
// predictable `if (false)` per event point, so an untraced run pays
// nothing; with sinks attached, tracing is a pure observer — it must never
// change a single timing decision (pinned by tests/test_obs.cpp).
//
// This header is deliberately dependency-light (util only): the core
// includes it without creating a core <-> obs cycle, and sinks can be
// implemented out of tree.
#pragma once

#include <string>

#include "util/bitops.hpp"

namespace bsp::obs {

// One event per interesting scheduling decision. Payload fields `a`/`b` are
// kind-specific (cycles unless noted):
//
//   kind          op_idx      a                  b
//   ------------  ----------  -----------------  ------------------------
//   Dispatch      -           -                  -          text=disasm
//   OpSelect      slice-op    done cycle         -
//   OpReplay      slice-op    -                  -          (select reverted)
//   LsqDecision   -           known addr bits    decision (0 issue,
//                                                 1 forward, 2 spec-forward)
//   CacheAccess   -           spec. data cycle   known addr bits
//   CacheVerify   -           final data cycle   outcome (0 confirmed,
//                                                 1 hit-spec miss, 2 way
//                                                 mispredict, 3 miss,
//                                                 4 spec-fwd ok, 5 refuted)
//   BranchResolve -           resolve cycle      -
//   Squash        -           -                  stall cause (recovery victim)
//   Commit        -           dispatch cycle     -
//   IdleSkip      -           cycles skipped     stall cause (seq/pc unused)
//
// "stall cause" is 1 + CpiCause (obs/cpi_stack.hpp) — the CPI-stack leaf
// the span's wasted commit slots are charged to (0: unannotated, e.g. a
// pre-taxonomy producer). Sinks render it as the leaf name so traces and
// CPI stacks agree on attribution.
enum class EventKind : u8 {
  Dispatch,
  OpSelect,
  OpReplay,
  LsqDecision,
  CacheAccess,
  CacheVerify,
  BranchResolve,
  Squash,
  Commit,
  IdleSkip,
};

// Event flags (meaning depends on kind; unrelated bits stay 0).
inline constexpr u32 kFlagBogus = 1u << 0;        // wrong-path entry
inline constexpr u32 kFlagMispredicted = 1u << 1; // branch disagrees w/ oracle
inline constexpr u32 kFlagEarly = 1u << 2;        // early resolve / early miss
inline constexpr u32 kFlagPartial = 1u << 3;      // partial-bits LSQ / tag
inline constexpr u32 kFlagMultiOp = 1u << 4;      // entry is per-slice ops
inline constexpr u32 kFlagReplay = 1u << 5;       // outcome forced a replay

struct TraceEvent {
  EventKind kind{};
  u64 cycle = 0;
  u64 seq = 0;   // instruction sequence number (0: not instruction-bound)
  u32 pc = 0;
  u32 flags = 0;
  u32 op_idx = 0;
  u64 a = 0;
  u64 b = 0;
  // Dispatch only: disassembly. Borrowed — valid for the duration of the
  // event() call; sinks that need it later must copy.
  const char* text = nullptr;
};

// Run-level context handed to sinks before the first event.
struct TraceMeta {
  unsigned slices = 1;
  std::string config;  // MachineConfig::describe(), possibly multi-line
};

// Sink contract: begin() once before any event, event() in emission order
// (cycle-monotonic — within a cycle, in pipeline-stage order: commit,
// resolve, select, memory, dispatch, fetch), end() once after the last.
// Sinks observe; they must not throw into the simulator's cycle loop.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void begin(const TraceMeta&) {}
  virtual void event(const TraceEvent& ev) = 0;
  virtual void end() {}
};

}  // namespace bsp::obs
