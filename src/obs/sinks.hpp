// Concrete TraceSink implementations.
//
// * PipeTextSink   — the original human-readable "pipeview" text trace,
//                    byte-identical to the formatting the core used to
//                    emit inline (pinned by tests), with the same
//                    [start, end) cycle window.
// * ChromeTraceSink— Chrome trace-event JSON. Open the file in Perfetto
//                    (https://ui.perfetto.dev) or chrome://tracing. One
//                    track per pipeline stage plus one per slice lane;
//                    slice-op execution, cache accesses and in-flight
//                    (dispatch→commit) windows are duration events, the
//                    rest instants. Timestamps are simulated cycles
//                    (1 cycle = 1 "µs" in the viewer).
// * KonataSink     — Konata/Kanata pipeline-viewer log
//                    (https://github.com/shioyadan/Konata): one row per
//                    instruction, per-slice-op stages on separate lanes,
//                    flush-retires for squashed wrong-path entries.
//
// All sinks buffer only what their format forces them to; none of them
// feeds anything back into the simulator.
#pragma once

#include <array>
#include <cstddef>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/trace.hpp"

namespace bsp::obs {

// ---------------------------------------------------------------------------
// PipeTextSink

class PipeTextSink : public TraceSink {
 public:
  explicit PipeTextSink(std::ostream& os, u64 start = 0, u64 end = ~0ull)
      : os_(&os), start_(start), end_(end) {}

  void event(const TraceEvent& ev) override;

 private:
  std::ostream* os_;
  u64 start_, end_;
};

// ---------------------------------------------------------------------------
// ChromeTraceSink

class ChromeTraceSink : public TraceSink {
 public:
  explicit ChromeTraceSink(std::ostream& os) : os_(&os) {}

  void begin(const TraceMeta& meta) override;
  void event(const TraceEvent& ev) override;
  void end() override;

 private:
  // Fixed thread-track ids (slice lanes occupy [kTidSlice0,
  // kTidSlice0 + slices)).
  static constexpr int kTidFrontend = 0;
  static constexpr int kTidSlice0 = 1;
  static constexpr int kTidLsq = 20;
  static constexpr int kTidDcache = 21;
  static constexpr int kTidBranch = 22;
  static constexpr int kTidReplay = 23;
  static constexpr int kTidCommit = 24;
  static constexpr int kTidIdle = 25;

  void emit_meta(int tid, const std::string& name);
  void emit(int tid, const char* ph, const std::string& name, u64 ts, u64 dur,
            const std::string& args_json);

  std::ostream* os_;
  bool first_ = true;
};

// ---------------------------------------------------------------------------
// KonataSink

class KonataSink : public TraceSink {
 public:
  explicit KonataSink(std::ostream& os) : os_(&os) {}

  void begin(const TraceMeta& meta) override;
  void event(const TraceEvent& ev) override;
  void end() override;

 private:
  // Lanes 0..kMaxSlices-1 carry the per-slice-op "X<i>" stages; one extra
  // lane (index kMaxSlices) carries the cache-access "M" stage.
  static constexpr std::size_t kNumLanes = kMaxSlices + 1;
  struct InstState {
    u64 fid = 0;           // Konata instruction id (dispatch order)
    bool ds_open = false;  // "Ds" (dispatch→first select) stage open
    std::array<bool, kNumLanes> open{};  // stage currently open per lane
    std::array<u32, kNumLanes> gen{};    // per-lane generation: bumping it
                                         // cancels a scheduled stage end
  };
  // A stage end scheduled for a future cycle; dropped if the lane's
  // generation moved on (selective replay reverted the select).
  struct PendingEnd {
    u64 cycle;
    u64 order;  // insertion order: deterministic tie-break within a cycle
    u64 seq;
    u32 lane;
    u32 gen;
    std::string stage;
    bool operator>(const PendingEnd& o) const {
      return cycle != o.cycle ? cycle > o.cycle : order > o.order;
    }
  };

  InstState* find(u64 seq);
  void advance_to(u64 cycle);   // emit C records up to `cycle`
  void drain_until(u64 cycle);  // flush pending stage ends due by `cycle`
  void open_lane(InstState& st, u64 seq, u32 lane, u64 end_cycle);
  void close_lane(InstState& st, u32 lane);
  void retire(u64 seq, InstState& st, u64 cycle, int type);

  std::ostream* os_;
  u64 next_fid_ = 0;
  u64 next_rid_ = 0;
  u64 next_order_ = 0;
  u64 cur_cycle_ = 0;
  bool started_ = false;
  std::unordered_map<u64, InstState> live_;
  std::priority_queue<PendingEnd, std::vector<PendingEnd>,
                      std::greater<PendingEnd>>
      pending_;
};

}  // namespace bsp::obs
