// Minimal recursive-descent JSON parser — just enough to let the tests
// validate the observability layer's own output (Chrome trace JSON,
// interval-stats JSONL) without an external dependency. Not a general
// JSON library: numbers are doubles and inputs larger than a trace file
// was ever meant to be are the caller's problem. \uXXXX escapes decode to
// UTF-8, surrogate pairs included; a lone surrogate is a syntax error.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace bsp::obs {

struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind kind = Kind::Null;

  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;  // ordered: deterministic dumps

  bool is_object() const { return kind == Kind::Object; }
  bool is_array() const { return kind == Kind::Array; }
  bool is_number() const { return kind == Kind::Number; }
  bool is_string() const { return kind == Kind::String; }

  // Object member access; nullptr when absent or not an object.
  const JsonValue* get(const std::string& key) const {
    if (kind != Kind::Object) return nullptr;
    const auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

// Parses one complete JSON document (trailing whitespace allowed, trailing
// garbage rejected). Returns nullopt on any syntax error.
std::optional<JsonValue> parse_json(const std::string& text);

// Appends `cp` (a Unicode scalar value, <= U+10FFFF) to `out` as UTF-8.
// Shared by every \uXXXX unescaper in the tree (this parser, the campaign
// store's field extractor) so they cannot drift on encoding rules.
void append_utf8(char32_t cp, std::string& out);

}  // namespace bsp::obs
