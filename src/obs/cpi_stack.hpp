// Top-down CPI-stack cycle accounting over the simulator's commit slots.
//
// The scheduler core charges every cycle x commit-width slot of a measured
// run to exactly one leaf of the stall taxonomy below (the charging rules
// live in core/simulator.cpp and are documented in ARCHITECTURE.md §13).
// This header names the taxonomy once — enum, leaf registry (name, group,
// SimStats member), identity checker and text renderer — so the simulator,
// the CLIs, the campaign report and the tests all agree on it.
//
// Hard invariant, enabled runs only:
//   sum over leaves of SimStats::cpi_*  ==  SimStats::cycles * commit_width
// exactly and deterministically (bit-identical across reruns). Disabled
// runs leave every leaf at zero, so the identity degenerates to 0 == 0
// only when cycles == 0 — use cpi_enabled() to tell the cases apart.
#pragma once

#include <string>
#include <vector>

#include "core/pipeline.hpp"

namespace bsp::obs {

// One leaf per distinct "why did this commit slot not retire an
// instruction" answer (plus Base for the slots that did). Enum order is
// the registry/report order and matches the cpi_* block in
// simstats_counters() — append only.
enum class CpiCause : u8 {
  Base = 0,     // useful slot: an instruction retired
  FeIcache,     // front end stalled on an I-cache miss
  FeFill,       // RUU empty, front-end pipeline still filling
  BrSquash,     // post-misprediction refill (squash shadow)
  RuuFull,      // head executing while the RUU is full (window-limited)
  SliceLow,     // head waiting for its low-slice operands
  SliceChain,   // head waiting on a cross-slice carry chain
  ExecUnit,     // head op selected, execution latency in flight
  BrResolve,    // head branch computed, resolution outstanding
  LsqDisambig,  // head load blocked on LSQ address disambiguation
  Dcache,       // head load waiting on D-cache data
  PartialTag,   // partial-tag way speculation being verified
  SpecForward,  // speculative partial-match forward pending verification
  StoreData,    // head store waiting for its address/data ops
  Drain,        // program-exit drain / end-of-measurement clamp
  Other,        // unattributed backstop (keeps the identity hard)
};

inline constexpr unsigned kNumCpiCauses =
    static_cast<unsigned>(CpiCause::Other) + 1;

struct CpiLeafDesc {
  CpiCause cause;
  const char* name;   // matches the SimStats counter name, "cpi_" prefix
  const char* group;  // coarse rollup: "base","frontend","backend","memory",
                      // "speculation","drain","other"
  const char* desc;
  u64 SimStats::* field;
};

// All leaves, indexed by static_cast<unsigned>(cause).
const std::vector<CpiLeafDesc>& cpi_leaves();

const char* cpi_cause_name(CpiCause cause);

// Sum of every leaf counter — the left side of the accounting identity.
u64 cpi_slot_total(const SimStats& s);

// True when the run carried CPI accounting (any leaf nonzero, or a
// zero-cycle run — a disabled run with cycles > 0 has an all-zero stack).
bool cpi_enabled(const SimStats& s);

// Checks sum(leaves) == cycles * commit_width; on failure returns false
// and, when `why` is non-null, describes the mismatch.
bool cpi_identity_holds(const SimStats& s, unsigned commit_width,
                        std::string* why = nullptr);

// A leaf's conventional CPI contribution: slots / (committed * width).
// The contributions sum to the run's true CPI, with the base leaf pinned
// at the ideal 1/width.
double cpi_contribution(u64 slots, u64 committed, unsigned commit_width);

// Multi-line human-readable stack: one row per nonzero leaf with slot
// count, CPI contribution and share, plus the identity line. Used by
// bsp-sim and bsp-report.
std::string format_cpi_stack(const SimStats& s, unsigned commit_width);

// One-line JSON object {"cpi_base":N,...,"cycles":C,"commit_width":W} in
// registry order — the machine-readable form bsp-report emits.
std::string cpi_stack_json(const SimStats& s, unsigned commit_width);

}  // namespace bsp::obs
