#include "obs/sinks.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "obs/cpi_stack.hpp"

namespace bsp::obs {
namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string hex_pc(u32 pc) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "0x%x", pc);
  return buf;
}

const char* lsq_decision_name(u64 decision) {
  switch (decision) {
    case 1: return "forward";
    case 2: return "spec-forward";
    default: return "issue";
  }
}

const char* verify_outcome_name(u64 outcome) {
  switch (outcome) {
    case 1: return "hit-speculated miss";
    case 2: return "way mispredict";
    case 3: return "miss";
    case 4: return "spec-forward ok";
    case 5: return "spec-forward refuted";
    default: return "confirmed";
  }
}

// Squash/IdleSkip `b` payload: 1 + CpiCause (trace.hpp). nullptr when the
// producer predates the taxonomy (b == 0) or the value is out of range.
const char* stall_cause_name(u64 b) {
  if (b == 0 || b > kNumCpiCauses) return nullptr;
  return cpi_cause_name(static_cast<CpiCause>(b - 1));
}

}  // namespace

// ---------------------------------------------------------------------------
// PipeTextSink — byte-identical to the core's original inline trace.

void PipeTextSink::event(const TraceEvent& ev) {
  if (ev.cycle < start_ || ev.cycle >= end_) return;
  std::ostream& os = *os_;
  switch (ev.kind) {
    case EventKind::Dispatch:
      os << "cyc " << ev.cycle << ": "
         << "D    #" << ev.seq << " pc=0x" << std::hex << ev.pc << std::dec
         << "  " << (ev.text ? ev.text : "")
         << ((ev.flags & kFlagBogus) ? "  [wrong-path]" : "")
         << ((ev.flags & kFlagMispredicted) ? "  [mispredicted]" : "")
         << "\n";
      break;
    case EventKind::OpSelect:
      os << "cyc " << ev.cycle << ": "
         << "X    #" << ev.seq
         << ((ev.flags & kFlagMultiOp) ? ".slice" : ".op") << ev.op_idx
         << "  done@" << ev.a << "\n";
      break;
    case EventKind::CacheAccess:
      os << "cyc " << ev.cycle << ": "
         << "M    #" << ev.seq << " D$ access ("
         << (ev.b < 32 ? "partial tag" : "full address")
         << ((ev.flags & kFlagEarly) ? ", early miss" : "") << ") data@"
         << ev.a << "\n";
      break;
    case EventKind::BranchResolve:
      os << "cyc " << ev.cycle << ": "
         << "B    #" << ev.seq << " resolved@" << ev.a
         << ((ev.flags & kFlagEarly) ? " [early]" : "")
         << ((ev.flags & kFlagMispredicted) ? " MISPREDICT -> recover"
                                            : " ok")
         << "\n";
      break;
    case EventKind::Commit:
      os << "cyc " << ev.cycle << ": "
         << "C    #" << ev.seq << " pc=0x" << std::hex << ev.pc << std::dec
         << "\n";
      break;
    default:
      break;  // kinds the classic text trace never showed
  }
}

// ---------------------------------------------------------------------------
// ChromeTraceSink

void ChromeTraceSink::emit_meta(int tid, const std::string& name) {
  std::ostream& os = *os_;
  os << (first_ ? "\n" : ",\n") << "{\"name\":\"thread_name\",\"ph\":\"M\","
     << "\"pid\":0,\"tid\":" << tid << ",\"args\":{\"name\":\""
     << json_escape(name) << "\"}}";
  first_ = false;
}

void ChromeTraceSink::emit(int tid, const char* ph, const std::string& name,
                           u64 ts, u64 dur, const std::string& args_json) {
  std::ostream& os = *os_;
  os << (first_ ? "\n" : ",\n") << "{\"name\":\"" << json_escape(name)
     << "\",\"ph\":\"" << ph << "\",\"ts\":" << ts;
  if (ph[0] == 'X') os << ",\"dur\":" << dur;
  if (ph[0] == 'i') os << ",\"s\":\"t\"";
  os << ",\"pid\":0,\"tid\":" << tid;
  if (!args_json.empty()) os << ",\"args\":{" << args_json << "}";
  os << "}";
  first_ = false;
}

void ChromeTraceSink::begin(const TraceMeta& meta) {
  std::ostream& os = *os_;
  os << "{\"displayTimeUnit\":\"ns\",\"otherData\":{\"config\":\""
     << json_escape(meta.config) << "\"},\"traceEvents\":[";
  first_ = true;
  os << (first_ ? "\n" : ",\n")
     << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
     << "\"args\":{\"name\":\"bsp-sim\"}}";
  first_ = false;
  emit_meta(kTidFrontend, "frontend/dispatch");
  for (unsigned s = 0; s < meta.slices; ++s)
    emit_meta(kTidSlice0 + static_cast<int>(s),
              std::string("slice lane ") + std::to_string(s));
  emit_meta(kTidLsq, "lsq disambiguation");
  emit_meta(kTidDcache, "d-cache");
  emit_meta(kTidBranch, "branch resolve");
  emit_meta(kTidReplay, "replay/squash");
  emit_meta(kTidCommit, "in-flight (dispatch to commit)");
  emit_meta(kTidIdle, "idle skip");
}

void ChromeTraceSink::event(const TraceEvent& ev) {
  std::string tag = "#";
  tag += std::to_string(ev.seq);
  switch (ev.kind) {
    case EventKind::Dispatch: {
      std::string args = "\"pc\":\"" + hex_pc(ev.pc) + "\"";
      if (ev.text)
        args += ",\"disasm\":\"" + json_escape(ev.text) + "\"";
      if (ev.flags & kFlagBogus) args += ",\"wrong_path\":true";
      if (ev.flags & kFlagMispredicted) args += ",\"mispredicted\":true";
      emit(kTidFrontend, "i", tag + " dispatch", ev.cycle, 0, args);
      break;
    }
    case EventKind::OpSelect: {
      const int lane = kTidSlice0 + static_cast<int>(ev.op_idx);
      const u64 dur = ev.a > ev.cycle ? ev.a - ev.cycle : 1;
      const char* unit = (ev.flags & kFlagMultiOp) ? ".slice" : ".op";
      emit(lane, "X", tag + unit + std::to_string(ev.op_idx), ev.cycle, dur,
           "\"done\":" + std::to_string(ev.a));
      break;
    }
    case EventKind::OpReplay:
      emit(kTidReplay, "i",
           tag + ".op" + std::to_string(ev.op_idx) + " replay", ev.cycle, 0,
           "");
      break;
    case EventKind::LsqDecision:
      emit(kTidLsq, "i",
           tag + " lsq " + lsq_decision_name(ev.b), ev.cycle, 0,
           "\"addr_bits\":" + std::to_string(ev.a));
      break;
    case EventKind::CacheAccess: {
      const u64 dur = ev.a > ev.cycle ? ev.a - ev.cycle : 1;
      std::string name = tag + " D$";
      if (ev.flags & kFlagPartial) name += " partial-tag";
      if (ev.flags & kFlagEarly) name += " early-miss";
      emit(kTidDcache, "X", name, ev.cycle, dur,
           "\"tag_bits\":" + std::to_string(ev.b) +
               ",\"data\":" + std::to_string(ev.a));
      break;
    }
    case EventKind::CacheVerify:
      emit(kTidDcache, "i",
           tag + " verify: " + verify_outcome_name(ev.b), ev.cycle, 0,
           "\"data\":" + std::to_string(ev.a));
      break;
    case EventKind::BranchResolve: {
      std::string name = tag + " resolve";
      if (ev.flags & kFlagEarly) name += " [early]";
      if (ev.flags & kFlagMispredicted) name += " MISPREDICT";
      emit(kTidBranch, "i", name, ev.cycle, 0, "");
      break;
    }
    case EventKind::Squash: {
      std::string args;
      if (const char* cause = stall_cause_name(ev.b))
        args = "\"cause\":\"" + std::string(cause) + "\"";
      emit(kTidReplay, "i", tag + " squash", ev.cycle, 0, args);
      break;
    }
    case EventKind::Commit:
      // In-flight window: dispatch cycle (a) → commit cycle.
      emit(kTidCommit, "X", tag, ev.a,
           ev.cycle > ev.a ? ev.cycle - ev.a : 1,
           "\"pc\":\"" + hex_pc(ev.pc) + "\"");
      break;
    case EventKind::IdleSkip: {
      std::string args;
      if (const char* cause = stall_cause_name(ev.b))
        args = "\"cause\":\"" + std::string(cause) + "\"";
      emit(kTidIdle, "X", "idle", ev.cycle, ev.a ? ev.a : 1, args);
      break;
    }
  }
}

void ChromeTraceSink::end() {
  *os_ << "\n]}\n";
  os_->flush();
}

// ---------------------------------------------------------------------------
// KonataSink

namespace {
constexpr u32 kMemLane = kMaxSlices;  // dedicated lane for the cache stage

std::string lane_stage(u32 lane) {
  if (lane == kMemLane) return "M";
  std::string s = "X";  // (not `"X" + ...`: gcc-12 -Wrestrict false positive)
  s += std::to_string(lane);
  return s;
}
}  // namespace

void KonataSink::begin(const TraceMeta&) {
  *os_ << "Kanata\t0004\n";
  started_ = false;
  cur_cycle_ = 0;
}

void KonataSink::advance_to(u64 cycle) {
  if (!started_) {
    *os_ << "C=\t" << cycle << "\n";
    cur_cycle_ = cycle;
    started_ = true;
    return;
  }
  if (cycle > cur_cycle_) {
    *os_ << "C\t" << (cycle - cur_cycle_) << "\n";
    cur_cycle_ = cycle;
  }
}

KonataSink::InstState* KonataSink::find(u64 seq) {
  const auto it = live_.find(seq);
  return it == live_.end() ? nullptr : &it->second;
}

void KonataSink::drain_until(u64 cycle) {
  while (!pending_.empty() && pending_.top().cycle <= cycle) {
    const PendingEnd p = pending_.top();
    pending_.pop();
    InstState* st = find(p.seq);
    if (!st || st->gen[p.lane] != p.gen) continue;  // replay cancelled it
    advance_to(p.cycle);
    close_lane(*st, p.lane);
  }
}

// Starts the lane's stage at the current cycle and (when it ends in the
// future) schedules the matching E, cancellable by a generation bump.
void KonataSink::open_lane(InstState& st, u64 seq, u32 lane, u64 end_cycle) {
  *os_ << "S\t" << st.fid << "\t" << lane << "\t" << lane_stage(lane) << "\n";
  st.open[lane] = true;
  if (end_cycle > cur_cycle_) {
    pending_.push(
        {end_cycle, next_order_++, seq, lane, st.gen[lane], lane_stage(lane)});
  } else {
    close_lane(st, lane);  // zero-length stage: close immediately
  }
}

void KonataSink::close_lane(InstState& st, u32 lane) {
  *os_ << "E\t" << st.fid << "\t" << lane << "\t" << lane_stage(lane) << "\n";
  st.open[lane] = false;
  ++st.gen[lane];  // any scheduled end for this segment is now stale
}

void KonataSink::retire(u64 seq, InstState& st, u64 cycle, int type) {
  advance_to(cycle);
  // Close anything still open so the viewer doesn't draw dangling stages.
  if (st.ds_open) {
    *os_ << "E\t" << st.fid << "\t0\tDs\n";
    st.ds_open = false;
  }
  for (u32 lane = 0; lane < kNumLanes; ++lane)
    if (st.open[lane]) close_lane(st, lane);
  *os_ << "R\t" << st.fid << "\t" << next_rid_++ << "\t" << type << "\n";
  live_.erase(seq);
}

void KonataSink::event(const TraceEvent& ev) {
  drain_until(ev.cycle);
  advance_to(ev.cycle);
  std::ostream& os = *os_;
  switch (ev.kind) {
    case EventKind::Dispatch: {
      InstState st;
      st.fid = next_fid_++;
      os << "I\t" << st.fid << "\t" << st.fid << "\t0\n";
      std::string label = "#";
      label += std::to_string(ev.seq);
      label += ' ';
      label += hex_pc(ev.pc);
      label += ": ";
      label += ev.text ? ev.text : "";
      if (ev.flags & kFlagBogus) label += " [wrong-path]";
      os << "L\t" << st.fid << "\t0\t" << label << "\n";
      os << "S\t" << st.fid << "\t0\tDs\n";
      st.ds_open = true;
      live_.emplace(ev.seq, st);
      break;
    }
    case EventKind::OpSelect: {
      InstState* st = find(ev.seq);
      if (!st) break;
      if (st->ds_open) {
        os << "E\t" << st->fid << "\t0\tDs\n";
        st->ds_open = false;
      }
      if (st->open[ev.op_idx]) close_lane(*st, ev.op_idx);  // re-select
      open_lane(*st, ev.seq, ev.op_idx, ev.a);
      break;
    }
    case EventKind::OpReplay: {
      // Selective replay reverted this select: abort the stage now (its
      // scheduled end is cancelled by the generation bump in close_lane).
      InstState* st = find(ev.seq);
      if (st && st->open[ev.op_idx]) close_lane(*st, ev.op_idx);
      break;
    }
    case EventKind::CacheAccess: {
      InstState* st = find(ev.seq);
      if (!st) break;
      if (st->open[kMemLane]) close_lane(*st, kMemLane);  // re-timed access
      open_lane(*st, ev.seq, kMemLane, ev.a);
      break;
    }
    case EventKind::CacheVerify: {
      InstState* st = find(ev.seq);
      if (!st) break;
      if (ev.flags & kFlagReplay) {
        // Verification re-timed the data: restart the M stage so it spans
        // to the final data cycle.
        if (st->open[kMemLane]) close_lane(*st, kMemLane);
        if (ev.a > ev.cycle) open_lane(*st, ev.seq, kMemLane, ev.a);
      }
      break;
    }
    case EventKind::BranchResolve:
    case EventKind::LsqDecision:
    case EventKind::IdleSkip:
      break;  // cycle advance is all Konata needs for these
    case EventKind::Squash: {
      InstState* st = find(ev.seq);
      if (st) {
        // Stage-end reason (type-1 label: Konata hover text) so the viewer
        // shows the same cause the CPI stack charges.
        if (const char* cause = stall_cause_name(ev.b))
          os << "L\t" << st->fid << "\t1\tsquash: " << cause << "\n";
        retire(ev.seq, *st, ev.cycle, 1);
      }
      break;
    }
    case EventKind::Commit: {
      InstState* st = find(ev.seq);
      if (st) retire(ev.seq, *st, ev.cycle, 0);
      break;
    }
  }
}

void KonataSink::end() {
  drain_until(~0ull);
  // Flush-retire anything still live (run ended mid-flight), in dispatch
  // order for determinism.
  std::vector<std::pair<u64, u64>> rest;  // (fid, seq)
  rest.reserve(live_.size());
  for (const auto& [seq, st] : live_) rest.emplace_back(st.fid, seq);
  std::sort(rest.begin(), rest.end());
  for (const auto& [fid, seq] : rest) {
    InstState* st = find(seq);
    if (st) retire(seq, *st, cur_cycle_, 1);
  }
  os_->flush();
}

}  // namespace bsp::obs
