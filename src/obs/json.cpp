#include "obs/json.hpp"

#include <cctype>
#include <cstdlib>

namespace bsp::obs {

void append_utf8(char32_t cp, std::string& out) {
  if (cp < 0x80) {
    out += static_cast<char>(cp);
  } else if (cp < 0x800) {
    out += static_cast<char>(0xC0 | (cp >> 6));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  } else if (cp < 0x10000) {
    out += static_cast<char>(0xE0 | (cp >> 12));
    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  } else {
    out += static_cast<char>(0xF0 | (cp >> 18));
    out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  }
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  std::optional<JsonValue> parse() {
    skip_ws();
    JsonValue v;
    if (!value(v)) return std::nullopt;
    skip_ws();
    if (pos_ != s_.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }
  bool eat(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool lit(const char* word, JsonValue& out, JsonValue::Kind kind, bool b) {
    const std::size_t n = std::string(word).size();
    if (s_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    out.kind = kind;
    out.boolean = b;
    return true;
  }

  // Reads exactly four hex digits at pos_ into `cp`.
  bool hex4(char32_t& cp) {
    if (pos_ + 4 > s_.size()) return false;
    cp = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = s_[pos_ + static_cast<std::size_t>(i)];
      cp <<= 4;
      if (c >= '0' && c <= '9')
        cp |= static_cast<char32_t>(c - '0');
      else if (c >= 'a' && c <= 'f')
        cp |= static_cast<char32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F')
        cp |= static_cast<char32_t>(c - 'A' + 10);
      else
        return false;
    }
    pos_ += 4;
    return true;
  }

  bool string(std::string& out) {
    if (!eat('"')) return false;
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            char32_t cp;
            if (!hex4(cp)) return false;
            if (cp >= 0xDC00 && cp <= 0xDFFF) return false;  // lone low
            if (cp >= 0xD800 && cp <= 0xDBFF) {
              // High surrogate: must be chased by \uDC00..\uDFFF; the pair
              // combines into one supplementary-plane code point.
              if (pos_ + 2 > s_.size() || s_[pos_] != '\\' ||
                  s_[pos_ + 1] != 'u')
                return false;
              pos_ += 2;
              char32_t lo;
              if (!hex4(lo)) return false;
              if (lo < 0xDC00 || lo > 0xDFFF) return false;
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            }
            append_utf8(cp, out);
            break;
          }
          default: return false;
        }
      } else {
        out += c;
      }
    }
    return false;  // unterminated
  }

  bool value(JsonValue& out) {
    if (pos_ >= s_.size()) return false;
    const char c = s_[pos_];
    if (c == '{') return object(out);
    if (c == '[') return array(out);
    if (c == '"') {
      out.kind = JsonValue::Kind::String;
      return string(out.str);
    }
    if (c == 't') return lit("true", out, JsonValue::Kind::Bool, true);
    if (c == 'f') return lit("false", out, JsonValue::Kind::Bool, false);
    if (c == 'n') return lit("null", out, JsonValue::Kind::Null, false);
    return number(out);
  }

  bool number(JsonValue& out) {
    const char* start = s_.c_str() + pos_;
    char* end = nullptr;
    out.number = std::strtod(start, &end);
    if (end == start) return false;
    pos_ += static_cast<std::size_t>(end - start);
    out.kind = JsonValue::Kind::Number;
    return true;
  }

  bool array(JsonValue& out) {
    out.kind = JsonValue::Kind::Array;
    if (!eat('[')) return false;
    skip_ws();
    if (eat(']')) return true;
    while (true) {
      JsonValue v;
      skip_ws();
      if (!value(v)) return false;
      out.array.push_back(std::move(v));
      skip_ws();
      if (eat(']')) return true;
      if (!eat(',')) return false;
    }
  }

  bool object(JsonValue& out) {
    out.kind = JsonValue::Kind::Object;
    if (!eat('{')) return false;
    skip_ws();
    if (eat('}')) return true;
    while (true) {
      skip_ws();
      std::string key;
      if (!string(key)) return false;
      skip_ws();
      if (!eat(':')) return false;
      skip_ws();
      JsonValue v;
      if (!value(v)) return false;
      out.object.emplace(std::move(key), std::move(v));
      skip_ws();
      if (eat('}')) return true;
      if (!eat(',')) return false;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<JsonValue> parse_json(const std::string& text) {
  return Parser(text).parse();
}

}  // namespace bsp::obs
