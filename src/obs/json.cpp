#include "obs/json.hpp"

#include <cctype>
#include <cstdlib>

namespace bsp::obs {
namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  std::optional<JsonValue> parse() {
    skip_ws();
    JsonValue v;
    if (!value(v)) return std::nullopt;
    skip_ws();
    if (pos_ != s_.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }
  bool eat(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool lit(const char* word, JsonValue& out, JsonValue::Kind kind, bool b) {
    const std::size_t n = std::string(word).size();
    if (s_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    out.kind = kind;
    out.boolean = b;
    return true;
  }

  bool string(std::string& out) {
    if (!eat('"')) return false;
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) return false;
            out += static_cast<char>(
                std::strtoul(s_.substr(pos_, 4).c_str(), nullptr, 16));
            pos_ += 4;
            break;
          }
          default: return false;
        }
      } else {
        out += c;
      }
    }
    return false;  // unterminated
  }

  bool value(JsonValue& out) {
    if (pos_ >= s_.size()) return false;
    const char c = s_[pos_];
    if (c == '{') return object(out);
    if (c == '[') return array(out);
    if (c == '"') {
      out.kind = JsonValue::Kind::String;
      return string(out.str);
    }
    if (c == 't') return lit("true", out, JsonValue::Kind::Bool, true);
    if (c == 'f') return lit("false", out, JsonValue::Kind::Bool, false);
    if (c == 'n') return lit("null", out, JsonValue::Kind::Null, false);
    return number(out);
  }

  bool number(JsonValue& out) {
    const char* start = s_.c_str() + pos_;
    char* end = nullptr;
    out.number = std::strtod(start, &end);
    if (end == start) return false;
    pos_ += static_cast<std::size_t>(end - start);
    out.kind = JsonValue::Kind::Number;
    return true;
  }

  bool array(JsonValue& out) {
    out.kind = JsonValue::Kind::Array;
    if (!eat('[')) return false;
    skip_ws();
    if (eat(']')) return true;
    while (true) {
      JsonValue v;
      skip_ws();
      if (!value(v)) return false;
      out.array.push_back(std::move(v));
      skip_ws();
      if (eat(']')) return true;
      if (!eat(',')) return false;
    }
  }

  bool object(JsonValue& out) {
    out.kind = JsonValue::Kind::Object;
    if (!eat('{')) return false;
    skip_ws();
    if (eat('}')) return true;
    while (true) {
      skip_ws();
      std::string key;
      if (!string(key)) return false;
      skip_ws();
      if (!eat(':')) return false;
      skip_ws();
      JsonValue v;
      if (!value(v)) return false;
      out.object.emplace(std::move(key), std::move(v));
      skip_ws();
      if (eat('}')) return true;
      if (!eat(',')) return false;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<JsonValue> parse_json(const std::string& text) {
  return Parser(text).parse();
}

}  // namespace bsp::obs
