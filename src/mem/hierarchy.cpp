#include "mem/hierarchy.hpp"

namespace bsp {

MemoryHierarchy::MemoryHierarchy(const HierarchyConfig& cfg)
    : cfg_(cfg),
      l1i_(cfg.l1i, cfg.l1i_latency),
      l1d_(cfg.l1d, cfg.l1d_latency),
      l2_(cfg.l2, cfg.l2_latency) {}

unsigned MemoryHierarchy::below_l1(u32 addr, bool is_write) {
  const auto l2r = l2_.access(addr, is_write);
  unsigned lat = l2_.hit_latency();
  if (!l2r.hit) lat += cfg_.memory_latency;
  return lat;
}

unsigned MemoryHierarchy::fetch_latency(u32 addr) {
  const auto r = l1i_.access(addr, /*is_write=*/false);
  unsigned lat = l1i_.hit_latency();
  if (!r.hit) lat += below_l1(addr, false);
  return lat;
}

unsigned MemoryHierarchy::data_latency(u32 addr, bool is_write,
                                       bool* l1_hit_out) {
  const auto r = l1d_.access(addr, is_write);
  if (l1_hit_out) *l1_hit_out = r.hit;
  unsigned lat = l1d_.hit_latency();
  if (!r.hit) lat += below_l1(addr, is_write);
  return lat;
}

}  // namespace bsp
