// Set-associative cache model with LRU replacement, partial tag matching and
// MRU way prediction (paper §5.2 and §7).
//
// The model tracks tags and replacement state only — data values always come
// from the simulator's backing memory, so a cache never holds stale data and
// the timing and functional paths cannot diverge.
#pragma once

#include <cassert>
#include <optional>
#include <vector>

#include "util/bitops.hpp"

namespace bsp {

struct CacheGeometry {
  u32 size_bytes = 64 * 1024;
  u32 line_bytes = 64;
  unsigned ways = 4;

  unsigned offset_bits() const { return log2_exact(line_bytes); }
  u32 num_sets() const { return size_bytes / (line_bytes * ways); }
  unsigned index_bits() const { return log2_exact(num_sets()); }
  unsigned tag_bits() const { return 32 - offset_bits() - index_bits(); }
  // Lowest address bit belonging to the tag.
  unsigned tag_lo_bit() const { return offset_bits() + index_bits(); }
  bool valid() const {
    return is_pow2(size_bytes) && is_pow2(line_bytes) && ways >= 1 &&
           size_bytes >= line_bytes * ways &&
           is_pow2(num_sets());
  }
};

// Way-selection policy when multiple ways match a partial tag (§7: the paper
// uses MRU; others exist for the ablation study).
enum class WayPolicy { MRU, FirstMatch, Random };

class Cache {
 public:
  explicit Cache(CacheGeometry g, unsigned hit_latency = 1);

  const CacheGeometry& geometry() const { return geom_; }
  unsigned hit_latency() const { return hit_latency_; }

  u32 index_of(u32 addr) const {
    return bits(addr, geom_.offset_bits(), geom_.index_bits());
  }
  u32 tag_of(u32 addr) const { return addr >> geom_.tag_lo_bit(); }

  // --- pure (state-preserving) probes, used by the characterisations -------

  // The way holding `addr`, or nullopt. Does not touch LRU state.
  std::optional<unsigned> find(u32 addr) const;

  // Bitmask of valid ways whose tag agrees with addr's tag on its low
  // `n_tag_bits` bits (n == tag_bits() gives the full comparison).
  u32 partial_match_ways(u32 addr, unsigned n_tag_bits) const;

  // Most recently used valid way of `set` restricted to `way_mask`;
  // nullopt if the mask contains no valid way.
  std::optional<unsigned> mru_way_among(u32 set, u32 way_mask) const;

  // Way-predictor choice among partially matching ways under `policy`.
  // `random_state` is advanced when policy == Random.
  std::optional<unsigned> predict_way(u32 addr, u32 way_mask, WayPolicy policy,
                                      u32* random_state) const;

  // --- state-changing access ------------------------------------------------

  struct AccessResult {
    bool hit = false;
    unsigned way = 0;
    bool evicted = false;   // miss evicted a valid line
    u32 victim_addr = 0;    // line address of the evicted block
    bool victim_dirty = false;
  };

  // Looks up `addr`; on hit updates LRU, on miss fills the LRU way.
  AccessResult access(u32 addr, bool is_write);

  // Invalidates everything (used between measurement phases).
  void flush();

  // --- statistics -------------------------------------------------------------
  u64 accesses() const { return accesses_; }
  u64 misses() const { return misses_; }
  double miss_rate() const {
    return accesses_ ? static_cast<double>(misses_) / accesses_ : 0.0;
  }

 private:
  struct Line {
    bool valid = false;
    bool dirty = false;
    u32 tag = 0;
    u64 lru = 0;  // higher = more recent
  };

  Line& line(u32 set, unsigned way) { return lines_[set * geom_.ways + way]; }
  const Line& line(u32 set, unsigned way) const {
    return lines_[set * geom_.ways + way];
  }

  CacheGeometry geom_;
  unsigned hit_latency_;
  std::vector<Line> lines_;
  u64 tick_ = 0;
  u64 accesses_ = 0;
  u64 misses_ = 0;
};

}  // namespace bsp
