// Two-level memory hierarchy per the paper's Table 2 machine configuration:
//   L1 I$: 64 KB, 2-way, 64 B lines, 1 cycle
//   L1 D$: 64 KB, 4-way, 64 B lines, 1 cycle (2 cycles under slice-by-4, §7.1)
//   L2 unified: 1 MB, 4-way, 64 B lines, 6 cycles
//   main memory: 100 cycles
#pragma once

#include "mem/cache.hpp"

namespace bsp {

struct HierarchyConfig {
  CacheGeometry l1i{64 * 1024, 64, 2};
  unsigned l1i_latency = 1;
  CacheGeometry l1d{64 * 1024, 64, 4};
  unsigned l1d_latency = 1;
  CacheGeometry l2{1024 * 1024, 64, 4};
  unsigned l2_latency = 6;
  unsigned memory_latency = 100;
};

class MemoryHierarchy {
 public:
  explicit MemoryHierarchy(const HierarchyConfig& cfg = {});

  // Total access latency in cycles for an instruction fetch at `addr`.
  unsigned fetch_latency(u32 addr);

  // Total access latency in cycles for a data access at `addr`.
  // `l1_hit_out`, if non-null, reports whether L1D hit (the speculative
  // scheduler needs this to decide replay).
  unsigned data_latency(u32 addr, bool is_write, bool* l1_hit_out = nullptr);

  Cache& l1i() { return l1i_; }
  Cache& l1d() { return l1d_; }
  Cache& l2() { return l2_; }
  const Cache& l1d() const { return l1d_; }
  const HierarchyConfig& config() const { return cfg_; }

 private:
  unsigned below_l1(u32 addr, bool is_write);

  HierarchyConfig cfg_;
  Cache l1i_;
  Cache l1d_;
  Cache l2_;
};

}  // namespace bsp
