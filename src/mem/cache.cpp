#include "mem/cache.hpp"

namespace bsp {

Cache::Cache(CacheGeometry g, unsigned hit_latency)
    : geom_(g), hit_latency_(hit_latency), lines_(g.num_sets() * g.ways) {
  assert(g.valid());
  assert(g.ways <= 32 && "way masks are 32-bit");
}

std::optional<unsigned> Cache::find(u32 addr) const {
  const u32 set = index_of(addr);
  const u32 tag = tag_of(addr);
  for (unsigned w = 0; w < geom_.ways; ++w) {
    const Line& l = line(set, w);
    if (l.valid && l.tag == tag) return w;
  }
  return std::nullopt;
}

u32 Cache::partial_match_ways(u32 addr, unsigned n_tag_bits) const {
  assert(n_tag_bits <= geom_.tag_bits());
  const u32 set = index_of(addr);
  const u32 tag = tag_of(addr);
  const u32 mask = low_mask(n_tag_bits);
  u32 result = 0;
  for (unsigned w = 0; w < geom_.ways; ++w) {
    const Line& l = line(set, w);
    if (l.valid && ((l.tag ^ tag) & mask) == 0) result |= u32{1} << w;
  }
  return result;
}

std::optional<unsigned> Cache::mru_way_among(u32 set, u32 way_mask) const {
  std::optional<unsigned> best;
  u64 best_lru = 0;
  for (unsigned w = 0; w < geom_.ways; ++w) {
    if (!(way_mask & (u32{1} << w))) continue;
    const Line& l = line(set, w);
    if (!l.valid) continue;
    if (!best || l.lru > best_lru) {
      best = w;
      best_lru = l.lru;
    }
  }
  return best;
}

std::optional<unsigned> Cache::predict_way(u32 addr, u32 way_mask,
                                           WayPolicy policy,
                                           u32* random_state) const {
  if (way_mask == 0) return std::nullopt;
  const u32 set = index_of(addr);
  switch (policy) {
    case WayPolicy::MRU:
      return mru_way_among(set, way_mask);
    case WayPolicy::FirstMatch:
      return static_cast<unsigned>(std::countr_zero(way_mask));
    case WayPolicy::Random: {
      // xorshift over the caller-provided state: deterministic per run.
      u32 x = *random_state ? *random_state : 0x2545f491u;
      x ^= x << 13; x ^= x >> 17; x ^= x << 5;
      *random_state = x;
      const unsigned n = static_cast<unsigned>(std::popcount(way_mask));
      unsigned pick = x % n;
      for (unsigned w = 0; w < geom_.ways; ++w) {
        if (way_mask & (u32{1} << w)) {
          if (pick == 0) return w;
          --pick;
        }
      }
      return std::nullopt;
    }
  }
  return std::nullopt;
}

Cache::AccessResult Cache::access(u32 addr, bool is_write) {
  ++accesses_;
  ++tick_;
  const u32 set = index_of(addr);
  const u32 tag = tag_of(addr);

  AccessResult r;
  if (const auto w = find(addr)) {
    Line& l = line(set, *w);
    l.lru = tick_;
    if (is_write) l.dirty = true;
    r.hit = true;
    r.way = *w;
    return r;
  }

  ++misses_;
  // Victim: an invalid way if any, else the LRU way.
  unsigned victim = 0;
  u64 victim_lru = ~u64{0};
  for (unsigned w = 0; w < geom_.ways; ++w) {
    const Line& l = line(set, w);
    if (!l.valid) {
      victim = w;
      victim_lru = 0;
      break;
    }
    if (l.lru < victim_lru) {
      victim = w;
      victim_lru = l.lru;
    }
  }
  Line& v = line(set, victim);
  if (v.valid) {
    r.evicted = true;
    r.victim_addr = (v.tag << geom_.tag_lo_bit()) |
                    (set << geom_.offset_bits());
    r.victim_dirty = v.dirty;
  }
  v.valid = true;
  v.dirty = is_write;
  v.tag = tag;
  v.lru = tick_;
  r.hit = false;
  r.way = victim;
  return r;
}

void Cache::flush() {
  for (auto& l : lines_) l = Line{};
  tick_ = 0;
}

}  // namespace bsp
