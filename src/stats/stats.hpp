// Lightweight statistics primitives for the simulator and benches: fixed-
// range histograms and running means with deterministic output.
#pragma once

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "util/bitops.hpp"

namespace bsp {

// Monotonic stopwatch for host-side throughput accounting (simulated
// commits per wall-clock second). Starts at construction.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

// Histogram over the integer range [0, buckets); values past the end land in
// the final overflow bucket.
class Histogram {
 public:
  explicit Histogram(std::size_t buckets) : counts_(buckets + 1, 0) {}

  void add(u64 value, u64 weight = 1) {
    const std::size_t i =
        value < counts_.size() - 1 ? static_cast<std::size_t>(value)
                                   : counts_.size() - 1;
    counts_[i] += weight;
    total_ += weight;
    sum_ += value * weight;
    prefix_valid_ = false;
  }

  // Combines another histogram's samples into this one (per-bucket count
  // sums). Both histograms must have the same bucket count — merging
  // differently-shaped distributions is a logic error, asserted. Used by the
  // sampled-simulation stitcher to fold per-interval distributions into an
  // aggregate; merging is exactly equivalent to having add()ed every sample
  // into one histogram.
  void merge(const Histogram& other) {
    assert(counts_.size() == other.counts_.size());
    for (std::size_t i = 0; i < counts_.size(); ++i)
      counts_[i] += other.counts_[i];
    total_ += other.total_;
    sum_ += other.sum_;
    prefix_valid_ = false;
  }

  u64 count(std::size_t bucket) const { return counts_[bucket]; }
  u64 overflow() const { return counts_.back(); }
  u64 total() const { return total_; }
  double mean() const {
    return total_ ? static_cast<double>(sum_) / total_ : 0.0;
  }
  double fraction(std::size_t bucket) const {
    return total_ ? static_cast<double>(counts_[bucket]) / total_ : 0.0;
  }
  // Fraction of samples <= bucket. Amortised O(1): the prefix sums are
  // memoized and rebuilt lazily after the next add(), so report loops that
  // sweep every bucket (CDF dumps, percentile tables) are linear overall
  // instead of quadratic.
  double cumulative(std::size_t bucket) const {
    if (!total_) return 0.0;
    refresh_prefix();
    const std::size_t i = bucket < prefix_.size() ? bucket : prefix_.size() - 1;
    return static_cast<double>(prefix_[i]) / total_;
  }
  // Smallest bucket b with cumulative(b) >= p, for p in [0,1] (asserted).
  // p = 0 returns the smallest non-empty bucket (the minimum sample), not
  // bucket 0. An empty histogram has no percentiles: every call returns the
  // overflow bucket index (== buckets()) so the misuse is conspicuous
  // instead of masquerading as a sample in bucket 0.
  std::size_t percentile(double p) const {
    assert(p >= 0.0 && p <= 1.0);
    if (total_ == 0) return counts_.size() - 1;
    u64 target = static_cast<u64>(p * static_cast<double>(total_) + 0.5);
    if (target == 0) target = 1;  // p = 0: the first sample
    refresh_prefix();
    const auto it = std::lower_bound(prefix_.begin(), prefix_.end(), target);
    return it == prefix_.end()
               ? counts_.size() - 1
               : static_cast<std::size_t>(it - prefix_.begin());
  }
  std::size_t buckets() const { return counts_.size() - 1; }

 private:
  void refresh_prefix() const {
    if (prefix_valid_) return;
    prefix_.resize(counts_.size());
    u64 s = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      s += counts_[i];
      prefix_[i] = s;
    }
    prefix_valid_ = true;
  }

  std::vector<u64> counts_;
  u64 total_ = 0;
  u64 sum_ = 0;
  // Memoized inclusive prefix sums for cumulative()/percentile();
  // invalidated by add(), rebuilt on demand.
  mutable std::vector<u64> prefix_;
  mutable bool prefix_valid_ = false;
};

class RunningMean {
 public:
  void add(double v) {
    ++n_;
    sum_ += v;
    min_ = n_ == 1 ? v : (v < min_ ? v : min_);
    max_ = n_ == 1 ? v : (v > max_ ? v : max_);
  }
  // Combines another accumulator's samples (order-independent; an empty
  // side contributes nothing, including to min/max).
  void merge(const RunningMean& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    n_ += other.n_;
    sum_ += other.sum_;
    min_ = other.min_ < min_ ? other.min_ : min_;
    max_ = other.max_ > max_ ? other.max_ : max_;
  }
  u64 count() const { return n_; }
  double mean() const { return n_ ? sum_ / n_ : 0.0; }
  // An empty accumulator has no extrema; min()/max() are defined to return
  // 0.0 (matching mean()) so report code can print an empty series without
  // branching, instead of reading whatever the fields happened to hold.
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  u64 n_ = 0;
  double sum_ = 0, min_ = 0, max_ = 0;
};

// Geometric mean accumulator (speedups are averaged geometrically in the
// ablation reports; the paper's averages are arithmetic and we report both).
class GeoMean {
 public:
  void add(double v) {
    assert(v > 0);
    ++n_;
    log_sum_ += std::log(v);
  }
  u64 count() const { return n_; }
  double mean() const { return n_ ? std::exp(log_sum_ / n_) : 0.0; }

 private:
  u64 n_ = 0;
  double log_sum_ = 0;
};

}  // namespace bsp
