#include "isa/isa.hpp"

#include <cassert>
#include <cctype>
#include <cstdio>
#include <map>

namespace bsp {

namespace {

constexpr std::array<std::string_view, kNumRegs> kRegNames = {
    "$zero", "$at", "$v0", "$v1", "$a0", "$a1", "$a2", "$a3",
    "$t0",   "$t1", "$t2", "$t3", "$t4", "$t5", "$t6", "$t7",
    "$s0",   "$s1", "$s2", "$s3", "$s4", "$s5", "$s6", "$s7",
    "$t8",   "$t9", "$k0", "$k1", "$gp", "$sp", "$fp", "$ra"};

}  // namespace

constexpr std::array<OpInfo, kNumOps> kOpInfoTable = {{
#define BSP_OP(en, mn, fmt, opc, funct, cls, sig, imm)                     \
  OpInfo{Op::en,        mn,  InstFormat::fmt, opc, funct, ExecClass::cls, \
         OperandSig::sig, ImmKind::imm},
#include "isa/opcodes.def"
#undef BSP_OP
}};

std::string_view reg_name(unsigned i) {
  assert(i < kNumRegs);
  return kRegNames[i];
}

std::optional<unsigned> parse_reg(std::string_view s) {
  if (s.empty()) return std::nullopt;
  if (s.front() == '$') s.remove_prefix(1);
  if (s.empty()) return std::nullopt;
  // Numeric form.
  if (std::isdigit(static_cast<unsigned char>(s.front()))) {
    unsigned v = 0;
    for (char c : s) {
      if (!std::isdigit(static_cast<unsigned char>(c))) return std::nullopt;
      v = v * 10 + static_cast<unsigned>(c - '0');
      if (v >= kNumRegs) return std::nullopt;
    }
    return v;
  }
  for (unsigned i = 0; i < kNumRegs; ++i) {
    if (kRegNames[i].substr(1) == s) return i;
  }
  return std::nullopt;
}

std::optional<unsigned> parse_fp_reg(std::string_view s) {
  if (s.empty()) return std::nullopt;
  if (s.front() == '$') s.remove_prefix(1);
  if (s.size() < 2 || s.front() != 'f') return std::nullopt;
  s.remove_prefix(1);
  unsigned v = 0;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return std::nullopt;
    v = v * 10 + static_cast<unsigned>(c - '0');
    if (v >= 32) return std::nullopt;
  }
  return v;
}

std::optional<Op> op_from_mnemonic(std::string_view mnemonic) {
  static const std::map<std::string_view, Op> index = [] {
    std::map<std::string_view, Op> m;
    for (const auto& info : kOpInfoTable) m.emplace(info.mnemonic, info.op);
    return m;
  }();
  const auto it = index.find(mnemonic);
  if (it == index.end()) return std::nullopt;
  return it->second;
}

// ---------------------------------------------------------------------------
// DecodedInst accessors
// ---------------------------------------------------------------------------

u32 DecodedInst::imm_value() const {
  switch (info().imm) {
    case ImmKind::None: return 0;
    case ImmKind::Sign: return sign_extend(imm, 16);
    case ImmKind::Zero: return imm & 0xffffu;
    case ImmKind::Upper: return (imm & 0xffffu) << 16;
    case ImmKind::BranchOff: return sign_extend(imm, 16) << 2;
    case ImmKind::JumpTarget: return (imm & 0x03ffffffu) << 2;
  }
  return 0;
}

u32 DecodedInst::branch_target(u32 pc) const {
  switch (info().imm) {
    case ImmKind::BranchOff:
      return pc + 4 + imm_value();
    case ImmKind::JumpTarget:
      return ((pc + 4) & 0xf0000000u) | imm_value();
    default:
      return pc + 4;
  }
}

unsigned DecodedInst::mem_bytes() const {
  switch (op) {
    case Op::LB: case Op::LBU: case Op::SB: return 1;
    case Op::LH: case Op::LHU: case Op::SH: return 2;
    case Op::LW: case Op::SW: case Op::LWC1: case Op::SWC1: return 4;
    default: return 0;
  }
}

bool DecodedInst::mem_sign_extend() const {
  return op == Op::LB || op == Op::LH;
}

// ---------------------------------------------------------------------------
// Decode / encode
// ---------------------------------------------------------------------------

std::optional<DecodedInst> decode(u32 raw) {
  const u8 opcode = static_cast<u8>(bits(raw, 26, 6));
  const u8 rs = static_cast<u8>(bits(raw, 21, 5));
  const u8 rt = static_cast<u8>(bits(raw, 16, 5));
  const u8 rd = static_cast<u8>(bits(raw, 11, 5));
  const u8 shamt = static_cast<u8>(bits(raw, 6, 5));
  const u8 funct = static_cast<u8>(bits(raw, 0, 6));

  for (const auto& info : kOpInfoTable) {
    bool match = false;
    switch (info.format) {
      case InstFormat::R:
        match = opcode == 0 && info.funct == funct;
        break;
      case InstFormat::REGIMM:
        match = opcode == 0x01 && info.funct == rt;
        break;
      case InstFormat::FP_R:
        match = opcode == 0x11 && rs != 0x08 &&
                info.funct == static_cast<u16>((u16{rs} << 6) | funct);
        break;
      case InstFormat::FP_BC:
        match = opcode == 0x11 && rs == 0x08 && info.funct == rt;
        break;
      case InstFormat::I:
      case InstFormat::J:
        match = info.opcode == opcode;
        break;
    }
    if (!match) continue;

    DecodedInst d;
    d.op = info.op;
    d.raw = raw;
    switch (info.format) {
      case InstFormat::R:
      case InstFormat::FP_R:
        d.rs = rs; d.rt = rt; d.rd = rd; d.shamt = shamt;
        break;
      case InstFormat::REGIMM:
        d.rs = rs;
        d.imm = bits(raw, 0, 16);
        break;
      case InstFormat::FP_BC:
        d.imm = bits(raw, 0, 16);
        break;
      case InstFormat::I:
        d.rs = rs; d.rt = rt;
        d.imm = bits(raw, 0, 16);
        break;
      case InstFormat::J:
        d.imm = bits(raw, 0, 26);
        break;
    }
    return d;
  }
  return std::nullopt;
}

u32 encode(const DecodedInst& d) {
  const OpInfo& info = d.info();
  u32 raw = 0;
  switch (info.format) {
    case InstFormat::R:
      raw = (u32{d.rs} << 21) | (u32{d.rt} << 16) | (u32{d.rd} << 11) |
            (u32{d.shamt} << 6) | info.funct;
      break;
    case InstFormat::REGIMM:
      raw = (u32{0x01} << 26) | (u32{d.rs} << 21) | (u32{info.funct} << 16) |
            (d.imm & 0xffffu);
      break;
    case InstFormat::I:
      raw = (u32{info.opcode} << 26) | (u32{d.rs} << 21) | (u32{d.rt} << 16) |
            (d.imm & 0xffffu);
      break;
    case InstFormat::J:
      raw = (u32{info.opcode} << 26) | (d.imm & 0x03ffffffu);
      break;
    case InstFormat::FP_R:
      raw = (u32{0x11} << 26) | (static_cast<u32>(info.funct >> 6) << 21) |
            (u32{d.rt} << 16) | (u32{d.rd} << 11) | (u32{d.shamt} << 6) |
            (info.funct & 0x3fu);
      break;
    case InstFormat::FP_BC:
      raw = (u32{0x11} << 26) | (u32{0x08} << 21) | (u32{info.funct} << 16) |
            (d.imm & 0xffffu);
      break;
  }
  return raw;
}

// ---------------------------------------------------------------------------
// Builders
// ---------------------------------------------------------------------------

namespace {
DecodedInst finish(DecodedInst d) {
  d.raw = encode(d);
  return d;
}
}  // namespace

DecodedInst make_r3(Op op, unsigned rd, unsigned rs, unsigned rt) {
  assert(op_info(op).sig == OperandSig::R3);
  DecodedInst d;
  d.op = op; d.rd = static_cast<u8>(rd);
  d.rs = static_cast<u8>(rs); d.rt = static_cast<u8>(rt);
  return finish(d);
}

DecodedInst make_shift_imm(Op op, unsigned rd, unsigned rt, unsigned shamt) {
  assert(op_info(op).sig == OperandSig::ShiftImm);
  DecodedInst d;
  d.op = op; d.rd = static_cast<u8>(rd); d.rt = static_cast<u8>(rt);
  d.shamt = static_cast<u8>(shamt & 31);
  return finish(d);
}

DecodedInst make_shift_var(Op op, unsigned rd, unsigned rt, unsigned rs) {
  assert(op_info(op).sig == OperandSig::ShiftVar);
  DecodedInst d;
  d.op = op; d.rd = static_cast<u8>(rd);
  d.rt = static_cast<u8>(rt); d.rs = static_cast<u8>(rs);
  return finish(d);
}

DecodedInst make_iarith(Op op, unsigned rt, unsigned rs, u32 imm16) {
  assert(op_info(op).sig == OperandSig::IArith);
  DecodedInst d;
  d.op = op; d.rt = static_cast<u8>(rt); d.rs = static_cast<u8>(rs);
  d.imm = imm16 & 0xffffu;
  return finish(d);
}

DecodedInst make_lui(unsigned rt, u32 imm16) {
  DecodedInst d;
  d.op = Op::LUI; d.rt = static_cast<u8>(rt);
  d.imm = imm16 & 0xffffu;
  return finish(d);
}

DecodedInst make_mem(Op op, unsigned rt, unsigned rs, i32 offset) {
  assert(op_info(op).sig == OperandSig::Mem);
  DecodedInst d;
  d.op = op; d.rt = static_cast<u8>(rt); d.rs = static_cast<u8>(rs);
  d.imm = static_cast<u32>(offset) & 0xffffu;
  return finish(d);
}

DecodedInst make_br2(Op op, unsigned rs, unsigned rt, i32 offset_words) {
  assert(op_info(op).sig == OperandSig::Br2);
  DecodedInst d;
  d.op = op; d.rs = static_cast<u8>(rs); d.rt = static_cast<u8>(rt);
  d.imm = static_cast<u32>(offset_words) & 0xffffu;
  return finish(d);
}

DecodedInst make_br1(Op op, unsigned rs, i32 offset_words) {
  assert(op_info(op).sig == OperandSig::Br1);
  DecodedInst d;
  d.op = op; d.rs = static_cast<u8>(rs);
  d.imm = static_cast<u32>(offset_words) & 0xffffu;
  return finish(d);
}

DecodedInst make_jump(Op op, u32 target_addr) {
  assert(op_info(op).sig == OperandSig::JTarget);
  DecodedInst d;
  d.op = op;
  d.imm = (target_addr >> 2) & 0x03ffffffu;
  return finish(d);
}

DecodedInst make_jr(unsigned rs) {
  DecodedInst d;
  d.op = Op::JR; d.rs = static_cast<u8>(rs);
  return finish(d);
}

DecodedInst make_jalr(unsigned rd, unsigned rs) {
  DecodedInst d;
  d.op = Op::JALR; d.rd = static_cast<u8>(rd); d.rs = static_cast<u8>(rs);
  return finish(d);
}

DecodedInst make_rsrt(Op op, unsigned rs, unsigned rt) {
  assert(op_info(op).sig == OperandSig::RsRt);
  DecodedInst d;
  d.op = op; d.rs = static_cast<u8>(rs); d.rt = static_cast<u8>(rt);
  return finish(d);
}

DecodedInst make_rd(Op op, unsigned rd) {
  assert(op_info(op).sig == OperandSig::Rd);
  DecodedInst d;
  d.op = op; d.rd = static_cast<u8>(rd);
  return finish(d);
}

DecodedInst make_syscall() {
  DecodedInst d;
  d.op = Op::SYSCALL;
  return finish(d);
}

DecodedInst make_nop() {
  DecodedInst d;
  d.op = Op::SLL;  // sll $0,$0,0 encodes as all-zero: the canonical nop
  return finish(d);
}

DecodedInst make_fp3(Op op, unsigned fd, unsigned fs, unsigned ft) {
  assert(op_info(op).sig == OperandSig::FpR3);
  DecodedInst d;
  d.op = op;
  d.shamt = static_cast<u8>(fd);
  d.rd = static_cast<u8>(fs);
  d.rt = static_cast<u8>(ft);
  return finish(d);
}

DecodedInst make_fp2(Op op, unsigned fd, unsigned fs) {
  assert(op_info(op).sig == OperandSig::FpR2);
  DecodedInst d;
  d.op = op;
  d.shamt = static_cast<u8>(fd);
  d.rd = static_cast<u8>(fs);
  return finish(d);
}

DecodedInst make_fpcmp(Op op, unsigned fs, unsigned ft) {
  assert(op_info(op).sig == OperandSig::FpCmp);
  DecodedInst d;
  d.op = op;
  d.rd = static_cast<u8>(fs);
  d.rt = static_cast<u8>(ft);
  return finish(d);
}

DecodedInst make_mfc1(unsigned rt, unsigned fs) {
  DecodedInst d;
  d.op = Op::MFC1;
  d.rt = static_cast<u8>(rt);
  d.rd = static_cast<u8>(fs);
  return finish(d);
}

DecodedInst make_mtc1(unsigned rt, unsigned fs) {
  DecodedInst d;
  d.op = Op::MTC1;
  d.rt = static_cast<u8>(rt);
  d.rd = static_cast<u8>(fs);
  return finish(d);
}

DecodedInst make_fpmem(Op op, unsigned ft, unsigned rs, i32 offset) {
  assert(op_info(op).sig == OperandSig::FpMem);
  DecodedInst d;
  d.op = op;
  d.rt = static_cast<u8>(ft);
  d.rs = static_cast<u8>(rs);
  d.imm = static_cast<u32>(offset) & 0xffffu;
  return finish(d);
}

DecodedInst make_fpbr(Op op, i32 offset_words) {
  assert(op_info(op).sig == OperandSig::FpBr);
  DecodedInst d;
  d.op = op;
  d.imm = static_cast<u32>(offset_words) & 0xffffu;
  return finish(d);
}

// ---------------------------------------------------------------------------
// Disassembler
// ---------------------------------------------------------------------------

std::string disassemble(const DecodedInst& d, u32 pc) {
  if (d.is_nop()) return "nop";
  const OpInfo& info = d.info();
  char buf[96];
  const auto r = [](unsigned i) { return kRegNames[i].data(); };
  switch (info.sig) {
    case OperandSig::R3:
      std::snprintf(buf, sizeof buf, "%s %s, %s, %s", info.mnemonic.data(),
                    r(d.rd), r(d.rs), r(d.rt));
      break;
    case OperandSig::ShiftImm:
      std::snprintf(buf, sizeof buf, "%s %s, %s, %u", info.mnemonic.data(),
                    r(d.rd), r(d.rt), d.shamt);
      break;
    case OperandSig::ShiftVar:
      std::snprintf(buf, sizeof buf, "%s %s, %s, %s", info.mnemonic.data(),
                    r(d.rd), r(d.rt), r(d.rs));
      break;
    case OperandSig::RsRt:
      std::snprintf(buf, sizeof buf, "%s %s, %s", info.mnemonic.data(),
                    r(d.rs), r(d.rt));
      break;
    case OperandSig::Rd:
      std::snprintf(buf, sizeof buf, "%s %s", info.mnemonic.data(), r(d.rd));
      break;
    case OperandSig::Rs:
      std::snprintf(buf, sizeof buf, "%s %s", info.mnemonic.data(), r(d.rs));
      break;
    case OperandSig::RdRs:
      std::snprintf(buf, sizeof buf, "%s %s, %s", info.mnemonic.data(),
                    r(d.rd), r(d.rs));
      break;
    case OperandSig::NoOps:
      std::snprintf(buf, sizeof buf, "%s", info.mnemonic.data());
      break;
    case OperandSig::IArith:
      std::snprintf(buf, sizeof buf, "%s %s, %s, %d", info.mnemonic.data(),
                    r(d.rt), r(d.rs),
                    info.imm == ImmKind::Zero
                        ? static_cast<i32>(d.imm & 0xffffu)
                        : static_cast<i32>(sign_extend(d.imm, 16)));
      break;
    case OperandSig::Lui:
      std::snprintf(buf, sizeof buf, "%s %s, 0x%x", info.mnemonic.data(),
                    r(d.rt), d.imm & 0xffffu);
      break;
    case OperandSig::Mem:
      std::snprintf(buf, sizeof buf, "%s %s, %d(%s)", info.mnemonic.data(),
                    r(d.rt), static_cast<i32>(sign_extend(d.imm, 16)),
                    r(d.rs));
      break;
    case OperandSig::Br2:
      std::snprintf(buf, sizeof buf, "%s %s, %s, 0x%x", info.mnemonic.data(),
                    r(d.rs), r(d.rt), d.branch_target(pc));
      break;
    case OperandSig::Br1:
      std::snprintf(buf, sizeof buf, "%s %s, 0x%x", info.mnemonic.data(),
                    r(d.rs), d.branch_target(pc));
      break;
    case OperandSig::JTarget:
      std::snprintf(buf, sizeof buf, "%s 0x%x", info.mnemonic.data(),
                    d.branch_target(pc));
      break;
    case OperandSig::FpR3:
      std::snprintf(buf, sizeof buf, "%s $f%u, $f%u, $f%u",
                    info.mnemonic.data(), d.fd(), d.fs(), d.ft());
      break;
    case OperandSig::FpR2:
      std::snprintf(buf, sizeof buf, "%s $f%u, $f%u", info.mnemonic.data(),
                    d.fd(), d.fs());
      break;
    case OperandSig::FpCmp:
      std::snprintf(buf, sizeof buf, "%s $f%u, $f%u", info.mnemonic.data(),
                    d.fs(), d.ft());
      break;
    case OperandSig::Mfc1:
    case OperandSig::Mtc1:
      std::snprintf(buf, sizeof buf, "%s %s, $f%u", info.mnemonic.data(),
                    r(d.rt), d.fs());
      break;
    case OperandSig::FpMem:
      std::snprintf(buf, sizeof buf, "%s $f%u, %d(%s)", info.mnemonic.data(),
                    d.ft(), static_cast<i32>(sign_extend(d.imm, 16)), r(d.rs));
      break;
    case OperandSig::FpBr:
      std::snprintf(buf, sizeof buf, "%s 0x%x", info.mnemonic.data(),
                    d.branch_target(pc));
      break;
  }
  return buf;
}

}  // namespace bsp
