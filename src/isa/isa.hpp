// ISA definition: a 32-bit MIPS-I-like RISC architecture ("BSP-32").
//
// This stands in for the SimpleScalar PISA ISA the paper compiled SPEC to. It
// keeps exactly the properties the paper's mechanisms depend on: 32-bit
// two's-complement registers, base+offset addressing computed with an adder,
// and the six conditional branch types beq/bne/blez/bgtz/bltz/bgez. There are
// no branch delay slots.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "util/bitops.hpp"

namespace bsp {

// ---------------------------------------------------------------------------
// Registers
// ---------------------------------------------------------------------------

inline constexpr unsigned kNumRegs = 32;

enum Reg : u8 {
  R_ZERO = 0, R_AT = 1, R_V0 = 2, R_V1 = 3,
  R_A0 = 4, R_A1 = 5, R_A2 = 6, R_A3 = 7,
  R_T0 = 8, R_T1 = 9, R_T2 = 10, R_T3 = 11,
  R_T4 = 12, R_T5 = 13, R_T6 = 14, R_T7 = 15,
  R_S0 = 16, R_S1 = 17, R_S2 = 18, R_S3 = 19,
  R_S4 = 20, R_S5 = 21, R_S6 = 22, R_S7 = 23,
  R_T8 = 24, R_T9 = 25, R_K0 = 26, R_K1 = 27,
  R_GP = 28, R_SP = 29, R_FP = 30, R_RA = 31,
};

// ABI name ("$t0") for register i.
std::string_view reg_name(unsigned i);
// Parses "$t0", "$3", "t0" or "3"; nullopt if not a register.
std::optional<unsigned> parse_reg(std::string_view s);
// Parses "$f0".."$f31" (or "f0"); nullopt otherwise.
std::optional<unsigned> parse_fp_reg(std::string_view s);

// Extended register ids unify every renameable architectural location:
// GPRs 0..31, HI, LO, FP registers, and the FP condition flag. Id 0 is
// $zero and doubles as "none" (FP $f0 maps to kExtFpBase, so it is
// representable).
inline constexpr unsigned kExtHi = 32;
inline constexpr unsigned kExtLo = 33;
inline constexpr unsigned kExtFpBase = 34;  // $f0..$f31 -> 34..65
inline constexpr unsigned kExtFcc = 66;     // FP condition code
inline constexpr unsigned kNumExtRegs = 67;

// ---------------------------------------------------------------------------
// Opcodes and static per-opcode metadata
// ---------------------------------------------------------------------------

enum class Op : u8 {
#define BSP_OP(en, mn, fmt, opc, funct, cls, sig, imm) en,
#include "isa/opcodes.def"
#undef BSP_OP
  kCount
};

inline constexpr unsigned kNumOps = static_cast<unsigned>(Op::kCount);

enum class InstFormat : u8 {
  R, I, J, REGIMM,
  FP_R,   // COP1: opcode 0x11; OpInfo::funct holds (fmt << 6) | funct
  FP_BC,  // COP1 branch: opcode 0x11, fmt 0x08; OpInfo::funct holds rt code
};

// Slicing/timing semantics of an instruction; this is what the bit-sliced
// scheduler dispatches on (paper Figure 8).
enum class ExecClass : u8 {
  Logic,       // no inter-slice dependence; slices may execute out of order
  Add,         // carry chain: slice s needs own slice s-1 (low to high)
  ShiftLeft,   // bits move low->high: serial low to high
  ShiftRight,  // bits move high->low: serial high to low
  Compare,     // slt/sltu: result bit 0 defined only after all slices seen
  Mul,         // full-collect unit, 3-cycle
  Div,         // full-collect unit, 20-cycle
  MfHiLo,      // move from HI/LO: logic-like, slices independent
  Load,        // address generation is Add; then memory access
  Store,
  BranchEq,    // beq/bne: early-out on first differing slice
  BranchSign,  // blez/bgtz/bltz/bgez: needs the sign bit (top slice)
  Jump,        // j/jal: unconditional, target known at decode
  JumpReg,     // jr/jalr: needs the full register before redirect
  Syscall,

  // Floating point (paper §6: FP executes on full-collect units; Table 2
  // gives the unit mix and latencies).
  FpAlu,       // add/sub/abs/neg/mov/cvt + mfc1/mtc1 moves (2-cycle units)
  FpMul,       // mul.s (4-cycle)
  FpDiv,       // div.s (12-cycle)
  FpSqrt,      // sqrt.s (24-cycle)
  FpCompare,   // c.eq/lt/le.s: writes the FP condition flag
  FpBranch,    // bc1f/bc1t: reads the FP condition flag
};

// Operand signature: how the assembler parses and the disassembler prints it.
enum class OperandSig : u8 {
  R3,        // op rd, rs, rt
  ShiftImm,  // op rd, rt, shamt
  ShiftVar,  // op rd, rt, rs
  RsRt,      // op rs, rt          (mult/div)
  Rd,        // op rd              (mfhi/mflo)
  Rs,        // op rs              (jr)
  RdRs,      // op rd, rs          (jalr; rd defaults to $ra)
  NoOps,     // op                 (syscall)
  IArith,    // op rt, rs, imm
  Lui,       // op rt, imm
  Mem,       // op rt, imm(rs)
  Br2,       // op rs, rt, label
  Br1,       // op rs, label
  JTarget,   // op label

  FpR3,      // op fd, fs, ft
  FpR2,      // op fd, fs
  FpCmp,     // op fs, ft        (writes FCC)
  Mfc1,      // op rt, fs        (GPR <- FP bits)
  Mtc1,      // op rt, fs        (FP <- GPR bits)
  FpMem,     // op ft, imm(rs)
  FpBr,      // op label         (reads FCC)
};

enum class ImmKind : u8 { None, Sign, Zero, Upper, BranchOff, JumpTarget };

struct OpInfo {
  Op op;
  std::string_view mnemonic;
  InstFormat format;
  u8 opcode;     // 6-bit major opcode
  u16 funct;     // R: funct; REGIMM/FP_BC: rt code; FP_R: (fmt << 6) | funct
  ExecClass cls;
  OperandSig sig;
  ImmKind imm;
};

// Flat per-opcode property table. op_info() sits on the hottest paths of
// both the emulator and the timing core (every cls()/is_load()/... call), so
// the lookup is inlined here rather than paying a cross-TU call.
extern const std::array<OpInfo, kNumOps> kOpInfoTable;

inline const OpInfo& op_info(Op op) {
  return kOpInfoTable[static_cast<unsigned>(op)];
}
// Mnemonic lookup for the assembler; nullopt if unknown.
std::optional<Op> op_from_mnemonic(std::string_view mnemonic);

// ---------------------------------------------------------------------------
// Decoded instruction
// ---------------------------------------------------------------------------

struct DecodedInst {
  Op op = Op::SLL;
  u8 rs = 0, rt = 0, rd = 0, shamt = 0;
  u32 imm = 0;   // raw 16-bit immediate (not extended) or 26-bit jump target
  u32 raw = 0;   // original encoding

  const OpInfo& info() const { return op_info(op); }
  ExecClass cls() const { return info().cls; }

  bool is_load() const { return cls() == ExecClass::Load; }
  bool is_store() const { return cls() == ExecClass::Store; }
  bool is_mem() const { return is_load() || is_store(); }
  bool is_cond_branch() const {
    const auto c = cls();
    return c == ExecClass::BranchEq || c == ExecClass::BranchSign ||
           c == ExecClass::FpBranch;
  }
  bool is_jump() const {
    const auto c = cls();
    return c == ExecClass::Jump || c == ExecClass::JumpReg;
  }
  bool is_control() const { return is_cond_branch() || is_jump(); }
  bool is_nop() const { return raw == 0; }

  // Sign/zero-extended immediate value per the opcode's ImmKind.
  u32 imm_value() const;

  // Architectural *GPR* read/written; kNumRegs-sized ids, 0 = $zero.
  // dest() == 0 means "no GPR result". FP-side operands are not reported
  // here — use the extended accessors below.
  unsigned dest() const;
  unsigned src1() const;  // 0 ($zero) when unused: reading $zero is free
  unsigned src2() const;

  // Extended-register accessors over the unified id space (GPR/HI/LO/FP/
  // FCC, see kExt*): what the renaming core tracks. 0 means none/$zero.
  // HI/LO are excluded (the core handles mult/div's double write and
  // mfhi/mflo's read specially via reads_hi_lo()/writes_hi_lo()).
  unsigned dest_ext() const;
  unsigned src1_ext() const;
  unsigned src2_ext() const;

  bool is_fp() const {
    const auto c = cls();
    return c == ExecClass::FpAlu || c == ExecClass::FpMul ||
           c == ExecClass::FpDiv || c == ExecClass::FpSqrt ||
           c == ExecClass::FpCompare || c == ExecClass::FpBranch ||
           op == Op::LWC1 || op == Op::SWC1;
  }

  // FP field aliases (COP1 encodings reuse the R-type field positions).
  unsigned fs() const { return rd; }
  unsigned ft() const { return rt; }
  unsigned fd() const { return shamt; }

  bool reads_hi_lo() const { return cls() == ExecClass::MfHiLo; }
  bool writes_hi_lo() const {
    const auto c = cls();
    return c == ExecClass::Mul || c == ExecClass::Div;
  }

  // Conditional-branch / jump target given the PC of this instruction.
  u32 branch_target(u32 pc) const;

  // Memory access size in bytes (1/2/4); 0 for non-memory ops.
  unsigned mem_bytes() const;
  bool mem_sign_extend() const;  // lb/lh sign-extend, lbu/lhu do not
};

// Operand-register accessors, inline for the same reason as op_info():
// renaming and the emulator call them for every dynamic instruction.
inline unsigned DecodedInst::dest_ext() const {
  switch (info().sig) {
    case OperandSig::FpR3:
    case OperandSig::FpR2:
      return kExtFpBase + fd();
    case OperandSig::FpCmp:
      return kExtFcc;
    case OperandSig::Mtc1:
      return kExtFpBase + fs();
    case OperandSig::FpMem:
      return is_load() ? kExtFpBase + ft() : 0;
    case OperandSig::FpBr:
      return 0;
    default:
      return dest();
  }
}

inline unsigned DecodedInst::src1_ext() const {
  switch (info().sig) {
    case OperandSig::FpR3:
    case OperandSig::FpR2:
    case OperandSig::FpCmp:
    case OperandSig::Mfc1:
      return kExtFpBase + fs();
    case OperandSig::Mtc1:
      return rt;  // GPR source
    case OperandSig::FpMem:
      return rs;  // address base (GPR)
    case OperandSig::FpBr:
      return kExtFcc;
    default:
      return src1();
  }
}

inline unsigned DecodedInst::src2_ext() const {
  switch (info().sig) {
    case OperandSig::FpR3:
    case OperandSig::FpCmp:
      return kExtFpBase + ft();
    case OperandSig::FpMem:
      return is_store() ? kExtFpBase + ft() : 0;  // store data
    case OperandSig::FpR2:
    case OperandSig::Mfc1:
    case OperandSig::Mtc1:
    case OperandSig::FpBr:
      return 0;
    default:
      return src2();
  }
}

inline unsigned DecodedInst::dest() const {
  switch (info().sig) {
    case OperandSig::R3:
    case OperandSig::ShiftImm:
    case OperandSig::ShiftVar:
    case OperandSig::Rd:
    case OperandSig::RdRs:
      return rd;
    case OperandSig::IArith:
    case OperandSig::Lui:
      return rt;
    case OperandSig::Mem:
      return is_load() ? rt : 0;
    case OperandSig::JTarget:
      return op == Op::JAL ? R_RA : 0;
    case OperandSig::Mfc1:
      return rt;  // the only FP-side op with a GPR destination
    case OperandSig::RsRt:   // mult/div write HI/LO, not a GPR
    case OperandSig::Rs:
    case OperandSig::NoOps:
    case OperandSig::Br2:
    case OperandSig::Br1:
    case OperandSig::FpR3:
    case OperandSig::FpR2:
    case OperandSig::FpCmp:
    case OperandSig::Mtc1:
    case OperandSig::FpMem:
    case OperandSig::FpBr:
      return 0;
  }
  return 0;
}

inline unsigned DecodedInst::src1() const {
  switch (info().sig) {
    case OperandSig::R3:
    case OperandSig::IArith:
    case OperandSig::Mem:
    case OperandSig::Br2:
    case OperandSig::Br1:
    case OperandSig::Rs:
    case OperandSig::RdRs:
    case OperandSig::RsRt:
    case OperandSig::ShiftVar:  // variable shifts read the amount from rs
      return rs;
    case OperandSig::Mtc1:
      return rt;  // GPR value moving into the FP file
    case OperandSig::FpMem:
      return rs;  // address base
    case OperandSig::ShiftImm:  // the shifted value lives in rt: see src2()
    case OperandSig::Rd:
    case OperandSig::NoOps:
    case OperandSig::Lui:
    case OperandSig::JTarget:
    case OperandSig::FpR3:
    case OperandSig::FpR2:
    case OperandSig::FpCmp:
    case OperandSig::Mfc1:
    case OperandSig::FpBr:
      return 0;
  }
  return 0;
}

inline unsigned DecodedInst::src2() const {
  switch (info().sig) {
    case OperandSig::R3:
    case OperandSig::Br2:
    case OperandSig::RsRt:
    case OperandSig::ShiftImm:
    case OperandSig::ShiftVar:
      return rt;
    case OperandSig::Mem:
      return is_store() ? rt : 0;  // store data
    default:
      return 0;
  }
}


// Decodes a raw 32-bit word. Returns nullopt for illegal encodings.
std::optional<DecodedInst> decode(u32 raw);

// Encodes a decoded instruction back to its 32-bit word (fills .raw too).
u32 encode(const DecodedInst& d);

// Builders used by the assembler, tests, and workload generators.
DecodedInst make_r3(Op op, unsigned rd, unsigned rs, unsigned rt);
DecodedInst make_shift_imm(Op op, unsigned rd, unsigned rt, unsigned shamt);
DecodedInst make_shift_var(Op op, unsigned rd, unsigned rt, unsigned rs);
DecodedInst make_iarith(Op op, unsigned rt, unsigned rs, u32 imm16);
DecodedInst make_lui(unsigned rt, u32 imm16);
DecodedInst make_mem(Op op, unsigned rt, unsigned rs, i32 offset);
DecodedInst make_br2(Op op, unsigned rs, unsigned rt, i32 offset_words);
DecodedInst make_br1(Op op, unsigned rs, i32 offset_words);
DecodedInst make_jump(Op op, u32 target_addr);
DecodedInst make_jr(unsigned rs);
DecodedInst make_jalr(unsigned rd, unsigned rs);
DecodedInst make_rsrt(Op op, unsigned rs, unsigned rt);
DecodedInst make_rd(Op op, unsigned rd);
DecodedInst make_syscall();
DecodedInst make_nop();
DecodedInst make_fp3(Op op, unsigned fd, unsigned fs, unsigned ft);
DecodedInst make_fp2(Op op, unsigned fd, unsigned fs);
DecodedInst make_fpcmp(Op op, unsigned fs, unsigned ft);
DecodedInst make_mfc1(unsigned rt, unsigned fs);
DecodedInst make_mtc1(unsigned rt, unsigned fs);
DecodedInst make_fpmem(Op op, unsigned ft, unsigned rs, i32 offset);
DecodedInst make_fpbr(Op op, i32 offset_words);

// Disassembles to "mnemonic operands"; pc is used to print branch targets.
std::string disassemble(const DecodedInst& d, u32 pc);

}  // namespace bsp
