// Machine configuration: the paper's Table 2 parameters plus the bit-slice
// controls of §6/§7. Presets construct the three pipeline configurations of
// Figure 10 and the cumulative technique stacks of Figures 11/12.
#pragma once

#include <string>
#include <vector>

#include "branch/predictor.hpp"
#include "mem/cache.hpp"
#include "mem/hierarchy.hpp"

namespace bsp {

// The five partial-operand techniques, as independent switches. The paper
// enables them cumulatively in this order (Figure 12 legend, bottom-up).
enum class Technique : unsigned {
  PartialBypass = 1u << 0,  // slice-granular dependences (TIDBITS/P4 style)
  OooSlices     = 1u << 1,  // logic-op slices may execute out of order
  EarlyBranch   = 1u << 2,  // beq/bne mispredicts signalled from low slices
  EarlyLsq      = 1u << 3,  // early load-store disambiguation
  PartialTag    = 1u << 4,  // partial tag match + MRU way prediction in L1D

  // Extensions the paper suggests but does not evaluate:
  SpecForward   = 1u << 5,  // §5.1: forward store data on a unique *partial*
                            // address match, verified when the full
                            // comparison completes
  NarrowWidth   = 1u << 6,  // §6: results that are sign-extensions of their
                            // low slice release all high slices at once
                            // (significance-compression style, refs [3,6])
  SumAddressed  = 1u << 7,  // §5.2: sum-addressed memory (ref [18]) — the
                            // base+offset add is folded into the cache
                            // decoder, so a full-tag access starts at the
                            // agen's *select* rather than its completion;
                            // the paper notes it is orthogonal to partial
                            // tag matching and combinable with it
};

using TechniqueSet = unsigned;

inline constexpr TechniqueSet kNoTechniques = 0;
// The paper's evaluated configuration (Figures 11/12).
inline constexpr TechniqueSet kAllTechniques =
    static_cast<unsigned>(Technique::PartialBypass) |
    static_cast<unsigned>(Technique::OooSlices) |
    static_cast<unsigned>(Technique::EarlyBranch) |
    static_cast<unsigned>(Technique::EarlyLsq) |
    static_cast<unsigned>(Technique::PartialTag);
// Everything, including the suggested-but-unevaluated extensions.
inline constexpr TechniqueSet kExtendedTechniques =
    kAllTechniques | static_cast<unsigned>(Technique::SpecForward) |
    static_cast<unsigned>(Technique::NarrowWidth);

inline bool has_technique(TechniqueSet set, Technique t) {
  return (set & static_cast<unsigned>(t)) != 0;
}

const char* technique_name(Technique t);
// The paper's cumulative order: PartialBypass, OooSlices, EarlyBranch,
// EarlyLsq, PartialTag.
const std::vector<Technique>& technique_order();

struct CoreConfig {
  // Widths and window sizes (Table 2).
  unsigned fetch_width = 4;
  unsigned issue_width = 4;
  unsigned commit_width = 4;
  unsigned ruu_entries = 64;
  unsigned lsq_entries = 32;

  // Pipeline depth (Figure 10): 6 front-end stages (Fetch1 Fetch2 Dec1 Dec2
  // DP1 DP2) before an instruction enters the RUU, then 5 more (Sch1 Sch2
  // Sch3 Iss RF1/RF2 overlapped with select) before its first slice-op can be
  // selected; execution completes one or more cycles after select. EX is
  // therefore the 13th stage, as in the paper's 15-stage base pipeline.
  unsigned front_end_stages = 6;      // fetch -> dispatch delay
  unsigned issue_to_exec_stages = 5;  // dispatch -> earliest select delay

  // Execution-stage slicing (Figure 10): 1 = single-cycle EX (the "ideal"
  // base), 2 = two 16-bit slices, 4 = four 8-bit slices.
  unsigned slices = 1;

  // Which partial-operand techniques are enabled. Ignored when slices == 1.
  TechniqueSet techniques = kNoTechniques;

  // Functional units (Table 2).
  unsigned int_alus = 4;
  unsigned int_mul_div = 1;
  unsigned mul_latency = 3;
  unsigned div_latency = 20;
  unsigned fp_alus = 4;          // 4 FP ALUs, 2-cycle
  unsigned fp_mul_div = 1;       // 1 FP mult/div/sqrt unit, unpipelined
  unsigned fp_alu_latency = 2;
  unsigned fp_mul_latency = 4;
  unsigned fp_div_latency = 12;
  unsigned fp_sqrt_latency = 24;

  // Way-selection policy for partial tag matching (§7: MRU).
  WayPolicy way_policy = WayPolicy::MRU;

  SliceGeometry slice_geometry() const { return SliceGeometry{slices}; }
  bool sliced() const { return slices > 1; }
  bool has(Technique t) const {
    return sliced() && has_technique(techniques, t);
  }
};

struct MachineConfig {
  CoreConfig core;
  HierarchyConfig memory;
  FrontEndPredictor::Config branch;

  // Human-readable one-line-per-parameter dump (Table 2 reproduction).
  std::string describe() const;
};

// --- presets (Figure 10) ------------------------------------------------------

// (a) Base: single-cycle execution stage — the paper's "best case" machine.
MachineConfig base_machine();

// (b)/(c) Naive pipelining: EX takes `slices` cycles, operands stay atomic.
MachineConfig simple_pipelined_machine(unsigned slices);

// Bit-sliced machine with the given technique set. Per §7.1, slice-by-4
// raises the L1D latency to 2 cycles.
MachineConfig bitsliced_machine(unsigned slices, TechniqueSet techniques);

// Pipeline-stage listing for Figure 10 ("--print-pipelines").
std::string pipeline_diagram(const MachineConfig& cfg);

// The cumulative technique stacks of Figures 11/12 for one slice count:
// simple pipelining, then +bypass, +ooo slices, +early branch, +early lsq,
// +partial tag (the paper's order). Shared by the bench drivers and the
// campaign engine so both sweep exactly the same configurations.
struct StackPoint {
  std::string label;
  MachineConfig config;
};

std::vector<StackPoint> technique_stack(unsigned slices);

}  // namespace bsp
