#include "config/machine_config.hpp"

#include <sstream>

namespace bsp {

const char* technique_name(Technique t) {
  switch (t) {
    case Technique::PartialBypass: return "partial operand bypassing";
    case Technique::OooSlices: return "out-of-order slices";
    case Technique::EarlyBranch: return "early branch resolution";
    case Technique::EarlyLsq: return "early l/s disambiguation";
    case Technique::PartialTag: return "partial tag matching";
    case Technique::SpecForward: return "speculative partial forwarding";
    case Technique::NarrowWidth: return "narrow-width slice relaxation";
    case Technique::SumAddressed: return "sum-addressed memory";
  }
  return "?";
}

const std::vector<Technique>& technique_order() {
  static const std::vector<Technique> order = {
      Technique::PartialBypass, Technique::OooSlices, Technique::EarlyBranch,
      Technique::EarlyLsq, Technique::PartialTag};
  return order;
}

std::string MachineConfig::describe() const {
  std::ostringstream os;
  os << "out-of-order: " << core.fetch_width << "-wide fetch/issue/commit, "
     << core.ruu_entries << "-entry RUU, " << core.lsq_entries
     << "-entry LSQ\n";
  os << "pipeline: " << core.front_end_stages << " front-end + "
     << core.issue_to_exec_stages << " issue/RF + " << core.slices
     << " EX stage(s)\n";
  os << "branch: " << (branch.use_bimodal ? "bimodal" : "gshare") << " "
     << (branch.use_bimodal ? branch.bimodal_entries : branch.gshare_entries)
     << " entries, " << branch.ras_depth << "-entry RAS, " << branch.btb_ways
     << "-way " << branch.btb_sets << "-set BTB\n";
  const auto cache_line = [&](const char* name, const CacheGeometry& g,
                              unsigned lat) {
    os << name << ": " << g.size_bytes / 1024 << "KB (" << g.ways << "-way, "
       << g.line_bytes << "B line), " << lat << "-cycle\n";
  };
  cache_line("L1 I$", memory.l1i, memory.l1i_latency);
  cache_line("L1 D$", memory.l1d, memory.l1d_latency);
  cache_line("L2 unified", memory.l2, memory.l2_latency);
  os << "main memory: " << memory.memory_latency << "-cycle latency\n";
  os << "FUs: " << core.int_alus << " int ALU (per-slice), "
     << core.int_mul_div << " int mult/div (" << core.mul_latency << "/"
     << core.div_latency << "-cycle), " << core.fp_alus << " FP ALU ("
     << core.fp_alu_latency << "-cycle), " << core.fp_mul_div
     << " FP mult/div/sqrt (" << core.fp_mul_latency << "/"
     << core.fp_div_latency << "/" << core.fp_sqrt_latency << "-cycle)\n";
  if (core.sliced()) {
    os << "bit-slicing: " << core.slices << " x "
       << core.slice_geometry().width() << "-bit slices; techniques:";
    bool any = false;
    for (const auto t :
         {Technique::PartialBypass, Technique::OooSlices,
          Technique::EarlyBranch, Technique::EarlyLsq, Technique::PartialTag,
          Technique::SpecForward, Technique::NarrowWidth,
          Technique::SumAddressed}) {
      if (core.has(t)) {
        os << (any ? ", " : " ") << technique_name(t);
        any = true;
      }
    }
    if (!any) os << " none (simple pipelining)";
    os << "\n";
  }
  return os.str();
}

MachineConfig base_machine() {
  return MachineConfig{};  // defaults are Table 2 with a 1-cycle EX
}

MachineConfig simple_pipelined_machine(unsigned slices) {
  MachineConfig cfg = base_machine();
  cfg.core.slices = slices;
  cfg.core.techniques = kNoTechniques;
  if (slices >= 4) cfg.memory.l1d_latency = 2;  // §7.1
  return cfg;
}

MachineConfig bitsliced_machine(unsigned slices, TechniqueSet techniques) {
  MachineConfig cfg = simple_pipelined_machine(slices);
  cfg.core.techniques = techniques;
  return cfg;
}

std::string pipeline_diagram(const MachineConfig& cfg) {
  std::ostringstream os;
  os << "Fetch1 Fetch2 Dec1 Dec2 DP1 DP2 Sch1 Sch2 Sch3 Iss RF1 RF2";
  if (cfg.core.slices == 1) {
    os << " EX";
  } else {
    for (unsigned s = 1; s <= cfg.core.slices; ++s) os << " EX" << s;
  }
  os << " [Mem] RE CT";
  return os.str();
}

std::vector<StackPoint> technique_stack(unsigned slices) {
  std::vector<StackPoint> stack;
  stack.push_back({"simple pipelining", simple_pipelined_machine(slices)});
  TechniqueSet set = kNoTechniques;
  for (const Technique t : technique_order()) {
    set |= static_cast<unsigned>(t);
    stack.push_back({std::string("+") + technique_name(t),
                     bitsliced_machine(slices, set)});
  }
  return stack;
}

}  // namespace bsp
