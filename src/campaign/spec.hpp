// Declarative experiment sweeps (the campaign engine's front half).
//
// A SweepSpec is a parameter grid — machine points x workloads x seeds at a
// fixed instruction budget — that expands into a deterministic,
// duplicate-free task list. Every task carries a stable string id derived
// only from its parameters; the JSONL result store keys resume on these
// ids, so the same spec always re-expands to the same ids across runs and
// processes.
#pragma once

#include <string>
#include <vector>

#include "config/machine_config.hpp"

namespace bsp::campaign {

// How a task's MachineConfig is built from its parameters.
enum class MachineKind {
  Base,    // base_machine(): single-cycle EX, the paper's "best case"
  Simple,  // simple_pipelined_machine(slices): naive EX pipelining
  Sliced,  // bitsliced_machine(slices, techniques)
};

const char* machine_kind_name(MachineKind k);

// One machine column of the sweep grid.
struct MachinePoint {
  std::string label;  // display name for tables, e.g. "x2 +partial tag"
  MachineKind kind = MachineKind::Base;
  unsigned slices = 1;                      // ignored for Base
  TechniqueSet techniques = kNoTechniques;  // Sliced only

  MachineConfig build() const;
  // Canonical id fragment: "base", "simple-x2", "sliced-x2-t0x1f".
  std::string key() const;
};

// One fully specified simulation: the unit the scheduler runs and the
// result store records.
struct TaskSpec {
  std::string campaign;
  std::string workload;
  u64 seed = 0x5eed;
  MachinePoint machine;
  u64 instructions = 200'000;
  u64 warmup = 300'000;
  // Instructions to fast-forward on the functional emulator before detailed
  // timing starts (the paper skips ~1B per benchmark). 0 = start at reset.
  // Tasks sharing (workload, seed, fast_forward) can reuse one checkpoint.
  u64 fast_forward = 0;
  // Co-simulation cadence ("full", "off", "spot" or "spot:N"; see
  // core/simulator.hpp). "" = the runner's default (full). Co-sim is a pure
  // check, so SimStats do not depend on it — but it is part of the task id
  // when set, since it changes what a run verifies.
  std::string cosim;

  // Canonical unique key, e.g.
  // "fig11/li/seed=0x5eed/sliced-x2-t0x1f/n=200000/w=300000"; a nonzero
  // fast_forward appends "/ff=N" and a non-empty cosim "/cosim=MODE" (unset
  // adds nothing, so pre-existing stores resume unchanged).
  std::string id() const;
};

struct SweepSpec {
  std::string name;
  std::vector<MachinePoint> machines;
  std::vector<std::string> workloads;
  std::vector<u64> seeds = {0x5eedu};
  u64 instructions = 200'000;
  u64 warmup = 300'000;
  u64 fast_forward = 0;   // applied to every expanded task
  std::string cosim;      // applied to every expanded task ("" = full)

  // Deterministic expansion: workload-major, then seed, then machine point,
  // in declaration order. Duplicate grid entries (a repeated workload, seed
  // or identical machine point) expand once — the first occurrence wins —
  // so the task list is always duplicate-free.
  std::vector<TaskSpec> expand() const;
};

}  // namespace bsp::campaign
