#include "campaign/ckpt_cache.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <sstream>

namespace bsp::campaign {
namespace {

struct Fnv1a {
  u64 h = 14695981039346656037ull;
  void bytes(const void* p, std::size_t n) {
    const unsigned char* b = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= b[i];
      h *= 1099511628211ull;
    }
  }
  void word(u64 v) {
    unsigned char b[8];
    for (int i = 0; i < 8; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
    bytes(b, 8);
  }
};

// Workload names come from workload_names() and seeds are numbers, so cache
// file names are already safe; this guards against future callers passing a
// path-ish workload string.
std::string sanitise(const std::string& s) {
  std::string out = s;
  for (char& c : out)
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '-' || c == '.'))
      c = '_';
  return out;
}

// fsync one path (a file or, with O_DIRECTORY, its parent). Returns false
// only on a real sync failure, not on open failure of an exotic filesystem
// that forbids O_DIRECTORY reads — those surface at rename time anyway.
bool sync_path(const std::string& path, int open_flags) {
  const int fd = ::open(path.c_str(), open_flags);
  if (fd < 0) return true;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

}  // namespace

std::string checkpoint_cache_key(const Program& program, u64 fast_forward) {
  Fnv1a f;
  f.word(program.text_base);
  f.word(program.text.size());
  f.bytes(program.text.data(), program.text.size() * sizeof(u32));
  f.word(program.data_base);
  f.word(program.data.size());
  f.bytes(program.data.data(), program.data.size());
  f.word(program.entry);
  f.word(fast_forward);
  char buf[32];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(f.h));
  return buf;
}

std::string checkpoint_cache_path(const std::string& dir,
                                  const std::string& workload, u64 seed,
                                  const Program& program, u64 fast_forward) {
  std::ostringstream os;
  os << dir << "/" << sanitise(workload) << "-s" << std::hex << seed
     << std::dec << "-ff" << fast_forward << "-"
     << checkpoint_cache_key(program, fast_forward) << ".bspc";
  return os.str();
}

std::string publish_checkpoint(const std::string& dir,
                               const std::string& workload, u64 seed,
                               const Program& program, u64 fast_forward,
                               const Checkpoint& ckpt, std::string* error) {
  const std::string path =
      checkpoint_cache_path(dir, workload, seed, program, fast_forward);
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  // Write-then-rename: readers never observe a partial file, and two
  // concurrent materialisers of the same key race benignly (identical
  // bytes, last rename wins). The pid + per-call counter keep their temp
  // files apart even when the racers are threads of one process — a
  // shared temp name would let one racer rename the file out from under
  // the other mid-publish.
  static std::atomic<unsigned> publish_seq{0};
  std::ostringstream tmp;
  tmp << path << ".tmp." << ::getpid() << "." << publish_seq++;
  if (!save_checkpoint_file(ckpt, tmp.str())) {
    std::remove(tmp.str().c_str());
    if (error) *error = "cannot write checkpoint cache file " + tmp.str();
    return "";
  }
  // Durability: flush the temp file's bytes before the rename makes them
  // visible, and the directory entry after. Without the first, a crash
  // shortly after publish can leave the *renamed* file empty or truncated —
  // exactly the present-but-corrupt state the cache's heal path exists for,
  // but self-inflicted; without the second, the rename itself can vanish.
  if (!sync_path(tmp.str(), O_RDONLY)) {
    std::remove(tmp.str().c_str());
    if (error) *error = "cannot fsync checkpoint cache file " + tmp.str();
    return "";
  }
  std::filesystem::rename(tmp.str(), path, ec);
  if (ec) {
    std::remove(tmp.str().c_str());
    if (error)
      *error = "cannot publish checkpoint cache file " + path + ": " +
               ec.message();
    return "";
  }
  sync_path(dir, O_RDONLY | O_DIRECTORY);
  return path;
}

CkptFetch fetch_checkpoint(const std::string& dir, const std::string& workload,
                           u64 seed, const Program& program,
                           u64 fast_forward) {
  CkptFetch out;
  if (fast_forward == 0) {
    out.error = "fast_forward must be nonzero";
    return out;
  }

  if (!dir.empty()) {
    out.path =
        checkpoint_cache_path(dir, workload, seed, program, fast_forward);
    std::string load_error;
    if (auto ckpt = load_checkpoint_file(out.path, &load_error)) {
      out.checkpoint = std::make_shared<const Checkpoint>(std::move(*ckpt));
      out.hit = true;
      return out;
    }
    // Missing file is the normal cold path; a present-but-corrupt file (torn
    // concurrent writer that died before rename never leaves one, but a
    // truncated disk might) falls through and is overwritten below.
  }

  const auto t0 = std::chrono::steady_clock::now();
  // Qualified: the `fast_forward` parameter shadows the emu-layer function.
  auto ckpt = ::bsp::fast_forward(program, fast_forward);
  out.ffwd_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (!ckpt) {
    out.error = "program exited or faulted before fast_forward=" +
                std::to_string(fast_forward);
    return out;
  }
  out.checkpoint = std::make_shared<const Checkpoint>(std::move(*ckpt));

  if (!dir.empty()) {
    if (publish_checkpoint(dir, workload, seed, program, fast_forward,
                           *out.checkpoint, &out.error)
            .empty()) {
      out.checkpoint = nullptr;
      return out;
    }
  }
  return out;
}

}  // namespace bsp::campaign
