#include "campaign/store.hpp"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "obs/interval.hpp"
#include "obs/json.hpp"

namespace bsp::campaign {
namespace {

// The record's stats block covers every SimStats counter, in the
// observability layer's registry order (obs/interval.hpp) — the same single
// source of truth the interval sampler and trace validation use, so the
// store, the sampler and the schema can never drift apart.

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Reads the four hex digits of a \uXXXX escape at s[i..i+3]; nullopt when
// the line is torn mid-escape or the digits are garbage.
std::optional<char32_t> hex4_at(const std::string& s, std::size_t i) {
  if (i + 4 > s.size()) return std::nullopt;
  char32_t cp = 0;
  for (int k = 0; k < 4; ++k) {
    const char c = s[i + static_cast<std::size_t>(k)];
    cp <<= 4;
    if (c >= '0' && c <= '9')
      cp |= static_cast<char32_t>(c - '0');
    else if (c >= 'a' && c <= 'f')
      cp |= static_cast<char32_t>(c - 'a' + 10);
    else if (c >= 'A' && c <= 'F')
      cp |= static_cast<char32_t>(c - 'A' + 10);
    else
      return std::nullopt;
  }
  return cp;
}

std::string unescape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 >= s.size()) {
      out += s[i];
      continue;
    }
    switch (s[++i]) {
      case 'n': out += '\n'; break;
      case 't': out += '\t'; break;
      case 'r': out += '\r'; break;
      case 'u': {
        // Full \uXXXX decode, surrogate pairs included (obs::append_utf8
        // is the shared encoder). Malformed escapes pass through verbatim —
        // a field extractor must not throw on a torn line — and an unpaired
        // surrogate decodes to U+FFFD, never to invalid UTF-8.
        auto cp = hex4_at(s, i + 1);
        if (!cp) {
          out += "\\u";
          break;
        }
        i += 4;
        if (*cp >= 0xD800 && *cp <= 0xDBFF) {
          std::optional<char32_t> lo;
          if (i + 2 < s.size() && s[i + 1] == '\\' && s[i + 2] == 'u')
            lo = hex4_at(s, i + 3);
          if (lo && *lo >= 0xDC00 && *lo <= 0xDFFF) {
            *cp = 0x10000 + ((*cp - 0xD800) << 10) + (*lo - 0xDC00);
            i += 6;
          } else {
            *cp = 0xFFFD;  // high surrogate without its low half
          }
        } else if (*cp >= 0xDC00 && *cp <= 0xDFFF) {
          *cp = 0xFFFD;  // stray low surrogate
        }
        obs::append_utf8(*cp, out);
        break;
      }
      default: out += s[i];
    }
  }
  return out;
}

std::string fmt_ms(double ms) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", ms);
  return buf;
}

std::string fmt_sec(double sec) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6f", sec);
  return buf;
}

// Parses "[[1,2],[3,4]]" (jsonl_array_field output) back into rows.
std::vector<std::vector<u64>> parse_series(const std::string& raw) {
  std::vector<std::vector<u64>> rows;
  std::vector<u64> row;
  int depth = 0;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    const char c = raw[i];
    if (c == '[') {
      if (++depth == 2) row.clear();
    } else if (c == ']') {
      if (depth-- == 2) rows.push_back(std::move(row));
    } else if (c >= '0' && c <= '9') {
      char* end = nullptr;
      row.push_back(std::strtoull(raw.c_str() + i, &end, 10));
      i = static_cast<std::size_t>(end - raw.c_str()) - 1;
    }
  }
  return rows;
}

}  // namespace

std::string to_jsonl(const TaskRecord& rec) {
  const TaskSpec& t = rec.task;
  std::ostringstream os;
  os << "{\"campaign\":\"" << escape(t.campaign) << "\""
     << ",\"task\":\"" << escape(t.id()) << "\""
     << ",\"workload\":\"" << escape(t.workload) << "\""
     << ",\"seed\":\"0x" << std::hex << t.seed << std::dec << "\""
     << ",\"machine\":\"" << machine_kind_name(t.machine.kind) << "\""
     << ",\"slices\":" << t.machine.slices
     << ",\"techniques\":\"0x" << std::hex << t.machine.techniques
     << std::dec << "\""
     << ",\"label\":\"" << escape(t.machine.label) << "\""
     << ",\"instructions\":" << t.instructions
     << ",\"warmup\":" << t.warmup;
  // Written only when nonzero so pre-fast-forward stores stay byte-stable.
  if (t.fast_forward != 0) os << ",\"fast_forward\":" << t.fast_forward;
  // Written only when set so pre-cosim stores stay byte-stable. Key is
  // "cosim_mode", not "cosim": host_phases below already owns a "cosim"
  // key and the line-oriented parser matches needles anywhere in the line.
  if (!t.cosim.empty()) os << ",\"cosim_mode\":\"" << escape(t.cosim) << "\"";
  os << ",\"status\":\"" << escape(rec.status) << "\""
     << ",\"attempts\":" << rec.attempts
     << ",\"duration_ms\":" << fmt_ms(rec.duration_ms)
     << ",\"host_seconds\":" << fmt_ms(rec.stats.host_seconds);
  if (rec.max_rss_kb > 0 || rec.user_sec > 0 || rec.sys_sec > 0) {
    os << ",\"rusage\":{\"max_rss_kb\":" << rec.max_rss_kb
       << ",\"user_sec\":" << fmt_ms(rec.user_sec)
       << ",\"sys_sec\":" << fmt_ms(rec.sys_sec) << "}";
  }
  if (!rec.ckpt_cache.empty()) {
    os << ",\"ckpt_cache\":\"" << escape(rec.ckpt_cache) << "\""
       << ",\"ffwd_sec\":" << fmt_sec(rec.ffwd_sec);
  }
  if (rec.stats.host_profile.enabled) {
    const obs::HostProfile& hp = rec.stats.host_profile;
    os << ",\"host_phases\":{\"commit\":" << fmt_sec(hp.commit)
       << ",\"resolve\":" << fmt_sec(hp.resolve)
       << ",\"select\":" << fmt_sec(hp.select)
       << ",\"memory\":" << fmt_sec(hp.memory)
       << ",\"dispatch\":" << fmt_sec(hp.dispatch)
       << ",\"fetch\":" << fmt_sec(hp.fetch)
       << ",\"cosim\":" << fmt_sec(hp.cosim)
       << ",\"replay\":" << fmt_sec(hp.replay)
       << ",\"ffwd\":" << fmt_sec(hp.ffwd)
       << ",\"loop_cycles\":" << hp.loop_cycles << "}";
  }
  if (!rec.error.empty()) os << ",\"error\":\"" << escape(rec.error) << "\"";
  if (rec.status == "ok") {
    os << ",\"stats\":{";
    bool first = true;
    for (const obs::CounterDesc& c : obs::simstats_counters()) {
      os << (first ? "\"" : ",\"") << c.name << "\":" << rec.stats.*c.field;
      first = false;
    }
    char ipc[64];
    std::snprintf(ipc, sizeof ipc, "%.6f", rec.stats.ipc());
    os << ",\"ipc\":" << ipc << "}";
    if (rec.interval > 0 && !rec.series.empty()) {
      os << ",\"interval\":" << rec.interval << ",\"series\":[";
      for (std::size_t r = 0; r < rec.series.size(); ++r) {
        os << (r ? ",[" : "[");
        for (std::size_t i = 0; i < rec.series[r].size(); ++i)
          os << (i ? "," : "") << rec.series[r][i];
        os << "]";
      }
      os << "]";
    }
  }
  // Sampled-simulation block, only when the task actually sampled — a
  // monolithic store stays byte-identical to pre-sampling builds.
  if (rec.sample_intervals > 0) {
    os << ",\"sample_intervals\":" << rec.sample_intervals
       << ",\"sample_warmup\":" << rec.sample_warmup;
    if (rec.status == "ok") {
      os << ",\"ipc_mean\":" << fmt_sec(rec.ipc_mean)
         << ",\"ipc_ci95\":" << fmt_sec(rec.ipc_ci95);
      if (!rec.samples.empty()) {
        os << ",\"samples\":[";
        for (std::size_t r = 0; r < rec.samples.size(); ++r) {
          os << (r ? ",[" : "[");
          for (std::size_t i = 0; i < rec.samples[r].size(); ++i)
            os << (i ? "," : "") << rec.samples[r][i];
          os << "]";
        }
        os << "]";
      }
    }
  }
  os << "}";
  return os.str();
}

std::string task_jsonl(const TaskSpec& task) {
  TaskRecord rec;
  rec.task = task;
  rec.status = "queued";
  return to_jsonl(rec);
}

std::vector<TaskRecord> load_records(const std::string& path) {
  std::vector<TaskRecord> records;
  std::unordered_map<std::string, std::size_t> by_id;
  std::ifstream in(path, std::ios::binary);
  std::string line;
  while (std::getline(in, line)) {
    auto rec = parse_jsonl(line);
    if (!rec) continue;  // torn/foreign line: ignore
    const std::string id = rec->task.id();
    const auto it = by_id.find(id);
    if (it != by_id.end()) {
      records[it->second] = std::move(*rec);  // latest record wins
    } else {
      by_id.emplace(id, records.size());
      records.push_back(std::move(*rec));
    }
  }
  return records;
}

std::optional<std::string> jsonl_field(const std::string& line,
                                       const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return std::nullopt;
  std::size_t i = at + needle.size();
  if (i >= line.size()) return std::nullopt;
  if (line[i] == '"') {  // string value: scan to the unescaped close quote
    std::string raw;
    for (++i; i < line.size(); ++i) {
      if (line[i] == '\\' && i + 1 < line.size()) {
        raw += line[i];
        raw += line[++i];
      } else if (line[i] == '"') {
        return unescape(raw);
      } else {
        raw += line[i];
      }
    }
    return std::nullopt;  // unterminated string: torn line
  }
  std::size_t end = i;  // number: raw token up to , } or end
  while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
  if (end == i) return std::nullopt;
  return line.substr(i, end - i);
}

std::optional<std::string> jsonl_array_field(const std::string& line,
                                             const std::string& key) {
  const std::string needle = "\"" + key + "\":[";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return std::nullopt;
  const std::size_t open = at + needle.size() - 1;  // the '['
  int depth = 0;
  for (std::size_t i = open; i < line.size(); ++i) {
    if (line[i] == '[') {
      ++depth;
    } else if (line[i] == ']') {
      if (--depth == 0) return line.substr(open, i - open + 1);
    }
  }
  return std::nullopt;  // unbalanced: torn line
}

std::optional<TaskRecord> parse_jsonl(const std::string& line) {
  if (line.empty() || line.front() != '{' || line.back() != '}')
    return std::nullopt;
  TaskRecord rec;
  const auto str = [&](const char* key) { return jsonl_field(line, key); };
  const auto num = [&](const char* key) -> std::optional<u64> {
    const auto v = jsonl_field(line, key);
    if (!v) return std::nullopt;
    return std::strtoull(v->c_str(), nullptr, 0);
  };

  const auto campaign = str("campaign");
  const auto workload = str("workload");
  const auto seed = num("seed");
  const auto machine = str("machine");
  const auto slices = num("slices");
  const auto techniques = num("techniques");
  const auto label = str("label");
  const auto instructions = num("instructions");
  const auto warmup = num("warmup");
  const auto status = str("status");
  const auto attempts = num("attempts");
  if (!campaign || !workload || !seed || !machine || !slices || !techniques ||
      !label || !instructions || !warmup || !status || !attempts)
    return std::nullopt;

  rec.task.campaign = *campaign;
  rec.task.workload = *workload;
  rec.task.seed = *seed;
  if (*machine == "base") {
    rec.task.machine.kind = MachineKind::Base;
  } else if (*machine == "simple") {
    rec.task.machine.kind = MachineKind::Simple;
  } else if (*machine == "sliced") {
    rec.task.machine.kind = MachineKind::Sliced;
  } else {
    return std::nullopt;
  }
  rec.task.machine.slices = static_cast<unsigned>(*slices);
  rec.task.machine.techniques = static_cast<TechniqueSet>(*techniques);
  rec.task.machine.label = *label;
  rec.task.instructions = *instructions;
  rec.task.warmup = *warmup;
  if (const auto ff = num("fast_forward")) rec.task.fast_forward = *ff;
  if (const auto cm = str("cosim_mode")) rec.task.cosim = *cm;
  rec.status = *status;
  rec.attempts = static_cast<unsigned>(*attempts);
  if (const auto e = str("error")) rec.error = *e;
  if (const auto d = str("duration_ms"))
    rec.duration_ms = std::strtod(d->c_str(), nullptr);
  // Host-side throughput telemetry: optional (older stores lack it), and
  // deliberately not part of the simulated-stats equivalence surface.
  if (const auto h = str("host_seconds"))
    rec.stats.host_seconds = std::strtod(h->c_str(), nullptr);
  // Process-isolation rusage: optional; keys are unique within a line.
  if (const auto v = num("max_rss_kb"))
    rec.max_rss_kb = static_cast<long>(*v);
  if (const auto v = str("user_sec"))
    rec.user_sec = std::strtod(v->c_str(), nullptr);
  if (const auto v = str("sys_sec"))
    rec.sys_sec = std::strtod(v->c_str(), nullptr);
  // "ffwd_sec" and the host_phases "ffwd" key never collide: the extractor
  // needles include the closing quote-colon.
  if (const auto v = str("ckpt_cache")) rec.ckpt_cache = *v;
  if (const auto v = str("ffwd_sec"))
    rec.ffwd_sec = std::strtod(v->c_str(), nullptr);
  if (jsonl_field(line, "host_phases")) {
    // Phase keys are unique within a line (no stats counter is an exact
    // match), so the flat extractor reads them through the nested object.
    obs::HostProfile& hp = rec.stats.host_profile;
    hp.enabled = true;
    const auto phase = [&](const char* key, double& out) {
      if (const auto v = jsonl_field(line, key))
        out = std::strtod(v->c_str(), nullptr);
    };
    phase("commit", hp.commit);
    phase("resolve", hp.resolve);
    phase("select", hp.select);
    phase("memory", hp.memory);
    phase("dispatch", hp.dispatch);
    phase("fetch", hp.fetch);
    phase("cosim", hp.cosim);
    phase("replay", hp.replay);
    phase("ffwd", hp.ffwd);
    if (const auto v = num("loop_cycles")) hp.loop_cycles = *v;
  }
  if (rec.status == "ok") {
    for (const obs::CounterDesc& c : obs::simstats_counters()) {
      const auto v = num(c.name);
      if (!v) {
        // Counters appended after a store shipped (registry `optional`)
        // default to 0, so pre-upgrade stores keep parsing and resuming.
        if (c.optional) continue;
        return std::nullopt;
      }
      rec.stats.*c.field = *v;
    }
    if (const auto iv = num("interval")) rec.interval = *iv;
    if (const auto arr = jsonl_array_field(line, "series"))
      rec.series = parse_series(*arr);
  }
  // Sampled-simulation block (optional; "sample_warmup" never collides
  // with "warmup" — the extractor needles include the opening quote).
  if (const auto k = num("sample_intervals")) {
    rec.sample_intervals = *k;
    if (const auto n = num("sample_warmup")) rec.sample_warmup = *n;
    if (const auto v = jsonl_field(line, "ipc_mean"))
      rec.ipc_mean = std::strtod(v->c_str(), nullptr);
    if (const auto v = jsonl_field(line, "ipc_ci95"))
      rec.ipc_ci95 = std::strtod(v->c_str(), nullptr);
    if (const auto arr = jsonl_array_field(line, "samples"))
      rec.samples = parse_series(*arr);
  }
  return rec;
}

ResultStore::ResultStore(const std::string& path, bool truncate)
    : path_(path) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  bool unterminated_tail = false;
  if (!truncate) {
    records_ = load_records(path);
    for (std::size_t i = 0; i < records_.size(); ++i)
      by_id_.emplace(records_[i].task.id(), i);
    // A writer killed mid-append leaves the file without a final newline.
    // Appending straight onto that would splice the next record into the
    // partial line, corrupting both; note it so the first append starts on
    // a fresh line instead.
    std::ifstream tail(path, std::ios::binary);
    if (tail) {
      tail.seekg(0, std::ios::end);
      if (tail.tellg() > 0) {
        tail.seekg(-1, std::ios::end);
        char last = '\n';
        tail.get(last);
        unterminated_tail = last != '\n';
      }
    }
  }
  file_ = std::fopen(path.c_str(), truncate ? "wb" : "ab");
  if (!file_)
    throw std::runtime_error("campaign: cannot open result store " + path);
  if (unterminated_tail) {
    // Newline-terminate rather than truncate: a complete record that only
    // lost its newline was parsed above and must keep its bytes; a torn
    // tail becomes an isolated line every future load ignores.
    std::fputc('\n', file_);
    std::fflush(file_);
  }
}

ResultStore::~ResultStore() {
  if (file_) std::fclose(file_);
}

std::string ResultStore::status(const std::string& task_id) const {
  const TaskRecord* rec = find(task_id);
  return rec ? rec->status : "";
}

const TaskRecord* ResultStore::find(const std::string& task_id) const {
  const auto it = by_id_.find(task_id);
  return it == by_id_.end() ? nullptr : &records_[it->second];
}

void ResultStore::append(const TaskRecord& rec) {
  const std::string line = to_jsonl(rec) + "\n";
  std::lock_guard<std::mutex> lock(mutex_);
  // One fwrite + flush per record: a record is either fully on disk or (if
  // we die mid-write) a torn final line the next load ignores.
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fflush(file_);
  const std::string id = rec.task.id();
  const auto it = by_id_.find(id);
  if (it != by_id_.end()) {
    records_[it->second] = rec;
  } else {
    by_id_.emplace(id, records_.size());
    records_.push_back(rec);
  }
}

}  // namespace bsp::campaign
