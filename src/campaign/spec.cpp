#include "campaign/spec.hpp"

#include <sstream>
#include <unordered_set>

namespace bsp::campaign {

const char* machine_kind_name(MachineKind k) {
  switch (k) {
    case MachineKind::Base: return "base";
    case MachineKind::Simple: return "simple";
    case MachineKind::Sliced: return "sliced";
  }
  return "?";
}

MachineConfig MachinePoint::build() const {
  switch (kind) {
    case MachineKind::Base: return base_machine();
    case MachineKind::Simple: return simple_pipelined_machine(slices);
    case MachineKind::Sliced: return bitsliced_machine(slices, techniques);
  }
  return base_machine();
}

std::string MachinePoint::key() const {
  std::ostringstream os;
  os << machine_kind_name(kind);
  if (kind != MachineKind::Base) os << "-x" << slices;
  if (kind == MachineKind::Sliced) os << "-t0x" << std::hex << techniques;
  return os.str();
}

std::string TaskSpec::id() const {
  std::ostringstream os;
  os << campaign << "/" << workload << "/seed=0x" << std::hex << seed
     << std::dec << "/" << machine.key() << "/n=" << instructions
     << "/w=" << warmup;
  if (fast_forward != 0) os << "/ff=" << fast_forward;
  if (!cosim.empty()) os << "/cosim=" << cosim;
  return os.str();
}

std::vector<TaskSpec> SweepSpec::expand() const {
  std::vector<TaskSpec> tasks;
  std::unordered_set<std::string> seen;
  for (const auto& workload : workloads) {
    for (const u64 seed : seeds) {
      for (const auto& machine : machines) {
        TaskSpec t;
        t.campaign = name;
        t.workload = workload;
        t.seed = seed;
        t.machine = machine;
        t.instructions = instructions;
        t.warmup = warmup;
        t.fast_forward = fast_forward;
        t.cosim = cosim;
        if (seen.insert(t.id()).second) tasks.push_back(std::move(t));
      }
    }
  }
  return tasks;
}

}  // namespace bsp::campaign
