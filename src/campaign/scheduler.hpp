// Fault-tolerant task scheduler for campaigns.
//
// Layered on util/parallel.hpp's worker pool, adding the three things a
// long unattended sweep needs and a bench driver loop lacks:
//  * fault isolation — a task that throws or returns a co-simulation error
//    is recorded as failed; it never brings down the campaign (and per the
//    parallel_for contract, exceptions must not escape into the pool);
//  * bounded retry — failed attempts are retried up to max_attempts before
//    the task is recorded as "failed";
//  * a per-attempt wall-clock timeout — a wedged attempt is abandoned and
//    recorded as "timeout".
//
// Two isolation modes govern how strong that containment is:
//  * IsolationMode::kThread (default) — attempts run in-process on pool
//    threads. Cheap (shared workload cache), but a segfaulting task takes
//    the whole campaign down, and a timed-out attempt's thread can only be
//    *detached*, not killed (C++ has no safe thread kill): it keeps a
//    core's worth of work alive until it finishes on its own.
//  * IsolationMode::kProcess — each attempt fork/execs a worker process
//    (util/subprocess.hpp) that runs exactly one task and prints its
//    TaskRecord JSONL on stdout. A crashing worker is recorded as
//    "crashed" with its signal name instead of killing the sweep; a
//    timed-out worker is SIGKILLed and reaped, so the core is actually
//    reclaimed; per-task rusage (peak RSS, user/sys CPU) flows into the
//    outcome. Costs a fork/exec and a workload re-build per task.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "campaign/spec.hpp"
#include "core/pipeline.hpp"

namespace bsp::campaign {

// What one attempt at one task produced. Empty `error` means success.
struct AttemptResult {
  SimStats stats;
  std::string error;
  // Optional interval time-series (obs/interval.hpp): sampling period in
  // committed instructions (0 = none collected) and one row per sample —
  // [cycle, committed, <delta of every registered SimStats counter, registry
  // order>]. Numeric-only so the store can serialise it losslessly.
  u64 interval = 0;
  std::vector<std::vector<u64>> series;
  // Fast-forward bookkeeping (tasks with fast_forward > 0 only): where the
  // start checkpoint came from ("hit" = cache file or in-process memo,
  // "miss" = fast-forwarded here) and the host seconds that cost.
  std::string ckpt_cache;
  double ffwd_sec = 0;
  // Sampled-simulation fields (src/sampling/; zero/empty when the task ran
  // monolithically): interval count K and per-interval warm-up N, the
  // per-interval IPC mean with its 95% confidence half-width, and one
  // numeric row per measured interval —
  // [index, offset, warmup, commits, cycles, committed].
  u64 sample_intervals = 0;
  u64 sample_warmup = 0;
  double ipc_mean = 0;
  double ipc_ci95 = 0;
  std::vector<std::vector<u64>> samples;
};

// Runs a single attempt. May throw; the scheduler converts the exception
// into a failed attempt. Must be safe to call from several threads at once
// and must stay valid until every (possibly detached) attempt finished —
// in practice: keep all state inside shared_ptr captures, as
// make_sim_runner() does.
using TaskRunner = std::function<AttemptResult(const TaskSpec&)>;

enum class IsolationMode {
  kThread,   // in-process attempts on pool threads (shared address space)
  kProcess,  // one worker subprocess per attempt (crash/timeout containment)
};

struct SchedulerOptions {
  unsigned jobs = 0;          // worker threads (0 = hardware concurrency)
  unsigned max_attempts = 2;  // first try + bounded retries
  double timeout_sec = 0;     // per-attempt wall clock; 0 = no timeout
  IsolationMode isolate = IsolationMode::kThread;
  // kProcess only: argv prefix of the worker command; the scheduler appends
  // the task as the final argument — its id by default, or the full
  // status:"queued" record line (task_jsonl) with worker_task_json set. The
  // worker must run that one task and print its TaskRecord as a single
  // JSONL line on stdout (bsp-sweep's hidden --worker and --worker-json
  // flags implement the two forms). The JSONL form makes the command
  // self-contained: remote workers use it because they have no SweepSpec
  // to resolve an id against.
  std::vector<std::string> worker_cmd;
  bool worker_task_json = false;
  // Shared on-disk checkpoint cache directory (campaign/ckpt_cache.hpp).
  // "" = no cache: every worker fast-forwards for itself. When set,
  // prewarm_checkpoint_cache() materialises each distinct checkpoint once
  // before the sweep and workers (threads or subprocesses) restore from it.
  std::string ckpt_cache_dir;
};

struct TaskOutcome {
  std::string status;  // "ok" | "failed" | "timeout" | "crashed"
  std::string error;
  unsigned attempts = 0;
  double duration_ms = 0;  // wall clock across all attempts
  SimStats stats;          // meaningful only when status == "ok"
  u64 interval = 0;        // successful attempt's interval series, if any
  std::vector<std::vector<u64>> series;
  // Process-mode rusage: peak RSS over all attempts, CPU summed across
  // them. All zero in thread mode (the process-wide numbers would lie).
  long max_rss_kb = 0;
  double user_sec = 0;
  double sys_sec = 0;
  // Fast-forward bookkeeping from the successful attempt (see
  // AttemptResult).
  std::string ckpt_cache;
  double ffwd_sec = 0;
  // Sampled-simulation fields from the successful attempt (see
  // AttemptResult; zero/empty for monolithic tasks).
  u64 sample_intervals = 0;
  u64 sample_warmup = 0;
  double ipc_mean = 0;
  double ipc_ci95 = 0;
  std::vector<std::vector<u64>> samples;

  bool ok() const { return status == "ok"; }
  bool retried() const { return attempts > 1; }
};

// Checkpoint-cache pre-pass: groups `tasks` by (workload, seed,
// fast_forward), drops the fast_forward == 0 groups, and materialises each
// remaining group's BSPC checkpoint into options.ckpt_cache_dir exactly
// once (ckpt_cache.hpp does the content keying and the atomic publish).
// Runs groups on options.jobs threads. After this pass every worker —
// thread or subprocess, this sweep or a concurrent one over the same
// directory — restores in milliseconds instead of re-emulating. No-op
// (all-zero stats) when ckpt_cache_dir is empty.
struct PrewarmStats {
  std::size_t groups = 0;        // distinct (workload, seed, ff>0) tuples
  std::size_t materialised = 0;  // fast-forwarded and published this call
  std::size_t reused = 0;        // already present in the cache directory
  std::size_t failed = 0;        // build/fast-forward/publish failures
  double ffwd_sec = 0;           // host seconds across materialisations
};
PrewarmStats prewarm_checkpoint_cache(const std::vector<TaskSpec>& tasks,
                                      const SchedulerOptions& options);

// Runs one task to completion (attempts + timeout handling).
TaskOutcome run_one_task(const TaskSpec& task, const TaskRunner& runner,
                         const SchedulerOptions& options);

// Runs every task on a worker pool. `on_done` is called exactly once per
// task, from the worker thread that finished it, in completion order; it
// must be thread-safe. With jobs == 1 execution (and hence completion) is
// in task order — the deterministic mode the tests use.
void run_tasks(const std::vector<TaskSpec>& tasks, const TaskRunner& runner,
               const SchedulerOptions& options,
               const std::function<void(std::size_t, const TaskOutcome&)>&
                   on_done);

}  // namespace bsp::campaign
