// Sweep-as-a-service: distributed campaign execution over TCP.
//
// PR 4's subprocess worker protocol (task in, TaskRecord JSONL out) was
// already a wire protocol in disguise; this module promotes it to a real
// one. A coordinator (`bsp-sweep --serve`) expands the SweepSpec, resumes
// against the append-only store exactly like a local run, and shards the
// remaining tasks across remote workers (`bsp-sweep --connect`); every
// finished task streams back as one TaskRecord JSONL line and lands in the
// store through the same atomic-append/torn-tail machinery local sweeps
// use, so kill-and-rerun resume keeps working end to end.
//
// Wire protocol (util/socket.hpp length-prefixed frames, payload =
// "VERB[ body]"; task/record bodies are the store's TaskRecord JSONL
// schema — the single source of truth for both halves):
//
//   worker -> coordinator          coordinator -> worker
//   HELLO {"proto":N,...}          SPEC {"proto":N,...}   (or ERROR msg)
//   PING ...                       PREWARM <task jsonl>   (0+ representatives)
//                                  GO
//   READY {"groups":G,...}
//   PING                           TASK <task jsonl>      (up to `slots` open)
//   RECORD <record jsonl>          TASK ... | DONE
//
// PINGs start right after HELLO — prewarm can outlast any sane worker
// deadline, so proof of life must not wait for READY. The SPEC frame's
// heartbeat_sec retunes the period fleet-wide.
//
// Delivery semantics: the coordinator tracks every task as pending,
// in-flight, or done. A worker that misses its heartbeat deadline or drops
// its socket has its in-flight tasks re-queued; when the queue runs dry,
// idle workers duplicate-dispatch ("steal") the oldest in-flight straggler
// past `steal_after_sec`. The first record to arrive per task id wins and
// is the only one appended — duplicates from a re-dispatch race are
// dropped, so the store sees each task exactly once and its aggregate is
// byte-identical to a single-host run of the same spec.
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "campaign/campaign.hpp"
#include "util/socket.hpp"

namespace bsp::campaign {

// Bumped on any frame-format or semantics change; a HELLO carrying a
// different version is rejected at handshake time (ERROR frame).
// v2: SPEC frame gained the optional fleet-wide "cosim" default.
constexpr int kRemoteProtocolVersion = 2;

// Everything a worker must know to execute tasks the way the coordinator
// would have locally: per-task observability knobs plus the retry/timeout
// policy. Host-local choices (jobs, checkpoint-cache directory, isolation
// mode) stay on the worker's own command line.
struct RemoteSpec {
  int proto = kRemoteProtocolVersion;
  std::string campaign;
  u64 interval = 0;           // RunnerOptions::interval
  bool host_profile = false;  // RunnerOptions::host_profile
  bool cpi_stack = false;     // RunnerOptions::cpi_stack
  u64 sample_intervals = 0;   // sampled-simulation K (0 = monolithic)
  u64 sample_warmup = 2000;
  double timeout_sec = 0;     // per-task wall clock (0 = none)
  unsigned max_attempts = 2;  // worker-local bounded retry
  double heartbeat_sec = 1;   // PING period every worker must keep
  // Fleet-wide co-simulation cadence default (RunnerOptions::cosim);
  // per-task TaskSpec::cosim (carried in the TASK frame's record JSONL)
  // still wins. "" = full, and "" is omitted from the frame.
  std::string cosim;
};
std::string encode_remote_spec(const RemoteSpec& spec);
std::optional<RemoteSpec> parse_remote_spec(const std::string& json);

struct RemoteOptions {
  SocketAddr bind;                 // --serve address (port 0 = ephemeral)
  bool status = false;             // serve the status endpoint?
  SocketAddr status_bind;          // --status-endpoint address
  std::string port_file;           // "" = none; else "port=N\nstatus_port=M\n"
  double heartbeat_sec = 1.0;      // worker PING period, forwarded in SPEC
  double worker_deadline_sec = 15; // silence past this marks a worker dead
                                   // (floored at 2x heartbeat_sec)
  double steal_after_sec = 20;     // idle workers duplicate-dispatch after
  RemoteSpec spec;                 // forwarded to every worker
};

// Runs `spec` to completion over remote workers, blocking until every task
// has a record (resumed or streamed back). Identical store/resume contract
// to run_campaign(); returns the same report shape. The coordinator never
// simulates anything itself.
CampaignReport serve_campaign(const SweepSpec& spec,
                              const CampaignOptions& options,
                              const RemoteOptions& remote);

struct WorkerOptions {
  SocketAddr connect;
  unsigned slots = 0;  // concurrent tasks advertised (0 = hardware threads)
  double heartbeat_sec = 1.0;  // initial PING period; SPEC overrides it
  double connect_timeout_sec = 10;
  std::string hostname;  // "" = gethostname()
};

// Called once, after the SPEC frame arrives, to build this worker's task
// runner and scheduler policy from the coordinator's knobs. `sched` comes
// pre-seeded with the SPEC's timeout/max_attempts and the advertised slot
// count in `jobs`; the callback supplies the runner and may switch on
// process isolation (worker_cmd + isolate).
using WorkerSetup =
    std::function<void(const RemoteSpec& spec, TaskRunner* runner,
                       SchedulerOptions* sched)>;

struct WorkerReport {
  std::size_t ran = 0;  // records sent (any status)
  std::size_t ok = 0;
  std::size_t prewarm_groups = 0;  // checkpoint groups prewarmed per-host
  bool done = false;               // coordinator said DONE (clean shutdown)
  std::string error;               // "" unless the session failed outright
};

// Connects, handshakes, prewarms, then executes tasks until the
// coordinator sends DONE or the connection drops. Blocking.
WorkerReport run_remote_worker(const WorkerOptions& options,
                               const WorkerSetup& setup);

}  // namespace bsp::campaign
