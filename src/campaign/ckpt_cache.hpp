// Shared on-disk checkpoint cache for campaign fast-forwards.
//
// Every task with the same (workload, seed, fast_forward) starts detailed
// timing from the same architectural state, so an N-task sweep should pay
// for one fast-forward, not N. This module materialises that state once as
// a BSPC file in a cache directory and lets every later task — in this
// process, a worker subprocess, or a concurrent sweep over the same
// directory — restore it instead of re-emulating.
//
// Keying: the file name embeds an FNV-1a hash over the program image
// (text/data bytes, bases, entry) and the fast-forward count. Workload
// generator changes therefore miss the old entries instead of silently
// reusing stale state — invalidation is automatic, and a cache directory
// can be kept across code changes. The readable "<workload>-s<seed>-ffN-"
// prefix exists for humans; only the hash carries correctness.
//
// Atomicity: writers serialise to "<final>.tmp.<pid>" and rename(2) into
// place. Concurrent sweeps may both do the fast-forward, but a reader only
// ever sees a complete file, and the last rename wins with identical bytes.
#pragma once

#include <memory>
#include <string>

#include "asm/program.hpp"
#include "emu/checkpoint.hpp"

namespace bsp::campaign {

// Outcome of one cache lookup-or-materialise.
struct CkptFetch {
  std::shared_ptr<const Checkpoint> checkpoint;  // null on failure
  bool hit = false;      // loaded from an existing cache file
  double ffwd_sec = 0;   // host seconds spent fast-forwarding (miss only)
  std::string path;      // cache file involved ("" when dir is empty)
  std::string error;     // non-empty on failure

  bool ok() const { return checkpoint != nullptr; }
};

// Content key: 64-bit FNV-1a over the program image and the fast-forward
// count, as 16 lowercase hex digits.
std::string checkpoint_cache_key(const Program& program, u64 fast_forward);

// Full cache file path for a (workload, seed, program, fast_forward) tuple.
std::string checkpoint_cache_path(const std::string& dir,
                                  const std::string& workload, u64 seed,
                                  const Program& program, u64 fast_forward);

// Atomically publishes `ckpt` as the cache file for (workload, seed,
// program, fast_forward) under `dir`: serialise to "<final>.tmp.<pid>",
// rename(2) into place. Concurrent publishers of the same key race
// benignly (identical bytes, last rename wins). Returns the final path, or
// "" on failure with *error describing why. The sampled-simulation prewarm
// uses this directly — it captures checkpoints from one incremental
// emulator pass instead of calling fetch_checkpoint() per offset.
std::string publish_checkpoint(const std::string& dir,
                               const std::string& workload, u64 seed,
                               const Program& program, u64 fast_forward,
                               const Checkpoint& ckpt,
                               std::string* error = nullptr);

// Returns the checkpoint for (program, fast_forward), preferring the cache:
//  * cache file exists and loads cleanly -> hit;
//  * otherwise fast-forward on the emulator, publish atomically -> miss.
// With an empty `dir` the fast-forward always runs and nothing is written
// (ffwd_sec still reported). A corrupt cache file is treated as a miss and
// overwritten. Thread- and process-safe against concurrent fetches of the
// same tuple. fast_forward == 0 is invalid (callers skip the cache).
CkptFetch fetch_checkpoint(const std::string& dir, const std::string& workload,
                           u64 seed, const Program& program, u64 fast_forward);

}  // namespace bsp::campaign
