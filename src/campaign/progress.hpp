// Live campaign observability: a single self-overwriting stderr line with
// done/failed/retried counts, task and simulator throughput (committed
// instructions per host-second, aggregated over finished tasks), and an
// ETA; finish() adds a host-phase breakdown line when any task carried a
// host profile. Stderr so that redirecting a campaign's stdout (summary
// tables) keeps the file clean.
#pragma once

#include <chrono>
#include <cstddef>
#include <mutex>
#include <string>

#include "campaign/scheduler.hpp"

namespace bsp::campaign {

class ProgressMeter {
 public:
  // `total` counts the whole expanded grid; `skipped` the tasks resume
  // already satisfied. Disabled meters are inert (no output at all).
  ProgressMeter(std::string name, std::size_t total, std::size_t skipped,
                bool enabled);

  // Thread-safe; call once per finished task.
  void task_done(const TaskOutcome& outcome);

  // Prints the final state and a newline (once).
  void finish();

  std::size_t done() const { return done_; }
  std::size_t failed() const { return failed_; }
  std::size_t retried() const { return retried_; }
  // Aggregate simulator throughput over successful tasks, in committed
  // instructions per host-second (0 until a task with host_seconds lands).
  double commits_per_host_second() const;
  // Largest per-task peak RSS seen so far (process-isolation rusage;
  // 0 until a task that carries one finishes).
  long max_rss_kb() const { return max_rss_kb_; }

 private:
  void print_line_locked();
  void print_phases_locked();

  std::string name_;
  std::size_t total_;
  std::size_t skipped_;
  bool enabled_;
  bool finished_ = false;
  std::size_t done_ = 0;     // finished this run (ok or not)
  std::size_t failed_ = 0;   // status != ok
  std::size_t retried_ = 0;  // needed more than one attempt
  u64 committed_ = 0;        // summed over successful tasks
  double host_seconds_ = 0;  // summed over successful tasks
  long max_rss_kb_ = 0;      // peak per-task RSS (process isolation only)
  obs::HostProfile phases_;  // summed host-phase profile (enabled if any)
  std::chrono::steady_clock::time_point start_;
  std::mutex mutex_;
};

}  // namespace bsp::campaign
