// Live campaign observability: a single self-overwriting stderr line with
// done/failed/retried counts, task and simulator throughput (committed
// instructions per host-second, aggregated over finished tasks), and an
// ETA; finish() adds a host-phase breakdown line when any task carried a
// host profile. Stderr so that redirecting a campaign's stdout (summary
// tables) keeps the file clean.
//
// Resume accounting: `skipped` is the baseline of tasks a resumed store
// already satisfied before this run started. It counts toward the
// displayed done/total ratio but never toward the throughput rate or the
// ETA — both are derived exclusively from tasks finished *this run*, so a
// `--resume` of a 99%-complete campaign predicts the remaining 1% at the
// observed pace instead of extrapolating from work a previous run did.
//
// snapshot() exposes the same numbers machine-readably; it feeds the
// remote coordinator's --status-endpoint JSON (campaign/remote.cpp).
#pragma once

#include <chrono>
#include <cstddef>
#include <mutex>
#include <string>

#include "campaign/scheduler.hpp"

namespace bsp::campaign {

// One consistent view of the meter, safe to take from any thread.
struct ProgressSnapshot {
  std::size_t total = 0;
  std::size_t skipped = 0;    // resume baseline (not part of rate/ETA)
  std::size_t done = 0;       // finished this run (ok or not)
  std::size_t failed = 0;
  std::size_t retried = 0;
  std::size_t remaining = 0;  // total - skipped - done, floored at 0
  double elapsed_sec = 0;     // since this run launched
  double rate = 0;            // this-run completions per second
  double eta_sec = -1;        // remaining / rate; < 0 = unknown yet
  double commits_per_host_second = 0;
  long max_rss_kb = 0;
};

class ProgressMeter {
 public:
  // `total` counts the whole expanded grid; `skipped` the tasks resume
  // already satisfied. Disabled meters are inert (no output at all) but
  // still aggregate, so snapshot() works either way.
  ProgressMeter(std::string name, std::size_t total, std::size_t skipped,
                bool enabled);

  // Thread-safe; call once per finished task.
  void task_done(const TaskOutcome& outcome);

  // Prints the final state and a newline (once).
  void finish();

  std::size_t done() const;
  std::size_t failed() const;
  std::size_t retried() const;
  // Aggregate simulator throughput over successful tasks, in committed
  // instructions per host-second (0 until a task with host_seconds lands).
  double commits_per_host_second() const;
  // Largest per-task peak RSS seen so far (process-isolation rusage;
  // 0 until a task that carries one finishes).
  long max_rss_kb() const;

  ProgressSnapshot snapshot() const;
  // Deterministic variant for tests: same math, caller-supplied elapsed.
  ProgressSnapshot snapshot_at(double elapsed_sec) const;

 private:
  ProgressSnapshot snapshot_locked(double elapsed_sec) const;
  double elapsed_locked() const;
  void print_line_locked();
  void print_phases_locked();

  std::string name_;
  std::size_t total_;
  std::size_t skipped_;
  bool enabled_;
  bool finished_ = false;
  std::size_t done_ = 0;     // finished this run (ok or not)
  std::size_t failed_ = 0;   // status != ok
  std::size_t retried_ = 0;  // needed more than one attempt
  u64 committed_ = 0;        // summed over successful tasks
  double host_seconds_ = 0;  // summed over successful tasks
  long max_rss_kb_ = 0;      // peak per-task RSS (process isolation only)
  obs::HostProfile phases_;  // summed host-phase profile (enabled if any)
  std::chrono::steady_clock::time_point start_;
  mutable std::mutex mutex_;
};

}  // namespace bsp::campaign
