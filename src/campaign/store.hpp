// Append-only JSONL result store (the campaign engine's back half).
//
// One line per finished task: the full parameter tuple, the run status, and
// the SimStats counters. Appends are atomic at line granularity (a single
// flushed fwrite under a mutex), so concurrent workers never interleave and
// a reader tailing the file — or a rerun resuming from it — sees only whole
// records. A torn trailing line from a killed writer is detected and
// ignored on load, which is what makes kill-and-rerun resume safe.
//
// The format is our own, so the reader is a deliberately small field
// extractor rather than a general JSON parser: it relies on record keys
// being unique within a line (true for every field written here).
#pragma once

#include <optional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "campaign/spec.hpp"
#include "core/pipeline.hpp"

namespace bsp::campaign {

// One task's outcome, as written to (and parsed back from) the store.
struct TaskRecord {
  TaskSpec task;
  std::string status;  // "ok" | "failed" | "timeout" | "crashed"
  std::string error;   // last attempt's error when status != "ok"
  unsigned attempts = 1;
  double duration_ms = 0;  // wall clock across all attempts
  SimStats stats;          // meaningful only when status == "ok"
  // Optional interval time-series (obs/interval.hpp): sampling period in
  // committed instructions (0 = none) and one numeric row per sample —
  // [cycle, committed, <delta per registered counter, registry order>].
  u64 interval = 0;
  std::vector<std::vector<u64>> series;
  // Per-task rusage, recorded by the process-isolation scheduler (zero —
  // and omitted from the JSONL — when the task ran in thread mode).
  long max_rss_kb = 0;
  double user_sec = 0;
  double sys_sec = 0;
  // Fast-forward bookkeeping (fast_forward > 0 tasks only; "" — and omitted
  // from the JSONL — otherwise): "hit" when the start checkpoint came from
  // the cache, "miss" when this task paid the fast-forward, plus the host
  // seconds it spent doing so (0 for a hit).
  std::string ckpt_cache;
  double ffwd_sec = 0;
  // Sampled-simulation fields (src/sampling/): interval count K and
  // per-interval warm-up N, the per-interval IPC mean ± 95% CI half-width,
  // and one numeric row per measured interval —
  // [index, offset, warmup, commits, cycles, committed]. All zero/empty —
  // and omitted from the JSONL, keeping monolithic stores byte-stable —
  // when the task ran monolithically.
  u64 sample_intervals = 0;
  u64 sample_warmup = 0;
  double ipc_mean = 0;
  double ipc_ci95 = 0;
  std::vector<std::vector<u64>> samples;
};

// Serialises one record as a single JSON line (no trailing newline).
// Deterministic for a given record: fixed key order, fixed number
// formatting — "same spec, same seed => byte-identical file modulo
// duration_ms" is a tested property.
std::string to_jsonl(const TaskRecord& rec);

// Parses a line produced by to_jsonl. Returns nullopt for torn/garbage
// lines (including the empty string).
std::optional<TaskRecord> parse_jsonl(const std::string& line);

// Serialises a bare TaskSpec as a status:"queued" record line — the wire
// form of "run this task" used by both the process-isolation worker re-exec
// (--worker-json) and the remote TASK/PREWARM frames. Round-trips through
// parse_jsonl, so a worker recovers the full parameter tuple without ever
// re-expanding the campaign grid.
std::string task_jsonl(const TaskSpec& task);

// Reads a store file the way ResultStore's resume path does — skip
// torn/garbage lines, keep only the LAST record per task id — but without
// opening it for appending. First-seen file order is preserved. This is the
// one true read path for aggregation (bsp-report, sweep-end summaries):
// iterating raw lines instead double-counts any task that was re-run or
// re-dispatched.
std::vector<TaskRecord> load_records(const std::string& path);

// Extracts the value of `key` from a to_jsonl line: the unquoted/unescaped
// string for string fields, the raw token for numbers. nullopt if absent.
std::optional<std::string> jsonl_field(const std::string& line,
                                       const std::string& key);

// Extracts the raw text of `key`'s array value, brackets included, by
// bracket matching (the store's arrays are numeric-only, so no quoted "]"
// can fool it). nullopt if absent or unbalanced (torn line).
std::optional<std::string> jsonl_array_field(const std::string& line,
                                             const std::string& key);

class ResultStore {
 public:
  // Opens `path` for appending, creating it (and its parent directory) if
  // needed; `truncate` discards any existing records first. Existing
  // well-formed records are indexed for resume, later duplicates of a task
  // id superseding earlier ones. A file left without a trailing newline by
  // a killed writer is newline-terminated before the first append, so the
  // next record starts on its own line: a torn tail stays an isolated
  // ignorable line, and a complete record that merely lost its newline
  // keeps its (already indexed) value.
  explicit ResultStore(const std::string& path, bool truncate = false);
  ~ResultStore();

  ResultStore(const ResultStore&) = delete;
  ResultStore& operator=(const ResultStore&) = delete;

  const std::string& path() const { return path_; }

  // Records loaded at open time plus everything appended since, in file
  // order. Thread-safe only between appends — snapshot after the run.
  const std::vector<TaskRecord>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }

  bool has(const std::string& task_id) const {
    return by_id_.count(task_id) != 0;
  }
  // "" when the task has no record yet.
  std::string status(const std::string& task_id) const;
  const TaskRecord* find(const std::string& task_id) const;

  // Thread-safe append of one record line.
  void append(const TaskRecord& rec);

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
  mutable std::mutex mutex_;
  std::vector<TaskRecord> records_;
  std::unordered_map<std::string, std::size_t> by_id_;  // id -> records_ idx
};

}  // namespace bsp::campaign
