#include "campaign/progress.hpp"

#include <cstdio>

namespace bsp::campaign {

ProgressMeter::ProgressMeter(std::string name, std::size_t total,
                             std::size_t skipped, bool enabled)
    : name_(std::move(name)),
      total_(total),
      skipped_(skipped),
      enabled_(enabled),
      start_(std::chrono::steady_clock::now()) {}

void ProgressMeter::task_done(const TaskOutcome& outcome) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++done_;
  if (!outcome.ok()) ++failed_;
  if (outcome.retried()) ++retried_;
  if (outcome.max_rss_kb > max_rss_kb_) max_rss_kb_ = outcome.max_rss_kb;
  if (outcome.ok()) {
    committed_ += outcome.stats.committed;
    host_seconds_ += outcome.stats.host_seconds;
    const obs::HostProfile& hp = outcome.stats.host_profile;
    if (hp.enabled) {
      phases_.enabled = true;
      phases_.commit += hp.commit;
      phases_.resolve += hp.resolve;
      phases_.select += hp.select;
      phases_.memory += hp.memory;
      phases_.dispatch += hp.dispatch;
      phases_.fetch += hp.fetch;
      phases_.cosim += hp.cosim;
      phases_.replay += hp.replay;
      phases_.ffwd += hp.ffwd;
      phases_.loop_cycles += hp.loop_cycles;
    }
  }
  if (enabled_) print_line_locked();
}

std::size_t ProgressMeter::done() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return done_;
}

std::size_t ProgressMeter::failed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return failed_;
}

std::size_t ProgressMeter::retried() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return retried_;
}

double ProgressMeter::commits_per_host_second() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return host_seconds_ > 0 ? static_cast<double>(committed_) / host_seconds_
                           : 0.0;
}

long ProgressMeter::max_rss_kb() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return max_rss_kb_;
}

double ProgressMeter::elapsed_locked() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

ProgressSnapshot ProgressMeter::snapshot_locked(double elapsed_sec) const {
  ProgressSnapshot s;
  s.total = total_;
  s.skipped = skipped_;
  s.done = done_;
  s.failed = failed_;
  s.retried = retried_;
  // Floor at zero: duplicate or foreign records (a store shared between
  // runs, a re-dispatch race) can push skipped + done past total.
  s.remaining = total_ > skipped_ + done_ ? total_ - skipped_ - done_ : 0;
  s.elapsed_sec = elapsed_sec;
  // Rate and ETA come from this run's completions only. The resume
  // baseline (skipped_) is excluded on both sides of the division —
  // counting restored tasks as if they finished at this run's launch made
  // post-resume ETAs wildly optimistic.
  s.rate = elapsed_sec > 0 ? static_cast<double>(done_) / elapsed_sec : 0;
  s.eta_sec = s.rate > 0 ? static_cast<double>(s.remaining) / s.rate : -1;
  s.commits_per_host_second =
      host_seconds_ > 0 ? static_cast<double>(committed_) / host_seconds_
                        : 0.0;
  s.max_rss_kb = max_rss_kb_;
  return s;
}

ProgressSnapshot ProgressMeter::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return snapshot_locked(elapsed_locked());
}

ProgressSnapshot ProgressMeter::snapshot_at(double elapsed_sec) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return snapshot_locked(elapsed_sec);
}

void ProgressMeter::finish() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!enabled_ || finished_) return;
  finished_ = true;
  print_line_locked();
  std::fputc('\n', stderr);
  if (phases_.enabled) print_phases_locked();
  std::fflush(stderr);
}

void ProgressMeter::print_line_locked() {
  const ProgressSnapshot s = snapshot_locked(elapsed_locked());
  char eta[32];
  if (s.eta_sec >= 0) {
    if (s.eta_sec >= 90)
      std::snprintf(eta, sizeof eta, "%.1fmin", s.eta_sec / 60);
    else
      std::snprintf(eta, sizeof eta, "%.0fs", s.eta_sec);
  } else {
    std::snprintf(eta, sizeof eta, "?");
  }
  char sim_rate[32] = "";
  if (s.commits_per_host_second > 0)
    std::snprintf(sim_rate, sizeof sim_rate, " | %.2fM commits/hs",
                  s.commits_per_host_second / 1e6);
  char rss[32] = "";
  if (s.max_rss_kb > 0)
    std::snprintf(rss, sizeof rss, " | peak %.0fMB",
                  static_cast<double>(s.max_rss_kb) / 1024.0);
  std::fprintf(stderr,
               "\r[%s] %zu/%zu done (%zu resumed) | %zu failed | %zu retried "
               "| %.2f tasks/s%s%s | ETA %s   ",
               name_.c_str(), s.done + s.skipped, s.total, s.skipped,
               s.failed, s.retried, s.rate, sim_rate, rss, eta);
  std::fflush(stderr);
}

void ProgressMeter::print_phases_locked() {
  const double total = phases_.total();
  if (total <= 0) return;
  const auto pct = [&](double v) { return 100.0 * v / total; };
  // cosim and replay are nested inside commit and memory respectively, so
  // their parentheticals say "of total" explicitly — a bare percentage
  // inside "commit X% (...)" reads as a share of commit. cosim disappears
  // when it never ran (--cosim off). ffwd happens before the cycle loop,
  // so it reports in absolute seconds beside the loop's 100%, not as a
  // share of it.
  char cosim[48] = "";
  if (phases_.cosim > 0)
    std::snprintf(cosim, sizeof cosim, " (cosim %.1f%% of total)",
                  pct(phases_.cosim));
  char replay[48] = "";
  if (phases_.replay > 0)
    std::snprintf(replay, sizeof replay, " (replay %.1f%% of total)",
                  pct(phases_.replay));
  char ffwd[40] = "";
  if (phases_.ffwd > 0)
    std::snprintf(ffwd, sizeof ffwd, " | ffwd %.2fs pre-loop", phases_.ffwd);
  std::fprintf(stderr,
               "[%s] host phases: commit %.1f%%%s | "
               "resolve %.1f%% | select %.1f%% | memory %.1f%%%s"
               " | dispatch %.1f%% | fetch %.1f%%%s\n",
               name_.c_str(), pct(phases_.commit), cosim,
               pct(phases_.resolve), pct(phases_.select), pct(phases_.memory),
               replay, pct(phases_.dispatch),
               pct(phases_.fetch), ffwd);
}

}  // namespace bsp::campaign
