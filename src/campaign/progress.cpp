#include "campaign/progress.hpp"

#include <cstdio>

namespace bsp::campaign {

ProgressMeter::ProgressMeter(std::string name, std::size_t total,
                             std::size_t skipped, bool enabled)
    : name_(std::move(name)),
      total_(total),
      skipped_(skipped),
      enabled_(enabled),
      start_(std::chrono::steady_clock::now()) {}

void ProgressMeter::task_done(const TaskOutcome& outcome) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++done_;
  if (!outcome.ok()) ++failed_;
  if (outcome.retried()) ++retried_;
  if (enabled_) print_line_locked();
}

void ProgressMeter::finish() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!enabled_ || finished_) return;
  finished_ = true;
  print_line_locked();
  std::fputc('\n', stderr);
  std::fflush(stderr);
}

void ProgressMeter::print_line_locked() {
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  const double rate = elapsed > 0 ? static_cast<double>(done_) / elapsed : 0;
  const std::size_t remaining = total_ - skipped_ - done_;
  char eta[32];
  if (rate > 0) {
    const double sec = static_cast<double>(remaining) / rate;
    if (sec >= 90)
      std::snprintf(eta, sizeof eta, "%.1fmin", sec / 60);
    else
      std::snprintf(eta, sizeof eta, "%.0fs", sec);
  } else {
    std::snprintf(eta, sizeof eta, "?");
  }
  std::fprintf(stderr,
               "\r[%s] %zu/%zu done (%zu resumed) | %zu failed | %zu retried "
               "| %.2f tasks/s | ETA %s   ",
               name_.c_str(), done_ + skipped_, total_, skipped_, failed_,
               retried_, rate, eta);
  std::fflush(stderr);
}

}  // namespace bsp::campaign
