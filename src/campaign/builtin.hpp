// Built-in named campaigns: the paper sweeps ported from hand-rolled bench
// driver loops onto the campaign engine. Each is a SweepSpec factory with
// the same default budgets, seeds and configuration stacks as the legacy
// driver it mirrors, so `bsp-sweep --campaign fig11` reproduces
// `bench/fig11_ipc` exactly (same configs + seeds => identical SimStats).
#pragma once

#include <string>
#include <vector>

#include "campaign/spec.hpp"

namespace bsp::campaign {

struct BuiltinCampaign {
  std::string name;
  std::string description;
  SweepSpec (*make)();
};

const std::vector<BuiltinCampaign>& builtin_campaigns();

// nullptr when unknown.
const BuiltinCampaign* find_campaign(const std::string& name);

}  // namespace bsp::campaign
