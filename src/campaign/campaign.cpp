#include "campaign/campaign.hpp"

#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>

#include "campaign/ckpt_cache.hpp"
#include "campaign/progress.hpp"
#include "core/simulator.hpp"
#include "obs/interval.hpp"
#include "workloads/workloads.hpp"

namespace bsp::campaign {

TaskRecord record_from_outcome(const TaskSpec& task, const TaskOutcome& out) {
  TaskRecord rec;
  rec.task = task;
  rec.status = out.status;
  rec.error = out.error;
  rec.attempts = out.attempts;
  rec.duration_ms = out.duration_ms;
  rec.stats = out.stats;
  rec.interval = out.interval;
  rec.series = out.series;
  rec.max_rss_kb = out.max_rss_kb;
  rec.user_sec = out.user_sec;
  rec.sys_sec = out.sys_sec;
  rec.ckpt_cache = out.ckpt_cache;
  rec.ffwd_sec = out.ffwd_sec;
  rec.sample_intervals = out.sample_intervals;
  rec.sample_warmup = out.sample_warmup;
  rec.ipc_mean = out.ipc_mean;
  rec.ipc_ci95 = out.ipc_ci95;
  rec.samples = out.samples;
  return rec;
}

TaskOutcome outcome_from_record(const TaskRecord& rec) {
  TaskOutcome out;
  out.status = rec.status;
  out.error = rec.error;
  out.attempts = rec.attempts;
  out.duration_ms = rec.duration_ms;
  out.stats = rec.stats;
  out.interval = rec.interval;
  out.series = rec.series;
  out.max_rss_kb = rec.max_rss_kb;
  out.user_sec = rec.user_sec;
  out.sys_sec = rec.sys_sec;
  out.ckpt_cache = rec.ckpt_cache;
  out.ffwd_sec = rec.ffwd_sec;
  out.sample_intervals = rec.sample_intervals;
  out.sample_warmup = rec.sample_warmup;
  out.ipc_mean = rec.ipc_mean;
  out.ipc_ci95 = rec.ipc_ci95;
  out.samples = rec.samples;
  return out;
}

CampaignReport run_campaign(const SweepSpec& spec, const TaskRunner& runner,
                            const CampaignOptions& options) {
  const std::vector<TaskSpec> tasks = spec.expand();
  const std::string out_path =
      options.out_path.empty() ? spec.name + ".jsonl" : options.out_path;
  ResultStore store(out_path, options.fresh);

  // Partition the grid into already-satisfied tasks and work to do.
  std::vector<std::size_t> todo;  // indices into `tasks`
  CampaignReport report;
  report.total = tasks.size();
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const std::string status = store.status(tasks[i].id());
    const bool satisfied =
        options.retry_failed ? status == "ok" : !status.empty();
    if (satisfied)
      ++report.skipped;
    else
      todo.push_back(i);
  }

  ProgressMeter meter(spec.name, tasks.size(), report.skipped,
                      options.progress);
  std::mutex report_mutex;
  std::vector<TaskSpec> pending;
  pending.reserve(todo.size());
  for (const std::size_t i : todo) pending.push_back(tasks[i]);

  // Checkpoint-cache pre-pass: pay each distinct fast-forward once, up
  // front, so the sweep's workers (thread or process) only ever restore.
  report.prewarm = prewarm_checkpoint_cache(pending, options.scheduler);

  run_tasks(pending, runner, options.scheduler,
            [&](std::size_t pi, const TaskOutcome& out) {
              // Thread-safe, atomic line append.
              store.append(record_from_outcome(pending[pi], out));
              meter.task_done(out);
              std::lock_guard<std::mutex> lock(report_mutex);
              ++report.ran;
              if (out.ckpt_cache == "hit") ++report.ckpt_hits;
              if (out.ckpt_cache == "miss") ++report.ckpt_misses;
              if (out.ok())
                ++report.ok;
              else if (out.status == "crashed")
                ++report.crashed;
              else
                ++report.failed;  // "failed" and "timeout" statuses
              if (out.retried()) ++report.retried;
            });
  meter.finish();

  for (const auto& task : tasks)
    if (const TaskRecord* rec = store.find(task.id()))
      report.records.push_back(*rec);
  return report;
}

TaskRunner make_sim_runner(const RunnerOptions& options) {
  // Shared (workload, seed) -> Workload cache. The first task to need a
  // program builds it; concurrent tasks for the same key block on the
  // shared_future instead of re-assembling. Everything lives behind a
  // shared_ptr so detached timed-out attempts stay memory-safe.
  struct Cache {
    std::mutex m;
    std::map<std::pair<std::string, u64>,
             std::shared_future<std::shared_ptr<const Workload>>>
        built;
    // (workload, seed, fast_forward) -> start checkpoint, same
    // build-once/share pattern: within one process each distinct
    // fast-forward is paid (or its cache file read) exactly once, no matter
    // how many concurrent tasks need it.
    std::map<std::tuple<std::string, u64, u64>, std::shared_future<CkptFetch>>
        ckpts;
  };
  auto cache = std::make_shared<Cache>();
  return [cache, options](const TaskSpec& task) -> AttemptResult {
    std::shared_future<std::shared_ptr<const Workload>> fut;
    bool builder = false;
    std::promise<std::shared_ptr<const Workload>> promise;
    {
      std::lock_guard<std::mutex> lock(cache->m);
      const auto key = std::make_pair(task.workload, task.seed);
      const auto it = cache->built.find(key);
      if (it == cache->built.end()) {
        fut = promise.get_future().share();
        cache->built.emplace(key, fut);
        builder = true;
      } else {
        fut = it->second;
      }
    }
    if (builder) {
      try {
        WorkloadParams params;
        params.seed = task.seed;
        promise.set_value(std::make_shared<const Workload>(
            build_workload(task.workload, params)));
      } catch (...) {
        promise.set_exception(std::current_exception());
      }
    }
    std::shared_ptr<const Workload> workload;
    try {
      workload = fut.get();  // rethrows the builder's failure for everyone
    } catch (const std::exception& e) {
      AttemptResult r;
      r.error = std::string("workload build failed: ") + e.what();
      return r;
    }
    // Fast-forward tasks start from a shared checkpoint: in-process memo
    // first, then the on-disk cache, then (cold path) one fast-forward run
    // whose result every later task reuses.
    CkptFetch ckpt;
    if (task.fast_forward > 0) {
      std::shared_future<CkptFetch> cfut;
      bool ckpt_builder = false;
      std::promise<CkptFetch> cpromise;
      {
        std::lock_guard<std::mutex> lock(cache->m);
        const auto key =
            std::make_tuple(task.workload, task.seed, task.fast_forward);
        const auto it = cache->ckpts.find(key);
        if (it == cache->ckpts.end()) {
          cfut = cpromise.get_future().share();
          cache->ckpts.emplace(key, cfut);
          ckpt_builder = true;
        } else {
          cfut = it->second;
        }
      }
      if (ckpt_builder)
        cpromise.set_value(fetch_checkpoint(options.ckpt_cache_dir,
                                            task.workload, task.seed,
                                            workload->program,
                                            task.fast_forward));
      ckpt = cfut.get();
      if (!ckpt.ok()) {
        AttemptResult r;
        r.error = "fast-forward failed: " + ckpt.error;
        return r;
      }
      // Memo consumers after the first share the builder's fetch; only the
      // builder reports its miss (and pays its ffwd_sec) so per-task
      // records sum to the real host cost instead of multiply counting it.
      if (!ckpt_builder) {
        ckpt.hit = true;
        ckpt.ffwd_sec = 0;
      }
    }
    Simulator sim = task.fast_forward > 0
                        ? Simulator(task.machine.build(), workload->program,
                                    *ckpt.checkpoint)
                        : Simulator(task.machine.build(), workload->program);
    obs::IntervalSampler sampler(options.interval ? options.interval : 1);
    if (options.interval) sim.set_interval_sampler(&sampler);
    if (options.host_profile) sim.enable_host_profile();
    if (options.cpi_stack) sim.enable_cpi_stack();
    const std::string& cosim_text =
        !task.cosim.empty() ? task.cosim : options.cosim;
    if (!cosim_text.empty()) {
      SimOptions so;
      if (!parse_cosim(cosim_text, &so)) {
        AttemptResult r;
        r.error = "bad cosim mode: " + cosim_text;
        return r;
      }
      sim.set_options(so);
    }
    const SimResult res = sim.run(task.instructions, task.warmup);
    AttemptResult r;
    r.stats = res.stats;
    r.error = res.error;
    if (task.fast_forward > 0) {
      r.ckpt_cache = ckpt.hit ? "hit" : "miss";
      r.ffwd_sec = ckpt.ffwd_sec;
      if (options.host_profile) r.stats.host_profile.ffwd = ckpt.ffwd_sec;
    }
    if (options.interval) {
      r.interval = options.interval;
      r.series.reserve(sampler.rows().size());
      for (const obs::IntervalRow& row : sampler.rows()) {
        std::vector<u64> flat;
        flat.reserve(2 + row.delta.size());
        flat.push_back(row.cycle);
        flat.push_back(row.committed);
        flat.insert(flat.end(), row.delta.begin(), row.delta.end());
        r.series.push_back(std::move(flat));
      }
    }
    return r;
  };
}

Table summary_table(const SweepSpec& spec, const CampaignReport& report) {
  std::vector<std::string> header = {"workload"};
  if (spec.seeds.size() > 1) header.push_back("seed");
  for (const auto& m : spec.machines) header.push_back(m.label);
  Table table(std::move(header));

  std::map<std::string, const TaskRecord*> by_id;
  for (const auto& rec : report.records) by_id[rec.task.id()] = &rec;

  std::vector<double> col_sum(spec.machines.size(), 0.0);
  std::vector<unsigned> col_n(spec.machines.size(), 0);
  for (const auto& workload : spec.workloads) {
    for (const u64 seed : spec.seeds) {
      std::vector<std::string> row = {workload};
      if (spec.seeds.size() > 1) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "0x%llx",
                      static_cast<unsigned long long>(seed));
        row.push_back(buf);
      }
      for (std::size_t mi = 0; mi < spec.machines.size(); ++mi) {
        TaskSpec probe;
        probe.campaign = spec.name;
        probe.workload = workload;
        probe.seed = seed;
        probe.machine = spec.machines[mi];
        probe.instructions = spec.instructions;
        probe.warmup = spec.warmup;
        probe.fast_forward = spec.fast_forward;
        probe.cosim = spec.cosim;
        const auto it = by_id.find(probe.id());
        if (it == by_id.end()) {
          row.push_back("-");
        } else if (it->second->status != "ok") {
          row.push_back(it->second->status);
        } else {
          const double ipc = it->second->stats.ipc();
          row.push_back(Table::num(ipc, 3));
          col_sum[mi] += ipc;
          ++col_n[mi];
        }
      }
      table.add_row(std::move(row));
    }
  }
  std::vector<std::string> mean_row = {"mean"};
  if (spec.seeds.size() > 1) mean_row.push_back("");
  for (std::size_t mi = 0; mi < spec.machines.size(); ++mi)
    mean_row.push_back(col_n[mi] ? Table::num(col_sum[mi] / col_n[mi], 3)
                                 : "-");
  table.add_row(std::move(mean_row));
  return table;
}

}  // namespace bsp::campaign
