// The campaign engine's top layer: expand a SweepSpec, skip tasks the JSONL
// store already holds (checkpoint/resume), run the remainder through the
// fault-tolerant scheduler with live progress, and summarise.
#pragma once

#include <string>
#include <vector>

#include "campaign/scheduler.hpp"
#include "campaign/spec.hpp"
#include "campaign/store.hpp"
#include "util/table.hpp"

namespace bsp::campaign {

struct CampaignOptions {
  SchedulerOptions scheduler;
  std::string out_path;       // JSONL store path ("" = <name>.jsonl in cwd)
  bool fresh = false;         // discard existing records instead of resuming
  bool retry_failed = false;  // re-run tasks whose record is failed/timeout
  bool progress = true;       // live stderr progress line
};

struct CampaignReport {
  std::size_t total = 0;    // expanded grid size
  std::size_t skipped = 0;  // satisfied by existing records (resume)
  std::size_t ran = 0;      // executed this run
  std::size_t ok = 0;       // ... of which succeeded
  std::size_t failed = 0;   // ... of which failed or timed out
  std::size_t crashed = 0;  // ... of which died on a signal (process mode)
  std::size_t retried = 0;  // ... of which needed >1 attempt
  // Checkpoint-cache pre-pass stats (all zero when no --ckpt-cache dir or
  // no fast_forward in the spec).
  PrewarmStats prewarm;
  // Per-task cache traffic: executed tasks whose start checkpoint came from
  // the cache ("hit") vs. paid-here fast-forwards ("miss").
  std::size_t ckpt_hits = 0;
  std::size_t ckpt_misses = 0;
  // Final state of every task in the grid (resumed + fresh), in grid order.
  std::vector<TaskRecord> records;
};

// Runs `spec` with `runner`, appending one record per executed task to the
// store at options.out_path. Rerunning with the same path resumes: tasks
// whose records already exist are skipped (any status; with retry_failed,
// only "ok" records are skipped and failed tasks get a fresh record).
CampaignReport run_campaign(const SweepSpec& spec, const TaskRunner& runner,
                            const CampaignOptions& options);

// Scheduler outcome <-> store record, one field mapping in one place. Used
// by run_campaign, the remote worker (outcome -> RECORD frame) and the
// remote coordinator (RECORD frame -> progress meter feed).
TaskRecord record_from_outcome(const TaskSpec& task, const TaskOutcome& out);
TaskOutcome outcome_from_record(const TaskRecord& rec);

// Per-task observability knobs for the production runner.
struct RunnerOptions {
  // Sample deltas of every SimStats counter each `interval` committed
  // instructions (obs/interval.hpp); the series lands in the task's record
  // ("interval" + "series" fields). 0 = off.
  u64 interval = 0;
  // Collect host-phase profiles (SimStats::host_profile, serialised as the
  // record's "host_phases" object) and feed the progress meter's breakdown.
  bool host_profile = false;
  // Shared checkpoint cache directory for fast_forward > 0 tasks ("" = no
  // on-disk cache; concurrent in-process tasks still share one fast-forward
  // through the runner's memo). Point workers at the same directory the
  // scheduler prewarmed.
  std::string ckpt_cache_dir;
  // CPI-stack cycle accounting per task (Simulator::enable_cpi_stack):
  // the SimStats cpi_* leaves land in every record, ready for
  // `bsp-report --cpi-stack` aggregation.
  bool cpi_stack = false;
  // Run-wide co-simulation cadence default ("full", "off", "spot[:N]");
  // a task's own TaskSpec::cosim overrides it. "" = full.
  std::string cosim;
};

// The production runner: builds each (workload, seed) program once —
// concurrent tasks share it through an internal cache — then runs the
// task's machine configuration. Co-simulation divergence and workload-build
// failures come back as AttemptResult errors, never as exceptions or
// aborts.
TaskRunner make_sim_runner(const RunnerOptions& options = {});

// Per-campaign summary: one row per (workload, seed), one IPC column per
// machine point (spec order), with failed tasks shown as their status. A
// final "mean" row averages each column over its successful rows.
Table summary_table(const SweepSpec& spec, const CampaignReport& report);

}  // namespace bsp::campaign
