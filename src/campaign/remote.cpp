#include "campaign/remote.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <vector>

#include "campaign/ckpt_cache.hpp"
#include "campaign/progress.hpp"
#include "campaign/store.hpp"
#include "obs/json.hpp"

namespace bsp::campaign {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

// Payloads are "VERB" or "VERB body".
std::pair<std::string, std::string> split_verb(const std::string& payload) {
  const std::size_t sp = payload.find(' ');
  if (sp == std::string::npos) return {payload, ""};
  return {payload.substr(0, sp), payload.substr(sp + 1)};
}

// Hostnames and campaign names are identifier-ish; this covers the two
// characters that could still break a JSON string.
std::string json_escape_min(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6f", v);
  return buf;
}

double json_num(const obs::JsonValue& obj, const char* key, double fallback) {
  const obs::JsonValue* v = obj.get(key);
  return v && v->is_number() ? v->number : fallback;
}

bool json_bool(const obs::JsonValue& obj, const char* key, bool fallback) {
  const obs::JsonValue* v = obj.get(key);
  return v && v->kind == obs::JsonValue::Kind::Bool ? v->boolean : fallback;
}

// One distinct (workload, seed, fast_forward > 0) representative per group,
// mirroring prewarm_checkpoint_cache()'s grouping — these ride to every
// worker as PREWARM frames so each *host* pays each fast-forward once,
// before its first task, instead of on the critical path.
std::vector<TaskSpec> prewarm_representatives(
    const std::vector<TaskSpec>& tasks, const std::deque<std::size_t>& todo) {
  std::vector<TaskSpec> reps;
  for (const std::size_t i : todo) {
    const TaskSpec& t = tasks[i];
    if (t.fast_forward == 0) continue;
    const auto same = [&](const TaskSpec& r) {
      return r.workload == t.workload && r.seed == t.seed &&
             r.fast_forward == t.fast_forward;
    };
    if (std::none_of(reps.begin(), reps.end(), same)) reps.push_back(t);
  }
  return reps;
}

}  // namespace

std::string encode_remote_spec(const RemoteSpec& spec) {
  std::ostringstream os;
  os << "{\"proto\":" << spec.proto << ",\"campaign\":\""
     << json_escape_min(spec.campaign) << "\",\"interval\":" << spec.interval
     << ",\"host_profile\":" << (spec.host_profile ? "true" : "false")
     << ",\"cpi_stack\":" << (spec.cpi_stack ? "true" : "false")
     << ",\"sample_intervals\":" << spec.sample_intervals
     << ",\"sample_warmup\":" << spec.sample_warmup
     << ",\"timeout_sec\":" << fmt_double(spec.timeout_sec)
     << ",\"max_attempts\":" << spec.max_attempts
     << ",\"heartbeat_sec\":" << fmt_double(spec.heartbeat_sec);
  // Written only when set, mirroring the store's only-when-set rule.
  if (!spec.cosim.empty())
    os << ",\"cosim\":\"" << json_escape_min(spec.cosim) << "\"";
  os << "}";
  return os.str();
}

std::optional<RemoteSpec> parse_remote_spec(const std::string& json) {
  const auto v = obs::parse_json(json);
  if (!v || !v->is_object()) return std::nullopt;
  RemoteSpec spec;
  spec.proto = static_cast<int>(json_num(*v, "proto", -1));
  if (spec.proto < 0) return std::nullopt;
  if (const obs::JsonValue* c = v->get("campaign"))
    if (c->is_string()) spec.campaign = c->str;
  spec.interval = static_cast<u64>(json_num(*v, "interval", 0));
  spec.host_profile = json_bool(*v, "host_profile", false);
  spec.cpi_stack = json_bool(*v, "cpi_stack", false);
  spec.sample_intervals =
      static_cast<u64>(json_num(*v, "sample_intervals", 0));
  spec.sample_warmup = static_cast<u64>(json_num(*v, "sample_warmup", 2000));
  spec.timeout_sec = json_num(*v, "timeout_sec", 0);
  spec.max_attempts =
      static_cast<unsigned>(json_num(*v, "max_attempts", 2));
  spec.heartbeat_sec = json_num(*v, "heartbeat_sec", 1.0);
  if (const obs::JsonValue* c = v->get("cosim"))
    if (c->is_string()) spec.cosim = c->str;
  return spec;
}

// ------------------------------------------------------------- coordinator

namespace {

struct Conn {
  std::unique_ptr<FrameChannel> ch;
  std::string host = "?";
  unsigned slots = 0;
  enum Stage { kAwaitHello, kAwaitReady, kReady, kDead } stage = kAwaitHello;
  Clock::time_point last_seen;
  std::map<std::size_t, Clock::time_point> inflight;  // task idx -> sent at
};

struct TaskState {
  bool done = false;
  unsigned runners = 0;  // live connections currently holding the task
  Clock::time_point first_dispatch{};
};

// One dashboard poll in flight: the response is composed at accept time
// and drip-fed by the event loop, so a stalled or mute client can never
// stall dispatch or heartbeat accounting.
struct StatusConn {
  int fd = -1;
  std::string out;  // response bytes not yet written
  bool peer_eof = false;
  bool dead = false;
  Clock::time_point opened;
  Clock::time_point wrote{};  // zero until the response is fully out
};

// A finished status reply lingers this long so request bytes still in
// flight get drained (closing with unread data risks an RST that could
// discard the response); any status connection is closed outright after
// the deadline.
constexpr double kStatusLingerSec = 0.25;
constexpr double kStatusDeadlineSec = 2.0;

}  // namespace

CampaignReport serve_campaign(const SweepSpec& spec,
                              const CampaignOptions& options,
                              const RemoteOptions& remote) {
  const std::vector<TaskSpec> tasks = spec.expand();
  const std::string out_path =
      options.out_path.empty() ? spec.name + ".jsonl" : options.out_path;
  ResultStore store(out_path, options.fresh);

  CampaignReport report;
  report.total = tasks.size();
  std::deque<std::size_t> queue;
  std::vector<TaskState> state(tasks.size());
  std::unordered_map<std::string, std::size_t> idx_by_id;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    idx_by_id.emplace(tasks[i].id(), i);
    const std::string status = store.status(tasks[i].id());
    const bool satisfied =
        options.retry_failed ? status == "ok" : !status.empty();
    if (satisfied) {
      ++report.skipped;
      state[i].done = true;
    } else {
      queue.push_back(i);
    }
  }
  std::size_t done_count = report.skipped;

  ProgressMeter meter(spec.name, tasks.size(), report.skipped,
                      options.progress);

  const auto finish = [&]() -> CampaignReport {
    meter.finish();
    for (const auto& task : tasks)
      if (const TaskRecord* rec = store.find(task.id()))
        report.records.push_back(*rec);
    return report;
  };
  if (queue.empty()) return finish();  // fully resumed: nothing to serve

  TcpListener listener;
  std::string err;
  if (!listener.open(remote.bind, &err))
    throw std::runtime_error("bsp-sweep --serve: " + err);
  TcpListener status_listener;
  if (remote.status && !status_listener.open(remote.status_bind, &err))
    throw std::runtime_error("bsp-sweep --status-endpoint: " + err);
  if (!remote.port_file.empty()) {
    // tmp + rename so a polling launcher script never reads a half-written
    // file.
    const std::string tmp = remote.port_file + ".tmp";
    {
      std::ofstream out(tmp);
      out << "port=" << listener.port() << "\n"
          << "status_port=" << (remote.status ? status_listener.port() : 0)
          << "\n";
    }
    std::rename(tmp.c_str(), remote.port_file.c_str());
  }
  std::fprintf(stderr,
               "bsp-sweep: serving campaign %s on %s:%u (%zu of %zu tasks "
               "pending%s)\n",
               spec.name.c_str(),
               remote.bind.host.empty() ? "0.0.0.0" : remote.bind.host.c_str(),
               listener.port(), queue.size(), tasks.size(),
               remote.status ? (", status :" +
                                std::to_string(status_listener.port()))
                                   .c_str()
                             : "");

  const std::vector<TaskSpec> reps = prewarm_representatives(tasks, queue);
  RemoteSpec wire_spec = remote.spec;
  wire_spec.heartbeat_sec = remote.heartbeat_sec;  // fleet-wide PING period
  const std::string spec_frame = "SPEC " + encode_remote_spec(wire_spec);

  // A deadline below the PING period would declare every healthy worker
  // dead between heartbeats; floor it at two missed beats.
  double worker_deadline_sec = remote.worker_deadline_sec;
  if (remote.heartbeat_sec > 0 &&
      worker_deadline_sec < 2 * remote.heartbeat_sec) {
    worker_deadline_sec = 2 * remote.heartbeat_sec;
    std::fprintf(stderr,
                 "bsp-sweep: --worker-deadline %.3gs is under twice the "
                 "%.3gs heartbeat; using %.3gs\n",
                 remote.worker_deadline_sec, remote.heartbeat_sec,
                 worker_deadline_sec);
  }

  std::vector<std::unique_ptr<Conn>> conns;
  std::size_t duplicates_dropped = 0;
  std::mutex report_mutex;  // meter/report are also read by status replies

  const auto drop_conn = [&](Conn& c, const char* why) {
    if (c.stage == Conn::kDead) return;
    if (!c.inflight.empty() || c.stage == Conn::kReady)
      std::fprintf(stderr,
                   "bsp-sweep: worker %s lost (%s), re-queueing %zu task%s\n",
                   c.host.c_str(), why, c.inflight.size(),
                   c.inflight.size() == 1 ? "" : "s");
    for (const auto& [idx, at] : c.inflight) {
      (void)at;
      if (state[idx].runners > 0) --state[idx].runners;
      if (!state[idx].done && state[idx].runners == 0)
        queue.push_front(idx);  // front: a re-queued task is the oldest work
    }
    c.inflight.clear();
    c.stage = Conn::kDead;
    c.ch->flush_sends();  // best-effort: a queued ERROR should reach the peer
    c.ch->close();
  };

  const auto pick_task = [&](const Conn& c) -> std::optional<std::size_t> {
    while (!queue.empty()) {
      const std::size_t idx = queue.front();
      queue.pop_front();
      if (!state[idx].done) return idx;
    }
    // Queue dry: steal the longest-in-flight straggler this worker is not
    // already running. Capped at two runners per task — one straggler, one
    // thief — so a slow task cannot fan out across the whole fleet.
    const auto now = Clock::now();
    std::optional<std::size_t> best;
    for (std::size_t i = 0; i < state.size(); ++i) {
      if (state[i].done || state[i].runners == 0 || state[i].runners >= 2)
        continue;
      if (c.inflight.count(i)) continue;
      if (seconds_between(state[i].first_dispatch, now) <
          remote.steal_after_sec)
        continue;
      if (!best || state[i].first_dispatch < state[*best].first_dispatch)
        best = i;
    }
    return best;
  };

  const auto assign = [&](Conn& c) {
    if (c.stage != Conn::kReady) return;
    while (c.inflight.size() < c.slots) {
      const auto idx = pick_task(c);
      if (!idx) break;
      if (!c.ch->queue_send("TASK " + task_jsonl(tasks[*idx]))) {
        // The send failure re-queues this very task along with the rest.
        state[*idx].runners++;
        c.inflight[*idx] = Clock::now();
        drop_conn(c, "send failed");
        return;
      }
      const auto now = Clock::now();
      c.inflight[*idx] = now;
      if (state[*idx].runners++ == 0) state[*idx].first_dispatch = now;
    }
  };

  const auto handle_record = [&](Conn& c, const std::string& body) {
    const auto rec = parse_jsonl(body);
    if (!rec) return;
    const auto it = idx_by_id.find(rec->task.id());
    if (it == idx_by_id.end()) return;  // foreign record: ignore
    const std::size_t idx = it->second;
    if (c.inflight.erase(idx) && state[idx].runners > 0)
      --state[idx].runners;
    if (state[idx].done) {
      ++duplicates_dropped;  // re-dispatch race: first record already won
      return;
    }
    state[idx].done = true;
    ++done_count;
    store.append(*rec);
    const TaskOutcome out = outcome_from_record(*rec);
    meter.task_done(out);
    std::lock_guard<std::mutex> lock(report_mutex);
    ++report.ran;
    if (out.ckpt_cache == "hit") ++report.ckpt_hits;
    if (out.ckpt_cache == "miss") ++report.ckpt_misses;
    if (out.ok())
      ++report.ok;
    else if (out.status == "crashed")
      ++report.crashed;
    else
      ++report.failed;
    if (out.retried()) ++report.retried;
  };

  const auto handle_frame = [&](Conn& c, const std::string& payload) {
    c.last_seen = Clock::now();
    const auto [verb, body] = split_verb(payload);
    switch (c.stage) {
      case Conn::kAwaitHello: {
        if (verb != "HELLO") {
          c.ch->queue_send("ERROR expected HELLO");
          drop_conn(c, "bad handshake");
          return;
        }
        const auto hello = obs::parse_json(body);
        const int proto =
            hello && hello->is_object()
                ? static_cast<int>(json_num(*hello, "proto", -1))
                : -1;
        if (proto != kRemoteProtocolVersion) {
          c.ch->queue_send("ERROR incompatible protocol version " +
                           std::to_string(proto) + " (coordinator speaks " +
                           std::to_string(kRemoteProtocolVersion) + ")");
          drop_conn(c, "protocol version mismatch");
          return;
        }
        if (const obs::JsonValue* h = hello->get("host"))
          if (h->is_string() && !h->str.empty()) c.host = h->str;
        c.slots = std::max(
            1u, static_cast<unsigned>(json_num(*hello, "slots", 1)));
        bool sent = c.ch->queue_send(spec_frame);
        for (const TaskSpec& rep : reps)
          sent = sent && c.ch->queue_send("PREWARM " + task_jsonl(rep));
        sent = sent && c.ch->queue_send("GO");
        if (!sent) {
          drop_conn(c, "send failed");
          return;
        }
        c.stage = Conn::kAwaitReady;
        return;
      }
      case Conn::kAwaitReady:
        if (verb == "READY") {
          c.stage = Conn::kReady;
          std::fprintf(stderr,
                       "bsp-sweep: worker %s ready (%u slot%s)\n",
                       c.host.c_str(), c.slots, c.slots == 1 ? "" : "s");
          assign(c);
        }
        return;  // PINGs during prewarm just refresh last_seen
      case Conn::kReady:
        if (verb == "RECORD") {
          handle_record(c, body);
          assign(c);
        }
        return;  // PING handled by the last_seen refresh above
      case Conn::kDead:
        return;
    }
  };

  const auto status_json = [&]() -> std::string {
    const ProgressSnapshot s = meter.snapshot();
    std::size_t inflight = 0;
    std::ostringstream workers;
    bool first = true;
    const auto now = Clock::now();
    for (const auto& c : conns) {
      if (c->stage == Conn::kDead) continue;
      inflight += c->inflight.size();
      workers << (first ? "" : ",") << "{\"host\":\""
              << json_escape_min(c->host) << "\",\"slots\":" << c->slots
              << ",\"inflight\":" << c->inflight.size() << ",\"idle_sec\":"
              << fmt_double(seconds_between(c->last_seen, now)) << "}";
      first = false;
    }
    std::ostringstream os;
    std::lock_guard<std::mutex> lock(report_mutex);
    os << "{\"campaign\":\"" << json_escape_min(spec.name)
       << "\",\"proto\":" << kRemoteProtocolVersion
       << ",\"total\":" << s.total << ",\"skipped\":" << s.skipped
       << ",\"done\":" << s.done << ",\"ok\":" << report.ok
       << ",\"failed\":" << report.failed
       << ",\"crashed\":" << report.crashed
       << ",\"retried\":" << s.retried << ",\"queued\":" << queue.size()
       << ",\"inflight\":" << inflight
       << ",\"elapsed_sec\":" << fmt_double(s.elapsed_sec)
       << ",\"rate_tasks_per_sec\":" << fmt_double(s.rate)
       << ",\"eta_sec\":" << fmt_double(s.eta_sec)
       << ",\"commits_per_host_second\":"
       << fmt_double(s.commits_per_host_second)
       << ",\"max_rss_kb\":" << s.max_rss_kb << ",\"workers\":["
       << workers.str() << "]}";
    return os.str();
  };

  // Best-effort micro-HTTP, fully non-blocking: the reply is composed at
  // accept time (no waiting for request bytes — dashboards poll, they
  // never keep the connection) and written as the socket allows.
  std::vector<StatusConn> status_conns;

  const auto open_status = [&](int fd) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    StatusConn sc;
    sc.fd = fd;
    sc.opened = Clock::now();
    const std::string body = status_json();
    std::ostringstream resp;
    resp << "HTTP/1.0 200 OK\r\nContent-Type: application/json\r\n"
         << "Content-Length: " << body.size()
         << "\r\nConnection: close\r\n\r\n"
         << body;
    sc.out = resp.str();
    status_conns.push_back(std::move(sc));
  };

  const auto flush_status = [](StatusConn& sc) {
    while (!sc.out.empty()) {
      const ssize_t k = ::send(sc.fd, sc.out.data(), sc.out.size(),
                               MSG_NOSIGNAL | MSG_DONTWAIT);
      if (k > 0) {
        sc.out.erase(0, static_cast<std::size_t>(k));
        continue;
      }
      if (k < 0 && errno == EINTR) continue;
      if (k < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      sc.dead = true;
      return;
    }
    ::shutdown(sc.fd, SHUT_WR);  // reply complete: tell the client it's over
    sc.wrote = Clock::now();
  };

  const auto service_status = [&](StatusConn& sc, short revents) {
    if (revents & (POLLIN | POLLHUP | POLLERR)) {
      char buf[2048];
      for (;;) {  // request bytes: read and ignore
        const ssize_t n = ::recv(sc.fd, buf, sizeof buf, MSG_DONTWAIT);
        if (n > 0) continue;
        if (n == 0) {
          sc.peer_eof = true;
          break;
        }
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        sc.dead = true;
        break;
      }
    }
    if (!sc.dead && !sc.out.empty() && (revents & POLLOUT)) flush_status(sc);
  };

  while (done_count < tasks.size()) {
    std::vector<struct pollfd> fds;
    fds.push_back({listener.fd(), POLLIN, 0});
    const std::size_t status_listener_at = fds.size();
    if (remote.status) fds.push_back({status_listener.fd(), POLLIN, 0});
    const std::size_t conn_base = fds.size();
    std::vector<Conn*> polled;
    for (const auto& c : conns)
      if (c->stage != Conn::kDead) {
        const short events = static_cast<short>(
            POLLIN | (c->ch->send_pending() ? POLLOUT : 0));
        fds.push_back({c->ch->fd(), events, 0});
        polled.push_back(c.get());
      }
    const std::size_t status_base = fds.size();
    const std::size_t status_polled = status_conns.size();
    for (const auto& sc : status_conns)
      fds.push_back({sc.fd,
                     static_cast<short>(POLLIN |
                                        (sc.out.empty() ? 0 : POLLOUT)),
                     0});
    const int rc = ::poll(fds.data(), fds.size(), 100);
    if (rc < 0 && errno != EINTR)
      throw std::runtime_error(std::string("bsp-sweep --serve: poll: ") +
                               std::strerror(errno));
    const auto now = Clock::now();
    if (fds[0].revents & POLLIN) {
      for (;;) {
        const int fd = listener.accept_fd();
        if (fd < 0) break;
        auto conn = std::make_unique<Conn>();
        conn->ch = std::make_unique<FrameChannel>(fd);
        conn->last_seen = now;
        conns.push_back(std::move(conn));
      }
    }
    if (remote.status && (fds[status_listener_at].revents & POLLIN)) {
      for (;;) {
        const int fd = status_listener.accept_fd();
        if (fd < 0) break;
        open_status(fd);
        // Opportunistic first write: a fresh socket's send buffer swallows
        // the whole reply, so most polls never re-enter the poll set.
        flush_status(status_conns.back());
      }
    }
    for (std::size_t i = 0; i < polled.size(); ++i) {
      Conn& c = *polled[i];
      if (c.stage == Conn::kDead) continue;  // died earlier this sweep
      const short rev = fds[conn_base + i].revents;
      if ((rev & POLLOUT) && !c.ch->flush_sends()) {
        drop_conn(c, "send failed");
        continue;
      }
      if (!(rev & (POLLIN | POLLHUP | POLLERR))) continue;
      const bool alive = c.ch->pump();
      while (auto frame = c.ch->next_frame()) {
        handle_frame(c, *frame);
        if (c.stage == Conn::kDead) break;
      }
      if (!alive && c.stage != Conn::kDead) drop_conn(c, "connection closed");
      if (!c.ch->valid() && c.stage != Conn::kDead)
        drop_conn(c, "protocol error");
    }
    for (std::size_t i = 0; i < status_polled; ++i)
      service_status(status_conns[i], fds[status_base + i].revents);
    status_conns.erase(
        std::remove_if(status_conns.begin(), status_conns.end(),
                       [&](const StatusConn& sc) {
                         const bool replied =
                             sc.out.empty() &&
                             sc.wrote != Clock::time_point{} &&
                             (sc.peer_eof ||
                              seconds_between(sc.wrote, now) >
                                  kStatusLingerSec);
                         if (!sc.dead && !replied &&
                             seconds_between(sc.opened, now) <=
                                 kStatusDeadlineSec)
                           return false;
                         ::close(sc.fd);
                         return true;
                       }),
        status_conns.end());
    // Heartbeat deadline: a worker that went silent — wedged, partitioned,
    // or SIGKILLed without the FIN reaching us — forfeits its tasks.
    for (const auto& c : conns) {
      if (c->stage == Conn::kDead) continue;
      if (seconds_between(c->last_seen, now) > worker_deadline_sec)
        drop_conn(*c, "heartbeat deadline");
    }
    // Top up idle capacity: newly re-queued tasks and stealable stragglers
    // flow to whoever has free slots.
    for (const auto& c : conns) assign(*c);
    conns.erase(std::remove_if(conns.begin(), conns.end(),
                               [](const std::unique_ptr<Conn>& c) {
                                 return c->stage == Conn::kDead;
                               }),
                conns.end());
  }

  for (const auto& c : conns)
    if (c->stage != Conn::kDead) c->ch->queue_send("DONE");
  // Drain the DONEs (plus any straggling task bytes) without letting one
  // wedged worker block the others' clean shutdown: bounded and
  // non-blocking, then close everything.
  const auto drain_deadline = Clock::now() + std::chrono::seconds(5);
  for (;;) {
    std::vector<struct pollfd> fds;
    std::vector<Conn*> pending;
    for (const auto& c : conns)
      if (c->stage != Conn::kDead && c->ch->send_pending()) {
        fds.push_back({c->ch->fd(), POLLOUT, 0});
        pending.push_back(c.get());
      }
    if (pending.empty() || Clock::now() >= drain_deadline) break;
    if (::poll(fds.data(), fds.size(), 100) < 0 && errno != EINTR) break;
    for (std::size_t i = 0; i < pending.size(); ++i)
      if (fds[i].revents & (POLLOUT | POLLHUP | POLLERR))
        if (!pending[i]->ch->flush_sends()) pending[i]->stage = Conn::kDead;
  }
  for (const auto& c : conns)
    if (c->stage != Conn::kDead) c->ch->close();
  for (const auto& sc : status_conns) ::close(sc.fd);
  if (duplicates_dropped > 0)
    std::fprintf(stderr,
                 "bsp-sweep: dropped %zu duplicate record%s from "
                 "re-dispatched tasks (first record per task wins)\n",
                 duplicates_dropped, duplicates_dropped == 1 ? "" : "s");
  return finish();
}

// ------------------------------------------------------------------ worker

namespace {

// Proof of life independent of task progress, running from the moment the
// coordinator knows this worker: the prewarm pre-pass can outlast any sane
// worker deadline, so PINGs must not wait for READY. The period can be
// retuned mid-flight (the SPEC frame carries the fleet-wide value); the
// destructor stops and joins, so every early-return path is covered.
class Heartbeat {
 public:
  Heartbeat(FrameChannel& ch, double period_sec)
      : period_(period_sec > 0 ? period_sec : 1.0),
        th_([this, &ch] { loop(ch); }) {}
  ~Heartbeat() {
    {
      std::lock_guard<std::mutex> lk(m_);
      stop_ = true;
    }
    cv_.notify_all();
    th_.join();
  }
  void set_period(double sec) {
    if (sec <= 0) return;
    {
      std::lock_guard<std::mutex> lk(m_);
      period_ = sec;
      ++gen_;
    }
    cv_.notify_all();
  }

 private:
  void loop(FrameChannel& ch) {
    std::unique_lock<std::mutex> lk(m_);
    for (;;) {
      const std::uint64_t gen = gen_;
      const auto period = std::chrono::duration<double>(period_);
      cv_.wait_for(lk, period, [&] { return stop_ || gen_ != gen; });
      if (stop_) return;
      if (gen_ != gen) continue;  // retuned: restart the wait at the new period
      lk.unlock();
      ch.send("PING");
      lk.lock();
    }
  }

  std::mutex m_;
  std::condition_variable cv_;
  double period_;
  std::uint64_t gen_ = 0;
  bool stop_ = false;
  std::thread th_;
};

}  // namespace

WorkerReport run_remote_worker(const WorkerOptions& options,
                               const WorkerSetup& setup) {
  WorkerReport rep;
  std::string err;
  const int fd =
      tcp_connect(options.connect, options.connect_timeout_sec, &err);
  if (fd < 0) {
    rep.error = err;
    return rep;
  }
  FrameChannel ch(fd);
  const unsigned slots =
      options.slots > 0
          ? options.slots
          : std::max(1u, std::thread::hardware_concurrency());
  std::string host = options.hostname;
  if (host.empty()) {
    char buf[256] = "";
    if (::gethostname(buf, sizeof buf - 1) != 0 || buf[0] == '\0')
      std::snprintf(buf, sizeof buf, "worker-%d", ::getpid());
    host = buf;
  }
  {
    std::ostringstream hello;
    hello << "HELLO {\"proto\":" << kRemoteProtocolVersion << ",\"host\":\""
          << json_escape_min(host) << "\",\"slots\":" << slots << "}";
    if (!ch.send(hello.str())) {
      rep.error = "sending HELLO failed";
      return rep;
    }
  }
  // Heartbeat from HELLO onward — the coordinator's deadline clock is
  // already running, and prewarm (below) can take minutes.
  Heartbeat beat(ch, options.heartbeat_sec);

  std::string payload;
  if (ch.recv(&payload, 30.0) != FrameResult::kFrame) {
    rep.error = "no SPEC from coordinator within 30s";
    return rep;
  }
  {
    const auto [verb, body] = split_verb(payload);
    if (verb == "ERROR") {
      rep.error = "coordinator rejected worker: " + body;
      return rep;
    }
    if (verb != "SPEC") {
      rep.error = "protocol error: expected SPEC, got " + verb;
      return rep;
    }
    const auto spec = parse_remote_spec(body);
    if (!spec || spec->proto != kRemoteProtocolVersion) {
      rep.error = "unparseable or incompatible SPEC frame";
      return rep;
    }
    beat.set_period(spec->heartbeat_sec);  // fleet-wide period wins

    std::vector<TaskSpec> prewarm_tasks;
    for (;;) {
      if (ch.recv(&payload, 30.0) != FrameResult::kFrame) {
        rep.error = "connection lost during handshake";
        return rep;
      }
      const auto [v, b] = split_verb(payload);
      if (v == "PREWARM") {
        if (const auto rec = parse_jsonl(b)) prewarm_tasks.push_back(rec->task);
      } else if (v == "GO") {
        break;
      } else {
        rep.error = "protocol error during handshake: " + v;
        return rep;
      }
    }

    TaskRunner runner;
    SchedulerOptions sched;
    sched.jobs = slots;
    sched.timeout_sec = spec->timeout_sec;
    sched.max_attempts = spec->max_attempts;
    if (setup) setup(*spec, &runner, &sched);
    if (!runner) {
      rep.error = "worker setup produced no runner";
      return rep;
    }

    // Per-host prewarm pre-pass: each distinct checkpoint is materialised
    // (or found) in this host's cache before the first TASK arrives.
    PrewarmStats pw;
    if (!prewarm_tasks.empty())
      pw = prewarm_checkpoint_cache(prewarm_tasks, sched);
    rep.prewarm_groups = pw.groups;
    {
      std::ostringstream ready;
      ready << "READY {\"groups\":" << pw.groups
            << ",\"materialised\":" << pw.materialised
            << ",\"reused\":" << pw.reused << "}";
      if (!ch.send(ready.str())) {
        rep.error = "sending READY failed";
        return rep;
      }
    }

    // Slot pool: the coordinator keeps at most `slots` tasks open on this
    // connection, so the queue never grows past that.
    struct Pool {
      std::mutex m;
      std::condition_variable cv;
      std::deque<TaskSpec> q;
      bool closed = false;
    } pool;
    std::atomic<std::size_t> ran{0}, ok{0};
    std::vector<std::thread> threads;
    threads.reserve(slots);
    for (unsigned i = 0; i < slots; ++i) {
      threads.emplace_back([&] {
        for (;;) {
          TaskSpec task;
          {
            std::unique_lock<std::mutex> lk(pool.m);
            pool.cv.wait(lk,
                         [&] { return pool.closed || !pool.q.empty(); });
            if (pool.q.empty()) return;  // closed and drained
            task = std::move(pool.q.front());
            pool.q.pop_front();
          }
          const TaskOutcome out = run_one_task(task, runner, sched);
          ran.fetch_add(1);
          if (out.ok()) ok.fetch_add(1);
          ch.send("RECORD " + to_jsonl(record_from_outcome(task, out)));
        }
      });
    }

    for (;;) {
      const FrameResult r = ch.recv(&payload, 60.0);
      if (r == FrameResult::kTimeout) continue;
      if (r != FrameResult::kFrame) {
        if (!rep.done) rep.error = "connection to coordinator lost";
        break;
      }
      const auto [v, b] = split_verb(payload);
      if (v == "TASK") {
        if (const auto rec = parse_jsonl(b)) {
          std::lock_guard<std::mutex> lk(pool.m);
          pool.q.push_back(rec->task);
          pool.cv.notify_one();
        }
      } else if (v == "DONE") {
        rep.done = true;
        break;
      } else if (v == "ERROR") {
        rep.error = "coordinator error: " + b;
        break;
      }
    }

    {
      std::lock_guard<std::mutex> lk(pool.m);
      pool.closed = true;
    }
    pool.cv.notify_all();
    for (std::thread& t : threads) t.join();
    rep.ran = ran.load();
    rep.ok = ok.load();
  }
  return rep;
}

}  // namespace bsp::campaign
