#include "campaign/builtin.hpp"

#include "workloads/workloads.hpp"

namespace bsp::campaign {
namespace {

MachinePoint base_point() {
  MachinePoint p;
  p.label = "base (ideal)";
  p.kind = MachineKind::Base;
  return p;
}

MachinePoint simple_point(unsigned slices, const std::string& label) {
  MachinePoint p;
  p.label = label;
  p.kind = MachineKind::Simple;
  p.slices = slices;
  return p;
}

MachinePoint sliced_point(unsigned slices, TechniqueSet techniques,
                          const std::string& label) {
  MachinePoint p;
  p.label = label;
  p.kind = MachineKind::Sliced;
  p.slices = slices;
  p.techniques = techniques;
  return p;
}

// The Figures 11/12 cumulative stacks as machine points, labels prefixed
// with the slice count so the x2 and x4 columns stay distinguishable.
void append_stack(std::vector<MachinePoint>& points, unsigned slices) {
  // (std::string lvalue first: gcc-12 Release -Wrestrict false positive on
  // `const char* + std::string&&`.)
  std::string prefix = "x";
  prefix += std::to_string(slices);
  prefix += ' ';
  for (const StackPoint& sp : technique_stack(slices)) {
    MachinePoint p;
    p.label = prefix + sp.label;
    p.slices = slices;
    if (sp.config.core.techniques == kNoTechniques) {
      p.kind = MachineKind::Simple;
    } else {
      p.kind = MachineKind::Sliced;
      p.techniques = sp.config.core.techniques;
    }
    points.push_back(std::move(p));
  }
}

SweepSpec make_fig11() {
  SweepSpec spec;
  spec.name = "fig11";
  spec.workloads = workload_names();
  spec.machines.push_back(base_point());
  append_stack(spec.machines, 2);
  append_stack(spec.machines, 4);
  return spec;
}

SweepSpec make_fig12() {
  SweepSpec spec;
  spec.name = "fig12";
  spec.workloads = workload_names();
  append_stack(spec.machines, 2);
  append_stack(spec.machines, 4);
  return spec;
}

SweepSpec make_abl_slice_width() {
  SweepSpec spec;
  spec.name = "abl_slice_width";
  // The ablation driver's default subset; override with -w for more.
  spec.workloads = {"bzip", "ijpeg", "li", "vortex"};
  spec.machines.push_back(base_point());
  for (const unsigned s : {2u, 4u, 8u})
    spec.machines.push_back(sliced_point(
        s, kAllTechniques, std::string("x") + std::to_string(s) +
                               " full bit-slice"));
  for (const unsigned s : {2u, 4u, 8u})
    spec.machines.push_back(
        simple_point(s, std::string("x") + std::to_string(s) + " simple"));
  return spec;
}

}  // namespace

const std::vector<BuiltinCampaign>& builtin_campaigns() {
  static const std::vector<BuiltinCampaign> campaigns = {
      {"fig11",
       "Figure 11: IPC of the bit-sliced machine (base + x2/x4 technique "
       "stacks, full suite)",
       &make_fig11},
      {"fig12",
       "Figure 12: speed-up decomposition over simple pipelining (x2/x4 "
       "technique stacks, full suite)",
       &make_fig12},
      {"abl_slice_width",
       "Ablation: slice-width sweep (x2/x4/x8, full stack vs simple "
       "pipelining)",
       &make_abl_slice_width},
  };
  return campaigns;
}

const BuiltinCampaign* find_campaign(const std::string& name) {
  for (const auto& c : builtin_campaigns())
    if (c.name == name) return &c;
  return nullptr;
}

}  // namespace bsp::campaign
