#include "campaign/scheduler.hpp"

#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>

#include "util/parallel.hpp"

namespace bsp::campaign {
namespace {

using Clock = std::chrono::steady_clock;

AttemptResult guarded_call(const TaskRunner& runner, const TaskSpec& task) {
  try {
    return runner(task);
  } catch (const std::exception& e) {
    AttemptResult r;
    r.error = std::string("exception: ") + e.what();
    return r;
  } catch (...) {
    AttemptResult r;
    r.error = "unknown exception";
    return r;
  }
}

// One attempt under a wall-clock deadline. The attempt runs on its own
// thread; on timeout that thread is detached and its (eventual) result
// discarded. Everything the detached thread touches is owned by the
// shared_ptr state, so abandonment is memory-safe.
AttemptResult timed_call(const TaskRunner& runner, const TaskSpec& task,
                         double timeout_sec, bool* timed_out) {
  struct Shared {
    std::mutex m;
    std::condition_variable cv;
    bool done = false;
    AttemptResult result;
  };
  auto shared = std::make_shared<Shared>();
  std::thread worker([shared, runner, task] {
    AttemptResult r = guarded_call(runner, task);
    std::lock_guard<std::mutex> lock(shared->m);
    shared->result = std::move(r);
    shared->done = true;
    shared->cv.notify_all();
  });
  bool done;
  {
    std::unique_lock<std::mutex> lock(shared->m);
    done = shared->cv.wait_for(lock, std::chrono::duration<double>(timeout_sec),
                               [&] { return shared->done; });
  }
  if (!done) {
    worker.detach();
    *timed_out = true;
    return AttemptResult{};
  }
  worker.join();
  *timed_out = false;
  return std::move(shared->result);
}

}  // namespace

TaskOutcome run_one_task(const TaskSpec& task, const TaskRunner& runner,
                         const SchedulerOptions& options) {
  TaskOutcome out;
  const auto t0 = Clock::now();
  const unsigned max_attempts = std::max(1u, options.max_attempts);
  for (unsigned attempt = 1; attempt <= max_attempts; ++attempt) {
    out.attempts = attempt;
    bool timed_out = false;
    const AttemptResult r =
        options.timeout_sec > 0
            ? timed_call(runner, task, options.timeout_sec, &timed_out)
            : guarded_call(runner, task);
    if (timed_out) {
      out.status = "timeout";
      out.error = "attempt exceeded " + std::to_string(options.timeout_sec) +
                  "s wall-clock timeout";
      break;
    }
    if (r.error.empty()) {
      out.status = "ok";
      out.error.clear();
      out.stats = r.stats;
      out.interval = r.interval;
      out.series = r.series;
      break;
    }
    out.status = "failed";
    out.error = r.error;
  }
  out.duration_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  return out;
}

void run_tasks(const std::vector<TaskSpec>& tasks, const TaskRunner& runner,
               const SchedulerOptions& options,
               const std::function<void(std::size_t, const TaskOutcome&)>&
                   on_done) {
  parallel_for(
      tasks.size(),
      [&](std::size_t i) {
        const TaskOutcome out = run_one_task(tasks[i], runner, options);
        on_done(i, out);
      },
      options.jobs);
}

}  // namespace bsp::campaign
