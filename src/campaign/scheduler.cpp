#include "campaign/scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <thread>

#include "campaign/ckpt_cache.hpp"
#include "campaign/store.hpp"
#include "util/parallel.hpp"
#include "util/subprocess.hpp"
#include "workloads/workloads.hpp"

namespace bsp::campaign {
namespace {

using Clock = std::chrono::steady_clock;

AttemptResult guarded_call(const TaskRunner& runner, const TaskSpec& task) {
  try {
    return runner(task);
  } catch (const std::exception& e) {
    AttemptResult r;
    r.error = std::string("exception: ") + e.what();
    return r;
  } catch (...) {
    AttemptResult r;
    r.error = "unknown exception";
    return r;
  }
}

// One attempt under a wall-clock deadline. The attempt runs on its own
// thread; on timeout that thread is detached and its (eventual) result
// discarded. Everything the detached thread touches is owned by the
// shared_ptr state, so abandonment is memory-safe — but the thread keeps
// burning a core until it finishes. IsolationMode::kProcess is the mode
// that actually reclaims the core (SIGKILL + reap).
AttemptResult timed_call(const TaskRunner& runner, const TaskSpec& task,
                         double timeout_sec, bool* timed_out) {
  struct Shared {
    std::mutex m;
    std::condition_variable cv;
    bool done = false;
    AttemptResult result;
  };
  auto shared = std::make_shared<Shared>();
  std::thread worker([shared, runner, task] {
    AttemptResult r = guarded_call(runner, task);
    std::lock_guard<std::mutex> lock(shared->m);
    shared->result = std::move(r);
    shared->done = true;
    shared->cv.notify_all();
  });
  bool done;
  {
    std::unique_lock<std::mutex> lock(shared->m);
    done = shared->cv.wait_for(lock, std::chrono::duration<double>(timeout_sec),
                               [&] { return shared->done; });
  }
  if (!done) {
    worker.detach();
    *timed_out = true;
    return AttemptResult{};
  }
  worker.join();
  *timed_out = false;
  return std::move(shared->result);
}

std::string fmt_timeout(double sec) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", sec);
  return buf;
}

// Last non-empty line of a worker's stdout — the record line, tolerating
// any stray diagnostics the worker printed before it.
std::string last_nonempty_line(const std::string& text) {
  std::size_t end = text.size();
  while (end > 0) {
    std::size_t begin = text.find_last_of('\n', end - 1);
    begin = begin == std::string::npos ? 0 : begin + 1;
    if (begin < end) return text.substr(begin, end - begin);
    end = begin > 0 ? begin - 1 : 0;
  }
  return "";
}

// "; stderr: ..." suffix for error messages, trimmed to stay readable.
std::string stderr_tail(const std::string& err) {
  if (err.empty()) return "";
  constexpr std::size_t kMax = 400;
  std::string tail =
      err.size() <= kMax ? err : "..." + err.substr(err.size() - kMax);
  while (!tail.empty() && (tail.back() == '\n' || tail.back() == '\r'))
    tail.pop_back();
  return tail.empty() ? "" : "; stderr: " + tail;
}

// One task under process isolation: fork/exec the worker per attempt,
// enforce the deadline with SIGKILL, and fold the worker's printed record
// back into a TaskOutcome.
TaskOutcome run_one_task_process(const TaskSpec& task,
                                 const SchedulerOptions& options) {
  TaskOutcome out;
  const auto t0 = Clock::now();
  const unsigned max_attempts = std::max(1u, options.max_attempts);
  std::vector<std::string> argv = options.worker_cmd;
  argv.push_back(options.worker_task_json ? task_jsonl(task) : task.id());
  for (unsigned attempt = 1; attempt <= max_attempts; ++attempt) {
    out.attempts = attempt;
    SubprocessLimits limits;
    limits.timeout_sec = options.timeout_sec;
    const SubprocessResult sp = run_subprocess(argv, limits);
    out.max_rss_kb = std::max(out.max_rss_kb, sp.max_rss_kb);
    out.user_sec += sp.user_sec;
    out.sys_sec += sp.sys_sec;
    if (sp.timed_out) {
      // Not retried — re-running a wedged configuration would just park
      // another core on it; --retry-failed on a later run opts back in.
      out.status = "timeout";
      out.error = "worker SIGKILLed after exceeding " +
                  fmt_timeout(options.timeout_sec) + "s wall-clock timeout";
      break;
    }
    if (sp.spawn_error) {
      out.status = "failed";
      out.error = "worker spawn failed: " + sp.error;
      continue;
    }
    if (sp.signal != 0) {
      // The containment path: the worker died, the campaign did not. A
      // crash can be transient (e.g. the kernel OOM killer), so it gets
      // the same bounded retry as a failure.
      out.status = "crashed";
      out.error = "worker killed by " + signal_name(sp.signal) +
                  stderr_tail(sp.err);
      continue;
    }
    const auto rec = parse_jsonl(last_nonempty_line(sp.out));
    if (!rec || rec->task.id() != task.id()) {
      out.status = "failed";
      out.error = "worker exited " + std::to_string(sp.exit_code) +
                  (rec ? " with a record for the wrong task"
                       : " without a usable record") +
                  stderr_tail(sp.err);
      continue;
    }
    out.status = rec->status;
    out.error = rec->error;
    out.stats = rec->stats;
    out.interval = rec->interval;
    out.series = rec->series;
    out.ckpt_cache = rec->ckpt_cache;
    out.ffwd_sec = rec->ffwd_sec;
    out.sample_intervals = rec->sample_intervals;
    out.sample_warmup = rec->sample_warmup;
    out.ipc_mean = rec->ipc_mean;
    out.ipc_ci95 = rec->ipc_ci95;
    out.samples = rec->samples;
    if (out.status == "ok") break;
  }
  out.duration_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  return out;
}

}  // namespace

PrewarmStats prewarm_checkpoint_cache(const std::vector<TaskSpec>& tasks,
                                      const SchedulerOptions& options) {
  PrewarmStats stats;
  if (options.ckpt_cache_dir.empty()) return stats;

  // One representative task per distinct (workload, seed, fast_forward):
  // all tasks of a group start timing from the same architectural state.
  struct Group {
    std::string workload;
    u64 seed = 0;
    u64 fast_forward = 0;
  };
  std::vector<Group> groups;
  for (const TaskSpec& t : tasks) {
    if (t.fast_forward == 0) continue;
    const auto same = [&](const Group& g) {
      return g.workload == t.workload && g.seed == t.seed &&
             g.fast_forward == t.fast_forward;
    };
    if (std::none_of(groups.begin(), groups.end(), same))
      groups.push_back({t.workload, t.seed, t.fast_forward});
  }
  stats.groups = groups.size();
  if (groups.empty()) return stats;

  std::mutex m;
  parallel_for(
      groups.size(),
      [&](std::size_t i) {
        const Group& g = groups[i];
        CkptFetch fetch;
        try {
          WorkloadParams params;
          params.seed = g.seed;
          const Workload w = build_workload(g.workload, params);
          fetch = fetch_checkpoint(options.ckpt_cache_dir, g.workload, g.seed,
                                   w.program, g.fast_forward);
        } catch (const std::exception& e) {
          fetch.error = std::string("workload build failed: ") + e.what();
        }
        std::lock_guard<std::mutex> lock(m);
        if (!fetch.ok())
          ++stats.failed;  // workers will hit the same error per-task
        else if (fetch.hit)
          ++stats.reused;
        else
          ++stats.materialised;
        stats.ffwd_sec += fetch.ffwd_sec;
      },
      options.jobs);
  return stats;
}

TaskOutcome run_one_task(const TaskSpec& task, const TaskRunner& runner,
                         const SchedulerOptions& options) {
  if (options.isolate == IsolationMode::kProcess) {
    if (options.worker_cmd.empty()) {
      TaskOutcome out;
      out.attempts = 1;
      out.status = "failed";
      out.error = "process isolation requested but no worker_cmd configured";
      return out;
    }
    return run_one_task_process(task, options);
  }
  TaskOutcome out;
  const auto t0 = Clock::now();
  const unsigned max_attempts = std::max(1u, options.max_attempts);
  for (unsigned attempt = 1; attempt <= max_attempts; ++attempt) {
    out.attempts = attempt;
    bool timed_out = false;
    const AttemptResult r =
        options.timeout_sec > 0
            ? timed_call(runner, task, options.timeout_sec, &timed_out)
            : guarded_call(runner, task);
    if (timed_out) {
      out.status = "timeout";
      out.error = "attempt exceeded " + std::to_string(options.timeout_sec) +
                  "s wall-clock timeout";
      break;
    }
    if (r.error.empty()) {
      out.status = "ok";
      out.error.clear();
      out.stats = r.stats;
      out.interval = r.interval;
      out.series = r.series;
      out.ckpt_cache = r.ckpt_cache;
      out.ffwd_sec = r.ffwd_sec;
      out.sample_intervals = r.sample_intervals;
      out.sample_warmup = r.sample_warmup;
      out.ipc_mean = r.ipc_mean;
      out.ipc_ci95 = r.ipc_ci95;
      out.samples = r.samples;
      break;
    }
    out.status = "failed";
    out.error = r.error;
  }
  out.duration_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  return out;
}

void run_tasks(const std::vector<TaskSpec>& tasks, const TaskRunner& runner,
               const SchedulerOptions& options,
               const std::function<void(std::size_t, const TaskOutcome&)>&
                   on_done) {
  parallel_for(
      tasks.size(),
      [&](std::size_t i) {
        const TaskOutcome out = run_one_task(tasks[i], runner, options);
        on_done(i, out);
      },
      options.jobs);
}

}  // namespace bsp::campaign
