#include "emu/debugger.hpp"

#include <charconv>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

#include "isa/isa.hpp"

namespace bsp {

namespace {

std::vector<std::string> tokenize(const std::string& line) {
  std::istringstream ss(line);
  std::vector<std::string> tokens;
  std::string t;
  while (ss >> t) tokens.push_back(t);
  return tokens;
}

std::optional<u64> parse_number(const std::string& s) {
  int base = 10;
  std::size_t start = 0;
  if (s.size() > 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) {
    base = 16;
    start = 2;
  }
  u64 v = 0;
  const auto [ptr, ec] =
      std::from_chars(s.data() + start, s.data() + s.size(), v, base);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

}  // namespace

Debugger::Debugger(Program program, std::ostream& out)
    : program_(std::move(program)), emu_(program_), out_(out) {}

std::optional<u32> Debugger::resolve(const std::string& token) const {
  if (const auto n = parse_number(token)) return static_cast<u32>(*n);
  if (program_.has_symbol(token)) return program_.symbol(token);
  return std::nullopt;
}

void Debugger::print_instruction(u32 pc) const {
  const u32 raw = emu_.memory().load_u32(pc);
  const auto d = decode(raw);
  out_ << (breakpoint_at(pc) ? "*" : " ") << "0x" << std::hex
       << std::setw(8) << std::setfill('0') << pc << std::dec << ":  "
       << (d ? disassemble(*d, pc) : "<illegal>") << "\n";
}

bool Debugger::step_once() {
  const StepResult r = emu_.step(&last_);
  has_last_ = true;
  if (r.kind == StepResult::Kind::Fault) {
    out_ << "fault: " << r.fault << " (pc 0x" << std::hex << emu_.pc()
         << std::dec << ")\n";
    return false;
  }
  if (emu_.exited()) {
    out_ << "program exited with code " << emu_.exit_code() << "\n";
    return false;
  }
  return true;
}

void Debugger::cmd_step(u64 n) {
  for (u64 i = 0; i < n; ++i) {
    const u32 pc = emu_.pc();
    print_instruction(pc);
    if (!step_once()) return;
  }
}

void Debugger::cmd_run() {
  for (u64 i = 0; i < run_limit_; ++i) {
    if (!step_once()) return;
    if (breakpoints_.count(emu_.pc())) {
      out_ << "breakpoint:\n";
      print_instruction(emu_.pc());
      return;
    }
  }
  out_ << "stopped after " << run_limit_ << " instructions\n";
}

void Debugger::cmd_break(const std::string& where) {
  const auto addr = resolve(where);
  if (!addr) {
    out_ << "unknown address or symbol '" << where << "'\n";
    return;
  }
  if (breakpoints_.erase(*addr)) {
    out_ << "breakpoint removed at 0x" << std::hex << *addr << std::dec
         << "\n";
  } else {
    breakpoints_.insert(*addr);
    out_ << "breakpoint set at 0x" << std::hex << *addr << std::dec << "\n";
  }
}

void Debugger::cmd_disasm(u32 addr, unsigned n) {
  for (unsigned i = 0; i < n; ++i) print_instruction(addr + i * 4);
}

void Debugger::cmd_print(const std::string& what) {
  if (what.empty()) {
    for (unsigned i = 0; i < kNumRegs; ++i) {
      out_ << std::setw(5) << std::setfill(' ') << reg_name(i) << " = 0x"
           << std::hex << std::setw(8) << std::setfill('0') << emu_.reg(i)
           << std::dec << ((i % 4 == 3) ? "\n" : "   ");
    }
    out_ << "   pc = 0x" << std::hex << emu_.pc() << "   hi = 0x"
         << emu_.hi() << "   lo = 0x" << emu_.lo() << std::dec << "\n";
    return;
  }
  const auto r = parse_reg(what);
  if (!r) {
    out_ << "unknown register '" << what << "'\n";
    return;
  }
  out_ << reg_name(*r) << " = 0x" << std::hex << emu_.reg(*r) << std::dec
       << " (" << static_cast<i32>(emu_.reg(*r)) << ")\n";
}

void Debugger::cmd_memory(u32 addr, unsigned n) {
  for (unsigned i = 0; i < n; ++i) {
    const u32 a = addr + i * 4;
    out_ << "0x" << std::hex << std::setw(8) << std::setfill('0') << a
         << ": 0x" << std::setw(8) << emu_.memory().load_u32(a) << std::dec
         << "\n";
  }
}

void Debugger::cmd_trace() {
  if (!has_last_) {
    out_ << "nothing executed yet\n";
    return;
  }
  out_ << "0x" << std::hex << last_.pc << std::dec << ": "
       << disassemble(last_.inst, last_.pc) << "\n";
  if (last_.dest != 0)
    out_ << "  " << reg_name(last_.dest) << " <- 0x" << std::hex
         << last_.dest_value << std::dec << "\n";
  if (last_.is_load)
    out_ << "  loaded 0x" << std::hex << last_.load_value << " from 0x"
         << last_.mem_addr << std::dec << "\n";
  if (last_.is_store)
    out_ << "  stored 0x" << std::hex << last_.store_value << " to 0x"
         << last_.mem_addr << std::dec << "\n";
  if (last_.is_cond_branch)
    out_ << "  branch " << (last_.branch_taken ? "taken" : "not taken")
         << " -> 0x" << std::hex << last_.next_pc << std::dec << "\n";
}

bool Debugger::execute(const std::string& line) {
  const auto tokens = tokenize(line);
  if (tokens.empty()) return true;
  const std::string& cmd = tokens[0];
  const auto arg_num = [&](std::size_t i, u64 fallback) {
    if (tokens.size() <= i) return fallback;
    const auto v = resolve(tokens[i]);
    return v ? u64{*v} : fallback;
  };

  if (cmd == "q" || cmd == "quit") return false;
  if (cmd == "s" || cmd == "step") {
    cmd_step(arg_num(1, 1));
  } else if (cmd == "r" || cmd == "run") {
    cmd_run();
  } else if (cmd == "b" || cmd == "break") {
    if (tokens.size() < 2)
      out_ << "usage: b <addr|symbol>\n";
    else
      cmd_break(tokens[1]);
  } else if (cmd == "d" || cmd == "disasm") {
    cmd_disasm(static_cast<u32>(arg_num(1, emu_.pc())),
               static_cast<unsigned>(arg_num(2, 8)));
  } else if (cmd == "p" || cmd == "print") {
    cmd_print(tokens.size() > 1 ? tokens[1] : "");
  } else if (cmd == "m" || cmd == "mem") {
    if (tokens.size() < 2)
      out_ << "usage: m <addr> [words]\n";
    else
      cmd_memory(static_cast<u32>(arg_num(1, 0)),
                 static_cast<unsigned>(arg_num(2, 4)));
  } else if (cmd == "t" || cmd == "trace") {
    cmd_trace();
  } else if (cmd == "reset") {
    emu_.load(program_);
    has_last_ = false;
    out_ << "reset; pc = 0x" << std::hex << emu_.pc() << std::dec << "\n";
  } else if (cmd == "h" || cmd == "help") {
    out_ << "commands: s [n], r, b <addr|sym>, d [addr] [n], p [$reg], "
            "m <addr> [n], t, reset, q\n";
  } else {
    out_ << "unknown command '" << cmd << "' (h for help)\n";
  }
  return true;
}

void Debugger::repl(std::istream& in, const char* prompt) {
  std::string line;
  for (;;) {
    if (prompt) out_ << prompt << std::flush;
    if (!std::getline(in, line)) return;
    if (!execute(line)) return;
  }
}

}  // namespace bsp
