// Functional (architectural-state) emulator for BSP-32.
//
// Three consumers:
//   * the golden reference the timing core co-simulates against at commit,
//   * the producer of dynamic traces for the characterisation studies
//     (Figures 2, 4, 6),
//   * standalone program execution for tests, examples and workload bring-up.
//
// step() executes exactly one instruction and returns a full ExecRecord of
// its architectural effects, which is also the trace record format.
#pragma once

#include <array>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "asm/program.hpp"
#include "emu/memory.hpp"
#include "isa/isa.hpp"

namespace bsp {

// System calls ($v0 selects; arguments in $a0).
enum Syscall : u32 {
  SYS_PRINT_INT = 1,
  SYS_PRINT_CHAR = 11,
  SYS_EXIT = 10,
};

// Everything one dynamic instruction did. Kept plain so millions of them can
// be buffered cheaply by the trace layer.
struct ExecRecord {
  u32 pc = 0;
  DecodedInst inst;

  u32 src1_value = 0;  // value read for src1() (0 if unused)
  u32 src2_value = 0;

  unsigned dest = 0;   // architectural dest reg (0 = none)
  u32 dest_value = 0;

  bool is_load = false;
  bool is_store = false;
  u32 mem_addr = 0;
  unsigned mem_bytes = 0;
  u32 store_value = 0;  // value written (stores only)
  u32 load_value = 0;   // value read (loads only)

  bool is_cond_branch = false;
  bool branch_taken = false;
  u32 next_pc = 0;      // actual successor PC
};

struct StepResult {
  enum class Kind { Ok, Exited, Fault } kind = Kind::Ok;
  int exit_code = 0;
  std::string fault;  // decode failure / misalignment description

  bool ok() const { return kind == Kind::Ok; }
  bool exited() const { return kind == Kind::Exited; }
};

class Emulator {
 public:
  Emulator() = default;
  explicit Emulator(const Program& program) { load(program); }

  // Resets all state and installs the program image.
  void load(const Program& program);

  // Executes the instruction at pc(); fills `record` (may be null).
  StepResult step(ExecRecord* record = nullptr);

  // Runs until exit/fault or `max_instructions`. Returns instructions run.
  u64 run(u64 max_instructions, StepResult* final_result = nullptr);

  // Fast-forward engine: architecturally identical to run(), several times
  // faster. Executes straight-line runs of predecoded instructions with a
  // single dense dispatch per instruction — no ExecRecord is built, pc and
  // the retirement count live in locals, and instruction fetch goes through
  // a cached text-page pointer. Anything outside the hot integer core
  // (syscalls, FP, instructions outside the predecode window, faults) falls
  // back to one exact step(), so output, exit and fault behaviour — down to
  // the fault string — match a step() loop bit for bit. The timing core's
  // co-simulation keeps calling step() directly; this path is for
  // fast-forwarding billions of instructions before detailed timing.
  u64 run_fast(u64 max_instructions, StepResult* final_result = nullptr);

  u32 pc() const { return pc_; }
  void set_pc(u32 pc) { pc_ = pc; }
  u32 reg(unsigned i) const { return regs_[i]; }
  void set_reg(unsigned i, u32 v) { if (i != 0) regs_[i] = v; }
  u32 hi() const { return hi_; }
  u32 lo() const { return lo_; }
  void set_hi(u32 v) { hi_ = v; }
  void set_lo(u32 v) { lo_ = v; }
  void set_retired(u64 n) { retired_ = n; }

  // Floating-point state: $f0..$f31 as raw single-precision bits, plus the
  // condition flag written by c.eq/lt/le.s and read by bc1f/bc1t.
  u32 fp_reg(unsigned i) const { return fp_regs_[i]; }
  void set_fp_reg(unsigned i, u32 bits) { fp_regs_[i] = bits; }
  bool fcc() const { return fcc_; }
  void set_fcc(bool v) { fcc_ = v; }
  SparseMemory& memory() { return mem_; }
  const SparseMemory& memory() const { return mem_; }

  u64 instructions_retired() const { return retired_; }
  const std::string& output() const { return output_; }
  bool exited() const { return exited_; }
  int exit_code() const { return exit_code_; }

 private:
  StepResult fault(const std::string& why) {
    StepResult r;
    r.kind = StepResult::Kind::Fault;
    r.fault = why;
    return r;
  }

  // Decode cache over the text image, indexed by pc and tagged with the raw
  // word: decode() is pure, so a hit is exact, and a (hypothetical) code
  // write simply misses the tag and re-decodes. Decoding dominated step()
  // before this cache (~25% of whole-simulation profiles).
  struct DecodeSlot {
    u32 raw = 0;
    bool filled = false;
    DecodedInst inst;
  };
  u32 decode_base_ = 0;
  std::vector<DecodeSlot> decode_cache_;

  // Predecoded form run_fast() dispatches on: one dense opcode kind plus the
  // handful of fields its handler needs, with immediates pre-extended and
  // branch/jump targets pre-resolved (a slot's pc is fixed, so its target
  // is too). `raw` tags the slot like DecodeSlot does — a code write misses
  // the tag and re-predecodes, keeping self-modifying code exact.
  enum class FastKind : u8 {
    kUnfilled = 0,
    kStep,  // syscall / FP / anything the fast loop defers to step()
    kNop,
    kAddu, kSubu, kAnd, kOr, kXor, kNor, kSlt, kSltu,
    kAddImm, kSltImm, kSltuImm, kAndImm, kOrImm, kXorImm, kLoadImm,
    kSllImm, kSrlImm, kSraImm, kSllv, kSrlv, kSrav,
    kMult, kMultu, kDiv, kDivu, kMfhi, kMflo,
    kLb, kLbu, kLh, kLhu, kLw, kSb, kSh, kSw,
    kBeq, kBne, kBlez, kBgtz, kBltz, kBgez,
    kJ, kJal, kJr, kJalr,
  };
  struct FastInst {
    u32 raw = 0;
    FastKind kind = FastKind::kUnfilled;
    u8 dest = 0, s1 = 0, s2 = 0;
    u32 imm = 0;  // extended immediate, shift amount, or absolute target pc
  };
  std::vector<FastInst> fast_cache_;

  // Predecodes `raw` at `pc` into `fi`. False when decode() rejects it (the
  // caller falls back to step() for the exact fault).
  bool fill_fast_slot(FastInst& fi, u32 raw, u32 pc);

  std::array<u32, kNumRegs> regs_{};
  std::array<u32, 32> fp_regs_{};
  bool fcc_ = false;
  u32 hi_ = 0, lo_ = 0;
  u32 pc_ = 0;
  SparseMemory mem_;
  u64 retired_ = 0;
  std::string output_;
  bool exited_ = false;
  int exit_code_ = 0;
};

// Evaluates a conditional branch's outcome from its operand values; shared
// with the timing core so both sides use identical semantics.
bool branch_outcome(const DecodedInst& inst, u32 src1, u32 src2);

// Pure ALU result for non-memory, non-control ops (shared with the sliced
// datapath verification tests). `src1`/`src2` follow DecodedInst::src1/src2
// conventions; imm handled internally.
u32 alu_result(const DecodedInst& inst, u32 src1, u32 src2);

// FP datapath results over raw single-precision bits (host IEEE-754).
u32 fp_alu_result(const DecodedInst& inst, u32 fs_bits, u32 ft_bits);
bool fp_compare_result(const DecodedInst& inst, u32 fs_bits, u32 ft_bits);

}  // namespace bsp
