// Scriptable source-level debugger over the functional emulator: the engine
// behind the bsp-dbg tool, structured as a library so the command loop is
// unit-testable. Commands (one per line):
//
//   s [n]          step n instructions (default 1), printing each
//   r              run until a breakpoint, exit, fault, or step limit
//   b <addr|sym>   toggle a breakpoint
//   d [addr] [n]   disassemble n instructions (default: around pc)
//   p [$reg]       print one register, or all when omitted
//   m <addr> [n]   dump n memory words (default 4)
//   t              print the last executed instruction's effects
//   reset          reload the program from scratch
//   q              quit
#pragma once

#include <iosfwd>
#include <set>
#include <string>

#include "asm/program.hpp"
#include "emu/emulator.hpp"

namespace bsp {

class Debugger {
 public:
  Debugger(Program program, std::ostream& out);

  // Executes one command line; returns false when the session should end
  // (`q` or end of input).
  bool execute(const std::string& line);

  // Drives execute() over an input stream until it ends (the tool's main
  // loop). `prompt` is printed before each read when non-null.
  void repl(std::istream& in, const char* prompt = nullptr);

  const Emulator& emulator() const { return emu_; }
  bool breakpoint_at(u32 addr) const { return breakpoints_.count(addr) != 0; }

 private:
  void cmd_step(u64 n);
  void cmd_run();
  void cmd_break(const std::string& where);
  void cmd_disasm(u32 addr, unsigned n);
  void cmd_print(const std::string& what);
  void cmd_memory(u32 addr, unsigned n);
  void cmd_trace();
  void print_instruction(u32 pc) const;
  bool step_once();  // false on exit/fault (already reported)

  // Resolves "0x400010", "1234", or a symbol name; nullopt + message on
  // failure.
  std::optional<u32> resolve(const std::string& token) const;

  Program program_;
  Emulator emu_;
  std::ostream& out_;
  std::set<u32> breakpoints_;
  ExecRecord last_;
  bool has_last_ = false;
  u64 run_limit_ = 10'000'000;  // safety net for `r`
};

}  // namespace bsp
