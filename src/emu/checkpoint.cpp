#include "emu/checkpoint.hpp"

#include <fstream>
#include <istream>
#include <ostream>

namespace bsp {

namespace {

constexpr u32 kMagic = 0x43505342;  // "BSPC"
constexpr u32 kVersion = 2;  // v2 added FP registers + condition flag
constexpr u32 kMaxPages = 1u << 20;

void put_u32(std::ostream& os, u32 v) {
  const char bytes[4] = {
      static_cast<char>(v), static_cast<char>(v >> 8),
      static_cast<char>(v >> 16), static_cast<char>(v >> 24)};
  os.write(bytes, 4);
}

bool get_u32(std::istream& is, u32* v) {
  unsigned char bytes[4];
  if (!is.read(reinterpret_cast<char*>(bytes), 4)) return false;
  *v = u32{bytes[0]} | (u32{bytes[1]} << 8) | (u32{bytes[2]} << 16) |
       (u32{bytes[3]} << 24);
  return true;
}

std::optional<Checkpoint> fail(std::string* error, const char* why) {
  if (error) *error = why;
  return std::nullopt;
}

}  // namespace

Checkpoint capture_checkpoint(const Emulator& emu) {
  Checkpoint c;
  c.pc = emu.pc();
  for (unsigned i = 0; i < kNumRegs; ++i) c.regs[i] = emu.reg(i);
  for (unsigned i = 0; i < 32; ++i) c.fp_regs[i] = emu.fp_reg(i);
  c.fcc = emu.fcc();
  c.hi = emu.hi();
  c.lo = emu.lo();
  c.retired = emu.instructions_retired();
  emu.memory().for_each_page([&](u32 base, const u8* bytes) {
    Checkpoint::Page page;
    page.base = base;
    page.bytes.assign(bytes, bytes + SparseMemory::kPageSize);
    c.pages.push_back(std::move(page));
  });
  return c;
}

void restore_checkpoint(Emulator& emu, const Checkpoint& ckpt) {
  emu.set_pc(ckpt.pc);
  for (unsigned i = 1; i < kNumRegs; ++i) emu.set_reg(i, ckpt.regs[i]);
  for (unsigned i = 0; i < 32; ++i) emu.set_fp_reg(i, ckpt.fp_regs[i]);
  emu.set_fcc(ckpt.fcc);
  emu.set_hi(ckpt.hi);
  emu.set_lo(ckpt.lo);
  emu.set_retired(ckpt.retired);
  for (const auto& page : ckpt.pages)
    emu.memory().write_block(page.base, page.bytes.data(),
                             page.bytes.size());
}

bool save_checkpoint(const Checkpoint& ckpt, std::ostream& os) {
  put_u32(os, kMagic);
  put_u32(os, kVersion);
  put_u32(os, ckpt.pc);
  for (const u32 r : ckpt.regs) put_u32(os, r);
  for (const u32 r : ckpt.fp_regs) put_u32(os, r);
  put_u32(os, ckpt.fcc ? 1 : 0);
  put_u32(os, ckpt.hi);
  put_u32(os, ckpt.lo);
  put_u32(os, static_cast<u32>(ckpt.retired));
  put_u32(os, static_cast<u32>(ckpt.retired >> 32));
  put_u32(os, static_cast<u32>(ckpt.pages.size()));
  for (const auto& page : ckpt.pages) {
    put_u32(os, page.base);
    os.write(reinterpret_cast<const char*>(page.bytes.data()),
             static_cast<std::streamsize>(page.bytes.size()));
  }
  return static_cast<bool>(os);
}

std::optional<Checkpoint> load_checkpoint(std::istream& is,
                                          std::string* error) {
  u32 magic = 0, version = 0;
  if (!get_u32(is, &magic) || magic != kMagic)
    return fail(error, "not a BSPC checkpoint");
  if (!get_u32(is, &version) || version != kVersion)
    return fail(error, "unsupported BSPC version");

  Checkpoint c;
  if (!get_u32(is, &c.pc)) return fail(error, "truncated header");
  for (u32& r : c.regs)
    if (!get_u32(is, &r)) return fail(error, "truncated registers");
  for (u32& r : c.fp_regs)
    if (!get_u32(is, &r)) return fail(error, "truncated FP registers");
  u32 fcc_word = 0;
  if (!get_u32(is, &fcc_word)) return fail(error, "truncated FP flag");
  c.fcc = fcc_word != 0;
  u32 lo32 = 0, hi32 = 0, page_count = 0;
  if (!get_u32(is, &c.hi) || !get_u32(is, &c.lo) || !get_u32(is, &lo32) ||
      !get_u32(is, &hi32) || !get_u32(is, &page_count))
    return fail(error, "truncated header");
  c.retired = (u64{hi32} << 32) | lo32;
  if (page_count > kMaxPages) return fail(error, "implausible page count");

  // Cross-check the declared page count against the bytes actually present
  // before allocating anything: cache files are written by other processes
  // (possibly killed mid-write), so a hostile or torn header must produce a
  // clear error, not a multi-gigabyte allocation followed by a short read.
  if (is.rdbuf()) {
    const std::istream::pos_type here = is.tellg();
    if (here != std::istream::pos_type(-1)) {
      is.seekg(0, std::ios::end);
      const std::istream::pos_type end = is.tellg();
      is.seekg(here);
      if (end != std::istream::pos_type(-1)) {
        const u64 remaining = static_cast<u64>(end - here);
        const u64 needed =
            u64{page_count} * (4 + u64{SparseMemory::kPageSize});
        if (remaining < needed)
          return fail(error, "page count exceeds file size");
      }
    }
  }

  u32 prev_base = 0;
  for (u32 i = 0; i < page_count; ++i) {
    Checkpoint::Page page;
    if (!get_u32(is, &page.base)) return fail(error, "truncated page header");
    if ((page.base & (SparseMemory::kPageSize - 1)) != 0)
      return fail(error, "misaligned page base");
    // capture_checkpoint() emits pages in ascending base order; enforcing it
    // here rejects duplicate/shuffled pages from corrupt files.
    if (i > 0 && page.base <= prev_base)
      return fail(error, "pages not in ascending order");
    prev_base = page.base;
    page.bytes.resize(SparseMemory::kPageSize);
    if (!is.read(reinterpret_cast<char*>(page.bytes.data()),
                 SparseMemory::kPageSize))
      return fail(error, "truncated page data");
    c.pages.push_back(std::move(page));
  }
  return c;
}

bool save_checkpoint_file(const Checkpoint& ckpt, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  return os && save_checkpoint(ckpt, os);
}

std::optional<Checkpoint> load_checkpoint_file(const std::string& path,
                                               std::string* error) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    if (error) *error = "cannot open " + path;
    return std::nullopt;
  }
  return load_checkpoint(is, error);
}

std::optional<Checkpoint> fast_forward(const Program& program,
                                       u64 instructions) {
  Emulator emu(program);
  StepResult final;
  // The superblock interpreter is architecturally identical to a step()
  // loop (tests pin checkpoint byte-equality), so the captured state is the
  // same — just reached several times faster.
  const u64 done = emu.run_fast(instructions, &final);
  if (done < instructions) return std::nullopt;
  return capture_checkpoint(emu);
}

}  // namespace bsp
