// Architectural checkpoints: capture an emulator's complete architectural
// state (pc, registers, HI/LO, every touched memory page) so a long
// fast-forward can be done once and reused — the workflow the paper's
// 1 B-instruction fast-forwards imply. Checkpoints serialise to "BSPC"
// files; the timing core can start directly from one.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "emu/emulator.hpp"

namespace bsp {

struct Checkpoint {
  u32 pc = 0;
  std::array<u32, kNumRegs> regs{};
  std::array<u32, 32> fp_regs{};
  bool fcc = false;
  u32 hi = 0, lo = 0;
  u64 retired = 0;  // instructions executed before the capture
  struct Page {
    u32 base = 0;  // page-aligned address
    std::vector<u8> bytes;
  };
  std::vector<Page> pages;
};

// Captures the emulator's current architectural state.
Checkpoint capture_checkpoint(const Emulator& emu);

// Replaces `emu`'s architectural state (the program image must already be
// loaded; touched pages are overwritten, so capture+restore round-trips).
void restore_checkpoint(Emulator& emu, const Checkpoint& ckpt);

// Serialisation ("BSPC" format, little-endian).
bool save_checkpoint(const Checkpoint& ckpt, std::ostream& os);
std::optional<Checkpoint> load_checkpoint(std::istream& is,
                                          std::string* error = nullptr);
bool save_checkpoint_file(const Checkpoint& ckpt, const std::string& path);
std::optional<Checkpoint> load_checkpoint_file(const std::string& path,
                                               std::string* error = nullptr);

// Convenience: run `program` for `instructions` on a fresh emulator and
// capture the state (nullopt if the program exits or faults first).
std::optional<Checkpoint> fast_forward(const Program& program,
                                       u64 instructions);

}  // namespace bsp
