#include "emu/emulator.hpp"

#include <cassert>
#include <cmath>
#include <cstring>

namespace bsp {

void Emulator::load(const Program& program) {
  regs_.fill(0);
  fp_regs_.fill(0);
  fcc_ = false;
  hi_ = lo_ = 0;
  mem_ = SparseMemory();
  retired_ = 0;
  output_.clear();
  exited_ = false;
  exit_code_ = 0;

  for (std::size_t i = 0; i < program.text.size(); ++i)
    mem_.store_u32(program.text_base + static_cast<u32>(i) * 4,
                   program.text[i]);
  if (!program.data.empty())
    mem_.write_block(program.data_base, program.data.data(),
                     program.data.size());

  pc_ = program.entry;
  regs_[R_SP] = kDefaultStackTop;
  regs_[R_GP] = program.data_base;

  decode_base_ = program.text_base;
  decode_cache_.assign(program.text.size(), DecodeSlot{});
  fast_cache_.assign(program.text.size(), FastInst{});
}

bool branch_outcome(const DecodedInst& inst, u32 src1, u32 src2) {
  switch (inst.op) {
    case Op::BEQ:  return src1 == src2;
    case Op::BNE:  return src1 != src2;
    case Op::BLEZ: return static_cast<i32>(src1) <= 0;
    case Op::BGTZ: return static_cast<i32>(src1) > 0;
    case Op::BLTZ: return static_cast<i32>(src1) < 0;
    case Op::BGEZ: return static_cast<i32>(src1) >= 0;
    case Op::BC1T: return src1 != 0;  // src1 carries the FP condition flag
    case Op::BC1F: return src1 == 0;
    default:
      assert(false && "not a conditional branch");
      return false;
  }
}

namespace {

float as_float(u32 bits) {
  float f;
  std::memcpy(&f, &bits, sizeof f);
  return f;
}

u32 as_bits(float f) {
  u32 bits;
  std::memcpy(&bits, &f, sizeof bits);
  return bits;
}

}  // namespace

u32 fp_alu_result(const DecodedInst& inst, u32 fs_bits, u32 ft_bits) {
  const float a = as_float(fs_bits), b = as_float(ft_bits);
  switch (inst.op) {
    case Op::ADD_S: return as_bits(a + b);
    case Op::SUB_S: return as_bits(a - b);
    case Op::MUL_S: return as_bits(a * b);
    case Op::DIV_S: return as_bits(a / b);
    case Op::SQRT_S: return as_bits(std::sqrt(a));
    case Op::ABS_S: return fs_bits & 0x7fffffffu;
    case Op::NEG_S: return fs_bits ^ 0x80000000u;
    case Op::MOV_S: return fs_bits;
    case Op::CVT_S_W:
      return as_bits(static_cast<float>(static_cast<i32>(fs_bits)));
    case Op::CVT_W_S: {
      // Truncate toward zero; out-of-range saturates to INT_MAX, as MIPS
      // implementations commonly do.
      if (std::isnan(a) || a >= 2147483648.0f)
        return 0x7fffffffu;
      if (a <= -2147483904.0f) return 0x80000000u;
      return static_cast<u32>(static_cast<i32>(a));
    }
    default:
      assert(false && "not an FP ALU op");
      return 0;
  }
}

bool fp_compare_result(const DecodedInst& inst, u32 fs_bits, u32 ft_bits) {
  const float a = as_float(fs_bits), b = as_float(ft_bits);
  switch (inst.op) {
    case Op::C_EQ_S: return a == b;
    case Op::C_LT_S: return a < b;
    case Op::C_LE_S: return a <= b;
    default:
      assert(false && "not an FP compare");
      return false;
  }
}

u32 alu_result(const DecodedInst& inst, u32 src1, u32 src2) {
  const u32 imm = inst.imm_value();
  switch (inst.op) {
    case Op::ADD: case Op::ADDU: return src1 + src2;
    case Op::SUB: case Op::SUBU: return src1 - src2;
    case Op::AND: return src1 & src2;
    case Op::OR:  return src1 | src2;
    case Op::XOR: return src1 ^ src2;
    case Op::NOR: return ~(src1 | src2);
    case Op::SLT: return static_cast<i32>(src1) < static_cast<i32>(src2);
    case Op::SLTU: return src1 < src2 ? 1 : 0;
    case Op::ADDI: case Op::ADDIU: return src1 + imm;
    case Op::SLTI: return static_cast<i32>(src1) < static_cast<i32>(imm);
    case Op::SLTIU: return src1 < imm ? 1 : 0;
    case Op::ANDI: return src1 & imm;
    case Op::ORI:  return src1 | imm;
    case Op::XORI: return src1 ^ imm;
    case Op::LUI:  return imm;
    // Shifts: src2 carries the value (rt), src1 the variable amount (rs).
    case Op::SLL:  return src2 << inst.shamt;
    case Op::SRL:  return src2 >> inst.shamt;
    case Op::SRA:  return static_cast<u32>(static_cast<i32>(src2) >> inst.shamt);
    case Op::SLLV: return src2 << (src1 & 31);
    case Op::SRLV: return src2 >> (src1 & 31);
    case Op::SRAV:
      return static_cast<u32>(static_cast<i32>(src2) >> (src1 & 31));
    default:
      assert(false && "not a simple ALU op");
      return 0;
  }
}

StepResult Emulator::step(ExecRecord* record) {
  if (exited_) {
    StepResult r;
    r.kind = StepResult::Kind::Exited;
    r.exit_code = exit_code_;
    return r;
  }
  if (pc_ % 4 != 0) return fault("misaligned pc");

  const u32 raw = mem_.load_u32(pc_);
  const DecodedInst* dp;
  const u32 slot = (pc_ - decode_base_) / 4;
  std::optional<DecodedInst> decoded_local;
  if (pc_ >= decode_base_ && slot < decode_cache_.size()) {
    DecodeSlot& ds = decode_cache_[slot];
    if (!ds.filled || ds.raw != raw) {
      const auto decoded = decode(raw);
      if (!decoded) return fault("illegal instruction at pc");
      ds.raw = raw;
      ds.filled = true;
      ds.inst = *decoded;
    }
    dp = &ds.inst;
  } else {
    decoded_local = decode(raw);
    if (!decoded_local) return fault("illegal instruction at pc");
    dp = &*decoded_local;
  }
  const DecodedInst& d = *dp;

  ExecRecord rec;
  rec.pc = pc_;
  rec.inst = d;
  rec.src1_value = regs_[d.src1()];
  rec.src2_value = regs_[d.src2()];
  rec.next_pc = pc_ + 4;

  StepResult result;
  u32 dest_value = 0;
  unsigned dest = d.dest();

  switch (d.cls()) {
    case ExecClass::Logic:
    case ExecClass::Add:
    case ExecClass::ShiftLeft:
    case ExecClass::ShiftRight:
    case ExecClass::Compare:
      dest_value = alu_result(d, rec.src1_value, rec.src2_value);
      break;

    case ExecClass::Mul: {
      const u64 product =
          d.op == Op::MULT
              ? static_cast<u64>(static_cast<i64>(static_cast<i32>(rec.src1_value)) *
                                 static_cast<i64>(static_cast<i32>(rec.src2_value)))
              : u64{rec.src1_value} * u64{rec.src2_value};
      lo_ = static_cast<u32>(product);
      hi_ = static_cast<u32>(product >> 32);
      break;
    }
    case ExecClass::Div: {
      const u32 a = rec.src1_value, b = rec.src2_value;
      if (b == 0) {
        lo_ = 0;  // division by zero is defined as 0/0 remainder a
        hi_ = a;
      } else if (d.op == Op::DIV) {
        lo_ = static_cast<u32>(static_cast<i32>(a) / static_cast<i32>(b));
        hi_ = static_cast<u32>(static_cast<i32>(a) % static_cast<i32>(b));
      } else {
        lo_ = a / b;
        hi_ = a % b;
      }
      break;
    }
    case ExecClass::MfHiLo:
      dest_value = d.op == Op::MFHI ? hi_ : lo_;
      break;

    case ExecClass::FpAlu:
    case ExecClass::FpMul:
    case ExecClass::FpDiv:
    case ExecClass::FpSqrt:
      if (d.op == Op::MFC1) {
        rec.src1_value = fp_regs_[d.fs()];
        dest_value = rec.src1_value;  // generic tail writes the GPR
      } else if (d.op == Op::MTC1) {
        rec.src1_value = regs_[d.rt];
        fp_regs_[d.fs()] = rec.src1_value;
        rec.dest = kExtFpBase + d.fs();
        rec.dest_value = rec.src1_value;
      } else {
        rec.src1_value = fp_regs_[d.fs()];
        rec.src2_value = fp_regs_[d.ft()];
        const u32 result = fp_alu_result(d, rec.src1_value, rec.src2_value);
        fp_regs_[d.fd()] = result;
        rec.dest = kExtFpBase + d.fd();
        rec.dest_value = result;
      }
      break;

    case ExecClass::FpCompare:
      rec.src1_value = fp_regs_[d.fs()];
      rec.src2_value = fp_regs_[d.ft()];
      fcc_ = fp_compare_result(d, rec.src1_value, rec.src2_value);
      rec.dest = kExtFcc;
      rec.dest_value = fcc_ ? 1 : 0;
      break;

    case ExecClass::FpBranch:
      rec.src1_value = fcc_ ? 1 : 0;
      rec.is_cond_branch = true;
      rec.branch_taken = branch_outcome(d, rec.src1_value, 0);
      if (rec.branch_taken) rec.next_pc = d.branch_target(pc_);
      break;

    case ExecClass::Load: {
      const u32 addr = rec.src1_value + d.imm_value();
      const unsigned n = d.mem_bytes();
      if (addr % n != 0) return fault("misaligned load");
      u32 v = 0;
      if (n == 1) v = mem_.load_u8(addr);
      else if (n == 2) v = mem_.load_u16(addr);
      else v = mem_.load_u32(addr);
      if (d.mem_sign_extend() && d.op != Op::LWC1) v = sign_extend(v, n * 8);
      if (d.op == Op::LWC1) {
        fp_regs_[d.ft()] = v;
        rec.dest = kExtFpBase + d.ft();
        rec.dest_value = v;
      } else {
        dest_value = v;
      }
      rec.is_load = true;
      rec.mem_addr = addr;
      rec.mem_bytes = n;
      rec.load_value = v;
      break;
    }
    case ExecClass::Store: {
      const u32 addr = rec.src1_value + d.imm_value();
      const unsigned n = d.mem_bytes();
      if (addr % n != 0) return fault("misaligned store");
      if (d.op == Op::SWC1) rec.src2_value = fp_regs_[d.ft()];
      const u32 v = rec.src2_value;
      if (n == 1) mem_.store_u8(addr, static_cast<u8>(v));
      else if (n == 2) mem_.store_u16(addr, static_cast<u16>(v));
      else mem_.store_u32(addr, v);
      rec.is_store = true;
      rec.mem_addr = addr;
      rec.mem_bytes = n;
      rec.store_value = n == 4 ? v : (v & low_mask(n * 8));
      break;
    }

    case ExecClass::BranchEq:
    case ExecClass::BranchSign: {
      rec.is_cond_branch = true;
      rec.branch_taken = branch_outcome(d, rec.src1_value, rec.src2_value);
      if (rec.branch_taken) rec.next_pc = d.branch_target(pc_);
      break;
    }
    case ExecClass::Jump:
      rec.next_pc = d.branch_target(pc_);
      if (d.op == Op::JAL) dest_value = pc_ + 4;
      break;
    case ExecClass::JumpReg:
      rec.next_pc = rec.src1_value;
      if (d.op == Op::JALR) dest_value = pc_ + 4;
      break;

    case ExecClass::Syscall: {
      const u32 code = regs_[R_V0];
      const u32 arg = regs_[R_A0];
      switch (code) {
        case SYS_PRINT_INT:
          output_ += std::to_string(static_cast<i32>(arg));
          break;
        case SYS_PRINT_CHAR:
          output_ += static_cast<char>(arg & 0xff);
          break;
        case SYS_EXIT:
          exited_ = true;
          exit_code_ = static_cast<int>(arg);
          result.kind = StepResult::Kind::Exited;
          result.exit_code = exit_code_;
          break;
        default:
          return fault("unknown syscall " + std::to_string(code));
      }
      break;
    }
  }

  if (dest != 0) {
    regs_[dest] = dest_value;
    rec.dest = dest;
    rec.dest_value = dest_value;
  }
  pc_ = rec.next_pc;
  ++retired_;
  if (record) *record = rec;
  return result;
}

u64 Emulator::run(u64 max_instructions, StepResult* final_result) {
  u64 n = 0;
  StepResult r;
  while (n < max_instructions) {
    r = step();
    if (!r.ok()) break;
    ++n;
  }
  if (final_result) *final_result = r;
  return n;
}

bool Emulator::fill_fast_slot(FastInst& fi, u32 raw, u32 pc) {
  const auto decoded = decode(raw);
  if (!decoded) return false;
  const DecodedInst& d = *decoded;
  fi.raw = raw;
  fi.kind = FastKind::kStep;
  fi.dest = static_cast<u8>(d.dest());
  fi.s1 = static_cast<u8>(d.src1());
  fi.s2 = static_cast<u8>(d.src2());
  fi.imm = d.imm_value();
  switch (d.op) {
    case Op::ADD: case Op::ADDU: fi.kind = FastKind::kAddu; break;
    case Op::SUB: case Op::SUBU: fi.kind = FastKind::kSubu; break;
    case Op::AND: fi.kind = FastKind::kAnd; break;
    case Op::OR:  fi.kind = FastKind::kOr; break;
    case Op::XOR: fi.kind = FastKind::kXor; break;
    case Op::NOR: fi.kind = FastKind::kNor; break;
    case Op::SLT: fi.kind = FastKind::kSlt; break;
    case Op::SLTU: fi.kind = FastKind::kSltu; break;
    case Op::ADDI: case Op::ADDIU: fi.kind = FastKind::kAddImm; break;
    case Op::SLTI: fi.kind = FastKind::kSltImm; break;
    case Op::SLTIU: fi.kind = FastKind::kSltuImm; break;
    case Op::ANDI: fi.kind = FastKind::kAndImm; break;
    case Op::ORI:  fi.kind = FastKind::kOrImm; break;
    case Op::XORI: fi.kind = FastKind::kXorImm; break;
    case Op::LUI:  fi.kind = FastKind::kLoadImm; break;
    case Op::SLL:
      fi.kind = raw == 0 ? FastKind::kNop : FastKind::kSllImm;
      fi.imm = d.shamt;
      break;
    case Op::SRL: fi.kind = FastKind::kSrlImm; fi.imm = d.shamt; break;
    case Op::SRA: fi.kind = FastKind::kSraImm; fi.imm = d.shamt; break;
    case Op::SLLV: fi.kind = FastKind::kSllv; break;
    case Op::SRLV: fi.kind = FastKind::kSrlv; break;
    case Op::SRAV: fi.kind = FastKind::kSrav; break;
    case Op::MULT: fi.kind = FastKind::kMult; break;
    case Op::MULTU: fi.kind = FastKind::kMultu; break;
    case Op::DIV: fi.kind = FastKind::kDiv; break;
    case Op::DIVU: fi.kind = FastKind::kDivu; break;
    case Op::MFHI: fi.kind = FastKind::kMfhi; break;
    case Op::MFLO: fi.kind = FastKind::kMflo; break;
    case Op::LB:  fi.kind = FastKind::kLb; break;
    case Op::LBU: fi.kind = FastKind::kLbu; break;
    case Op::LH:  fi.kind = FastKind::kLh; break;
    case Op::LHU: fi.kind = FastKind::kLhu; break;
    case Op::LW:  fi.kind = FastKind::kLw; break;
    case Op::SB:  fi.kind = FastKind::kSb; break;
    case Op::SH:  fi.kind = FastKind::kSh; break;
    case Op::SW:  fi.kind = FastKind::kSw; break;
    case Op::BEQ:  fi.kind = FastKind::kBeq;  fi.imm = d.branch_target(pc); break;
    case Op::BNE:  fi.kind = FastKind::kBne;  fi.imm = d.branch_target(pc); break;
    case Op::BLEZ: fi.kind = FastKind::kBlez; fi.imm = d.branch_target(pc); break;
    case Op::BGTZ: fi.kind = FastKind::kBgtz; fi.imm = d.branch_target(pc); break;
    case Op::BLTZ: fi.kind = FastKind::kBltz; fi.imm = d.branch_target(pc); break;
    case Op::BGEZ: fi.kind = FastKind::kBgez; fi.imm = d.branch_target(pc); break;
    case Op::J:    fi.kind = FastKind::kJ;    fi.imm = d.branch_target(pc); break;
    case Op::JAL:  fi.kind = FastKind::kJal;  fi.imm = d.branch_target(pc); break;
    case Op::JR:   fi.kind = FastKind::kJr; break;
    case Op::JALR: fi.kind = FastKind::kJalr; break;
    default: break;  // syscall, FP, LWC1/SWC1, ...: kStep
  }
  return true;
}

u64 Emulator::run_fast(u64 max_instructions, StepResult* final_result) {
  StepResult last;
  if (exited_) {
    last.kind = StepResult::Kind::Exited;
    last.exit_code = exit_code_;
    if (final_result) *final_result = last;
    return 0;
  }
  if (fast_cache_.size() != decode_cache_.size())
    fast_cache_.assign(decode_cache_.size(), FastInst{});

  u64 n = 0;
  u32 pc = pc_;
  u64 retired = retired_;
  u32* const regs = regs_.data();
  const u32 base = decode_base_;
  const u32 nslots = static_cast<u32>(fast_cache_.size());
  // Instruction-fetch page cache, separate from SparseMemory's data-access
  // cache. Only non-null pointers may be cached (a store can allocate a
  // page later); a mapped page's storage never moves.
  const u8* ipage = nullptr;
  u32 ipage_base = 1;  // never page-aligned, so the first fetch misses

  while (n < max_instructions) {
    if ((pc & 3u) == 0 && (pc - base) >> 2 < nslots) {
      const u32 page = pc & ~(SparseMemory::kPageSize - 1);
      if (page != ipage_base) {
        ipage = mem_.page_bytes(pc);
        if (ipage) ipage_base = page;
      }
      u32 raw = 0;
      if (ipage && page == ipage_base)
        std::memcpy(&raw, ipage + (pc & (SparseMemory::kPageSize - 1)), 4);
      FastInst& fi = fast_cache_[(pc - base) >> 2];
      if (fi.kind == FastKind::kUnfilled || fi.raw != raw)
        if (!fill_fast_slot(fi, raw, pc)) goto slow_path;
      switch (fi.kind) {
        case FastKind::kNop: pc += 4; break;
        case FastKind::kAddu: regs[fi.dest] = regs[fi.s1] + regs[fi.s2]; regs[0] = 0; pc += 4; break;
        case FastKind::kSubu: regs[fi.dest] = regs[fi.s1] - regs[fi.s2]; regs[0] = 0; pc += 4; break;
        case FastKind::kAnd:  regs[fi.dest] = regs[fi.s1] & regs[fi.s2]; regs[0] = 0; pc += 4; break;
        case FastKind::kOr:   regs[fi.dest] = regs[fi.s1] | regs[fi.s2]; regs[0] = 0; pc += 4; break;
        case FastKind::kXor:  regs[fi.dest] = regs[fi.s1] ^ regs[fi.s2]; regs[0] = 0; pc += 4; break;
        case FastKind::kNor:  regs[fi.dest] = ~(regs[fi.s1] | regs[fi.s2]); regs[0] = 0; pc += 4; break;
        case FastKind::kSlt:
          regs[fi.dest] = static_cast<i32>(regs[fi.s1]) < static_cast<i32>(regs[fi.s2]);
          regs[0] = 0; pc += 4; break;
        case FastKind::kSltu: regs[fi.dest] = regs[fi.s1] < regs[fi.s2] ? 1 : 0; regs[0] = 0; pc += 4; break;
        case FastKind::kAddImm: regs[fi.dest] = regs[fi.s1] + fi.imm; regs[0] = 0; pc += 4; break;
        case FastKind::kSltImm:
          regs[fi.dest] = static_cast<i32>(regs[fi.s1]) < static_cast<i32>(fi.imm);
          regs[0] = 0; pc += 4; break;
        case FastKind::kSltuImm: regs[fi.dest] = regs[fi.s1] < fi.imm ? 1 : 0; regs[0] = 0; pc += 4; break;
        case FastKind::kAndImm: regs[fi.dest] = regs[fi.s1] & fi.imm; regs[0] = 0; pc += 4; break;
        case FastKind::kOrImm:  regs[fi.dest] = regs[fi.s1] | fi.imm; regs[0] = 0; pc += 4; break;
        case FastKind::kXorImm: regs[fi.dest] = regs[fi.s1] ^ fi.imm; regs[0] = 0; pc += 4; break;
        case FastKind::kLoadImm: regs[fi.dest] = fi.imm; regs[0] = 0; pc += 4; break;
        case FastKind::kSllImm: regs[fi.dest] = regs[fi.s2] << fi.imm; regs[0] = 0; pc += 4; break;
        case FastKind::kSrlImm: regs[fi.dest] = regs[fi.s2] >> fi.imm; regs[0] = 0; pc += 4; break;
        case FastKind::kSraImm:
          regs[fi.dest] = static_cast<u32>(static_cast<i32>(regs[fi.s2]) >> fi.imm);
          regs[0] = 0; pc += 4; break;
        case FastKind::kSllv: regs[fi.dest] = regs[fi.s2] << (regs[fi.s1] & 31); regs[0] = 0; pc += 4; break;
        case FastKind::kSrlv: regs[fi.dest] = regs[fi.s2] >> (regs[fi.s1] & 31); regs[0] = 0; pc += 4; break;
        case FastKind::kSrav:
          regs[fi.dest] = static_cast<u32>(static_cast<i32>(regs[fi.s2]) >> (regs[fi.s1] & 31));
          regs[0] = 0; pc += 4; break;
        case FastKind::kMult: {
          const u64 p = static_cast<u64>(
              static_cast<i64>(static_cast<i32>(regs[fi.s1])) *
              static_cast<i64>(static_cast<i32>(regs[fi.s2])));
          lo_ = static_cast<u32>(p);
          hi_ = static_cast<u32>(p >> 32);
          pc += 4; break;
        }
        case FastKind::kMultu: {
          const u64 p = u64{regs[fi.s1]} * u64{regs[fi.s2]};
          lo_ = static_cast<u32>(p);
          hi_ = static_cast<u32>(p >> 32);
          pc += 4; break;
        }
        case FastKind::kDiv: {
          const u32 a = regs[fi.s1], b = regs[fi.s2];
          if (b == 0) {
            lo_ = 0;
            hi_ = a;
          } else {
            lo_ = static_cast<u32>(static_cast<i32>(a) / static_cast<i32>(b));
            hi_ = static_cast<u32>(static_cast<i32>(a) % static_cast<i32>(b));
          }
          pc += 4; break;
        }
        case FastKind::kDivu: {
          const u32 a = regs[fi.s1], b = regs[fi.s2];
          if (b == 0) {
            lo_ = 0;
            hi_ = a;
          } else {
            lo_ = a / b;
            hi_ = a % b;
          }
          pc += 4; break;
        }
        case FastKind::kMfhi: regs[fi.dest] = hi_; regs[0] = 0; pc += 4; break;
        case FastKind::kMflo: regs[fi.dest] = lo_; regs[0] = 0; pc += 4; break;
        case FastKind::kLb: {
          const u32 a = regs[fi.s1] + fi.imm;
          regs[fi.dest] = sign_extend(mem_.load_u8(a), 8);
          regs[0] = 0; pc += 4; break;
        }
        case FastKind::kLbu: {
          const u32 a = regs[fi.s1] + fi.imm;
          regs[fi.dest] = mem_.load_u8(a);
          regs[0] = 0; pc += 4; break;
        }
        case FastKind::kLh: {
          const u32 a = regs[fi.s1] + fi.imm;
          if (a & 1u) goto slow_path;  // exact "misaligned load" fault
          regs[fi.dest] = sign_extend(mem_.load_u16(a), 16);
          regs[0] = 0; pc += 4; break;
        }
        case FastKind::kLhu: {
          const u32 a = regs[fi.s1] + fi.imm;
          if (a & 1u) goto slow_path;
          regs[fi.dest] = mem_.load_u16(a);
          regs[0] = 0; pc += 4; break;
        }
        case FastKind::kLw: {
          const u32 a = regs[fi.s1] + fi.imm;
          if (a & 3u) goto slow_path;
          regs[fi.dest] = mem_.load_u32(a);
          regs[0] = 0; pc += 4; break;
        }
        case FastKind::kSb:
          mem_.store_u8(regs[fi.s1] + fi.imm, static_cast<u8>(regs[fi.s2]));
          pc += 4; break;
        case FastKind::kSh: {
          const u32 a = regs[fi.s1] + fi.imm;
          if (a & 1u) goto slow_path;
          mem_.store_u16(a, static_cast<u16>(regs[fi.s2]));
          pc += 4; break;
        }
        case FastKind::kSw: {
          const u32 a = regs[fi.s1] + fi.imm;
          if (a & 3u) goto slow_path;
          mem_.store_u32(a, regs[fi.s2]);
          pc += 4; break;
        }
        case FastKind::kBeq: pc = regs[fi.s1] == regs[fi.s2] ? fi.imm : pc + 4; break;
        case FastKind::kBne: pc = regs[fi.s1] != regs[fi.s2] ? fi.imm : pc + 4; break;
        case FastKind::kBlez: pc = static_cast<i32>(regs[fi.s1]) <= 0 ? fi.imm : pc + 4; break;
        case FastKind::kBgtz: pc = static_cast<i32>(regs[fi.s1]) > 0 ? fi.imm : pc + 4; break;
        case FastKind::kBltz: pc = static_cast<i32>(regs[fi.s1]) < 0 ? fi.imm : pc + 4; break;
        case FastKind::kBgez: pc = static_cast<i32>(regs[fi.s1]) >= 0 ? fi.imm : pc + 4; break;
        case FastKind::kJ: pc = fi.imm; break;
        case FastKind::kJal: regs[fi.dest] = pc + 4; regs[0] = 0; pc = fi.imm; break;
        case FastKind::kJr: pc = regs[fi.s1]; break;
        case FastKind::kJalr: {
          const u32 target = regs[fi.s1];  // read before a same-reg link write
          regs[fi.dest] = pc + 4;
          regs[0] = 0;
          pc = target;
          break;
        }
        case FastKind::kStep:
        case FastKind::kUnfilled:
          goto slow_path;
      }
      ++retired;
      ++n;
      continue;
    }
  slow_path:
    // Anything the fast loop doesn't handle inline — misaligned or
    // out-of-window pc, syscalls, FP, faults — is one exact step(), which
    // also owns output, exit state and fault strings.
    pc_ = pc;
    retired_ = retired;
    last = step();
    pc = pc_;
    retired = retired_;
    if (!last.ok()) break;
    ++n;
  }
  pc_ = pc;
  retired_ = retired;
  if (final_result) *final_result = last;
  return n;
}

}  // namespace bsp
