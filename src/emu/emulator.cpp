#include "emu/emulator.hpp"

#include <cassert>
#include <cmath>
#include <cstring>

namespace bsp {

void Emulator::load(const Program& program) {
  regs_.fill(0);
  fp_regs_.fill(0);
  fcc_ = false;
  hi_ = lo_ = 0;
  mem_ = SparseMemory();
  retired_ = 0;
  output_.clear();
  exited_ = false;
  exit_code_ = 0;

  for (std::size_t i = 0; i < program.text.size(); ++i)
    mem_.store_u32(program.text_base + static_cast<u32>(i) * 4,
                   program.text[i]);
  if (!program.data.empty())
    mem_.write_block(program.data_base, program.data.data(),
                     program.data.size());

  pc_ = program.entry;
  regs_[R_SP] = kDefaultStackTop;
  regs_[R_GP] = program.data_base;

  decode_base_ = program.text_base;
  decode_cache_.assign(program.text.size(), DecodeSlot{});
}

bool branch_outcome(const DecodedInst& inst, u32 src1, u32 src2) {
  switch (inst.op) {
    case Op::BEQ:  return src1 == src2;
    case Op::BNE:  return src1 != src2;
    case Op::BLEZ: return static_cast<i32>(src1) <= 0;
    case Op::BGTZ: return static_cast<i32>(src1) > 0;
    case Op::BLTZ: return static_cast<i32>(src1) < 0;
    case Op::BGEZ: return static_cast<i32>(src1) >= 0;
    case Op::BC1T: return src1 != 0;  // src1 carries the FP condition flag
    case Op::BC1F: return src1 == 0;
    default:
      assert(false && "not a conditional branch");
      return false;
  }
}

namespace {

float as_float(u32 bits) {
  float f;
  std::memcpy(&f, &bits, sizeof f);
  return f;
}

u32 as_bits(float f) {
  u32 bits;
  std::memcpy(&bits, &f, sizeof bits);
  return bits;
}

}  // namespace

u32 fp_alu_result(const DecodedInst& inst, u32 fs_bits, u32 ft_bits) {
  const float a = as_float(fs_bits), b = as_float(ft_bits);
  switch (inst.op) {
    case Op::ADD_S: return as_bits(a + b);
    case Op::SUB_S: return as_bits(a - b);
    case Op::MUL_S: return as_bits(a * b);
    case Op::DIV_S: return as_bits(a / b);
    case Op::SQRT_S: return as_bits(std::sqrt(a));
    case Op::ABS_S: return fs_bits & 0x7fffffffu;
    case Op::NEG_S: return fs_bits ^ 0x80000000u;
    case Op::MOV_S: return fs_bits;
    case Op::CVT_S_W:
      return as_bits(static_cast<float>(static_cast<i32>(fs_bits)));
    case Op::CVT_W_S: {
      // Truncate toward zero; out-of-range saturates to INT_MAX, as MIPS
      // implementations commonly do.
      if (std::isnan(a) || a >= 2147483648.0f)
        return 0x7fffffffu;
      if (a <= -2147483904.0f) return 0x80000000u;
      return static_cast<u32>(static_cast<i32>(a));
    }
    default:
      assert(false && "not an FP ALU op");
      return 0;
  }
}

bool fp_compare_result(const DecodedInst& inst, u32 fs_bits, u32 ft_bits) {
  const float a = as_float(fs_bits), b = as_float(ft_bits);
  switch (inst.op) {
    case Op::C_EQ_S: return a == b;
    case Op::C_LT_S: return a < b;
    case Op::C_LE_S: return a <= b;
    default:
      assert(false && "not an FP compare");
      return false;
  }
}

u32 alu_result(const DecodedInst& inst, u32 src1, u32 src2) {
  const u32 imm = inst.imm_value();
  switch (inst.op) {
    case Op::ADD: case Op::ADDU: return src1 + src2;
    case Op::SUB: case Op::SUBU: return src1 - src2;
    case Op::AND: return src1 & src2;
    case Op::OR:  return src1 | src2;
    case Op::XOR: return src1 ^ src2;
    case Op::NOR: return ~(src1 | src2);
    case Op::SLT: return static_cast<i32>(src1) < static_cast<i32>(src2);
    case Op::SLTU: return src1 < src2 ? 1 : 0;
    case Op::ADDI: case Op::ADDIU: return src1 + imm;
    case Op::SLTI: return static_cast<i32>(src1) < static_cast<i32>(imm);
    case Op::SLTIU: return src1 < imm ? 1 : 0;
    case Op::ANDI: return src1 & imm;
    case Op::ORI:  return src1 | imm;
    case Op::XORI: return src1 ^ imm;
    case Op::LUI:  return imm;
    // Shifts: src2 carries the value (rt), src1 the variable amount (rs).
    case Op::SLL:  return src2 << inst.shamt;
    case Op::SRL:  return src2 >> inst.shamt;
    case Op::SRA:  return static_cast<u32>(static_cast<i32>(src2) >> inst.shamt);
    case Op::SLLV: return src2 << (src1 & 31);
    case Op::SRLV: return src2 >> (src1 & 31);
    case Op::SRAV:
      return static_cast<u32>(static_cast<i32>(src2) >> (src1 & 31));
    default:
      assert(false && "not a simple ALU op");
      return 0;
  }
}

StepResult Emulator::step(ExecRecord* record) {
  if (exited_) {
    StepResult r;
    r.kind = StepResult::Kind::Exited;
    r.exit_code = exit_code_;
    return r;
  }
  if (pc_ % 4 != 0) return fault("misaligned pc");

  const u32 raw = mem_.load_u32(pc_);
  const DecodedInst* dp;
  const u32 slot = (pc_ - decode_base_) / 4;
  std::optional<DecodedInst> decoded_local;
  if (pc_ >= decode_base_ && slot < decode_cache_.size()) {
    DecodeSlot& ds = decode_cache_[slot];
    if (!ds.filled || ds.raw != raw) {
      const auto decoded = decode(raw);
      if (!decoded) return fault("illegal instruction at pc");
      ds.raw = raw;
      ds.filled = true;
      ds.inst = *decoded;
    }
    dp = &ds.inst;
  } else {
    decoded_local = decode(raw);
    if (!decoded_local) return fault("illegal instruction at pc");
    dp = &*decoded_local;
  }
  const DecodedInst& d = *dp;

  ExecRecord rec;
  rec.pc = pc_;
  rec.inst = d;
  rec.src1_value = regs_[d.src1()];
  rec.src2_value = regs_[d.src2()];
  rec.next_pc = pc_ + 4;

  StepResult result;
  u32 dest_value = 0;
  unsigned dest = d.dest();

  switch (d.cls()) {
    case ExecClass::Logic:
    case ExecClass::Add:
    case ExecClass::ShiftLeft:
    case ExecClass::ShiftRight:
    case ExecClass::Compare:
      dest_value = alu_result(d, rec.src1_value, rec.src2_value);
      break;

    case ExecClass::Mul: {
      const u64 product =
          d.op == Op::MULT
              ? static_cast<u64>(static_cast<i64>(static_cast<i32>(rec.src1_value)) *
                                 static_cast<i64>(static_cast<i32>(rec.src2_value)))
              : u64{rec.src1_value} * u64{rec.src2_value};
      lo_ = static_cast<u32>(product);
      hi_ = static_cast<u32>(product >> 32);
      break;
    }
    case ExecClass::Div: {
      const u32 a = rec.src1_value, b = rec.src2_value;
      if (b == 0) {
        lo_ = 0;  // division by zero is defined as 0/0 remainder a
        hi_ = a;
      } else if (d.op == Op::DIV) {
        lo_ = static_cast<u32>(static_cast<i32>(a) / static_cast<i32>(b));
        hi_ = static_cast<u32>(static_cast<i32>(a) % static_cast<i32>(b));
      } else {
        lo_ = a / b;
        hi_ = a % b;
      }
      break;
    }
    case ExecClass::MfHiLo:
      dest_value = d.op == Op::MFHI ? hi_ : lo_;
      break;

    case ExecClass::FpAlu:
    case ExecClass::FpMul:
    case ExecClass::FpDiv:
    case ExecClass::FpSqrt:
      if (d.op == Op::MFC1) {
        rec.src1_value = fp_regs_[d.fs()];
        dest_value = rec.src1_value;  // generic tail writes the GPR
      } else if (d.op == Op::MTC1) {
        rec.src1_value = regs_[d.rt];
        fp_regs_[d.fs()] = rec.src1_value;
        rec.dest = kExtFpBase + d.fs();
        rec.dest_value = rec.src1_value;
      } else {
        rec.src1_value = fp_regs_[d.fs()];
        rec.src2_value = fp_regs_[d.ft()];
        const u32 result = fp_alu_result(d, rec.src1_value, rec.src2_value);
        fp_regs_[d.fd()] = result;
        rec.dest = kExtFpBase + d.fd();
        rec.dest_value = result;
      }
      break;

    case ExecClass::FpCompare:
      rec.src1_value = fp_regs_[d.fs()];
      rec.src2_value = fp_regs_[d.ft()];
      fcc_ = fp_compare_result(d, rec.src1_value, rec.src2_value);
      rec.dest = kExtFcc;
      rec.dest_value = fcc_ ? 1 : 0;
      break;

    case ExecClass::FpBranch:
      rec.src1_value = fcc_ ? 1 : 0;
      rec.is_cond_branch = true;
      rec.branch_taken = branch_outcome(d, rec.src1_value, 0);
      if (rec.branch_taken) rec.next_pc = d.branch_target(pc_);
      break;

    case ExecClass::Load: {
      const u32 addr = rec.src1_value + d.imm_value();
      const unsigned n = d.mem_bytes();
      if (addr % n != 0) return fault("misaligned load");
      u32 v = 0;
      if (n == 1) v = mem_.load_u8(addr);
      else if (n == 2) v = mem_.load_u16(addr);
      else v = mem_.load_u32(addr);
      if (d.mem_sign_extend() && d.op != Op::LWC1) v = sign_extend(v, n * 8);
      if (d.op == Op::LWC1) {
        fp_regs_[d.ft()] = v;
        rec.dest = kExtFpBase + d.ft();
        rec.dest_value = v;
      } else {
        dest_value = v;
      }
      rec.is_load = true;
      rec.mem_addr = addr;
      rec.mem_bytes = n;
      rec.load_value = v;
      break;
    }
    case ExecClass::Store: {
      const u32 addr = rec.src1_value + d.imm_value();
      const unsigned n = d.mem_bytes();
      if (addr % n != 0) return fault("misaligned store");
      if (d.op == Op::SWC1) rec.src2_value = fp_regs_[d.ft()];
      const u32 v = rec.src2_value;
      if (n == 1) mem_.store_u8(addr, static_cast<u8>(v));
      else if (n == 2) mem_.store_u16(addr, static_cast<u16>(v));
      else mem_.store_u32(addr, v);
      rec.is_store = true;
      rec.mem_addr = addr;
      rec.mem_bytes = n;
      rec.store_value = n == 4 ? v : (v & low_mask(n * 8));
      break;
    }

    case ExecClass::BranchEq:
    case ExecClass::BranchSign: {
      rec.is_cond_branch = true;
      rec.branch_taken = branch_outcome(d, rec.src1_value, rec.src2_value);
      if (rec.branch_taken) rec.next_pc = d.branch_target(pc_);
      break;
    }
    case ExecClass::Jump:
      rec.next_pc = d.branch_target(pc_);
      if (d.op == Op::JAL) dest_value = pc_ + 4;
      break;
    case ExecClass::JumpReg:
      rec.next_pc = rec.src1_value;
      if (d.op == Op::JALR) dest_value = pc_ + 4;
      break;

    case ExecClass::Syscall: {
      const u32 code = regs_[R_V0];
      const u32 arg = regs_[R_A0];
      switch (code) {
        case SYS_PRINT_INT:
          output_ += std::to_string(static_cast<i32>(arg));
          break;
        case SYS_PRINT_CHAR:
          output_ += static_cast<char>(arg & 0xff);
          break;
        case SYS_EXIT:
          exited_ = true;
          exit_code_ = static_cast<int>(arg);
          result.kind = StepResult::Kind::Exited;
          result.exit_code = exit_code_;
          break;
        default:
          return fault("unknown syscall " + std::to_string(code));
      }
      break;
    }
  }

  if (dest != 0) {
    regs_[dest] = dest_value;
    rec.dest = dest;
    rec.dest_value = dest_value;
  }
  pc_ = rec.next_pc;
  ++retired_;
  if (record) *record = rec;
  return result;
}

u64 Emulator::run(u64 max_instructions, StepResult* final_result) {
  u64 n = 0;
  StepResult r;
  while (n < max_instructions) {
    r = step();
    if (!r.ok()) break;
    ++n;
  }
  if (final_result) *final_result = r;
  return n;
}

}  // namespace bsp
