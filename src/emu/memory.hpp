// Sparse byte-addressable memory for the emulated 32-bit address space.
//
// Pages are allocated on first touch so a 4 GB address space costs only what
// the program actually uses. Little-endian, matching the host so data-segment
// images can be copied in directly. Unaligned u16/u32 accesses are supported
// (assembled programs never produce them, but synthetic stress tests do).
#pragma once

#include <algorithm>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

#include "util/bitops.hpp"

namespace bsp {

class SparseMemory {
 public:
  static constexpr unsigned kPageShift = 12;
  static constexpr u32 kPageSize = 1u << kPageShift;

  u8 load_u8(u32 addr) const {
    const Page* p = find_page(addr);
    return p ? p->bytes[offset(addr)] : 0;
  }
  u16 load_u16(u32 addr) const {
    // An aligned u16 never crosses a page (pages are 4-aligned and larger).
    if ((addr & 1) == 0) {
      const Page* p = find_page(addr);
      if (!p) return 0;
      u16 v;
      std::memcpy(&v, &p->bytes[offset(addr)], sizeof v);
      return v;
    }
    return static_cast<u16>(load_u8(addr) | (u16{load_u8(addr + 1)} << 8));
  }
  u32 load_u32(u32 addr) const {
    if ((addr & 3) == 0) {
      const Page* p = find_page(addr);
      if (!p) return 0;
      u32 v;
      std::memcpy(&v, &p->bytes[offset(addr)], sizeof v);
      return v;
    }
    return u32{load_u16(addr)} | (u32{load_u16(addr + 2)} << 16);
  }

  void store_u8(u32 addr, u8 v) { page(addr).bytes[offset(addr)] = v; }
  void store_u16(u32 addr, u16 v) {
    if ((addr & 1) == 0) {
      std::memcpy(&page(addr).bytes[offset(addr)], &v, sizeof v);
      return;
    }
    store_u8(addr, static_cast<u8>(v));
    store_u8(addr + 1, static_cast<u8>(v >> 8));
  }
  void store_u32(u32 addr, u32 v) {
    if ((addr & 3) == 0) {
      std::memcpy(&page(addr).bytes[offset(addr)], &v, sizeof v);
      return;
    }
    store_u16(addr, static_cast<u16>(v));
    store_u16(addr + 2, static_cast<u16>(v >> 16));
  }

  void write_block(u32 addr, const void* src, std::size_t n) {
    const u8* b = static_cast<const u8*>(src);
    for (std::size_t i = 0; i < n; ++i) store_u8(addr + static_cast<u32>(i), b[i]);
  }

  std::size_t pages_allocated() const { return pages_.size(); }

  // Read-only pointer to the allocated page containing `addr` (null when the
  // page was never touched). Page storage is heap-allocated and never moves
  // while this SparseMemory lives, so the pointer stays valid across later
  // loads/stores — the fast-forward interpreter caches it for instruction
  // fetch. A null result must not be cached: a later store can allocate the
  // page.
  const u8* page_bytes(u32 addr) const {
    const Page* p = find_page(addr);
    return p ? p->bytes.data() : nullptr;
  }

  // Visits every allocated page in ascending page-id order (deterministic,
  // for checkpoint serialisation). The callback receives the page's base
  // address and kPageSize bytes.
  template <typename Fn>
  void for_each_page(Fn&& fn) const {
    std::vector<u32> ids;
    ids.reserve(pages_.size());
    for (const auto& [id, page] : pages_) ids.push_back(id);
    std::sort(ids.begin(), ids.end());
    for (const u32 id : ids)
      fn(id << kPageShift, pages_.at(id)->bytes.data());
  }

 private:
  struct Page {
    std::vector<u8> bytes = std::vector<u8>(kPageSize, 0);
  };

  mutable u32 cached_id_ = 0;
  mutable Page* cached_page_ = nullptr;  // null: cache empty

  static u32 page_id(u32 addr) { return addr >> kPageShift; }
  static u32 offset(u32 addr) { return addr & (kPageSize - 1); }

  // One-entry translation cache: page objects are heap-allocated and never
  // freed or moved while the map lives, so a cached pointer stays valid
  // across inserts and rehashes. Accesses cluster heavily (straight-line
  // code, stack traffic), making this hit most of the time.
  const Page* find_page(u32 addr) const {
    const u32 id = page_id(addr);
    if (id == cached_id_ && cached_page_) return cached_page_;
    const auto it = pages_.find(id);
    if (it == pages_.end()) return nullptr;
    cached_id_ = id;
    cached_page_ = it->second.get();
    return cached_page_;
  }
  Page& page(u32 addr) {
    const u32 id = page_id(addr);
    if (id == cached_id_ && cached_page_) return *cached_page_;
    auto& slot = pages_[id];
    if (!slot) slot = std::make_unique<Page>();
    cached_id_ = id;
    cached_page_ = slot.get();
    return *slot;
  }

  std::unordered_map<u32, std::unique_ptr<Page>> pages_;
};

}  // namespace bsp
