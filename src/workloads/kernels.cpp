// Assembly generators for the 11 synthetic SPEC-like kernels.
//
// Shared register conventions across kernels:
//   $s7  outer-loop countdown (iterations)
//   $t9  xorshift32 PRNG state (where the kernel uses one)
//   $gp  data segment base (set by the emulator/loader)
//   $k0/$k1/$at  scratch
// Every kernel ends with the SYS_EXIT syscall so programs terminate cleanly
// when run unbounded.
#include "workloads/kernels.hpp"

#include <sstream>
#include <vector>

#include "util/rng.hpp"

namespace bsp::kernels {

namespace {

// Emits `.word` lines in chunks of eight values.
void emit_words(std::ostringstream& os, const std::vector<u32>& words) {
  for (std::size_t i = 0; i < words.size(); i += 8) {
    os << "  .word ";
    for (std::size_t j = i; j < std::min(i + 8, words.size()); ++j) {
      if (j != i) os << ", ";
      os << "0x" << std::hex << words[j] << std::dec;
    }
    os << "\n";
  }
}

// Standard prologue: countdown in $s7, PRNG seed in $t9.
void prologue(std::ostringstream& os, u64 iterations, u64 seed) {
  os << ".text\n"
     << "main:\n"
     << "  li $s7, " << iterations << "\n"
     << "  li $t9, " << ((seed & 0xffffffffu) | 1u) << "\n";
}

// Standard epilogue: decrement $s7, loop to `loop_label`, then exit. Uses a
// sign-test branch, as compiler-generated countdown loops do — keeping the
// suite's beq/bne share near the paper's 61 % of dynamic branches.
void epilogue(std::ostringstream& os, const std::string& loop_label) {
  os << "  addiu $s7, $s7, -1\n"
     << "  bgtz $s7, " << loop_label << "\n"
     << "  li $v0, 10\n"
     << "  li $a0, 0\n"
     << "  syscall\n";
}

// xorshift32 step on $t9 (uses $at): exercises shift slice chains.
void xorshift(std::ostringstream& os) {
  os << "  sll $at, $t9, 13\n"
     << "  xor $t9, $t9, $at\n"
     << "  srl $at, $t9, 17\n"
     << "  xor $t9, $t9, $at\n"
     << "  sll $at, $t9, 5\n"
     << "  xor $t9, $t9, $at\n";
}

}  // namespace

// ---------------------------------------------------------------------------
// bzip: block compression. Sequential byte scan over a random block with a
// run-length comparison against the previous byte and a 256-entry frequency
// table update (load-modify-store chains). Cache-friendly, branchy but
// mostly predictable.
// ---------------------------------------------------------------------------
std::string bzip(const WorkloadParams& p) {
  constexpr u32 kBlockBytes = 32 * 1024;
  Rng rng(p.seed ^ 0xb21b);
  std::vector<u32> block(kBlockBytes / 4);
  for (auto& w : block) {
    // Skewed byte distribution so runs occur, as in compressible data.
    u32 v = 0;
    for (int b = 0; b < 4; ++b) {
      const u32 byte = rng.chance(1, 3) ? 0x41 : (rng.next() & 0x3f);
      v |= byte << (b * 8);
    }
    w = v;
  }

  std::ostringstream os;
  prologue(os, p.iterations, p.seed);
  os << "  la $s0, block\n"
     << "  la $s1, counts\n"
     << "  li $s2, " << kBlockBytes << "\n"
     << "outer:\n"
     << "  move $t0, $0\n"          // position
     << "  move $t1, $0\n"          // previous byte
     << "  move $t2, $0\n"          // run length
     << "scan:\n"
     << "  addu $t3, $s0, $t0\n"
     << "  lbu $t4, 0($t3)\n"       // current byte
     << "  sll $t5, $t4, 2\n"
     << "  addu $t5, $s1, $t5\n"
     << "  lw $t6, 0($t5)\n"        // counts[byte]++
     << "  addiu $t6, $t6, 1\n"
     << "  sw $t6, 0($t5)\n"
     << "  bne $t4, $t1, newrun\n"  // run continues?
     << "  addiu $t2, $t2, 1\n"
     << "  b cont\n"
     << "newrun:\n"
     << "  move $t1, $t4\n"
     << "  move $t2, $0\n"
     << "cont:\n"
     << "  addiu $t0, $t0, 1\n"
     << "  bne $t0, $s2, scan\n";
  epilogue(os, "outer");
  os << ".data\n"
     << "block:\n";
  emit_words(os, block);
  os << "counts:\n  .space 1024\n";
  return os.str();
}

// ---------------------------------------------------------------------------
// gcc: pointer-chasing tree walk with data-dependent branches. A binary
// search tree of 8192 16-byte nodes (128 KB: spills L1, lives in L2), probed
// with pseudo-random keys; each step is a load -> compare -> branch chain.
// ---------------------------------------------------------------------------
std::string gcc(const WorkloadParams& p) {
  constexpr u32 kNodes = 8192;
  constexpr u32 kNodeBytes = 16;  // {key, left, right, pad}
  const u32 tree_base = kDefaultDataBase;

  // Build a random-shaped BST in host memory, then emit it as words.
  Rng rng(p.seed ^ 0x9cc);
  struct Node { u32 key = 0; int left = -1; int right = -1; };
  std::vector<Node> nodes(kNodes);
  for (auto& n : nodes) n.key = rng.next();
  int root = 0;
  for (u32 i = 1; i < kNodes; ++i) {
    int cur = root;
    for (;;) {
      int& next = nodes[i].key < nodes[cur].key ? nodes[cur].left
                                                : nodes[cur].right;
      if (next < 0) {
        next = static_cast<int>(i);
        break;
      }
      cur = next;
    }
  }
  const auto addr_of = [&](int idx) -> u32 {
    return idx < 0 ? 0 : tree_base + static_cast<u32>(idx) * kNodeBytes;
  };
  std::vector<u32> words;
  words.reserve(kNodes * 4);
  for (const auto& n : nodes) {
    words.push_back(n.key);
    words.push_back(addr_of(n.left));
    words.push_back(addr_of(n.right));
    words.push_back(0);
  }

  std::ostringstream os;
  prologue(os, p.iterations, p.seed);
  os << "  la $s0, tree\n"
     << "  la $s1, spill\n"      // compiler-style spill area
     << "  move $s2, $0\n"       // spill cursor (wraps within 256 B)
     << "  move $s3, $0\n"       // previously probed key
     << "outer:\n";
  xorshift(os);
  // Probe keys are temporally correlated (3/4 repeat the previous probe),
  // as compiler symbol lookups are; repeated paths keep the walk branches
  // near Table 1's 90 % accuracy.
  os << "  andi $at, $t9, 0x3\n"
     << "  beq $at, $0, fresh\n"
     << "  move $t1, $s3\n"
     << "  b probe_ready\n"
     << "fresh:\n"
     << "  move $t1, $t9\n"
     << "probe_ready:\n"
     << "  move $s3, $t1\n"
     << "  move $t0, $s0\n"      // cursor = root (node 0)
     << "walk:\n"
     << "  lw $t2, 0($t0)\n"     // node.key
     << "  sw $t1, 12($t0)\n"    // annotate the node with the probe key
     << "  addu $t4, $s1, $s2\n" // spill the cursor (store...)
     << "  sw $t0, 0($t4)\n"
     << "  addiu $s2, $s2, 4\n"
     << "  andi $s2, $s2, 0xfc\n"
     << "  subu $t3, $t1, $t2\n" // signed key compare, as gcc emits
     << "  bltz $t3, left\n"
     << "  lw $t0, 8($t0)\n"     // right child
     << "  b check\n"
     << "left:\n"
     << "  lw $t0, 4($t0)\n"     // left child
     << "check:\n"
     << "  bne $t0, $0, walk\n"
     // Leaf: reload the last spilled cursor (store-to-load forwarding) and
     // annotate that node's pad word.
     << "  addiu $t5, $s2, -4\n"
     << "  andi $t5, $t5, 0xfc\n"
     << "  addu $t5, $s1, $t5\n"
     << "  lw $t6, 0($t5)\n"
     << "  sw $t9, 12($t6)\n";
  epilogue(os, "outer");
  os << ".data\n"
     << "tree:\n";
  emit_words(os, words);
  os << "spill:\n  .space 256\n";
  return os.str();
}

// ---------------------------------------------------------------------------
// go: board evaluation with pattern-random control flow. Two genuinely
// unpredictable branches per iteration mixed with predictable bookkeeping
// lands the prediction accuracy near the paper's 84 %.
// ---------------------------------------------------------------------------
std::string go(const WorkloadParams& p) {
  std::ostringstream os;
  prologue(os, p.iterations, p.seed);
  os << "  la $s0, board\n"
     << "  move $s1, $0\n"       // score
     << "outer:\n";
  xorshift(os);
  os << "  andi $t0, $t9, 0x3fc\n"   // random board cell (word aligned)
     << "  addu $t1, $s0, $t0\n"
     << "  lw $t2, 0($t1)\n"
     // Pattern branches: taken with p = 1/4 and 3/4 (biased but noisy, like
     // board pattern matches). Bias, not history memorisation, carries the
     // predictability, so trace and timing models agree.
     << "  andi $t3, $t9, 0x3\n"
     << "  beq $t3, $0, skip1\n"      // taken 1/4 of the time
     << "  addu $s1, $s1, $t2\n"
     << "  addiu $t2, $t2, 3\n"
     << "skip1:\n"
     << "  srl $t4, $t9, 9\n"         // pattern branch #2: a flag test, as
     << "  andi $t4, $t4, 0x3\n"      // in the paper's Figure 5 idiom
     << "  bne $t4, $0, skip2\n"      // taken 3/4 of the time
     << "  subu $s1, $s1, $t2\n"
     << "  sw $t2, 0($t1)\n"
     << "skip2:\n"
     << "  addiu $s1, $s1, 1\n"      // predictable bookkeeping
     << "  slt $t5, $s1, $0\n"
     << "  beq $t5, $0, skip3\n"     // almost never taken
     << "  move $s1, $0\n"
     << "skip3:\n";
  epilogue(os, "outer");
  os << ".data\nboard:\n  .space 1024\n";
  return os.str();
}

// ---------------------------------------------------------------------------
// gzip: LZ-style window matching. A rolling 2-byte hash indexes a chain-head
// table; candidate positions are compared byte by byte (the inner match loop
// is the data-dependent part).
// ---------------------------------------------------------------------------
std::string gzip(const WorkloadParams& p) {
  constexpr u32 kWindowBytes = 16 * 1024;
  Rng rng(p.seed ^ 0x621b);
  std::vector<u32> window(kWindowBytes / 4);
  for (auto& w : window) {
    u32 v = 0;
    for (int b = 0; b < 4; ++b)
      v |= (0x61 + (rng.next() & 0x7)) << (b * 8);  // 8-symbol alphabet
    w = v;
  }

  std::ostringstream os;
  prologue(os, p.iterations, p.seed);
  os << "  la $s0, window\n"
     << "  la $s1, heads\n"
     << "  li $s2, " << (kWindowBytes - 64) << "\n"
     << "  move $s3, $0\n"             // position
     << "outer:\n"
     << "  addu $t0, $s0, $s3\n"
     << "  lbu $t1, 0($t0)\n"          // rolling hash of 2 bytes
     << "  lbu $t2, 1($t0)\n"
     << "  sll $t1, $t1, 5\n"
     << "  xor $t1, $t1, $t2\n"
     << "  andi $t1, $t1, 0x3fc\n"
     << "  addu $t3, $s1, $t1\n"
     << "  lw $t4, 0($t3)\n"           // candidate position
     << "  sw $s3, 0($t3)\n"           // update chain head
     << "  addu $t5, $s0, $t4\n"
     << "  move $t6, $0\n"             // match length
     << "match:\n"
     << "  addu $at, $t0, $t6\n"
     << "  lbu $k0, 0($at)\n"
     << "  addu $at, $t5, $t6\n"
     << "  lbu $k1, 0($at)\n"
     << "  bne $k0, $k1, done\n"
     << "  addiu $t6, $t6, 1\n"
     << "  addiu $at, $t6, -8\n"
     << "  bltz $at, match\n"         // match length < 8 (sign test)
     << "done:\n"
     << "  addiu $s3, $s3, 1\n"
     << "  sltu $at, $s3, $s2\n"
     << "  bne $at, $0, noreset\n"
     << "  move $s3, $0\n"
     << "noreset:\n";
  epilogue(os, "outer");
  os << ".data\n"
     << "window:\n";
  emit_words(os, window);
  os << "heads:\n  .space 4096\n";
  return os.str();
}

// ---------------------------------------------------------------------------
// ijpeg: integer DCT-like butterflies. Long add/sub/shift dependence chains
// over sequential 8-word rows; very few data-dependent branches.
// ---------------------------------------------------------------------------
std::string ijpeg(const WorkloadParams& p) {
  // 16 KB: comfortably L1-resident — ijpeg is the suite's compute-bound,
  // cache-friendly member.
  constexpr u32 kImageBytes = 16 * 1024;
  Rng rng(p.seed ^ 0x1395);
  std::vector<u32> image(kImageBytes / 4);
  for (auto& w : image) w = rng.next() & 0x00ff00ff;  // pixel-ish samples
  std::ostringstream os;
  prologue(os, p.iterations, p.seed);
  os << "  la $s0, image\n"
     << "  li $s2, " << kImageBytes << "\n"
     << "outer:\n"
     << "  move $s3, $0\n"
     << "row:\n"
     << "  addu $t0, $s0, $s3\n"
     << "  lw $t1, 0($t0)\n"
     << "  lw $t2, 4($t0)\n"
     << "  lw $t3, 8($t0)\n"
     << "  lw $t4, 12($t0)\n"
     // stage 1 butterflies
     << "  addu $t5, $t1, $t4\n"
     << "  subu $t6, $t1, $t4\n"
     << "  addu $t7, $t2, $t3\n"
     << "  subu $t8, $t2, $t3\n"
     // stage 2 with scaling shifts (exercises slice carry + shift chains)
     << "  addu $t1, $t5, $t7\n"
     << "  subu $t2, $t5, $t7\n"
     << "  sll $t3, $t8, 1\n"
     << "  addu $t3, $t3, $t6\n"
     << "  sra $t4, $t6, 2\n"
     << "  subu $t4, $t4, $t8\n"
     // stage 3: normalise, with a rarely-taken saturation check on the
     // accumulating coefficient (keeps branch accuracy near Table 1's 93 %)
     << "  sra $t1, $t1, 1\n"
     << "  sra $t2, $t2, 1\n"
     << "  andi $t7, $t1, 0x7\n"
     << "  bne $t7, $0, nosat\n"
     << "  sra $t1, $t1, 1\n"
     << "nosat:\n"
     << "  sw $t1, 0($t0)\n"
     << "  sw $t2, 4($t0)\n"
     << "  sw $t3, 8($t0)\n"
     << "  sw $t4, 12($t0)\n"
     << "  addiu $s3, $s3, 16\n"
     << "  bne $s3, $s2, row\n";
  epilogue(os, "outer");
  os << ".data\nimage:\n";
  emit_words(os, image);
  return os.str();
}

// ---------------------------------------------------------------------------
// li: the lisp interpreter's cons-cell mark loop — the paper's Figure 5
// idiom, byte-exact: `lbu $3,1($16); andi $2,$3,0x0001; bne $2,$0,...`.
// Nodes carry a flag byte that the kernel tests, marks, and periodically
// clears, so the flag-test branch stays partially unpredictable.
// ---------------------------------------------------------------------------
std::string li(const WorkloadParams& p) {
  constexpr u32 kNodes = 4096;
  constexpr u32 kNodeBytes = 8;  // {next, flags}
  const u32 base = kDefaultDataBase;
  Rng rng(p.seed ^ 0x11);

  // Random list threading + pre-seeded flags (mostly clear).
  std::vector<u32> order(kNodes);
  for (u32 i = 0; i < kNodes; ++i) order[i] = i;
  for (u32 i = kNodes - 1; i > 0; --i)
    std::swap(order[i], order[rng.below(i + 1)]);
  std::vector<u32> words(kNodes * 2, 0);
  for (u32 i = 0; i < kNodes; ++i) {
    const u32 next = i + 1 < kNodes ? base + order[i + 1] * kNodeBytes : 0;
    words[order[i] * 2] = next;
    words[order[i] * 2 + 1] = rng.chance(1, 8) ? 1 : 0;  // MARK bit
  }

  std::ostringstream os;
  prologue(os, p.iterations, p.seed);
  os << "  li $s0, " << (base + order[0] * kNodeBytes) << "\n"
     << "outer:\n"
     << "  move $16, $s0\n"            // $16 = list cursor, as in Figure 5
     << "mark_loop:\n"
     << "  lbu $3, 4($16)\n"           // node flag byte
     << "  andi $2, $3, 0x0001\n"
     << "  bne $2, $0, marked\n"       // Figure 5's mispredicting branch
     << "  ori $3, $3, 1\n"            // this->n_flags |= MARK
     << "  sb $3, 4($16)\n"
     << "  b next_node\n"
     << "marked:\n";
  xorshift(os);
  os << "  andi $at, $t9, 0x3\n"       // occasionally clear the mark:
     << "  bne $at, $0, next_node\n"   // another low-bit flag test
     << "  sb $0, 4($16)\n"
     << "next_node:\n"
     << "  lw $16, 0($16)\n"
     << "  bne $16, $0, mark_loop\n";
  epilogue(os, "outer");
  os << ".data\nnodes:\n";
  emit_words(os, words);
  return os.str();
}

// ---------------------------------------------------------------------------
// mcf: network-simplex surrogate — dependent loads scattered across a 1 MB
// arc array (far beyond L1 and most of L2's reach), with highly predictable
// control (the paper reports 98 % accuracy and the suite's lowest IPC).
// ---------------------------------------------------------------------------
std::string mcf(const WorkloadParams& p) {
  // 2 MB: strictly larger than the whole hierarchy (L2 is 1 MB), so the
  // kernel reaches its memory-bound steady state immediately — the real
  // mcf's working set dwarfs the caches, giving the suite's lowest IPC.
  constexpr u32 kRegionBytes = 2 * 1024 * 1024;
  std::ostringstream os;
  prologue(os, p.iterations, p.seed);
  os << "  la $s0, arcs\n"
     << "  move $s1, $0\n"             // cost accumulator
     << "outer:\n";
  xorshift(os);
  os << "  andi $t0, $t9, 0x1f\n"      // tiny predictable branch (31/32)
     << "  beq $t0, $0, rare\n"
     << "  b pick\n"
     << "rare:\n"
     << "  addiu $s1, $s1, 7\n"
     << "pick:\n"
     // random word-aligned offset in [0, 2 MB): keep 21 bits, clear low 2
     << "  sll $t1, $t9, 11\n"
     << "  srl $t1, $t1, 13\n"
     << "  sll $t1, $t1, 2\n"
     << "  addu $t3, $s0, $t1\n"
     << "  lw $t4, 0($t3)\n"           // first (missing) load
     << "  addu $s1, $s1, $t4\n"
     << "  xor $t5, $t4, $t9\n"        // dependent second address
     << "  sll $t5, $t5, 11\n"
     << "  srl $t5, $t5, 13\n"
     << "  sll $t5, $t5, 2\n"
     << "  addu $t6, $s0, $t5\n"
     << "  lw $t7, 0($t6)\n"           // dependent load
     << "  addu $s1, $s1, $t7\n"
     << "  sw $s1, 0($t3)\n";
  epilogue(os, "outer");
  os << ".data\narcs:\n  .space " << kRegionBytes << "\n";
  return os.str();
}

// ---------------------------------------------------------------------------
// parser: dictionary hash probes. A bucket table indexes short collision
// chains of {hash, next} nodes; the chain-walk compare branch is data
// dependent.
// ---------------------------------------------------------------------------
std::string parser(const WorkloadParams& p) {
  constexpr u32 kBuckets = 1024;
  constexpr u32 kChainNodes = 4096;
  const u32 base = kDefaultDataBase;  // buckets first, then nodes
  const u32 nodes_base = base + kBuckets * 4;
  Rng rng(p.seed ^ 0xbeef);

  // Chains: distribute nodes over buckets.
  std::vector<u32> bucket_head(kBuckets, 0);
  std::vector<u32> node_words(kChainNodes * 2, 0);
  for (u32 i = 0; i < kChainNodes; ++i) {
    const u32 b = rng.below(kBuckets);
    node_words[i * 2] = rng.next();                 // stored hash value
    node_words[i * 2 + 1] = bucket_head[b];         // next
    bucket_head[b] = nodes_base + i * 8;
  }

  std::ostringstream os;
  prologue(os, p.iterations, p.seed);
  os << "  la $s0, buckets\n"
     << "  la $s2, results\n"
     << "outer:\n";
  xorshift(os);
  os << "  andi $t0, $t9, " << ((kBuckets - 1) * 4) << "\n"
     << "  addu $t1, $s0, $t0\n"
     << "  lw $t2, 0($t1)\n"           // chain head
     << "probe:\n"
     << "  beq $t2, $0, miss\n"
     << "  lw $t3, 0($t2)\n"           // node hash
     << "  beq $t3, $t9, hit\n"        // (almost never equal: full scan)
     << "  lw $t2, 4($t2)\n"           // next
     << "  b probe\n"
     << "hit:\n"
     << "  addiu $s1, $s1, 1\n"
     << "miss:\n"
     // memoise the lookup result, then consult it (store-to-load traffic
     // like the real parser's per-word caches)
     << "  addu $t5, $s2, $t0\n"
     << "  sw $t9, 0($t5)\n"
     << "  lw $t6, 0($t5)\n"
     << "  addu $s1, $s1, $t6\n";
  epilogue(os, "outer");
  os << ".data\nbuckets:\n";
  emit_words(os, bucket_head);
  os << "chain_nodes:\n";
  emit_words(os, node_words);
  os << "results:\n  .space " << (kBuckets * 4) << "\n";
  return os.str();
}

// ---------------------------------------------------------------------------
// twolf: placement/annealing surrogate — random small-record updates
// (load two fields, integer math, compare, store back) over a 128 KB array.
// ---------------------------------------------------------------------------
std::string twolf(const WorkloadParams& p) {
  constexpr u32 kRecords = 8192;  // 16 B each -> 128 KB
  std::ostringstream os;
  prologue(os, p.iterations, p.seed);
  os << "  la $s0, cells\n"
     << "  move $s1, $0\n"
     << "outer:\n";
  xorshift(os);
  os << "  andi $t0, $t9, " << (kRecords - 1) << "\n"
     << "  sll $t0, $t0, 4\n"          // 16-byte records
     << "  addu $t1, $s0, $t0\n"
     << "  lw $t2, 0($t1)\n"           // cost
     << "  lw $t3, 4($t1)\n"           // penalty
     << "  sll $t4, $t3, 1\n"
     << "  addu $t5, $t2, $t4\n"
     << "  xor $t6, $t5, $t9\n"        // anneal: accept unless cost and
     << "  andi $t6, $t6, 0x7\n"       // temperature bits align (~1/8)
     << "  addiu $t6, $t6, -1\n"
     << "  bltz $t6, reject\n"
     << "  sw $t5, 0($t1)\n"
     << "  andi $t8, $t5, 0x7\n"       // flag test on the new cost bits
     << "  bne $t8, $0, odd_cost\n"
     << "  addiu $s1, $s1, -3\n"
     << "odd_cost:\n"
     << "  b cont\n"
     << "reject:\n"
     << "  addiu $s1, $s1, 5\n"
     << "cont:\n"
     << "  sw $s1, 8($t1)\n";
  epilogue(os, "outer");
  os << ".data\ncells:\n";
  Rng rng(p.seed ^ 0x201f);
  std::vector<u32> cells(kRecords * 4);
  for (auto& w : cells) w = rng.next() & 0xffff;  // small positive costs
  emit_words(os, cells);
  return os.str();
}

// ---------------------------------------------------------------------------
// vortex: OO-database record access — the paper's Figure 9 code segment
// (sll / lui / addu / lw address chain) plus store-then-reload field updates
// that exercise store-to-load forwarding in the LSQ.
// ---------------------------------------------------------------------------
std::string vortex(const WorkloadParams& p) {
  constexpr u32 kRecords = 2048;  // 32 B records -> 64 KB (straddles L1)
  const u32 base = kDefaultDataBase;
  const u32 records_base = base + kRecords * 8;  // past the pointer table
  Rng rng(p.seed ^ 0xf0f);
  std::vector<u32> table(kRecords);
  for (u32 i = 0; i < kRecords; ++i)
    table[i] = records_base + rng.below(kRecords) * 32;

  std::ostringstream os;
  prologue(os, p.iterations, p.seed);
  os << "outer:\n";
  xorshift(os);
  os << "  andi $17, $t9, " << (kRecords - 1) << "\n"
     // Figure 9's address generation chain, verbatim shape:
     << "  sll $16, $17, 3\n"
     << "  lui $2, %hi(rectable)\n"
     << "  addu $2, $2, $16\n"
     << "  lw $2, %lo(rectable)($2)\n"  // record pointer
     << "  lw $t0, 0($2)\n"             // field A
     << "  lw $t1, 4($2)\n"             // field B
     << "  addu $t2, $t0, $t1\n"
     << "  sw $t2, 8($2)\n"             // write field C...
     << "  lw $t3, 8($2)\n"             // ...and read it right back (forward)
     << "  andi $t4, $t3, 0x7\n"        // attribute flag test on the field
     << "  bne $t4, $0, store_back\n"   // just forwarded (1/8 special)
     << "special:\n"
     << "  subu $t3, $0, $t3\n"
     << "store_back:\n"
     << "  sw $t3, 12($2)\n";
  epilogue(os, "outer");
  os << ".data\n"
     << "rectable:\n";
  // Note: the sll-by-3 chain indexes 8-byte strides; keep the table dense.
  std::vector<u32> dense(kRecords * 2);
  for (u32 i = 0; i < kRecords; ++i) {
    dense[i * 2] = table[i];
    dense[i * 2 + 1] = table[(i + 1) % kRecords];
  }
  emit_words(os, dense);
  os << "records:\n";
  std::vector<u32> record_words(kRecords * 8);
  for (auto& w : record_words) w = rng.next() & 0x7fff;
  emit_words(os, record_words);
  return os.str();
}

// ---------------------------------------------------------------------------
// vpr: routing surrogate — a random walk over a 256x256 cost grid with
// bounds-check branches that are rarely taken (96 % accuracy).
// ---------------------------------------------------------------------------
std::string vpr(const WorkloadParams& p) {
  constexpr u32 kDim = 256;
  std::ostringstream os;
  prologue(os, p.iterations, p.seed);
  os << "  la $s0, grid\n"
     << "  li $s1, 128\n"              // x
     << "  li $s2, 128\n"              // y
     << "  move $s3, $0\n"             // accumulated cost
     << "outer:\n";
  xorshift(os);
  // Routing sweeps are directional: the walker turns vertically only 1/16
  // of the time, keeping the direction branch (and the suite's 96 %
  // accuracy target) predictable.
  os << "  andi $t0, $t9, 0xf\n"
     << "  addiu $t1, $t0, -14\n"
     << "  bgez $t1, vertical\n"       // vertical turn 1/8 of steps
     << "  andi $t2, $t0, 0x1\n"
     << "  sll $t2, $t2, 1\n"
     << "  addiu $t2, $t2, -1\n"       // -1 or +1
     << "  addu $s1, $s1, $t2\n"
     << "  b clamp\n"
     << "vertical:\n"
     << "  andi $t2, $t0, 0x1\n"
     << "  sll $t2, $t2, 1\n"
     << "  addiu $t2, $t2, -1\n"       // -1 or +1
     << "  addu $s2, $s2, $t2\n"
     << "clamp:\n"
     << "  andi $s1, $s1, " << (kDim - 1) << "\n"
     << "  andi $s2, $s2, " << (kDim - 1) << "\n"
     << "  sll $t3, $s2, 8\n"
     << "  addu $t3, $t3, $s1\n"
     << "  sll $t3, $t3, 2\n"
     << "  addu $t4, $s0, $t3\n"
     << "  lw $t5, 0($t4)\n"           // cell cost
     << "  addiu $t7, $t5, 1\n"        // congestion update (store per step)
     << "  sw $t7, 0($t4)\n"
     << "  addu $s3, $s3, $t5\n"
     << "  addiu $s3, $s3, 9\n"        // wire cost of the step itself
     << "  slti $t6, $s3, 0x4000\n"    // rarely-taken overflow check
     << "  bne $t6, $0, nofold\n"
     << "  sra $s3, $s3, 4\n"
     << "  sw $s3, 0($t4)\n"
     << "nofold:\n";
  epilogue(os, "outer");
  os << ".data\ngrid:\n  .space " << (kDim * kDim * 4) << "\n";
  return os.str();
}

}  // namespace bsp::kernels
