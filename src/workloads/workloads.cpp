#include "workloads/workloads.hpp"

#include <functional>
#include <map>
#include <stdexcept>

#include "asm/assembler.hpp"
#include "workloads/kernels.hpp"

namespace bsp {

namespace {

struct KernelDef {
  std::function<std::string(const WorkloadParams&)> generate;
  const char* description;
  double paper_branch_accuracy;  // <0: lost in the archival copy
};

const std::map<std::string, KernelDef>& registry() {
  static const std::map<std::string, KernelDef> defs = {
      {"bzip",
       {kernels::bzip,
        "block compression: sequential byte scan, run detection, frequency "
        "table updates",
        0.93}},
      {"gcc",
       {kernels::gcc,
        "compiler surrogate: pointer-chasing tree walk with data-dependent "
        "branches",
        0.90}},
      {"go",
       {kernels::go,
        "game-tree evaluation: pattern-random branches over a small board",
        0.84}},
      {"gzip",
       {kernels::gzip,
        "LZ window matching: rolling hash, chain heads, byte-compare inner "
        "loop",
        0.93}},
      {"ijpeg",
       {kernels::ijpeg,
        "integer DCT butterflies: long add/sub/shift dependence chains",
        0.93}},
      {"li",
       {kernels::li,
        "lisp interpreter: cons-cell mark loop (the paper's Figure 5 idiom)",
        0.95}},
      {"mcf",
       {kernels::mcf,
        "network simplex surrogate: dependent scattered loads over 1 MB",
        0.98}},
      {"parser",
       {kernels::parser,
        "dictionary lookups: hash probe plus collision-chain walk",
        -1.0}},  // Table 1's value did not survive the archival text
      {"twolf",
       {kernels::twolf,
        "placement/annealing: random small-record read-modify-write",
        0.93}},
      {"vortex",
       {kernels::vortex,
        "OO database: Figure 9 address-generation chain and store-to-load "
        "forwarding",
        0.89}},
      {"vpr",
       {kernels::vpr,
        "routing: grid random walk with rarely-taken bounds checks",
        0.96}},
  };
  return defs;
}

}  // namespace

const std::vector<std::string>& workload_names() {
  static const std::vector<std::string> names = {
      "bzip", "gcc",    "go",    "gzip",   "ijpeg", "li",
      "mcf",  "parser", "twolf", "vortex", "vpr"};
  return names;
}

std::string workload_source(const std::string& name,
                            const WorkloadParams& params) {
  const auto it = registry().find(name);
  if (it == registry().end())
    throw std::runtime_error("unknown workload: " + name);
  return it->second.generate(params);
}

WorkloadInfo workload_info(const std::string& name) {
  const auto it = registry().find(name);
  if (it == registry().end())
    throw std::runtime_error("unknown workload: " + name);
  WorkloadInfo info;
  info.name = name;
  info.description = it->second.description;
  if (it->second.paper_branch_accuracy >= 0)
    info.paper_branch_accuracy = it->second.paper_branch_accuracy;
  return info;
}

Workload build_workload(const std::string& name,
                        const WorkloadParams& params) {
  Workload w;
  w.info = workload_info(name);
  const AsmResult r = assemble(workload_source(name, params));
  if (!r.ok())
    throw std::runtime_error("workload '" + name +
                             "' failed to assemble:\n" + r.error_text());
  w.program = r.program;
  return w;
}

}  // namespace bsp
