// The benchmark suite: 11 synthetic kernels standing in for the paper's
// SPECint 95/2000 programs (Table 1). Each kernel is generated as BSP-32
// assembly and reproduces the code idioms and bottleneck structure the paper
// attributes to its namesake (see DESIGN.md §4 for the substitution
// rationale); the real SPEC binaries and reference inputs are not available
// in this environment.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "asm/program.hpp"

namespace bsp {

struct WorkloadParams {
  // Upper bound on loop iterations; kernels exit cleanly when it is reached.
  // Simulations normally cap dynamic instructions first.
  u64 iterations = 1u << 22;
  u64 seed = 0x5eedu;
};

struct WorkloadInfo {
  std::string name;
  std::string description;
  // Reference values from the paper's Table 1 where the published text
  // preserves them (branch prediction accuracy); nullopt where the archival
  // copy lost the digits.
  std::optional<double> paper_branch_accuracy;
};

struct Workload {
  WorkloadInfo info;
  Program program;
};

// The 11 benchmark names, in the paper's order.
const std::vector<std::string>& workload_names();

// Generated assembly for the kernel (useful for tests and examples).
std::string workload_source(const std::string& name,
                            const WorkloadParams& params = {});

// Assembles the kernel; throws std::runtime_error on generator/assembler
// bugs (they are internal errors, not user input).
Workload build_workload(const std::string& name,
                        const WorkloadParams& params = {});

WorkloadInfo workload_info(const std::string& name);

}  // namespace bsp
