// Internal: per-benchmark assembly generators. Exposed for white-box tests;
// applications should use workloads.hpp.
#pragma once

#include <string>

#include "workloads/workloads.hpp"

namespace bsp::kernels {

std::string bzip(const WorkloadParams& p);
std::string gcc(const WorkloadParams& p);
std::string go(const WorkloadParams& p);
std::string gzip(const WorkloadParams& p);
std::string ijpeg(const WorkloadParams& p);
std::string li(const WorkloadParams& p);
std::string mcf(const WorkloadParams& p);
std::string parser(const WorkloadParams& p);
std::string twolf(const WorkloadParams& p);
std::string vortex(const WorkloadParams& p);
std::string vpr(const WorkloadParams& p);

}  // namespace bsp::kernels
