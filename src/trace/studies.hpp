// Trace-driven characterisation engines for the paper's three partial-operand
// applications. Each consumes ExecRecords and accumulates the exact category
// histograms plotted in the paper:
//   * LsqAliasStudy      -> Figure 2 (early load-store disambiguation)
//   * PartialTagStudy    -> Figure 4 (partial tag matching)
//   * EarlyBranchStudy   -> Figure 6 (early branch misprediction detection)
#pragma once

#include <array>
#include <deque>
#include <vector>

#include "branch/predictor.hpp"
#include "emu/emulator.hpp"
#include "lsq/disambig.hpp"
#include "mem/cache.hpp"

namespace bsp {

// ---------------------------------------------------------------------------
// Figure 2: early load-store disambiguation
// ---------------------------------------------------------------------------
//
// Models the LSQ contents at the instant a load is inserted: the most recent
// (lsq_entries - 1) memory instructions form the queue, and the stores among
// them are the addresses the load must disambiguate against. Store addresses
// are assumed fully known (the paper's "perfect knowledge of prior store
// addresses" assumption for this characterisation).
class LsqAliasStudy {
 public:
  explicit LsqAliasStudy(unsigned lsq_entries = 32)
      : capacity_(lsq_entries > 0 ? lsq_entries - 1 : 0) {}

  void observe(const ExecRecord& rec);

  u64 loads() const { return loads_; }
  // counts(k, c): loads classified as category c when comparing address bits
  // [2, 2+k+1) — i.e. k = 0 corresponds to "bit 2", k = 29 to the full
  // word-address comparison the paper labels bit 31.
  u64 count(unsigned k, AliasCategory c) const {
    return counts_[k][static_cast<unsigned>(c)];
  }
  double fraction(unsigned k, AliasCategory c) const {
    return loads_ ? static_cast<double>(count(k, c)) / loads_ : 0.0;
  }
  // Fraction of loads whose outcome is final after k+1 compared bits (the
  // paper's claim: ~100 % after 9 bits, i.e. k = 6 counting from bit 2).
  double resolved_fraction(unsigned k) const;

 private:
  struct MemOp {
    bool is_store;
    u32 addr;
  };
  unsigned capacity_;
  std::deque<MemOp> window_;
  u64 loads_ = 0;
  std::array<std::array<u64, kNumAliasCategories>, kDisambigBits> counts_{};
  std::vector<u32> scratch_stores_;
};

// ---------------------------------------------------------------------------
// Figure 4: partial tag matching
// ---------------------------------------------------------------------------
//
// Streams data accesses through a cache and, before each access updates the
// cache, classifies what a partial tag comparison with t bits would conclude.
class PartialTagStudy {
 public:
  enum class Outcome : u8 {
    ZeroMatch,    // no way matches the partial tag: early, exact miss signal
    SingleHit,    // unique partial match that the full tag confirms
    SingleMiss,   // unique partial match that the full tag refutes
    MultMatch,    // several ways match: needs prediction or more bits
    kCount
  };
  static const char* outcome_name(Outcome o);
  static constexpr unsigned kNumOutcomes = static_cast<unsigned>(Outcome::kCount);

  explicit PartialTagStudy(CacheGeometry geometry);

  void observe(const ExecRecord& rec);   // uses loads and stores
  void observe_access(u32 addr, bool is_write);

  const Cache& cache() const { return cache_; }
  u64 accesses() const { return accesses_; }
  // count(t, o): accesses classified as outcome o with t tag bits compared,
  // t in [1, tag_bits].
  u64 count(unsigned t, Outcome o) const {
    return counts_[t - 1][static_cast<unsigned>(o)];
  }
  double fraction(unsigned t, Outcome o) const {
    return accesses_ ? static_cast<double>(count(t, o)) / accesses_ : 0.0;
  }
  unsigned tag_bits() const { return cache_.geometry().tag_bits(); }

 private:
  Cache cache_;
  u64 accesses_ = 0;
  std::vector<std::array<u64, kNumOutcomes>> counts_;  // [tag bits - 1]
};

// ---------------------------------------------------------------------------
// Figure 6: early branch misprediction detection
// ---------------------------------------------------------------------------
//
// Runs a direction predictor over the trace's conditional branches. For every
// misprediction, computes the lowest operand bit position at which the
// misprediction is provable:
//   * beq/bne whose actual outcome is "operands differ": the first differing
//     bit (the paper's Figure 5 case),
//   * beq/bne whose actual outcome is "operands equal": all 32 bits,
//   * sign-testing branches (blez/bgtz/bltz/bgez): bit 31.
class EarlyBranchStudy {
 public:
  explicit EarlyBranchStudy(unsigned gshare_entries = 64 * 1024)
      : predictor_(gshare_entries) {}

  void observe(const ExecRecord& rec);

  u64 branches() const { return branches_; }
  u64 mispredictions() const { return mispredictions_; }
  double accuracy() const {
    return branches_ ? 1.0 - static_cast<double>(mispredictions_) / branches_
                     : 1.0;
  }
  // Fraction of mispredictions detectable once operand bits [0, k] exist.
  double detected_by_bit(unsigned k) const;
  // Raw histogram: mispredictions first detectable exactly at bit k.
  u64 detect_at(unsigned k) const { return detect_at_bit_[k]; }

  // §5.3 statistics: beq/bne share of dynamic branches and of mispredictions.
  u64 eq_branches() const { return eq_branches_; }
  u64 eq_mispredictions() const { return eq_mispredictions_; }

  // First operand bit at which a mispredicted branch is provably mispredicted
  // (pure helper; exposed for unit tests).
  static unsigned detection_bit(const DecodedInst& inst, u32 src1, u32 src2,
                                bool actual_taken);

 private:
  GsharePredictor predictor_;
  u64 branches_ = 0;
  u64 mispredictions_ = 0;
  u64 eq_branches_ = 0;
  u64 eq_mispredictions_ = 0;
  std::array<u64, kWordBits> detect_at_bit_{};
};

// ---------------------------------------------------------------------------
// Operand criticality profile (motivation for §2/§6)
// ---------------------------------------------------------------------------
//
// Quantifies, per dynamic instruction, how much of its input operands it
// needs before *starting* execution under the Figure-8 slice rules, and how
// often produced results are narrow (sign-extensions of their low slice —
// the §6 narrow-width opportunity).
class OperandProfile {
 public:
  void observe(const ExecRecord& rec);

  u64 instructions() const { return instructions_; }

  // Fraction of instructions whose first slice-op consumes only the low
  // slice of its sources (chainable at slice granularity): everything but
  // full-collect classes and right shifts.
  double startable_with_low_slice() const {
    return frac(startable_low_);
  }
  // Fraction needing complete operands before any work (mul/div/jr).
  double needs_full_operands() const { return frac(full_collect_); }
  // Fraction of register results that are sign-extensions of their low
  // `width`-bit slice (width 16 or 8).
  double narrow_results(unsigned width) const {
    assert(width == 16 || width == 8);
    return results_ ? static_cast<double>(width == 16 ? narrow16_ : narrow8_) /
                          results_
                    : 0.0;
  }
  u64 results() const { return results_; }

 private:
  double frac(u64 n) const {
    return instructions_ ? static_cast<double>(n) / instructions_ : 0.0;
  }
  u64 instructions_ = 0;
  u64 startable_low_ = 0;
  u64 full_collect_ = 0;
  u64 results_ = 0;
  u64 narrow16_ = 0;
  u64 narrow8_ = 0;
};

}  // namespace bsp
