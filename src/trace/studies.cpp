#include "trace/studies.hpp"

#include <cassert>

namespace bsp {

// ---------------------------------------------------------------------------
// LsqAliasStudy
// ---------------------------------------------------------------------------

void LsqAliasStudy::observe(const ExecRecord& rec) {
  if (!rec.is_load && !rec.is_store) return;

  if (rec.is_load) {
    scratch_stores_.clear();
    for (const auto& op : window_)
      if (op.is_store) scratch_stores_.push_back(op.addr);

    ++loads_;
    for (unsigned k = 0; k < kDisambigBits; ++k) {
      const AliasCategory c =
          classify_aliasing(rec.mem_addr, scratch_stores_, k + 1);
      ++counts_[k][static_cast<unsigned>(c)];
    }
  }

  window_.push_back({rec.is_store, rec.mem_addr});
  while (window_.size() > capacity_) window_.pop_front();
}

double LsqAliasStudy::resolved_fraction(unsigned k) const {
  assert(k < kDisambigBits);
  u64 resolved = 0;
  for (unsigned c = 0; c < kNumAliasCategories; ++c)
    if (aliasing_resolved(static_cast<AliasCategory>(c)))
      resolved += counts_[k][c];
  return loads_ ? static_cast<double>(resolved) / loads_ : 0.0;
}

// ---------------------------------------------------------------------------
// PartialTagStudy
// ---------------------------------------------------------------------------

const char* PartialTagStudy::outcome_name(Outcome o) {
  switch (o) {
    case Outcome::ZeroMatch: return "zero match";
    case Outcome::SingleHit: return "single entry - hit";
    case Outcome::SingleMiss: return "single entry - miss";
    case Outcome::MultMatch: return "mult match";
    case Outcome::kCount: break;
  }
  return "?";
}

PartialTagStudy::PartialTagStudy(CacheGeometry geometry)
    : cache_(geometry), counts_(geometry.tag_bits()) {}

void PartialTagStudy::observe(const ExecRecord& rec) {
  if (rec.is_load || rec.is_store)
    observe_access(rec.mem_addr, rec.is_store);
}

void PartialTagStudy::observe_access(u32 addr, bool is_write) {
  ++accesses_;
  const auto full_hit_way = cache_.find(addr);
  const unsigned tbits = tag_bits();
  for (unsigned t = 1; t <= tbits; ++t) {
    const u32 ways = cache_.partial_match_ways(addr, t);
    const unsigned n = static_cast<unsigned>(std::popcount(ways));
    Outcome o;
    if (n == 0) {
      o = Outcome::ZeroMatch;
    } else if (n > 1) {
      o = Outcome::MultMatch;
    } else {
      const unsigned w = static_cast<unsigned>(std::countr_zero(ways));
      o = (full_hit_way && *full_hit_way == w) ? Outcome::SingleHit
                                               : Outcome::SingleMiss;
    }
    ++counts_[t - 1][static_cast<unsigned>(o)];
  }
  cache_.access(addr, is_write);
}

// ---------------------------------------------------------------------------
// EarlyBranchStudy
// ---------------------------------------------------------------------------

unsigned EarlyBranchStudy::detection_bit(const DecodedInst& inst, u32 src1,
                                         u32 src2, bool actual_taken) {
  switch (inst.cls()) {
    case ExecClass::BranchEq: {
      // Misprediction is proven when the *actual* outcome is proven.
      const bool actual_equal = src1 == src2;
      (void)actual_taken;
      if (!actual_equal) {
        // Proving inequality: the first differing bit suffices.
        return lowest_diff_bit(src1, src2);
      }
      // Proving equality requires every bit.
      return kWordBits - 1;
    }
    case ExecClass::BranchSign:
      // blez/bgtz/bltz/bgez test the sign (and possibly zero): the sign bit
      // lives in the last slice, so detection happens only at bit 31.
      return kWordBits - 1;
    case ExecClass::FpBranch:
      // bc1f/bc1t read a single condition flag: provable immediately.
      return 0;
    default:
      assert(false && "not a conditional branch");
      return kWordBits - 1;
  }
}

void EarlyBranchStudy::observe(const ExecRecord& rec) {
  if (!rec.is_cond_branch) return;
  ++branches_;
  const bool is_eq = rec.inst.cls() == ExecClass::BranchEq;
  if (is_eq) ++eq_branches_;

  const bool predicted = predictor_.predict(rec.pc);
  predictor_.update(rec.pc, rec.branch_taken);
  if (predicted == rec.branch_taken) return;

  ++mispredictions_;
  if (is_eq) ++eq_mispredictions_;
  const unsigned bit = detection_bit(rec.inst, rec.src1_value, rec.src2_value,
                                     rec.branch_taken);
  ++detect_at_bit_[bit];
}

double EarlyBranchStudy::detected_by_bit(unsigned k) const {
  assert(k < kWordBits);
  u64 sum = 0;
  for (unsigned i = 0; i <= k; ++i) sum += detect_at_bit_[i];
  return mispredictions_ ? static_cast<double>(sum) / mispredictions_ : 0.0;
}

// ---------------------------------------------------------------------------
// OperandProfile
// ---------------------------------------------------------------------------

void OperandProfile::observe(const ExecRecord& rec) {
  ++instructions_;
  switch (rec.inst.cls()) {
    case ExecClass::Logic:
    case ExecClass::Add:
    case ExecClass::ShiftLeft:
    case ExecClass::Compare:     // the subtract's carry chain starts low
    case ExecClass::MfHiLo:
    case ExecClass::Load:        // address generation is an add
    case ExecClass::Store:
    case ExecClass::BranchEq:
    case ExecClass::BranchSign:  // per-slice compares start low, too
      ++startable_low_;
      break;
    case ExecClass::Mul:
    case ExecClass::Div:
    case ExecClass::JumpReg:
    case ExecClass::FpAlu:
    case ExecClass::FpMul:
    case ExecClass::FpDiv:
    case ExecClass::FpSqrt:
    case ExecClass::FpCompare:
      ++full_collect_;
      break;
    case ExecClass::ShiftRight:  // starts at the *high* slice
    case ExecClass::Jump:
    case ExecClass::Syscall:
    case ExecClass::FpBranch:    // reads a 1-bit flag, not a sliced operand
      break;
  }
  if (rec.dest != 0) {
    ++results_;
    const u32 v = rec.dest_value;
    if (sign_extend(v & 0xffffu, 16) == v) ++narrow16_;
    if (sign_extend(v & 0xffu, 8) == v) ++narrow8_;
  }
}

}  // namespace bsp
