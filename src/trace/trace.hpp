// Trace-driven execution: runs the functional emulator and streams one
// ExecRecord per dynamic instruction to a visitor. This is the substrate for
// the paper's characterisation studies (Figures 2, 4, 6), which the authors
// ran on a trace-driven version of SimpleScalar.
#pragma once

#include <functional>

#include "asm/program.hpp"
#include "emu/emulator.hpp"

namespace bsp {

// Return false from the visitor to stop early.
using TraceVisitor = std::function<bool(const ExecRecord&)>;

struct TraceResult {
  u64 skipped = 0;    // fast-forwarded instructions (not visited)
  u64 visited = 0;    // instructions delivered to the visitor
  StepResult final;   // why execution stopped
};

// Executes `program`, skipping the first `skip` instructions (warm-up /
// fast-forward) and then visiting up to `limit` instructions.
TraceResult run_trace(const Program& program, u64 skip, u64 limit,
                      const TraceVisitor& visit);

}  // namespace bsp
