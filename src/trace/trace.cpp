#include "trace/trace.hpp"

namespace bsp {

TraceResult run_trace(const Program& program, u64 skip, u64 limit,
                      const TraceVisitor& visit) {
  Emulator emu(program);
  TraceResult result;
  result.skipped = emu.run(skip, &result.final);
  if (result.skipped < skip) return result;  // exited/faulted during warm-up

  ExecRecord rec;
  while (result.visited < limit) {
    result.final = emu.step(&rec);
    if (!result.final.ok()) break;
    ++result.visited;
    if (!visit(rec)) break;
  }
  return result;
}

}  // namespace bsp
