// Aligned-table / CSV printer used by every bench binary so that the
// reproduced tables and figure series all share one output format.
#pragma once

#include <string>
#include <vector>
#include <iosfwd>

namespace bsp {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  // Appends a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  // Convenience: formats doubles with `prec` decimals, ints as-is.
  static std::string num(double v, int prec = 3);
  static std::string pct(double fraction, int prec = 1);  // 0.42 -> "42.0%"

  void print(std::ostream& os) const;      // aligned columns
  void print_csv(std::ostream& os) const;  // comma separated

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace bsp
