// Deterministic xoshiro128** RNG.
//
// Workload generators and synthetic data initialisation must be reproducible
// across runs and platforms, so we avoid std::mt19937's distribution
// non-portability and carry our own minimal generator + helpers.
#pragma once

#include <cstdint>
#include <cassert>

#include "util/bitops.hpp"

namespace bsp {

class Rng {
 public:
  explicit Rng(u64 seed = 0x9e3779b97f4a7c15ull) {
    // splitmix64 to spread the seed across the state words.
    u64 z = seed;
    for (auto& w : state_) {
      z += 0x9e3779b97f4a7c15ull;
      u64 x = z;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
      w = static_cast<u32>((x ^ (x >> 31)) & 0xffffffffull);
      if (w == 0) w = 1;  // all-zero state is forbidden
    }
  }

  u32 next() {
    const u32 result = rotl(state_[1] * 5, 7) * 9;
    const u32 t = state_[1] << 9;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 11);
    return result;
  }

  // Uniform in [0, bound). Uses rejection to avoid modulo bias.
  u32 below(u32 bound) {
    assert(bound > 0);
    const u32 threshold = (-bound) % bound;
    for (;;) {
      const u32 r = next();
      if (r >= threshold) return r % bound;
    }
  }

  // Uniform in [lo, hi] inclusive.
  u32 range(u32 lo, u32 hi) {
    assert(lo <= hi);
    return lo + below(hi - lo + 1);
  }

  // True with probability num/den.
  bool chance(u32 num, u32 den) {
    assert(den > 0 && num <= den);
    return below(den) < num;
  }

  double uniform01() { return next() * (1.0 / 4294967296.0); }

 private:
  static constexpr u32 rotl(u32 x, int k) {
    return (x << k) | (x >> (32 - k));
  }
  u32 state_[4];
};

}  // namespace bsp
