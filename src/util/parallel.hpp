// Tiny thread-pool helpers for the bench sweeps and the campaign engine:
// the Figure 11/12 drivers and bsp-sweep run dozens of completely
// independent whole-program simulations, which parallelise trivially. Each
// Simulator owns all its state, so tasks never share mutable data.
//
// Contract (relied on by src/campaign/scheduler.cpp and the bench drivers):
// * `fn` must not throw. parallel_for runs tasks on plain std::threads with
//   no exception rail — an escaping exception calls std::terminate. Tasks
//   report failure through their results (see campaign::AttemptResult).
// * Every index in [0, n) is visited exactly once; the call returns only
//   after all of them complete.
// * n == 0 returns immediately without touching `fn`.
// * jobs == 1 (or n == 1) runs inline on the caller's thread, in index
//   order — the deterministic mode the campaign tests use.
// * n < jobs spawns only n workers; jobs == 0 means hardware concurrency.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

namespace bsp {

// Runs fn(0) .. fn(n-1) on up to `jobs` threads (0 = hardware concurrency).
// Blocks until every call returns. Exceptions from `fn` are not supported —
// bench tasks report failures through their results.
inline void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                         unsigned jobs = 0) {
  if (jobs == 0) jobs = std::max(1u, std::thread::hardware_concurrency());
  if (n == 0) return;
  if (jobs == 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      fn(i);
    }
  };
  std::vector<std::thread> threads;
  const unsigned count = static_cast<unsigned>(
      std::min<std::size_t>(jobs, n));
  threads.reserve(count - 1);
  for (unsigned t = 1; t < count; ++t) threads.emplace_back(worker);
  worker();  // this thread participates too
  for (auto& t : threads) t.join();
}

// Maps fn over [0, n) in parallel, collecting results by index.
template <typename T>
std::vector<T> parallel_map(std::size_t n,
                            const std::function<T(std::size_t)>& fn,
                            unsigned jobs = 0) {
  std::vector<T> out(n);
  parallel_for(n, [&](std::size_t i) { out[i] = fn(i); }, jobs);
  return out;
}

}  // namespace bsp
