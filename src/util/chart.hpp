// Minimal ASCII chart rendering for the bench drivers, so reproduced figures
// can be eyeballed against the paper's plots directly in a terminal.
//
// Two chart types cover the paper's figures:
//   * LineChart  — one or more named series over a shared x axis
//                  (Figures 2/4/6 cumulative curves),
//   * BarChart   — grouped horizontal bars (Figure 11/12 IPC stacks).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace bsp {

class LineChart {
 public:
  // `height` terminal rows for the plot area; `width` columns (x samples are
  // resampled to fit).
  LineChart(std::string title, unsigned width = 64, unsigned height = 16);

  // All series share x positions implicitly (index order).
  void add_series(std::string name, std::vector<double> values);
  void set_x_label(std::string label) { x_label_ = std::move(label); }
  // Fixes the y range (default: min/max over all series).
  void set_y_range(double lo, double hi);

  void print(std::ostream& os) const;

 private:
  struct Series {
    std::string name;
    std::vector<double> values;
  };
  std::string title_;
  std::string x_label_;
  unsigned width_, height_;
  bool fixed_range_ = false;
  double y_lo_ = 0, y_hi_ = 1;
  std::vector<Series> series_;
};

class BarChart {
 public:
  explicit BarChart(std::string title, unsigned width = 50);

  void add_bar(std::string label, double value);
  // Optional reference line (e.g. the base machine's IPC).
  void set_reference(double value) { reference_ = value; has_ref_ = true; }

  void print(std::ostream& os) const;

 private:
  struct Bar {
    std::string label;
    double value;
  };
  std::string title_;
  unsigned width_;
  double reference_ = 0;
  bool has_ref_ = false;
  std::vector<Bar> bars_;
};

}  // namespace bsp
