#include "util/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

namespace bsp {
namespace {

using Clock = std::chrono::steady_clock;

void set_nonblocking(int fd, bool on) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0)
    ::fcntl(fd, F_SETFL, on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK));
}

bool fill_sockaddr(const SocketAddr& addr, struct sockaddr_in* sin,
                   std::string* error) {
  std::memset(sin, 0, sizeof *sin);
  sin->sin_family = AF_INET;
  sin->sin_port = htons(addr.port);
  if (addr.host.empty()) {
    sin->sin_addr.s_addr = htonl(INADDR_ANY);
    return true;
  }
  const std::string host =
      addr.host == "localhost" ? std::string("127.0.0.1") : addr.host;
  if (::inet_pton(AF_INET, host.c_str(), &sin->sin_addr) != 1) {
    if (error) *error = "invalid IPv4 address '" + addr.host + "'";
    return false;
  }
  return true;
}

// Milliseconds left until `deadline`, clamped to [0, 100] so callers keep
// re-checking for shutdown/poison between slices.
int slice_ms(Clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  if (left.count() <= 0) return 0;
  return static_cast<int>(std::min<long long>(100, left.count()));
}

}  // namespace

std::optional<SocketAddr> parse_socket_addr(const std::string& text) {
  const std::size_t colon = text.rfind(':');
  if (colon == std::string::npos) return std::nullopt;
  const std::string port_str = text.substr(colon + 1);
  if (port_str.empty()) return std::nullopt;
  char* end = nullptr;
  const unsigned long port = std::strtoul(port_str.c_str(), &end, 10);
  if (*end != '\0' || port > 65535) return std::nullopt;
  SocketAddr addr;
  addr.host = text.substr(0, colon);
  addr.port = static_cast<std::uint16_t>(port);
  return addr;
}

bool TcpListener::open(const SocketAddr& addr, std::string* error) {
  close();
  struct sockaddr_in sin;
  if (!fill_sockaddr(addr, &sin, error)) return false;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error) *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&sin), sizeof sin) != 0 ||
      ::listen(fd, 64) != 0) {
    if (error)
      *error = "bind/listen " + addr.host + ":" + std::to_string(addr.port) +
               ": " + std::strerror(errno);
    ::close(fd);
    return false;
  }
  struct sockaddr_in bound;
  socklen_t len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&bound), &len) ==
      0)
    port_ = ntohs(bound.sin_port);
  else
    port_ = addr.port;
  set_nonblocking(fd, true);
  fd_ = fd;
  return true;
}

int TcpListener::accept_fd() {
  if (fd_ < 0) return -1;
  const int fd = ::accept(fd_, nullptr, nullptr);
  if (fd < 0) return -1;
  set_nonblocking(fd, false);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd;
}

void TcpListener::close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  port_ = 0;
}

int tcp_connect(const SocketAddr& addr, double timeout_sec,
                std::string* error) {
  struct sockaddr_in sin;
  if (!fill_sockaddr(addr, &sin, error)) return -1;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(timeout_sec));
  // Retry refused connections until the deadline: the usual caller is a
  // worker started in the same breath as its coordinator, so losing the
  // race to bind must not be fatal.
  for (;;) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      if (error) *error = std::string("socket: ") + std::strerror(errno);
      return -1;
    }
    if (::connect(fd, reinterpret_cast<struct sockaddr*>(&sin), sizeof sin) ==
        0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      return fd;
    }
    const int saved = errno;
    ::close(fd);
    if (Clock::now() >= deadline) {
      if (error)
        *error = "connect " + addr.host + ":" + std::to_string(addr.port) +
                 ": " + std::strerror(saved);
      return -1;
    }
    ::poll(nullptr, 0, 50);  // brief back-off, then retry
  }
}

void FrameChannel::close() {
  std::lock_guard<std::mutex> lock(send_mutex_);
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

bool FrameChannel::send(const std::string& payload) {
  if (payload.size() > kMaxFrameBytes) return false;
  std::lock_guard<std::mutex> lock(send_mutex_);
  if (fd_ < 0) return false;
  unsigned char header[4];
  const std::uint32_t n = static_cast<std::uint32_t>(payload.size());
  header[0] = static_cast<unsigned char>(n >> 24);
  header[1] = static_cast<unsigned char>(n >> 16);
  header[2] = static_cast<unsigned char>(n >> 8);
  header[3] = static_cast<unsigned char>(n);
  std::string wire(reinterpret_cast<char*>(header), 4);
  wire += payload;
  std::size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t k =
        ::send(fd_, wire.data() + sent, wire.size() - sent, MSG_NOSIGNAL);
    if (k > 0) {
      sent += static_cast<std::size_t>(k);
      continue;
    }
    if (k < 0 && errno == EINTR) continue;
    return false;  // peer gone (EPIPE/ECONNRESET) or hard error
  }
  return true;
}

bool FrameChannel::queue_send(const std::string& payload) {
  if (payload.size() > kMaxFrameBytes) return false;
  std::lock_guard<std::mutex> lock(send_mutex_);
  if (fd_ < 0) return false;
  // A backlog past the frame cap means the peer stopped draining its
  // socket; treat it like a dead peer rather than buffering without bound.
  if (out_buf_.size() > kMaxFrameBytes) return false;
  unsigned char header[4];
  const std::uint32_t n = static_cast<std::uint32_t>(payload.size());
  header[0] = static_cast<unsigned char>(n >> 24);
  header[1] = static_cast<unsigned char>(n >> 16);
  header[2] = static_cast<unsigned char>(n >> 8);
  header[3] = static_cast<unsigned char>(n);
  out_buf_.append(reinterpret_cast<char*>(header), 4);
  out_buf_ += payload;
  return flush_locked();
}

bool FrameChannel::flush_sends() {
  std::lock_guard<std::mutex> lock(send_mutex_);
  if (fd_ < 0) return false;
  return flush_locked();
}

bool FrameChannel::flush_locked() {
  while (!out_buf_.empty()) {
    const ssize_t k = ::send(fd_, out_buf_.data(), out_buf_.size(),
                             MSG_NOSIGNAL | MSG_DONTWAIT);
    if (k > 0) {
      out_buf_.erase(0, static_cast<std::size_t>(k));
      continue;
    }
    if (k < 0 && errno == EINTR) continue;
    if (k < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
      return true;  // socket buffer full: the rest waits for POLLOUT
    return false;   // peer gone (EPIPE/ECONNRESET) or hard error
  }
  return true;
}

bool FrameChannel::pump() {
  if (fd_ < 0 || poisoned_) return false;
  char buf[16384];
  for (;;) {
    const ssize_t n = ::recv(fd_, buf, sizeof buf, MSG_DONTWAIT);
    if (n > 0) {
      buf_.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) return false;  // orderly EOF
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    if (errno == EINTR) continue;
    return false;  // hard socket error
  }
}

std::optional<std::string> FrameChannel::next_frame() {
  if (poisoned_ || buf_.size() < 4) return std::nullopt;
  const auto* b = reinterpret_cast<const unsigned char*>(buf_.data());
  const std::size_t n = (std::size_t{b[0]} << 24) | (std::size_t{b[1]} << 16) |
                        (std::size_t{b[2]} << 8) | std::size_t{b[3]};
  if (n > kMaxFrameBytes) {
    // A garbage length prefix means the stream can never resync; poison
    // the channel instead of allocating whatever the prefix claims.
    poisoned_ = true;
    return std::nullopt;
  }
  if (buf_.size() < 4 + n) return std::nullopt;
  std::string payload = buf_.substr(4, n);
  buf_.erase(0, 4 + n);
  return payload;
}

FrameResult FrameChannel::recv(std::string* out, double timeout_sec) {
  const Clock::time_point deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(
                             timeout_sec > 0 ? timeout_sec : 0));
  for (;;) {
    if (auto frame = next_frame()) {
      *out = std::move(*frame);
      return FrameResult::kFrame;
    }
    if (poisoned_) return FrameResult::kError;
    if (fd_ < 0) return FrameResult::kClosed;
    const int wait_ms = timeout_sec > 0 ? slice_ms(deadline) : 0;
    struct pollfd pfd = {fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, wait_ms);
    if (rc < 0 && errno != EINTR) return FrameResult::kError;
    if (rc > 0 && (pfd.revents & (POLLIN | POLLHUP | POLLERR))) {
      if (!pump()) {
        // Drain any frame that arrived with the FIN before reporting EOF.
        if (auto frame = next_frame()) {
          *out = std::move(*frame);
          return FrameResult::kFrame;
        }
        return poisoned_ ? FrameResult::kError : FrameResult::kClosed;
      }
      continue;
    }
    if (Clock::now() >= deadline) return FrameResult::kTimeout;
  }
}

}  // namespace bsp
