// Minimal TCP socket wrapper + length-prefixed frame layer for the
// campaign engine's distributed mode (campaign/remote.hpp), living next to
// subprocess.hpp as the other half of the worker plumbing: subprocess runs
// a worker on this host, socket talks to one on another.
//
// Framing: every message is a 4-byte big-endian payload length followed by
// the payload bytes. A FrameChannel owns one connected fd and hides the
// TCP stream's arbitrary segmentation — frames are reassembled from split
// reads, several frames arriving in one read are handed out one at a time,
// and a length prefix larger than kMaxFrameBytes poisons the channel (a
// garbage or hostile peer cannot make the reader allocate unbounded
// memory). Sends are mutex-serialised so worker pool threads can share one
// channel; writes use MSG_NOSIGNAL so a dead peer surfaces as a false
// return, never SIGPIPE.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>

namespace bsp {

// Reject frames larger than this (length prefix included in neither).
constexpr std::size_t kMaxFrameBytes = 64u << 20;

// "host:port" -> parts. Host may be empty (":0" = any interface);
// "localhost" is accepted as an alias for 127.0.0.1. Port 0 asks the
// kernel for an ephemeral port (TcpListener::port() reports the result).
struct SocketAddr {
  std::string host;  // dotted-quad IPv4, "" = INADDR_ANY
  std::uint16_t port = 0;
};
std::optional<SocketAddr> parse_socket_addr(const std::string& text);

class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener() { close(); }
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  // Binds and listens (SO_REUSEADDR, non-blocking). False + `error` on
  // failure. port() is the actually-bound port (resolves port 0).
  bool open(const SocketAddr& addr, std::string* error);
  // Accepts one pending connection, -1 if none (call after poll/select
  // says the listener fd is readable). The returned fd is blocking.
  int accept_fd();
  int fd() const { return fd_; }
  std::uint16_t port() const { return port_; }
  void close();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

// Blocking connect with a deadline. Returns the connected fd, or -1 with
// `error` set.
int tcp_connect(const SocketAddr& addr, double timeout_sec,
                std::string* error);

enum class FrameResult {
  kFrame,    // *out holds one complete payload
  kTimeout,  // nothing complete within the deadline (partial bytes kept)
  kClosed,   // orderly EOF from the peer
  kError,    // protocol violation (oversized frame) or socket error
};

class FrameChannel {
 public:
  explicit FrameChannel(int fd = -1) : fd_(fd) {}
  ~FrameChannel() { close(); }
  FrameChannel(const FrameChannel&) = delete;
  FrameChannel& operator=(const FrameChannel&) = delete;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0 && !poisoned_; }
  void close();

  // Sends one frame (length prefix + payload). Thread-safe; false when the
  // peer is gone or the payload exceeds kMaxFrameBytes.
  bool send(const std::string& payload);

  // Blocking receive with a deadline. kTimeout keeps any partial frame
  // buffered, so callers can loop: a frame split across deadlines is
  // reassembled, not lost. timeout_sec <= 0 polls without waiting.
  FrameResult recv(std::string* out, double timeout_sec);

  // Non-blocking half for multiplexed servers: pump() drains whatever the
  // socket currently holds into the reassembly buffer (false on EOF or
  // socket error — drain next_frame() before closing); next_frame() hands
  // out the next complete buffered frame, nullopt when more bytes are
  // needed. An oversized length prefix poisons the channel: next_frame()
  // stays empty and valid() turns false.
  bool pump();
  std::optional<std::string> next_frame();

  // Non-blocking send half, for the same multiplexed servers: queue_send()
  // frames the payload into an outgoing buffer and writes whatever the
  // socket will take right now; flush_sends() retries the remainder (call
  // it when poll reports POLLOUT). False from either means the peer is
  // gone, the payload is oversized, or the buffered backlog has passed
  // kMaxFrameBytes — a receiver that stopped draining. send_pending()
  // says whether POLLOUT interest is still needed. Unlike send(), this
  // half expects a single-threaded caller (the event loop).
  bool queue_send(const std::string& payload);
  bool flush_sends();
  bool send_pending() const { return !out_buf_.empty(); }

 private:
  bool flush_locked();  // caller holds send_mutex_

  int fd_ = -1;
  bool poisoned_ = false;
  std::string buf_;
  std::string out_buf_;
  std::mutex send_mutex_;
};

}  // namespace bsp
