// Minimal POSIX subprocess runner (fork/exec + pipes) for the campaign
// engine's process-isolation mode: run a command, capture stdout/stderr,
// enforce a wall-clock deadline with SIGKILL, and report how the child
// ended (exit code, terminating signal, or timeout) plus its rusage
// (peak RSS, user/sys CPU time).
//
// Unlike the scheduler's thread-mode timeout — which can only *detach* a
// wedged attempt, leaving it burning a core — a timed-out child here is
// SIGKILLed and reaped before run_subprocess() returns, so the core comes
// back and nothing outlives the call. A crashing child takes only itself
// down; the caller sees the signal instead of dying with it.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace bsp {

struct SubprocessLimits {
  double timeout_sec = 0;  // wall clock; 0 = no deadline
  // Capture cap for stdout (a runaway child cannot exhaust the parent).
  // Bytes past the cap are read and discarded; `out_truncated` is set.
  std::size_t max_output_bytes = 64u << 20;
};

struct SubprocessResult {
  // How the child ended. Exactly one way:
  //  * spawn_error — fork/pipe plumbing failed, nothing ran (see `error`);
  //  * timed_out   — deadline hit: the child was SIGKILLed and reaped;
  //  * signal != 0 — killed by that signal (crash containment path);
  //  * otherwise   — exited normally with `exit_code`.
  bool spawn_error = false;
  bool timed_out = false;
  int signal = 0;
  int exit_code = -1;
  std::string error;  // spawn_error description

  std::string out;  // captured stdout (up to max_output_bytes)
  std::string err;  // captured stderr (capped at 64 KiB)
  bool out_truncated = false;

  // Child rusage from wait4(): zero when spawn_error.
  long max_rss_kb = 0;
  double user_sec = 0;
  double sys_sec = 0;

  bool exited(int code = 0) const {
    return !spawn_error && !timed_out && signal == 0 && exit_code == code;
  }
};

// Runs argv[0] with arguments argv[1..] (execvp, so PATH search applies)
// with stdin from /dev/null. Blocks until the child has been reaped — on
// timeout the child is SIGKILLed first, so no process (or core) leaks.
// An exec failure surfaces as exit code 127 with a message on stderr.
SubprocessResult run_subprocess(const std::vector<std::string>& argv,
                                const SubprocessLimits& limits = {});

// "SIGSEGV"-style name for common signals, "signal N" otherwise.
std::string signal_name(int sig);

// Absolute path of the running executable (/proc/self/exe), falling back
// to argv0 where /proc is unavailable. For self-re-exec worker protocols.
std::string self_exe_path(const char* argv0);

}  // namespace bsp
