// Minimal declarative CLI parser shared by the bench drivers
// (bench/common.hpp) and the campaign tools (tools/bsp-sweep.cpp), replacing
// the hand-rolled strcmp chains each driver used to carry. Supports long and
// short aliases, typed value options, repeatable options, hidden (internal)
// options, and a generated --help. Matches the historical bench behaviour:
// exits 0 on --help, exits 2 on an unknown option, a missing value, or —
// via the typed overloads and the parse_cli_* helpers — a malformed
// numeric value (trailing junk, overflow, or a negative where an unsigned
// is expected all reject; they no longer silently parse as 0).
#pragma once

#include <algorithm>
#include <cerrno>
#include <climits>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "util/bitops.hpp"

namespace bsp {

// Strict CLI numeric parsing. `what` names the option for the complaint
// (e.g. "--instructions"); any malformed value prints it and exits 2, the
// same contract as an unknown option. Base 0, so hex ("0x5eed") works.
inline u64 parse_cli_u64(const std::string& what, const std::string& v) {
  const char* s = v.c_str();
  errno = 0;
  char* end = nullptr;
  const unsigned long long x = std::strtoull(s, &end, 0);
  // strtoull silently wraps negatives into huge values; reject the sign
  // explicitly along with empty/partial parses and overflow.
  if (v.empty() || v.find('-') != std::string::npos || end == s ||
      *end != '\0' || errno == ERANGE) {
    std::cerr << what << ": invalid numeric value '" << v << "'\n";
    std::exit(2);
  }
  return static_cast<u64>(x);
}

inline unsigned parse_cli_unsigned(const std::string& what,
                                   const std::string& v) {
  const u64 x = parse_cli_u64(what, v);
  if (x > UINT_MAX) {
    std::cerr << what << ": value '" << v << "' out of range\n";
    std::exit(2);
  }
  return static_cast<unsigned>(x);
}

inline double parse_cli_double(const std::string& what,
                               const std::string& v) {
  const char* s = v.c_str();
  errno = 0;
  char* end = nullptr;
  const double x = std::strtod(s, &end);
  if (v.empty() || end == s || *end != '\0' || errno == ERANGE) {
    std::cerr << what << ": invalid numeric value '" << v << "'\n";
    std::exit(2);
  }
  return x;
}

class ArgParser {
 public:
  explicit ArgParser(std::string description)
      : description_(std::move(description)) {}

  // `names` is a comma-separated alias list, e.g. "-n, --instructions".
  // Aliases match exactly; the whole list is shown in --help.
  void add_flag(const std::string& names, const std::string& help,
                bool* out) {
    add_flag(names, help, [out] { *out = true; });
  }
  void add_flag(const std::string& names, const std::string& help,
                std::function<void()> fn) {
    options_.push_back({split(names), "", help,
                        [fn = std::move(fn)](const std::string&) { fn(); },
                        false, false});
  }

  // Value options; the typed conveniences parse strictly via parse_cli_*
  // (base 0, so hex "0x5eed" and decimal both work) and exit 2 on garbage
  // instead of silently yielding 0.
  void add_value(const std::string& names, const std::string& placeholder,
                 const std::string& help,
                 std::function<void(const std::string&)> fn) {
    options_.push_back(
        {split(names), placeholder, help, std::move(fn), true, false});
  }
  void add_value(const std::string& names, const std::string& placeholder,
                 const std::string& help, u64* out) {
    add_value(names, placeholder, help, [out, names](const std::string& v) {
      *out = parse_cli_u64(names, v);
    });
  }
  void add_value(const std::string& names, const std::string& placeholder,
                 const std::string& help, unsigned* out) {
    add_value(names, placeholder, help, [out, names](const std::string& v) {
      *out = parse_cli_unsigned(names, v);
    });
  }
  void add_value(const std::string& names, const std::string& placeholder,
                 const std::string& help, double* out) {
    add_value(names, placeholder, help, [out, names](const std::string& v) {
      *out = parse_cli_double(names, v);
    });
  }
  void add_value(const std::string& names, const std::string& placeholder,
                 const std::string& help, std::string* out) {
    add_value(names, placeholder, help,
              [out](const std::string& v) { *out = v; });
  }
  // Repeatable: every occurrence appends.
  void add_value(const std::string& names, const std::string& placeholder,
                 const std::string& help, std::vector<std::string>* out) {
    add_value(names, placeholder, help,
              [out](const std::string& v) { out->push_back(v); });
  }
  void add_value(const std::string& names, const std::string& placeholder,
                 const std::string& help, std::vector<u64>* out) {
    add_value(names, placeholder, help, [out, names](const std::string& v) {
      out->push_back(parse_cli_u64(names, v));
    });
  }

  // Internal plumbing options (e.g. bsp-sweep's --worker): parsed like any
  // value option but left out of --help.
  void add_hidden_value(const std::string& names,
                        const std::string& placeholder,
                        const std::string& help,
                        std::function<void(const std::string&)> fn) {
    options_.push_back(
        {split(names), placeholder, help, std::move(fn), true, true});
  }
  void add_hidden_value(const std::string& names,
                        const std::string& placeholder,
                        const std::string& help, std::string* out) {
    add_hidden_value(names, placeholder, help,
                     [out](const std::string& v) { *out = v; });
  }

  // Parses argv[1..]; on --help/-h prints usage and exits 0, on an unknown
  // option or missing value prints a complaint and exits 2.
  void parse(int argc, char** argv) const {
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      if (a == "--help" || a == "-h") {
        print_help(std::cout);
        std::exit(0);
      }
      const Option* opt = find(a);
      if (!opt) {
        std::cerr << "unknown option " << a << " (try --help)\n";
        std::exit(2);
      }
      std::string value;
      if (opt->takes_value) {
        if (i + 1 >= argc) {
          std::cerr << a << " needs a value\n";
          std::exit(2);
        }
        value = argv[++i];
      }
      opt->apply(value);
    }
  }

  void print_help(std::ostream& os) const {
    os << description_ << "\n\nOptions:\n";
    std::vector<std::pair<std::string, std::string>> lines;
    std::size_t width = 0;
    for (const auto& o : options_) {
      if (o.hidden) continue;
      std::string left;
      for (std::size_t i = 0; i < o.names.size(); ++i) {
        if (i) left += ", ";
        left += o.names[i];
      }
      if (o.takes_value) left += " " + o.placeholder;
      width = std::max(width, left.size());
      lines.emplace_back(std::move(left), o.help);
    }
    lines.emplace_back("-h, --help", "show this help");
    width = std::max(width, lines.back().first.size());
    for (const auto& [left, help] : lines)
      os << "  " << left << std::string(width - left.size() + 3, ' ') << help
         << "\n";
  }

 private:
  struct Option {
    std::vector<std::string> names;
    std::string placeholder;
    std::string help;
    std::function<void(const std::string&)> apply;
    bool takes_value;
    bool hidden;
  };

  static std::vector<std::string> split(const std::string& names) {
    std::vector<std::string> out;
    std::string cur;
    for (const char c : names) {
      if (c == ',') {
        if (!cur.empty()) out.push_back(cur);
        cur.clear();
      } else if (c != ' ') {
        cur += c;
      }
    }
    if (!cur.empty()) out.push_back(cur);
    return out;
  }

  const Option* find(const std::string& name) const {
    for (const auto& o : options_)
      for (const auto& n : o.names)
        if (n == name) return &o;
    return nullptr;
  }

  std::string description_;
  std::vector<Option> options_;
};

}  // namespace bsp
