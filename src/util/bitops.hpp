// Bit- and slice-level helpers shared by the whole simulator.
//
// A "slice" is a contiguous group of bits of a 32-bit register operand, as
// defined by a SliceGeometry: slicing by 2 gives two 16-bit slices, slicing
// by 4 gives four 8-bit slices. Slice 0 always holds the least significant
// bits. These helpers are the single source of truth for slice boundaries so
// the scheduler, the ALUs, the LSQ and the cache all agree on them.
#pragma once

#include <cstdint>
#include <cassert>
#include <array>
#include <bit>

namespace bsp {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

inline constexpr unsigned kWordBits = 32;
inline constexpr unsigned kMaxSlices = 8;

// Mask with the low `n` bits set; n may be 0..32.
constexpr u32 low_mask(unsigned n) {
  assert(n <= 32);
  return n >= 32 ? ~u32{0} : ((u32{1} << n) - 1);
}

// Bits [lo, lo+n) of v, right-aligned.
constexpr u32 bits(u32 v, unsigned lo, unsigned n) {
  assert(lo < 32 && lo + n <= 32);
  return (v >> lo) & low_mask(n);
}

constexpr bool bit(u32 v, unsigned i) {
  assert(i < 32);
  return (v >> i) & 1u;
}

constexpr u32 sign_extend(u32 v, unsigned from_bits) {
  assert(from_bits >= 1 && from_bits <= 32);
  if (from_bits == 32) return v;
  const u32 m = u32{1} << (from_bits - 1);
  return ((v & low_mask(from_bits)) ^ m) - m;
}

// Geometry of the bit-sliced datapath: how a 32-bit operand is decomposed.
struct SliceGeometry {
  unsigned count = 1;  // number of slices: 1 (atomic), 2, or 4 (8 supported)

  constexpr unsigned width() const { return kWordBits / count; }
  constexpr unsigned lo_bit(unsigned slice) const {
    assert(slice < count);
    return slice * width();
  }
  constexpr u32 mask(unsigned slice) const {
    return low_mask(width()) << lo_bit(slice);
  }
  // Which slice contains absolute bit position `b`.
  constexpr unsigned slice_of_bit(unsigned b) const {
    assert(b < kWordBits);
    return b / width();
  }
  constexpr bool valid() const {
    return count >= 1 && count <= kMaxSlices && (kWordBits % count) == 0;
  }
};

// Extract slice `s` of value v, right-aligned.
constexpr u32 slice_get(SliceGeometry g, u32 v, unsigned s) {
  return bits(v, g.lo_bit(s), g.width());
}

// Insert right-aligned slice value `sv` into position `s` of v.
constexpr u32 slice_set(SliceGeometry g, u32 v, unsigned s, u32 sv) {
  const u32 m = g.mask(s);
  return (v & ~m) | ((sv << g.lo_bit(s)) & m);
}

// Result of adding one slice with carry-in: the slice of the sum plus the
// carry-out that an adjacent higher slice needs. This is exactly the
// inter-slice dependence of paper Figure 8(b).
struct SliceAdd {
  u32 sum;     // right-aligned slice of the result
  bool carry;  // carry out of the slice's top bit
};

constexpr SliceAdd slice_add(SliceGeometry g, u32 a_slice, u32 b_slice,
                             bool carry_in) {
  const u32 w = g.width();
  const u64 s = u64{a_slice} + u64{b_slice} + (carry_in ? 1 : 0);
  return {static_cast<u32>(s) & low_mask(w), ((s >> w) & 1) != 0};
}

// Full 32-bit add decomposed into slices; returns final value. Used by tests
// to prove the sliced datapath equals the atomic one for all inputs.
constexpr u32 sliced_add(SliceGeometry g, u32 a, u32 b, bool carry_in = false) {
  u32 r = 0;
  bool c = carry_in;
  for (unsigned s = 0; s < g.count; ++s) {
    const SliceAdd sa = slice_add(g, slice_get(g, a, s), slice_get(g, b, s), c);
    r = slice_set(g, r, s, sa.sum);
    c = sa.carry;
  }
  return r;
}

// Subtraction as add of one's complement with carry-in 1 (how the sliced
// datapath implements it, so borrows ride the same carry chain).
constexpr u32 sliced_sub(SliceGeometry g, u32 a, u32 b) {
  return sliced_add(g, a, ~b, true);
}

// Number of low-order bits of `a` and `b` that are known to be equal, i.e.
// index of the lowest differing bit (32 if identical). The early branch
// resolution and LSQ disambiguation studies are built on this.
constexpr unsigned lowest_diff_bit(u32 a, u32 b) {
  const u32 x = a ^ b;
  return x == 0 ? 32u : static_cast<unsigned>(std::countr_zero(x));
}

// Do `a` and `b` agree on bits [lo, lo+n)?
constexpr bool match_bits(u32 a, u32 b, unsigned lo, unsigned n) {
  return bits(a, lo, n) == bits(b, lo, n);
}

constexpr bool is_pow2(u32 v) { return v != 0 && (v & (v - 1)) == 0; }

constexpr unsigned log2_exact(u32 v) {
  assert(is_pow2(v));
  return static_cast<unsigned>(std::countr_zero(v));
}

}  // namespace bsp
