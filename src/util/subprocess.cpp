#include "util/subprocess.hpp"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

namespace bsp {
namespace {

using Clock = std::chrono::steady_clock;

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

// Drains whatever is currently readable from `fd` into `dst` (respecting
// `cap`; excess is discarded with `truncated` set). Returns false once the
// fd hits EOF or a hard error — i.e. every writer closed its end.
bool drain(int fd, std::string* dst, std::size_t cap, bool* truncated) {
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n > 0) {
      const std::size_t room = dst->size() < cap ? cap - dst->size() : 0;
      if (room < static_cast<std::size_t>(n)) *truncated = true;
      dst->append(buf, std::min<std::size_t>(static_cast<std::size_t>(n),
                                             room));
      continue;
    }
    if (n == 0) return false;                       // EOF
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    if (errno == EINTR) continue;
    return false;                                   // hard error: give up
  }
}

SubprocessResult spawn_failure(std::string what) {
  SubprocessResult res;
  res.spawn_error = true;
  res.error = std::move(what) + ": " + std::strerror(errno);
  return res;
}

}  // namespace

SubprocessResult run_subprocess(const std::vector<std::string>& argv,
                                const SubprocessLimits& limits) {
  SubprocessResult res;
  if (argv.empty()) {
    res.spawn_error = true;
    res.error = "empty argv";
    return res;
  }

  int out_pipe[2], err_pipe[2];
  if (::pipe(out_pipe) != 0) return spawn_failure("pipe");
  if (::pipe(err_pipe) != 0) {
    const SubprocessResult r = spawn_failure("pipe");
    ::close(out_pipe[0]);
    ::close(out_pipe[1]);
    return r;
  }

  const pid_t pid = ::fork();
  if (pid < 0) {
    const SubprocessResult r = spawn_failure("fork");
    ::close(out_pipe[0]);
    ::close(out_pipe[1]);
    ::close(err_pipe[0]);
    ::close(err_pipe[1]);
    return r;
  }

  if (pid == 0) {
    // Child: wire the pipes to stdout/stderr, stdin from /dev/null, exec.
    ::dup2(out_pipe[1], STDOUT_FILENO);
    ::dup2(err_pipe[1], STDERR_FILENO);
    ::close(out_pipe[0]);
    ::close(out_pipe[1]);
    ::close(err_pipe[0]);
    ::close(err_pipe[1]);
    const int devnull = ::open("/dev/null", O_RDONLY);
    if (devnull >= 0) {
      ::dup2(devnull, STDIN_FILENO);
      ::close(devnull);
    }
    std::vector<char*> cargv;
    cargv.reserve(argv.size() + 1);
    for (const std::string& a : argv)
      cargv.push_back(const_cast<char*>(a.c_str()));
    cargv.push_back(nullptr);
    ::execvp(cargv[0], cargv.data());
    // Only reached when exec failed; report through the stderr pipe and
    // die with the conventional 127 without running any parent atexit code.
    const std::string msg =
        "exec failed: " + argv.front() + ": " + std::strerror(errno) + "\n";
    [[maybe_unused]] const ssize_t n =
        ::write(STDERR_FILENO, msg.data(), msg.size());
    ::_exit(127);
  }

  // Parent: read both pipes until EOF, enforcing the deadline; a child that
  // outlives it is SIGKILLed and then drained/reaped like any other.
  ::close(out_pipe[1]);
  ::close(err_pipe[1]);
  set_nonblocking(out_pipe[0]);
  set_nonblocking(err_pipe[0]);

  const bool have_deadline = limits.timeout_sec > 0;
  const Clock::time_point deadline =
      Clock::now() +
      std::chrono::duration_cast<Clock::duration>(std::chrono::duration<double>(
          have_deadline ? limits.timeout_sec : 0));
  constexpr std::size_t kErrCap = 64u << 10;
  bool err_truncated = false;
  bool out_open = true, err_open = true;
  bool killed = false, reaped = false;
  int status = 0;
  struct rusage ru;
  std::memset(&ru, 0, sizeof ru);
  // Pipe EOF alone is not a reliable end-of-child signal: a grandchild can
  // inherit the write ends and outlive a SIGKILLed child. So the loop polls
  // in bounded slices, reaps with WNOHANG, and once the child itself is
  // gone takes whatever is buffered and stops waiting.
  while (out_open || err_open) {
    if (have_deadline && !killed && Clock::now() >= deadline) {
      // Deadline expired: reclaim the core for real.
      ::kill(pid, SIGKILL);
      killed = true;
      res.timed_out = true;
    }
    int timeout_ms = 100;
    if (have_deadline && !killed) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - Clock::now());
      timeout_ms = static_cast<int>(
          std::min<long long>(100, std::max<long long>(0, left.count())));
    }
    struct pollfd fds[2];
    nfds_t nfds = 0;
    int out_idx = -1, err_idx = -1;
    if (out_open) {
      out_idx = static_cast<int>(nfds);
      fds[nfds++] = {out_pipe[0], POLLIN, 0};
    }
    if (err_open) {
      err_idx = static_cast<int>(nfds);
      fds[nfds++] = {err_pipe[0], POLLIN, 0};
    }
    const int rc = ::poll(fds, nfds, timeout_ms);
    if (rc < 0 && errno != EINTR) break;  // poll failure: reap and return
    if (rc > 0) {
      if (out_idx >= 0 &&
          (fds[out_idx].revents & (POLLIN | POLLHUP | POLLERR)))
        out_open = drain(out_pipe[0], &res.out, limits.max_output_bytes,
                         &res.out_truncated);
      if (err_idx >= 0 &&
          (fds[err_idx].revents & (POLLIN | POLLHUP | POLLERR)))
        err_open = drain(err_pipe[0], &res.err, kErrCap, &err_truncated);
    }
    if (!reaped && ::wait4(pid, &status, WNOHANG, &ru) == pid) reaped = true;
    if (reaped) {
      // The child is gone; everything it wrote is already in the pipe
      // buffers. Take it and stop — orphaned grandchildren holding the
      // write ends must not stall the campaign.
      if (out_open)
        drain(out_pipe[0], &res.out, limits.max_output_bytes,
              &res.out_truncated);
      if (err_open) drain(err_pipe[0], &res.err, kErrCap, &err_truncated);
      break;
    }
  }
  ::close(out_pipe[0]);
  ::close(err_pipe[0]);

  if (!reaped) {
    while (::wait4(pid, &status, 0, &ru) < 0 && errno == EINTR) {
    }
  }
  if (WIFEXITED(status)) {
    res.exit_code = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    res.signal = WTERMSIG(status);
  }
  res.max_rss_kb = ru.ru_maxrss;  // Linux reports ru_maxrss in KiB
  res.user_sec = static_cast<double>(ru.ru_utime.tv_sec) +
                 static_cast<double>(ru.ru_utime.tv_usec) / 1e6;
  res.sys_sec = static_cast<double>(ru.ru_stime.tv_sec) +
                static_cast<double>(ru.ru_stime.tv_usec) / 1e6;
  return res;
}

std::string signal_name(int sig) {
  switch (sig) {
    case SIGHUP: return "SIGHUP";
    case SIGINT: return "SIGINT";
    case SIGQUIT: return "SIGQUIT";
    case SIGILL: return "SIGILL";
    case SIGTRAP: return "SIGTRAP";
    case SIGABRT: return "SIGABRT";
    case SIGBUS: return "SIGBUS";
    case SIGFPE: return "SIGFPE";
    case SIGKILL: return "SIGKILL";
    case SIGSEGV: return "SIGSEGV";
    case SIGPIPE: return "SIGPIPE";
    case SIGALRM: return "SIGALRM";
    case SIGTERM: return "SIGTERM";
    case SIGXCPU: return "SIGXCPU";
    case SIGXFSZ: return "SIGXFSZ";
    default: return "signal " + std::to_string(sig);
  }
}

std::string self_exe_path(const char* argv0) {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (n > 0) {
    buf[n] = '\0';
    return buf;
  }
  return argv0 ? argv0 : "";
}

}  // namespace bsp
