#include "util/table.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <ostream>

namespace bsp {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  assert(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::num(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return buf;
}

std::string Table::pct(double fraction, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", prec, fraction * 100.0);
  return buf;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c)
      width[c] = std::max(width[c], r[c].size());

  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      os << r[c];
      if (c + 1 < r.size())
        os << std::string(width[c] - r[c].size() + 2, ' ');
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (auto w : width) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& r : rows_) emit(r);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      os << r[c];
      if (c + 1 < r.size()) os << ',';
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& r : rows_) emit(r);
}

}  // namespace bsp
