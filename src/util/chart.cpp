#include "util/chart.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <ostream>

namespace bsp {

namespace {

// Series glyphs, cycled; overlapping points show the later series.
constexpr char kGlyphs[] = {'*', 'o', '+', 'x', '#', '@', '%', '~'};

std::string format_num(double v) {
  char buf[32];
  if (std::abs(v) >= 100 || v == std::floor(v))
    std::snprintf(buf, sizeof buf, "%.0f", v);
  else
    std::snprintf(buf, sizeof buf, "%.2f", v);
  return buf;
}

}  // namespace

LineChart::LineChart(std::string title, unsigned width, unsigned height)
    : title_(std::move(title)), width_(width), height_(height) {
  assert(width_ >= 8 && height_ >= 4);
}

void LineChart::add_series(std::string name, std::vector<double> values) {
  series_.push_back({std::move(name), std::move(values)});
}

void LineChart::set_y_range(double lo, double hi) {
  fixed_range_ = true;
  y_lo_ = lo;
  y_hi_ = hi;
}

void LineChart::print(std::ostream& os) const {
  os << title_ << "\n";
  if (series_.empty()) {
    os << "  (no data)\n";
    return;
  }

  double lo = y_lo_, hi = y_hi_;
  std::size_t max_n = 0;
  if (!fixed_range_) {
    lo = series_[0].values.empty() ? 0.0 : series_[0].values[0];
    hi = lo;
    for (const auto& s : series_)
      for (const double v : s.values) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
  }
  for (const auto& s : series_) max_n = std::max(max_n, s.values.size());
  if (max_n == 0) {
    os << "  (no data)\n";
    return;
  }
  if (hi <= lo) hi = lo + 1;

  // Raster: rows top (hi) to bottom (lo).
  std::vector<std::string> raster(height_, std::string(width_, ' '));
  for (std::size_t si = 0; si < series_.size(); ++si) {
    const auto& vals = series_[si].values;
    if (vals.empty()) continue;
    const char glyph = kGlyphs[si % (sizeof kGlyphs)];
    for (unsigned col = 0; col < width_; ++col) {
      // Resample: nearest source index for this column.
      const std::size_t idx =
          vals.size() == 1
              ? 0
              : static_cast<std::size_t>(
                    std::llround(static_cast<double>(col) * (vals.size() - 1) /
                                 (width_ - 1)));
      const double v = std::clamp(vals[idx], lo, hi);
      const unsigned row = static_cast<unsigned>(std::llround(
          (hi - v) / (hi - lo) * (height_ - 1)));
      raster[row][col] = glyph;
    }
  }

  const std::string top = format_num(hi), bottom = format_num(lo);
  const std::size_t lw = std::max(top.size(), bottom.size());
  for (unsigned row = 0; row < height_; ++row) {
    std::string label(lw, ' ');
    if (row == 0) label = std::string(lw - top.size(), ' ') + top;
    if (row == height_ - 1)
      label = std::string(lw - bottom.size(), ' ') + bottom;
    os << label << " |" << raster[row] << "\n";
  }
  os << std::string(lw, ' ') << " +" << std::string(width_, '-') << "\n";
  if (!x_label_.empty())
    os << std::string(lw + 2, ' ') << x_label_ << "\n";
  // Legend.
  os << std::string(lw + 2, ' ');
  for (std::size_t si = 0; si < series_.size(); ++si) {
    os << kGlyphs[si % (sizeof kGlyphs)] << " " << series_[si].name
       << (si + 1 < series_.size() ? "   " : "");
  }
  os << "\n";
}

BarChart::BarChart(std::string title, unsigned width)
    : title_(std::move(title)), width_(width) {
  assert(width_ >= 8);
}

void BarChart::add_bar(std::string label, double value) {
  bars_.push_back({std::move(label), value});
}

void BarChart::print(std::ostream& os) const {
  os << title_ << "\n";
  if (bars_.empty()) {
    os << "  (no data)\n";
    return;
  }
  double hi = has_ref_ ? reference_ : 0;
  std::size_t lw = 0;
  for (const auto& b : bars_) {
    hi = std::max(hi, b.value);
    lw = std::max(lw, b.label.size());
  }
  if (hi <= 0) hi = 1;
  const unsigned ref_col =
      has_ref_ ? static_cast<unsigned>(std::llround(reference_ / hi *
                                                    (width_ - 1)))
               : width_;
  for (const auto& b : bars_) {
    const unsigned n = static_cast<unsigned>(
        std::llround(std::clamp(b.value, 0.0, hi) / hi * (width_ - 1)));
    std::string row(width_, ' ');
    for (unsigned i = 0; i < n; ++i) row[i] = '=';
    if (has_ref_ && ref_col < width_)
      row[ref_col] = row[ref_col] == '=' ? '#' : '|';
    os << "  " << b.label << std::string(lw - b.label.size(), ' ') << " |"
       << row << " " << format_num(b.value) << "\n";
  }
  if (has_ref_)
    os << "  " << std::string(lw, ' ') << "  ('|' marks "
       << format_num(reference_) << ")\n";
}

}  // namespace bsp
