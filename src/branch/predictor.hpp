// Branch prediction substrate per the paper's Table 2:
//   * 64k-entry gshare direction predictor (2-bit saturating counters)
//   * 4-way, 512-set BTB for taken-branch targets
//   * 8-entry return address stack
// A bimodal predictor is provided as a baseline for ablations.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "isa/isa.hpp"
#include "util/bitops.hpp"

namespace bsp {

// 2-bit saturating counter, initialised weakly not-taken.
class Counter2 {
 public:
  bool taken() const { return value_ >= 2; }
  void update(bool taken) {
    if (taken) {
      if (value_ < 3) ++value_;
    } else {
      if (value_ > 0) --value_;
    }
  }
  u8 raw() const { return value_; }

 private:
  u8 value_ = 1;
};

class DirectionPredictor {
 public:
  virtual ~DirectionPredictor() = default;
  virtual bool predict(u32 pc) const = 0;
  // In-order use (trace studies): trains the counter and advances any
  // global history in one step.
  virtual void update(u32 pc, bool taken) = 0;

  // Out-of-order use (the timing core): history is advanced *speculatively*
  // at fetch and repaired on a mispredict, while counters train at
  // resolution against the fetch-time history checkpoint.
  virtual u32 checkpoint() const { return 0; }
  virtual void speculate(bool /*predicted_taken*/) {}
  virtual void restore(u32 /*checkpoint*/, bool /*actual_taken*/) {}
  virtual void set_history(u32 /*checkpoint*/) {}
  virtual void train_at(u32 pc, u32 /*checkpoint*/, bool taken) {
    update(pc, taken);
  }
};

class BimodalPredictor final : public DirectionPredictor {
 public:
  explicit BimodalPredictor(unsigned entries = 4096);
  bool predict(u32 pc) const override;
  void update(u32 pc, bool taken) override;

 private:
  unsigned index(u32 pc) const { return (pc >> 2) & (u32(table_.size()) - 1); }
  std::vector<Counter2> table_;
};

class GsharePredictor final : public DirectionPredictor {
 public:
  explicit GsharePredictor(unsigned entries = 64 * 1024);
  bool predict(u32 pc) const override;
  void update(u32 pc, bool taken) override;  // also shifts global history
  u32 history() const { return history_; }

  u32 checkpoint() const override { return history_; }
  void speculate(bool predicted_taken) override {
    history_ = ((history_ << 1) | (predicted_taken ? 1 : 0)) & history_mask_;
  }
  void restore(u32 checkpoint, bool actual_taken) override {
    history_ = ((checkpoint << 1) | (actual_taken ? 1 : 0)) & history_mask_;
  }
  void set_history(u32 checkpoint) override {
    history_ = checkpoint & history_mask_;
  }
  void train_at(u32 pc, u32 checkpoint, bool taken) override {
    table_[((pc >> 2) ^ checkpoint) & (u32(table_.size()) - 1)].update(taken);
  }

 private:
  unsigned index(u32 pc) const {
    return ((pc >> 2) ^ history_) & (u32(table_.size()) - 1);
  }
  std::vector<Counter2> table_;
  u32 history_ = 0;
  u32 history_mask_;
};

// Branch target buffer: caches targets of taken control transfers so fetch
// can redirect without decoding. Tagged, set-associative, LRU.
class BranchTargetBuffer {
 public:
  BranchTargetBuffer(unsigned sets = 512, unsigned ways = 4);

  // Returns the cached target for pc, or nullopt on miss.
  std::optional<u32> lookup(u32 pc) const;
  void update(u32 pc, u32 target);

 private:
  struct Entry {
    bool valid = false;
    u32 tag = 0;
    u32 target = 0;
    u64 lru = 0;  // higher = more recently used
  };
  unsigned set_of(u32 pc) const { return (pc >> 2) & (sets_ - 1); }
  u32 tag_of(u32 pc) const { return pc >> (2 + log2_exact(sets_)); }

  unsigned sets_, ways_;
  std::vector<Entry> entries_;  // sets_ * ways_
  u64 tick_ = 0;

  Entry* way(unsigned set, unsigned w) { return &entries_[set * ways_ + w]; }
  const Entry* way(unsigned set, unsigned w) const {
    return &entries_[set * ways_ + w];
  }
};

class ReturnAddressStack {
 public:
  explicit ReturnAddressStack(unsigned depth = 8) : stack_(depth, 0) {}
  void push(u32 addr) {
    top_ = (top_ + 1) % stack_.size();
    stack_[top_] = addr;
    if (size_ < stack_.size()) ++size_;
  }
  std::optional<u32> pop() {
    if (size_ == 0) return std::nullopt;
    const u32 v = stack_[top_];
    top_ = (top_ + stack_.size() - 1) % stack_.size();
    --size_;
    return v;
  }
  unsigned size() const { return static_cast<unsigned>(size_); }

 private:
  std::vector<u32> stack_;
  std::size_t top_ = 0;
  std::size_t size_ = 0;
};

// Front-end predictor bundle: direction + target + RAS, with the policy the
// timing core and the trace studies share.
struct BranchPrediction {
  bool taken = false;
  u32 target = 0;            // valid when taken
  u32 history_checkpoint = 0;  // direction-history state before this branch
};

class FrontEndPredictor {
 public:
  struct Config {
    unsigned gshare_entries = 64 * 1024;
    unsigned btb_sets = 512;
    unsigned btb_ways = 4;
    unsigned ras_depth = 8;
    bool use_bimodal = false;  // ablation: bimodal instead of gshare
    unsigned bimodal_entries = 4096;
  };

  FrontEndPredictor() : FrontEndPredictor(Config{}) {}
  explicit FrontEndPredictor(const Config& cfg);

  // Predicts the successor of a decoded control instruction at `pc`.
  // (The simulated front end pre-decodes in Fetch2, so opcode class is
  // available to the predictor; this matches sim-outorder.)
  BranchPrediction predict(u32 pc, const DecodedInst& inst);

  // Resolves a control instruction: trains direction/target state. Pass the
  // history checkpoint the prediction reported so the same gshare index is
  // trained that was consulted.
  void resolve(u32 pc, const DecodedInst& inst, bool taken, u32 target,
               u32 history_checkpoint = 0);

  // Repairs the speculative direction history after a mispredict: the
  // branch's fetch-time checkpoint plus its actual outcome become the new
  // history (wiping wrong-path pollution). For non-conditional redirects
  // (jr), the checkpoint is restored as-is.
  void repair_history(u32 history_checkpoint, bool actual_taken);
  void repair_history_exact(u32 history_checkpoint);

  DirectionPredictor& direction() { return *dir_; }

 private:
  std::unique_ptr<DirectionPredictor> dir_;
  BranchTargetBuffer btb_;
  ReturnAddressStack ras_;
};

}  // namespace bsp
