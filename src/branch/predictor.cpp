#include "branch/predictor.hpp"

#include <cassert>

namespace bsp {

// ---------------------------------------------------------------------------
// Bimodal
// ---------------------------------------------------------------------------

BimodalPredictor::BimodalPredictor(unsigned entries) : table_(entries) {
  assert(is_pow2(entries));
}

bool BimodalPredictor::predict(u32 pc) const {
  return table_[index(pc)].taken();
}

void BimodalPredictor::update(u32 pc, bool taken) {
  table_[index(pc)].update(taken);
}

// ---------------------------------------------------------------------------
// Gshare
// ---------------------------------------------------------------------------

GsharePredictor::GsharePredictor(unsigned entries) : table_(entries) {
  assert(is_pow2(entries));
  history_mask_ = u32(entries) - 1;
}

bool GsharePredictor::predict(u32 pc) const {
  return table_[index(pc)].taken();
}

void GsharePredictor::update(u32 pc, bool taken) {
  table_[index(pc)].update(taken);
  history_ = ((history_ << 1) | (taken ? 1 : 0)) & history_mask_;
}

// ---------------------------------------------------------------------------
// BTB
// ---------------------------------------------------------------------------

BranchTargetBuffer::BranchTargetBuffer(unsigned sets, unsigned ways)
    : sets_(sets), ways_(ways), entries_(sets * ways) {
  assert(is_pow2(sets));
}

std::optional<u32> BranchTargetBuffer::lookup(u32 pc) const {
  const unsigned set = set_of(pc);
  const u32 tag = tag_of(pc);
  for (unsigned w = 0; w < ways_; ++w) {
    const Entry* e = way(set, w);
    if (e->valid && e->tag == tag) return e->target;
  }
  return std::nullopt;
}

void BranchTargetBuffer::update(u32 pc, u32 target) {
  const unsigned set = set_of(pc);
  const u32 tag = tag_of(pc);
  ++tick_;
  Entry* victim = way(set, 0);
  for (unsigned w = 0; w < ways_; ++w) {
    Entry* e = way(set, w);
    if (e->valid && e->tag == tag) {
      e->target = target;
      e->lru = tick_;
      return;
    }
    if (!e->valid) {
      victim = e;  // prefer an invalid way
    } else if (victim->valid && e->lru < victim->lru) {
      victim = e;
    }
  }
  victim->valid = true;
  victim->tag = tag;
  victim->target = target;
  victim->lru = tick_;
}

// ---------------------------------------------------------------------------
// Front-end bundle
// ---------------------------------------------------------------------------

FrontEndPredictor::FrontEndPredictor(const Config& cfg)
    : btb_(cfg.btb_sets, cfg.btb_ways), ras_(cfg.ras_depth) {
  if (cfg.use_bimodal)
    dir_ = std::make_unique<BimodalPredictor>(cfg.bimodal_entries);
  else
    dir_ = std::make_unique<GsharePredictor>(cfg.gshare_entries);
}

BranchPrediction FrontEndPredictor::predict(u32 pc, const DecodedInst& inst) {
  BranchPrediction p;
  p.history_checkpoint = dir_->checkpoint();
  switch (inst.cls()) {
    case ExecClass::Jump:
      p.taken = true;
      p.target = inst.branch_target(pc);
      if (inst.op == Op::JAL) ras_.push(pc + 4);
      return p;

    case ExecClass::JumpReg: {
      p.taken = true;
      // jr $ra is (by convention) a return: consult the RAS first.
      if (inst.op == Op::JR && inst.rs == R_RA) {
        if (const auto r = ras_.pop()) {
          p.target = *r;
          return p;
        }
      }
      if (inst.op == Op::JALR) ras_.push(pc + 4);
      if (const auto t = btb_.lookup(pc)) {
        p.target = *t;
      } else {
        // No target knowledge: fall through until resolution (modelled as a
        // "predicted" next-pc that the core will flush on).
        p.target = pc + 4;
      }
      return p;
    }

    case ExecClass::BranchEq:
    case ExecClass::BranchSign:
    case ExecClass::FpBranch: {
      p.taken = dir_->predict(pc);
      dir_->speculate(p.taken);
      if (p.taken) {
        if (const auto t = btb_.lookup(pc)) {
          p.target = *t;
        } else {
          // Direction says taken but the BTB has no target: the decoded
          // instruction carries the target (direct branch), use it. Real
          // hardware does this in decode; our front end pre-decodes.
          p.target = inst.branch_target(pc);
        }
      } else {
        p.target = pc + 4;
      }
      return p;
    }

    default:
      p.taken = false;
      p.target = pc + 4;
      return p;
  }
}

void FrontEndPredictor::resolve(u32 pc, const DecodedInst& inst, bool taken,
                                u32 target, u32 history_checkpoint) {
  if (inst.is_cond_branch()) {
    dir_->train_at(pc, history_checkpoint, taken);
    if (taken) btb_.update(pc, target);
  } else if (inst.cls() == ExecClass::JumpReg) {
    btb_.update(pc, target);
  }
}

void FrontEndPredictor::repair_history(u32 history_checkpoint,
                                       bool actual_taken) {
  dir_->restore(history_checkpoint, actual_taken);
}

void FrontEndPredictor::repair_history_exact(u32 history_checkpoint) {
  dir_->set_history(history_checkpoint);
}

}  // namespace bsp
