#include "asm/assembler.hpp"

#include <cassert>
#include <cctype>
#include <charconv>
#include <optional>

#include "isa/isa.hpp"

namespace bsp {

std::string AsmResult::error_text() const {
  std::string out;
  for (const auto& e : errors) {
    out += "line " + std::to_string(e.line) + ": " + e.message + "\n";
  }
  return out;
}

namespace {

// ---------------------------------------------------------------------------
// Tokenizer: splits one source line into label / mnemonic / operand tokens.
// ---------------------------------------------------------------------------

struct Line {
  unsigned number = 0;
  std::string label;                 // without ':'
  std::string mnemonic;              // instruction or directive (with '.')
  std::vector<std::string> operands; // comma-separated; "imm(reg)" kept whole
};

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.' ||
         c == '$' || c == '%';
}

std::optional<Line> tokenize(std::string_view text, unsigned number,
                             std::string* error) {
  // Strip comment.
  if (const auto hash = text.find('#'); hash != std::string_view::npos)
    text = text.substr(0, hash);

  Line line;
  line.number = number;
  std::size_t i = 0;
  const auto skip_ws = [&] {
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i])))
      ++i;
  };

  skip_ws();
  if (i >= text.size()) return std::nullopt;  // blank line

  // Optional label.
  {
    std::size_t j = i;
    while (j < text.size() && is_ident_char(text[j])) ++j;
    if (j < text.size() && text[j] == ':') {
      line.label = std::string(text.substr(i, j - i));
      i = j + 1;
      skip_ws();
    }
  }
  if (i >= text.size()) return line;  // label-only line

  // Mnemonic / directive.
  {
    std::size_t j = i;
    while (j < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[j])))
      ++j;
    line.mnemonic = std::string(text.substr(i, j - i));
    i = j;
  }

  // Operands: split on commas; quoted strings and parens kept intact.
  skip_ws();
  std::string cur;
  bool in_quote = false;
  for (; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quote) {
      cur += c;
      if (c == '"' && (cur.size() < 2 || cur[cur.size() - 2] != '\\'))
        in_quote = false;
      continue;
    }
    if (c == '"') {
      cur += c;
      in_quote = true;
    } else if (c == ',') {
      line.operands.push_back(cur);
      cur.clear();
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      cur += c;
    }
  }
  if (in_quote) {
    *error = "unterminated string literal";
    return line;
  }
  if (!cur.empty()) line.operands.push_back(cur);
  for (const auto& o : line.operands) {
    if (o.empty()) {
      *error = "empty operand (stray comma?)";
      break;
    }
  }
  return line;
}

// ---------------------------------------------------------------------------
// Assembler proper
// ---------------------------------------------------------------------------

enum class Section { Text, Data };

class Assembler {
 public:
  explicit Assembler(const AsmOptions& opts) {
    result_.program.text_base = opts.text_base;
    result_.program.data_base = opts.data_base;
    result_.program.entry = opts.text_base;
  }

  AsmResult run(std::string_view source) {
    std::vector<Line> lines = parse_lines(source);
    layout_pass(lines);
    if (result_.ok()) encode_pass(lines);
    if (result_.program.has_symbol("main"))
      result_.program.entry = result_.program.symbol("main");
    return std::move(result_);
  }

 private:
  AsmResult result_;
  Section section_ = Section::Text;
  u32 text_pc_ = 0;   // byte offset within text
  u32 data_pc_ = 0;   // byte offset within data

  void error(unsigned line, std::string msg) {
    result_.errors.push_back({line, std::move(msg)});
  }

  std::vector<Line> parse_lines(std::string_view source) {
    std::vector<Line> lines;
    unsigned number = 0;
    std::size_t pos = 0;
    while (pos <= source.size()) {
      const std::size_t nl = source.find('\n', pos);
      const std::string_view raw =
          source.substr(pos, nl == std::string_view::npos ? std::string_view::npos
                                                          : nl - pos);
      ++number;
      std::string err;
      if (auto line = tokenize(raw, number, &err)) {
        if (!err.empty()) error(number, err);
        lines.push_back(std::move(*line));
      }
      if (nl == std::string_view::npos) break;
      pos = nl + 1;
    }
    return lines;
  }

  // Number of instruction words a (pseudo-)instruction expands to. Fixed per
  // mnemonic so pass-1 layout is stable.
  static unsigned words_for(const std::string& mnemonic) {
    if (mnemonic == "li" || mnemonic == "la") return 2;
    return 1;
  }

  // --- pass 1: section layout + symbol table --------------------------------

  void layout_pass(const std::vector<Line>& lines) {
    section_ = Section::Text;
    text_pc_ = data_pc_ = 0;
    for (const auto& line : lines) {
      if (!line.label.empty()) define_label(line);
      if (line.mnemonic.empty()) continue;
      if (line.mnemonic[0] == '.') {
        layout_directive(line);
      } else {
        if (section_ != Section::Text) {
          error(line.number, "instruction outside .text section");
          continue;
        }
        text_pc_ += 4 * words_for(line.mnemonic);
      }
    }
  }

  void define_label(const Line& line) {
    auto& syms = result_.program.symbols;
    const u32 addr = section_ == Section::Text
                         ? result_.program.text_base + text_pc_
                         : result_.program.data_base + data_pc_;
    if (!syms.emplace(line.label, addr).second)
      error(line.number, "duplicate label '" + line.label + "'");
  }

  void layout_directive(const Line& line) {
    const std::string& d = line.mnemonic;
    if (d == ".text") { section_ = Section::Text; return; }
    if (d == ".data") { section_ = Section::Data; return; }
    if (d == ".globl" || d == ".global") return;
    if (section_ != Section::Data) {
      if (d == ".word" || d == ".half" || d == ".byte" || d == ".space" ||
          d == ".align" || d == ".asciiz")
        error(line.number, d + " outside .data section");
      else
        error(line.number, "unknown directive '" + d + "'");
      return;
    }
    if (d == ".word") { align_data(4); data_pc_ += 4 * count(line); return; }
    if (d == ".half") { align_data(2); data_pc_ += 2 * count(line); return; }
    if (d == ".byte") { data_pc_ += count(line); return; }
    if (d == ".space") {
      if (auto v = parse_plain_int(line.operands.empty() ? "" : line.operands[0]))
        data_pc_ += static_cast<u32>(*v);
      else
        error(line.number, ".space needs a size");
      return;
    }
    if (d == ".align") {
      if (auto v = parse_plain_int(line.operands.empty() ? "" : line.operands[0]))
        align_data(u32{1} << *v);
      else
        error(line.number, ".align needs a power");
      return;
    }
    if (d == ".asciiz") {
      data_pc_ += string_length(line) + 1;
      return;
    }
    error(line.number, "unknown directive '" + d + "'");
  }

  void align_data(u32 alignment) {
    data_pc_ = (data_pc_ + alignment - 1) & ~(alignment - 1);
  }

  static unsigned count(const Line& line) {
    return static_cast<unsigned>(line.operands.size());
  }

  u32 string_length(const Line& line) {
    if (line.operands.size() != 1) return 0;
    std::string decoded;
    if (!decode_string(line.operands[0], &decoded)) return 0;
    return static_cast<u32>(decoded.size());
  }

  static bool decode_string(const std::string& tok, std::string* out) {
    if (tok.size() < 2 || tok.front() != '"' || tok.back() != '"') return false;
    for (std::size_t i = 1; i + 1 < tok.size(); ++i) {
      char c = tok[i];
      if (c == '\\' && i + 2 < tok.size()) {
        ++i;
        switch (tok[i]) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case '0': c = '\0'; break;
          case '\\': c = '\\'; break;
          case '"': c = '"'; break;
          default: return false;
        }
      }
      out->push_back(c);
    }
    return true;
  }

  // --- value parsing ----------------------------------------------------------

  static std::optional<i64> parse_plain_int(std::string_view s) {
    if (s.empty()) return std::nullopt;
    bool neg = false;
    if (s.front() == '-') { neg = true; s.remove_prefix(1); }
    else if (s.front() == '+') { s.remove_prefix(1); }
    if (s.empty()) return std::nullopt;
    int base = 10;
    if (s.size() > 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) {
      base = 16;
      s.remove_prefix(2);
    }
    u64 v = 0;
    const auto [ptr, ec] =
        std::from_chars(s.data(), s.data() + s.size(), v, base);
    if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
    return neg ? -static_cast<i64>(v) : static_cast<i64>(v);
  }

  // Resolves an operand to a 32-bit value: integer literal, label,
  // label+offset, label-offset, %hi(x), %lo(x).
  std::optional<u32> eval(const std::string& tok, unsigned line) {
    if (tok.rfind("%hi(", 0) == 0 && tok.back() == ')') {
      if (auto v = eval(tok.substr(4, tok.size() - 5), line))
        return (*v >> 16) & 0xffffu;
      return std::nullopt;
    }
    if (tok.rfind("%lo(", 0) == 0 && tok.back() == ')') {
      if (auto v = eval(tok.substr(4, tok.size() - 5), line))
        return *v & 0xffffu;
      return std::nullopt;
    }
    if (auto v = parse_plain_int(tok)) return static_cast<u32>(*v);
    // label[+-]offset
    std::size_t split = tok.npos;
    for (std::size_t i = 1; i < tok.size(); ++i)
      if (tok[i] == '+' || tok[i] == '-') { split = i; break; }
    const std::string base = tok.substr(0, split);
    const auto it = result_.program.symbols.find(base);
    if (it == result_.program.symbols.end()) {
      error(line, "unknown symbol '" + base + "'");
      return std::nullopt;
    }
    u32 value = it->second;
    if (split != tok.npos) {
      const auto off = parse_plain_int(std::string_view(tok).substr(split));
      if (!off) {
        error(line, "bad offset in '" + tok + "'");
        return std::nullopt;
      }
      value += static_cast<u32>(*off);
    }
    return value;
  }

  unsigned reg_operand(const Line& line, std::size_t idx) {
    if (idx >= line.operands.size()) {
      error(line.number, "missing register operand");
      return 0;
    }
    if (auto r = parse_reg(line.operands[idx])) return *r;
    error(line.number, "bad register '" + line.operands[idx] + "'");
    return 0;
  }

  unsigned fp_reg_operand(const Line& line, std::size_t idx) {
    if (idx >= line.operands.size()) {
      error(line.number, "missing FP register operand");
      return 0;
    }
    if (auto r = parse_fp_reg(line.operands[idx])) return *r;
    error(line.number, "bad FP register '" + line.operands[idx] + "'");
    return 0;
  }

  // --- pass 2: encoding -------------------------------------------------------

  void encode_pass(const std::vector<Line>& lines) {
    section_ = Section::Text;
    text_pc_ = data_pc_ = 0;
    auto& prog = result_.program;
    for (const auto& line : lines) {
      if (line.mnemonic.empty()) continue;
      if (line.mnemonic[0] == '.') {
        encode_directive(line);
        continue;
      }
      if (section_ != Section::Text) continue;  // error already reported
      encode_instruction(line);
    }
    (void)prog;
  }

  void emit(u32 word) {
    result_.program.text.push_back(word);
    text_pc_ += 4;
  }

  void data_bytes(const void* p, std::size_t n) {
    auto& data = result_.program.data;
    if (data.size() < data_pc_) data.resize(data_pc_, 0);
    const u8* b = static_cast<const u8*>(p);
    data.insert(data.end(), b, b + n);
    data_pc_ += static_cast<u32>(n);
  }

  void data_pad_to(u32 target) {
    auto& data = result_.program.data;
    if (data.size() < target) data.resize(target, 0);
    data_pc_ = target;
  }

  void encode_directive(const Line& line) {
    const std::string& d = line.mnemonic;
    if (d == ".text") { section_ = Section::Text; return; }
    if (d == ".data") { section_ = Section::Data; return; }
    if (d == ".globl" || d == ".global") return;
    if (section_ != Section::Data) return;
    if (d == ".word") {
      data_pad_to((data_pc_ + 3) & ~3u);
      for (const auto& t : line.operands) {
        const u32 v = eval(t, line.number).value_or(0);
        data_bytes(&v, 4);  // little-endian host == little-endian target
      }
      return;
    }
    if (d == ".half") {
      data_pad_to((data_pc_ + 1) & ~1u);
      for (const auto& t : line.operands) {
        const u16 v = static_cast<u16>(eval(t, line.number).value_or(0));
        data_bytes(&v, 2);
      }
      return;
    }
    if (d == ".byte") {
      for (const auto& t : line.operands) {
        const u8 v = static_cast<u8>(eval(t, line.number).value_or(0));
        data_bytes(&v, 1);
      }
      return;
    }
    if (d == ".space") {
      const auto n = parse_plain_int(line.operands.empty() ? "" : line.operands[0]);
      data_pad_to(data_pc_ + static_cast<u32>(n.value_or(0)));
      return;
    }
    if (d == ".align") {
      const auto p = parse_plain_int(line.operands.empty() ? "" : line.operands[0]);
      const u32 a = u32{1} << p.value_or(0);
      data_pad_to((data_pc_ + a - 1) & ~(a - 1));
      return;
    }
    if (d == ".asciiz") {
      std::string s;
      if (line.operands.size() == 1 && decode_string(line.operands[0], &s)) {
        s.push_back('\0');
        data_bytes(s.data(), s.size());
      } else {
        error(line.number, ".asciiz needs one string literal");
      }
      return;
    }
  }

  // Branch offset (in words) from the *next* instruction to `target`.
  std::optional<i32> branch_offset(u32 target, unsigned line) {
    const u32 pc = result_.program.text_base + text_pc_;
    const i64 delta = static_cast<i64>(target) - static_cast<i64>(pc + 4);
    if (delta % 4 != 0) {
      error(line, "branch target not word-aligned");
      return std::nullopt;
    }
    const i64 words = delta / 4;
    if (words < -32768 || words > 32767) {
      error(line, "branch target out of range");
      return std::nullopt;
    }
    return static_cast<i32>(words);
  }

  bool check_imm16(i64 v, ImmKind kind, unsigned line) {
    const bool ok = kind == ImmKind::Zero ? (v >= 0 && v <= 0xffff)
                                          : (v >= -32768 && v <= 65535);
    if (!ok) error(line, "immediate " + std::to_string(v) + " out of range");
    return ok;
  }

  void encode_instruction(const Line& line) {
    const std::string& m = line.mnemonic;

    // --- pseudo-instructions (fixed expansion sizes, see words_for) ---
    if (m == "nop") { emit(make_nop().raw); return; }
    if (m == "move") {
      const unsigned rd = reg_operand(line, 0), rs = reg_operand(line, 1);
      emit(make_r3(Op::ADDU, rd, rs, R_ZERO).raw);
      return;
    }
    if (m == "li" || m == "la") {
      const unsigned rt = reg_operand(line, 0);
      const u32 v = line.operands.size() > 1
                        ? eval(line.operands[1], line.number).value_or(0)
                        : (error(line.number, m + " needs a value"), 0u);
      emit(make_lui(rt, v >> 16).raw);
      emit(make_iarith(Op::ORI, rt, rt, v & 0xffffu).raw);
      return;
    }
    if (m == "b") {
      const u32 target = line.operands.empty()
                             ? 0
                             : eval(line.operands[0], line.number).value_or(0);
      if (auto off = branch_offset(target, line.number))
        emit(make_br2(Op::BEQ, R_ZERO, R_ZERO, *off).raw);
      return;
    }
    if (m == "beqz" || m == "bnez") {
      const unsigned rs = reg_operand(line, 0);
      const u32 target = line.operands.size() > 1
                             ? eval(line.operands[1], line.number).value_or(0)
                             : 0;
      if (auto off = branch_offset(target, line.number))
        emit(make_br2(m == "beqz" ? Op::BEQ : Op::BNE, rs, R_ZERO, *off).raw);
      return;
    }

    // --- native instructions ---
    const auto op = op_from_mnemonic(m);
    if (!op) {
      error(line.number, "unknown mnemonic '" + m + "'");
      return;
    }
    const OpInfo& info = op_info(*op);
    const auto expect = [&](std::size_t n) {
      if (line.operands.size() != n) {
        error(line.number, m + " expects " + std::to_string(n) + " operands");
        return false;
      }
      return true;
    };
    switch (info.sig) {
      case OperandSig::R3:
        if (!expect(3)) return;
        emit(make_r3(*op, reg_operand(line, 0), reg_operand(line, 1),
                     reg_operand(line, 2)).raw);
        return;
      case OperandSig::ShiftImm: {
        if (!expect(3)) return;
        const auto sh = parse_plain_int(line.operands[2]);
        if (!sh || *sh < 0 || *sh > 31) {
          error(line.number, "shift amount must be 0..31");
          return;
        }
        emit(make_shift_imm(*op, reg_operand(line, 0), reg_operand(line, 1),
                            static_cast<unsigned>(*sh)).raw);
        return;
      }
      case OperandSig::ShiftVar:
        if (!expect(3)) return;
        emit(make_shift_var(*op, reg_operand(line, 0), reg_operand(line, 1),
                            reg_operand(line, 2)).raw);
        return;
      case OperandSig::RsRt:
        if (!expect(2)) return;
        emit(make_rsrt(*op, reg_operand(line, 0), reg_operand(line, 1)).raw);
        return;
      case OperandSig::Rd:
        if (!expect(1)) return;
        emit(make_rd(*op, reg_operand(line, 0)).raw);
        return;
      case OperandSig::Rs:
        if (!expect(1)) return;
        emit(make_jr(reg_operand(line, 0)).raw);
        return;
      case OperandSig::RdRs:
        if (line.operands.size() == 1) {
          emit(make_jalr(R_RA, reg_operand(line, 0)).raw);
        } else if (expect(2)) {
          emit(make_jalr(reg_operand(line, 0), reg_operand(line, 1)).raw);
        }
        return;
      case OperandSig::NoOps:
        if (!expect(0)) return;
        emit(make_syscall().raw);
        return;
      case OperandSig::IArith: {
        if (!expect(3)) return;
        const auto v = eval(line.operands[2], line.number);
        if (!v) return;
        if (!check_imm16(static_cast<i32>(*v), info.imm, line.number)) return;
        emit(make_iarith(*op, reg_operand(line, 0), reg_operand(line, 1),
                         *v & 0xffffu).raw);
        return;
      }
      case OperandSig::Lui: {
        if (!expect(2)) return;
        const auto v = eval(line.operands[1], line.number);
        if (!v) return;
        emit(make_lui(reg_operand(line, 0), *v & 0xffffu).raw);
        return;
      }
      case OperandSig::Mem: {
        if (!expect(2)) return;
        // "imm(reg)" or "(reg)"; the offset may itself contain parens
        // (%lo(sym)), so the base register starts at the *last* '('.
        const std::string& a = line.operands[1];
        const auto open = a.rfind('(');
        if (open == a.npos || a.back() != ')') {
          error(line.number, "memory operand must be offset(reg)");
          return;
        }
        i64 off = 0;
        if (open > 0) {
          const auto v = eval(a.substr(0, open), line.number);
          if (!v) return;
          off = static_cast<i32>(*v);
        }
        if (off < -32768 || off > 32767) {
          error(line.number, "memory offset out of range");
          return;
        }
        const auto base = parse_reg(a.substr(open + 1, a.size() - open - 2));
        if (!base) {
          error(line.number, "bad base register in '" + a + "'");
          return;
        }
        emit(make_mem(*op, reg_operand(line, 0), *base,
                      static_cast<i32>(off)).raw);
        return;
      }
      case OperandSig::Br2: {
        if (!expect(3)) return;
        const auto target = eval(line.operands[2], line.number);
        if (!target) return;
        if (auto off = branch_offset(*target, line.number))
          emit(make_br2(*op, reg_operand(line, 0), reg_operand(line, 1),
                        *off).raw);
        return;
      }
      case OperandSig::Br1: {
        if (!expect(2)) return;
        const auto target = eval(line.operands[1], line.number);
        if (!target) return;
        if (auto off = branch_offset(*target, line.number))
          emit(make_br1(*op, reg_operand(line, 0), *off).raw);
        return;
      }
      case OperandSig::JTarget: {
        if (!expect(1)) return;
        const auto target = eval(line.operands[0], line.number);
        if (!target) return;
        emit(make_jump(*op, *target).raw);
        return;
      }
      case OperandSig::FpR3:
        if (!expect(3)) return;
        emit(make_fp3(*op, fp_reg_operand(line, 0), fp_reg_operand(line, 1),
                      fp_reg_operand(line, 2)).raw);
        return;
      case OperandSig::FpR2:
        if (!expect(2)) return;
        emit(make_fp2(*op, fp_reg_operand(line, 0),
                      fp_reg_operand(line, 1)).raw);
        return;
      case OperandSig::FpCmp:
        if (!expect(2)) return;
        emit(make_fpcmp(*op, fp_reg_operand(line, 0),
                        fp_reg_operand(line, 1)).raw);
        return;
      case OperandSig::Mfc1:
        if (!expect(2)) return;
        emit(make_mfc1(reg_operand(line, 0), fp_reg_operand(line, 1)).raw);
        return;
      case OperandSig::Mtc1:
        if (!expect(2)) return;
        emit(make_mtc1(reg_operand(line, 0), fp_reg_operand(line, 1)).raw);
        return;
      case OperandSig::FpMem: {
        if (!expect(2)) return;
        const std::string& a = line.operands[1];
        const auto open = a.rfind('(');
        if (open == a.npos || a.back() != ')') {
          error(line.number, "memory operand must be offset(reg)");
          return;
        }
        i64 off = 0;
        if (open > 0) {
          const auto v = eval(a.substr(0, open), line.number);
          if (!v) return;
          off = static_cast<i32>(*v);
        }
        if (off < -32768 || off > 32767) {
          error(line.number, "memory offset out of range");
          return;
        }
        const auto base = parse_reg(a.substr(open + 1, a.size() - open - 2));
        if (!base) {
          error(line.number, "bad base register in '" + a + "'");
          return;
        }
        emit(make_fpmem(*op, fp_reg_operand(line, 0), *base,
                        static_cast<i32>(off)).raw);
        return;
      }
      case OperandSig::FpBr: {
        if (!expect(1)) return;
        const auto target = eval(line.operands[0], line.number);
        if (!target) return;
        if (auto off = branch_offset(*target, line.number))
          emit(make_fpbr(*op, *off).raw);
        return;
      }
    }
  }
};

}  // namespace

AsmResult assemble(std::string_view source, const AsmOptions& opts) {
  return Assembler(opts).run(source);
}

}  // namespace bsp
