// Two-pass assembler for the BSP-32 ISA.
//
// Supports:
//   * sections:    .text  .data
//   * labels:      `name:` (text labels become code addresses, data labels
//                  data addresses)
//   * directives:  .word .half .byte .space .align .asciiz .globl (ignored)
//   * all native instructions per OperandSig (see isa/opcodes.def)
//   * pseudo-instructions: nop, move, li, la, b, beqz, bnez
//   * operands:    registers ($t0 / $8 / t0), decimal/hex immediates,
//                  labels, label+offset, %hi(label), %lo(label)
//   * comments:    `#` to end of line
//
// Pass 1 lays out sections and records label addresses (pseudo-instruction
// expansions have fixed sizes so layout is stable); pass 2 encodes.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "asm/program.hpp"

namespace bsp {

struct AsmError {
  unsigned line = 0;        // 1-based source line
  std::string message;
};

struct AsmResult {
  Program program;
  std::vector<AsmError> errors;
  bool ok() const { return errors.empty(); }
  // All error messages joined, for test assertions and CLI output.
  std::string error_text() const;
};

struct AsmOptions {
  u32 text_base = kDefaultTextBase;
  u32 data_base = kDefaultDataBase;
};

AsmResult assemble(std::string_view source, const AsmOptions& opts = {});

}  // namespace bsp
