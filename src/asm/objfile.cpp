#include "asm/objfile.hpp"

#include <fstream>
#include <istream>
#include <ostream>

namespace bsp {

namespace {

constexpr u32 kMagic = 0x4f505342;  // "BSPO"
constexpr u32 kVersion = 1;

// Guards against absurd allocations from corrupt headers.
constexpr u32 kMaxTextWords = 1u << 24;
constexpr u32 kMaxDataBytes = 1u << 28;
constexpr u32 kMaxSymbols = 1u << 20;
constexpr u32 kMaxNameLen = 4096;

void put_u32(std::ostream& os, u32 v) {
  const char bytes[4] = {
      static_cast<char>(v), static_cast<char>(v >> 8),
      static_cast<char>(v >> 16), static_cast<char>(v >> 24)};
  os.write(bytes, 4);
}

bool get_u32(std::istream& is, u32* v) {
  unsigned char bytes[4];
  if (!is.read(reinterpret_cast<char*>(bytes), 4)) return false;
  *v = u32{bytes[0]} | (u32{bytes[1]} << 8) | (u32{bytes[2]} << 16) |
       (u32{bytes[3]} << 24);
  return true;
}

std::optional<Program> fail(std::string* error, const char* why) {
  if (error) *error = why;
  return std::nullopt;
}

}  // namespace

bool save_object(const Program& program, std::ostream& os) {
  put_u32(os, kMagic);
  put_u32(os, kVersion);
  put_u32(os, program.entry);
  put_u32(os, program.text_base);
  put_u32(os, static_cast<u32>(program.text.size()));
  put_u32(os, program.data_base);
  put_u32(os, static_cast<u32>(program.data.size()));
  put_u32(os, static_cast<u32>(program.symbols.size()));
  for (const u32 w : program.text) put_u32(os, w);
  if (!program.data.empty())
    os.write(reinterpret_cast<const char*>(program.data.data()),
             static_cast<std::streamsize>(program.data.size()));
  for (const auto& [name, addr] : program.symbols) {
    put_u32(os, static_cast<u32>(name.size()));
    os.write(name.data(), static_cast<std::streamsize>(name.size()));
    put_u32(os, addr);
  }
  return static_cast<bool>(os);
}

std::optional<Program> load_object(std::istream& is, std::string* error) {
  u32 magic = 0, version = 0;
  if (!get_u32(is, &magic) || magic != kMagic)
    return fail(error, "not a BSPO object file");
  if (!get_u32(is, &version) || version != kVersion)
    return fail(error, "unsupported BSPO version");

  Program p;
  u32 text_words = 0, data_bytes = 0, symbol_count = 0;
  if (!get_u32(is, &p.entry) || !get_u32(is, &p.text_base) ||
      !get_u32(is, &text_words) || !get_u32(is, &p.data_base) ||
      !get_u32(is, &data_bytes) || !get_u32(is, &symbol_count))
    return fail(error, "truncated header");
  if (text_words > kMaxTextWords || data_bytes > kMaxDataBytes ||
      symbol_count > kMaxSymbols)
    return fail(error, "implausible section sizes");

  p.text.resize(text_words);
  for (u32& w : p.text)
    if (!get_u32(is, &w)) return fail(error, "truncated text section");
  p.data.resize(data_bytes);
  if (data_bytes &&
      !is.read(reinterpret_cast<char*>(p.data.data()), data_bytes))
    return fail(error, "truncated data section");

  for (u32 i = 0; i < symbol_count; ++i) {
    u32 len = 0, addr = 0;
    if (!get_u32(is, &len) || len > kMaxNameLen)
      return fail(error, "bad symbol record");
    std::string name(len, '\0');
    if (len && !is.read(name.data(), len))
      return fail(error, "truncated symbol name");
    if (!get_u32(is, &addr)) return fail(error, "truncated symbol address");
    p.symbols.emplace(std::move(name), addr);
  }
  return p;
}

bool save_object_file(const Program& program, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  return os && save_object(program, os);
}

std::optional<Program> load_object_file(const std::string& path,
                                        std::string* error) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    if (error) *error = "cannot open " + path;
    return std::nullopt;
  }
  return load_object(is, error);
}

}  // namespace bsp
