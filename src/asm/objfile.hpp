// Binary object-file format for assembled programs ("BSPO"), so kernels can
// be assembled once with the bsp-asm tool and re-run by bsp-run / bsp-sim
// without carrying the source around.
//
// Layout (all little-endian u32 unless noted):
//   magic "BSPO", version,
//   entry, text_base, text_words, data_base, data_bytes, symbol_count,
//   text words..., data bytes..., symbols (u32 name_len, name, u32 addr)...
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "asm/program.hpp"

namespace bsp {

// Serialises `program` to `os`. Returns false on stream failure.
bool save_object(const Program& program, std::ostream& os);

// Reads a program back; returns nullopt (and fills *error, if given) on a
// malformed image or stream failure.
std::optional<Program> load_object(std::istream& is,
                                   std::string* error = nullptr);

// File-path convenience wrappers.
bool save_object_file(const Program& program, const std::string& path);
std::optional<Program> load_object_file(const std::string& path,
                                        std::string* error = nullptr);

}  // namespace bsp
