// A loaded/assembled program image: text + data segments, entry point, and
// the symbol table. Shared between the assembler, the emulator loader, the
// workload generators and the tests.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "util/bitops.hpp"

namespace bsp {

inline constexpr u32 kDefaultTextBase = 0x00400000;
inline constexpr u32 kDefaultDataBase = 0x10000000;
inline constexpr u32 kDefaultStackTop = 0x7fffc000;

struct Program {
  u32 text_base = kDefaultTextBase;
  std::vector<u32> text;  // one encoded instruction per word

  u32 data_base = kDefaultDataBase;
  std::vector<u8> data;

  u32 entry = kDefaultTextBase;
  std::map<std::string, u32> symbols;

  u32 text_end() const {
    return text_base + static_cast<u32>(text.size()) * 4;
  }
  u32 data_end() const {
    return data_base + static_cast<u32>(data.size());
  }
  // Address of a symbol; asserts it exists (tests use the throwing lookup).
  u32 symbol(const std::string& name) const {
    const auto it = symbols.find(name);
    return it == symbols.end() ? 0 : it->second;
  }
  bool has_symbol(const std::string& name) const {
    return symbols.count(name) != 0;
  }
};

}  // namespace bsp
