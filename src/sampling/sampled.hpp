// Sampled-simulation engine: one long detailed run, sharded into K
// intervals and simulated in parallel.
//
// Pipeline (ARCHITECTURE.md §12):
//  1. plan    — plan_intervals() splits the measured region into K
//               contiguous chunks (sampling/plan.hpp);
//  2. prewarm — one *incremental* emulator pass materialises a BSPC
//               checkpoint at every distinct interval offset: ascending
//               offsets share a single functional execution (restore an
//               already-cached checkpoint to skip ahead, run_fast the
//               gaps), and each capture publishes atomically into the
//               campaign checkpoint cache so concurrent runs and worker
//               subprocesses share it;
//  3. workers — each interval restores its checkpoint, runs its warm-up
//               commits with statistics discarded, then detail-simulates
//               its chunk. Thread pool by default (util/parallel.hpp);
//               with SampleOptions::worker_cmd set, one subprocess per
//               interval (util/subprocess.hpp) for crash/timeout
//               containment — the worker prints its IntervalResult as a
//               single JSONL line on stdout (bsp-sim's hidden
//               --sample-worker flag implements this protocol);
//  4. stitch  — SimStats::merge folds the K measured chunks into one
//               aggregate, and estimate_ipc() puts a Student-t 95%
//               confidence interval on the per-interval IPC mean
//               (sampling/stitch.hpp).
//
// Determinism: the plan, every checkpoint, and every interval's measured
// SimStats depend only on (config, program, seed, M, W, FF, K, N) — never
// on thread scheduling — so per-interval stats are bit-stable across
// reruns and across thread/process modes. Host-side times (host_sec,
// prewarm_sec, wall_sec) are the only nondeterministic fields.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "config/machine_config.hpp"
#include "core/simulator.hpp"
#include "sampling/plan.hpp"
#include "sampling/stitch.hpp"

namespace bsp::sampling {

struct SampleOptions {
  unsigned intervals = 8;  // K
  u64 warmup = 2000;       // N: per-interval warm-up commits (intervals > 0;
                           // interval 0 always keeps the monolithic warm-up)
  unsigned jobs = 0;       // worker parallelism (0 = hardware concurrency)
  // Shared checkpoint cache directory ("" = in-memory checkpoints only;
  // required for process isolation, since workers restore from disk).
  std::string ckpt_cache_dir;
  // Non-empty => process isolation: argv prefix of the worker command; the
  // engine appends the interval index as the final argument. The worker
  // prints interval_to_jsonl() on stdout.
  std::vector<std::string> worker_cmd;
  double timeout_sec = 0;    // per-interval wall clock (process mode only)
  bool host_profile = false; // per-interval host-phase profiles
  // CPI-stack accounting per interval (Simulator::enable_cpi_stack): the
  // leaves are registered counters, so stitching merges them additively
  // and the aggregate keeps the identity sum(cpi_*) == cycles * width.
  bool cpi_stack = false;
  // Co-simulation cadence for every interval (core/simulator.hpp). Pure
  // check: interval stats are bit-identical across modes. In process mode
  // the worker command line must carry the matching --cosim flag (bsp-sim
  // forwards its own raw argv, so this happens automatically).
  SimOptions sim;
};

// Prewarm outcome: checkpoints by functional offset. An offset missing
// from `by_offset` means the program exited/faulted before reaching it —
// its intervals are recorded as skipped, not failed.
struct PrewarmResult {
  std::size_t materialised = 0;  // captured + published this call
  std::size_t reused = 0;        // loaded from an existing cache file
  double ffwd_sec = 0;           // host seconds in the functional pass
  std::string error;             // non-empty on fatal failure (publish I/O)
  std::map<u64, std::shared_ptr<const Checkpoint>> by_offset;

  bool ok() const { return error.empty(); }
};

// Materialises one checkpoint per distinct nonzero offset in `plan`, in
// one incremental emulator pass (offset 0 needs none: detail starts at
// reset). With a cache dir, existing files are restored instead of
// re-emulated and fresh captures are published atomically.
PrewarmResult materialise_interval_checkpoints(const Program& program,
                                               const std::string& workload,
                                               u64 seed,
                                               const SamplePlan& plan,
                                               const std::string& cache_dir);

// Runs one interval in-process: restore `start` (null iff spec.offset ==
// 0), discard spec.warmup commits, measure spec.commits. The worker entry
// point and the thread-mode body.
IntervalResult run_one_interval(const MachineConfig& config,
                                const Program& program,
                                const IntervalSpec& spec,
                                const Checkpoint* start, bool host_profile,
                                bool cpi_stack = false,
                                const SimOptions& sim = SimOptions{});

// One IntervalResult as a single JSON line (no trailing newline): the
// process-worker protocol and the per-interval record format the tools
// write. Counters appear under "stats" in registry order, like the
// campaign store's records.
std::string interval_to_jsonl(const IntervalResult& r);

// Parses an interval_to_jsonl() line. False on torn/garbage lines, with
// *error describing why.
bool interval_from_jsonl(const std::string& line, IntervalResult* out,
                         std::string* error);

struct SampledResult {
  SamplePlan plan;
  std::vector<IntervalResult> intervals;  // index-aligned with the plan
  SimStats aggregate;  // stitched measured stats (host_seconds = serial sum)
  IpcEstimate ipc;     // weighted + mean ± ci95
  bool exited = false;       // program exited inside (or before) an interval
  int exit_code = 0;
  std::string error;         // non-empty when any interval failed
  std::size_t ckpt_materialised = 0;  // prewarm traffic
  std::size_t ckpt_reused = 0;
  double prewarm_sec = 0;    // functional prewarm host seconds
  double wall_sec = 0;       // end-to-end wall clock (prewarm + workers)

  bool ok() const { return error.empty(); }
};

// The engine: plan, prewarm, run every interval (parallel), stitch.
SampledResult run_sampled(const MachineConfig& config, const Program& program,
                          const std::string& workload, u64 seed,
                          u64 max_commits, u64 warmup, u64 fast_forward,
                          const SampleOptions& opts);

}  // namespace bsp::sampling
