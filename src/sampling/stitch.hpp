// Stitcher for sampled simulation: folds per-interval SimStats into one
// aggregate and puts an error bound on the headline IPC.
//
// Two IPC figures come out of a K-interval run:
//  * `weighted` — sum(committed) / sum(cycles) over all measured
//    intervals: the IPC of the stitched stream, the direct analogue of
//    the monolithic run's ipc() (and exactly it when K = 1).
//  * `mean` ± `ci95` — the unweighted mean of per-interval IPCs with a
//    Student-t 95% confidence half-width (t_{0.975, K-1} * s / sqrt(K)).
//    Treating the K interval IPCs as samples of the program's IPC over
//    time, the CI bounds how far the estimate can sit from the long-run
//    value; the CI acceptance check asserts the monolithic IPC falls
//    inside it. Intervals here are contiguous and exhaustive (coverage =
//    100%), so unlike true sparse sampling the CI is a self-consistency
//    bound on warm-up error plus phase variance, not an extrapolation
//    bound — ARCHITECTURE.md §12 spells out the methodology.
#pragma once

#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "sampling/plan.hpp"

namespace bsp::sampling {

// One interval's outcome (worker output / stitcher input).
struct IntervalResult {
  IntervalSpec spec;
  SimStats stats;        // measured-region stats (valid when ok())
  std::string error;     // non-empty on failure (co-sim divergence, ...)
  bool skipped = false;  // program exited before this interval's offset
  bool exited = false;   // program exited inside this interval
  int exit_code = 0;
  double host_sec = 0;   // wall seconds this interval's worker spent

  bool ok() const { return error.empty(); }
  bool measured() const { return ok() && !skipped; }
};

// Student-t distribution 97.5% quantile (two-sided 95%) for `df` degrees
// of freedom; df >= 31 returns the normal approximation 1.96, df == 0
// (single sample: no variance estimate) returns +inf semantics via a
// large sentinel documented at the definition.
double t_critical_975(unsigned df);

struct IpcEstimate {
  unsigned n = 0;       // measured intervals contributing
  double weighted = 0;  // sum(committed) / sum(cycles)
  double mean = 0;      // unweighted mean of per-interval IPCs
  double stddev = 0;    // sample standard deviation of those IPCs
  double ci95 = 0;      // t_{0.975, n-1} * stddev / sqrt(n); 0 when n < 2
};

// Computes the estimate over every measured() interval.
IpcEstimate estimate_ipc(const std::vector<IntervalResult>& intervals);

// Merges every measured() interval's stats (SimStats::merge — counters
// sum; the merged host_seconds is the serial CPU cost, not wall clock).
SimStats stitch_stats(const std::vector<IntervalResult>& intervals);

}  // namespace bsp::sampling
