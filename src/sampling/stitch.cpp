#include "sampling/stitch.hpp"

#include <cmath>

namespace bsp::sampling {

double t_critical_975(unsigned df) {
  // Standard two-sided 95% Student-t critical values, df = 1..30; the
  // normal quantile 1.96 beyond (error < 0.5% by df 31). df == 0 means a
  // single sample: no variance estimate exists, so return a sentinel large
  // enough that any CI built from it is conspicuously useless rather than
  // accidentally tight.
  static const double kTable[31] = {
      1e9,    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365,
      2.306,  2.262,  2.228, 2.201, 2.179, 2.160, 2.145, 2.131,
      2.120,  2.110,  2.101, 2.093, 2.086, 2.080, 2.074, 2.069,
      2.064,  2.060,  2.056, 2.052, 2.048, 2.045, 2.042};
  return df <= 30 ? kTable[df] : 1.96;
}

IpcEstimate estimate_ipc(const std::vector<IntervalResult>& intervals) {
  IpcEstimate est;
  u64 committed = 0, cycles = 0;
  double sum = 0;
  std::vector<double> ipcs;
  for (const IntervalResult& r : intervals) {
    if (!r.measured()) continue;
    committed += r.stats.committed;
    cycles += r.stats.cycles;
    ipcs.push_back(r.stats.ipc());
    sum += ipcs.back();
  }
  est.n = static_cast<unsigned>(ipcs.size());
  if (cycles) est.weighted = static_cast<double>(committed) / cycles;
  if (est.n == 0) return est;
  est.mean = sum / est.n;
  if (est.n < 2) return est;  // no variance estimate from one interval
  double ss = 0;
  for (const double ipc : ipcs) ss += (ipc - est.mean) * (ipc - est.mean);
  est.stddev = std::sqrt(ss / (est.n - 1));
  est.ci95 = t_critical_975(est.n - 1) * est.stddev / std::sqrt(est.n);
  return est;
}

SimStats stitch_stats(const std::vector<IntervalResult>& intervals) {
  SimStats out;
  for (const IntervalResult& r : intervals)
    if (r.measured()) out.merge(r.stats);
  return out;
}

}  // namespace bsp::sampling
