// Campaign integration: a TaskRunner that simulates each sweep task via
// the sampled-simulation engine instead of one monolithic Simulator::run.
//
// Lives in src/sampling/ (not src/campaign/) to keep the library graph
// acyclic: bsp_sampling links bsp_campaign for the checkpoint cache and
// store helpers, so the campaign library cannot link back. bsp-sweep picks
// this runner over make_sim_runner() when --sample-intervals is given.
//
// Each task's (workload, seed, task.fast_forward ± warm-up) interval
// checkpoints land in the shared cache directory keyed by functional
// offset, so every machine point of a sweep grid — and every rerun over
// the same directory — reuses one functional prewarm per (workload, seed).
#pragma once

#include "campaign/campaign.hpp"
#include "sampling/sampled.hpp"

namespace bsp::sampling {

// Builds the sampling TaskRunner. `options.worker_cmd` must be empty:
// inside a sweep, interval workers always run as threads (the sweep's own
// --isolate process already wraps the whole task in a subprocess; nesting
// another fork/exec layer per interval would multiply process churn for
// no extra containment). Workload programs are built once per (workload,
// seed) and shared across concurrent tasks, as in make_sim_runner().
campaign::TaskRunner make_sampled_runner(const SampleOptions& options);

}  // namespace bsp::sampling
