// Interval planner for sampled simulation (SMARTS/SimPoint-style).
//
// A monolithic detailed run is `fast_forward` functional instructions,
// then `warmup` detail commits with statistics discarded, then
// `max_commits` measured detail commits. plan_intervals() shards the
// measured region into K contiguous chunks, each becoming one
// independently simulable interval: fast-forward to `offset` functional
// instructions (on the emulator / from a cached checkpoint), run `warmup`
// detail commits discarded, then measure `commits`.
//
// Offsets are exact, not approximate: the timing core retires precisely
// the instructions its co-simulation oracle executes, so "detail commit
// number c" and "functional instruction number c" name the same dynamic
// instruction. Stitching the K measured chunks therefore re-covers the
// monolithic measured stream without gaps or overlaps; the only modelling
// error is microarchitectural state at each interval's start, which the
// per-interval warm-up bounds (cold caches/predictors heat during the
// discarded commits, as in SMARTS functional warming).
//
// The plan embeds the monolithic-equivalence invariant the sched-
// equivalence goldens pin: interval 0 keeps the run's own boundary
// (offset = fast_forward, warm-up = the monolithic `warmup`), so a K=1
// plan is *exactly* the monolithic run and its SimStats must be
// bit-identical. Later intervals start `sample_warmup` commits early:
// pos_i = fast_forward + warmup + measured_start_i, warm-up_i =
// min(sample_warmup, pos_i), offset_i = pos_i - warmup_i.
#pragma once

#include <vector>

#include "util/bitops.hpp"

namespace bsp::sampling {

// One independently simulable shard of the measured stream.
struct IntervalSpec {
  unsigned index = 0;
  u64 offset = 0;          // functional instructions before detail starts
  u64 warmup = 0;          // detail commits discarded before measuring
  u64 commits = 0;         // measured detail commits
  u64 measured_start = 0;  // position in the monolithic measured stream
};

struct SamplePlan {
  // The monolithic run being sharded.
  u64 max_commits = 0;
  u64 warmup = 0;
  u64 fast_forward = 0;
  u64 sample_warmup = 0;  // requested per-interval warm-up (intervals > 0)
  std::vector<IntervalSpec> intervals;
};

// Splits `max_commits` measured commits into `intervals` contiguous chunks
// (sizes differ by at most one; earlier chunks take the remainder).
// `intervals` is clamped to [1, max(1, max_commits)] so every interval
// measures at least one commit. A 1-interval plan is exactly the
// monolithic run.
SamplePlan plan_intervals(u64 max_commits, u64 warmup, u64 fast_forward,
                          unsigned intervals, u64 sample_warmup);

}  // namespace bsp::sampling
