#include "sampling/plan.hpp"

#include <algorithm>

namespace bsp::sampling {

SamplePlan plan_intervals(u64 max_commits, u64 warmup, u64 fast_forward,
                          unsigned intervals, u64 sample_warmup) {
  SamplePlan plan;
  plan.max_commits = max_commits;
  plan.warmup = warmup;
  plan.fast_forward = fast_forward;
  plan.sample_warmup = sample_warmup;

  u64 k = std::max<u64>(1, std::min<u64>(intervals ? intervals : 1,
                                         std::max<u64>(1, max_commits)));
  const u64 base = max_commits / k;
  const u64 extra = max_commits % k;  // first `extra` chunks get one more

  u64 measured_start = 0;
  for (u64 i = 0; i < k; ++i) {
    IntervalSpec spec;
    spec.index = static_cast<unsigned>(i);
    spec.commits = base + (i < extra ? 1 : 0);
    spec.measured_start = measured_start;
    if (i == 0) {
      // The monolithic boundary, verbatim: K=1 reduces to the monolithic
      // run and interval 0 of any plan replays its exact first chunk.
      spec.offset = fast_forward;
      spec.warmup = warmup;
    } else {
      const u64 pos = fast_forward + warmup + measured_start;
      spec.warmup = std::min(sample_warmup, pos);
      spec.offset = pos - spec.warmup;
    }
    measured_start += spec.commits;
    plan.intervals.push_back(spec);
  }
  return plan;
}

}  // namespace bsp::sampling
