#include "sampling/sampled.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <sstream>

#include "campaign/ckpt_cache.hpp"
#include "campaign/store.hpp"
#include "emu/checkpoint.hpp"
#include "obs/interval.hpp"
#include "stats/stats.hpp"
#include "util/parallel.hpp"
#include "util/subprocess.hpp"

namespace bsp::sampling {
namespace {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string fmt6(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6f", v);
  return buf;
}

// Last non-empty line of a worker's stdout: the result line, tolerating
// any stray diagnostics an instrumented build might print first.
std::string last_nonempty_line(const std::string& text) {
  std::size_t end = text.size();
  while (end > 0) {
    std::size_t start = text.rfind('\n', end - 1);
    const std::size_t from = start == std::string::npos ? 0 : start + 1;
    if (end > from) return text.substr(from, end - from);
    if (start == std::string::npos) break;
    end = start;
  }
  return "";
}

}  // namespace

PrewarmResult materialise_interval_checkpoints(const Program& program,
                                               const std::string& workload,
                                               u64 seed,
                                               const SamplePlan& plan,
                                               const std::string& cache_dir) {
  PrewarmResult out;
  std::set<u64> offsets;
  for (const IntervalSpec& spec : plan.intervals)
    if (spec.offset > 0) offsets.insert(spec.offset);
  if (offsets.empty()) return out;

  const WallTimer timer;
  // One incremental functional pass: ascending offsets extend the same
  // emulator. A cache hit restores its checkpoint to skip ahead — legal
  // because a later capture's page set is a superset of any earlier
  // prefix's (same deterministic stream), so the restore fully overwrites
  // the emulator's state.
  Emulator emu(program);
  u64 pos = 0;
  bool dead = false;  // program exited/faulted before the remaining offsets
  for (const u64 offset : offsets) {
    if (dead) break;
    if (!cache_dir.empty()) {
      const std::string path = campaign::checkpoint_cache_path(
          cache_dir, workload, seed, program, offset);
      if (auto ckpt = load_checkpoint_file(path)) {
        restore_checkpoint(emu, *ckpt);
        pos = offset;
        ++out.reused;
        out.by_offset[offset] =
            std::make_shared<const Checkpoint>(std::move(*ckpt));
        continue;
      }
    }
    emu.run_fast(offset - pos);
    pos = emu.instructions_retired();
    if (pos < offset) {
      // Exit/fault before the offset: later intervals are unreachable.
      // Not an error — their specs are recorded as skipped.
      dead = true;
      break;
    }
    auto ckpt = std::make_shared<const Checkpoint>(capture_checkpoint(emu));
    if (!cache_dir.empty()) {
      std::string err;
      if (campaign::publish_checkpoint(cache_dir, workload, seed, program,
                                       offset, *ckpt, &err)
              .empty()) {
        out.error = err;
        out.ffwd_sec = timer.seconds();
        return out;
      }
    }
    out.by_offset[offset] = std::move(ckpt);
    ++out.materialised;
  }
  out.ffwd_sec = timer.seconds();
  return out;
}

IntervalResult run_one_interval(const MachineConfig& config,
                                const Program& program,
                                const IntervalSpec& spec,
                                const Checkpoint* start, bool host_profile,
                                bool cpi_stack, const SimOptions& sim_opts) {
  IntervalResult out;
  out.spec = spec;
  const WallTimer timer;
  Simulator sim = start ? Simulator(config, program, *start)
                        : Simulator(config, program);
  if (host_profile) sim.enable_host_profile();
  if (cpi_stack) sim.enable_cpi_stack();
  sim.set_options(sim_opts);
  const SimResult r = sim.run(spec.commits, spec.warmup);
  out.stats = r.stats;
  out.error = r.error;
  out.exited = r.exited;
  out.exit_code = r.exit_code;
  out.host_sec = timer.seconds();
  return out;
}

std::string interval_to_jsonl(const IntervalResult& r) {
  std::ostringstream os;
  os << "{\"type\":\"interval\""
     << ",\"index\":" << r.spec.index
     << ",\"offset\":" << r.spec.offset
     << ",\"warmup\":" << r.spec.warmup
     << ",\"commits\":" << r.spec.commits
     << ",\"measured_start\":" << r.spec.measured_start
     << ",\"status\":\""
     << (r.skipped ? "skipped" : r.ok() ? "ok" : "failed") << "\""
     << ",\"exited\":" << (r.exited ? "true" : "false")
     << ",\"exit_code\":" << r.exit_code
     << ",\"host_sec\":" << fmt6(r.host_sec);
  if (!r.error.empty()) os << ",\"error\":\"" << escape(r.error) << "\"";
  if (!r.skipped && r.ok()) {
    os << ",\"stats\":{";
    bool first = true;
    for (const obs::CounterDesc& c : obs::simstats_counters()) {
      os << (first ? "\"" : ",\"") << c.name << "\":" << r.stats.*c.field;
      first = false;
    }
    os << ",\"host_seconds\":" << fmt6(r.stats.host_seconds)
       << ",\"ipc\":" << fmt6(r.stats.ipc()) << "}";
  }
  os << "}";
  return os.str();
}

bool interval_from_jsonl(const std::string& line, IntervalResult* out,
                         std::string* error) {
  const auto fail = [&](const std::string& why) {
    if (error) *error = why;
    return false;
  };
  if (line.empty() || line.front() != '{' || line.back() != '}')
    return fail("not a JSON object line");
  const auto type = campaign::jsonl_field(line, "type");
  if (!type || *type != "interval") return fail("not an interval record");
  const auto num = [&](const char* key) -> std::optional<u64> {
    const auto v = campaign::jsonl_field(line, key);
    if (!v) return std::nullopt;
    return std::strtoull(v->c_str(), nullptr, 0);
  };
  const auto index = num("index");
  const auto offset = num("offset");
  const auto warmup = num("warmup");
  const auto commits = num("commits");
  const auto measured_start = num("measured_start");
  const auto status = campaign::jsonl_field(line, "status");
  if (!index || !offset || !warmup || !commits || !measured_start || !status)
    return fail("missing interval fields");
  IntervalResult r;
  r.spec.index = static_cast<unsigned>(*index);
  r.spec.offset = *offset;
  r.spec.warmup = *warmup;
  r.spec.commits = *commits;
  r.spec.measured_start = *measured_start;
  r.skipped = *status == "skipped";
  if (const auto e = campaign::jsonl_field(line, "error")) r.error = *e;
  if (*status == "failed" && r.error.empty())
    r.error = "interval worker reported failure";
  if (const auto v = campaign::jsonl_field(line, "exited"))
    r.exited = *v == "true";
  if (const auto v = num("exit_code"))
    r.exit_code = static_cast<int>(static_cast<long long>(*v));
  if (const auto v = campaign::jsonl_field(line, "host_sec"))
    r.host_sec = std::strtod(v->c_str(), nullptr);
  if (!r.skipped && r.ok()) {
    for (const obs::CounterDesc& c : obs::simstats_counters()) {
      const auto v = num(c.name);
      if (!v) {
        // Registry-`optional` counters default to 0 (record written by a
        // pre-upgrade worker binary).
        if (c.optional) continue;
        return fail(std::string("missing counter ") + c.name);
      }
      r.stats.*c.field = *v;
    }
    if (const auto v = campaign::jsonl_field(line, "host_seconds"))
      r.stats.host_seconds = std::strtod(v->c_str(), nullptr);
  }
  *out = std::move(r);
  return true;
}

namespace {

// Process-isolation body: launch worker_cmd + [index], parse the last
// non-empty stdout line as the interval record.
IntervalResult run_interval_subprocess(const IntervalSpec& spec,
                                       const SampleOptions& opts) {
  IntervalResult out;
  out.spec = spec;
  std::vector<std::string> argv = opts.worker_cmd;
  argv.push_back(std::to_string(spec.index));
  SubprocessLimits limits;
  limits.timeout_sec = opts.timeout_sec;
  const WallTimer timer;
  const SubprocessResult r = run_subprocess(argv, limits);
  out.host_sec = timer.seconds();
  if (r.spawn_error) {
    out.error = "spawn: " + r.error;
    return out;
  }
  if (r.timed_out) {
    out.error = "interval worker timed out";
    return out;
  }
  if (r.signal != 0) {
    out.error = "interval worker crashed: " + signal_name(r.signal);
    return out;
  }
  const std::string line = last_nonempty_line(r.out);
  IntervalResult parsed;
  std::string perr;
  if (!interval_from_jsonl(line, &parsed, &perr)) {
    out.error = "bad worker output (" + perr + ")";
    if (!r.err.empty()) out.error += "; stderr: " + r.err;
    return out;
  }
  if (parsed.spec.index != spec.index) {
    out.error = "worker answered for interval " +
                std::to_string(parsed.spec.index);
    return out;
  }
  parsed.host_sec = out.host_sec;  // include fork/exec + parse overhead
  return parsed;
}

}  // namespace

SampledResult run_sampled(const MachineConfig& config, const Program& program,
                          const std::string& workload, u64 seed,
                          u64 max_commits, u64 warmup, u64 fast_forward,
                          const SampleOptions& opts) {
  SampledResult out;
  const WallTimer wall;
  out.plan = plan_intervals(max_commits, warmup, fast_forward, opts.intervals,
                            opts.warmup);

  PrewarmResult prewarm = materialise_interval_checkpoints(
      program, workload, seed, out.plan, opts.ckpt_cache_dir);
  out.ckpt_materialised = prewarm.materialised;
  out.ckpt_reused = prewarm.reused;
  out.prewarm_sec = prewarm.ffwd_sec;
  if (!prewarm.ok()) {
    out.error = "prewarm: " + prewarm.error;
    out.wall_sec = wall.seconds();
    return out;
  }

  const std::size_t k = out.plan.intervals.size();
  out.intervals.resize(k);
  // Intervals whose checkpoint the functional pass never reached (program
  // exited first) are skipped up front; workers run the rest in parallel.
  std::vector<std::size_t> runnable;
  for (std::size_t i = 0; i < k; ++i) {
    const IntervalSpec& spec = out.plan.intervals[i];
    out.intervals[i].spec = spec;
    if (spec.offset > 0 && !prewarm.by_offset.count(spec.offset)) {
      out.intervals[i].skipped = true;
    } else {
      runnable.push_back(i);
    }
  }

  const bool process_mode = !opts.worker_cmd.empty();
  parallel_for(
      runnable.size(),
      [&](std::size_t r) {
        const std::size_t i = runnable[r];
        const IntervalSpec& spec = out.plan.intervals[i];
        if (process_mode) {
          out.intervals[i] = run_interval_subprocess(spec, opts);
        } else {
          const Checkpoint* start = nullptr;
          if (spec.offset > 0) start = prewarm.by_offset[spec.offset].get();
          out.intervals[i] = run_one_interval(config, program, spec, start,
                                              opts.host_profile,
                                              opts.cpi_stack, opts.sim);
        }
      },
      opts.jobs);

  for (const IntervalResult& r : out.intervals) {
    if (r.skipped) {
      out.exited = true;  // the program ended before this interval
    } else if (r.exited) {
      out.exited = true;
      out.exit_code = r.exit_code;
    }
    if (!r.ok() && out.error.empty())
      out.error = "interval " + std::to_string(r.spec.index) + ": " + r.error;
  }

  out.aggregate = stitch_stats(out.intervals);
  out.ipc = estimate_ipc(out.intervals);
  out.wall_sec = wall.seconds();
  return out;
}

}  // namespace bsp::sampling
