#include "sampling/runner.hpp"

#include <cassert>
#include <future>
#include <map>
#include <memory>
#include <mutex>

#include "workloads/workloads.hpp"

namespace bsp::sampling {

campaign::TaskRunner make_sampled_runner(const SampleOptions& options) {
  assert(options.worker_cmd.empty() &&
         "sweep tasks sample with threads; see runner.hpp");
  // Shared (workload, seed) -> Workload memo, same build-once/share
  // pattern as make_sim_runner: everything sits behind a shared_ptr so a
  // detached timed-out attempt stays memory-safe.
  struct Cache {
    std::mutex m;
    std::map<std::pair<std::string, u64>,
             std::shared_future<std::shared_ptr<const Workload>>>
        built;
  };
  auto cache = std::make_shared<Cache>();
  return [cache, options](const campaign::TaskSpec& task)
             -> campaign::AttemptResult {
    std::shared_future<std::shared_ptr<const Workload>> fut;
    bool builder = false;
    std::promise<std::shared_ptr<const Workload>> promise;
    {
      std::lock_guard<std::mutex> lock(cache->m);
      const auto key = std::make_pair(task.workload, task.seed);
      const auto it = cache->built.find(key);
      if (it == cache->built.end()) {
        fut = promise.get_future().share();
        cache->built.emplace(key, fut);
        builder = true;
      } else {
        fut = it->second;
      }
    }
    if (builder) {
      try {
        WorkloadParams params;
        params.seed = task.seed;
        promise.set_value(std::make_shared<const Workload>(
            build_workload(task.workload, params)));
      } catch (...) {
        promise.set_exception(std::current_exception());
      }
    }
    std::shared_ptr<const Workload> workload;
    try {
      workload = fut.get();
    } catch (const std::exception& e) {
      campaign::AttemptResult r;
      r.error = std::string("workload build failed: ") + e.what();
      return r;
    }

    // The task itself already occupies one scheduler slot; its interval
    // workers run inline on that slot so a sweep's total thread count
    // stays at the scheduler's --jobs.
    SampleOptions opts = options;
    opts.jobs = 1;
    if (!task.cosim.empty() && !parse_cosim(task.cosim, &opts.sim)) {
      campaign::AttemptResult r;
      r.error = "bad cosim mode: " + task.cosim;
      return r;
    }
    const SampledResult res = run_sampled(
        task.machine.build(), workload->program, task.workload, task.seed,
        task.instructions, task.warmup, task.fast_forward, opts);

    campaign::AttemptResult r;
    r.stats = res.aggregate;
    r.error = res.error;
    if (res.ckpt_materialised + res.ckpt_reused > 0) {
      r.ckpt_cache = res.ckpt_materialised ? "miss" : "hit";
      r.ffwd_sec = res.prewarm_sec;
      if (options.host_profile)
        r.stats.host_profile.ffwd = res.prewarm_sec;
    }
    r.sample_intervals = res.plan.intervals.size();
    r.sample_warmup = res.plan.sample_warmup;
    r.ipc_mean = res.ipc.mean;
    r.ipc_ci95 = res.ipc.ci95;
    for (const IntervalResult& iv : res.intervals) {
      if (!iv.measured()) continue;
      r.samples.push_back({iv.spec.index, iv.spec.offset, iv.spec.warmup,
                           iv.spec.commits, iv.stats.cycles,
                           iv.stats.committed});
    }
    return r;
  };
}

}  // namespace bsp::sampling
