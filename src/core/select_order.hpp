// Sortless ordering of the per-cycle select candidate set.
//
// The scheduler orders candidates by the single integer OpRef::key =
// (seq << 3) | slice_visit_pos — oldest entry first, slice-visit order
// within an entry. The candidate set is small most cycles and its live
// keys are densely packed (live RUU seqs span at most ~2x ruu_entries even
// across squashes, because next_seq never rolls back), so a full
// std::sort is overkill:
//
//   * n <= kInsertionMax: binary-free insertion sort — the common case,
//     branch-predictable and allocation-free.
//   * dense burst (key range fits the pre-sized bucket array and is within
//     kSpreadMax x n): single-pass bucket distribute + in-order emit.
//     Each bucket holds exactly one key value; equal keys can only be
//     stale duplicates of the same (entry, op) incarnation — at most one
//     of them is live — so intra-bucket order is immaterial.
//   * anything else (stale refs with arbitrarily old keys after a squash
//     storm make the span unbounded): std::sort fallback, identical
//     semantics to the code this replaces.
//
// All paths produce the same selection order: a permutation of the input
// that is non-decreasing in key, where key ties never distinguish live
// candidates.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "util/bitops.hpp"

namespace bsp {

inline constexpr std::size_t kSelectInsertionMax = 24;
inline constexpr u64 kSelectSpreadMax = 8;  // bucket path iff range <= 8n

// Reusable scratch for order_by_key: the bucket heads plus chain links and
// the emission staging vector. All storage is reserved once (init) and
// never grows on the hot path — `tmp` swaps with the candidate vector, so
// reserve both to the same capacity to keep scratch accounting stable.
template <class Ref>
struct SelectOrderScratch {
  std::vector<int> head;  // key-offset bucket -> newest chain node (-1 end)
  std::vector<int> next;  // chain links, indexed like the input vector
  std::vector<Ref> tmp;   // in-key-order staging, swapped into the input

  void init(std::size_t buckets, std::size_t capacity) {
    head.assign(buckets, -1);
    next.reserve(capacity);
    tmp.reserve(capacity);
  }
};

template <class Ref>
void order_by_key(std::vector<Ref>& v, SelectOrderScratch<Ref>& s) {
  const std::size_t n = v.size();
  if (n <= 1) return;

  if (n <= kSelectInsertionMax) {
    for (std::size_t i = 1; i < n; ++i) {
      const Ref r = v[i];
      std::size_t j = i;
      for (; j > 0 && v[j - 1].key > r.key; --j) v[j] = v[j - 1];
      v[j] = r;
    }
    return;
  }

  u64 lo = v[0].key;
  u64 hi = v[0].key;
  for (std::size_t i = 1; i < n; ++i) {
    lo = std::min(lo, v[i].key);
    hi = std::max(hi, v[i].key);
  }
  const u64 range = hi - lo;  // bucket path needs range + 1 buckets
  if (range >= s.head.size() || range > kSelectSpreadMax * n) {
    std::sort(v.begin(), v.end(),
              [](const Ref& a, const Ref& b) { return a.key < b.key; });
    return;
  }

  s.next.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t b = static_cast<std::size_t>(v[i].key - lo);
    s.next[i] = s.head[b];
    s.head[b] = static_cast<int>(i);
  }
  s.tmp.clear();
  for (u64 b = 0; b <= range; ++b) {
    int i = s.head[b];
    s.head[b] = -1;  // leave head all -1 for the next call
    for (; i >= 0; i = s.next[static_cast<std::size_t>(i)])
      s.tmp.push_back(v[static_cast<std::size_t>(i)]);
  }
  v.swap(s.tmp);
}

}  // namespace bsp
