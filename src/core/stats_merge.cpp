// SimStats::merge — the sampled-simulation stitcher's primitive.
//
// Lives in its own TU (not simulator.cpp) because it is the one piece of
// core that depends on the obs counter *registry* rather than on any
// particular counter: iterating simstats_counters() instead of naming
// fields means a counter added to the registry is merged automatically,
// and a counter added to SimStats but not registered fails the directed
// unit test (tests/test_sampling.cpp) rather than silently dropping out
// of sampled aggregates.

#include "core/pipeline.hpp"
#include "obs/interval.hpp"

namespace bsp {

void SimStats::merge(const SimStats& other) {
  for (const auto& c : obs::simstats_counters()) this->*(c.field) += other.*(c.field);
  host_seconds += other.host_seconds;  // sum-of-serial; see pipeline.hpp
  host_profile.merge(other.host_profile);
}

}  // namespace bsp
