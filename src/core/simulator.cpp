#include "core/simulator.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <array>
#include <chrono>
#include <cstdlib>
#include <ostream>
#include <set>
#include <sstream>
#include <vector>

#include "core/select_order.hpp"
#include "lsq/disambig.hpp"
#include "obs/cpi_stack.hpp"
#include "obs/interval.hpp"
#include "obs/sinks.hpp"
#include "obs/trace.hpp"
#include "stats/stats.hpp"

namespace bsp {

namespace {

// Deadlock watchdog: abort a run if nothing commits for this many cycles.
constexpr Cycle kWatchdogCycles = 100000;

// Memory ports into the L1 D-cache (load accesses started per cycle).
constexpr unsigned kDCachePorts = 2;

// Classes whose execution can be decomposed into per-slice micro-ops.
bool is_sliceable(ExecClass cls) {
  switch (cls) {
    case ExecClass::Logic:
    case ExecClass::Add:
    case ExecClass::ShiftLeft:
    case ExecClass::ShiftRight:
    case ExecClass::Compare:
    case ExecClass::MfHiLo:
    case ExecClass::Load:
    case ExecClass::Store:
    case ExecClass::BranchEq:
    case ExecClass::BranchSign:
      return true;
    case ExecClass::Mul:
    case ExecClass::Div:
    case ExecClass::Jump:
    case ExecClass::JumpReg:
    case ExecClass::Syscall:
    case ExecClass::FpAlu:
    case ExecClass::FpMul:
    case ExecClass::FpDiv:
    case ExecClass::FpSqrt:
    case ExecClass::FpCompare:
    case ExecClass::FpBranch:
      return false;  // FP executes on full-collect units (paper §6)
  }
  return false;
}

bool uses_fp_mul_div_unit(ExecClass cls) {
  return cls == ExecClass::FpMul || cls == ExecClass::FpDiv ||
         cls == ExecClass::FpSqrt;
}

bool uses_fp_alu(ExecClass cls) {
  return cls == ExecClass::FpAlu || cls == ExecClass::FpCompare ||
         cls == ExecClass::FpBranch;
}

}  // namespace

struct Simulator::Impl {
  // --- construction ---------------------------------------------------------

  Impl(const MachineConfig& config, const Program& program)
      : cfg(config),
        core(cfg.core),
        geom(core.slice_geometry()),
        sliced_sched(core.has(Technique::PartialBypass)),
        prog(program),
        oracle(program),
        checker(program),
        predictor(cfg.branch),
        mem(cfg.memory),
        ruu(core.ruu_entries),
        op_sel_(core.ruu_entries * kMaxSlices, kNever),
        op_done_(core.ruu_entries * kMaxSlices, kNever),
        op_token(core.ruu_entries * kMaxSlices, 0),
        waiters(core.ruu_entries),
        consumers(core.ruu_entries),
        relax_queued(core.ruu_entries, 0),
        ifq_capacity(std::max<unsigned>(32, 8 * core.fetch_width)) {
    wheel_head.fill(-1);
    far_min.fill(kNever);
    lsq.init(core.lsq_entries);
    fetch_q.init(ifq_capacity + core.fetch_width);
    // Pre-size the node pools and scheduler buffers from the machine shape:
    // at most ruu_entries * geometry slice-ops are in flight, each resident
    // in exactly one waiter list / wheel slot / pending (stale refs add a
    // small constant factor). Reserving here keeps the steady state free of
    // heap allocation on the dispatch/wakeup hot paths; the steady-state
    // test asserts these capacities never grow (scratch_reallocations()).
    const std::size_t max_ops = std::size_t{core.ruu_entries} * geom.count;
    wait_pool.reserve(2 * max_ops + 64);
    cons_pool.reserve(4 * core.ruu_entries + 64);
    pending.reserve(2 * max_ops + 64);
    cand_scratch.reserve(2 * max_ops + 64);
    views_scratch.reserve(core.lsq_entries);
    relax_work.reserve(core.ruu_entries);
    branch_watch.reserve(2 * core.ruu_entries);
    far_scratch.reserve(64);
    far_overflow.reserve(64);
    // Sortless select scratch: `tmp` swaps with cand_scratch, so all three
    // candidate vectors share one capacity; the bucket array bounds the
    // dense-burst key span the bucket path will take on.
    sel_scratch.init(32 * std::size_t{core.ruu_entries} + 64,
                     2 * max_ops + 64);
    wake_mark.assign(core.ruu_entries, 0);
    wake_scratch.reserve(core.ruu_entries);
    // Test-only divergence injection: BSP_COSIM_INJECT="N:R" flips bit 0 of
    // checker register R just before the Nth total commit is (or would be)
    // checked, so the divergence-detection test can pin each co-sim mode's
    // detection latency without a hand-built broken program.
    if (const char* inj = std::getenv("BSP_COSIM_INJECT")) {
      char* end = nullptr;
      inject_at_ = std::strtoull(inj, &end, 10);
      if (end && *end == ':')
        inject_reg_ =
            static_cast<unsigned>(std::strtoul(end + 1, nullptr, 10));
      else
        inject_at_ = 0;
    }
    rename.fill(ProducerRef{});
    fetch_pc = program.entry;
    // Dense predecoded table: one row per text word (plus a shared nop row
    // for off-image wrong-path fetches), built once under this machine's
    // geometry/techniques. Dispatch and fetch index it by pc.
    nop_si = build_static(make_nop());
    stab.reserve(prog.text.size());
    stab_ok.reserve(prog.text.size());
    for (const u32 raw : prog.text) {
      const auto d = decode(raw);
      stab_ok.push_back(d.has_value());
      stab.push_back(d ? build_static(*d) : nop_si);
    }
    scratch_baseline_ = scratch_capacities();
  }

  // --- scratch-growth accounting -------------------------------------------
  // Capacities of every hot-path scratch vector and node pool. Snapshotted
  // at the end of construction; scratch_reallocations() counts how many
  // have since grown — any nonzero count means a steady-state reallocation
  // slipped onto the dispatch/wakeup path (pinned by the no-growth test).
  static constexpr std::size_t kScratchVecs = 13;
  std::array<std::size_t, kScratchVecs> scratch_capacities() const {
    return {wait_pool.capacity(),    cons_pool.capacity(),
            pending.capacity(),      cand_scratch.capacity(),
            views_scratch.capacity(), relax_work.capacity(),
            branch_watch.capacity(), far_scratch.capacity(),
            far_overflow.capacity(), sel_scratch.head.capacity(),
            sel_scratch.next.capacity(), sel_scratch.tmp.capacity(),
            wake_scratch.capacity()};
  }
  std::array<std::size_t, kScratchVecs> scratch_baseline_{};
  unsigned scratch_reallocations() const {
    const auto caps = scratch_capacities();
    unsigned grown = 0;
    for (std::size_t i = 0; i < kScratchVecs; ++i)
      grown += caps[i] > scratch_baseline_[i] ? 1u : 0u;
    return grown;
  }

  const MachineConfig cfg;
  const CoreConfig& core;
  const SliceGeometry geom;
  const bool sliced_sched;
  Program prog;

  Emulator oracle;   // steps at dispatch: supplies values & outcomes
  Emulator checker;  // steps at commit: co-simulation reference

  // Co-simulation cadence (SimOptions). In spot mode the checker lags the
  // commit stream by `cosim_lag_` instructions and catches up through
  // run_fast() right before each checked commit; full mode keeps the lag at
  // zero, off mode never steps the checker at all. Pure check — none of
  // this feeds timing, so SimStats are mode-invariant.
  CosimMode cosim_mode_ = CosimMode::kFull;
  u64 cosim_period_ = 64;
  u64 cosim_countdown_ = 64;
  u64 cosim_lag_ = 0;
  // BSP_COSIM_INJECT state (see the constructor): 0 = no injection armed.
  u64 inject_at_ = 0;
  unsigned inject_reg_ = 0;

  FrontEndPredictor predictor;
  MemoryHierarchy mem;

  // RUU: circular buffer, `head` = oldest, `count` entries in flight.
  std::vector<RuuEntry> ruu;
  unsigned ruu_head = 0;
  unsigned ruu_count = 0;

  // --- event-driven scheduler state ----------------------------------------
  // Instead of walking the whole RUU every cycle, each unselected slice-op
  // lives in exactly one of three places: a time-indexed wakeup bucket (its
  // operand-ready cycle is known), a producer's waiter list (some operand
  // time is still undefined), or `pending` (ready this cycle but not yet
  // selected — e.g. blocked on an issue slot or a busy unit). References are
  // validated lazily: an (index, seq, token) triple that no longer matches
  // is a dead ref and is dropped on sight, so squash/commit/replay never
  // have to search the queues.
  struct OpRef {
    unsigned idx;     // RUU index
    u64 seq;          // entry incarnation
    unsigned op_idx;  // slice-op within the entry
    u32 token;        // scheduling incarnation of that op
    // Selection-order key, precomputed at queue time: (seq << 3) | the
    // op's slice visit position. Sorting candidates by this single integer
    // reproduces the scan scheduler's oldest-entry-then-visit-order walk
    // without touching the RUU inside the comparator. (A dead ref's key is
    // frozen at its old incarnation — harmless, it is dropped on sight.)
    u64 key;
    // sched_epoch at queue time. Every path that moves a recorded time
    // *later* (replay, load retime, spec-forward miss) bumps sched_epoch,
    // and times otherwise only transition kNever -> finite (which cannot
    // raise a ready time that was already finite when this ref was
    // queued), so while the epoch still matches, the ready time computed
    // at queue time is still exact and select can skip re-deriving it.
    u64 epoch;
  };
  struct ConsumerRef {
    unsigned idx;
    u64 seq;
  };

  // --- struct-of-arrays scheduler slabs ------------------------------------
  // Per-slice-op select/done cycles and scheduling tokens live in dense
  // slabs indexed [ruu_idx * kMaxSlices + op_idx] instead of inside the
  // (large) RuuEntry: a producer probe on the wakeup path touches the
  // producer's hot header line plus one slab line, never the cold body.
  std::vector<Cycle> op_sel_;
  std::vector<Cycle> op_done_;
  // Per-op scheduling incarnation: bumped whenever the op is (re)queued or
  // selected, invalidating any refs still floating in the queues.
  std::vector<u32> op_token;

  unsigned eidx(const RuuEntry& e) const {
    return static_cast<unsigned>(&e - ruu.data());
  }
  Cycle& op_sel(unsigned idx, unsigned op) {
    return op_sel_[idx * kMaxSlices + op];
  }
  Cycle& op_done(unsigned idx, unsigned op) {
    return op_done_[idx * kMaxSlices + op];
  }
  const Cycle* op_done_row(unsigned idx) const {
    return &op_done_[idx * kMaxSlices];
  }
  bool op_selected(unsigned idx, unsigned op) const {
    return op_sel_[idx * kMaxSlices + op] != kNever;
  }
  // All slice-ops of entry `idx` complete by `c`? (kNever compares greater.)
  bool ops_done(unsigned idx, Cycle c) const {
    const Cycle* d = op_done_row(idx);
    const unsigned n = ruu[idx].num_ops;
    for (unsigned i = 0; i < n; ++i)
      if (d[i] > c) return false;
    return true;
  }
  Cycle last_op_done(unsigned idx) const {
    const Cycle* d = op_done_row(idx);
    const unsigned n = ruu[idx].num_ops;
    Cycle m = 0;
    for (unsigned i = 0; i < n; ++i) {
      if (d[i] == kNever) return kNever;
      m = std::max(m, d[i]);
    }
    return m;
  }
  void reset_ops(unsigned idx) {
    for (unsigned i = 0; i < kMaxSlices; ++i)
      op_sel(idx, i) = op_done(idx, i) = kNever;
  }

  // --- free-list-recycled dependence-edge pools ----------------------------
  // Waiter and consumer lists are singly-linked lists of pool nodes with
  // O(1) append (tail pointers preserve registration order — replay
  // worklist order depends on it) and O(1) whole-list recycling at
  // dispatch. The pools are reserved at construction, so the steady state
  // allocates nothing.
  struct WaitNode {
    OpRef ref;
    int next;
  };
  struct ConsNode {
    ConsumerRef ref;
    int next;
  };
  struct NodeList {
    int head = -1;
    int tail = -1;
  };
  std::vector<WaitNode> wait_pool;
  int wait_free = -1;
  std::vector<ConsNode> cons_pool;
  int cons_free = -1;

  int wait_alloc() {
    if (wait_free < 0) {
      wait_pool.push_back(WaitNode{});
      return static_cast<int>(wait_pool.size() - 1);
    }
    const int n = wait_free;
    wait_free = wait_pool[n].next;
    return n;
  }
  void wait_release(int n) {
    wait_pool[n].next = wait_free;
    wait_free = n;
  }
  int cons_alloc() {
    if (cons_free < 0) {
      cons_pool.push_back(ConsNode{});
      return static_cast<int>(cons_pool.size() - 1);
    }
    const int n = cons_free;
    cons_free = cons_pool[n].next;
    return n;
  }
  void wait_append(NodeList& l, const OpRef& r) {
    const int n = wait_alloc();
    wait_pool[n].ref = r;
    wait_pool[n].next = -1;
    if (l.tail < 0)
      l.head = n;
    else
      wait_pool[l.tail].next = n;
    l.tail = n;
  }
  void cons_append(NodeList& l, const ConsumerRef& r) {
    const int n = cons_alloc();
    cons_pool[n].ref = r;
    cons_pool[n].next = -1;
    if (l.tail < 0)
      l.head = n;
    else
      cons_pool[l.tail].next = n;
    l.tail = n;
  }
  // O(1) whole-list recycling: splice the list onto the free list.
  void wait_recycle(NodeList& l) {
    if (l.head < 0) return;
    wait_pool[l.tail].next = wait_free;
    wait_free = l.head;
    l.head = l.tail = -1;
  }
  void cons_recycle(NodeList& l) {
    if (l.head < 0) return;
    cons_pool[l.tail].next = cons_free;
    cons_free = l.head;
    l.head = l.tail = -1;
  }

  // Producer entry -> ops blocked on one of its still-undefined times.
  // Consumed (detached, then walked) whenever the producer publishes a new
  // time.
  std::vector<NodeList> waiters;
  // Producer entry -> dependent entries, registered at rename (plus the
  // store -> forwarded-load edges added when a forward is recorded). These
  // persist for the producer's lifetime: selective replay walks them to
  // revert only the transitive dependents of a re-timed value.
  std::vector<NodeList> consumers;
  // Ops whose computed ready cycle is in the future: a timing wheel over the
  // next kWheelSize cycles (slot = cycle mod size; every entry's cycle lies
  // in (now, now + kWheelSize) so the slot is unambiguous), with a summary
  // bitmap for O(1)-ish next-event queries. Slot lists share the waiter
  // node pool (within-slot order is irrelevant: candidates are sorted by
  // the unique (seq, visit-pos) key before selection). Beyond-horizon
  // wakeups go to the hierarchical far wheel below.
  static constexpr unsigned kWheelBits = 10;
  static constexpr Cycle kWheelSize = Cycle{1} << kWheelBits;
  static constexpr unsigned kWheelWords = kWheelSize / 64;
  std::array<int, kWheelSize> wheel_head;
  std::array<u64, kWheelWords> wheel_bits{};
  u64 wheel_count = 0;
  // Beyond-horizon wakeups: a hierarchical coarse wheel over epochs of
  // kWheelSize cycles (epoch = cycle >> kWheelBits). A wakeup landing past
  // the fine horizon always lies in a strictly-future epoch; epochs within
  // the next kFarEpochs map unambiguously to bucket (epoch & 63), tracked
  // by a summary bitmap and a per-bucket minimum so both insertion and the
  // idle skip's next-event query are O(1) — no ordered-map node churn. The
  // (practically unreachable) beyond-window tail spills to a flat overflow
  // vector with its own minimum, redistributed only when that minimum
  // enters the window; each entry therefore moves O(1) times amortized.
  static constexpr unsigned kFarEpochs = 64;
  struct FarWake {
    Cycle c;
    OpRef ref;
  };
  std::array<std::vector<FarWake>, kFarEpochs> far_bucket;
  std::array<Cycle, kFarEpochs> far_min;
  u64 far_bits = 0;
  u64 far_count = 0;
  Cycle far_epoch = 0;  // epoch of `now` at the last drain
  std::vector<FarWake> far_overflow;
  Cycle far_overflow_min = kNever;
  std::vector<FarWake> far_scratch;  // drain staging

  void wheel_push(Cycle c, const OpRef& ref) {
    const unsigned slot = static_cast<unsigned>(c & (kWheelSize - 1));
    const int n = wait_alloc();
    wait_pool[static_cast<unsigned>(n)].ref = ref;
    wait_pool[static_cast<unsigned>(n)].next = wheel_head[slot];
    wheel_head[slot] = n;
    wheel_bits[slot >> 6] |= u64{1} << (slot & 63);
    ++wheel_count;
  }

  void far_push(Cycle c, const OpRef& ref) {
    const Cycle ep = c >> kWheelBits;
    if (ep - far_epoch < kFarEpochs) {
      const unsigned b = static_cast<unsigned>(ep & (kFarEpochs - 1));
      far_bucket[b].push_back(FarWake{c, ref});
      far_min[b] = std::min(far_min[b], c);
      far_bits |= u64{1} << b;
      ++far_count;
    } else {
      far_overflow.push_back(FarWake{c, ref});
      far_overflow_min = std::min(far_overflow_min, c);
    }
  }

  // Drains every bucket whose epoch `now` has reached or passed, routing
  // each staged entry to wherever it belongs under the advanced clock.
  void drain_far() {
    const Cycle cur = now >> kWheelBits;
    if (cur == far_epoch) return;
    if (far_count) {
      far_scratch.clear();
      const Cycle first =
          cur - far_epoch >= kFarEpochs ? cur - (kFarEpochs - 1)
                                        : far_epoch + 1;
      for (Cycle ep = first; ep <= cur; ++ep) {
        const unsigned b = static_cast<unsigned>(ep & (kFarEpochs - 1));
        const u64 bit = u64{1} << b;
        if (!(far_bits & bit)) continue;
        far_scratch.insert(far_scratch.end(), far_bucket[b].begin(),
                           far_bucket[b].end());
        far_count -= far_bucket[b].size();
        far_bucket[b].clear();
        far_min[b] = kNever;
        far_bits &= ~bit;
      }
      far_epoch = cur;
      for (const FarWake& fw : far_scratch) {
        if (fw.c <= now)
          pending.push_back(fw.ref);
        else if (fw.c - now < kWheelSize)
          wheel_push(fw.c, fw.ref);
        else
          far_push(fw.c, fw.ref);
      }
    }
    far_epoch = cur;
    if (!far_overflow.empty() &&
        (far_overflow_min >> kWheelBits) < cur + kFarEpochs) {
      far_scratch.clear();
      far_scratch.swap(far_overflow);
      far_overflow_min = kNever;
      for (const FarWake& fw : far_scratch) {
        if (fw.c <= now)
          pending.push_back(fw.ref);
        else if (fw.c - now < kWheelSize)
          wheel_push(fw.c, fw.ref);
        else
          far_push(fw.c, fw.ref);
      }
    }
  }

  // Earliest staged far wakeup (kNever if none): the nearest nonempty
  // epoch bucket holds the global bucket minimum (epochs partition time),
  // found by rotating the summary bitmap to the window start.
  Cycle far_next() const {
    Cycle best = far_overflow_min;
    if (far_bits) {
      const unsigned start =
          static_cast<unsigned>((far_epoch + 1) & (kFarEpochs - 1));
      const u64 rot =
          (far_bits >> start) | (far_bits << ((kFarEpochs - start) & 63));
      const unsigned k = static_cast<unsigned>(std::countr_zero(rot));
      best = std::min(best, far_min[(start + k) & (kFarEpochs - 1)]);
    }
    return best;
  }
  // Ops ready at (or before) the current cycle, awaiting selection.
  std::vector<OpRef> pending;
  // Reused scratch buffers (capacity reserved at construction; the
  // steady-state test asserts they never grow).
  std::vector<OpRef> cand_scratch;
  std::vector<StoreView> views_scratch;
  // Sortless-select scratch (core/select_order.hpp): bucket heads, chain
  // links and the staging vector order_by_key swaps into the candidates.
  SelectOrderScratch<OpRef> sel_scratch;
  // Same-cycle wake dedup for the select loop: producers that published a
  // new done time this cycle, woken once after the candidate walk instead
  // of per selection (wake_mark is the membership bitmap).
  std::vector<u8> wake_mark;
  std::vector<unsigned> wake_scratch;
  // Future cycles at which *something* can happen (op completions, load data
  // returns, verification points). Consulted by the idle-cycle skip. Stored
  // as a cycle bitmap over the same wheel horizon (timers carry no payload,
  // so a set bit per cycle suffices and duplicate arms are free); the run
  // loop clears each cycle's bit as `now` reaches it, which keeps every set
  // bit strictly in the future and the bitmap scan exact. Rare arms beyond
  // the horizon spill to the ordered set.
  std::array<u64, kWheelWords> timer_bits{};
  u64 timer_count = 0;
  std::set<Cycle> timer_far;

  void arm_timer(Cycle c) {
    if (c <= now) return;  // already due: the current cycle handles it
    if (c - now < kWheelSize) {
      const unsigned slot = static_cast<unsigned>(c & (kWheelSize - 1));
      const u64 bit = u64{1} << (slot & 63);
      timer_count += !(timer_bits[slot >> 6] & bit);
      timer_bits[slot >> 6] |= bit;
    } else {
      timer_far.insert(c);
    }
  }

  // First armed timer cycle > now (kNever if none); same scan as
  // wheel_next().
  Cycle timer_next() const {
    if (!timer_count) return kNever;
    const unsigned mask = kWheelSize - 1;
    const unsigned start = static_cast<unsigned>((now + 1) & mask);
    for (unsigned step = 0; step <= kWheelWords; ++step) {
      const unsigned word = ((start >> 6) + step) & (kWheelWords - 1);
      u64 bits = timer_bits[word];
      if (step == 0) bits &= ~u64{0} << (start & 63);
      if (bits) {
        const unsigned slot =
            word * 64 + static_cast<unsigned>(std::countr_zero(bits));
        return now + 1 + ((slot - start) & mask);
      }
    }
    return kNever;
  }
  // In-flight correct-path conditional branches / jr (dispatch order). The
  // resolve scan walks this short list instead of the whole RUU; dead and
  // committed entries are pruned lazily.
  std::vector<ConsumerRef> branch_watch;
  // Selective-replay worklist (entry indices) + membership flags.
  std::vector<unsigned> relax_work;
  std::vector<u8> relax_queued;
  // Bumped whenever replay regresses any recorded time; tells the in-cycle
  // store-view cache in memory_progress() to rebuild.
  u64 sched_epoch = 0;
  // Set by any state mutation this cycle; a fully quiet cycle with no
  // same-cycle retry pending is when the idle skip may fast-forward.
  bool cycle_activity = false;
  // A load was ready to access the cache but lost the port race: it retries
  // next cycle, so the idle skip must not jump.
  bool retry_this_cycle = false;
  // When dispatch stops because the front slot is still in flight (rather
  // than for lack of RUU/LSQ space), the cycle it becomes dispatchable.
  Cycle dispatch_blocked_until = kNever;

  // Unified LSQ: RUU indices of in-flight memory ops, oldest first. A flat
  // power-of-two ring (capacity fixed by the machine config) instead of a
  // segmented deque: the disambiguation walk indexes it every cycle.
  struct IntRing {
    std::vector<int> buf;
    unsigned mask = 0;
    unsigned head = 0;
    unsigned count = 0;
    void init(unsigned capacity) {
      unsigned cap = 1;
      while (cap < capacity) cap <<= 1;
      buf.assign(cap, -1);
      mask = cap - 1;
    }
    bool empty() const { return count == 0; }
    std::size_t size() const { return count; }
    int front() const { return buf[head]; }
    int back() const { return buf[(head + count - 1) & mask]; }
    int operator[](std::size_t i) const {
      return buf[(head + static_cast<unsigned>(i)) & mask];
    }
    void push_back(int v) {
      buf[(head + count) & mask] = v;
      ++count;
    }
    void pop_front() {
      head = (head + 1) & mask;
      --count;
    }
    void pop_back() { --count; }
  };
  IntRing lsq;

  // Count of LSQ entries not yet in MemPhase::Done: when zero the per-cycle
  // memory walk has nothing to advance and is skipped wholesale. Every
  // phase transition funnels through set_mem_phase() so the counter cannot
  // drift from the queue contents.
  int mem_active_ = 0;
  // First LSQ position that can be non-Done: positions below it hold only
  // finished entries awaiting commit, so the per-cycle walk starts here.
  // Invariant upkeep: commit shifts it down with the head, any Done ->
  // non-Done regression (replay) resets it to zero, and dispatch can only
  // append at/after it.
  std::size_t mem_scan_from = 0;
  // Line address of the last I-cache probe (see fetch()); ~0u is never a
  // line address, so the first fetch always probes.
  u32 last_fetch_line_ = ~0u;
  void set_mem_phase(RuuEntry& e, MemPhase p) {
    if (e.mem_phase == MemPhase::Done && p != MemPhase::Done)
      mem_scan_from = 0;
    mem_active_ += static_cast<int>(e.mem_phase == MemPhase::Done) -
                   static_cast<int>(p == MemPhase::Done);
    e.mem_phase = p;
  }

  std::array<ProducerRef, kNumRenameRegs> rename;

  // Front end: same ring idiom for fetch slots (bounded by the IFQ
  // capacity plus one fetch group).
  struct FetchRing {
    std::vector<FetchSlot> buf;
    unsigned mask = 0;
    unsigned head = 0;
    unsigned count = 0;
    void init(unsigned capacity) {
      unsigned cap = 1;
      while (cap < capacity) cap <<= 1;
      buf.assign(cap, FetchSlot{});
      mask = cap - 1;
    }
    bool empty() const { return count == 0; }
    std::size_t size() const { return count; }
    const FetchSlot& front() const { return buf[head]; }
    void push_back(const FetchSlot& s) {
      buf[(head + count) & mask] = s;
      ++count;
    }
    void pop_front() {
      head = (head + 1) & mask;
      --count;
    }
    void clear() { count = 0; }
  };
  FetchRing fetch_q;
  const unsigned ifq_capacity;
  u32 fetch_pc = 0;
  Cycle fetch_stall_until = 0;
  bool wrong_path = false;
  bool halted = false;  // exit syscall dispatched: stop fetching

  Cycle now = 0;
  u64 next_seq = 1;
  Cycle mul_div_busy_until = 0;
  Cycle fp_mul_div_busy_until = 0;

  // Optional detailed histograms.
  std::unique_ptr<DetailedStats> detail;

  // Observability: every pipeline event funnels through emit() to the
  // attached sinks (obs/trace.hpp). `obs_on` keeps each emission site to a
  // single predictable branch when nothing is attached; set_pipe_trace()
  // is now sugar for attaching an owned PipeTextSink.
  std::vector<obs::TraceSink*> sinks;
  bool obs_on = false;
  std::unique_ptr<obs::PipeTextSink> owned_pipe_sink;
  void emit(const obs::TraceEvent& ev) {
    for (obs::TraceSink* s : sinks) s->event(ev);
  }
  // CacheVerify outcome codes are documented in obs/trace.hpp.
  void emit_verify(const RuuEntry& e, u64 outcome, Cycle data, bool replay) {
    obs::TraceEvent ev;
    ev.kind = obs::EventKind::CacheVerify;
    ev.cycle = now;
    ev.seq = e.seq;
    ev.pc = e.pc;
    ev.a = data;
    ev.b = outcome;
    ev.flags = replay ? obs::kFlagReplay : 0u;
    emit(ev);
  }

  // Interval time-series sampling (obs/interval.hpp); not owned.
  obs::IntervalSampler* sampler = nullptr;

  // CPI-stack cycle accounting (obs/cpi_stack.hpp): opt-in like obs_on —
  // one predictable branch per loop iteration when off, so the disabled
  // path stays bit-identical to the equivalence goldens. `cpi_refill_pending`
  // distinguishes an empty RUU refilling after a misprediction squash from
  // an ordinary front-end fill; it is maintained unconditionally (plain
  // bool writes with no stats effect) to keep the hot path branch-free.
  bool cpi_on = false;
  bool cpi_refill_pending = false;

  // Host-phase profiling accumulator (opt-in: the per-phase clock reads
  // cost real time per simulated cycle). Copied into stats.host_profile
  // when run() finishes.
  bool host_profile_on = false;
  obs::HostProfile hprof;
  using HpClock = std::chrono::steady_clock;
  static void hp_take(HpClock::time_point& t, double& acc) {
    const HpClock::time_point n = HpClock::now();
    acc += std::chrono::duration<double>(n - t).count();
    t = n;
  }

  SimStats stats;
  std::string error;
  bool exited = false;
  int exit_code = 0;
  Cycle last_commit_cycle = 0;

  // ---------------------------------------------------------------------------
  // small helpers
  // ---------------------------------------------------------------------------

  unsigned ruu_index(unsigned pos) const {
    return (ruu_head + pos) % core.ruu_entries;
  }
  RuuEntry& entry_at(unsigned pos) { return ruu[ruu_index(pos)]; }
  RuuEntry& youngest() { return entry_at(ruu_count - 1); }

  void fail(const std::string& why) {
    if (error.empty()) error = "cycle " + std::to_string(now) + ": " + why;
  }

  // When each slice of `e`'s *result* becomes available: one dense switch
  // on the dispatch-time result class (kRes*) instead of re-deriving
  // is-load / exec-class / op-count / narrow-width per probe.
  Cycle result_slice_time(const RuuEntry& e, unsigned slice) const {
    const Cycle* d = op_done_row(eidx(e));
    switch (e.res_kind) {
      case kResLoad:
        return e.data_cycle;
      case kResLast:
        return last_op_done(eidx(e));  // sign/borrow defined only at the end
      case kResSingle:
      case kResNarrow:
        // Narrow-width: a result that is just the sign extension of its low
        // slice releases every slice the moment the low slice exists (its
        // significance tag says the rest is all-0s/all-1s).
        return d[0];
      default:
        return d[slice];
    }
  }

  // Availability of slice `k` of source operand `which` of entry `e`.
  Cycle source_slice_time(const RuuEntry& e, unsigned which,
                          unsigned k) const {
    const ProducerRef& ref = e.sources[which];
    if (ref.from_regfile()) return 0;
    const RuuEntry& p = ruu[ref.index];
    if (!p.valid || p.seq != ref.seq) return 0;  // producer committed
    return result_slice_time(p, k);
  }

  // Source-slice requirement of slice-op `op_idx` on source `which`, for an
  // instruction dispatched with slice order `order`. Pure in dispatch-time
  // constants; build_static() bakes it into the predecoded table.
  u32 static_source_need(const DecodedInst& inst, SliceOrder order,
                         unsigned which, unsigned op_idx) const {
    if (order == SliceOrder::Collect) return low_mask(geom.count);
    if (which == 0 && reads_amount_slice0(inst.op))
      return 0x1;  // variable-shift amount lives in the low slice of rs
    if (which == 2) {
      // HI/LO source: produced atomically by mul/div; positional need.
      return u32{1} << op_idx;
    }
    return needed_source_slices(inst.cls(), op_idx, geom);
  }

  // Latest cycle at which every operand slice op `op_idx` needs exists; or
  // kNever if some requirement is still unproduced. In the kNever case
  // `blocker` (when given) receives the RUU index of an entry whose next
  // published time warrants re-evaluating this op: the producer of the
  // undefined source slice, or the op's own entry for an inter-slice chain
  // dependence. Re-evaluation on every advance of that entry is what makes
  // waiter-list wakeup complete: each recomputation either yields a finite
  // time or re-registers on the next still-undefined blocker.
  Cycle op_ready_time(const RuuEntry& e, unsigned op_idx,
                      int* blocker = nullptr) const {
    // Sch1..RF2 depth: nothing selects before the dispatch-time floor.
    Cycle ready = e.ready_floor;
    const auto& need = e.si->need[op_idx];
    for (unsigned which = 0; which < 3; ++which) {
      const ProducerRef& ref = e.sources[which];
      if (ref.from_regfile()) continue;  // regfile: ready at 0
      const RuuEntry& p = ruu[ref.index];
      if (!p.valid || p.seq != ref.seq) continue;  // producer committed
      const u32 mask = need[which];
      if (!mask) continue;
      // Producer resolved once per source: a dense switch on its result
      // class; slice-uniform classes (loads, collects, compares, narrow)
      // short-circuit the per-slice walk.
      Cycle t;
      const Cycle* pd = op_done_row(static_cast<unsigned>(ref.index));
      switch (p.res_kind) {
        case kResLoad:
          t = p.data_cycle;
          break;
        case kResLast:
          t = last_op_done(static_cast<unsigned>(ref.index));
          break;
        case kResSingle:
        case kResNarrow:
          t = pd[0];
          break;
        default: {
          t = 0;
          for (u32 m = mask; m && t != kNever; m &= m - 1) {
            const unsigned k = static_cast<unsigned>(std::countr_zero(m));
            t = std::max(t, pd[k]);
          }
          break;
        }
      }
      if (t == kNever) {
        if (blocker) *blocker = ref.index;
        return kNever;
      }
      ready = std::max(ready, t);
    }
    // Inter-slice chain (carry / shifted-in bits / forced in-order slices).
    if (e.num_ops > 1) {
      int prev = -1;
      if (e.order == SliceOrder::LowToHigh)
        prev = static_cast<int>(op_idx) - 1;
      else if (e.order == SliceOrder::HighToLow)
        prev = static_cast<int>(op_idx) + 1;
      if (prev >= 0 && prev < static_cast<int>(e.num_ops)) {
        const Cycle t =
            op_done_row(eidx(e))[static_cast<unsigned>(prev)];
        if (t == kNever) {
          if (blocker) *blocker = static_cast<int>(eidx(e));
          return kNever;
        }
        ready = std::max(ready, t);
      }
    }
    return ready;
  }

  // ---------------------------------------------------------------------------
  // event-driven scheduler plumbing
  // ---------------------------------------------------------------------------

  // Resolves an OpRef if it is still live: entry incarnation, op slot and
  // scheduling token must all match and the op must still be unselected.
  RuuEntry* ref_entry(const OpRef& r) {
    RuuEntry& e = ruu[r.idx];
    if (!e.valid || e.seq != r.seq) return nullptr;
    if (r.op_idx >= e.num_ops) return nullptr;
    if (op_token[r.idx * kMaxSlices + r.op_idx] != r.token) return nullptr;
    if (op_selected(r.idx, r.op_idx)) return nullptr;
    return &e;
  }

  // (Re)tracks an unselected op in exactly one scheduler structure, chosen
  // by its current ready time. Bumps the op's token so any older refs die.
  void queue_op(unsigned idx, unsigned op_idx) {
    RuuEntry& e = ruu[idx];
    const u32 tok = ++op_token[idx * kMaxSlices + op_idx];
    int blocker = -1;
    const Cycle ready = op_ready_time(e, op_idx, &blocker);
    const OpRef ref{idx, e.seq, op_idx, tok,
                    (e.seq << 3) | slice_visit_pos(e.order, e.num_ops, op_idx),
                    sched_epoch};
    if (ready == kNever) {
      assert(blocker >= 0);
      wait_append(waiters[static_cast<unsigned>(blocker)], ref);
    } else if (ready <= now) {
      pending.push_back(ref);
    } else if (ready - now < kWheelSize) {
      wheel_push(ready, ref);
    } else {
      far_push(ready, ref);
    }
  }

  // First cycle > now with a populated wheel slot (kNever if none): scans
  // the summary bitmap starting just past now's slot; a set bit at wrapped
  // distance d means cycle now + 1 + d.
  Cycle wheel_next() const {
    if (!wheel_count) return kNever;
    const unsigned mask = kWheelSize - 1;
    const unsigned start = static_cast<unsigned>((now + 1) & mask);
    for (unsigned step = 0; step <= kWheelWords; ++step) {
      const unsigned word = ((start >> 6) + step) & (kWheelWords - 1);
      u64 bits = wheel_bits[word];
      if (step == 0) bits &= ~u64{0} << (start & 63);
      if (bits) {
        const unsigned slot =
            word * 64 + static_cast<unsigned>(std::countr_zero(bits));
        return now + 1 + ((slot - start) & mask);
      }
    }
    return kNever;
  }

  // queue_op for a waiter-list walk that already holds a pool node: the
  // node is relinked straight into the destination list (another waiter
  // list, or a wheel slot — both share the pool) instead of a release +
  // alloc round trip. Same token bump, same ref, same routing as queue_op.
  void requeue_node(int n, unsigned idx, unsigned op_idx) {
    RuuEntry& e = ruu[idx];
    const u32 tok = ++op_token[idx * kMaxSlices + op_idx];
    int blocker = -1;
    const Cycle ready = op_ready_time(e, op_idx, &blocker);
    const OpRef ref{idx, e.seq, op_idx, tok,
                    (e.seq << 3) | slice_visit_pos(e.order, e.num_ops, op_idx),
                    sched_epoch};
    if (ready == kNever) {
      assert(blocker >= 0);
      NodeList& l = waiters[static_cast<unsigned>(blocker)];
      wait_pool[n].ref = ref;
      wait_pool[n].next = -1;
      if (l.tail < 0)
        l.head = n;
      else
        wait_pool[l.tail].next = n;
      l.tail = n;
    } else if (ready <= now) {
      pending.push_back(ref);
      wait_release(n);
    } else if (ready - now < kWheelSize) {
      const unsigned slot = static_cast<unsigned>(ready & (kWheelSize - 1));
      wait_pool[n].ref = ref;
      wait_pool[n].next = wheel_head[slot];
      wheel_head[slot] = n;
      wheel_bits[slot >> 6] |= u64{1} << (slot & 63);
      ++wheel_count;
    } else {
      far_push(ready, ref);
      wait_release(n);
    }
  }

  // Entry `idx` published a new time (an op was selected, or load data was
  // scheduled): re-evaluate every op blocked on it.
  void wake_waiters(unsigned idx) {
    // Detach the list head first: re-registration may relink onto this same
    // list mid-walk (requeue_node appends to the detached-and-reset list),
    // and a detached walk sees only the pre-wake nodes.
    int n = waiters[idx].head;
    if (n < 0) return;
    waiters[idx].head = waiters[idx].tail = -1;
    while (n >= 0) {
      const OpRef r = wait_pool[n].ref;
      const int next = wait_pool[n].next;
      if (ref_entry(r))
        requeue_node(n, r.idx, r.op_idx);
      else
        wait_release(n);
      n = next;
    }
  }

  // Number of low effective-address bits produced by cycle `c`.
  unsigned addr_bits_known_at(const RuuEntry& e, Cycle c) const {
    const Cycle* d = op_done_row(eidx(e));
    if (e.order == SliceOrder::Collect) return d[0] <= c ? 32 : 0;
    unsigned n = 0;
    while (n < e.num_ops && d[n] <= c) ++n;
    return n * geom.width();
  }

  // Cycle the full effective address exists (kNever if not yet).
  Cycle agen_complete_cycle(const RuuEntry& e) const {
    return last_op_done(eidx(e));
  }

  // Cycle the cache can consume the full effective address. With
  // sum-addressed memory the base+offset add happens inside the array
  // decoder, so the access overlaps the agen ops themselves: the address is
  // usable the cycle the last agen op is *selected*.
  Cycle full_addr_cycle(const RuuEntry& e) const {
    if (!core.has(Technique::SumAddressed)) return agen_complete_cycle(e);
    const unsigned idx = eidx(e);
    Cycle m = 0;
    for (unsigned i = 0; i < e.num_ops; ++i) {
      const Cycle s = op_sel_[idx * kMaxSlices + i];
      if (s == kNever) return kNever;
      m = std::max(m, s);
    }
    return m;
  }

  // When all slices of a store's *data* operand are available (kNever if the
  // producer has not finished).
  Cycle store_data_time(const RuuEntry& e) const {
    Cycle t = 0;
    for (unsigned k = 0; k < geom.count; ++k) {
      const Cycle s = source_slice_time(e, 1, k);
      if (s == kNever) return kNever;
      t = std::max(t, s);
    }
    return t;
  }

  // ---------------------------------------------------------------------------
  // dispatch-time setup
  // ---------------------------------------------------------------------------

  // --- dense predecoded instruction table ----------------------------------
  // One StaticInst row per text word (plus a shared nop row for off-image
  // wrong-path fetches): the complete dispatch-invariant schedule shape of
  // each instruction, derived once at construction.
  std::vector<StaticInst> stab;
  std::vector<u8> stab_ok;  // row decodes to a valid instruction
  StaticInst nop_si;

  StaticInst build_static(const DecodedInst& inst) const {
    StaticInst s;
    s.inst = inst;
    const ExecClass cls = inst.cls();
    s.kind = static_cast<u8>(cls);
    s.order = slice_order(cls, core);
    const bool multi = sliced_sched && is_sliceable(cls);
    s.num_ops = static_cast<u8>(multi ? geom.count : 1);
    switch (cls) {
      case ExecClass::Mul:
        s.op_latency = static_cast<u16>(core.mul_latency);
        break;
      case ExecClass::Div:
        s.op_latency = static_cast<u16>(core.div_latency);
        break;
      case ExecClass::Jump:
      case ExecClass::JumpReg:
      case ExecClass::Syscall:
        // Redirect/serialising ops: a single cycle once the (full) operand
        // exists — these do not flow through the sliced ALU pipeline.
        s.op_latency = static_cast<u16>(sliced_sched ? 1 : core.slices);
        break;
      case ExecClass::FpAlu:
      case ExecClass::FpCompare:
        s.op_latency = static_cast<u16>(core.fp_alu_latency);
        break;
      case ExecClass::FpBranch:
        s.op_latency = 1;  // reads one condition bit
        break;
      case ExecClass::FpMul:
        s.op_latency = static_cast<u16>(core.fp_mul_latency);
        break;
      case ExecClass::FpDiv:
        s.op_latency = static_cast<u16>(core.fp_div_latency);
        break;
      case ExecClass::FpSqrt:
        s.op_latency = static_cast<u16>(core.fp_sqrt_latency);
        break;
      default:
        s.op_latency = static_cast<u16>(multi ? 1 : core.slices);
        break;
    }

    u16 f = 0;
    if (inst.is_load()) f |= StaticInst::kFlagLoad;
    if (inst.is_store()) f |= StaticInst::kFlagStore;
    if (inst.is_mem()) f |= StaticInst::kFlagMem;
    if (inst.is_control()) f |= StaticInst::kFlagControl;
    if (inst.is_cond_branch()) f |= StaticInst::kFlagCondBranch;
    if (cls == ExecClass::JumpReg) f |= StaticInst::kFlagJumpReg;
    if (inst.writes_hi_lo()) f |= StaticInst::kFlagWritesHiLo;
    if (cls == ExecClass::Mul || cls == ExecClass::Div)
      f |= StaticInst::kFlagIntMulDiv;
    if (uses_fp_mul_div_unit(cls)) f |= StaticInst::kFlagFpMulDiv;
    if (uses_fp_alu(cls)) f |= StaticInst::kFlagFpAlu;
    if (inst.dest() != 0 && !inst.is_fp() &&
        core.has(Technique::NarrowWidth))
      f |= StaticInst::kFlagNarrowCand;
    if (cls == ExecClass::BranchEq && s.num_ops > 1 &&
        core.has(Technique::EarlyBranch))
      f |= StaticInst::kFlagEarlyEq;
    if (inst.is_cond_branch() || cls == ExecClass::JumpReg)
      f |= StaticInst::kFlagWatched;
    s.flags = f;

    // Static part of the result-time class; dispatch upgrades kResSliced to
    // kResNarrow when the dynamic narrow-width test passes. The priority
    // mirrors the original result_slice_time chain: load, compare, single.
    if (cls == ExecClass::Load)
      s.res_kind = kResLoad;
    else if (cls == ExecClass::Compare)
      s.res_kind = kResLast;
    else if (s.num_ops == 1)
      s.res_kind = kResSingle;
    else
      s.res_kind = kResSliced;

    s.src1_ext = static_cast<u8>(inst.src1_ext());
    s.src2_ext = static_cast<u8>(inst.src2_ext());
    s.dest_ext = static_cast<u8>(inst.dest_ext());
    if (inst.reads_hi_lo())
      s.hilo_src =
          static_cast<u8>(inst.op == Op::MFHI ? kHiReg : kLoReg);

    for (unsigned i = 0; i < s.num_ops; ++i)
      for (unsigned which = 0; which < 3; ++which)
        s.need[i][which] = static_source_need(inst, s.order, which, i);
    return s;
  }

  ProducerRef rename_source(unsigned reg) const {
    if (reg == 0) return ProducerRef{};  // $zero is always ready
    return rename[reg];
  }

  void dispatch_one(const FetchSlot& slot) {
    const unsigned idx = ruu_index(ruu_count);
    RuuEntry& e = ruu[idx];
    e.reset_for_dispatch();
    // This slot's previous occupant is gone: recycle its dependence edges
    // onto the node free lists in O(1). (Refs *to* the old occupant
    // elsewhere die via their seq checks.)
    cons_recycle(consumers[idx]);
    wait_recycle(waiters[idx]);
    const StaticInst* si = slot.si;
    e.valid = true;
    e.seq = next_seq++;
    e.pc = slot.pc;
    e.dispatch_cycle = now;
    e.predicted_taken = slot.predicted_taken;
    e.predicted_target = slot.predicted_target;
    e.history_checkpoint = slot.history_checkpoint;

    const bool correct_path = !wrong_path && slot.pc == oracle.pc();
    e.bogus = !correct_path;
    if (correct_path) {
      cpi_refill_pending = false;  // redirected path has reached the RUU
      const StepResult sr = oracle.step(&e.oracle);
      if (sr.kind == StepResult::Kind::Fault) {
        fail("oracle fault: " + sr.fault);
        return;
      }
      // The oracle decodes from live memory; the table row decodes the
      // construction-time image. On the (unsupported) self-modifying-text
      // path they can differ — refresh the row so the predecoded shape
      // stays authoritative, exactly as the per-dispatch re-decode did.
      if (si != &nop_si && e.oracle.inst.raw != si->inst.raw) {
        const std::size_t row = (slot.pc - prog.text_base) / 4;
        stab[row] = build_static(e.oracle.inst);
        stab_ok[row] = 1;
        si = &stab[row];
      }
      if (oracle.exited()) {
        halted = true;
        e.caused_exit = true;  // commit consults this when co-sim is off
      }

      const u32 predicted_next =
          slot.predicted_taken ? slot.predicted_target : slot.pc + 4;
      if ((si->flags & StaticInst::kFlagControl) &&
          predicted_next != e.oracle.next_pc) {
        e.mispredicted = true;
        wrong_path = true;
      }
      if (si->kind == static_cast<u8>(ExecClass::Jump)) {
        // Direct jumps carry their target; resolved at dispatch.
        e.resolved = true;
        e.resolve_cycle = now;
      }
    } else {
      ++stats.bogus_dispatched;
    }

    // Copy the predecoded schedule shape: this replaces the per-dispatch
    // class/order/latency/need-mask derivation entirely.
    e.si = si;
    e.inst = si->inst;
    e.flags = si->flags;
    e.num_ops = si->num_ops;
    e.op_latency = si->op_latency;
    e.order = si->order;
    e.ready_floor = now + core.issue_to_exec_stages;
    reset_ops(idx);

    e.res_kind = si->res_kind;
    if (!e.bogus && (si->flags & StaticInst::kFlagNarrowCand)) {
      const u32 v = e.oracle.dest_value;
      e.narrow_result = sign_extend(v & low_mask(geom.width()),
                                    geom.width()) == v;
      if (e.narrow_result) {
        ++stats.narrow_operands;
        if (e.res_kind == kResSliced) e.res_kind = kResNarrow;
      }
    }

    // Source renaming (extended ids: GPR/HI/LO/FP/FCC).
    e.sources[0] = rename_source(si->src1_ext);
    e.sources[1] = rename_source(si->src2_ext);
    if (si->hilo_src != 0) e.sources[2] = rename[si->hilo_src];

    // Register this entry on each in-flight producer's consumer list: the
    // selective-replay cascade walks these edges instead of the whole RUU.
    for (const ProducerRef& src : e.sources)
      if (src.index >= 0)
        cons_append(consumers[static_cast<unsigned>(src.index)],
                    ConsumerRef{idx, e.seq});

    // Destination renaming (wrong-path results feed wrong-path consumers),
    // saving the displaced mappings for O(squashed) recovery.
    const unsigned dest = si->dest_ext;
    if (dest != 0) {
      e.prev_dest = rename[dest];
      rename[dest] = ProducerRef{static_cast<int>(idx), e.seq};
    }
    if (si->flags & StaticInst::kFlagWritesHiLo) {
      e.prev_hi = rename[kHiReg];
      e.prev_lo = rename[kLoReg];
      rename[kHiReg] = ProducerRef{static_cast<int>(idx), e.seq};
      rename[kLoReg] = ProducerRef{static_cast<int>(idx), e.seq};
    }

    if (si->flags & StaticInst::kFlagMem) {
      lsq.push_back(static_cast<int>(idx));
      ++mem_active_;  // fresh mem ops enter in MemPhase::Agen
    }
    if (!e.bogus && (si->flags & StaticInst::kFlagWatched))
      branch_watch.push_back(ConsumerRef{idx, e.seq});

    // Hand every slice-op to the scheduler queues (source-need masks come
    // from the predecoded row).
    for (unsigned i = 0; i < e.num_ops; ++i) queue_op(idx, i);

    ++ruu_count;
    ++stats.dispatched;
    cycle_activity = true;

    if (obs_on) {
      const std::string dis = disassemble(e.inst, e.pc);
      obs::TraceEvent ev;
      ev.kind = obs::EventKind::Dispatch;
      ev.cycle = now;
      ev.seq = e.seq;
      ev.pc = e.pc;
      ev.flags = (e.bogus ? obs::kFlagBogus : 0u) |
                 (e.mispredicted ? obs::kFlagMispredicted : 0u);
      ev.text = dis.c_str();
      emit(ev);
    }
  }

  void dispatch() {
    dispatch_blocked_until = kNever;
    unsigned n = 0;
    while (n < core.fetch_width && !fetch_q.empty()) {
      const FetchSlot& slot = fetch_q.front();
      if (slot.dispatch_ready > now) {
        // Still in the front end: the idle skip may jump to this cycle.
        // (When dispatch stops for lack of RUU/LSQ space instead, the
        // unblocking commit is already covered by the timer set.)
        dispatch_blocked_until = slot.dispatch_ready;
        break;
      }
      if (ruu_count >= core.ruu_entries) break;
      if ((slot.si->flags & StaticInst::kFlagMem) &&
          lsq.size() >= core.lsq_entries)
        break;
      if (halted) {
        // Exit syscall already dispatched: drop drained slots.
        fetch_q.pop_front();
        cycle_activity = true;
        continue;
      }
      dispatch_one(slot);
      fetch_q.pop_front();
      ++n;
      if (!error.empty()) return;
    }
  }

  // ---------------------------------------------------------------------------
  // fetch
  // ---------------------------------------------------------------------------

  // Fetch resolves straight into the predecoded static table (built once at
  // construction; decoding per fetch slot per cycle was ~25% of whole-run
  // profiles). Off-text or undecodable words fetch the shared nop row.
  const StaticInst* fetch_static(u32 pc) const {
    if (pc < prog.text_base || pc >= prog.text_end() || pc % 4 != 0)
      return nullptr;
    const std::size_t row = (pc - prog.text_base) / 4;
    return stab_ok[row] ? &stab[row] : nullptr;
  }

  void fetch() {
    if (halted || now < fetch_stall_until) return;
    if (fetch_q.size() >= ifq_capacity) return;

    // Same-line fast path: the I-cache is only ever touched here, so the
    // line probed by the previous fetch group is still resident — a repeat
    // probe is a hit by construction (LRU: the line is already MRU, so the
    // skipped touch is a no-op for replacement order).
    const u32 line = fetch_pc & ~(cfg.memory.l1i.line_bytes - 1);
    unsigned icache_lat;
    if (line == last_fetch_line_) {
      icache_lat = cfg.memory.l1i_latency;
    } else {
      icache_lat = mem.fetch_latency(fetch_pc);
      last_fetch_line_ = line;
    }
    Cycle ready = now + core.front_end_stages;
    if (icache_lat > cfg.memory.l1i_latency) {
      // I$ miss: the group arrives late and fetch stalls for the duration.
      ready += icache_lat - cfg.memory.l1i_latency;
      fetch_stall_until = now + (icache_lat - cfg.memory.l1i_latency);
    }

    for (unsigned i = 0; i < core.fetch_width; ++i) {
      FetchSlot slot;
      slot.pc = fetch_pc;
      slot.dispatch_ready = ready;
      const StaticInst* s = fetch_static(fetch_pc);
      slot.si = s ? s : &nop_si;  // off-the-end wrong path
      cycle_activity = true;
      if (slot.si->flags & StaticInst::kFlagControl) {
        const BranchPrediction p = predictor.predict(slot.pc, slot.si->inst);
        slot.predicted_taken = p.taken;
        slot.predicted_target = p.target;
        slot.history_checkpoint = p.history_checkpoint;
        fetch_q.push_back(slot);
        if (p.taken && p.target != slot.pc + 4) {
          fetch_pc = p.target;
          break;  // group ends at a taken branch
        }
        fetch_pc = slot.pc + 4;
      } else {
        fetch_q.push_back(slot);
        fetch_pc += 4;
      }
    }
  }

  // ---------------------------------------------------------------------------
  // select & execute
  // ---------------------------------------------------------------------------

  void select_and_execute() {
    // Per-slice-datapath issue slots this cycle. Unsliced machines and
    // collect ops use datapath 0; FP ops use their own unit pool.
    std::array<unsigned, kMaxSlices> slots{};
    unsigned fp_alu_used = 0;
    const unsigned per_slice_limit = std::min(core.issue_width, core.int_alus);

    // Pull every op whose scheduled wake cycle has arrived into `pending`.
    // (Wheel slots strictly between skipped cycles are empty by construction
    // of the idle skip, so draining just now's slot is complete.)
    if (wheel_count) {
      const unsigned slot = static_cast<unsigned>(now & (kWheelSize - 1));
      int n = wheel_head[slot];
      if (n >= 0) {
        wheel_head[slot] = -1;
        wheel_bits[slot >> 6] &= ~(u64{1} << (slot & 63));
        while (n >= 0) {
          const int next = wait_pool[static_cast<unsigned>(n)].next;
          pending.push_back(wait_pool[static_cast<unsigned>(n)].ref);
          wait_release(n);
          --wheel_count;
          n = next;
        }
      }
    }
    if (far_count || !far_overflow.empty()) drain_far();
    if (pending.empty()) return;

    // Select in the order the scan-based scheduler examined ops: oldest
    // entry first, then slice visit order within the entry. Same-cycle
    // selections never make *other* ops ready this same cycle (op latency is
    // >= 1), so ordering the candidate set up front is exact. order_by_key
    // replaces the former std::sort with an insertion/bucket scheme on the
    // single-integer key (see core/select_order.hpp for the invariant).
    std::vector<OpRef>& cands = cand_scratch;
    cands.clear();
    cands.swap(pending);
    order_by_key(cands, sel_scratch);

    for (const OpRef& r : cands) {
      RuuEntry* pe = ref_entry(r);
      if (!pe) continue;  // squashed / committed / requeued since
      RuuEntry& e = *pe;
      const unsigned op_idx = r.op_idx;
      const u16 fl = e.flags;
      const bool fp_unit =
          (fl & (StaticInst::kFlagFpAlu | StaticInst::kFlagFpMulDiv)) != 0;

      // Issue-slot limit is checked before readiness, as in the scan.
      const unsigned datapath = e.num_ops > 1 ? op_idx : 0;
      if (!fp_unit && slots[datapath] >= per_slice_limit) {
        pending.push_back(r);  // slot-blocked: stays ready for next cycle
        continue;
      }

      // Re-derive readiness only when a replay may have regressed an
      // operand since this ref was queued (the epoch stamp went stale).
      // Times only move later, never earlier, so an op can need requeueing
      // but never selection *earlier* than its ref; with the epoch intact
      // the queue-time ready cycle is still exact and is <= now here.
      if (r.epoch != sched_epoch) {
        const Cycle ready = op_ready_time(e, op_idx);
        if (ready == kNever || ready > now) {
          queue_op(r.idx, op_idx);
          continue;
        }
      }

      // Structural hazards: single unpipelined integer and FP
      // mul/div(/sqrt) units; a pool of `fp_alus` FP ALUs.
      if (fl & StaticInst::kFlagIntMulDiv) {
        if (now < mul_div_busy_until) {
          pending.push_back(r);
          continue;
        }
        mul_div_busy_until = now + e.op_latency;
      }
      if (fl & StaticInst::kFlagFpMulDiv) {
        if (now < fp_mul_div_busy_until) {
          pending.push_back(r);
          continue;
        }
        fp_mul_div_busy_until = now + e.op_latency;
      }
      if (fl & StaticInst::kFlagFpAlu) {
        if (fp_alu_used >= core.fp_alus) {
          pending.push_back(r);
          continue;
        }
        ++fp_alu_used;
      }

      const Cycle done = now + e.op_latency;
      op_sel(r.idx, op_idx) = now;
      op_done(r.idx, op_idx) = done;
      ++op_token[r.idx * kMaxSlices + op_idx];  // selected: retire the ref
      if (!fp_unit) ++slots[datapath];
      arm_timer(done);
      cycle_activity = true;
      // A newly defined done time may unblock ops waiting on this entry.
      // Wakes are deferred to one deduped pass after the candidate walk:
      // every published done is >= now + 1, so a woken op can never become
      // a candidate this same cycle, and a producer selecting several ops
      // this cycle wakes its waiters once against the final state (which
      // also spares the per-selection re-register/re-detach churn).
      if (!wake_mark[r.idx]) {
        wake_mark[r.idx] = 1;
        wake_scratch.push_back(r.idx);
      }
      if (obs_on) {
        obs::TraceEvent ev;
        ev.kind = obs::EventKind::OpSelect;
        ev.cycle = now;
        ev.seq = e.seq;
        ev.pc = e.pc;
        ev.op_idx = op_idx;
        ev.a = done;
        ev.flags = e.num_ops > 1 ? obs::kFlagMultiOp : 0u;
        emit(ev);
      }
    }
    for (const unsigned idx : wake_scratch) {
      wake_mark[idx] = 0;
      wake_waiters(idx);
    }
    wake_scratch.clear();
  }

  // ---------------------------------------------------------------------------
  // memory pipeline (loads & stores)
  // ---------------------------------------------------------------------------

  // View of the store at LSQ slot `slot` as the disambiguator sees it now.
  StoreView store_view_of(std::size_t slot) const {
    const RuuEntry& s = ruu[static_cast<unsigned>(lsq[slot])];
    StoreView v;
    v.id = lsq[slot];
    if (s.bogus) {
      v.addr_known_bits = 0;  // wrong-path store: address never produced
    } else {
      v.addr_known_bits = addr_bits_known_at(s, now);
      v.addr = s.oracle.mem_addr;
      v.bytes = s.oracle.mem_bytes;
      const Cycle dt = store_data_time(s);
      v.data_ready = dt != kNever && dt <= now;
      v.data = s.oracle.store_value;
    }
    return v;
  }

  // Publishes a (possibly speculative) load data time: arms the wakeup
  // timers for the data return and its verification point, and re-evaluates
  // consumers blocked on the previously undefined time.
  void publish_load_data(unsigned idx) {
    RuuEntry& e = ruu[idx];
    cycle_activity = true;
    if (e.data_cycle != kNever) {
      arm_timer(e.data_cycle);
      if (!e.data_final) arm_timer(e.data_cycle + 1);  // verify next cycle
    }
    wake_waiters(idx);
  }

  void start_load_access(RuuEntry& e, unsigned bits_known) {
    const u32 addr = e.oracle.mem_addr;
    Cache& l1d = mem.l1d();
    const unsigned tag_lo = l1d.geometry().tag_lo_bit();
    e.access_start_cycle = now;

    if (bits_known < 32) {
      // Partial-tag early access (only reachable when the technique is on).
      const unsigned avail_tag = bits_known - tag_lo;
      assert(avail_tag >= 1 && avail_tag < l1d.geometry().tag_bits());
      const u32 ways = l1d.partial_match_ways(addr, avail_tag);
      if (ways == 0) {
        // Early, non-speculative miss: start the L2 path immediately.
        bool hit = false;
        const unsigned lat = mem.data_latency(addr, false, &hit);
        assert(!hit);
        ++stats.l1d_misses;
        ++stats.early_miss_detects;
        e.early_miss = true;
        e.used_partial_tag = true;
        e.data_cycle = now + lat;
        e.data_final = true;
        set_mem_phase(e, MemPhase::Done);
        return;
      }
      ++stats.partial_tag_accesses;
      e.used_partial_tag = true;
      u32 rng = static_cast<u32>(e.seq);
      const auto way =
          l1d.predict_way(addr, ways, core.way_policy, &rng);
      e.forward_store = -1;
      set_mem_phase(e, MemPhase::Access);
      e.data_cycle = now + l1d.hit_latency();  // speculative return
      e.data_final = false;
      // Remember the prediction in `predicted_target` is taken; use a
      // dedicated field instead:
      e.predicted_way = way ? static_cast<int>(*way) : -1;
      return;
    }

    // Conventional access with the complete address. Dependents are woken
    // assuming an L1 hit (speculative scheduling); a miss retimes the data
    // and replays them.
    bool hit = false;
    const unsigned lat = mem.data_latency(addr, false, &hit);
    if (hit) {
      ++stats.l1d_hits;
      e.data_cycle = now + lat;
      e.data_final = true;
      set_mem_phase(e, MemPhase::Done);
    } else {
      ++stats.l1d_misses;
      e.data_cycle = now + l1d.hit_latency();  // optimistic wakeup
      e.true_data_cycle = now + lat;
      e.data_final = false;
      set_mem_phase(e, MemPhase::Access);
      e.predicted_way = -2;  // marker: plain hit-speculation, not way pred.
    }
  }

  void verify_load(RuuEntry& e) {
    // Called when the full address exists (partial-tag path) or at the
    // optimistic wakeup time (hit-speculation path).
    Cache& l1d = mem.l1d();
    const u32 addr = e.oracle.mem_addr;

    if (e.predicted_way == -2) {
      // Hit-speculation on a known miss: retime and replay consumers.
      ++stats.load_replays;
      if (obs_on) emit_verify(e, 1, e.true_data_cycle, true);
      retime_load(e, e.true_data_cycle);
      return;
    }

    const auto actual = l1d.find(addr);
    bool hit = false;
    const unsigned lat = mem.data_latency(addr, false, &hit);
    if (hit) ++stats.l1d_hits; else ++stats.l1d_misses;

    if (hit && actual && e.predicted_way == static_cast<int>(*actual)) {
      e.data_final = true;  // speculation confirmed, data time stands
      set_mem_phase(e, MemPhase::Done);
      cycle_activity = true;
      if (obs_on) emit_verify(e, 0, e.data_cycle, false);
      return;
    }
    if (hit) {
      // Way misprediction: one replayed access.
      ++stats.way_mispredicts;
      ++stats.load_replays;
      if (obs_on) emit_verify(e, 2, now + l1d.hit_latency(), true);
      retime_load(e, now + l1d.hit_latency());
    } else {
      ++stats.load_replays;
      if (obs_on) emit_verify(e, 3, now + lat, true);
      retime_load(e, now + lat);
    }
  }

  void retime_load(RuuEntry& e, Cycle new_data_cycle) {
    const unsigned idx = static_cast<unsigned>(&e - ruu.data());
    e.data_cycle = new_data_cycle;
    e.data_final = true;
    set_mem_phase(e, MemPhase::Done);
    publish_load_data(idx);
    // The data moved later: everything scheduled against the speculative
    // time (and, transitively, its dependents) must be re-examined.
    ++sched_epoch;
    schedule_consumers(idx);
    run_relax();
  }

  void memory_progress() {
    // Every resident memory op has reached MemPhase::Done: the walk below
    // would only skip over finished entries, so don't walk at all. (Commit
    // drains Done entries from the head; replay re-raises the counter
    // through set_mem_phase before anything can regress.)
    if (mem_active_ == 0) return;
    unsigned ports_used = 0;
    // Store views for the walked LSQ prefix, extended incrementally as the
    // walk advances (the scan rebuilt them per load, an O(LSQ^2) cost) and
    // invalidated wholesale when a replay this cycle regresses recorded
    // times — a store's address/data availability may have moved later.
    std::vector<StoreView>& views = views_scratch;
    views.clear();
    std::size_t views_built = 0;
    u64 views_epoch = sched_epoch;
    const auto refresh_views = [&](std::size_t upto) {
      if (views_epoch != sched_epoch) {
        views.clear();
        views_built = 0;
        views_epoch = sched_epoch;
      }
      for (; views_built < upto; ++views_built) {
        const RuuEntry& s = ruu[static_cast<unsigned>(lsq[views_built])];
        if (!s.valid || !(s.flags & StaticInst::kFlagStore)) continue;
        views.push_back(store_view_of(views_built));
      }
    };

    bool first_active_found = false;
    for (std::size_t i = std::min(mem_scan_from, lsq.size());
         i < lsq.size(); ++i) {
      const unsigned idx = static_cast<unsigned>(lsq[i]);
      RuuEntry& e = ruu[idx];
      if (!e.valid) continue;
      if (!first_active_found && e.mem_phase != MemPhase::Done) {
        first_active_found = true;
        mem_scan_from = i;
      }

      if (e.flags & StaticInst::kFlagStore) {
        if (e.mem_phase == MemPhase::Done) continue;
        if (e.bogus) {
          if (ops_done(idx, now)) {
            set_mem_phase(e, MemPhase::Done);
            cycle_activity = true;
          }
          continue;
        }
        const Cycle addr_t = agen_complete_cycle(e);
        const Cycle data_t = store_data_time(e);
        if (addr_t != kNever && addr_t <= now && data_t != kNever &&
            data_t <= now) {
          set_mem_phase(e, MemPhase::Done);
          cycle_activity = true;
        }
        continue;
      }

      if (!(e.flags & StaticInst::kFlagLoad)) continue;
      if (e.bogus) {
        // Wrong-path load: occupies the queue; completes after agen.
        if (e.mem_phase == MemPhase::Agen && ops_done(idx, now)) {
          e.data_cycle = now + mem.l1d().hit_latency();
          e.data_final = true;
          set_mem_phase(e, MemPhase::Done);
          publish_load_data(idx);  // wrong-path consumers still schedule
        }
        continue;
      }

      switch (e.mem_phase) {
        case MemPhase::Agen: {
          const unsigned bits = addr_bits_known_at(e, now);
          if (bits == 0) break;

          // LSQ disambiguation.
          refresh_views(i);
          LoadQuery q{bits, e.oracle.mem_addr, e.oracle.mem_bytes};
          const DisambigResult d = disambiguate_load(
              q, views, core.has(Technique::EarlyLsq),
              core.has(Technique::SpecForward));
          if (d.decision == LoadDecision::WaitStore) break;
          if (e.lsq_decision_cycle == kNever) {
            e.lsq_decision_cycle = now;
            cycle_activity = true;
            if (d.used_partial) {
              e.used_partial_lsq = true;
              ++stats.loads_issued_partial_lsq;
            }
            if (obs_on) {
              obs::TraceEvent ev;
              ev.kind = obs::EventKind::LsqDecision;
              ev.cycle = now;
              ev.seq = e.seq;
              ev.pc = e.pc;
              ev.a = bits;
              ev.b = d.decision == LoadDecision::Forward       ? 1
                     : d.decision == LoadDecision::SpecForward ? 2
                                                               : 0;
              ev.flags = d.used_partial ? obs::kFlagPartial : 0u;
              emit(ev);
            }
          }

          if (d.decision == LoadDecision::Forward) {
            ++stats.load_forwards;
            e.forwarded = true;
            e.forward_store = d.store_id;
            e.forward_store_seq = ruu[d.store_id].seq;
            e.data_cycle = now + 1;
            e.data_final = true;
            set_mem_phase(e, MemPhase::Done);
            // Replay edge: if the store's address/data times regress, this
            // load's forward must be revalidated.
            cons_append(consumers[static_cast<unsigned>(d.store_id)],
                        ConsumerRef{idx, e.seq});
            publish_load_data(idx);
            break;
          }
          if (d.decision == LoadDecision::SpecForward) {
            ++stats.spec_forwards;
            e.forwarded = true;
            e.forward_store = d.store_id;
            e.forward_store_seq = ruu[d.store_id].seq;
            e.spec_forward_value = d.forwarded;
            e.data_cycle = now + 1;
            e.data_final = false;
            e.predicted_way = -3;
            set_mem_phase(e, MemPhase::Access);
            cons_append(consumers[static_cast<unsigned>(d.store_id)],
                        ConsumerRef{idx, e.seq});
            publish_load_data(idx);
            break;
          }

          // decision == Issue: start the cache access when enough address
          // bits exist.
          const unsigned tag_lo = mem.l1d().geometry().tag_lo_bit();
          const Cycle full_at = full_addr_cycle(e);
          const bool full_now = full_at != kNever && full_at <= now;
          const bool can_partial = core.has(Technique::PartialTag) &&
                                   bits > tag_lo && bits < 32 && !full_now;
          if (full_now || can_partial) {
            if (ports_used >= kDCachePorts) {
              retry_this_cycle = true;  // port conflict: retry next cycle
              break;
            }
            ++ports_used;
            start_load_access(e, full_now ? 32 : bits);
            publish_load_data(idx);
            if (obs_on) {
              obs::TraceEvent ev;
              ev.kind = obs::EventKind::CacheAccess;
              ev.cycle = now;
              ev.seq = e.seq;
              ev.pc = e.pc;
              ev.a = e.data_cycle;
              ev.b = bits;  // the text sink's label reads this, as the
                            // inline trace always did
              ev.flags = (e.used_partial_tag ? obs::kFlagPartial : 0u) |
                         (e.early_miss ? obs::kFlagEarly : 0u);
              emit(ev);
            }
          }
          break;
        }
        case MemPhase::Access: {
          // Verification happens the cycle *after* the speculative data
          // return (paper Figure 3: "verify with full tag bits on next
          // cycle"), so dependents selected against the speculative time are
          // genuinely in flight and must replay on a mis-speculation.
          const Cycle full_at = full_addr_cycle(e);
          const bool full_addr = full_at != kNever && full_at <= now;
          if (now < e.data_cycle + 1) break;
          if (e.predicted_way == -3) {
            // Speculative partial-match forward: the full address settles
            // whether the forwarded value was the architecturally loaded
            // one.
            if (!full_addr) break;
            if (e.spec_forward_value == e.oracle.load_value) {
              e.data_final = true;
              set_mem_phase(e, MemPhase::Done);
              cycle_activity = true;
              if (obs_on) emit_verify(e, 4, e.data_cycle, false);
            } else {
              ++stats.spec_forward_misses;
              if (obs_on) emit_verify(e, 5, 0, true);
              reset_load(e);
              // Data regressed to undefined: replay the dependence cone.
              ++sched_epoch;
              cycle_activity = true;
              schedule_consumers(idx);
              run_relax();
            }
            break;
          }
          if (e.predicted_way == -2 || full_addr) verify_load(e);
          break;
        }
        case MemPhase::Done:
          break;
      }
    }
  }

  // ---------------------------------------------------------------------------
  // selective replay: relaxation to a legal schedule
  // ---------------------------------------------------------------------------

  void schedule_relax(unsigned idx) {
    if (relax_queued[idx]) return;
    relax_queued[idx] = 1;
    relax_work.push_back(idx);
  }

  // Queue every live dependent of `idx` for replay revalidation, pruning
  // edges to recycled entries along the way. Order is preserved (the relax
  // work list order feeds the replay fixpoint exactly as the vector did);
  // dead edges are unlinked in place and returned to the node pool.
  void schedule_consumers(unsigned idx) {
    NodeList& list = consumers[idx];
    int prev = -1;
    int n = list.head;
    while (n >= 0) {
      ConsNode& node = cons_pool[static_cast<unsigned>(n)];
      const int next = node.next;
      const RuuEntry& d = ruu[node.ref.idx];
      if (!d.valid || d.seq != node.ref.seq) {
        // Dead edge: unlink and free.
        if (prev < 0)
          list.head = next;
        else
          cons_pool[static_cast<unsigned>(prev)].next = next;
        if (next < 0) list.tail = prev;
        node.next = cons_free;
        cons_free = n;
      } else {
        schedule_relax(node.ref.idx);
        prev = n;
      }
      n = next;
    }
  }

  // Selective replay: relaxation to a legal schedule. The scan-based
  // scheduler re-validated the entire window to a global fixpoint after any
  // retiming; this walks only the transitive dependents of the changed
  // entries (the consumer edges registered at rename plus the dynamic
  // store->forwarded-load edges), which reaches the same fixpoint — an op's
  // legality depends only on its sources' recorded times, its own chain
  // predecessors and dispatch-time constants.
  void run_relax() {
    // Sub-phase timing: relaxation runs inside memory_progress, so this
    // time is *also* counted in hprof.memory (see obs/host_profile.hpp).
    HpClock::time_point t0;
    if (host_profile_on) t0 = HpClock::now();
    while (!relax_work.empty()) {
      const unsigned idx = relax_work.back();
      relax_work.pop_back();
      relax_queued[idx] = 0;
      RuuEntry& e = ruu[idx];
      if (!e.valid) continue;
      bool changed = false;

      // Revert this entry's slice-ops whose select is no longer legal, to a
      // local fixpoint (reverting one op can invalidate its chain
      // successor). Operand availability is checked against *current*
      // times: values never become available earlier than currently
      // recorded, so a select that still postdates every requirement
      // remains legal.
      bool again = true;
      while (again) {
        again = false;
        for (unsigned i = 0; i < e.num_ops; ++i) {
          Cycle& sel = op_sel(idx, i);
          if (sel == kNever) continue;  // not selected
          const Cycle ready = op_ready_time(e, i);
          if (ready == kNever || ready > sel) {
            sel = kNever;
            op_done(idx, i) = kNever;
            ++stats.op_replays;
            queue_op(idx, i);  // back into the scheduler queues
            changed = true;
            again = true;
            if (obs_on) {
              obs::TraceEvent ev;
              ev.kind = obs::EventKind::OpReplay;
              ev.cycle = now;
              ev.seq = e.seq;
              ev.pc = e.pc;
              ev.op_idx = i;
              ev.flags = e.num_ops > 1 ? obs::kFlagMultiOp : 0u;
              emit(ev);
            }
          }
        }
      }
      if ((e.flags & StaticInst::kFlagLoad) && !e.bogus) {
        changed |= revalidate_load(e);
      }
      if ((e.flags & StaticInst::kFlagStore) &&
          e.mem_phase == MemPhase::Done && !e.bogus) {
        const Cycle addr_t = agen_complete_cycle(e);
        const Cycle data_t = store_data_time(e);
        if (addr_t == kNever || addr_t > now || data_t == kNever ||
            data_t > now) {
          set_mem_phase(e, MemPhase::Agen);
          changed = true;
        }
      }
      if ((e.flags & StaticInst::kFlagCondBranch) && e.resolved &&
          !e.recovery_done) {
        // Resolution may have been based on a reverted compare op; let the
        // resolve scan recompute it. (A branch whose recovery already
        // redirected fetch keeps it: the direction was architecturally
        // correct, only its timing was optimistic.)
        if (resolve_time(e) > e.resolve_cycle) {
          e.resolved = false;
          e.resolve_cycle = kNever;
          changed = true;
        }
      }

      if (changed) {
        ++sched_epoch;
        cycle_activity = true;
      }
      // A store relays regressions onward even when nothing about the store
      // itself changed: a forwarded load compares against the store's
      // *source* times, which this entry-local check does not observe.
      if (changed || ((e.flags & StaticInst::kFlagStore) && !e.bogus))
        schedule_consumers(idx);
    }
    if (host_profile_on) hp_take(t0, hprof.replay);
  }

  bool revalidate_load(RuuEntry& e) {
    bool changed = false;
    // Forwarded data must still be legal: the decision cycle (data_cycle - 1)
    // must postdate the store's address, the store's data and — for a
    // confirmed (non-speculative) forward — the load's own full address.
    // A committed forwarding store is always legal.
    const bool spec_forward =
        e.forwarded && e.mem_phase == MemPhase::Access &&
        e.predicted_way == -3;
    if (e.forwarded && (e.mem_phase == MemPhase::Done || spec_forward)) {
      const Cycle decision = e.data_cycle - 1;
      bool legal = spec_forward ||
                   addr_bits_known_at(e, decision) == 32;
      const RuuEntry& s = ruu[e.forward_store];
      if (legal && s.valid && s.seq == e.forward_store_seq) {
        const Cycle dt = store_data_time(s);
        const Cycle at = agen_complete_cycle(s);
        legal = dt != kNever && dt <= decision && at != kNever &&
                at <= decision;
      }
      if (!legal) {
        reset_load(e);
        changed = true;
      }
    }
    // An access that started before its address bits were really there.
    if (e.access_start_cycle != kNever) {
      bool legal;
      if (e.used_partial_tag || e.early_miss) {
        const unsigned tag_lo = mem.l1d().geometry().tag_lo_bit();
        legal = addr_bits_known_at(e, e.access_start_cycle) > tag_lo;
      } else {
        const Cycle full_at = full_addr_cycle(e);
        legal = full_at != kNever && full_at <= e.access_start_cycle;
      }
      if (!legal) {
        reset_load(e);
        changed = true;
      }
    }
    return changed;
  }

  void reset_load(RuuEntry& e) {
    set_mem_phase(e, MemPhase::Agen);
    e.lsq_decision_cycle = kNever;
    e.access_start_cycle = kNever;
    e.data_cycle = kNever;
    e.true_data_cycle = kNever;
    e.data_final = false;
    e.forwarded = false;
    e.forward_store = -1;
    e.predicted_way = -1;
    ++stats.load_replays;
  }

  // ---------------------------------------------------------------------------
  // branch resolution & recovery
  // ---------------------------------------------------------------------------

  // Earliest cycle at which the branch outcome is provable from the compare
  // slice-ops that have executed; kNever if not yet provable.
  Cycle resolve_time(const RuuEntry& e) const {
    const unsigned idx = eidx(e);
    // kFlagEarlyEq is predecoded as: BranchEq, multi-op, EarlyBranch on.
    if (!(e.flags & StaticInst::kFlagEarlyEq)) return last_op_done(idx);

    // BranchEq with early resolution: a differing slice proves "not equal"
    // the moment its comparison completes; equality needs all slices.
    const u32 a = e.oracle.src1_value, b = e.oracle.src2_value;
    if (a == b) return last_op_done(idx);
    const Cycle* d = op_done_row(idx);
    Cycle best = kNever;
    for (unsigned s = 0; s < e.num_ops; ++s) {
      if (slice_get(geom, a, s) == slice_get(geom, b, s)) continue;
      if (d[s] != kNever) best = std::min(best, d[s]);
    }
    return best;
  }

  void squash_younger_than(u64 seq) {
    while (ruu_count > 0 && youngest().seq > seq) {
      RuuEntry& victim = youngest();
      if (obs_on) {
        obs::TraceEvent ev;
        ev.kind = obs::EventKind::Squash;
        ev.cycle = now;
        ev.seq = victim.seq;
        ev.pc = victim.pc;
        ev.flags = victim.bogus ? obs::kFlagBogus : 0u;
        // Cause taxonomy (obs/trace.hpp): squashes are always charged to
        // the branch-squash leaf, so traces agree with the CPI stack.
        ev.b = 1 + static_cast<u64>(obs::CpiCause::BrSquash);
        emit(ev);
      }
      if (victim.flags & StaticInst::kFlagMem) {
        assert(!lsq.empty() &&
               lsq.back() == static_cast<int>(ruu_index(ruu_count - 1)));
        lsq.pop_back();
        if (victim.mem_phase != MemPhase::Done) --mem_active_;
        if (mem_scan_from > lsq.size()) mem_scan_from = lsq.size();
      }
      // Unwind the rename map from the undo log, youngest-first and in
      // reverse of dispatch's write order. This replaces the scan-based
      // O(RUU) rebuild; a restored reference to a since-committed producer
      // fails its seq check everywhere and thus reads as from-regfile,
      // exactly as the rebuild (which never sees committed producers)
      // produced.
      if (victim.flags & StaticInst::kFlagWritesHiLo) {
        rename[kLoReg] = victim.prev_lo;
        rename[kHiReg] = victim.prev_hi;
      }
      const unsigned dest = victim.si->dest_ext;
      if (dest != 0) rename[dest] = victim.prev_dest;
      victim.valid = false;  // queued scheduler refs die via this
      --ruu_count;
    }
  }

  void resolve_and_recover() {
    // Walk the watch list (correct-path branches in dispatch order) instead
    // of the whole RUU, compacting out refs to squashed/committed entries.
    // After a recovery the scan stopped examining younger branches (they
    // were just squashed); `recovered` replicates that early exit while the
    // compaction still copies the remaining refs.
    std::size_t w = 0;
    bool recovered = false;
    for (const ConsumerRef& c : branch_watch) {
      RuuEntry& e = ruu[c.idx];
      if (!e.valid || e.seq != c.seq) continue;  // squashed or committed
      branch_watch[w++] = c;
      if (recovered || e.resolved) continue;

      const Cycle rt = resolve_time(e);
      if (rt == kNever || rt > now) continue;
      e.resolved = true;
      e.resolve_cycle = rt;
      cycle_activity = true;
      if (!ops_done(c.idx, rt)) ++stats.early_resolved_branches;
      if (obs_on) {
        obs::TraceEvent ev;
        ev.kind = obs::EventKind::BranchResolve;
        ev.cycle = now;
        ev.seq = e.seq;
        ev.pc = e.pc;
        ev.a = rt;
        ev.flags = (ops_done(c.idx, rt) ? 0u : obs::kFlagEarly) |
                   (e.mispredicted ? obs::kFlagMispredicted : 0u);
        emit(ev);
      }

      predictor.resolve(e.pc, e.inst, e.oracle.branch_taken,
                        e.oracle.next_pc, e.history_checkpoint);

      if (e.mispredicted && !e.recovery_done) {
        e.recovery_done = true;
        if (e.flags & StaticInst::kFlagCondBranch)
          predictor.repair_history(e.history_checkpoint,
                                   e.oracle.branch_taken);
        else
          predictor.repair_history_exact(e.history_checkpoint);
        squash_younger_than(e.seq);
        fetch_q.clear();
        fetch_pc = e.oracle.next_pc;
        fetch_stall_until = now + 1;
        wrong_path = false;
        cpi_refill_pending = true;  // empty-RUU cycles until the redirected
                                    // path dispatches are squash shadow
        recovered = true;  // younger refs are now dead; stop processing
      }
    }
    branch_watch.resize(w);
  }

  // ---------------------------------------------------------------------------
  // commit
  // ---------------------------------------------------------------------------

  bool committable(const RuuEntry& e) const {
    if (e.bogus) return false;
    if (!ops_done(eidx(e), now)) return false;
    const u16 fl = e.flags;
    if (fl & StaticInst::kFlagLoad)
      return e.data_final && e.data_cycle <= now;
    if (fl & StaticInst::kFlagStore) return e.mem_phase == MemPhase::Done;
    if (fl & StaticInst::kFlagWatched)
      return e.resolved && e.resolve_cycle <= now;
    return true;
  }

  // Batched commit: committability is a pure function of entry state and
  // `now` — it never depends on same-cycle commits — so the retirement run
  // length is fixed by one pre-scan of the head before any bookkeeping
  // starts. The run is then processed with stats deltas accumulated in
  // registers and flushed once (the checker must still step sequentially:
  // it is the architectural reference). Invariant: the deltas are flushed
  // before *every* exit path, including co-simulation failures mid-run.
  void commit() {
    if (ruu_count == 0 || stats.committed >= max_commits_) return;
    const u64 budget = std::min<u64>(core.commit_width,
                                     max_commits_ - stats.committed);
    unsigned run = 0;
    while (run < budget && run < ruu_count) {
      const RuuEntry& e = entry_at(run);
      if (e.bogus || !committable(e)) break;
      ++run;
    }
    u64 d_committed = 0, d_loads = 0, d_stores = 0, d_branches = 0;
    u64 d_mispredicts = 0, d_l1d_hits = 0, d_l1d_misses = 0;
    const auto flush = [&] {
      stats.committed += d_committed;
      stats.loads += d_loads;
      stats.stores += d_stores;
      stats.branches += d_branches;
      stats.branch_mispredicts += d_mispredicts;
      stats.l1d_hits += d_l1d_hits;
      stats.l1d_misses += d_l1d_misses;
    };

    for (unsigned k = 0; k < run; ++k) {
      RuuEntry& e = entry_at(0);

      // Co-simulation: the independent checker must agree on every effect.
      // Full mode checks every commit; spot mode checks every Nth plus
      // every mispredicted-branch / syscall boundary (catching the checker
      // up through run_fast first); off mode skips the checker entirely.
      // Sub-phase timing: this is part of hprof.commit as well.
      bool checked = cosim_mode_ != CosimMode::kOff;
      if (cosim_mode_ == CosimMode::kSpot)
        checked = e.mispredicted ||
                  e.si->kind == static_cast<u8>(ExecClass::Syscall) ||
                  --cosim_countdown_ == 0;
      if (inject_at_ != 0 && stats.committed + d_committed + 1 >= inject_at_) {
        checker.set_reg(inject_reg_, checker.reg(inject_reg_) ^ 1);
        inject_at_ = 0;
      }
      if (checked) {
        cosim_countdown_ = cosim_period_;
        ExecRecord ref;
        HpClock::time_point t0;
        if (host_profile_on) t0 = HpClock::now();
        if (cosim_lag_ > 0) {
          // Catch up over the unchecked window. The oracle committed these
          // instructions without faulting or exiting (syscalls are always
          // checked), so a checker that stops short has already diverged.
          StepResult cr;
          const u64 ran = checker.run_fast(cosim_lag_, &cr);
          if (ran != cosim_lag_) {
            std::ostringstream os;
            os << "co-simulation divergence: checker desynced "
               << (cosim_lag_ - ran) << " instructions into a spot window";
            if (cr.kind == StepResult::Kind::Fault)
              os << " (checker fault: " << cr.fault << ")";
            flush();
            fail(os.str());
            return;
          }
          cosim_lag_ = 0;
        }
        const StepResult sr = checker.step(&ref);
        if (sr.kind == StepResult::Kind::Fault) {
          flush();
          fail("checker fault: " + sr.fault);
          return;
        }
        if (ref.pc != e.oracle.pc || ref.next_pc != e.oracle.next_pc ||
            ref.dest != e.oracle.dest ||
            ref.dest_value != e.oracle.dest_value ||
            ref.mem_addr != e.oracle.mem_addr ||
            ref.store_value != e.oracle.store_value) {
          std::ostringstream os;
          os << "co-simulation divergence at pc 0x" << std::hex
             << e.oracle.pc;
          flush();
          fail(os.str());
          return;
        }
        if (host_profile_on) hp_take(t0, hprof.cosim);
      } else if (cosim_mode_ == CosimMode::kSpot) {
        ++cosim_lag_;
      }

      // Stores drain to the cache at commit (write buffer hides latency).
      if (e.flags & StaticInst::kFlagStore) {
        bool hit = false;
        mem.data_latency(e.oracle.mem_addr, true, &hit);
        if (hit) ++d_l1d_hits; else ++d_l1d_misses;
        ++d_stores;
      }
      if (e.flags & StaticInst::kFlagLoad) {
        ++d_loads;
        if (detail && e.data_cycle >= e.dispatch_cycle)
          detail->load_to_use.add(e.data_cycle - e.dispatch_cycle);
      }
      if (e.flags & StaticInst::kFlagCondBranch) {
        ++d_branches;
        if (e.mispredicted) ++d_mispredicts;
        if (detail && e.resolve_cycle >= e.dispatch_cycle)
          detail->branch_resolve_delay.add(e.resolve_cycle - e.dispatch_cycle);
      }

      // Free the rename mapping if still pointing here.
      const unsigned idx = ruu_index(0);
      const unsigned dest = e.si->dest_ext;
      if (dest != 0 && rename[dest].index == static_cast<int>(idx) &&
          rename[dest].seq == e.seq)
        rename[dest] = ProducerRef{};
      for (const unsigned hr : {kHiReg, kLoReg})
        if (rename[hr].index == static_cast<int>(idx) &&
            rename[hr].seq == e.seq)
          rename[hr] = ProducerRef{};

      if (e.flags & StaticInst::kFlagMem) {
        assert(!lsq.empty() && lsq.front() == static_cast<int>(idx));
        lsq.pop_front();  // committable mem ops are always Done
        if (mem_scan_from > 0) --mem_scan_from;
      }

      if (obs_on) {
        obs::TraceEvent ev;
        ev.kind = obs::EventKind::Commit;
        ev.cycle = now;
        ev.seq = e.seq;
        ev.pc = e.pc;
        ev.a = e.dispatch_cycle;
        emit(ev);
      }
      e.valid = false;
      // Ops blocked on this producer see its sources as from-regfile now;
      // normally its times were all defined (and woke them) long ago, but
      // requeueing is idempotent so wake defensively.
      wake_waiters(idx);
      ruu_head = (ruu_head + 1) % core.ruu_entries;
      --ruu_count;
      ++d_committed;

      // Exit detection: the checker sees the exit syscall whenever it ran
      // this commit (always, in full mode; spot mode checks every syscall,
      // so a checked exit can never hide in a catch-up window). With the
      // checker off (or unchecked), the dispatch-time oracle flag stands in.
      if (checked ? checker.exited() : e.caused_exit) {
        flush();
        last_commit_cycle = now;
        cycle_activity = true;
        exited = true;
        exit_code = checked ? checker.exit_code() : oracle.exit_code();
        return;
      }
    }
    flush();
    if (run > 0) {
      last_commit_cycle = now;
      cycle_activity = true;
    }
    // A bogus entry *reaching the head* with retirement budget left is a
    // simulator bug (wrong-path state must be squashed before commit);
    // entries merely queued behind a non-committable head just wait.
    if (run < budget && ruu_count > 0 && entry_at(0).bogus)
      fail("bogus entry reached commit");
  }

  // ---------------------------------------------------------------------------
  // main loop
  // ---------------------------------------------------------------------------

  u64 max_commits_ = 0;
  Cycle measure_base_cycle = 0;

  // Why is the oldest RUU entry (or the empty RUU) not retiring this cycle?
  // Evaluated once per loop iteration, after the pipeline phases, and
  // applied to every wasted commit slot the iteration covers (the current
  // cycle plus any idle-skipped span — during a skip the head's state is
  // frozen, so one answer holds for the whole span). A requirement that
  // completed *exactly at* `now` still blocked this cycle's commit (commit
  // runs first), so the "outstanding" tests below are >= now, not > now.
  // Charging rules are documented in docs/ARCHITECTURE.md §13.
  obs::CpiCause classify_stall() {
    using obs::CpiCause;
    // The measurement budget was exhausted mid-cycle: the leftover slots
    // are an end-of-run artifact, not a pipeline stall.
    if (stats.committed >= max_commits_) return CpiCause::Drain;
    if (ruu_count == 0) {
      if (halted) return CpiCause::Drain;
      if (cpi_refill_pending) return CpiCause::BrSquash;
      if (now < fetch_stall_until) return CpiCause::FeIcache;
      return CpiCause::FeFill;
    }
    RuuEntry& e = entry_at(0);
    const unsigned idx = eidx(e);
    // Oldest outstanding slice-op: selected means execution latency (or a
    // full window behind it), unselected means operands — the low slice
    // for op 0, the cross-slice chain otherwise.
    const Cycle* d = op_done_row(idx);
    for (unsigned i = 0; i < e.num_ops; ++i) {
      if (d[i] < now) continue;
      if (op_selected(idx, i))
        return ruu_count >= core.ruu_entries ? CpiCause::RuuFull
                                             : CpiCause::ExecUnit;
      return i == 0 ? CpiCause::SliceLow : CpiCause::SliceChain;
    }
    const u16 fl = e.flags;
    if (fl & StaticInst::kFlagLoad) {
      if (!e.data_final || e.data_cycle >= now) {
        switch (e.mem_phase) {
          case MemPhase::Agen:
            // Address generated but the access has not started: the LSQ
            // has not (or only just) let the load proceed.
            return e.lsq_decision_cycle >= now ? CpiCause::LsqDisambig
                                               : CpiCause::Dcache;
          case MemPhase::Access:
            if (e.predicted_way == -3) return CpiCause::SpecForward;
            if (e.used_partial_tag) return CpiCause::PartialTag;
            return CpiCause::Dcache;
          case MemPhase::Done:
            // Data present but not final (or it only landed this cycle):
            // a verification / retiming window.
            if (e.used_partial_tag) return CpiCause::PartialTag;
            if (e.forwarded) return CpiCause::LsqDisambig;
            return CpiCause::Dcache;
        }
      }
    } else if (fl & StaticInst::kFlagStore) {
      if (e.mem_phase != MemPhase::Done) return CpiCause::StoreData;
    }
    if ((fl & StaticInst::kFlagWatched) &&
        (!e.resolved || e.resolve_cycle >= now))
      return CpiCause::BrResolve;
    return CpiCause::Other;
  }

  // Earliest future cycle at which anything can happen: a scheduled wakeup,
  // an armed timer (op completions, load data returns, verify points), the
  // front slot becoming dispatchable, a fetch stall expiring — or, failing
  // all of those, the exact cycle the watchdog would trip.
  Cycle next_event_cycle() {
    Cycle next = last_commit_cycle + kWatchdogCycles + 1;
    if (wheel_count) next = std::min(next, wheel_next());
    if (far_count || !far_overflow.empty()) next = std::min(next, far_next());
    if (timer_count) next = std::min(next, timer_next());
    while (!timer_far.empty() && *timer_far.begin() <= now)
      timer_far.erase(timer_far.begin());
    if (!timer_far.empty()) next = std::min(next, *timer_far.begin());
    next = std::min(next, dispatch_blocked_until);
    if (!halted && now < fetch_stall_until)
      next = std::min(next, fetch_stall_until);
    return std::max(next, now + 1);
  }

  SimResult run(u64 max_commits, u64 warmup_commits) {
    const WallTimer timer;
    max_commits_ = warmup_commits + max_commits;
    bool warm = warmup_commits == 0;
    SimResult result;
    obs_on = !sinks.empty();
    if (obs_on) {
      obs::TraceMeta meta;
      meta.slices = core.slices;
      meta.config = cfg.describe();
      for (obs::TraceSink* s : sinks) s->begin(meta);
    }
    if (sampler) sampler->begin(cfg.describe());
    // Host-phase profiling: one fence-post clock read per phase per cycle
    // when enabled (hp_take both accumulates and re-stamps); six dead
    // predictable branches per cycle when not.
    const bool hp = host_profile_on;
    HpClock::time_point hp_t;
    while (error.empty() && !exited && stats.committed < max_commits_) {
      if (!warm && stats.committed >= warmup_commits) {
        // Discard warm-up statistics; microarchitectural state stays hot.
        warm = true;
        max_commits_ = max_commits;
        measure_base_cycle = now;
        const u64 extra = stats.committed - warmup_commits;
        stats = SimStats{};
        stats.committed = extra;
        if (sampler) sampler->rebase(stats);  // cycles already 0-based here
      }
      if (detail) {
        detail->ruu_occupancy.add(ruu_count);
        detail->lsq_occupancy.add(lsq.size());
      }
      cycle_activity = false;
      retry_this_cycle = false;
      {
        // This cycle's timers are now due: retire their bitmap bit so the
        // wheel never holds a bit at or behind `now` (see arm_timer).
        const unsigned slot = static_cast<unsigned>(now & (kWheelSize - 1));
        const u64 bit = u64{1} << (slot & 63);
        timer_count -= (timer_bits[slot >> 6] & bit) ? 1 : 0;
        timer_bits[slot >> 6] &= ~bit;
      }
      const u64 committed_before = stats.committed;
      if (hp) hp_t = HpClock::now();
      commit();
      if (hp) hp_take(hp_t, hprof.commit);
      if (detail) detail->commit_width.add(stats.committed - committed_before);
      if (warm && sampler && sampler->due(stats.committed)) {
        // stats.cycles is only assigned after the run; rows need the
        // current measured-relative cycle, so sample an adjusted copy.
        SimStats snap = stats;
        snap.cycles = now - measure_base_cycle;
        sampler->sample(snap);
      }
      if (!error.empty() || exited) break;
      resolve_and_recover();
      if (hp) hp_take(hp_t, hprof.resolve);
      select_and_execute();
      if (hp) hp_take(hp_t, hprof.select);
      // After select so sum-addressed accesses can overlap the agen op that
      // was picked this very cycle; the done-based (conventional/partial)
      // paths see identical timing either way.
      memory_progress();
      if (hp) hp_take(hp_t, hprof.memory);
      dispatch();
      if (hp) hp_take(hp_t, hprof.dispatch);
      fetch();
      if (hp) {
        hp_take(hp_t, hprof.fetch);
        ++hprof.loop_cycles;
      }
      // Idle skip: a cycle in which nothing changed, nothing is awaiting
      // selection and no port-blocked load retries cannot enable anything
      // next cycle either — jump straight to the next scheduled event. The
      // skipped cycles are indistinguishable from singly-stepped idle ones,
      // so stats stay bit-identical; the occupancy histograms are backfilled
      // with the (frozen) per-cycle samples the stepped loop would have
      // taken.
      Cycle next = now + 1;
      if (!cycle_activity && !retry_this_cycle && pending.empty())
        next = next_event_cycle();
      // CPI-stack charging: this iteration consumes cycles [now, next-1] —
      // width slots each. `base_slots` of them retired instructions; every
      // other slot is charged to the one cause blocking the commit head.
      // The loop's exit paths (error/exit break above, run end) leave the
      // aborted cycle both uncounted in stats.cycles and uncharged, which
      // is what makes sum(cpi_*) == cycles * width exact for every run.
      const u64 base_slots = stats.committed - committed_before;
      const u64 width = core.commit_width;
      obs::CpiCause stall_cause = obs::CpiCause::Base;
      if ((cpi_on && (base_slots < width || next > now + 1)) ||
          (obs_on && next > now + 1))
        stall_cause = classify_stall();
      if (cpi_on) {
        stats.cpi_base += base_slots;
        const u64 stall = (width - base_slots) + width * (next - now - 1);
        if (stall) {
          const obs::CpiLeafDesc& leaf =
              obs::cpi_leaves()[static_cast<unsigned>(stall_cause)];
          stats.*leaf.field += stall;
        }
      }
      if (next > now + 1) {
        const u64 skipped = next - now - 1;
        stats.idle_cycles_skipped += skipped;
        if (obs_on) {
          obs::TraceEvent ev;
          ev.kind = obs::EventKind::IdleSkip;
          ev.cycle = now + 1;  // the skipped span starts next cycle
          ev.a = skipped;
          // Cause taxonomy (obs/trace.hpp): what the skipped span was
          // waiting for, so traces agree with the CPI stack.
          ev.b = 1 + static_cast<u64>(stall_cause);
          emit(ev);
        }
        if (detail) {
          detail->ruu_occupancy.add(ruu_count, skipped);
          detail->lsq_occupancy.add(lsq.size(), skipped);
          detail->commit_width.add(0, skipped);
          detail->idle_skip_length.add(skipped);
        }
      }
      now = next;
      if (now - last_commit_cycle > kWatchdogCycles) {
        fail("watchdog: no instruction committed for " +
             std::to_string(kWatchdogCycles) + " cycles");
      }
    }
    stats.cycles = now - measure_base_cycle;
    stats.host_seconds = timer.seconds();
    if (sampler && warm) sampler->finish(stats);
    if (host_profile_on) {
      hprof.enabled = true;
      stats.host_profile = hprof;
    }
    if (obs_on)
      for (obs::TraceSink* s : sinks) s->end();
    result.stats = stats;
    result.exited = exited;
    result.exit_code = exit_code;
    result.error = error;
    return result;
  }
};

Simulator::Simulator(const MachineConfig& config, const Program& program)
    : cfg_(config), impl_(std::make_unique<Impl>(config, program)) {}

Simulator::Simulator(const MachineConfig& config, const Program& program,
                     const Checkpoint& start)
    : Simulator(config, program) {
  restore_checkpoint(impl_->oracle, start);
  restore_checkpoint(impl_->checker, start);
  impl_->fetch_pc = start.pc;
}

Simulator::Simulator(Simulator&&) noexcept = default;
Simulator& Simulator::operator=(Simulator&&) noexcept = default;
Simulator::~Simulator() = default;

SimResult Simulator::run(u64 max_commits, u64 warmup_commits) {
  return impl_->run(max_commits, warmup_commits);
}

void Simulator::set_pipe_trace(std::ostream& os, Cycle start, Cycle end) {
  if (impl_->owned_pipe_sink) {  // re-target: drop the previous sink
    auto& v = impl_->sinks;
    v.erase(std::remove(v.begin(), v.end(), impl_->owned_pipe_sink.get()),
            v.end());
  }
  impl_->owned_pipe_sink =
      std::make_unique<obs::PipeTextSink>(os, start, end);
  impl_->sinks.push_back(impl_->owned_pipe_sink.get());
}

void Simulator::add_trace_sink(obs::TraceSink* sink) {
  if (sink) impl_->sinks.push_back(sink);
}

void Simulator::set_interval_sampler(obs::IntervalSampler* sampler) {
  impl_->sampler = sampler;
}

void Simulator::set_options(const SimOptions& options) {
  impl_->cosim_mode_ = options.cosim;
  impl_->cosim_period_ = std::max<u64>(1, options.cosim_period);
  impl_->cosim_countdown_ = impl_->cosim_period_;
}

bool parse_cosim(const std::string& text, SimOptions* out) {
  if (text == "full") {
    out->cosim = CosimMode::kFull;
    return true;
  }
  if (text == "off") {
    out->cosim = CosimMode::kOff;
    return true;
  }
  if (text == "spot") {
    out->cosim = CosimMode::kSpot;
    return true;
  }
  if (text.rfind("spot:", 0) == 0) {
    const char* s = text.c_str() + 5;
    char* end = nullptr;
    const unsigned long long n = std::strtoull(s, &end, 10);
    if (end == s || *end != '\0' || n == 0) return false;
    out->cosim = CosimMode::kSpot;
    out->cosim_period = n;
    return true;
  }
  return false;
}

std::string cosim_name(const SimOptions& options) {
  switch (options.cosim) {
    case CosimMode::kFull:
      return "full";
    case CosimMode::kOff:
      return "off";
    case CosimMode::kSpot:
      return "spot:" + std::to_string(options.cosim_period);
  }
  return "full";
}

void Simulator::enable_cpi_stack() { impl_->cpi_on = true; }

void Simulator::enable_host_profile() { impl_->host_profile_on = true; }

unsigned Simulator::scratch_reallocations() const {
  return impl_->scratch_reallocations();
}

void Simulator::enable_detail() {
  if (!impl_->detail) impl_->detail = std::make_unique<DetailedStats>();
}

const DetailedStats& Simulator::detail() const {
  assert(impl_->detail && "enable_detail() before run()");
  return *impl_->detail;
}

SimResult simulate(const MachineConfig& config, const Program& program,
                   u64 max_commits, u64 warmup_commits) {
  return Simulator(config, program).run(max_commits, warmup_commits);
}

SimResult simulate(const MachineConfig& config, const Program& program,
                   const Checkpoint& start, u64 max_commits,
                   u64 warmup_commits) {
  return Simulator(config, program, start).run(max_commits, warmup_commits);
}

}  // namespace bsp
